// Benchmarks regenerating each of the paper's tables and figures, plus the
// ablation benches DESIGN.md calls out. Each benchmark measures the cost of
// recomputing its experiment on a shared, reduced-scale pipeline (building
// worlds inside the timed loop would only measure the generator).
package countryrank

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"net/url"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"countryrank/internal/bgp"
	"countryrank/internal/bgpsession"
	"countryrank/internal/netx"
	"countryrank/internal/snapshot"

	conepkg "countryrank/internal/cone"
	"countryrank/internal/core"
	ctipkg "countryrank/internal/cti"
	"countryrank/internal/experiments"
	"countryrank/internal/hegemony"
	"countryrank/internal/ihr"
	"countryrank/internal/routing"
	"countryrank/internal/topology"
)

var (
	benchOnce sync.Once
	benchP21  *core.Pipeline
	benchP23  *core.Pipeline
)

func benchPipelines(b *testing.B) (*core.Pipeline, *core.Pipeline) {
	b.Helper()
	benchOnce.Do(func() {
		benchP21 = core.NewPipeline(core.Options{Seed: 1, StubScale: 0.4, VPScale: 0.5})
		benchP23 = core.NewPipeline(core.Options{
			Seed: 1, Scenario: topology.Mar2023, StubScale: 0.4, VPScale: 0.5,
		})
	})
	return benchP21, benchP23
}

// BenchmarkPipelineBuild measures the full Figure 6 pipeline: world
// generation, propagation, sanitization, geolocation.
func BenchmarkPipelineBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.NewPipeline(core.Options{Seed: int64(i + 1), StubScale: 0.15, VPScale: 0.2})
	}
}

// BenchmarkPropagation measures valley-free route propagation alone.
func BenchmarkPropagation(b *testing.B) {
	w := topology.Build(topology.Config{Seed: 1, StubScale: 0.3, VPScale: 0.3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		routing.BuildCollection(w, routing.BuildOptions{})
	}
}

// BenchmarkPropagationSequential pins the sharded build to one shard: the
// single-threaded baseline the sharded numbers are compared against.
func BenchmarkPropagationSequential(b *testing.B) {
	w := topology.Build(topology.Config{Seed: 1, StubScale: 0.3, VPScale: 0.3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		routing.BuildCollection(w, routing.BuildOptions{Shards: 1})
	}
}

// BenchmarkPropagationSharded runs the default shard fan-out (4×GOMAXPROCS
// origin shards merged in order). On a single-core host it documents the
// sharding overhead floor; with more cores it shows the speedup.
func BenchmarkPropagationSharded(b *testing.B) {
	w := topology.Build(topology.Config{Seed: 1, StubScale: 0.3, VPScale: 0.3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		routing.BuildCollection(w, routing.BuildOptions{})
	}
}

// BenchmarkBuildCollectionSpill measures the out-of-core build: routes are
// streamed to columnar runs on disk instead of accumulating in RAM.
func BenchmarkBuildCollectionSpill(b *testing.B) {
	w := topology.Build(topology.Config{Seed: 1, StubScale: 0.3, VPScale: 0.3})
	root := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir := filepath.Join(root, fmt.Sprintf("it-%d", i))
		if err := os.Mkdir(dir, 0o755); err != nil {
			b.Fatal(err)
		}
		col, err := routing.BuildCollectionWith(w, routing.BuildOptions{SpillDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		col.Close()
		os.RemoveAll(dir)
		b.StartTimer()
	}
}

func BenchmarkTable1Sanitize(b *testing.B) {
	p, _ := benchPipelines(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunTable1(p)
	}
}

func BenchmarkTable2Views(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunTable2()
	}
}

func BenchmarkTable4VPCensus(b *testing.B) {
	p, _ := benchPipelines(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunTable4(p)
	}
}

func BenchmarkFigure4NationalStability(b *testing.B) {
	p, _ := benchPipelines(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunFigure4(p, 1, int64(i))
	}
}

func BenchmarkFigure5InternationalStability(b *testing.B) {
	p, _ := benchPipelines(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunFigure5(p, 1, int64(i))
	}
}

func BenchmarkTable5Australia(b *testing.B) {
	p, _ := benchPipelines(b)
	ccg, _ := p.Global()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunCaseStudy(p, "AU", 2, ccg)
	}
}

func BenchmarkTable6Japan(b *testing.B) {
	p, _ := benchPipelines(b)
	ccg, _ := p.Global()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunCaseStudy(p, "JP", 2, ccg)
	}
}

func BenchmarkTable7Russia(b *testing.B) {
	p, _ := benchPipelines(b)
	ccg, _ := p.Global()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunCaseStudy(p, "RU", 2, ccg)
	}
}

func BenchmarkTable8UnitedStates(b *testing.B) {
	p, _ := benchPipelines(b)
	ccg, _ := p.Global()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunCaseStudy(p, "US", 2, ccg)
	}
}

func BenchmarkTable9GlobalContrast(b *testing.B) {
	p, _ := benchPipelines(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunTable9(p, "AU")
	}
}

func BenchmarkTable10RussiaTemporal(b *testing.B) {
	p21, p23 := benchPipelines(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunTemporal(p21, p23, "RU")
	}
}

func BenchmarkTable11Taiwan(b *testing.B) {
	p21, p23 := benchPipelines(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunTemporal(p21, p23, "TW")
	}
}

func BenchmarkTable12Continental(b *testing.B) {
	p, _ := benchPipelines(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunTable12(p)
	}
}

func BenchmarkFigure7SovietBloc(b *testing.B) {
	p, _ := benchPipelines(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunFigure7(p)
	}
}

func BenchmarkFigure8ThresholdSweep(b *testing.B) {
	p, _ := benchPipelines(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunFigure8(p)
	}
}

func BenchmarkFigure9FilteredLengths(b *testing.B) {
	p, _ := benchPipelines(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunFigure9(p)
	}
}

func BenchmarkFigure10VPConcentration(b *testing.B) {
	p, _ := benchPipelines(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunFigure10(p)
	}
}

func BenchmarkTable13_14FilterByCountry(b *testing.B) {
	p, _ := benchPipelines(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunTable13_14(p)
	}
}

// BenchmarkFigure2WorkedExample measures the hegemony kernel on the
// worked-example scale (unit tests verify its exact values).
func BenchmarkFigure2WorkedExample(b *testing.B) {
	p, _ := benchPipelines(b)
	recs := p.ViewRecords(core.International, "AU")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hegemony.Compute(p.DS, recs, -1)
	}
}

// --- Ablation benches (DESIGN.md) ---

// BenchmarkAblationTrim compares hegemony with 0%, 10% and 25% trimming.
func BenchmarkAblationTrim(b *testing.B) {
	p, _ := benchPipelines(b)
	recs := p.ViewRecords(core.International, "RU")
	for _, tc := range []struct {
		name string
		trim float64
	}{{"trim0", 0}, {"trim10", 0.10}, {"trim25", 0.25}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hegemony.Compute(p.DS, recs, tc.trim)
			}
		})
	}
}

// BenchmarkAblationRelationshipSource compares cone computation on ground
// truth vs inferred relationships.
func BenchmarkAblationRelationshipSource(b *testing.B) {
	p, _ := benchPipelines(b)
	recs := p.ViewRecords(core.International, "AU")
	b.Run("ground-truth", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			conepkg.Compute(p.DS, recs, p.World.Graph)
		}
	})
	var inferred *core.Pipeline
	b.Run("inferred", func(b *testing.B) {
		if inferred == nil {
			b.StopTimer()
			opt := core.Options{Seed: 1, StubScale: 0.4, VPScale: 0.5, InferRelationships: true}
			inferred = core.NewPipeline(opt)
			b.StartTimer()
		}
		recs := inferred.ViewRecords(core.International, "AU")
		for i := 0; i < b.N; i++ {
			conepkg.Compute(inferred.DS, recs, inferred.Rels)
		}
	})
}

// BenchmarkAblationConeRule compares the observed-path cone rule with the
// recursive closure §1.1 warns against.
func BenchmarkAblationConeRule(b *testing.B) {
	p, _ := benchPipelines(b)
	recs := p.ViewRecords(core.International, "AU")
	b.Run("observed-path", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			conepkg.Compute(p.DS, recs, p.World.Graph)
		}
	})
	b.Run("recursive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			conepkg.ComputeRecursive(p.DS, recs, p.World.Graph)
		}
	})
}

// BenchmarkOutboundView measures the §7 extension's full cost.
func BenchmarkOutboundView(b *testing.B) {
	p, _ := benchPipelines(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Outbound("AU")
	}
}

// BenchmarkAblationBaselines compares the cost of the four country metrics
// against the AHC and CTI baselines for one country.
func BenchmarkAblationBaselines(b *testing.B) {
	p, _ := benchPipelines(b)
	b.Run("four-metrics", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.Country("JP")
		}
	})
	b.Run("ahc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ihr.Compute(p.DS, p.World.Graph, "JP", p.Opt.Trim)
		}
	})
	b.Run("cti", func(b *testing.B) {
		recs := p.ViewRecords(core.International, "JP")
		for i := 0; i < b.N; i++ {
			ctipkg.Compute(p.DS, recs, p.Rels, p.Opt.Trim)
		}
	})
}

// --- MRT data-plane benches ---

var (
	mrtBenchOnce  sync.Once
	mrtBenchWorld *topology.World
	mrtBenchCol   *routing.Collection
	mrtBenchDumps [][]byte // one TABLE_DUMP_V2 stream per collector
	mrtBenchRecs  int      // records round-tripped per op
)

func mrtBenchSetup(b *testing.B) {
	b.Helper()
	mrtBenchOnce.Do(func() {
		mrtBenchWorld = topology.Build(topology.Config{Seed: 3, StubScale: 0.3, VPScale: 0.4})
		mrtBenchCol = routing.BuildCollection(mrtBenchWorld, routing.BuildOptions{
			LoopFrac: -1, PoisonFrac: -1, UnallocFrac: -1,
		})
		for _, coll := range mrtBenchWorld.VPs.Collectors() {
			var buf bytes.Buffer
			if err := routing.ExportMRT(&buf, mrtBenchCol, coll.Name, 1617235200); err != nil {
				panic(err)
			}
			mrtBenchDumps = append(mrtBenchDumps, buf.Bytes())
		}
		mrtBenchRecs = len(mrtBenchCol.Records)
	})
}

func mrtDumpBytes() int64 {
	var n int64
	for _, d := range mrtBenchDumps {
		n += int64(len(d))
	}
	return n
}

// BenchmarkMRTExport measures TABLE_DUMP_V2 serialization of the full
// collection (every collector), the write half of the MRT data plane.
func BenchmarkMRTExport(b *testing.B) {
	mrtBenchSetup(b)
	b.SetBytes(mrtDumpBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, coll := range mrtBenchWorld.VPs.Collectors() {
			if err := routing.ExportMRT(io.Discard, mrtBenchCol, coll.Name, 1617235200); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(mrtBenchRecs), "records/op")
}

// BenchmarkMRTImport measures parsing the per-collector dumps back into a
// Collection, the read half that feeds every downstream metric.
func BenchmarkMRTImport(b *testing.B) {
	mrtBenchSetup(b)
	b.SetBytes(mrtDumpBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		streams := make([]io.Reader, len(mrtBenchDumps))
		for j, d := range mrtBenchDumps {
			streams[j] = bytes.NewReader(d)
		}
		if _, err := routing.ImportMRT(mrtBenchWorld, streams); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(mrtBenchRecs), "records/op")
}

// BenchmarkMRTImportFiles measures the chunk-parallel file importer: each
// dump is pre-scanned for record boundaries and decoded by a worker pool,
// the path crank -mrt takes.
func BenchmarkMRTImportFiles(b *testing.B) {
	mrtBenchSetup(b)
	dir := b.TempDir()
	paths := make([]string, len(mrtBenchDumps))
	for i, d := range mrtBenchDumps {
		paths[i] = filepath.Join(dir, fmt.Sprintf("dump-%02d.mrt", i))
		if err := os.WriteFile(paths[i], d, 0o644); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(mrtDumpBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := routing.ImportMRTFiles(mrtBenchWorld, paths, routing.ImportOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(mrtBenchRecs), "records/op")
}

// BenchmarkMRTRoundTrip measures export + import of a simulated collector
// dump set: the acceptance benchmark for the MRT data plane.
func BenchmarkMRTRoundTrip(b *testing.B) {
	mrtBenchSetup(b)
	b.SetBytes(mrtDumpBytes())
	b.ReportMetric(float64(mrtBenchRecs), "records/op")
	bufs := make([]bytes.Buffer, len(mrtBenchDumps))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		streams := make([]io.Reader, len(mrtBenchDumps))
		for j, coll := range mrtBenchWorld.VPs.Collectors() {
			bufs[j].Reset()
			if err := routing.ExportMRT(&bufs[j], mrtBenchCol, coll.Name, 1617235200); err != nil {
				b.Fatal(err)
			}
			streams[j] = &bufs[j]
		}
		if _, err := routing.ImportMRT(mrtBenchWorld, streams); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(mrtBenchRecs), "records/op")
}

// BenchmarkSessionThroughput measures UPDATE throughput over an established
// BGP session on an in-memory pipe.
func BenchmarkSessionThroughput(b *testing.B) {
	speakerConn, collectorConn := net.Pipe()
	var speaker, collector *bgpsession.Session
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		speaker, _ = bgpsession.Establish(speakerConn, bgpsession.Config{
			AS: 100001, BGPID: netip.MustParseAddr("10.0.0.1"),
		})
	}()
	go func() {
		defer wg.Done()
		collector, _ = bgpsession.Establish(collectorConn, bgpsession.Config{
			AS: 6447, BGPID: netip.MustParseAddr("10.0.0.2"),
		})
	}()
	wg.Wait()
	if speaker == nil || collector == nil {
		b.Fatal("handshake failed")
	}
	defer speaker.Close()
	defer collector.Close()

	u := &bgp.Update{
		ASPath:    bgp.SequencePath(bgp.Path{100001, 3356, 1221}),
		NextHop:   netip.MustParseAddr("10.0.0.1"),
		Announced: []netip.Prefix{netx.MustPrefix("192.0.2.0/24")},
	}
	table := bgpsession.NewTable()
	b.ResetTimer()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			if _, err := collector.Recv(); err != nil {
				return
			}
		}
	}()
	for i := 0; i < b.N; i++ {
		if err := speaker.Send(u); err != nil {
			b.Fatal(err)
		}
	}
	<-done
	table.Apply(u)
}

// --- Serving benches (cmd/rankd hot path) ---

var (
	serveBenchOnce sync.Once
	serveBenchSnap *snapshot.Snapshot
	serveBenchH    http.Handler
	serveBenchCC   string
)

func serveBenchSetup(b *testing.B) {
	b.Helper()
	serveBenchOnce.Do(func() {
		p, _ := benchPipelines(b)
		serveBenchSnap = snapshot.Build(p, 1, snapshot.Config{})
		serveBenchH = snapshot.NewHandler(snapshot.NewStore(serveBenchSnap))
		serveBenchCC = serveBenchSnap.CountryCodes()[0]
	})
}

// serveBenchWriter is the same minimal ResponseWriter the zero-alloc guard
// test uses: a reused header map and a discarding Write, so the benchmark
// measures the handler alone rather than httptest's recorder.
type serveBenchWriter struct {
	hdr http.Header
	n   int64
}

func (w *serveBenchWriter) Header() http.Header { return w.hdr }
func (w *serveBenchWriter) WriteHeader(int)     {}
func (w *serveBenchWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

func serveBenchRequest(b *testing.B, path, inm string) *http.Request {
	b.Helper()
	u, err := url.Parse(path)
	if err != nil {
		b.Fatal(err)
	}
	req := &http.Request{Method: http.MethodGet, URL: u, Header: http.Header{}}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	return req
}

// BenchmarkServeCountry measures the full-body country page hot path:
// resolve entity, assign precomputed headers, write stored bytes. The
// regression gate pins this at 0 allocs/op.
func BenchmarkServeCountry(b *testing.B) {
	serveBenchSetup(b)
	req := serveBenchRequest(b, "/v1/countries/"+serveBenchCC, "")
	w := &serveBenchWriter{hdr: http.Header{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveBenchH.ServeHTTP(w, req)
	}
	b.SetBytes(w.n / int64(b.N))
}

// BenchmarkServeCountry304 measures the revalidation path: ETag compare,
// 304, no body.
func BenchmarkServeCountry304(b *testing.B) {
	serveBenchSetup(b)
	req := serveBenchRequest(b, "/v1/countries/"+serveBenchCC,
		serveBenchSnap.CountryETag(serveBenchCC))
	w := &serveBenchWriter{hdr: http.Header{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveBenchH.ServeHTTP(w, req)
	}
}

// BenchmarkServeTop measures the top-N path including the manual query
// parse and variant clamp.
func BenchmarkServeTop(b *testing.B) {
	serveBenchSetup(b)
	req := serveBenchRequest(b, "/v1/top/ccg?n=10", "")
	w := &serveBenchWriter{hdr: http.Header{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveBenchH.ServeHTTP(w, req)
	}
}
