// Command asrank prints the global rankings — customer cone (CCG, CAIDA
// AS Rank's metric) and hegemony (AHG, IHR's metric) — plus, optionally,
// the per-country baselines for comparison, on the synthetic world.
//
// Usage:
//
//	asrank [-seed N] [-scale F] [-vpscale F] [-top K] [-ahc CC]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"countryrank/internal/core"
	"countryrank/internal/countries"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("asrank: ")
	seed := flag.Int64("seed", 1, "world seed")
	scale := flag.Float64("scale", 1, "stub-count scale factor")
	vpscale := flag.Float64("vpscale", 1, "VP-count scale factor")
	top := flag.Int("top", 20, "entries per ranking")
	ahc := flag.String("ahc", "", "also print the AHC baseline for this country code")
	flag.Parse()

	p := core.NewPipeline(core.Options{Seed: *seed, StubScale: *scale, VPScale: *vpscale})
	ccg, ahg := p.Global()
	fmt.Print(ccg.Render(*top))
	fmt.Println()
	fmt.Print(ahg.Render(*top))

	if *ahc != "" {
		c := countries.Code(strings.ToUpper(*ahc))
		if !countries.Known(c) {
			log.Fatalf("unknown country %q", *ahc)
		}
		fmt.Println()
		fmt.Print(p.AHC(c).Render(*top))
	}
}
