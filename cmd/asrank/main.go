// Command asrank prints the global rankings — customer cone (CCG, CAIDA
// AS Rank's metric) and hegemony (AHG, IHR's metric) — plus, optionally,
// the per-country baselines for comparison, on the synthetic world.
//
// Usage:
//
//	asrank [-seed N] [-scale F] [-vpscale F] [-top K] [-ahc CC] [-json]
//	       [-v LEVEL] [-debug-addr HOST:PORT] [-debug-linger D]
//	       [-trace-out FILE] [-manifest FILE] [-timeline D]
//
// -v raises the structured-log verbosity (0 info, 1 debug stage logs);
// -debug-addr serves /metrics, /healthz, expvar, pprof, /debug/trace, and
// /debug/timeline, and -debug-linger keeps that server up after the run
// for scraping. -trace-out writes the stage spans as Chrome trace-event
// JSON (open in Perfetto), -manifest writes the run provenance manifest
// (flags, seeds, coverage, sanitize drops, metric snapshot), and
// -timeline samples the registry into the /debug/timeline ring buffer.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"countryrank/internal/core"
	"countryrank/internal/countries"
	"countryrank/internal/obs"
	"countryrank/internal/rank"
	"countryrank/internal/routing"
	"countryrank/internal/snapshot"
)

func main() {
	seed := flag.Int64("seed", 1, "world seed")
	scale := flag.Float64("scale", 1, "stub-count scale factor")
	vpscale := flag.Float64("vpscale", 1, "VP-count scale factor")
	top := flag.Int("top", 20, "entries per ranking")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON (the snapshot wire encoding rankd serves) instead of tables")
	ahc := flag.String("ahc", "", "also print the AHC baseline for this country code")
	shards := flag.Int("shards", 0, "propagation shards (0 = 4×GOMAXPROCS)")
	spillDir := flag.String("spill-dir", "", "spill records to columnar runs under this directory instead of RAM")
	ofl := obs.Flags("asrank")
	flag.Parse()
	ofl.Init()

	ofl.Manifest.Seed("world", *seed)
	p := core.NewPipeline(core.Options{
		Seed: *seed, StubScale: *scale, VPScale: *vpscale,
		Routing: routing.BuildOptions{Shards: *shards, SpillDir: *spillDir},
	})
	slog.Debug("pipeline ready", "accepted", p.DS.Len())
	ofl.Manifest.SetCoverage(p.CoverageInfo())
	ofl.Manifest.SetDrops(p.DS.Stats.Drops())
	ccg, ahg := p.Global()
	rankings := []*rank.Ranking{ccg, ahg}
	if *ahc != "" {
		c := countries.Code(strings.ToUpper(*ahc))
		if !countries.Known(c) {
			slog.Error("unknown country", "code", *ahc)
			os.Exit(1)
		}
		rankings = append(rankings, p.AHC(c))
	}

	if *jsonOut {
		// The snapshot encoder renders here exactly what rankd serves, so
		// batch and served output are byte-identical per ranking.
		out := []byte(`{"rankings":[`)
		for i, r := range rankings {
			if i > 0 {
				out = append(out, ',')
			}
			out = snapshot.AppendRanking(out, r, *top)
		}
		out = append(out, "]}\n"...)
		if _, err := os.Stdout.Write(out); err != nil {
			slog.Error("write JSON", "err", err)
			os.Exit(1)
		}
	} else {
		for i, r := range rankings {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(r.Render(*top))
		}
	}
	ofl.Done()
}
