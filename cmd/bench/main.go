// Command bench runs the repo's benchmark suite and writes a machine-readable
// snapshot for regression tracking. It shells out to `go test -bench`, parses
// the standard benchmark output lines, and emits BENCH_<date>.json with ns/op,
// B/op, and allocs/op per benchmark.
//
// Usage:
//
//	bench [-bench REGEX] [-benchtime T] [-count N] [-out FILE] [-baseline FILE]
//	      [-v LEVEL] [-debug-addr HOST:PORT] [-debug-linger D]
//
// With -baseline, the snapshot is compared against a previous BENCH_*.json and
// per-benchmark ratios are printed; the command exits 1 if any benchmark
// regressed in ns/op beyond -tolerance (default 1.30, i.e. 30% slower).
// -v raises the structured-log verbosity; -debug-addr serves /metrics,
// /healthz, expvar, pprof, /debug/trace, and /debug/timeline for the bench
// driver itself. -manifest records the exact flags and a digest of the
// -baseline file a comparison ran against; -trace-out exports the driver's
// spans as a Chrome trace.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"countryrank/internal/benchfmt"
	"countryrank/internal/obs"
)

// fatal logs err at error level and exits non-zero.
func fatal(msg string, args ...any) {
	slog.Error(msg, args...)
	os.Exit(1)
}

// Result and Snapshot are the shared BENCH_*.json shapes; cmd/loadgen
// writes the same format for serving runs (see internal/benchfmt).
type (
	Result   = benchfmt.Result
	Snapshot = benchfmt.Snapshot
)

// benchLine matches the prefix of standard `go test -bench` output, e.g.
//
//	BenchmarkFigure2WorkedExample-8   3   2086155 ns/op   1585464 B/op   3512 allocs/op
//
// Measurements after the iteration count are parsed as generic
// (value, unit) pairs so throughput (MB/s) and custom b.ReportMetric
// units (records/op) survive alongside ns/op, B/op, and allocs/op.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// parseBenchLine parses one benchmark output line, or returns nil.
func parseBenchLine(line string) *Result {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return nil
	}
	r := &Result{Name: m[1]}
	r.Iters, _ = strconv.ParseInt(m[2], 10, 64)
	fields := strings.Fields(m[3])
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BPerOp = v
		case "allocs/op":
			r.AllocsOp = v
		case "MB/s":
			r.MBPerS = v
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = v
		}
	}
	if r.NsPerOp == 0 {
		return nil
	}
	return r
}

func main() {
	bench := flag.String("bench", ".", "benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "passed to go test -benchtime")
	count := flag.Int("count", 1, "passed to go test -count")
	out := flag.String("out", "", "output path (default BENCH_<date>.json)")
	baseline := flag.String("baseline", "", "previous BENCH_*.json to compare against")
	input := flag.String("input", "", "compare this existing BENCH_*.json (e.g. a loadgen run) against -baseline instead of running benchmarks")
	tolerance := flag.Float64("tolerance", 1.30, "max allowed ns/op (and p99_ns / allocs) ratio vs baseline before exit 1")
	ofl := obs.Flags("bench")
	flag.Parse()
	ofl.Init()
	defer ofl.Done()

	if *input != "" {
		// Compare-only mode: a snapshot someone else produced (the serving
		// load generator writes the same format) gets the same regression
		// gate the kernel benches do.
		if *baseline == "" {
			fatal("-input requires -baseline")
		}
		cur, err := benchfmt.ReadFile(*input)
		if err != nil {
			fatal("read -input snapshot", "err", err)
		}
		if err := ofl.Manifest.AddInput(*baseline); err != nil {
			slog.Warn("baseline digest failed", "path", *baseline, "err", err)
		}
		if compare(*baseline, *cur, *tolerance) {
			os.Exit(1)
		}
		return
	}

	date := time.Now().UTC().Format("2006-01-02")
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", date)
	}

	sp := obs.StartSpan("go-test-bench")
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *bench, "-benchmem",
		"-benchtime", *benchtime, "-count", strconv.Itoa(*count), ".")
	cmd.Stderr = os.Stderr
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		fatal("stdout pipe", "err", err)
	}
	if err := cmd.Start(); err != nil {
		fatal("start go test", "err", err)
	}

	snap := Snapshot{Date: date, Bench: *bench, BenchTime: *benchtime}
	sc := bufio.NewScanner(pipe)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if strings.HasPrefix(line, "goarch:") || strings.HasPrefix(line, "pkg:") {
			continue
		}
		r := parseBenchLine(line)
		if r == nil {
			continue
		}
		snap.Results = append(snap.Results, *r)
	}
	if err := sc.Err(); err != nil {
		fatal("read bench output", "err", err)
	}
	if err := cmd.Wait(); err != nil {
		fatal("go test -bench failed", "err", err)
	}
	sp.AddItems(int64(len(snap.Results)), "benchmarks")
	sp.End()
	if len(snap.Results) == 0 {
		fatal("no benchmark lines parsed; check the -bench regex")
	}
	snap.GoVersion = goVersion()

	// -count>1 repeats each benchmark; keep the best (lowest ns/op) run.
	snap.Results = bestRuns(snap.Results)

	if err := snap.WriteFile(path); err != nil {
		fatal("write snapshot", "err", err)
	}
	slog.Info("wrote snapshot", "path", path, "benchmarks", len(snap.Results))

	if *baseline != "" {
		if err := ofl.Manifest.AddInput(*baseline); err != nil {
			slog.Warn("baseline digest failed", "path", *baseline, "err", err)
		}
		if failed := compare(*baseline, snap, *tolerance); failed {
			os.Exit(1)
		}
	}
}

func goVersion() string {
	out, err := exec.Command("go", "version").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// bestRuns collapses repeated measurements of the same benchmark to the
// fastest one, preserving first-appearance order.
func bestRuns(rs []Result) []Result {
	idx := map[string]int{}
	out := rs[:0]
	for _, r := range rs {
		if i, ok := idx[r.Name]; ok {
			if r.NsPerOp < out[i].NsPerOp {
				out[i] = r
			}
			continue
		}
		idx[r.Name] = len(out)
		out = append(out, r)
	}
	return out
}

// compare gates cur against the baseline snapshot: ns/op (p50 latency for
// serving results) regresses at ratio > tolerance, and so do p99_ns (when
// both sides carry it in Extra) and allocs/op — a benchmark whose baseline
// is alloc-free fails on any measurable alloc growth, since a ratio against
// zero is undefined and "0 allocs" is exactly the property being pinned.
func compare(baselinePath string, cur Snapshot, tolerance float64) (failed bool) {
	base, err := benchfmt.ReadFile(baselinePath)
	if err != nil {
		fatal("read baseline", "err", err)
	}
	old := map[string]Result{}
	for _, r := range base.Results {
		old[r.Name] = r
	}
	names := make([]string, 0, len(cur.Results))
	byName := map[string]Result{}
	for _, r := range cur.Results {
		names = append(names, r.Name)
		byName[r.Name] = r
	}
	sort.Strings(names)
	fmt.Printf("\n%-45s %12s %12s %8s\n", "benchmark", "base ns/op", "cur ns/op", "ratio")
	for _, name := range names {
		r := byName[name]
		b, ok := old[name]
		if !ok || b.NsPerOp == 0 {
			continue
		}
		ratio := r.NsPerOp / b.NsPerOp
		var marks []string
		if ratio > tolerance {
			marks = append(marks, "REGRESSED")
			failed = true
		}
		if bp99, ok := b.Extra["p99_ns"]; ok && bp99 > 0 {
			if p99 := r.Extra["p99_ns"]; p99/bp99 > tolerance {
				marks = append(marks, fmt.Sprintf("p99 REGRESSED %.2fx", p99/bp99))
				failed = true
			}
		}
		switch {
		case b.AllocsOp == 0 && r.AllocsOp > 0.5:
			marks = append(marks, fmt.Sprintf("allocs REGRESSED 0 -> %.1f", r.AllocsOp))
			failed = true
		case b.AllocsOp > 0 && r.AllocsOp/b.AllocsOp > tolerance:
			marks = append(marks, fmt.Sprintf("allocs REGRESSED %.2fx", r.AllocsOp/b.AllocsOp))
			failed = true
		}
		mark := ""
		if len(marks) > 0 {
			mark = "  " + strings.Join(marks, ", ")
		}
		fmt.Printf("%-45s %12.0f %12.0f %7.2fx%s\n", name, b.NsPerOp, r.NsPerOp, ratio, mark)
	}
	if failed {
		slog.Warn("regression beyond tolerance", "tolerance", tolerance, "baseline", baselinePath)
	}
	return failed
}
