// Command crank ("country rank") computes the paper's country-level AS
// rankings. By default it builds the synthetic world in-process; with -mrt
// it instead ingests MRT TABLE_DUMP_V2 dumps produced by topogen, proving
// the pipeline runs off the standard interchange format.
//
// Usage:
//
//	crank [-seed N] [-scale F] [-vpscale F] [-mrt DIR] [-metric all|CCI|CCN|AHI|AHN|AHC|CTI] [-top K]
//	      [-v LEVEL] [-debug-addr HOST:PORT] [-debug-linger D]
//	      [-trace-out FILE] [-manifest FILE] [-timeline D] CC [CC...]
//
// Each positional argument is an ISO 3166-1 alpha-2 country code. -v raises
// the structured-log verbosity (0 info, 1 debug stage logs); -debug-addr
// serves /metrics, /healthz, expvar, pprof, /debug/trace, and
// /debug/timeline. -trace-out writes a Perfetto-loadable Chrome trace;
// -manifest writes the run provenance manifest — with -mrt, it carries a
// SHA-256 digest of every imported dump, so a ranking names the exact
// bytes it was computed from.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"

	"countryrank/internal/core"
	"countryrank/internal/countries"
	"countryrank/internal/obs"
	"countryrank/internal/routing"
	"countryrank/internal/topology"
)

func main() {
	seed := flag.Int64("seed", 1, "world seed")
	scale := flag.Float64("scale", 1, "stub-count scale factor")
	vpscale := flag.Float64("vpscale", 1, "VP-count scale factor")
	mrtDir := flag.String("mrt", "", "directory of MRT dumps from topogen (same seed/scale)")
	metric := flag.String("metric", "all", "metric to print")
	top := flag.Int("top", 10, "entries per ranking")
	shards := flag.Int("shards", 0, "propagation shards (0 = 4×GOMAXPROCS)")
	spillDir := flag.String("spill-dir", "", "spill records to columnar runs under this directory instead of RAM")
	ofl := obs.Flags("crank")
	flag.Parse()
	ofl.Init()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	ofl.Manifest.Seed("world", *seed)
	w := topology.Build(topology.Config{Seed: *seed, StubScale: *scale, VPScale: *vpscale})
	var col *routing.Collection
	if *mrtDir != "" {
		var err error
		var paths []string
		col, paths, err = loadMRT(w, *mrtDir, routing.ImportOptions{SpillDir: *spillDir})
		if err != nil {
			slog.Error("MRT import failed", "dir", *mrtDir, "err", err)
			os.Exit(1)
		}
		for _, path := range paths {
			if err := ofl.Manifest.AddInput(path); err != nil {
				slog.Warn("input digest failed", "path", path, "err", err)
			}
		}
		slog.Info("loaded MRT dumps", "records", col.NumRecords(), "dir", *mrtDir)
	} else {
		var err error
		col, err = routing.BuildCollectionWith(w, routing.BuildOptions{Shards: *shards, SpillDir: *spillDir})
		if err != nil {
			slog.Error("build collection", "err", err)
			os.Exit(1)
		}
	}
	p := core.NewPipelineFrom(w, col, core.Options{Seed: *seed})
	ofl.Manifest.SetCoverage(p.CoverageInfo())
	ofl.Manifest.SetDrops(p.DS.Stats.Drops())

	for _, arg := range flag.Args() {
		c := countries.Code(strings.ToUpper(arg))
		if !countries.Known(c) {
			slog.Warn("unknown country, skipping", "code", arg)
			continue
		}
		fmt.Printf("== %s (%s)\n", c, countries.Name(c))
		cr := p.Country(c)
		show := strings.ToUpper(*metric)
		if show == "ALL" || show == "CCI" {
			fmt.Print(cr.CCI.Render(*top))
		}
		if show == "ALL" || show == "AHI" {
			fmt.Print(cr.AHI.Render(*top))
		}
		if show == "ALL" || show == "CCN" {
			fmt.Print(cr.CCN.Render(*top))
		}
		if show == "ALL" || show == "AHN" {
			fmt.Print(cr.AHN.Render(*top))
		}
		if show == "AHC" {
			fmt.Print(p.AHC(c).Render(*top))
		}
		if show == "CTI" {
			fmt.Print(p.CTI(c).Render(*top))
		}
	}
	ofl.Done()
}

// loadMRT imports every .mrt file in dir against the world's VP set,
// returning the collection and the imported file paths (for provenance
// digests). Files decode chunk-parallel via ImportMRTFiles.
func loadMRT(w *topology.World, dir string, opt routing.ImportOptions) (*routing.Collection, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var paths []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".mrt") {
			continue
		}
		paths = append(paths, filepath.Join(dir, e.Name()))
	}
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("no .mrt files in %s", dir)
	}
	col, _, err := routing.ImportMRTFiles(w, paths, opt)
	return col, paths, err
}
