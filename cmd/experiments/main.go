// Command experiments regenerates every table and figure of the paper's
// evaluation from the synthetic world and prints them in publication order.
//
// Usage:
//
//	experiments [-seed N] [-scale F] [-vpscale F] [-trials N] [-quick] [-only LIST]
//	            [-progress] [-v LEVEL] [-debug-addr HOST:PORT] [-debug-linger D]
//	            [-trace-out FILE] [-manifest FILE] [-timeline D]
//
// -quick runs a reduced world and fewer stability trials; -only selects a
// comma-separated subset (e.g. -only table1,figure4,table10). -progress
// streams per-experiment start/finish lines (with wall time and stability
// trial counts) to stderr and prints the stage tree at the end; -v raises
// the structured-log verbosity (0 info, 1 debug stage logs); -debug-addr
// serves /metrics, /healthz, expvar, pprof, /debug/trace, and
// /debug/timeline. -trace-out writes every experiment's span (including
// the parallel stability fan-out) as a Perfetto-loadable Chrome trace;
// -manifest records which seeds, flags, coverage, and sanitize drops
// produced the printed tables; -timeline samples the registry so long
// sweeps expose metric history, not just a final scrape.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"time"

	"countryrank/internal/core"
	"countryrank/internal/countries"
	"countryrank/internal/experiments"
	"countryrank/internal/export"
	"countryrank/internal/obs"
	"countryrank/internal/topology"
)

// writeArtifacts emits the shareable dataset the paper promises: rankings
// for the case-study countries, VP geolocations, per-country geolocation
// stats, and a bounded sample of the sanitized path data.
func writeArtifacts(p *core.Pipeline, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, f func(w *os.File) error) error {
		file, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := f(file); err != nil {
			file.Close()
			return err
		}
		return file.Close()
	}
	for _, c := range []countries.Code{"AU", "JP", "RU", "US", "TW"} {
		cr := p.Country(c)
		pairs := map[string]func(w *os.File) error{
			"cci_" + string(c) + ".csv": func(w *os.File) error { return export.WriteRankingCSV(w, cr.CCI) },
			"ahi_" + string(c) + ".csv": func(w *os.File) error { return export.WriteRankingCSV(w, cr.AHI) },
			"ccn_" + string(c) + ".csv": func(w *os.File) error { return export.WriteRankingCSV(w, cr.CCN) },
			"ahn_" + string(c) + ".csv": func(w *os.File) error { return export.WriteRankingCSV(w, cr.AHN) },
		}
		for name, f := range pairs {
			if err := write(name, f); err != nil {
				return err
			}
		}
	}
	if err := write("vps.csv", func(w *os.File) error {
		return export.WriteVPGeoCSV(w, p.World.VPs)
	}); err != nil {
		return err
	}
	if err := write("geostats.csv", func(w *os.File) error {
		return export.WriteGeoStatsCSV(w, p.Geo)
	}); err != nil {
		return err
	}
	return write("paths_sample.csv", func(w *os.File) error {
		return export.WritePathsCSV(w, p.DS, 100000)
	})
}

func main() {
	seed := flag.Int64("seed", 1, "world seed")
	scale := flag.Float64("scale", 1, "stub-count scale factor")
	vpscale := flag.Float64("vpscale", 1, "VP-count scale factor")
	trials := flag.Int("trials", 8, "downsampling trials per sample size")
	quick := flag.Bool("quick", false, "small world, few trials")
	only := flag.String("only", "", "comma-separated experiment subset")
	artifacts := flag.String("artifacts", "", "directory for the shareable dataset (CSV)")
	progress := flag.Bool("progress", false, "stream per-experiment start/finish lines to stderr")
	ofl := obs.Flags("experiments")
	flag.Parse()
	ofl.Init()

	if *quick {
		*scale, *vpscale, *trials = 0.3, 0.4, 3
	}
	want := map[string]bool{}
	for _, s := range strings.Split(*only, ",") {
		if s = strings.TrimSpace(strings.ToLower(s)); s != "" {
			want[s] = true
		}
	}
	run := func(name string) bool { return len(want) == 0 || want[name] }

	// With -progress, every top-level span — each experiment plus the
	// pipeline builds — streams a start line and a finish line carrying the
	// wall time and the rolled-up stability-trial count of its children.
	if *progress {
		obs.DefaultTrace.OnStart = func(s *obs.Span) {
			if s.Depth() == 0 {
				fmt.Fprintf(os.Stderr, "[progress] %s started\n", s.Name)
			}
		}
		obs.DefaultTrace.OnEnd = func(s *obs.Span) {
			if s.Depth() != 0 {
				return
			}
			if n, unit := s.TotalItems(); n > 0 {
				fmt.Fprintf(os.Stderr, "[progress] %s done in %v (%d %s)\n",
					s.Name, s.Duration().Round(time.Millisecond), n, unit)
			} else {
				fmt.Fprintf(os.Stderr, "[progress] %s done in %v\n",
					s.Name, s.Duration().Round(time.Millisecond))
			}
		}
	}

	// timed wraps one experiment in a span so -progress, -v stage logs, and
	// the final stage tree all see it.
	timed := func(name string, f func()) {
		sp := obs.StartSpan(name)
		f()
		sp.End()
	}

	start := time.Now()
	slog.Info("building April 2021 pipeline", "seed", *seed, "scale", *scale, "vpscale", *vpscale)
	p21 := core.NewPipeline(core.Options{Seed: *seed, StubScale: *scale, VPScale: *vpscale})
	slog.Info("pipeline ready", "elapsed", time.Since(start).Round(time.Millisecond), "accepted", p21.DS.Len())
	ofl.Manifest.Seed("world", *seed)
	ofl.Manifest.Seed("figure4_trials", *seed+100)
	ofl.Manifest.Seed("figure5_trials", *seed+200)
	ofl.Manifest.SetCoverage(p21.CoverageInfo())
	ofl.Manifest.SetDrops(p21.DS.Stats.Drops())

	section := func(s string) { fmt.Printf("\n================ %s\n", s) }

	if run("table1") {
		timed("table1", func() {
			section("Table 1")
			fmt.Print(experiments.RunTable1(p21).Render())
		})
	}
	if run("table2") {
		timed("table2", func() {
			section("Table 2")
			fmt.Print(experiments.RunTable2().Render())
		})
	}
	if run("table4") {
		timed("table4", func() {
			section("Tables 3 and 4")
			fmt.Print(experiments.RunTable4(p21).Render())
		})
	}
	if run("figure4") {
		timed("figure4", func() {
			section("Figure 4")
			fmt.Print(experiments.RunFigure4(p21, *trials, *seed+100).Render())
		})
	}
	if run("figure5") {
		timed("figure5", func() {
			section("Figure 5")
			fmt.Print(experiments.RunFigure5(p21, *trials, *seed+200).Render())
		})
	}
	if run("casestudies") {
		timed("casestudies", func() {
			ccg, _ := p21.Global()
			for _, c := range []countries.Code{"AU", "JP", "RU", "US"} {
				section("Table 5–8: " + string(c))
				fmt.Print(experiments.RunCaseStudy(p21, c, 2, ccg).Render())
			}
		})
	}
	if run("table9") {
		timed("table9", func() {
			section("Table 9")
			fmt.Print(experiments.RunTable9(p21, "AU").Render())
		})
	}

	var p23 *core.Pipeline
	need23 := run("table10") || run("table11")
	if need23 {
		slog.Info("building March 2023 pipeline")
		p23 = core.NewPipeline(core.Options{
			Seed: *seed, Scenario: topology.Mar2023, StubScale: *scale, VPScale: *vpscale,
		})
	}
	if run("table10") {
		timed("table10", func() {
			section("Table 10 (Russia 2021→2023)")
			fmt.Print(experiments.RunTemporal(p21, p23, "RU").Render())
		})
	}
	if run("table11") {
		timed("table11", func() {
			section("Table 11 (Taiwan 2021→2023)")
			fmt.Print(experiments.RunTemporal(p21, p23, "TW").Render())
		})
	}
	if run("table12") {
		timed("table12", func() {
			section("Table 12")
			fmt.Print(experiments.RunTable12(p21).Render())
		})
	}
	if run("figure7") {
		timed("figure7", func() {
			section("Figure 7")
			fmt.Print(experiments.RunFigure7(p21).Render())
		})
	}
	if run("figure8") {
		timed("figure8", func() {
			section("Figure 8")
			fmt.Print(experiments.RunFigure8(p21).Render())
		})
	}
	if run("figure9") {
		timed("figure9", func() {
			section("Figure 9")
			fmt.Print(experiments.RunFigure9(p21).Render())
		})
	}
	if run("figure10") {
		timed("figure10", func() {
			section("Figure 10")
			fmt.Print(experiments.RunFigure10(p21).Render())
		})
	}
	if run("table13") || run("table14") || run("table13_14") || len(want) == 0 {
		timed("table13_14", func() {
			section("Tables 13/14")
			fmt.Print(experiments.RunTable13_14(p21).Render())
		})
	}
	if run("extensions") {
		timed("extensions", func() {
			section("Extension: market concentration")
			fmt.Print(experiments.RunConcentration(p21,
				[]countries.Code{"AU", "JP", "RU", "US", "TW", "DE", "NL"}).Render())
			section("Extension: dependence matrix")
			fmt.Print(experiments.RunDependenceMatrix(p21, nil).Render())
			section("Extension: resilience (backup paths)")
			fmt.Print(experiments.RunResilience(p21, "JP", 3).Render())
			section("Extension: inference validation")
			fmt.Print(experiments.RunInferenceValidation(p21).Render())
		})
	}
	if *artifacts != "" {
		timed("artifacts", func() {
			if err := writeArtifacts(p21, *artifacts); err != nil {
				slog.Error("artifacts failed", "dir", *artifacts, "err", err)
				os.Exit(1)
			}
			slog.Info("artifacts written", "dir", *artifacts)
		})
	}
	slog.Info("done", "elapsed", time.Since(start).Round(time.Millisecond))
	if *progress {
		fmt.Fprint(os.Stderr, "\nstage report:\n"+obs.DefaultTrace.Render())
	}
	ofl.Done()
}
