// Command loadgen drives a running rankd over real HTTP and records the
// serving latency distribution as a BENCH_*.json snapshot, making the
// serving path a regression-tracked surface alongside the kernel
// microbenchmarks.
//
// It discovers the served countries from /v1/snapshot, then fans -conc
// workers out over a request mix (country pages, top-N queries, snapshot
// metadata), revalidating a fraction of requests with If-None-Match to
// exercise the 304 fast path. Per-class p50/p99/p999 latency and overall
// req/s are computed from every recorded sample; server-side allocations
// per request come from the memstats delta between two /debug/vars scrapes
// bracketing the run (this counts the whole process — net/http connection
// machinery included — not just the handler, whose zero-alloc guarantee the
// guard test pins).
//
// Non-2xx/non-304 responses and transport failures are counted per class
// and reported in the snapshot. A `503 + Retry-After` — the server's
// admission gate shedding load by design — is its own class (ServeShed),
// counted toward req/s and reported as shed_rate but never toward
// -max-error-rate; when the server runs with -slo and the
// access-log/trace hooks, the post-run scrape of /debug/slo and the
// countryrank expvar bridge records burn rates and observability overhead
// (events logged/dropped, traces sampled) alongside the latency numbers.
//
// Usage:
//
//	loadgen [-url BASE] [-duration D] [-conc N] [-revalidate F] [-n N]
//	        [-out FILE] [-seed N] [-max-error-rate F] [-v LEVEL]
//
// Exit status is non-zero when the error rate exceeds -max-error-rate
// (default 0: any failed request fails the run).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"slices"
	"strconv"
	"sync"
	"time"

	"countryrank/internal/benchfmt"
	"countryrank/internal/obs"
)

// class indexes one request/response population we report separately.
type class int

const (
	clCountry200 class = iota
	clCountry304
	clTop200
	clTop304
	clSnapshot
	// clShed is a 503 + Retry-After from the server's admission gate: the
	// server refusing work by design, not failing at it. Shed responses are
	// their own population — counted toward req/s and reported as a rate,
	// but never toward the error budget, so -max-error-rate doesn't fail a
	// run where shedding worked exactly as intended.
	clShed
	numClasses
)

var classNames = [numClasses]string{
	"ServeCountry", "ServeCountry304", "ServeTop", "ServeTop304", "ServeSnapshotMeta", "ServeShed",
}

// sample is one timed request.
type sample struct {
	cl class
	ns int64
}

// worker owns its RNG, its ETag cache, and its sample slice so the hot loop
// shares nothing with other workers.
type worker struct {
	rng     *rand.Rand
	client  *http.Client
	base    string
	ccs     []string
	tops    []string
	maxN    int
	reval   float64
	etags   map[string]string
	samples []sample
	errs    []string
	errN    [numClasses]int64 // failed requests by the class they targeted
}

func (w *worker) run(deadline time.Time) {
	for time.Now().Before(deadline) {
		var url string
		cl := clSnapshot
		switch p := w.rng.Float64(); {
		case p < 0.70:
			url = w.base + "/v1/countries/" + w.ccs[w.rng.Intn(len(w.ccs))]
			cl = clCountry200
		case p < 0.95:
			url = w.base + "/v1/top/" + w.tops[w.rng.Intn(len(w.tops))] +
				"?n=" + strconv.Itoa(1+w.rng.Intn(w.maxN))
			cl = clTop200
		default:
			url = w.base + "/v1/snapshot"
		}
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			w.errs = append(w.errs, err.Error())
			return
		}
		if cl != clSnapshot && w.rng.Float64() < w.reval {
			if etag, ok := w.etags[url]; ok {
				req.Header.Set("If-None-Match", etag)
			}
		}
		start := time.Now()
		resp, err := w.client.Do(req)
		if err != nil {
			w.errs = append(w.errs, err.Error())
			w.errN[cl]++
			continue
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		ns := time.Since(start).Nanoseconds()

		switch resp.StatusCode {
		case http.StatusOK:
			// keep the 200 class chosen above
		case http.StatusNotModified:
			if cl == clCountry200 {
				cl = clCountry304
			} else {
				cl = clTop304
			}
		case http.StatusServiceUnavailable:
			if resp.Header.Get("Retry-After") == "" {
				// A bare 503 (no snapshot, SLO-degraded healthz dependency)
				// is a real failure; only the admission gate's designed
				// refusal carries Retry-After.
				w.errs = append(w.errs, fmt.Sprintf("%s: status %d", url, resp.StatusCode))
				w.errN[cl]++
				continue
			}
			cl = clShed
		default:
			w.errs = append(w.errs, fmt.Sprintf("%s: status %d", url, resp.StatusCode))
			w.errN[cl]++
			continue
		}
		if etag := resp.Header.Get("ETag"); etag != "" {
			w.etags[url] = etag
		}
		w.samples = append(w.samples, sample{cl, ns})
	}
}

func main() {
	base := flag.String("url", "http://127.0.0.1:8080", "rankd base URL")
	duration := flag.Duration("duration", 10*time.Second, "how long to drive load")
	conc := flag.Int("conc", 8, "concurrent workers")
	reval := flag.Float64("revalidate", 0.5, "fraction of eligible requests sent with If-None-Match")
	maxN := flag.Int("n", 10, "top-N requests draw n uniformly from [1, this]")
	out := flag.String("out", "", "output path (default BENCH_<date>_serving.json)")
	seed := flag.Int64("seed", 1, "request-mix RNG seed")
	maxErrRate := flag.Float64("max-error-rate", 0, "fail the run when errors/requests exceeds this fraction")
	ofl := obs.Flags("loadgen")
	flag.Parse()
	ofl.Init()
	defer ofl.Done()

	ccs, tops, err := discover(*base)
	if err != nil {
		slog.Error("discover /v1/snapshot failed", "url", *base, "err", err)
		os.Exit(1)
	}
	slog.Info("discovered snapshot", "countries", len(ccs), "tops", tops)

	transport := &http.Transport{MaxIdleConns: *conc * 2, MaxIdleConnsPerHost: *conc * 2}
	client := &http.Client{Transport: transport, Timeout: 10 * time.Second}

	mallocs0, scrapeOK := scrapeMallocs(*base, client)
	workers := make([]*worker, *conc)
	for i := range workers {
		workers[i] = &worker{
			rng:    rand.New(rand.NewSource(*seed + int64(i)*7919)),
			client: client, base: *base, ccs: ccs, tops: tops,
			maxN: *maxN, reval: *reval, etags: map[string]string{},
		}
	}
	sp := obs.StartSpan("loadgen")
	deadline := time.Now().Add(*duration)
	wall := time.Now()
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) { defer wg.Done(); w.run(deadline) }(w)
	}
	wg.Wait()
	elapsed := time.Since(wall)
	mallocs1, scrapeOK2 := scrapeMallocs(*base, client)

	var all []sample
	var errs []string
	var errByClass [numClasses]int64
	for _, w := range workers {
		all = append(all, w.samples...)
		errs = append(errs, w.errs...)
		for cl := range w.errN {
			errByClass[cl] += w.errN[cl]
		}
	}
	sp.AddItems(int64(len(all)), "requests")
	sp.End()
	if len(all) == 0 {
		slog.Error("no successful requests", "errors", len(errs))
		for _, e := range errs[:min(len(errs), 5)] {
			slog.Error("request failed", "err", e)
		}
		os.Exit(1)
	}

	reqPerS := float64(len(all)) / elapsed.Seconds()
	var allocsPerReq float64
	if scrapeOK && scrapeOK2 && mallocs1 >= mallocs0 {
		allocsPerReq = float64(mallocs1-mallocs0) / float64(len(all))
	}

	date := time.Now().UTC().Format("2006-01-02")
	snap := benchfmt.Snapshot{
		Date: date, GoVersion: "", Bench: "serving", BenchTime: duration.String(),
	}
	byClass := make([][]int64, numClasses)
	overall := make([]int64, 0, len(all))
	for _, s := range all {
		byClass[s.cl] = append(byClass[s.cl], s.ns)
		overall = append(overall, s.ns)
	}
	errTotal := int64(len(errs))
	errRate := float64(errTotal) / float64(int64(len(all))+errTotal)
	var shedTotal int64
	for _, s := range all {
		if s.cl == clShed {
			shedTotal++
		}
	}
	shedRate := float64(shedTotal) / float64(int64(len(all))+errTotal)
	fmt.Printf("%-20s %8s %8s %10s %10s %10s\n", "class", "count", "errors", "p50", "p99", "p999")
	addResult := func(name string, ns []int64, errN int64, withRate bool) {
		if len(ns) == 0 {
			return
		}
		slices.Sort(ns)
		p50, p99, p999 := pctl(ns, 0.50), pctl(ns, 0.99), pctl(ns, 0.999)
		r := benchfmt.Result{
			Name: name, Iters: int64(len(ns)), NsPerOp: float64(p50),
			Extra: map[string]float64{"p99_ns": float64(p99), "p999_ns": float64(p999)},
		}
		if errN > 0 {
			r.Extra["errors"] = float64(errN)
		}
		if withRate {
			r.Extra["req_per_s"] = reqPerS
			r.Extra["error_rate"] = errRate
			r.Extra["shed_rate"] = shedRate
			r.AllocsOp = allocsPerReq
			// Fold the server's own view of the run in: burn rates from
			// /debug/slo and the observability pipeline's overhead counters,
			// so the BENCH snapshot records what the instrumentation cost.
			for k, v := range scrapeServerObs(*base, client) {
				r.Extra[k] = v
			}
		}
		snap.Results = append(snap.Results, r)
		fmt.Printf("%-20s %8d %8d %10s %10s %10s\n", name, len(ns), errN,
			time.Duration(p50).Round(time.Microsecond),
			time.Duration(p99).Round(time.Microsecond),
			time.Duration(p999).Round(time.Microsecond))
	}
	for cl := class(0); cl < numClasses; cl++ {
		addResult(classNames[cl], byClass[cl], errByClass[cl], false)
	}
	addResult("ServeAll", overall, errTotal, true)
	fmt.Printf("total %d requests in %s = %.0f req/s, %.1f server allocs/request, %d shed (rate %.4f), %d errors (rate %.4f)\n",
		len(all), elapsed.Round(time.Millisecond), reqPerS, allocsPerReq, shedTotal, shedRate, errTotal, errRate)

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s_serving.json", date)
	}
	if err := snap.WriteFile(path); err != nil {
		slog.Error("write snapshot failed", "path", path, "err", err)
		os.Exit(1)
	}
	slog.Info("wrote serving snapshot", "path", path, "requests", len(all))

	if errTotal > 0 {
		for _, e := range errs[:min(len(errs), 5)] {
			slog.Warn("request failed", "err", e)
		}
		if errRate > *maxErrRate {
			slog.Error("error rate over budget", "errors", errTotal, "rate", errRate, "max", *maxErrRate)
			os.Exit(1)
		}
		slog.Warn("requests failed within budget", "errors", errTotal, "rate", errRate, "max", *maxErrRate)
	}
}

// pctl reads the q-quantile from ascending-sorted ns (nearest-rank).
func pctl(ns []int64, q float64) int64 {
	i := int(q * float64(len(ns)))
	if i >= len(ns) {
		i = len(ns) - 1
	}
	return ns[i]
}

// discover fetches /v1/snapshot and returns the served country and top
// metric lists.
func discover(base string) (ccs, tops []string, err error) {
	resp, err := http.Get(base + "/v1/snapshot")
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var meta struct {
		Countries []string `json:"countries"`
		Tops      []string `json:"tops"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		return nil, nil, err
	}
	if len(meta.Countries) == 0 || len(meta.Tops) == 0 {
		return nil, nil, fmt.Errorf("snapshot serves %d countries, %d tops", len(meta.Countries), len(meta.Tops))
	}
	return meta.Countries, meta.Tops, nil
}

// scrapeServerObs collects the server's observability state after the run:
// burn rates and degraded flag from /debug/slo (absent when the server runs
// without -slo) plus access-log, trace, and drift-layer counters (churn
// score, history-ring depth) from the countryrank expvar bridge, so the
// BENCH snapshot regression-tracks the drift layer's overhead like the
// rest of the instrumentation. Everything is best-effort — an unreachable
// or uninstrumented server just yields fewer keys.
func scrapeServerObs(base string, client *http.Client) map[string]float64 {
	out := map[string]float64{}
	if resp, err := client.Get(base + "/debug/slo"); err == nil {
		var st struct {
			Objectives []struct {
				Name string `json:"name"`
				Fast struct {
					Burn float64 `json:"burn"`
				} `json:"fast"`
				Slow struct {
					Burn float64 `json:"burn"`
				} `json:"slow"`
			} `json:"objectives"`
			Degraded bool `json:"degraded"`
		}
		if json.NewDecoder(resp.Body).Decode(&st) == nil {
			for _, o := range st.Objectives {
				out["slo_"+o.Name+"_fast_burn"] = o.Fast.Burn
				out["slo_"+o.Name+"_slow_burn"] = o.Slow.Burn
			}
			if len(st.Objectives) > 0 {
				out["slo_degraded"] = 0
				if st.Degraded {
					out["slo_degraded"] = 1
				}
			}
		}
		resp.Body.Close()
	}
	if resp, err := client.Get(base + "/debug/vars"); err == nil {
		var vars struct {
			Countryrank map[string]float64 `json:"countryrank"`
		}
		if json.NewDecoder(resp.Body).Decode(&vars) == nil {
			for src, dst := range map[string]string{
				"countryrank_accesslog_events_total":    "accesslog_events",
				"countryrank_accesslog_dropped_total":   "accesslog_dropped",
				"countryrank_reqtrace_sampled_total":    "traces_sampled",
				"countryrank_rankd_shed_total":          "server_shed",
				"countryrank_drift_churn_score":         "drift_churn_score",
				"countryrank_rankd_history_epochs":      "history_epochs",
				"countryrank_drift_rollovers_total":     "drift_rollovers",
				"countryrank_rankd_drift_rejects_total": "drift_rejects",
			} {
				if v, ok := vars.Countryrank[src]; ok && v > 0 {
					out[dst] = v
				}
			}
		}
		resp.Body.Close()
	}
	return out
}

// scrapeMallocs reads cumulative memstats.Mallocs from the daemon's
// /debug/vars (expvar publishes memstats by default). ok is false when the
// endpoint is unreachable, in which case allocs/request is omitted.
func scrapeMallocs(base string, client *http.Client) (uint64, bool) {
	resp, err := client.Get(base + "/debug/vars")
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	var vars struct {
		Memstats struct {
			Mallocs uint64 `json:"Mallocs"`
		} `json:"memstats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		return 0, false
	}
	return vars.Memstats.Mallocs, true
}
