// Command rankd serves country-level AS rankings as a long-running HTTP
// service. It computes the paper's four country metrics (CCI/CCN/AHI/AHN)
// for every country plus the global CCG/AHG rankings, preserializes them
// into an immutable snapshot (internal/snapshot), and serves:
//
//	GET /v1/countries/{cc}     one country's four rankings
//	GET /v1/top/{metric}?n=N   global top-N (ccg, ahg)
//	GET /v1/snapshot           snapshot metadata (epoch, content digest)
//
// plus the shared debug surface (/metrics, /healthz, /debug/...) on the
// same listener. Responses carry strong ETags and Cache-Control; the 200
// and 304 paths do zero allocation and zero encoding per request — with
// access logging, SLO accounting, and metrics enabled.
//
// SIGHUP — or -refresh at an interval — recomputes the pipeline and
// publishes a new snapshot with an atomic pointer swap; requests in flight
// finish on the snapshot they loaded. SIGINT/SIGTERM drain gracefully.
//
// Usage:
//
//	rankd [-addr HOST:PORT] [-seed N] [-scale F] [-vpscale F] [-topn N]
//	      [-refresh D] [-countries CC,CC,...]
//	      [-access-log PATH] [-access-log-sample N] [-access-log-slow D]
//	      [-trace-sample F] [-slo SPEC] [-slow-probe D]
//	      [-v LEVEL] [-debug-addr HOST:PORT] [-trace-out FILE]
//	      [-manifest FILE] [-timeline D]
//
// Observability:
//
//   - -access-log writes one wide JSON event per request ("-" for stderr)
//     through a lock-free ring, head-sampled by -access-log-sample; errors
//     and requests slower than -access-log-slow are always logged.
//   - -trace-sample promotes that fraction of requests to full traces,
//     inspectable at /debug/requests (active, recent, slowest per route).
//   - -slo (e.g. "availability=99.9,latency=99.9@5ms" or "default") tracks
//     burn rates at /debug/slo and flips /healthz to 503 degraded while the
//     fast burn exceeds its trip threshold.
//   - -slow-probe delays requests whose query carries probe=slow — a CI
//     hook for exercising the degraded flip.
//
// -manifest writes the provenance manifest as soon as the first snapshot is
// published (not at exit), recording the serving config and the snapshot
// content digest, so a scrape can be traced to the exact bytes served
// while the daemon is still running. At shutdown the manifest is rewritten
// with the final SLO burn state as notes.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"countryrank/internal/core"
	"countryrank/internal/countries"
	"countryrank/internal/obs"
	"countryrank/internal/routing"
	"countryrank/internal/snapshot"
)

func main() {
	start0 := time.Now()
	addr := flag.String("addr", "127.0.0.1:8080", "serve the snapshot API (and debug endpoints) on this host:port")
	seed := flag.Int64("seed", 1, "world seed")
	scale := flag.Float64("scale", 1, "stub-count scale factor")
	vpscale := flag.Float64("vpscale", 1, "VP-count scale factor")
	topn := flag.Int("topn", snapshot.DefaultMaxTopN, "max entries per ranking and /v1/top ?n= cap")
	refresh := flag.Duration("refresh", 0, "recompute and atomically swap the snapshot at this interval (0 = only on SIGHUP)")
	ccList := flag.String("countries", "", "comma-separated country codes to serve (default: all with ranked ASes)")
	shards := flag.Int("shards", 0, "propagation shards (0 = 4×GOMAXPROCS)")
	accessLog := flag.String("access-log", "", "write wide-event request logs to this file (\"-\" = stderr, empty = off)")
	accessSample := flag.Int("access-log-sample", 1, "log 1 in N successful responses (0 = none; errors and slow requests always logged)")
	accessSlow := flag.Duration("access-log-slow", 100*time.Millisecond, "always log requests at least this slow (0 disables the override)")
	traceSample := flag.Float64("trace-sample", 0, "fraction of requests promoted to /debug/requests traces (0 = off, 1 = all)")
	sloSpec := flag.String("slo", "", "serving objectives, e.g. \"availability=99.9,latency=99.9@5ms\" or \"default\" (empty = off)")
	slowProbe := flag.Duration("slow-probe", 0, "delay requests tagged probe=slow by this much (CI latency-injection hook)")
	ofl := obs.Flags("rankd")
	flag.Parse()
	ofl.Init()

	var only []countries.Code
	for _, cc := range strings.Split(*ccList, ",") {
		cc = strings.ToUpper(strings.TrimSpace(cc))
		if cc == "" {
			continue
		}
		if !countries.Known(countries.Code(cc)) {
			slog.Error("unknown country", "code", cc)
			os.Exit(1)
		}
		only = append(only, countries.Code(cc))
	}
	cfg := snapshot.Config{MaxTopN: *topn, Countries: only}
	opt := core.Options{
		Seed: *seed, StubScale: *scale, VPScale: *vpscale,
		Routing: routing.BuildOptions{Shards: *shards},
	}

	ofl.Manifest.Seed("world", *seed)
	build := func(epoch int64) *snapshot.Snapshot {
		start := time.Now()
		p := core.NewPipeline(opt)
		snap := snapshot.Build(p, epoch, cfg)
		slog.Info("snapshot built", "epoch", epoch, "digest", snap.Digest[:12],
			"countries", len(snap.CountryCodes()), "took", time.Since(start).Round(time.Millisecond))
		return snap
	}

	epoch := int64(1)
	store := snapshot.NewStore(build(epoch))
	first := store.Load()

	// Assemble the serving instrumentation from the observability flags.
	ins := snapshot.Instrumentation{SlowProbe: *slowProbe}
	if *accessLog != "" {
		out := os.Stderr
		if *accessLog != "-" {
			f, err := os.Create(*accessLog)
			if err != nil {
				slog.Error("access log open failed", "path", *accessLog, "err", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		ins.Log = obs.NewAccessLog(
			slog.New(slog.NewJSONHandler(out, nil)),
			obs.AccessLogConfig{SampleOK: *accessSample, SlowAfter: *accessSlow},
		).Start()
		defer ins.Log.Close()
	}
	if *traceSample > 0 {
		ins.Requests = obs.NewReqTracker(*seed, *traceSample, 64, 8)
		obs.SetDefaultRequests(ins.Requests)
	}
	var slo *obs.SLO
	if *sloSpec != "" {
		cfg, err := obs.ParseSLO(*sloSpec)
		if err != nil {
			slog.Error("bad -slo", "spec", *sloSpec, "err", err)
			os.Exit(1)
		}
		slo = obs.NewSLO(cfg)
		ins.SLO = slo
		obs.SetDefaultSLO(slo)
		ofl.Manifest.SetNote("slo_config", cfg.String())
	}
	if *traceSample > 0 {
		ofl.Manifest.SetNote("trace_sample", strconv.FormatFloat(*traceSample, 'g', -1, 64))
	}

	h := snapshot.NewHandler(store)
	h.Instrument(ins)

	mux := http.NewServeMux()
	mux.Handle("/v1/", h)
	mux.Handle("/", obs.NewDebugMux())
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		slog.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	slog.Info("rankd serving", "addr", ln.Addr().String(), "epoch", epoch)

	// The manifest is written now — at publish, not at exit — so anything
	// scraping the daemon can pair responses with the digest that produced
	// them. The serving config rides along as notes.
	ofl.Manifest.SetNote("serving_addr", ln.Addr().String())
	ofl.Manifest.SetNote("snapshot_digest", first.Digest)
	ofl.Manifest.SetNote("snapshot_epoch", strconv.FormatInt(first.Epoch, 10))
	ofl.Manifest.SetNote("max_top_n", strconv.Itoa(first.MaxTopN()))
	if *ofl.ManifestOut != "" {
		ofl.Manifest.Finish(time.Since(start0), obs.Default.Snapshot(), obs.DefaultTrace.Render())
		if err := ofl.Manifest.WriteFile(*ofl.ManifestOut); err != nil {
			slog.Error("manifest write failed", "path", *ofl.ManifestOut, "err", err)
		} else {
			slog.Info("manifest written", "path", *ofl.ManifestOut)
		}
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	var tick <-chan time.Time
	if *refresh > 0 {
		t := time.NewTicker(*refresh)
		defer t.Stop()
		tick = t.C
	}

	// finish records the final SLO burn state into the manifest (Done
	// rewrites it when -manifest was given) before the shared teardown.
	finish := func() {
		if slo != nil {
			availFast, availSlow, latFast, latSlow := slo.Burns()
			reason, degraded := slo.Degraded()
			ofl.Manifest.SetNote("slo_availability_fast_burn", strconv.FormatFloat(availFast, 'g', 4, 64))
			ofl.Manifest.SetNote("slo_availability_slow_burn", strconv.FormatFloat(availSlow, 'g', 4, 64))
			ofl.Manifest.SetNote("slo_latency_fast_burn", strconv.FormatFloat(latFast, 'g', 4, 64))
			ofl.Manifest.SetNote("slo_latency_slow_burn", strconv.FormatFloat(latSlow, 'g', 4, 64))
			ofl.Manifest.SetNote("slo_degraded", strconv.FormatBool(degraded))
			if degraded {
				ofl.Manifest.SetNote("slo_degraded_reason", reason)
			}
		}
		ofl.Done()
	}

	rollover := func(reason string) {
		epoch++
		next := build(epoch)
		old := store.Swap(next)
		slog.Info("snapshot swapped", "reason", reason, "epoch", epoch,
			"digest", next.Digest[:12], "changed", old == nil || old.Digest != next.Digest)
	}

	for {
		select {
		case <-hup:
			rollover("SIGHUP")
		case <-tick:
			rollover("refresh interval")
		case sig := <-stop:
			slog.Info("shutting down", "signal", sig.String())
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if err := srv.Shutdown(ctx); err != nil {
				slog.Warn("shutdown incomplete", "err", err)
			}
			cancel()
			finish()
			return
		case err := <-serveErr:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				slog.Error("serve failed", "err", err)
				os.Exit(1)
			}
			finish()
			return
		}
	}
}
