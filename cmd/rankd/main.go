// Command rankd serves country-level AS rankings as a long-running HTTP
// service. It computes the paper's four country metrics (CCI/CCN/AHI/AHN)
// for every country plus the global CCG/AHG rankings, preserializes them
// into an immutable snapshot (internal/snapshot), and serves:
//
//	GET /v1/countries/{cc}          one country's four rankings
//	GET /v1/countries/{cc}/history  the country's rank vectors across the
//	                                last -history epochs (preserialized at
//	                                publish, so still zero-alloc to serve)
//	GET /v1/top/{metric}?n=N        global top-N (ccg, ahg)
//	GET /v1/snapshot                snapshot metadata (epoch, content
//	                                digest, stale/degraded markers)
//
// plus the shared debug surface (/metrics, /healthz, /readyz, /debug/...)
// on the same listener. Responses carry strong ETags and Cache-Control; the
// 200 and 304 paths do zero allocation and zero encoding per request —
// with access logging, SLO accounting, metrics, and admission control
// enabled.
//
// The snapshot lifecycle is crash-safe. Builds run under a supervisor
// (internal/snapshot.Supervisor): a build that panics, errors, or hangs
// never interrupts serving — the last good snapshot stays published while
// failed builds retry with jittered exponential backoff, and SIGHUP/ticker
// triggers arriving mid-build coalesce. With -snapshot-dir, every published
// snapshot is durably persisted (CRC-validated format, atomic writes,
// keep-last-K generations); on boot rankd warm-starts from the newest valid
// generation and serves it immediately — marked "stale" on /v1/snapshot —
// while the first real build runs in the background. The operational
// contract is "serve the last good snapshot, clearly marked stale", never
// "serve nothing".
//
// SIGHUP — or -refresh at an interval — requests a rebuild; the new
// snapshot publishes with an atomic pointer swap and requests in flight
// finish on the snapshot they loaded. SIGINT/SIGTERM cancel any in-flight
// build and drain promptly.
//
// Usage:
//
//	rankd [-addr HOST:PORT] [-seed N] [-scale F] [-vpscale F] [-topn N]
//	      [-refresh D] [-countries CC,CC,...]
//	      [-snapshot-dir DIR] [-snapshot-keep K] [-allow-degraded]
//	      [-drift-gate SCORE] [-allow-drift] [-history K] [-seed-step N]
//	      [-build-timeout D] [-stale-after D] [-max-inflight N]
//	      [-access-log PATH] [-access-log-sample N] [-access-log-slow D]
//	      [-trace-sample F] [-slo SPEC] [-slow-probe D]
//	      [-v LEVEL] [-debug-addr HOST:PORT] [-trace-out FILE]
//	      [-manifest FILE] [-timeline D]
//
// Robustness:
//
//   - -snapshot-dir enables the durable last-good store and warm starts.
//   - -build-timeout bounds one rebuild; a hung build is abandoned and
//     retried with backoff while the last good snapshot keeps serving.
//   - -allow-degraded lets a quorum-degraded rebuild replace a healthy
//     snapshot (default: it is rejected and the healthy one keeps serving).
//   - -stale-after flips /readyz to 503 once the served snapshot's age
//     exceeds it — readiness, distinct from /healthz liveness, so a load
//     balancer can rotate a stale replica out without restarting it.
//   - -max-inflight sheds requests beyond that concurrency with
//     503 + Retry-After instead of queueing without bound.
//
// Observability:
//
//   - -access-log writes one wide JSON event per request ("-" for stderr)
//     through a lock-free ring, head-sampled by -access-log-sample; errors
//     and requests slower than -access-log-slow are always logged. The file
//     is opened append-mode, so restarts (a designed-for event) extend the
//     log instead of truncating it.
//   - -trace-sample promotes that fraction of requests to full traces,
//     inspectable at /debug/requests (active, recent, slowest per route).
//   - -slo (e.g. "availability=99.9,latency=99.9@5ms" or "default") tracks
//     burn rates at /debug/slo and flips /healthz to 503 degraded while the
//     fast burn exceeds its trip threshold.
//   - -slow-probe delays requests whose query carries probe=slow — a CI
//     hook for exercising the degraded flip.
//
// Drift and history: every rollover is diffed against the outgoing
// snapshot (internal/snapshot.Diff) — per-metric churn scores, entered and
// exited ASes, and top movers export as countryrank_drift_* metrics, land
// in the manifest as a drift summary, and accumulate in an epoch history
// ring (-history K) served at /debug/history and per country at
// /v1/countries/{cc}/history. -drift-gate SCORE refuses to publish a
// rebuild whose churn exceeds the threshold (like the degraded gate:
// logged, counted, no backoff; -allow-drift overrides). cmd/rankdiff
// renders the same diff offline from two persisted generations.
//
// -manifest writes the provenance manifest as soon as the first snapshot is
// published (not at exit), recording the serving config and the snapshot
// content digest, so a scrape can be traced to the exact bytes served
// while the daemon is still running. At shutdown the manifest is rewritten
// with the final SLO burn state as notes.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"countryrank/internal/core"
	"countryrank/internal/countries"
	"countryrank/internal/obs"
	"countryrank/internal/routing"
	"countryrank/internal/snapshot"
)

func main() {
	start0 := time.Now()
	addr := flag.String("addr", "127.0.0.1:8080", "serve the snapshot API (and debug endpoints) on this host:port")
	seed := flag.Int64("seed", 1, "world seed")
	scale := flag.Float64("scale", 1, "stub-count scale factor")
	vpscale := flag.Float64("vpscale", 1, "VP-count scale factor")
	topn := flag.Int("topn", snapshot.DefaultMaxTopN, "max entries per ranking and /v1/top ?n= cap")
	refresh := flag.Duration("refresh", 0, "recompute and atomically swap the snapshot at this interval (0 = only on SIGHUP)")
	ccList := flag.String("countries", "", "comma-separated country codes to serve (default: all with ranked ASes)")
	shards := flag.Int("shards", 0, "propagation shards (0 = 4×GOMAXPROCS)")
	snapDir := flag.String("snapshot-dir", "", "durably persist published snapshots here and warm-start from the newest valid generation (empty = off)")
	snapKeep := flag.Int("snapshot-keep", snapshot.DefaultKeepGenerations, "on-disk snapshot generations to retain")
	allowDegraded := flag.Bool("allow-degraded", false, "let a quorum-degraded rebuild replace a healthy snapshot")
	driftGate := flag.Float64("drift-gate", 0, "refuse to publish a rebuild whose drift churn score exceeds this (0 = off)")
	allowDrift := flag.Bool("allow-drift", false, "override -drift-gate (the drift is still computed and logged)")
	histKeep := flag.Int("history", snapshot.DefaultHistoryEpochs, "epochs of per-country rank history to retain (/debug/history, /v1/countries/{cc}/history)")
	seedStep := flag.Int64("seed-step", 0, "advance the world seed by this much per epoch so successive rebuilds differ (drift demo / CI hook; 0 = fixed world)")
	buildTimeout := flag.Duration("build-timeout", 0, "abandon a rebuild after this long and retry with backoff (0 = no timeout)")
	staleAfter := flag.Duration("stale-after", 0, "flip /readyz to 503 when the served snapshot is older than this (0 = never)")
	maxInflight := flag.Int("max-inflight", 0, "shed /v1 requests beyond this concurrency with 503 + Retry-After (0 = no limit)")
	accessLog := flag.String("access-log", "", "write wide-event request logs to this file (\"-\" = stderr, empty = off)")
	accessSample := flag.Int("access-log-sample", 1, "log 1 in N successful responses (0 = none; errors and slow requests always logged)")
	accessSlow := flag.Duration("access-log-slow", 100*time.Millisecond, "always log requests at least this slow (0 disables the override)")
	traceSample := flag.Float64("trace-sample", 0, "fraction of requests promoted to /debug/requests traces (0 = off, 1 = all)")
	sloSpec := flag.String("slo", "", "serving objectives, e.g. \"availability=99.9,latency=99.9@5ms\" or \"default\" (empty = off)")
	slowProbe := flag.Duration("slow-probe", 0, "delay requests tagged probe=slow by this much (CI latency-injection hook)")
	ofl := obs.Flags("rankd")
	flag.Parse()
	ofl.Init()

	var only []countries.Code
	for _, cc := range strings.Split(*ccList, ",") {
		cc = strings.ToUpper(strings.TrimSpace(cc))
		if cc == "" {
			continue
		}
		if !countries.Known(countries.Code(cc)) {
			slog.Error("unknown country", "code", cc)
			os.Exit(1)
		}
		only = append(only, countries.Code(cc))
	}
	cfg := snapshot.Config{MaxTopN: *topn, Countries: only}
	opt := core.Options{
		Seed: *seed, StubScale: *scale, VPScale: *vpscale,
		Routing: routing.BuildOptions{Shards: *shards},
	}

	ofl.Manifest.Seed("world", *seed)
	build := func(ctx context.Context, epoch int64) (*snapshot.Snapshot, error) {
		start := time.Now()
		bopt := opt
		if *seedStep != 0 {
			// Drift demo / CI hook: each epoch builds a slightly different
			// world, so rollovers produce real rank movement.
			bopt.Seed = *seed + (epoch-1)*(*seedStep)
		}
		p := core.NewPipeline(bopt)
		if err := ctx.Err(); err != nil {
			return nil, err // canceled mid-build: don't bother rendering
		}
		snap := snapshot.Build(p, epoch, cfg)
		slog.Info("snapshot built", "epoch", epoch, "digest", snap.Digest[:12],
			"countries", len(snap.CountryCodes()), "took", time.Since(start).Round(time.Millisecond))
		return snap, ctx.Err()
	}

	// Warm start: with -snapshot-dir, load the newest valid persisted
	// generation and serve it (marked stale) while the first real build
	// runs in the background. Cold start publishes nothing until the first
	// build lands, so main waits for it below before listening.
	var persist *snapshot.Persister
	store := snapshot.NewStore(nil)
	firstEpoch := int64(1)
	if *snapDir != "" {
		var err error
		persist, err = snapshot.NewPersister(*snapDir, *snapKeep)
		if err != nil {
			slog.Error("snapshot dir unusable", "dir", *snapDir, "err", err)
			os.Exit(1)
		}
		warm, skipped, err := persist.LoadLatest()
		if err != nil {
			slog.Error("snapshot dir unreadable", "dir", *snapDir, "err", err)
			os.Exit(1)
		}
		if skipped > 0 {
			slog.Warn("rejected corrupt snapshot generations at warm start", "dir", *snapDir, "skipped", skipped)
		}
		if warm != nil {
			store = snapshot.NewStore(warm)
			firstEpoch = warm.Epoch + 1
			slog.Info("warm start: serving persisted snapshot while rebuilding",
				"epoch", warm.Epoch, "digest", warm.Digest[:12],
				"age", time.Since(warm.SavedAt).Round(time.Second))
		}
	}
	warmStarted := store.Load() != nil

	// firstPub closes once the supervisor publishes its first snapshot —
	// the cold-start listen gate and the manifest trigger.
	firstPub := make(chan struct{})
	var firstPubClosed bool
	store.SetHistoryLimit(*histKeep)
	sup := snapshot.NewSupervisor(store, firstEpoch, snapshot.SupervisorConfig{
		Build:         build,
		BuildTimeout:  *buildTimeout,
		AllowDegraded: *allowDegraded,
		DriftGate:     *driftGate,
		AllowDrift:    *allowDrift,
		StaleAfter:    *staleAfter,
		Persist:       persist,
		Seed:          *seed,
		OnPublish: func(s *snapshot.Snapshot) {
			if !firstPubClosed { // supervisor goroutine only; no race
				firstPubClosed = true
				close(firstPub)
			}
		},
	})
	obs.SetDefaultReady(sup.Ready)
	obs.SetDefaultHistory(func() any { return store.HistoryData() })
	sup.Trigger("boot")

	// Assemble the serving instrumentation from the observability flags.
	ins := snapshot.Instrumentation{SlowProbe: *slowProbe, MaxInFlight: *maxInflight}
	if *accessLog != "" {
		out := os.Stderr
		if *accessLog != "-" {
			// Append, never truncate: restarts are a designed-for event and
			// the previous process's log is evidence, not garbage.
			f, err := os.OpenFile(*accessLog, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
			if err != nil {
				slog.Error("access log open failed", "path", *accessLog, "err", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		ins.Log = obs.NewAccessLog(
			slog.New(slog.NewJSONHandler(out, nil)),
			obs.AccessLogConfig{SampleOK: *accessSample, SlowAfter: *accessSlow},
		).Start()
		defer ins.Log.Close()
	}
	if *traceSample > 0 {
		ins.Requests = obs.NewReqTracker(*seed, *traceSample, 64, 8)
		obs.SetDefaultRequests(ins.Requests)
	}
	var slo *obs.SLO
	if *sloSpec != "" {
		cfg, err := obs.ParseSLO(*sloSpec)
		if err != nil {
			slog.Error("bad -slo", "spec", *sloSpec, "err", err)
			os.Exit(1)
		}
		slo = obs.NewSLO(cfg)
		ins.SLO = slo
		obs.SetDefaultSLO(slo)
		ofl.Manifest.SetNote("slo_config", cfg.String())
	}
	if *traceSample > 0 {
		ofl.Manifest.SetNote("trace_sample", strconv.FormatFloat(*traceSample, 'g', -1, 64))
	}

	// Cold start has nothing to serve yet: wait for the first publish so
	// the first accepted connection always gets data. Warm start serves the
	// persisted snapshot immediately and lets the rebuild land whenever it
	// lands.
	if !warmStarted {
		<-firstPub
	}
	first := store.Load()

	h := snapshot.NewHandler(store)
	h.Instrument(ins)

	mux := http.NewServeMux()
	mux.Handle("/v1/", h)
	mux.Handle("/", obs.NewDebugMux())
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		slog.Error("listen failed", "addr", *addr, "err", err)
		// os.Exit skips defers: flush the access log explicitly so the
		// startup events (including a warm-start marker) are not lost.
		if ins.Log != nil {
			ins.Log.Close()
		}
		sup.Close()
		os.Exit(1)
	}
	slog.Info("rankd serving", "addr", ln.Addr().String(),
		"epoch", first.Epoch, "stale", first.Stale)

	// The manifest is written now — at publish, not at exit — so anything
	// scraping the daemon can pair responses with the digest that produced
	// them. The serving config rides along as notes.
	ofl.Manifest.SetNote("serving_addr", ln.Addr().String())
	ofl.Manifest.SetNote("snapshot_digest", first.Digest)
	ofl.Manifest.SetNote("snapshot_epoch", strconv.FormatInt(first.Epoch, 10))
	ofl.Manifest.SetNote("snapshot_stale", strconv.FormatBool(first.Stale))
	ofl.Manifest.SetNote("max_top_n", strconv.Itoa(first.MaxTopN()))
	if *ofl.ManifestOut != "" {
		ofl.Manifest.Finish(time.Since(start0), obs.Default.Snapshot(), obs.DefaultTrace.Render())
		if err := ofl.Manifest.WriteFile(*ofl.ManifestOut); err != nil {
			slog.Error("manifest write failed", "path", *ofl.ManifestOut, "err", err)
		} else {
			slog.Info("manifest written", "path", *ofl.ManifestOut)
		}
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	var tick <-chan time.Time
	if *refresh > 0 {
		t := time.NewTicker(*refresh)
		defer t.Stop()
		tick = t.C
	}

	// finish records the final SLO burn state and the last rollover's drift
	// summary into the manifest (Done rewrites it when -manifest was given)
	// before the shared teardown.
	finish := func() {
		if d := sup.LastDrift(); d != nil {
			ofl.Manifest.SetNote("drift_summary", d.Summary())
			ofl.Manifest.SetNote("drift_churn_score", strconv.FormatFloat(d.MaxChurn, 'g', -1, 64))
			ofl.Manifest.SetNote("drift_max_rank_delta", strconv.Itoa(d.MaxRankDelta))
			ofl.Manifest.SetNote("drift_epochs",
				strconv.FormatInt(d.OldEpoch, 10)+"->"+strconv.FormatInt(d.NewEpoch, 10))
		}
		if slo != nil {
			availFast, availSlow, latFast, latSlow := slo.Burns()
			reason, degraded := slo.Degraded()
			ofl.Manifest.SetNote("slo_availability_fast_burn", strconv.FormatFloat(availFast, 'g', 4, 64))
			ofl.Manifest.SetNote("slo_availability_slow_burn", strconv.FormatFloat(availSlow, 'g', 4, 64))
			ofl.Manifest.SetNote("slo_latency_fast_burn", strconv.FormatFloat(latFast, 'g', 4, 64))
			ofl.Manifest.SetNote("slo_latency_slow_burn", strconv.FormatFloat(latSlow, 'g', 4, 64))
			ofl.Manifest.SetNote("slo_degraded", strconv.FormatBool(degraded))
			if degraded {
				ofl.Manifest.SetNote("slo_degraded_reason", reason)
			}
		}
		ofl.Done()
	}

	for {
		select {
		case <-hup:
			sup.Trigger("SIGHUP") // coalesces if a build is already running
		case <-tick:
			sup.Trigger("refresh interval")
		case sig := <-stop:
			slog.Info("shutting down", "signal", sig.String())
			// Cancel any in-flight build first — shutdown must not wait for
			// a slow rebuild — then drain the listener.
			sup.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if err := srv.Shutdown(ctx); err != nil {
				slog.Warn("shutdown incomplete", "err", err)
			}
			cancel()
			finish()
			return
		case err := <-serveErr:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				slog.Error("serve failed", "err", err)
				sup.Close()
				if ins.Log != nil {
					ins.Log.Close()
				}
				os.Exit(1)
			}
			sup.Close()
			finish()
			return
		}
	}
}
