// Command rankdiff renders the drift between two persisted snapshot
// generations: the paper-style delta report (per-metric churn scores,
// movement histogram, top movers in the case-study table format) that the
// live supervisor logs at every rollover — computed by the same diff
// engine over the same structured rank vectors, so an offline report and
// the live drift summary always agree.
//
// Usage:
//
//	rankdiff [-n N] [-gate SCORE] [-json] OLD.csnap NEW.csnap
//	rankdiff [-n N] [-gate SCORE] [-json] -snapshot-dir DIR [-epochs A,B]
//
// With -snapshot-dir, the two newest valid generations are compared
// (oldest as the "before" side); -epochs A,B selects two specific epochs
// instead. -gate exits with status 2 when the max churn score exceeds the
// threshold, so scenario runs can gate on drift exactly like rankd's
// -drift-gate. Files persisted by older rankd builds (format v1) carry no
// rank vectors and cannot be diffed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"countryrank/internal/snapshot"
)

func main() {
	n := flag.Int("n", 10, "top movers to show per metric")
	gate := flag.Float64("gate", 0, "exit 2 when the max churn score exceeds this (0 = no gate)")
	asJSON := flag.Bool("json", false, "emit the structured Drift as JSON instead of the report")
	dir := flag.String("snapshot-dir", "", "diff the two newest generations in this directory")
	epochs := flag.String("epochs", "", "with -snapshot-dir: diff these two epochs, \"A,B\" (A = before)")
	flag.Parse()

	oldPath, newPath, err := resolvePaths(*dir, *epochs, flag.Args())
	if err != nil {
		fatal(err)
	}
	oldSnap, err := snapshot.LoadFile(oldPath)
	if err != nil {
		fatal(fmt.Errorf("load %s: %w", oldPath, err))
	}
	newSnap, err := snapshot.LoadFile(newPath)
	if err != nil {
		fatal(fmt.Errorf("load %s: %w", newPath, err))
	}
	drift := snapshot.Diff(oldSnap, newSnap)
	if drift == nil {
		fatal(fmt.Errorf("no rank vectors to diff (format-v1 generation?): %s vs %s", oldPath, newPath))
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(drift); err != nil {
			fatal(err)
		}
	} else {
		fmt.Print(drift.Render(*n))
	}
	if *gate > 0 && drift.MaxChurn > *gate {
		fmt.Fprintf(os.Stderr, "rankdiff: churn %g exceeds gate %g\n", drift.MaxChurn, *gate)
		os.Exit(2)
	}
}

// resolvePaths picks the (old, new) generation files from the flags: two
// positional paths, or a -snapshot-dir (newest two generations, oldest
// first) optionally pinned to two epochs.
func resolvePaths(dir, epochs string, args []string) (string, string, error) {
	if dir == "" {
		if len(args) != 2 {
			return "", "", fmt.Errorf("want two .csnap paths (or -snapshot-dir), got %d args", len(args))
		}
		return args[0], args[1], nil
	}
	if len(args) != 0 {
		return "", "", fmt.Errorf("-snapshot-dir and positional paths are mutually exclusive")
	}
	p, err := snapshot.NewPersister(dir, 0)
	if err != nil {
		return "", "", err
	}
	if epochs != "" {
		parts := strings.Split(epochs, ",")
		if len(parts) != 2 {
			return "", "", fmt.Errorf("-epochs wants \"A,B\", got %q", epochs)
		}
		var paths [2]string
		for i, part := range parts {
			e, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				return "", "", fmt.Errorf("-epochs: %w", err)
			}
			paths[i] = p.GenerationPath(e)
		}
		return paths[0], paths[1], nil
	}
	gens, err := p.Generations() // newest first
	if err != nil {
		return "", "", err
	}
	if len(gens) < 2 {
		return "", "", fmt.Errorf("%s holds %d generation(s); need two to diff", dir, len(gens))
	}
	return gens[1], gens[0], nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rankdiff:", err)
	os.Exit(1)
}
