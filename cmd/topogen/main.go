// Command topogen generates a synthetic world and exports its vantage-point
// RIBs as MRT TABLE_DUMP_V2 files — one per collector — into an output
// directory, plus a summary of the world on stdout. The files are the same
// interchange format RouteViews and RIPE RIS publish, so cmd/crank (or any
// MRT consumer) can process them.
//
// Usage:
//
//	topogen [-seed N] [-scale F] [-vpscale F] [-scenario 20210401|20230301] -out DIR
//	        [-v LEVEL] [-debug-addr HOST:PORT] [-debug-linger D]
//	        [-trace-out FILE] [-manifest FILE] [-timeline D]
//
// -v raises the structured-log verbosity (0 info, 1 debug stage logs);
// -debug-addr serves /metrics, /healthz, expvar, pprof, /debug/trace, and
// /debug/timeline. -trace-out writes a Perfetto-loadable Chrome trace and
// -manifest a run provenance manifest, so a dump directory can be traced
// back to the exact seed and flags that generated it.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"

	"countryrank/internal/obs"
	"countryrank/internal/routing"
	"countryrank/internal/topology"
)

func main() {
	seed := flag.Int64("seed", 1, "world seed")
	scale := flag.Float64("scale", 1, "stub-count scale factor")
	vpscale := flag.Float64("vpscale", 1, "VP-count scale factor")
	scenario := flag.String("scenario", string(topology.Apr2021), "snapshot scenario")
	out := flag.String("out", "", "output directory for MRT files (required)")
	shards := flag.Int("shards", 0, "propagation shards (0 = 4×GOMAXPROCS)")
	spillDir := flag.String("spill-dir", "", "spill records to columnar runs under this directory instead of RAM")
	ofl := obs.Flags("topogen")
	flag.Parse()
	ofl.Init()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	ofl.Manifest.Seed("world", *seed)
	w := topology.Build(topology.Config{
		Seed:      *seed,
		Scenario:  topology.Scenario(*scenario),
		StubScale: *scale,
		VPScale:   *vpscale,
	})
	col, err := routing.BuildCollectionWith(w, routing.BuildOptions{Shards: *shards, SpillDir: *spillDir})
	if err != nil {
		slog.Error("build collection", "err", err)
		os.Exit(1)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		slog.Error("create output directory", "dir", *out, "err", err)
		os.Exit(1)
	}
	var files int
	for _, c := range w.VPs.Collectors() {
		path := filepath.Join(*out, c.Name+".mrt")
		f, err := os.Create(path)
		if err != nil {
			slog.Error("create dump", "path", path, "err", err)
			os.Exit(1)
		}
		if err := routing.ExportMRT(f, col, c.Name, 1617235200); err != nil {
			slog.Error("export failed", "collector", c.Name, "err", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			slog.Error("close dump", "path", path, "err", err)
			os.Exit(1)
		}
		slog.Debug("exported collector", "stage", "mrt-export", "collector", c.Name, "path", path)
		files++
	}
	fmt.Printf("world: %d ASes, %d edges, %d prefixes, %d VPs\n",
		w.Graph.NumASes(), w.Graph.NumEdges(), len(col.Prefixes), w.VPs.Len())
	fmt.Printf("collection: %d records across %d collectors → %s\n",
		col.NumRecords(), files, *out)
	ofl.Done()
}
