// Command topogen generates a synthetic world and exports its vantage-point
// RIBs as MRT TABLE_DUMP_V2 files — one per collector — into an output
// directory, plus a summary of the world on stdout. The files are the same
// interchange format RouteViews and RIPE RIS publish, so cmd/crank (or any
// MRT consumer) can process them.
//
// Usage:
//
//	topogen [-seed N] [-scale F] [-vpscale F] [-scenario 20210401|20230301] -out DIR
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"countryrank/internal/routing"
	"countryrank/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topogen: ")
	seed := flag.Int64("seed", 1, "world seed")
	scale := flag.Float64("scale", 1, "stub-count scale factor")
	vpscale := flag.Float64("vpscale", 1, "VP-count scale factor")
	scenario := flag.String("scenario", string(topology.Apr2021), "snapshot scenario")
	out := flag.String("out", "", "output directory for MRT files (required)")
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	w := topology.Build(topology.Config{
		Seed:      *seed,
		Scenario:  topology.Scenario(*scenario),
		StubScale: *scale,
		VPScale:   *vpscale,
	})
	col := routing.BuildCollection(w, routing.BuildOptions{})

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	var files int
	for _, c := range w.VPs.Collectors() {
		path := filepath.Join(*out, c.Name+".mrt")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := routing.ExportMRT(f, col, c.Name, 1617235200); err != nil {
			log.Fatalf("export %s: %v", c.Name, err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		files++
	}
	fmt.Printf("world: %d ASes, %d edges, %d prefixes, %d VPs\n",
		w.Graph.NumASes(), w.Graph.NumEdges(), len(col.Prefixes), w.VPs.Len())
	fmt.Printf("collection: %d records across %d collectors → %s\n",
		len(col.Records), files, *out)
}
