// Package countryrank is the public API of the country-level AS ranking
// library: a reproduction of "On the Importance of Being an AS: An Approach
// to Country-Level AS Rankings" (IMC 2023).
//
// The library adapts the two canonical global AS-ranking metrics — customer
// cone and AS hegemony — to country-specific national and international
// views (CCN, CCI, AHN, AHI), implements the AHC and CTI baselines, and
// evaluates ranking stability under vantage-point downsampling with NDCG.
// Because the paper's inputs (RouteViews/RIS dumps, commercial geolocation)
// are not redistributable, the library ships a complete synthetic substrate:
// a country-modeled Internet topology generator, a valley-free BGP
// propagation simulator, MRT and BGP wire codecs, a geolocation service,
// the Table-1 sanitization pipeline, and relationship inference.
//
// Quick start:
//
//	p := countryrank.NewPipeline(countryrank.Options{Seed: 1})
//	au := p.Country("AU")
//	fmt.Print(au.AHN.Render(10))
//
// See examples/ for runnable scenarios and cmd/experiments for the full
// reproduction of every table and figure in the paper.
package countryrank

import (
	"countryrank/internal/core"
	"countryrank/internal/topology"
)

// Options configures a pipeline run; see core.Options for field docs.
type Options = core.Options

// Pipeline is a fully processed snapshot exposing the ranking metrics.
type Pipeline = core.Pipeline

// CountryRankings bundles CCI/CCN/AHI/AHN for one country.
type CountryRankings = core.CountryRankings

// Metric names a ranking metric (CCI, CCN, AHI, AHN, CCG, AHG, AHC, CTI).
type Metric = core.Metric

// ViewKind selects national, international or global views.
type ViewKind = core.ViewKind

// OutboundRankings bundles the outbound-view metrics (the §7 extension).
type OutboundRankings = core.OutboundRankings

// View kinds.
const (
	National      = core.National
	International = core.International
	Global        = core.Global
	// Outbound implements §7's future-work direction: paths out of a
	// country (in-country VPs toward out-of-country prefixes).
	Outbound = core.Outbound
)

// Metrics.
const (
	CCI = core.CCI
	CCN = core.CCN
	AHI = core.AHI
	AHN = core.AHN
	CCG = core.CCG
	AHG = core.AHG
	AHC = core.AHC
	CTI = core.CTI
)

// Scenarios mirror the paper's two measurement dates.
const (
	Apr2021 = topology.Apr2021
	Mar2023 = topology.Mar2023
)

// Option sentinels. The zero value of Options.Trim / Options.Threshold
// selects the paper's defaults; these request an actual zero instead.
const (
	// NoTrim disables AH/CTI trimming (the trim ablation).
	NoTrim = core.NoTrim
	// PluralityThreshold geolocates a prefix to any plurality country
	// rather than requiring a majority.
	PluralityThreshold = core.PluralityThreshold
)

// NewPipeline builds a synthetic world per the options and runs the full
// processing pipeline over it (Figure 6 of the paper).
func NewPipeline(opt Options) *Pipeline { return core.NewPipeline(opt) }
