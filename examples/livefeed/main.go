// Livefeed: the full collector data path, live. Vantage points feed their
// routing tables to a collector over real BGP sessions (OPEN handshake,
// keepalives, UPDATE stream), the collector's per-peer tables are assembled
// into a collection, and the ranking pipeline runs on what was collected —
// exactly how RouteViews data comes to exist.
package main

import (
	"fmt"
	"log"
	"net"
	"net/netip"
	"sync"
	"time"

	"countryrank/internal/bgpsession"
	"countryrank/internal/core"
	"countryrank/internal/routing"
	"countryrank/internal/topology"
)

func main() {
	log.SetFlags(0)
	w := topology.Build(topology.Config{Seed: 1, StubScale: 0.3, VPScale: 0.3})
	col := routing.BuildCollection(w, routing.BuildOptions{
		LoopFrac: -1, PoisonFrac: -1, UnallocFrac: -1, UnstableFrac: -1,
	})

	// Every VP with records dials the collector.
	hasRecords := map[int32]bool{}
	for _, r := range col.Records {
		hasRecords[r.VP] = true
	}

	tables := map[int32]*bgpsession.Table{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	sessions, updates := 0, 0
	for vpIdx := range hasRecords {
		vpIdx := vpIdx
		sessions++
		speakerConn, collectorConn := net.Pipe()
		wg.Add(2)
		go func() { // the vantage point
			defer wg.Done()
			sess, err := bgpsession.Establish(speakerConn, bgpsession.Config{
				AS:    w.VPs.VP(int(vpIdx)).AS,
				BGPID: netip.MustParseAddr("10.0.0.1"),
			})
			if err != nil {
				log.Fatalf("speaker: %v", err)
			}
			if _, err := routing.FeedVP(sess, col, vpIdx); err != nil {
				log.Fatalf("feed: %v", err)
			}
		}()
		go func() { // the collector
			defer wg.Done()
			sess, err := bgpsession.Establish(collectorConn, bgpsession.Config{
				AS: 6447, BGPID: netip.MustParseAddr("10.0.0.2"),
			})
			if err != nil {
				log.Fatalf("collector: %v", err)
			}
			table := bgpsession.NewTable()
			n, err := sess.Collect(table, 0)
			if err != nil {
				log.Fatalf("collect: %v", err)
			}
			mu.Lock()
			tables[vpIdx] = table
			updates += n
			mu.Unlock()
		}()
	}
	start := time.Now()
	wg.Wait()
	fmt.Printf("collected %d updates over %d BGP sessions in %v\n",
		updates, sessions, time.Since(start))

	live := routing.CollectionFromTables(col, tables)
	p := core.NewPipelineFrom(w, live, core.Options{Seed: 1})
	jp := p.Country("JP")
	fmt.Println("\nJapan rankings computed from the live-collected tables:")
	fmt.Print(jp.CCI.Render(5))
	fmt.Print(jp.AHN.Render(5))
}
