// MRT flow: end-to-end interchange-format demo. Generates a world, exports
// every collector's RIB as MRT TABLE_DUMP_V2 (the RouteViews/RIS format),
// re-imports the dumps as a fresh collection, and verifies the rankings
// computed from the round-tripped data match the in-memory ones.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"

	"countryrank/internal/core"
	"countryrank/internal/routing"
	"countryrank/internal/topology"
)

func main() {
	log.SetFlags(0)
	w := topology.Build(topology.Config{Seed: 1, StubScale: 0.4, VPScale: 0.4})
	// Disable day-churn so the single-day MRT dumps carry the whole truth
	// (stability flags are not part of the MRT format).
	col := routing.BuildCollection(w, routing.BuildOptions{UnstableFrac: -1})

	// Export one MRT stream per collector.
	var streams []io.Reader
	totalBytes := 0
	for _, c := range w.VPs.Collectors() {
		var buf bytes.Buffer
		if err := routing.ExportMRT(&buf, col, c.Name, 1617235200); err != nil {
			log.Fatalf("export %s: %v", c.Name, err)
		}
		totalBytes += buf.Len()
		streams = append(streams, &buf)
	}
	fmt.Printf("exported %d collectors, %.1f MiB of TABLE_DUMP_V2\n",
		len(w.VPs.Collectors()), float64(totalBytes)/(1<<20))

	// Re-import and rebuild the pipeline from the dumps.
	imported, err := routing.ImportMRT(w, streams)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-imported %d records (in-memory collection had %d)\n",
		len(imported.Records), len(col.Records))

	direct := core.NewPipelineFrom(w, col, core.Options{Seed: 1})
	viaMRT := core.NewPipelineFrom(w, imported, core.Options{Seed: 1})

	a := direct.Country("JP").CCI.TopASNs(5)
	b := viaMRT.Country("JP").CCI.TopASNs(5)
	fmt.Printf("JP CCI top-5 direct:  %v\n", a)
	fmt.Printf("JP CCI top-5 via MRT: %v\n", b)
	for i := range a {
		if a[i] != b[i] {
			log.Fatal("mismatch: MRT round trip changed the ranking")
		}
	}
	fmt.Println("rankings identical across the MRT round trip ✓")
}
