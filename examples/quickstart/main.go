// Quickstart: build a synthetic Internet, run the paper's pipeline, and
// print Australia's four country-specific AS rankings — the Table 5
// scenario. Uses a reduced world so it finishes in a couple of seconds.
package main

import (
	"fmt"

	"countryrank"
)

func main() {
	p := countryrank.NewPipeline(countryrank.Options{
		Seed:      1,
		StubScale: 0.8, // slightly reduced world keeps the demo quick
		VPScale:   0.8,
	})

	fmt.Printf("sanitized %d of %d observed paths\n\n",
		p.DS.Len(), p.DS.Stats.Total)

	au := p.Country("AU")
	fmt.Print(au.CCI.Render(5)) // who the world uses to reach Australia
	fmt.Print(au.AHI.Render(5))
	fmt.Print(au.CCN.Render(5)) // who Australia uses to reach itself
	fmt.Print(au.AHN.Render(5))

	// The paper's headline: Telstra's domestic AS tops the national
	// hegemony ranking, while its international AS matters only abroad.
	fmt.Printf("\nTelstra domestic (AS1221): AHN=%.0f%%  AHI=%.0f%%\n",
		100*au.AHN.ValueOf(1221), 100*au.AHI.ValueOf(1221))
	fmt.Printf("Telstra Global  (AS4637): AHN=%.0f%%  AHI=%.0f%%\n",
		100*au.AHN.ValueOf(4637), 100*au.AHI.ValueOf(4637))
}
