// Sanctions: §6.1's analysis — did Russia's international transit diet
// change after the February 2022 invasion and the Lumen/Cogent/GTT
// withdrawals? Reproduces the Table 10 comparison and the paper's headline
// ("Russia's dependence on foreign transit ISPs has not decreased").
package main

import (
	"fmt"

	"countryrank"
	"countryrank/internal/experiments"
)

func main() {
	p21 := countryrank.NewPipeline(countryrank.Options{
		Seed: 1, StubScale: 0.6, VPScale: 0.6,
	})
	p23 := countryrank.NewPipeline(countryrank.Options{
		Seed: 1, Scenario: countryrank.Mar2023, StubScale: 0.6, VPScale: 0.6,
	})

	t := experiments.RunTemporal(p21, p23, "RU")
	fmt.Print(t.Render())

	fmt.Println()
	if t.ForeignShareTop10() >= 3 {
		fmt.Println("Conclusion: foreign carriers still dominate Russia's international")
		fmt.Println("transit after the 2023 rewiring — matching §6.1's finding that the")
		fmt.Println("sanctions changed individual ranks, not the dependence itself.")
	} else {
		fmt.Println("Unexpected: Russia's top-10 turned mostly domestic.")
	}
}
