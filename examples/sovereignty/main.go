// Sovereignty: §6.2's question — how dependent is Taiwan on Chinese ISPs?
// Computes Taiwan's international rankings in the April 2021 and March 2023
// snapshots and reports the standing of every China-registered AS.
package main

import (
	"fmt"

	"countryrank"
)

func main() {
	p21 := countryrank.NewPipeline(countryrank.Options{
		Seed: 1, StubScale: 0.6, VPScale: 0.6,
	})
	p23 := countryrank.NewPipeline(countryrank.Options{
		Seed: 1, Scenario: countryrank.Mar2023, StubScale: 0.6, VPScale: 0.6,
	})

	for _, snap := range []struct {
		label string
		p     *countryrank.Pipeline
	}{
		{"April 2021", p21},
		{"March 2023", p23},
	} {
		tw := snap.p.Country("TW")
		fmt.Printf("== Taiwan, %s\n", snap.label)

		taiwanese := 0
		for _, e := range tw.AHI.Top(10) {
			if e.Info.Country == "TW" {
				taiwanese++
			}
		}
		fmt.Printf("Taiwanese ASes in AHI top 10: %d/10\n", taiwanese)

		// Chinese influence: best CCI/AHI standing of any CN-registered AS.
		info := snap.p.Info()
		bestRank := 0
		for _, e := range tw.CCI.Entries {
			if info(e.ASN).Country == "CN" {
				bestRank = e.Rank
				fmt.Printf("highest-ranked Chinese AS in CCI: AS%d %s at rank %d (%.0f%% of TW space)\n",
					uint32(e.ASN), e.Info.Name, e.Rank, 100*e.Value)
				break
			}
		}
		if bestRank == 0 {
			fmt.Println("no Chinese AS appears in Taiwan's CCI ranking")
		}
		fmt.Println()
	}
	fmt.Println("(§6.2: China Telecom drops out of Taiwan's CCI top 10 between snapshots)")
}
