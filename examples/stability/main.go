// Stability: §4's question — how many vantage points does a trustworthy
// country ranking need? Downsamples VPs for Germany's national and
// international views and prints the NDCG curves with the paper's 0.8/0.9
// thresholds.
package main

import (
	"fmt"

	"countryrank"
)

func main() {
	p := countryrank.NewPipeline(countryrank.Options{
		Seed: 1, StubScale: 0.6, VPScale: 0.7,
	})

	const country = "DE"
	for _, m := range []countryrank.Metric{countryrank.AHN, countryrank.CCN, countryrank.AHI, countryrank.CCI} {
		sizes := []int{1, 2, 3, 4, 6, 9, 13, 19, 25, 40, 60, 91}
		pts := p.Stability(m, country, sizes, 6, 42)
		fmt.Printf("%s %s:", m, country)
		reached8, reached9 := 0, 0
		for _, pt := range pts {
			fmt.Printf(" %d:%.2f", pt.VPs, pt.MeanNDCG)
			if reached8 == 0 && pt.MeanNDCG >= 0.8 {
				reached8 = pt.VPs
			}
			if reached9 == 0 && pt.MeanNDCG >= 0.9 {
				reached9 = pt.VPs
			}
		}
		fmt.Printf("\n  → NDCG≥0.8 with %d VPs, ≥0.9 with %d VPs\n", reached8, reached9)
	}
	fmt.Println("\n(§4: the paper reports 9/6 VPs for NDCG≥0.8 and 25/19 for ≥0.9 on")
	fmt.Println("the real topology; the synthetic world converges faster because its")
	fmt.Println("AS-level diversity is smaller, but the monotone shape is the same.)")
}
