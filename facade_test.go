package countryrank

import "testing"

// TestPublicAPI exercises the library exactly as a downstream user would:
// through the root package only.
func TestPublicAPI(t *testing.T) {
	p := NewPipeline(Options{Seed: 3, StubScale: 0.15, VPScale: 0.2})

	au := p.Country("AU")
	if au.CCI.Len() == 0 || au.CCN.Len() == 0 || au.AHI.Len() == 0 || au.AHN.Len() == 0 {
		t.Fatal("empty country rankings")
	}
	ccg, ahg := p.Global()
	if ccg.Len() == 0 || ahg.Len() == 0 {
		t.Fatal("empty global rankings")
	}
	if p.AHC("AU").Len() == 0 {
		t.Fatal("empty AHC")
	}
	if p.CTI("AU").Len() == 0 {
		t.Fatal("empty CTI")
	}
	out := p.Outbound("AU")
	if out.CCO.Len() == 0 || out.AHO.Len() == 0 {
		t.Fatal("empty outbound rankings")
	}
	pts := p.Stability(CCN, "NL", []int{2, 5}, 2, 1)
	if len(pts) != 2 {
		t.Fatalf("stability points: %+v", pts)
	}
	for _, k := range []ViewKind{National, International, Global, Outbound} {
		_ = p.ViewRecords(k, "AU") // must not panic
	}
	for _, m := range []Metric{CCI, CCN, AHI, AHN, CCG, AHG, AHC, CTI} {
		if m == "" {
			t.Error("empty metric name")
		}
	}
	if Apr2021 == Mar2023 {
		t.Error("scenarios must differ")
	}
}
