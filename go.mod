module countryrank

go 1.22
