// Package asn models autonomous system numbers and the IANA allocation
// policy the sanitization pipeline consults: paths containing ASNs that IANA
// reports as unassigned or reserved are rejected (Table 1, "unallocated").
package asn

import (
	"fmt"
	"strconv"
)

// ASN is a 4-byte autonomous system number (RFC 6793).
type ASN uint32

// String renders the ASN in the conventional "AS64500" form.
func (a ASN) String() string { return "AS" + strconv.FormatUint(uint64(a), 10) }

// Parse parses "AS64500", "as64500" or a bare decimal number.
func Parse(s string) (ASN, error) {
	if len(s) > 2 && (s[0] == 'A' || s[0] == 'a') && (s[1] == 'S' || s[1] == 's') {
		s = s[2:]
	}
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("asn: parse %q: %w", s, err)
	}
	return ASN(v), nil
}

// Special ASN ranges per IANA's autonomous-system-numbers registry and
// RFC 5398 / RFC 6996 / RFC 7300.
const (
	// ASTrans is the 2-byte placeholder for 4-byte ASNs (RFC 6793).
	ASTrans ASN = 23456
	// Last16 is the last plain 16-bit ASN.
	Last16 ASN = 65535
)

// Reserved reports whether a falls in a range reserved by IANA and therefore
// must never appear in a clean public AS path: AS0, documentation ranges
// (RFC 5398), private-use ranges (RFC 6996), and the last ASNs of each size
// (RFC 7300).
func (a ASN) Reserved() bool {
	switch {
	case a == 0:
		return true
	case a >= 64198 && a <= 64495: // IANA reserved
		return true
	case a >= 64496 && a <= 64511: // documentation (RFC 5398)
		return true
	case a >= 64512 && a <= 65534: // private use (RFC 6996)
		return true
	case a == 65535: // last 16-bit (RFC 7300)
		return true
	case a >= 65536 && a <= 65551: // documentation (RFC 5398)
		return true
	case a >= 4200000000 && a <= 4294967294: // private use (RFC 6996)
		return true
	case a == 4294967295: // last 32-bit (RFC 7300)
		return true
	}
	return false
}

// Registry records which ASNs are allocated (assigned to an operator by an
// RIR). The sanitizer rejects paths containing unallocated ASNs. The zero
// value treats every non-reserved ASN as unallocated.
type Registry struct {
	allocated map[ASN]bool
}

// NewRegistry returns a registry with the given ASNs marked allocated.
func NewRegistry(allocated []ASN) *Registry {
	r := &Registry{allocated: make(map[ASN]bool, len(allocated))}
	for _, a := range allocated {
		r.allocated[a] = true
	}
	return r
}

// Allocate marks a as allocated.
func (r *Registry) Allocate(a ASN) {
	if r.allocated == nil {
		r.allocated = make(map[ASN]bool)
	}
	r.allocated[a] = true
}

// Allocated reports whether a is assigned and usable in a public path.
func (r *Registry) Allocated(a ASN) bool {
	if a.Reserved() {
		return false
	}
	return r != nil && r.allocated[a]
}

// Len returns the number of allocated ASNs.
func (r *Registry) Len() int { return len(r.allocated) }
