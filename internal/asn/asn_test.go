package asn

import (
	"testing"
	"testing/quick"
)

func TestString(t *testing.T) {
	if got := ASN(3356).String(); got != "AS3356" {
		t.Errorf("String = %q", got)
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want ASN
		ok   bool
	}{
		{"AS3356", 3356, true},
		{"as1299", 1299, true},
		{"174", 174, true},
		{"4294967295", 4294967295, true},
		{"4294967296", 0, false},
		{"AS", 0, false},
		{"ASX", 0, false},
		{"-1", 0, false},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("Parse(%q) = %v, %v; want %v ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	f := func(a uint32) bool {
		got, err := Parse(ASN(a).String())
		return err == nil && got == ASN(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReserved(t *testing.T) {
	reserved := []ASN{0, 64496, 64511, 64512, 65000, 65534, 65535, 65536, 65551, 4200000000, 4294967294, 4294967295, 64198, 64495}
	for _, a := range reserved {
		if !a.Reserved() {
			t.Errorf("%v should be reserved", a)
		}
	}
	public := []ASN{1, 3356, 1299, 23456, 64197, 65552, 131072, 4199999999}
	for _, a := range public {
		if a.Reserved() {
			t.Errorf("%v should not be reserved", a)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry([]ASN{3356, 1299})
	if !r.Allocated(3356) || !r.Allocated(1299) {
		t.Error("seeded ASNs should be allocated")
	}
	if r.Allocated(174) {
		t.Error("174 not allocated yet")
	}
	r.Allocate(174)
	if !r.Allocated(174) {
		t.Error("Allocate should take effect")
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
	// Reserved ASNs can never be allocated-for-use.
	r.Allocate(65000)
	if r.Allocated(65000) {
		t.Error("reserved ASN must not report allocated")
	}
}

func TestRegistryZeroValue(t *testing.T) {
	var r Registry
	if r.Allocated(3356) {
		t.Error("zero registry allocates nothing")
	}
	r.Allocate(3356)
	if !r.Allocated(3356) {
		t.Error("Allocate on zero value should initialize the map")
	}
	var nilReg *Registry
	if nilReg.Allocated(3356) {
		t.Error("nil registry allocates nothing")
	}
}
