// Package benchfmt defines the BENCH_*.json snapshot format shared by the
// benchmark driver (cmd/bench) and the serving load generator
// (cmd/loadgen), so kernel microbenchmarks and HTTP serving runs land in
// the same regression-tracked file shape.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
)

// Result is one benchmark measurement. For `go test -bench` output the
// fields carry their usual meanings; for serving runs NsPerOp is the p50
// request latency, AllocsOp is server-side allocations per request, and
// Extra carries p99_ns / p999_ns / req_per_s.
type Result struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iters"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   float64 `json:"bytes_per_op,omitempty"`
	AllocsOp float64 `json:"allocs_per_op,omitempty"`
	MBPerS   float64 `json:"mb_per_s,omitempty"`
	// Extra holds custom units (records/op, p99_ns, req_per_s, ...).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Snapshot is the BENCH_<date>.json file format.
type Snapshot struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	Bench     string   `json:"bench"`
	BenchTime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

// WriteFile writes the snapshot as indented JSON.
func (s *Snapshot) WriteFile(path string) error {
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("benchfmt: marshal: %w", err)
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadFile parses a BENCH_*.json snapshot.
func ReadFile(path string) (*Snapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(buf, &s); err != nil {
		return nil, fmt.Errorf("benchfmt: parse %s: %w", path, err)
	}
	return &s, nil
}
