package bgp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"

	"countryrank/internal/asn"
)

// AttrSet is the subset of BGP path attributes an MRT RIB entry carries for
// our pipeline: ORIGIN, AS_PATH, and NEXT_HOP. It reuses the UPDATE codec's
// attribute wire format so MRT dumps and live messages agree byte-for-byte.
type AttrSet struct {
	Origin  OriginCode
	ASPath  ASPath
	NextHop netip.Addr // optional; zero Addr means absent
}

// Marshal encodes the attribute set in BGP path-attribute wire format with
// 4-octet AS numbers.
func (a AttrSet) Marshal() ([]byte, error) {
	var b bytes.Buffer
	b.Write([]byte{flagTransit, attrOrigin, 1, byte(a.Origin)})
	var pb bytes.Buffer
	for _, seg := range a.ASPath {
		if len(seg.ASNs) > 255 {
			return nil, errors.New("bgp: segment longer than 255 ASNs")
		}
		pb.WriteByte(seg.Type)
		pb.WriteByte(byte(len(seg.ASNs)))
		for _, x := range seg.ASNs {
			binary.Write(&pb, binary.BigEndian, uint32(x))
		}
	}
	writeAttr(&b, flagTransit, attrASPath, pb.Bytes())
	if a.NextHop.IsValid() {
		if !a.NextHop.Is4() {
			return nil, errors.New("bgp: AttrSet next hop must be IPv4")
		}
		nh := a.NextHop.As4()
		writeAttr(&b, flagTransit, attrNextHop, nh[:])
	}
	return b.Bytes(), nil
}

// UnmarshalAttrs decodes a path-attribute byte string produced by
// AttrSet.Marshal (or any BGP speaker emitting the same three attributes).
// Unknown attributes are skipped.
func UnmarshalAttrs(b []byte) (AttrSet, error) {
	var a AttrSet
	for len(b) > 0 {
		if len(b) < 3 {
			return a, errors.New("bgp: truncated attribute header")
		}
		flags, code := b[0], b[1]
		var alen int
		if flags&flagExtLen != 0 {
			if len(b) < 4 {
				return a, errors.New("bgp: truncated extended length")
			}
			alen = int(binary.BigEndian.Uint16(b[2:4]))
			b = b[4:]
		} else {
			alen = int(b[2])
			b = b[3:]
		}
		if len(b) < alen {
			return a, fmt.Errorf("bgp: attribute %d truncated", code)
		}
		val := b[:alen]
		b = b[alen:]
		switch code {
		case attrOrigin:
			if alen != 1 {
				return a, errors.New("bgp: bad ORIGIN length")
			}
			a.Origin = OriginCode(val[0])
		case attrASPath:
			ap, err := decodeASPath(val)
			if err != nil {
				return a, err
			}
			a.ASPath = ap
		case attrNextHop:
			if alen != 4 {
				return a, errors.New("bgp: bad NEXT_HOP length")
			}
			a.NextHop = netip.AddrFrom4([4]byte(val))
		}
	}
	return a, nil
}

// PathOf is a convenience returning the flattened AS path of the set.
func (a AttrSet) PathOf() Path { return a.ASPath.Flatten() }

var _ = asn.ASN(0) // keep asn import explicit for readers of the wire format
