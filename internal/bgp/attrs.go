package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"

	"countryrank/internal/asn"
)

// AttrSet is the subset of BGP path attributes an MRT RIB entry carries for
// our pipeline: ORIGIN, AS_PATH, and NEXT_HOP. It reuses the UPDATE codec's
// attribute wire format so MRT dumps and live messages agree byte-for-byte.
type AttrSet struct {
	Origin  OriginCode
	ASPath  ASPath
	NextHop netip.Addr // optional; zero Addr means absent
}

// Marshal encodes the attribute set in BGP path-attribute wire format with
// 4-octet AS numbers.
func (a AttrSet) Marshal() ([]byte, error) { return a.AppendWire(nil) }

// AppendWire appends the attribute set's wire encoding to dst and returns
// the extended slice; this is the allocation-free path the MRT writer uses.
func (a AttrSet) AppendWire(dst []byte) ([]byte, error) {
	dst = append(dst, flagTransit, attrOrigin, 1, byte(a.Origin))
	// AS_PATH: the value length is computable up front, so the attribute
	// header is emitted first and the segments appended directly after it.
	plen := 0
	for _, seg := range a.ASPath {
		if len(seg.ASNs) > 255 {
			return nil, errors.New("bgp: segment longer than 255 ASNs")
		}
		plen += 2 + 4*len(seg.ASNs)
	}
	var err error
	if dst, err = appendAttrHeader(dst, flagTransit, attrASPath, plen); err != nil {
		return nil, err
	}
	for _, seg := range a.ASPath {
		dst = append(dst, seg.Type, byte(len(seg.ASNs)))
		for _, x := range seg.ASNs {
			dst = binary.BigEndian.AppendUint32(dst, uint32(x))
		}
	}
	if a.NextHop.IsValid() {
		if !a.NextHop.Is4() {
			return nil, errors.New("bgp: AttrSet next hop must be IPv4")
		}
		nh := a.NextHop.As4()
		if dst, err = appendAttrHeader(dst, flagTransit, attrNextHop, 4); err != nil {
			return nil, err
		}
		dst = append(dst, nh[:]...)
	}
	return dst, nil
}

// appendAttrHeader appends a path-attribute header for a value of n bytes.
// The extended-length bit is honored if already set in flags and forced for
// values over 255 bytes.
func appendAttrHeader(dst []byte, flags, code uint8, n int) ([]byte, error) {
	if n > 0xFFFF {
		return nil, fmt.Errorf("bgp: attribute %d value %d bytes exceeds uint16", code, n)
	}
	if n > 255 {
		flags |= flagExtLen
	}
	dst = append(dst, flags, code)
	if flags&flagExtLen != 0 {
		return binary.BigEndian.AppendUint16(dst, uint16(n)), nil
	}
	return append(dst, byte(n)), nil
}

// UnmarshalAttrs decodes a path-attribute byte string produced by
// AttrSet.Marshal (or any BGP speaker emitting the same three attributes).
// Unknown attributes are skipped.
func UnmarshalAttrs(b []byte) (AttrSet, error) {
	var d AttrDecoder
	return d.decode(b, false)
}

// AttrDecoder decodes attribute sets into reusable backing arrays, the
// allocation-free counterpart of UnmarshalAttrs for RIB scanning. Attribute
// sets decoded by the same AttrDecoder share its storage: each is valid
// only until the next Reset (the mrt scanner resets once per record, so
// entries within a record may be held together).
type AttrDecoder struct {
	segs []Segment
	asns []asn.ASN
}

// Reset recycles the decoder's backing arrays. Attribute sets decoded
// before the call must no longer be used.
func (d *AttrDecoder) Reset() {
	d.segs = d.segs[:0]
	d.asns = d.asns[:0]
}

// Decode decodes one attribute set; the result aliases the decoder's
// buffers until the next Reset.
func (d *AttrDecoder) Decode(b []byte) (AttrSet, error) { return d.decode(b, true) }

func (d *AttrDecoder) decode(b []byte, reuse bool) (AttrSet, error) {
	var a AttrSet
	for len(b) > 0 {
		if len(b) < 3 {
			return a, errors.New("bgp: truncated attribute header")
		}
		flags, code := b[0], b[1]
		var alen int
		if flags&flagExtLen != 0 {
			if len(b) < 4 {
				return a, errors.New("bgp: truncated extended length")
			}
			alen = int(binary.BigEndian.Uint16(b[2:4]))
			b = b[4:]
		} else {
			alen = int(b[2])
			b = b[3:]
		}
		if len(b) < alen {
			return a, fmt.Errorf("bgp: attribute %d truncated", code)
		}
		val := b[:alen]
		b = b[alen:]
		switch code {
		case attrOrigin:
			if alen != 1 {
				return a, errors.New("bgp: bad ORIGIN length")
			}
			a.Origin = OriginCode(val[0])
		case attrASPath:
			var ap ASPath
			var err error
			if reuse {
				ap, err = d.decodeASPath(val)
			} else {
				ap, err = decodeASPath(val)
			}
			if err != nil {
				return a, err
			}
			a.ASPath = ap
		case attrNextHop:
			if alen != 4 {
				return a, errors.New("bgp: bad NEXT_HOP length")
			}
			a.NextHop = netip.AddrFrom4([4]byte(val))
		}
	}
	return a, nil
}

// decodeASPath is decodeASPath appending into the decoder's arenas. If an
// append reallocates an arena, previously returned slices keep pointing at
// the old array — still correct, just retired from reuse.
func (d *AttrDecoder) decodeASPath(b []byte) (ASPath, error) {
	segStart := len(d.segs)
	for len(b) > 0 {
		if len(b) < 2 {
			return nil, errors.New("bgp: truncated AS_PATH segment header")
		}
		segType, n := b[0], int(b[1])
		b = b[2:]
		if segType != SegmentSet && segType != SegmentSequence {
			return nil, fmt.Errorf("bgp: unknown AS_PATH segment type %d", segType)
		}
		if len(b) < 4*n {
			return nil, errors.New("bgp: truncated AS_PATH segment")
		}
		asnStart := len(d.asns)
		for i := 0; i < n; i++ {
			d.asns = append(d.asns, asn.ASN(binary.BigEndian.Uint32(b[4*i:])))
		}
		b = b[4*n:]
		d.segs = append(d.segs, Segment{
			Type: segType,
			ASNs: d.asns[asnStart:len(d.asns):len(d.asns)],
		})
	}
	return d.segs[segStart:len(d.segs):len(d.segs)], nil
}

// PathOf is a convenience returning the flattened AS path of the set.
func (a AttrSet) PathOf() Path { return a.ASPath.Flatten() }
