package bgp

import (
	"net/netip"
	"testing"

	"countryrank/internal/asn"
)

func TestAttrSetRoundTrip(t *testing.T) {
	a := AttrSet{
		Origin:  OriginIGP,
		ASPath:  SequencePath(path(3356, 1299, 12389)),
		NextHop: netip.MustParseAddr("192.0.2.1"),
	}
	raw, err := a.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := UnmarshalAttrs(raw)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Origin != a.Origin || got.NextHop != a.NextHop {
		t.Errorf("got %+v", got)
	}
	if !got.PathOf().Equal(path(3356, 1299, 12389)) {
		t.Errorf("path = %v", got.PathOf())
	}
}

func TestAttrSetNoNextHop(t *testing.T) {
	a := AttrSet{Origin: OriginIncomplete, ASPath: SequencePath(path(1))}
	raw, err := a.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := UnmarshalAttrs(raw)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.NextHop.IsValid() {
		t.Error("next hop should be absent")
	}
}

func TestAttrSetV6NextHopRejected(t *testing.T) {
	a := AttrSet{ASPath: SequencePath(path(1)), NextHop: netip.MustParseAddr("2001:db8::1")}
	if _, err := a.Marshal(); err == nil {
		t.Error("v6 next hop must be rejected")
	}
}

func TestUnmarshalAttrsTruncated(t *testing.T) {
	a := AttrSet{Origin: OriginIGP, ASPath: SequencePath(path(1, 2, 3))}
	raw, _ := a.Marshal()
	for cut := 1; cut < len(raw); cut++ {
		if _, err := UnmarshalAttrs(raw[:cut]); err == nil {
			// Some truncations land on attribute boundaries and legitimately
			// parse as a shorter attribute list; those must still decode to a
			// subset, never garbage. Verify the path is a prefix of the input.
			got, _ := UnmarshalAttrs(raw[:cut])
			p := got.PathOf()
			if len(p) > 3 {
				t.Fatalf("cut %d produced oversized path %v", cut, p)
			}
		}
	}
}

func TestUnmarshalAttrsLongPath(t *testing.T) {
	// A path long enough to need the extended-length attribute flag.
	long := make(Path, 300)
	for i := range long {
		long[i] = asn.ASN(1000 + i)
	}
	// Split into two segments of ≤255.
	ap := ASPath{
		{Type: SegmentSequence, ASNs: long[:200]},
		{Type: SegmentSequence, ASNs: long[200:]},
	}
	a := AttrSet{ASPath: ap}
	raw, err := a.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := UnmarshalAttrs(raw)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !got.PathOf().Equal(long) {
		t.Error("long path did not round-trip")
	}
}
