package bgp

// Interner hash-conses AS paths: equal paths map to one index and share a
// single backing array. Collection assembly and MRT import both run it over
// their record streams, so the millions of duplicate paths observed across
// prefixes collapse to one allocation each. The index is an open-addressing
// table hashed directly over the ASNs — no per-lookup key rendering, no
// retained key strings, and deterministic iteration because identity lives
// in the paths slice, not the table. Not safe for concurrent use; parallel
// importers collect locally and intern during the merge.
type Interner struct {
	table []int32 // 1-based indexes into paths; 0 marks an empty slot
	paths []Path
}

// NewInterner returns an empty interner sized for at least n distinct paths.
func NewInterner(n int) *Interner {
	size := 16
	for size < 2*n {
		size <<= 1
	}
	return &Interner{table: make([]int32, size), paths: make([]Path, 0, n)}
}

// Intern returns the index of p, copying it into the table on first sight.
// p may alias reused decode buffers; the table never retains it.
func (it *Interner) Intern(p Path) int32 {
	slot, i, ok := it.find(p)
	if ok {
		return i
	}
	return it.insert(slot, p.Clone())
}

// InternOwned is Intern for a path the caller hands over: on first sight
// the table keeps p itself instead of a copy, so freshly built paths are
// interned with zero extra allocation. The caller must not mutate p after.
func (it *Interner) InternOwned(p Path) int32 {
	slot, i, ok := it.find(p)
	if ok {
		return i
	}
	return it.insert(slot, p)
}

func hashPath(p Path) uint64 {
	h := uint64(14695981039346656037) // FNV-1a, then a 64-bit finalizer
	for _, a := range p {
		h ^= uint64(a)
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// find probes for p, returning its id if present, else the empty slot where
// it belongs.
func (it *Interner) find(p Path) (slot int, id int32, ok bool) {
	mask := uint64(len(it.table) - 1)
	i := hashPath(p) & mask
	for {
		v := it.table[i]
		if v == 0 {
			return int(i), 0, false
		}
		if it.paths[v-1].Equal(p) {
			return int(i), v - 1, true
		}
		i = (i + 1) & mask
	}
}

func (it *Interner) insert(slot int, p Path) int32 {
	i := int32(len(it.paths))
	it.paths = append(it.paths, p)
	it.table[slot] = i + 1
	if 4*len(it.paths) >= 3*len(it.table) {
		it.grow()
	}
	return i
}

func (it *Interner) grow() {
	next := make([]int32, 2*len(it.table))
	mask := uint64(len(next) - 1)
	for _, v := range it.table {
		if v == 0 {
			continue
		}
		i := hashPath(it.paths[v-1]) & mask
		for next[i] != 0 {
			i = (i + 1) & mask
		}
		next[i] = v
	}
	it.table = next
}

// Len returns the number of distinct paths interned.
func (it *Interner) Len() int { return len(it.paths) }

// PathAt returns the interned path with index i.
func (it *Interner) PathAt(i int32) Path { return it.paths[i] }

// Paths releases the table's path slice, indexed by the values Intern
// returned. The interner must not be used after.
func (it *Interner) Paths() []Path {
	out := it.paths
	it.paths = nil
	it.table = nil
	return out
}

// appendPathKey appends the big-endian byte rendering of p, the comparable
// form Path.Key builds.
func appendPathKey(dst []byte, p Path) []byte {
	for _, a := range p {
		dst = append(dst, byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
	}
	return dst
}
