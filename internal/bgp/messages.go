package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"

	"countryrank/internal/asn"
)

// Open is a decoded BGP OPEN message (RFC 4271 §4.2) with the capabilities
// the session layer uses: 4-octet AS numbers (RFC 6793) and multiprotocol
// IPv4 unicast.
type Open struct {
	Version  uint8
	AS       asn.ASN // the true (possibly 4-byte) ASN
	HoldTime uint16
	BGPID    netip.Addr
}

// capability codes
const (
	capMultiprotocol = 1
	capFourOctetAS   = 65
)

// Marshal encodes the OPEN with its capabilities.
func (o *Open) Marshal() ([]byte, error) {
	if !o.BGPID.Is4() {
		return nil, errors.New("bgp: OPEN requires an IPv4 BGP identifier")
	}
	// my-AS field: AS_TRANS when the real ASN does not fit 16 bits.
	myAS := uint16(asn.ASTrans)
	if o.AS <= asn.Last16 {
		myAS = uint16(o.AS)
	}

	var caps []byte
	// Multiprotocol IPv4 unicast.
	caps = append(caps, capMultiprotocol, 4, 0, 1, 0, 1)
	// 4-octet AS.
	caps = append(caps, capFourOctetAS, 4)
	caps = binary.BigEndian.AppendUint32(caps, uint32(o.AS))

	// Optional parameter type 2 = capabilities.
	optParams := append([]byte{2, byte(len(caps))}, caps...)

	body := make([]byte, 0, 10+len(optParams))
	version := o.Version
	if version == 0 {
		version = 4
	}
	body = append(body, version)
	body = binary.BigEndian.AppendUint16(body, myAS)
	body = binary.BigEndian.AppendUint16(body, o.HoldTime)
	id := o.BGPID.As4()
	body = append(body, id[:]...)
	body = append(body, byte(len(optParams)))
	body = append(body, optParams...)

	return wrapMessage(TypeOpen, body)
}

// wrapMessage prepends the 19-byte header.
func wrapMessage(msgType byte, body []byte) ([]byte, error) {
	total := 19 + len(body)
	if total > 4096 {
		return nil, fmt.Errorf("bgp: message length %d exceeds 4096", total)
	}
	out := make([]byte, 0, total)
	out = append(out, marker...)
	out = binary.BigEndian.AppendUint16(out, uint16(total))
	out = append(out, msgType)
	out = append(out, body...)
	return out, nil
}

// UnmarshalOpen decodes an OPEN message body (without the common header).
func UnmarshalOpen(body []byte) (*Open, error) {
	if len(body) < 10 {
		return nil, errors.New("bgp: truncated OPEN")
	}
	o := &Open{
		Version:  body[0],
		AS:       asn.ASN(binary.BigEndian.Uint16(body[1:3])),
		HoldTime: binary.BigEndian.Uint16(body[3:5]),
		BGPID:    netip.AddrFrom4([4]byte(body[5:9])),
	}
	optLen := int(body[9])
	opts := body[10:]
	if len(opts) < optLen {
		return nil, errors.New("bgp: truncated OPEN optional parameters")
	}
	opts = opts[:optLen]
	for len(opts) > 0 {
		if len(opts) < 2 {
			return nil, errors.New("bgp: truncated optional parameter")
		}
		ptype, plen := opts[0], int(opts[1])
		if len(opts) < 2+plen {
			return nil, errors.New("bgp: truncated optional parameter body")
		}
		if ptype == 2 { // capabilities
			caps := opts[2 : 2+plen]
			for len(caps) > 0 {
				if len(caps) < 2 {
					return nil, errors.New("bgp: truncated capability")
				}
				code, clen := caps[0], int(caps[1])
				if len(caps) < 2+clen {
					return nil, errors.New("bgp: truncated capability body")
				}
				if code == capFourOctetAS && clen == 4 {
					o.AS = asn.ASN(binary.BigEndian.Uint32(caps[2:6]))
				}
				caps = caps[2+clen:]
			}
		}
		opts = opts[2+plen:]
	}
	return o, nil
}

// MarshalKeepalive encodes a KEEPALIVE message.
func MarshalKeepalive() []byte {
	out, _ := wrapMessage(TypeKeepalive, nil)
	return out
}

// Notification is a BGP NOTIFICATION (RFC 4271 §4.5).
type Notification struct {
	Code    uint8
	Subcode uint8
	Data    []byte
}

// Standard notification codes used by the session layer.
const (
	NotifMessageHeaderError = 1
	NotifOpenError          = 2
	NotifUpdateError        = 3
	NotifHoldTimerExpired   = 4
	NotifFSMError           = 5
	NotifCease              = 6
)

// OPEN Message Error subcodes (RFC 4271 §6.2).
const (
	OpenUnacceptableHoldTime = 6
)

// Error implements error so a Notification can terminate a session.
func (n *Notification) Error() string {
	return fmt.Sprintf("bgp: notification code %d subcode %d", n.Code, n.Subcode)
}

// Marshal encodes the NOTIFICATION.
func (n *Notification) Marshal() ([]byte, error) {
	body := append([]byte{n.Code, n.Subcode}, n.Data...)
	return wrapMessage(TypeNotification, body)
}

// UnmarshalNotification decodes a NOTIFICATION body.
func UnmarshalNotification(body []byte) (*Notification, error) {
	if len(body) < 2 {
		return nil, errors.New("bgp: truncated NOTIFICATION")
	}
	return &Notification{Code: body[0], Subcode: body[1], Data: append([]byte(nil), body[2:]...)}, nil
}

// Message is a decoded BGP message of any type.
type Message struct {
	Type         byte
	Open         *Open
	Update       *Update
	Notification *Notification
}

// ReadMessage parses one complete BGP message from buf and returns it with
// the number of bytes consumed, or (nil, 0, nil) if buf does not yet hold a
// complete message.
func ReadMessage(buf []byte) (*Message, int, error) {
	if len(buf) < 19 {
		return nil, 0, nil
	}
	for i := 0; i < 16; i++ {
		if buf[i] != 0xFF {
			return nil, 0, &Notification{Code: NotifMessageHeaderError, Subcode: 1}
		}
	}
	length := int(binary.BigEndian.Uint16(buf[16:18]))
	if length < 19 || length > 4096 {
		return nil, 0, &Notification{Code: NotifMessageHeaderError, Subcode: 2}
	}
	if len(buf) < length {
		return nil, 0, nil
	}
	msgType := buf[18]
	body := buf[19:length]
	m := &Message{Type: msgType}
	var err error
	switch msgType {
	case TypeOpen:
		m.Open, err = UnmarshalOpen(body)
	case TypeUpdate:
		m.Update, err = UnmarshalUpdate(buf[:length])
	case TypeKeepalive:
		if len(body) != 0 {
			err = &Notification{Code: NotifMessageHeaderError, Subcode: 2}
		}
	case TypeNotification:
		m.Notification, err = UnmarshalNotification(body)
	default:
		err = &Notification{Code: NotifMessageHeaderError, Subcode: 3}
	}
	if err != nil {
		return nil, 0, err
	}
	return m, length, nil
}
