package bgp

import (
	"net/netip"
	"testing"
)

func TestOpenRoundTrip16Bit(t *testing.T) {
	o := &Open{AS: 6447, HoldTime: 90, BGPID: netip.MustParseAddr("10.0.0.1")}
	raw, err := o.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	msg, n, err := ReadMessage(raw)
	if err != nil || msg == nil || n != len(raw) {
		t.Fatalf("ReadMessage: %v %v %d", msg, err, n)
	}
	if msg.Type != TypeOpen || msg.Open.AS != 6447 || msg.Open.HoldTime != 90 {
		t.Errorf("open = %+v", msg.Open)
	}
	if msg.Open.Version != 4 {
		t.Errorf("version = %d", msg.Open.Version)
	}
	if msg.Open.BGPID != netip.MustParseAddr("10.0.0.1") {
		t.Errorf("bgpid = %v", msg.Open.BGPID)
	}
}

func TestOpenRoundTrip32BitAS(t *testing.T) {
	// A 4-byte ASN travels via the capability; the 2-byte field carries
	// AS_TRANS.
	o := &Open{AS: 401234, HoldTime: 180, BGPID: netip.MustParseAddr("192.0.2.1")}
	raw, err := o.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	msg, _, err := ReadMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Open.AS != 401234 {
		t.Errorf("AS = %v, want 401234 via capability", msg.Open.AS)
	}
}

func TestOpenRequiresV4ID(t *testing.T) {
	o := &Open{AS: 1, BGPID: netip.MustParseAddr("2001:db8::1")}
	if _, err := o.Marshal(); err == nil {
		t.Error("v6 BGP ID must be rejected")
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	n := &Notification{Code: NotifCease, Subcode: 2, Data: []byte{1, 2, 3}}
	raw, err := n.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	msg, _, err := ReadMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	got := msg.Notification
	if got.Code != NotifCease || got.Subcode != 2 || len(got.Data) != 3 {
		t.Errorf("notification = %+v", got)
	}
	if got.Error() == "" {
		t.Error("Error() empty")
	}
}

func TestKeepalive(t *testing.T) {
	raw := MarshalKeepalive()
	msg, n, err := ReadMessage(raw)
	if err != nil || msg.Type != TypeKeepalive || n != 19 {
		t.Fatalf("keepalive: %+v %d %v", msg, n, err)
	}
}

func TestReadMessagePartial(t *testing.T) {
	raw := MarshalKeepalive()
	// Any strict prefix yields "incomplete", never an error.
	for cut := 0; cut < len(raw); cut++ {
		msg, n, err := ReadMessage(raw[:cut])
		if msg != nil || n != 0 || err != nil {
			t.Fatalf("cut %d: %v %d %v", cut, msg, n, err)
		}
	}
	// Concatenated messages parse one at a time.
	double := append(append([]byte{}, raw...), raw...)
	msg, n, err := ReadMessage(double)
	if err != nil || msg == nil || n != 19 {
		t.Fatalf("first of two: %v %d %v", msg, n, err)
	}
}

func TestReadMessageGarbage(t *testing.T) {
	junk := make([]byte, 19)
	_, _, err := ReadMessage(junk)
	notif, ok := err.(*Notification)
	if !ok || notif.Code != NotifMessageHeaderError {
		t.Fatalf("err = %v", err)
	}
	// Bad length field.
	raw := MarshalKeepalive()
	raw[16], raw[17] = 0, 5 // length 5 < 19
	if _, _, err := ReadMessage(raw); err == nil {
		t.Error("undersized length must fail")
	}
	// Unknown type.
	raw = MarshalKeepalive()
	raw[18] = 9
	if _, _, err := ReadMessage(raw); err == nil {
		t.Error("unknown type must fail")
	}
	// Keepalive with a body.
	withBody, _ := wrapMessage(TypeKeepalive, []byte{1})
	if _, _, err := ReadMessage(withBody); err == nil {
		t.Error("keepalive with body must fail")
	}
}

func TestUnmarshalOpenTruncations(t *testing.T) {
	o := &Open{AS: 401234, HoldTime: 90, BGPID: netip.MustParseAddr("10.0.0.1")}
	raw, _ := o.Marshal()
	body := raw[19:]
	for cut := 0; cut < len(body); cut++ {
		if _, err := UnmarshalOpen(body[:cut]); err == nil && cut < 10 {
			t.Fatalf("cut %d should fail", cut)
		}
	}
}
