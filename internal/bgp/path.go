// Package bgp implements the BGP-4 structures the ranking pipeline consumes:
// AS paths with the hygiene helpers the sanitizer needs (adjacent-duplicate
// removal from prepending, non-adjacent loop detection), and a wire codec
// for UPDATE messages (RFC 4271) carrying 4-byte AS paths (RFC 6793). The
// MRT package layers the RouteViews/RIS dump format on top of this codec.
package bgp

import (
	"strings"

	"countryrank/internal/asn"
)

// Path is an AS path in collection order: Path[0] is the AS nearest the
// vantage point and Path[len-1] is the origin AS that announced the prefix.
type Path []asn.ASN

// Origin returns the origin AS (the last element) and true, or 0 and false
// for an empty path.
func (p Path) Origin() (asn.ASN, bool) {
	if len(p) == 0 {
		return 0, false
	}
	return p[len(p)-1], true
}

// First returns the AS nearest the vantage point and true, or 0 and false
// for an empty path.
func (p Path) First() (asn.ASN, bool) {
	if len(p) == 0 {
		return 0, false
	}
	return p[0], true
}

// Contains reports whether a appears anywhere on the path.
func (p Path) Contains(a asn.ASN) bool {
	for _, x := range p {
		if x == a {
			return true
		}
	}
	return false
}

// Equal reports element-wise equality.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the path.
func (p Path) Clone() Path {
	if p == nil {
		return nil
	}
	out := make(Path, len(p))
	copy(out, p)
	return out
}

// DedupAdjacent collapses runs of the same ASN (BGP path prepending) into a
// single hop, returning a new path. "A A B B B C" becomes "A B C".
func (p Path) DedupAdjacent() Path {
	if len(p) == 0 {
		return nil
	}
	out := make(Path, 0, len(p))
	out = append(out, p[0])
	for _, a := range p[1:] {
		if a != out[len(out)-1] {
			out = append(out, a)
		}
	}
	return out
}

// HasNonAdjacentLoop reports whether any ASN reappears after an intervening
// different ASN (the "A C A" pattern the sanitizer rejects as a loop).
// Adjacent duplicates from prepending do not count.
func (p Path) HasNonAdjacentLoop() bool {
	seen := make(map[asn.ASN]bool, len(p))
	var prev asn.ASN
	for i, a := range p {
		if i > 0 && a == prev {
			continue
		}
		if seen[a] {
			return true
		}
		seen[a] = true
		prev = a
	}
	return false
}

// String renders the path in the conventional space-separated form,
// vantage-point side first.
func (p Path) String() string {
	var b strings.Builder
	for i, a := range p {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a.String())
	}
	return b.String()
}

// Key returns a compact comparable key for map indexing of paths: the same
// big-endian rendering the Interner hashes.
func (p Path) Key() string {
	return string(appendPathKey(make([]byte, 0, len(p)*4), p))
}
