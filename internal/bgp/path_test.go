package bgp

import (
	"math/rand"
	"testing"

	"countryrank/internal/asn"
)

func path(asns ...uint32) Path {
	p := make(Path, len(asns))
	for i, a := range asns {
		p[i] = asn.ASN(a)
	}
	return p
}

func TestPathEnds(t *testing.T) {
	p := path(3356, 1299, 1221)
	if o, ok := p.Origin(); !ok || o != 1221 {
		t.Errorf("Origin = %v, %v", o, ok)
	}
	if f, ok := p.First(); !ok || f != 3356 {
		t.Errorf("First = %v, %v", f, ok)
	}
	var empty Path
	if _, ok := empty.Origin(); ok {
		t.Error("empty path has no origin")
	}
	if _, ok := empty.First(); ok {
		t.Error("empty path has no first")
	}
}

func TestContainsEqualClone(t *testing.T) {
	p := path(1, 2, 3)
	if !p.Contains(2) || p.Contains(9) {
		t.Error("Contains wrong")
	}
	if !p.Equal(path(1, 2, 3)) || p.Equal(path(1, 2)) || p.Equal(path(1, 2, 4)) {
		t.Error("Equal wrong")
	}
	c := p.Clone()
	c[0] = 99
	if p[0] != 1 {
		t.Error("Clone must not alias")
	}
	if Path(nil).Clone() != nil {
		t.Error("Clone of nil is nil")
	}
}

func TestDedupAdjacent(t *testing.T) {
	cases := []struct{ in, want Path }{
		{path(1, 1, 2, 2, 2, 3), path(1, 2, 3)},
		{path(1, 2, 3), path(1, 2, 3)},
		{path(7, 7, 7, 7), path(7)},
		{path(1, 2, 1), path(1, 2, 1)}, // non-adjacent repeats preserved
		{nil, nil},
	}
	for _, c := range cases {
		if got := c.in.DedupAdjacent(); !got.Equal(c.want) {
			t.Errorf("DedupAdjacent(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestHasNonAdjacentLoop(t *testing.T) {
	cases := []struct {
		p    Path
		want bool
	}{
		{path(1, 2, 3), false},
		{path(1, 1, 2, 2), false}, // prepending is not a loop
		{path(1, 2, 1), true},     // A C A
		{path(1, 2, 2, 1), true},  // loop with prepending inside
		{path(5, 4, 5, 4), true},
		{nil, false},
		{path(9), false},
	}
	for _, c := range cases {
		if got := c.p.HasNonAdjacentLoop(); got != c.want {
			t.Errorf("HasNonAdjacentLoop(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestStringAndKey(t *testing.T) {
	p := path(3356, 1221)
	if p.String() != "AS3356 AS1221" {
		t.Errorf("String = %q", p.String())
	}
	if path(1, 2).Key() == path(1, 3).Key() {
		t.Error("distinct paths must have distinct keys")
	}
	if path(1, 2).Key() != path(1, 2).Key() {
		t.Error("equal paths must share keys")
	}
	// Key must distinguish [258] from [1,2] (no byte-boundary collisions).
	if path(258).Key() == path(1, 2).Key() {
		t.Error("Key collides across element boundaries")
	}
}

func TestKeyInjectiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seen := map[string]string{}
	for i := 0; i < 2000; i++ {
		n := 1 + rng.Intn(6)
		p := make(Path, n)
		for j := range p {
			p[j] = asn.ASN(rng.Intn(100000))
		}
		k := p.Key()
		if prev, ok := seen[k]; ok && prev != p.String() {
			t.Fatalf("key collision: %q vs %q", prev, p.String())
		}
		seen[k] = p.String()
	}
}
