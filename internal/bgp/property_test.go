package bgp

import (
	"testing"
	"testing/quick"

	"countryrank/internal/asn"
)

// fromBytes builds a short path from fuzz bytes, with a small alphabet so
// duplicates are common.
func fromBytes(bs []byte) Path {
	p := make(Path, 0, len(bs))
	for _, b := range bs {
		p = append(p, asn.ASN(b%7)+1)
	}
	return p
}

func TestDedupAdjacentIdempotent(t *testing.T) {
	f := func(bs []byte) bool {
		p := fromBytes(bs)
		once := p.DedupAdjacent()
		twice := once.DedupAdjacent()
		return once.Equal(twice)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDedupAdjacentPreservesEnds(t *testing.T) {
	f := func(bs []byte) bool {
		p := fromBytes(bs)
		if len(p) == 0 {
			return p.DedupAdjacent() == nil
		}
		d := p.DedupAdjacent()
		df, _ := d.First()
		pf, _ := p.First()
		do, _ := d.Origin()
		po, _ := p.Origin()
		return df == pf && do == po && len(d) <= len(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLoopInvariantUnderPrepending(t *testing.T) {
	// Expanding any hop into a run of itself must not change loop-ness.
	f := func(bs []byte, at, times uint8) bool {
		p := fromBytes(bs)
		if len(p) == 0 {
			return true
		}
		i := int(at) % len(p)
		n := int(times%3) + 1
		var exp Path
		exp = append(exp, p[:i+1]...)
		for k := 0; k < n; k++ {
			exp = append(exp, p[i])
		}
		exp = append(exp, p[i+1:]...)
		return exp.HasNonAdjacentLoop() == p.HasNonAdjacentLoop()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMarshalRoundTripQuick(t *testing.T) {
	f := func(bs []byte) bool {
		p := fromBytes(bs)
		if len(p) == 0 || len(p) > 200 {
			return true
		}
		a := AttrSet{Origin: OriginIGP, ASPath: SequencePath(p)}
		raw, err := a.Marshal()
		if err != nil {
			return false
		}
		got, err := UnmarshalAttrs(raw)
		return err == nil && got.PathOf().Equal(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
