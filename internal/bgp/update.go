package bgp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"

	"countryrank/internal/asn"
)

// Message types (RFC 4271 §4.1).
const (
	TypeOpen         = 1
	TypeUpdate       = 2
	TypeNotification = 3
	TypeKeepalive    = 4
)

// Origin attribute codes (RFC 4271 §5.1.1).
type OriginCode uint8

const (
	OriginIGP        OriginCode = 0
	OriginEGP        OriginCode = 1
	OriginIncomplete OriginCode = 2
)

// Path attribute type codes used by the codec.
const (
	attrOrigin    = 1
	attrASPath    = 2
	attrNextHop   = 3
	attrMED       = 4
	attrMPReach   = 14
	attrMPUnreach = 15
	flagOptional  = 0x80
	flagTransit   = 0x40
	flagExtLen    = 0x10
)

// AS_PATH segment types (RFC 4271 §4.3).
const (
	SegmentSet      = 1
	SegmentSequence = 2
)

// Segment is one AS_PATH segment.
type Segment struct {
	Type uint8
	ASNs []asn.ASN
}

// ASPath is the segmented AS_PATH attribute. Paths produced by our simulator
// are always a single AS_SEQUENCE, but the codec round-trips AS_SETs too.
type ASPath []Segment

// Flatten returns the path as a flat Path. AS_SET members are appended in
// order; callers that must treat sets specially should inspect segments.
func (ap ASPath) Flatten() Path {
	var out Path
	for _, s := range ap {
		out = append(out, s.ASNs...)
	}
	return out
}

// AppendFlat appends the path's ASNs to dst and returns it: Flatten for
// callers reusing a scratch path across records.
func (ap ASPath) AppendFlat(dst Path) Path {
	for _, s := range ap {
		dst = append(dst, s.ASNs...)
	}
	return dst
}

// SequencePath wraps a flat path into a single AS_SEQUENCE segment.
func SequencePath(p Path) ASPath {
	if len(p) == 0 {
		return nil
	}
	return ASPath{{Type: SegmentSequence, ASNs: p}}
}

// Update is a decoded BGP UPDATE message. The codec always encodes AS paths
// as 4-octet ASNs (an "AS4" speaker per RFC 6793).
type Update struct {
	Withdrawn []netip.Prefix
	Origin    OriginCode
	ASPath    ASPath
	NextHop   netip.Addr // IPv4 next hop; v6 NLRI uses MP_REACH
	MED       uint32     // 0 means absent
	HasMED    bool
	Announced []netip.Prefix // IPv4 NLRI
	// V6NextHop and V6Announced carry IPv6 reachability via MP_REACH_NLRI;
	// V6Withdrawn uses MP_UNREACH_NLRI.
	V6NextHop   netip.Addr
	V6Announced []netip.Prefix
	V6Withdrawn []netip.Prefix
}

var marker = bytes.Repeat([]byte{0xFF}, 16)

// Marshal encodes the UPDATE with the 19-byte BGP message header.
func (u *Update) Marshal() ([]byte, error) { return u.AppendWire(nil) }

// AppendWire appends the UPDATE's full wire encoding (19-byte header
// included) to dst and returns the extended slice. Callers feeding update
// streams reuse one buffer across messages to avoid per-message
// allocation.
func (u *Update) AppendWire(dst []byte) ([]byte, error) {
	start := len(dst)
	dst = append(dst, marker...)
	dst = append(dst, 0, 0, TypeUpdate) // length patched below

	// Withdrawn routes, prefixed with their length.
	wdPos := len(dst)
	dst = append(dst, 0, 0)
	var err error
	if dst, err = appendNLRI(dst, u.Withdrawn); err != nil {
		return nil, fmt.Errorf("bgp: withdrawn: %w", err)
	}
	binary.BigEndian.PutUint16(dst[wdPos:], uint16(len(dst)-wdPos-2))

	// Path attributes, prefixed with their length.
	atPos := len(dst)
	dst = append(dst, 0, 0)
	if dst, err = u.appendAttrs(dst); err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint16(dst[atPos:], uint16(len(dst)-atPos-2))

	if dst, err = appendNLRI(dst, u.Announced); err != nil {
		return nil, fmt.Errorf("bgp: nlri: %w", err)
	}

	total := len(dst) - start
	if total > 4096 {
		return nil, fmt.Errorf("bgp: message length %d exceeds 4096", total)
	}
	binary.BigEndian.PutUint16(dst[start+16:], uint16(total))
	return dst, nil
}

func (u *Update) appendAttrs(dst []byte) ([]byte, error) {
	var err error
	if len(u.V6Withdrawn) > 0 {
		// MP_UNREACH value: AFI + SAFI + NLRI.
		n, err := nlriWireSize(u.V6Withdrawn)
		if err != nil {
			return nil, fmt.Errorf("bgp: v6 withdrawn: %w", err)
		}
		if dst, err = appendAttrHeader(dst, flagOptional|flagExtLen, attrMPUnreach, 3+n); err != nil {
			return nil, err
		}
		dst = append(dst, 0, 2, 1) // AFI IPv6, SAFI unicast
		if dst, err = appendNLRI(dst, u.V6Withdrawn); err != nil {
			return nil, fmt.Errorf("bgp: v6 withdrawn: %w", err)
		}
	}
	hasReach := len(u.Announced) > 0 || len(u.V6Announced) > 0
	if hasReach {
		// ORIGIN
		dst = append(dst, flagTransit, attrOrigin, 1, byte(u.Origin))
		// AS_PATH (4-octet ASNs); value length computable up front.
		plen := 0
		for _, seg := range u.ASPath {
			if len(seg.ASNs) > 255 {
				return nil, errors.New("bgp: segment longer than 255 ASNs")
			}
			plen += 2 + 4*len(seg.ASNs)
		}
		if dst, err = appendAttrHeader(dst, flagTransit, attrASPath, plen); err != nil {
			return nil, err
		}
		for _, seg := range u.ASPath {
			dst = append(dst, seg.Type, byte(len(seg.ASNs)))
			for _, a := range seg.ASNs {
				dst = binary.BigEndian.AppendUint32(dst, uint32(a))
			}
		}
	}
	if len(u.Announced) > 0 {
		if !u.NextHop.Is4() {
			return nil, errors.New("bgp: IPv4 NLRI requires an IPv4 next hop")
		}
		nh := u.NextHop.As4()
		if dst, err = appendAttrHeader(dst, flagTransit, attrNextHop, 4); err != nil {
			return nil, err
		}
		dst = append(dst, nh[:]...)
	}
	if u.HasMED {
		if dst, err = appendAttrHeader(dst, flagOptional, attrMED, 4); err != nil {
			return nil, err
		}
		dst = binary.BigEndian.AppendUint32(dst, u.MED)
	}
	if len(u.V6Announced) > 0 {
		if !u.V6NextHop.Is6() || u.V6NextHop.Is4() {
			return nil, errors.New("bgp: IPv6 NLRI requires an IPv6 next hop")
		}
		// MP_REACH value: AFI + SAFI + nh len + nh + reserved + NLRI.
		n, err := nlriWireSize(u.V6Announced)
		if err != nil {
			return nil, fmt.Errorf("bgp: v6 nlri: %w", err)
		}
		if dst, err = appendAttrHeader(dst, flagOptional|flagExtLen, attrMPReach, 21+n); err != nil {
			return nil, err
		}
		dst = append(dst, 0, 2, 1) // AFI IPv6, SAFI unicast
		nh := u.V6NextHop.As16()
		dst = append(dst, 16)
		dst = append(dst, nh[:]...)
		dst = append(dst, 0) // reserved
		if dst, err = appendNLRI(dst, u.V6Announced); err != nil {
			return nil, fmt.Errorf("bgp: v6 nlri: %w", err)
		}
	}
	return dst, nil
}

// UnmarshalUpdate decodes a full BGP message, which must be an UPDATE.
func UnmarshalUpdate(data []byte) (*Update, error) {
	if len(data) < 19 {
		return nil, errors.New("bgp: message shorter than header")
	}
	if !bytes.Equal(data[:16], marker) {
		return nil, errors.New("bgp: bad marker")
	}
	length := binary.BigEndian.Uint16(data[16:18])
	if int(length) != len(data) {
		return nil, fmt.Errorf("bgp: header length %d != buffer %d", length, len(data))
	}
	if data[18] != TypeUpdate {
		return nil, fmt.Errorf("bgp: message type %d is not UPDATE", data[18])
	}
	body := data[19:]
	u := &Update{}

	if len(body) < 2 {
		return nil, errors.New("bgp: truncated withdrawn length")
	}
	wdLen := int(binary.BigEndian.Uint16(body))
	body = body[2:]
	if len(body) < wdLen {
		return nil, errors.New("bgp: truncated withdrawn routes")
	}
	var err error
	u.Withdrawn, err = decodeNLRI(body[:wdLen], false)
	if err != nil {
		return nil, fmt.Errorf("bgp: withdrawn: %w", err)
	}
	body = body[wdLen:]

	if len(body) < 2 {
		return nil, errors.New("bgp: truncated attribute length")
	}
	attrLen := int(binary.BigEndian.Uint16(body))
	body = body[2:]
	if len(body) < attrLen {
		return nil, errors.New("bgp: truncated attributes")
	}
	if err := u.decodeAttrs(body[:attrLen]); err != nil {
		return nil, err
	}
	u.Announced, err = decodeNLRI(body[attrLen:], false)
	if err != nil {
		return nil, fmt.Errorf("bgp: nlri: %w", err)
	}
	return u, nil
}

func (u *Update) decodeAttrs(b []byte) error {
	for len(b) > 0 {
		if len(b) < 3 {
			return errors.New("bgp: truncated attribute header")
		}
		flags, code := b[0], b[1]
		var alen int
		if flags&flagExtLen != 0 {
			if len(b) < 4 {
				return errors.New("bgp: truncated extended length")
			}
			alen = int(binary.BigEndian.Uint16(b[2:4]))
			b = b[4:]
		} else {
			alen = int(b[2])
			b = b[3:]
		}
		if len(b) < alen {
			return fmt.Errorf("bgp: attribute %d truncated", code)
		}
		val := b[:alen]
		b = b[alen:]
		switch code {
		case attrOrigin:
			if alen != 1 {
				return errors.New("bgp: bad ORIGIN length")
			}
			u.Origin = OriginCode(val[0])
		case attrASPath:
			ap, err := decodeASPath(val)
			if err != nil {
				return err
			}
			u.ASPath = ap
		case attrNextHop:
			if alen != 4 {
				return errors.New("bgp: bad NEXT_HOP length")
			}
			u.NextHop = netip.AddrFrom4([4]byte(val))
		case attrMED:
			if alen != 4 {
				return errors.New("bgp: bad MED length")
			}
			u.MED = binary.BigEndian.Uint32(val)
			u.HasMED = true
		case attrMPReach:
			if err := u.decodeMPReach(val); err != nil {
				return err
			}
		case attrMPUnreach:
			if err := u.decodeMPUnreach(val); err != nil {
				return err
			}
		default:
			// Unknown attributes are skipped; the pipeline only needs the above.
		}
	}
	return nil
}

func decodeASPath(b []byte) (ASPath, error) {
	var out ASPath
	for len(b) > 0 {
		if len(b) < 2 {
			return nil, errors.New("bgp: truncated AS_PATH segment header")
		}
		segType, n := b[0], int(b[1])
		b = b[2:]
		if segType != SegmentSet && segType != SegmentSequence {
			return nil, fmt.Errorf("bgp: unknown AS_PATH segment type %d", segType)
		}
		if len(b) < 4*n {
			return nil, errors.New("bgp: truncated AS_PATH segment")
		}
		seg := Segment{Type: segType, ASNs: make([]asn.ASN, n)}
		for i := 0; i < n; i++ {
			seg.ASNs[i] = asn.ASN(binary.BigEndian.Uint32(b[4*i:]))
		}
		b = b[4*n:]
		out = append(out, seg)
	}
	return out, nil
}

func (u *Update) decodeMPReach(b []byte) error {
	if len(b) < 5 {
		return errors.New("bgp: truncated MP_REACH")
	}
	afi := binary.BigEndian.Uint16(b[:2])
	safi := b[2]
	nhLen := int(b[3])
	if afi != 2 || safi != 1 {
		return fmt.Errorf("bgp: unsupported AFI/SAFI %d/%d", afi, safi)
	}
	if nhLen != 16 || len(b) < 4+nhLen+1 {
		return errors.New("bgp: bad MP_REACH next hop")
	}
	u.V6NextHop = netip.AddrFrom16([16]byte(b[4 : 4+16]))
	rest := b[4+nhLen+1:]
	var err error
	u.V6Announced, err = decodeNLRI(rest, true)
	return err
}

func (u *Update) decodeMPUnreach(b []byte) error {
	if len(b) < 3 {
		return errors.New("bgp: truncated MP_UNREACH")
	}
	afi := binary.BigEndian.Uint16(b[:2])
	safi := b[2]
	if afi != 2 || safi != 1 {
		return fmt.Errorf("bgp: unsupported MP_UNREACH AFI/SAFI %d/%d", afi, safi)
	}
	var err error
	u.V6Withdrawn, err = decodeNLRI(b[3:], true)
	return err
}

// appendNLRI appends prefixes in the (length, truncated-address) wire form.
func appendNLRI(dst []byte, prefixes []netip.Prefix) ([]byte, error) {
	for _, p := range prefixes {
		if !p.IsValid() {
			return nil, fmt.Errorf("invalid prefix %v", p)
		}
		p = p.Masked()
		dst = append(dst, byte(p.Bits()))
		nbytes := (p.Bits() + 7) / 8
		if p.Addr().Is4() {
			a := p.Addr().As4()
			dst = append(dst, a[:nbytes]...)
		} else {
			a := p.Addr().As16()
			dst = append(dst, a[:nbytes]...)
		}
	}
	return dst, nil
}

// nlriWireSize returns the encoded size of the prefixes without encoding.
func nlriWireSize(prefixes []netip.Prefix) (int, error) {
	n := 0
	for _, p := range prefixes {
		if !p.IsValid() {
			return 0, fmt.Errorf("invalid prefix %v", p)
		}
		n += 1 + (p.Bits()+7)/8
	}
	return n, nil
}

func decodeNLRI(b []byte, v6 bool) ([]netip.Prefix, error) {
	var out []netip.Prefix
	for len(b) > 0 {
		bits := int(b[0])
		b = b[1:]
		max := 32
		if v6 {
			max = 128
		}
		if bits > max {
			return nil, fmt.Errorf("prefix length %d exceeds %d", bits, max)
		}
		nbytes := (bits + 7) / 8
		if len(b) < nbytes {
			return nil, errors.New("truncated NLRI")
		}
		if v6 {
			var a [16]byte
			copy(a[:], b[:nbytes])
			out = append(out, netip.PrefixFrom(netip.AddrFrom16(a), bits).Masked())
		} else {
			var a [4]byte
			copy(a[:], b[:nbytes])
			out = append(out, netip.PrefixFrom(netip.AddrFrom4(a), bits).Masked())
		}
		b = b[nbytes:]
	}
	return out, nil
}
