package bgp

import (
	"math/rand"
	"net/netip"
	"testing"

	"countryrank/internal/asn"
	"countryrank/internal/netx"
)

func TestUpdateRoundTrip(t *testing.T) {
	u := &Update{
		Withdrawn: []netip.Prefix{netx.MustPrefix("192.0.2.0/24")},
		Origin:    OriginIGP,
		ASPath:    SequencePath(path(3356, 1299, 1221)),
		NextHop:   netip.MustParseAddr("203.0.113.1"),
		MED:       42,
		HasMED:    true,
		Announced: []netip.Prefix{netx.MustPrefix("198.51.100.0/24"), netx.MustPrefix("10.0.0.0/8")},
	}
	raw, err := u.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := UnmarshalUpdate(raw)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if len(got.Withdrawn) != 1 || got.Withdrawn[0] != u.Withdrawn[0] {
		t.Errorf("withdrawn = %v", got.Withdrawn)
	}
	if got.Origin != u.Origin {
		t.Errorf("origin = %v", got.Origin)
	}
	if !got.ASPath.Flatten().Equal(u.ASPath.Flatten()) {
		t.Errorf("path = %v, want %v", got.ASPath.Flatten(), u.ASPath.Flatten())
	}
	if got.NextHop != u.NextHop {
		t.Errorf("next hop = %v", got.NextHop)
	}
	if !got.HasMED || got.MED != 42 {
		t.Errorf("MED = %v,%v", got.MED, got.HasMED)
	}
	if len(got.Announced) != 2 || got.Announced[0] != u.Announced[0] || got.Announced[1] != u.Announced[1] {
		t.Errorf("announced = %v", got.Announced)
	}
}

func TestUpdateV6RoundTrip(t *testing.T) {
	u := &Update{
		Origin:      OriginEGP,
		ASPath:      SequencePath(path(2914, 4713)),
		V6NextHop:   netip.MustParseAddr("2001:db8::1"),
		V6Announced: []netip.Prefix{netx.MustPrefix("2001:db8:100::/48")},
	}
	raw, err := u.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := UnmarshalUpdate(raw)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.V6NextHop != u.V6NextHop {
		t.Errorf("v6 next hop = %v", got.V6NextHop)
	}
	if len(got.V6Announced) != 1 || got.V6Announced[0] != u.V6Announced[0] {
		t.Errorf("v6 announced = %v", got.V6Announced)
	}
	if !got.ASPath.Flatten().Equal(path(2914, 4713)) {
		t.Errorf("path = %v", got.ASPath.Flatten())
	}
}

func TestASSetRoundTrip(t *testing.T) {
	u := &Update{
		Origin: OriginIncomplete,
		ASPath: ASPath{
			{Type: SegmentSequence, ASNs: []asn.ASN{100, 200}},
			{Type: SegmentSet, ASNs: []asn.ASN{300, 400}},
		},
		NextHop:   netip.MustParseAddr("10.0.0.1"),
		Announced: []netip.Prefix{netx.MustPrefix("172.16.0.0/12")},
	}
	raw, err := u.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := UnmarshalUpdate(raw)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if len(got.ASPath) != 2 || got.ASPath[0].Type != SegmentSequence || got.ASPath[1].Type != SegmentSet {
		t.Fatalf("segments = %+v", got.ASPath)
	}
	if !got.ASPath.Flatten().Equal(path(100, 200, 300, 400)) {
		t.Errorf("flatten = %v", got.ASPath.Flatten())
	}
}

func TestMarshalErrors(t *testing.T) {
	// IPv4 NLRI without an IPv4 next hop.
	u := &Update{
		ASPath:    SequencePath(path(1)),
		Announced: []netip.Prefix{netx.MustPrefix("10.0.0.0/8")},
	}
	if _, err := u.Marshal(); err == nil {
		t.Error("expected error for missing next hop")
	}
	// v6 NLRI with v4 next hop.
	u = &Update{
		ASPath:      SequencePath(path(1)),
		V6NextHop:   netip.MustParseAddr("10.0.0.1"),
		V6Announced: []netip.Prefix{netx.MustPrefix("2001:db8::/32")},
	}
	if _, err := u.Marshal(); err == nil {
		t.Error("expected error for v4 next hop on v6 NLRI")
	}
	// Oversized segment.
	big := make([]asn.ASN, 256)
	u = &Update{
		ASPath:    ASPath{{Type: SegmentSequence, ASNs: big}},
		NextHop:   netip.MustParseAddr("10.0.0.1"),
		Announced: []netip.Prefix{netx.MustPrefix("10.0.0.0/8")},
	}
	if _, err := u.Marshal(); err == nil {
		t.Error("expected error for oversized segment")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := UnmarshalUpdate(nil); err == nil {
		t.Error("nil buffer should fail")
	}
	u := &Update{ASPath: SequencePath(path(1)), NextHop: netip.MustParseAddr("1.1.1.1"),
		Announced: []netip.Prefix{netx.MustPrefix("10.0.0.0/8")}}
	raw, _ := u.Marshal()

	bad := append([]byte(nil), raw...)
	bad[0] = 0 // corrupt marker
	if _, err := UnmarshalUpdate(bad); err == nil {
		t.Error("bad marker should fail")
	}

	bad = append([]byte(nil), raw...)
	bad[18] = TypeKeepalive
	if _, err := UnmarshalUpdate(bad); err == nil {
		t.Error("non-UPDATE type should fail")
	}

	// Truncated body.
	if _, err := UnmarshalUpdate(raw[:20]); err == nil {
		t.Error("truncation should fail (length mismatch)")
	}
}

// TestUpdateRoundTripRandom fuzzes the codec with random valid updates.
func TestUpdateRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(8)
		p := make(Path, n)
		for j := range p {
			p[j] = asn.ASN(1 + rng.Intn(1<<20))
		}
		nPfx := 1 + rng.Intn(5)
		pfxs := make([]netip.Prefix, nPfx)
		for j := range pfxs {
			a := rng.Uint32()
			bits := 8 + rng.Intn(25)
			pfxs[j] = netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}), bits).Masked()
		}
		u := &Update{
			Origin:    OriginCode(rng.Intn(3)),
			ASPath:    SequencePath(p),
			NextHop:   netip.AddrFrom4([4]byte{10, 0, 0, byte(rng.Intn(255) + 1)}),
			Announced: pfxs,
		}
		raw, err := u.Marshal()
		if err != nil {
			t.Fatalf("Marshal: %v", err)
		}
		got, err := UnmarshalUpdate(raw)
		if err != nil {
			t.Fatalf("Unmarshal: %v", err)
		}
		if !got.ASPath.Flatten().Equal(p) {
			t.Fatalf("path mismatch: %v vs %v", got.ASPath.Flatten(), p)
		}
		if len(got.Announced) != len(pfxs) {
			t.Fatalf("announced count mismatch")
		}
		for j := range pfxs {
			if got.Announced[j] != pfxs[j] {
				t.Fatalf("prefix %d: %v vs %v", j, got.Announced[j], pfxs[j])
			}
		}
	}
}
