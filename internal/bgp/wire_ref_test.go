package bgp

// The reference marshalers below are the pre-optimization bytes.Buffer +
// binary.Write implementations, retained as executable specifications of
// the wire format. TestAppendWireMatchesReference requires the
// zero-allocation append codec to reproduce them byte for byte on
// randomized inputs, the same retained-reference discipline the dense
// metric kernels follow.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"testing"

	"countryrank/internal/asn"
)

func marshalAttrsRef(a AttrSet) ([]byte, error) {
	var b bytes.Buffer
	b.Write([]byte{flagTransit, attrOrigin, 1, byte(a.Origin)})
	var pb bytes.Buffer
	for _, seg := range a.ASPath {
		if len(seg.ASNs) > 255 {
			return nil, errors.New("bgp: segment longer than 255 ASNs")
		}
		pb.WriteByte(seg.Type)
		pb.WriteByte(byte(len(seg.ASNs)))
		for _, x := range seg.ASNs {
			binary.Write(&pb, binary.BigEndian, uint32(x))
		}
	}
	writeAttrRef(&b, flagTransit, attrASPath, pb.Bytes())
	if a.NextHop.IsValid() {
		if !a.NextHop.Is4() {
			return nil, errors.New("bgp: AttrSet next hop must be IPv4")
		}
		nh := a.NextHop.As4()
		writeAttrRef(&b, flagTransit, attrNextHop, nh[:])
	}
	return b.Bytes(), nil
}

func writeAttrRef(b *bytes.Buffer, flags, code uint8, val []byte) {
	if len(val) > 255 {
		flags |= flagExtLen
	}
	b.WriteByte(flags)
	b.WriteByte(code)
	if flags&flagExtLen != 0 {
		binary.Write(b, binary.BigEndian, uint16(len(val)))
	} else {
		b.WriteByte(byte(len(val)))
	}
	b.Write(val)
}

func encodeNLRIRef(prefixes []netip.Prefix) ([]byte, error) {
	var b bytes.Buffer
	for _, p := range prefixes {
		if !p.IsValid() {
			return nil, fmt.Errorf("invalid prefix %v", p)
		}
		p = p.Masked()
		b.WriteByte(byte(p.Bits()))
		nbytes := (p.Bits() + 7) / 8
		if p.Addr().Is4() {
			a := p.Addr().As4()
			b.Write(a[:nbytes])
		} else {
			a := p.Addr().As16()
			b.Write(a[:nbytes])
		}
	}
	return b.Bytes(), nil
}

func marshalUpdateRef(u *Update) ([]byte, error) {
	var body bytes.Buffer

	wd, err := encodeNLRIRef(u.Withdrawn)
	if err != nil {
		return nil, fmt.Errorf("bgp: withdrawn: %w", err)
	}
	binary.Write(&body, binary.BigEndian, uint16(len(wd)))
	body.Write(wd)

	attrs, err := encodeUpdateAttrsRef(u)
	if err != nil {
		return nil, err
	}
	binary.Write(&body, binary.BigEndian, uint16(len(attrs)))
	body.Write(attrs)

	nlri, err := encodeNLRIRef(u.Announced)
	if err != nil {
		return nil, fmt.Errorf("bgp: nlri: %w", err)
	}
	body.Write(nlri)

	total := 19 + body.Len()
	if total > 4096 {
		return nil, fmt.Errorf("bgp: message length %d exceeds 4096", total)
	}
	out := make([]byte, 0, total)
	out = append(out, marker...)
	out = binary.BigEndian.AppendUint16(out, uint16(total))
	out = append(out, TypeUpdate)
	out = append(out, body.Bytes()...)
	return out, nil
}

func encodeUpdateAttrsRef(u *Update) ([]byte, error) {
	var b bytes.Buffer
	if len(u.V6Withdrawn) > 0 {
		var mp bytes.Buffer
		binary.Write(&mp, binary.BigEndian, uint16(2))
		mp.WriteByte(1)
		enc, err := encodeNLRIRef(u.V6Withdrawn)
		if err != nil {
			return nil, fmt.Errorf("bgp: v6 withdrawn: %w", err)
		}
		mp.Write(enc)
		writeAttrRef(&b, flagOptional|flagExtLen, attrMPUnreach, mp.Bytes())
	}
	hasReach := len(u.Announced) > 0 || len(u.V6Announced) > 0
	if hasReach {
		b.Write([]byte{flagTransit, attrOrigin, 1, byte(u.Origin)})
		var pb bytes.Buffer
		for _, seg := range u.ASPath {
			if len(seg.ASNs) > 255 {
				return nil, errors.New("bgp: segment longer than 255 ASNs")
			}
			pb.WriteByte(seg.Type)
			pb.WriteByte(byte(len(seg.ASNs)))
			for _, a := range seg.ASNs {
				binary.Write(&pb, binary.BigEndian, uint32(a))
			}
		}
		writeAttrRef(&b, flagTransit, attrASPath, pb.Bytes())
	}
	if len(u.Announced) > 0 {
		if !u.NextHop.Is4() {
			return nil, errors.New("bgp: IPv4 NLRI requires an IPv4 next hop")
		}
		nh := u.NextHop.As4()
		writeAttrRef(&b, flagTransit, attrNextHop, nh[:])
	}
	if u.HasMED {
		var mb [4]byte
		binary.BigEndian.PutUint32(mb[:], u.MED)
		writeAttrRef(&b, flagOptional, attrMED, mb[:])
	}
	if len(u.V6Announced) > 0 {
		if !u.V6NextHop.Is6() || u.V6NextHop.Is4() {
			return nil, errors.New("bgp: IPv6 NLRI requires an IPv6 next hop")
		}
		var mp bytes.Buffer
		binary.Write(&mp, binary.BigEndian, uint16(2))
		mp.WriteByte(1)
		nh := u.V6NextHop.As16()
		mp.WriteByte(16)
		mp.Write(nh[:])
		mp.WriteByte(0)
		enc, err := encodeNLRIRef(u.V6Announced)
		if err != nil {
			return nil, fmt.Errorf("bgp: v6 nlri: %w", err)
		}
		mp.Write(enc)
		writeAttrRef(&b, flagOptional|flagExtLen, attrMPReach, mp.Bytes())
	}
	return b.Bytes(), nil
}

func randPath(rng *rand.Rand, n int) Path {
	p := make(Path, n)
	for i := range p {
		p[i] = asn.ASN(1 + rng.Intn(1<<18))
	}
	return p
}

func randV4Prefix(rng *rand.Rand) netip.Prefix {
	a := rng.Uint32()
	return netip.PrefixFrom(
		netip.AddrFrom4([4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}),
		8+rng.Intn(25)).Masked()
}

func randV6Prefix(rng *rand.Rand) netip.Prefix {
	var a [16]byte
	rng.Read(a[:])
	a[0], a[1] = 0x20, 0x01
	return netip.PrefixFrom(netip.AddrFrom16(a), 16+rng.Intn(49)).Masked()
}

func TestAppendWireMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		a := AttrSet{
			Origin: OriginCode(rng.Intn(3)),
			ASPath: SequencePath(randPath(rng, rng.Intn(8))),
		}
		if rng.Intn(2) == 0 {
			a.NextHop = netip.AddrFrom4([4]byte{192, 0, 2, byte(rng.Intn(256))})
		}
		if rng.Intn(8) == 0 { // exercise the extended-length header
			a.ASPath = append(a.ASPath, Segment{Type: SegmentSet, ASNs: randPath(rng, 100)})
		}
		want, werr := marshalAttrsRef(a)
		got, gerr := a.Marshal()
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("attrs %d: error mismatch %v vs %v", i, werr, gerr)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("attrs %d: wire mismatch\n got %x\nwant %x", i, got, want)
		}
	}

	for i := 0; i < 2000; i++ {
		u := &Update{}
		for j := rng.Intn(3); j > 0; j-- {
			u.Withdrawn = append(u.Withdrawn, randV4Prefix(rng))
		}
		if rng.Intn(2) == 0 {
			u.ASPath = SequencePath(randPath(rng, 1+rng.Intn(6)))
			u.NextHop = netip.AddrFrom4([4]byte{10, 0, 0, byte(1 + rng.Intn(250))})
			for j := 1 + rng.Intn(3); j > 0; j-- {
				u.Announced = append(u.Announced, randV4Prefix(rng))
			}
		}
		if rng.Intn(3) == 0 {
			u.HasMED = true
			u.MED = rng.Uint32()
		}
		if rng.Intn(3) == 0 {
			if len(u.ASPath) == 0 {
				u.ASPath = SequencePath(randPath(rng, 1+rng.Intn(6)))
			}
			u.V6NextHop = netip.MustParseAddr("2001:db8::9")
			for j := 1 + rng.Intn(3); j > 0; j-- {
				u.V6Announced = append(u.V6Announced, randV6Prefix(rng))
			}
		}
		if rng.Intn(3) == 0 {
			for j := 1 + rng.Intn(3); j > 0; j-- {
				u.V6Withdrawn = append(u.V6Withdrawn, randV6Prefix(rng))
			}
		}
		want, werr := marshalUpdateRef(u)
		got, gerr := u.Marshal()
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("update %d: error mismatch %v vs %v", i, werr, gerr)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("update %d: wire mismatch\n got %x\nwant %x", i, got, want)
		}
	}
}

// TestAttrDecoderMatchesUnmarshal checks the reusing decoder against the
// allocating one, including reuse across Reset cycles.
func TestAttrDecoderMatchesUnmarshal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var dec AttrDecoder
	for i := 0; i < 500; i++ {
		dec.Reset()
		// Several sets per reset cycle, held simultaneously like the RIB
		// scanner holds a record's entries.
		type pair struct {
			wire []byte
			want AttrSet
		}
		var batch []pair
		for j := 0; j < 1+rng.Intn(5); j++ {
			a := AttrSet{
				Origin:  OriginCode(rng.Intn(3)),
				ASPath:  SequencePath(randPath(rng, 1+rng.Intn(7))),
				NextHop: netip.AddrFrom4([4]byte{192, 0, 2, byte(rng.Intn(256))}),
			}
			wire, err := a.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			batch = append(batch, pair{wire, a})
		}
		var got []AttrSet
		for _, p := range batch {
			g, err := dec.Decode(p.wire)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			got = append(got, g)
		}
		for k, p := range batch {
			ref, err := UnmarshalAttrs(p.wire)
			if err != nil {
				t.Fatal(err)
			}
			g := got[k]
			if g.Origin != ref.Origin || g.NextHop != ref.NextHop ||
				!g.PathOf().Equal(ref.PathOf()) {
				t.Fatalf("cycle %d set %d: %+v vs %+v", i, k, g, ref)
			}
		}
	}
}

func TestInterner(t *testing.T) {
	it := NewInterner(4)
	p1 := Path{3356, 1299, 64500}
	p2 := Path{3356, 1299, 64501}
	i1 := it.Intern(p1)
	i2 := it.Intern(p2)
	if i1 == i2 {
		t.Fatal("distinct paths interned to one index")
	}
	if got := it.Intern(append(Path(nil), p1...)); got != i1 {
		t.Fatalf("equal path re-interned: %d vs %d", got, i1)
	}
	// Interning must copy: mutating the argument later is harmless.
	scratch := Path{9, 9, 9}
	i3 := it.Intern(scratch)
	scratch[0] = 1
	if !it.PathAt(i3).Equal(Path{9, 9, 9}) {
		t.Fatal("Intern aliased caller storage")
	}
	// InternOwned adopts the slice itself.
	owned := Path{7, 8}
	i4 := it.InternOwned(owned)
	if &it.PathAt(i4)[0] != &owned[0] {
		t.Fatal("InternOwned copied instead of adopting")
	}
	if it.Len() != 4 {
		t.Fatalf("Len = %d", it.Len())
	}
	// Empty and nil paths intern to the same entry.
	e1 := it.Intern(Path{})
	e2 := it.Intern(nil)
	if e1 != e2 {
		t.Fatalf("empty-path indexes differ: %d vs %d", e1, e2)
	}
	paths := it.Paths()
	if len(paths) != 5 || !paths[i1].Equal(p1) || !paths[i2].Equal(p2) {
		t.Fatalf("Paths() = %v", paths)
	}
}
