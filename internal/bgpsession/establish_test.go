package bgpsession

import (
	"errors"
	"net"
	"net/netip"
	"runtime"
	"testing"
	"time"

	"countryrank/internal/bgp"
	"countryrank/internal/faultnet"
)

// checkNoLeak snapshots the goroutine count and fails the test if it has not
// returned to the baseline shortly after the test body finishes: the clean
// teardown guarantee every Establish failure path must uphold.
func checkNoLeak(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:n])
	})
}

// TestUnacceptableHoldTimeRejected enforces RFC 4271 §6.2: a peer OPEN
// advertising a 1- or 2-second hold time gets an unacceptable-hold-time
// NOTIFICATION instead of being silently negotiated. The offending OPEN is
// hand-crafted, since Establish itself never puts 1 or 2 on the wire.
func TestUnacceptableHoldTimeRejected(t *testing.T) {
	checkNoLeak(t)
	for _, holdSecs := range []uint16{1, 2} {
		c1, c2 := net.Pipe()
		done := make(chan error, 1)
		go func() {
			_, err := Establish(c1, cfg(6447, "10.0.0.2"))
			done <- err
		}()
		// Drain the good side's OPEN, then send the unacceptable one.
		var buf []byte
		tmp := make([]byte, 4096)
		c2.SetDeadline(time.Now().Add(2 * time.Second))
		for {
			msg, n, _ := bgp.ReadMessage(buf)
			if msg != nil && msg.Type == bgp.TypeOpen {
				buf = buf[n:]
				break
			}
			rn, err := c2.Read(tmp)
			if err != nil {
				t.Fatalf("hold %d: reading peer OPEN: %v", holdSecs, err)
			}
			buf = append(buf, tmp[:rn]...)
		}
		open := bgp.Open{AS: 100001, HoldTime: holdSecs, BGPID: netip.MustParseAddr("10.0.0.1")}
		raw, err := open.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c2.Write(raw); err != nil {
			t.Fatalf("hold %d: sending bad OPEN: %v", holdSecs, err)
		}
		// The NOTIFICATION must reach the offending peer. Read it before
		// joining Establish: net.Pipe is unbuffered, so the rejection write
		// needs this reader.
		for {
			msg, n, merr := bgp.ReadMessage(buf)
			if merr != nil {
				t.Fatalf("hold %d: parsing rejection: %v", holdSecs, merr)
			}
			if msg != nil {
				if msg.Type != bgp.TypeNotification ||
					msg.Notification.Subcode != bgp.OpenUnacceptableHoldTime {
					t.Fatalf("hold %d: got message type %d, want the rejection", holdSecs, msg.Type)
				}
				_ = n
				break
			}
			rn, err := c2.Read(tmp)
			if err != nil {
				t.Fatalf("hold %d: reading rejection: %v", holdSecs, err)
			}
			buf = append(buf, tmp[:rn]...)
		}
		// And the collector side must have failed with subcode 6.
		var notif *bgp.Notification
		if err := <-done; !errors.As(err, &notif) || notif.Code != bgp.NotifOpenError ||
			notif.Subcode != bgp.OpenUnacceptableHoldTime {
			t.Fatalf("hold %d: err = %v, want OPEN error subcode %d",
				holdSecs, err, bgp.OpenUnacceptableHoldTime)
		}
		c2.Close()
	}
}

// TestHoldTimeThreeSecondsAccepted pins the boundary: 3 seconds is the
// smallest acceptable nonzero hold time.
func TestHoldTimeThreeSecondsAccepted(t *testing.T) {
	checkNoLeak(t)
	s1, s2 := pipePair(t, cfg(100001, "10.0.0.1"), cfg(6447, "10.0.0.2"))
	if s1.HoldTime() != 3*time.Second {
		t.Fatalf("hold = %v, want 3s", s1.HoldTime())
	}
	s1.Close()
	s2.Close()
}

// TestEstablishGarbageOpen injects a byte corruption into the peer's OPEN
// marker via faultnet: the collector side must answer with a header-error
// NOTIFICATION and tear down without leaking its writer goroutine.
func TestEstablishGarbageOpen(t *testing.T) {
	checkNoLeak(t)
	c1, c2 := net.Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := Establish(c1, cfg(6447, "10.0.0.2"))
		done <- err
	}()
	// The faulty side corrupts the first marker byte of its own OPEN.
	faulty := faultnet.Wrap(c2, faultnet.Config{
		Schedule: []faultnet.Fault{{AtByte: 0, Kind: faultnet.Corrupt}},
	})
	_, badErr := Establish(faulty, Config{
		AS: 100001, BGPID: netip.MustParseAddr("10.0.0.1"),
		HoldTime: 3 * time.Second, HandshakeTimeout: 2 * time.Second,
	})
	if badErr == nil {
		t.Fatal("corrupted OPEN established anyway")
	}
	err := <-done
	var notif *bgp.Notification
	if !errors.As(err, &notif) || notif.Code != bgp.NotifMessageHeaderError {
		t.Fatalf("err = %v, want header-error notification", err)
	}
	faulty.Close()
	c1.Close()
}

// TestEstablishStallTimesOut starts a peer that connects and then goes
// silent: Establish must give up at HandshakeTimeout and close the
// connection (observed by the peer as EOF), leaking nothing.
func TestEstablishStallTimesOut(t *testing.T) {
	checkNoLeak(t)
	c1, c2 := net.Pipe()
	start := time.Now()
	_, err := Establish(c1, Config{
		AS: 6447, BGPID: netip.MustParseAddr("10.0.0.2"),
		HoldTime: 3 * time.Second, HandshakeTimeout: 150 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("established against a silent peer")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("err = %v, want a timeout", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("timeout took %v, want ~150ms", d)
	}
	// Teardown must have closed the transport: the stalled peer's read ends.
	c2.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4096)
	for {
		if _, rerr := c2.Read(buf); rerr != nil {
			break
		}
	}
	c2.Close()
}
