// Package bgpsession implements a minimal BGP-4 speaker (RFC 4271): the
// OPEN handshake with 4-octet-AS capability negotiation, keepalive and hold
// timers, and update exchange. Route collectors like RouteViews are nothing
// more than passive speakers that accept sessions and record every UPDATE;
// this package lets the simulator's vantage points feed a collector over a
// real byte stream (net.Conn, net.Pipe) instead of handing it structs,
// exercising the full wire path end to end.
package bgpsession

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"

	"countryrank/internal/asn"
	"countryrank/internal/bgp"
)

// Config parameterizes one side of a session.
type Config struct {
	AS    asn.ASN
	BGPID netip.Addr
	// HoldTime is the advertised hold time; the effective hold time is the
	// minimum of both sides'. Zero selects 90 seconds.
	HoldTime time.Duration
	// HandshakeTimeout bounds Establish. Zero selects 10 seconds.
	HandshakeTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.HoldTime == 0 {
		c.HoldTime = 90 * time.Second
	}
	if c.HandshakeTimeout == 0 {
		c.HandshakeTimeout = 10 * time.Second
	}
	return c
}

// Session is an established BGP session.
type Session struct {
	conn net.Conn
	cfg  Config
	// Peer is the remote side's OPEN.
	Peer bgp.Open
	// hold is the negotiated hold time (0 = no keepalives required).
	hold time.Duration

	readBuf []byte

	mu       sync.Mutex
	closed   bool
	stopKeep chan struct{}
	keepWG   sync.WaitGroup
}

// Establish performs the OPEN/KEEPALIVE handshake on conn. Both sides call
// it; the exchange is symmetric.
func Establish(conn net.Conn, cfg Config) (*Session, error) {
	cfg = cfg.withDefaults()
	s := &Session{conn: conn, cfg: cfg}

	deadline := time.Now().Add(cfg.HandshakeTimeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, fmt.Errorf("bgpsession: set deadline: %w", err)
	}
	// The wire carries whole seconds; advertise the ceiling so sub-second
	// configured hold times don't become 0 ("no hold monitoring"). 1 and 2
	// are unacceptable on the wire (RFC 4271 §6.2), so short hold times
	// advertise the minimum of 3; the local side still enforces its
	// configured sub-second hold, since negotiation takes the minimum.
	holdSecs := uint16((cfg.HoldTime + time.Second - 1) / time.Second)
	if holdSecs > 0 && holdSecs < 3 {
		holdSecs = 3
	}
	open := bgp.Open{AS: cfg.AS, HoldTime: holdSecs, BGPID: cfg.BGPID}
	raw, err := open.Marshal()
	if err != nil {
		return nil, err
	}
	// Both sides write before reading: on unbuffered transports like
	// net.Pipe a synchronous write would deadlock against the symmetric
	// peer, so a single ordered writer goroutine sends the OPEN, waits
	// until the peer's OPEN has been read (the RFC's trigger for sending
	// KEEPALIVE), and then sends the KEEPALIVE.
	writeDone := make(chan error, 1)
	openRead := make(chan struct{})
	go func() {
		if _, err := conn.Write(raw); err != nil {
			writeDone <- err
			return
		}
		<-openRead
		_, err := conn.Write(bgp.MarshalKeepalive())
		writeDone <- err
	}()

	msg, err := s.readMessage()
	if err != nil {
		close(openRead)
		return nil, s.fail(err)
	}
	if msg.Type == bgp.TypeNotification {
		// The peer rejected us; surface its notification, don't answer it.
		close(openRead)
		s.conn.Close()
		return nil, msg.Notification
	}
	if msg.Type != bgp.TypeOpen {
		close(openRead)
		return nil, s.fail(&bgp.Notification{Code: bgp.NotifFSMError})
	}
	// RFC 4271 §6.2: a hold time of 1 or 2 seconds is unacceptable (it must
	// be 0 or at least 3); reject it instead of silently negotiating it.
	// fail runs before openRead is closed so the writer goroutine cannot
	// slip a KEEPALIVE in ahead of the rejection.
	if msg.Open.HoldTime == 1 || msg.Open.HoldTime == 2 {
		err := s.fail(&bgp.Notification{
			Code: bgp.NotifOpenError, Subcode: bgp.OpenUnacceptableHoldTime,
		})
		close(openRead)
		return nil, err
	}
	s.Peer = *msg.Open
	close(openRead)

	// Negotiated hold time: the minimum of the local configuration (which
	// keeps sub-second precision) and the peer's advertisement. A peer
	// advertising 0 disables hold monitoring entirely (RFC 4271 §4.2).
	peerHold := time.Duration(msg.Open.HoldTime) * time.Second
	s.hold = cfg.HoldTime
	if peerHold == 0 {
		s.hold = 0
	} else if peerHold < s.hold {
		s.hold = peerHold
	}

	msg, err = s.readMessage()
	if err != nil {
		return nil, s.fail(err)
	}
	if msg.Type == bgp.TypeNotification {
		// E.g. the peer found our hold time unacceptable after its OPEN.
		s.conn.Close()
		return nil, msg.Notification
	}
	if msg.Type != bgp.TypeKeepalive {
		return nil, s.fail(&bgp.Notification{Code: bgp.NotifFSMError})
	}
	if err := <-writeDone; err != nil {
		s.conn.Close()
		return nil, fmt.Errorf("bgpsession: handshake write: %w", err)
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return nil, err
	}
	return s, nil
}

// fail sends a notification for protocol errors (best effort: a short write
// deadline keeps an unread unbuffered peer from stalling the teardown) and
// closes the connection.
func (s *Session) fail(err error) error {
	var notif *bgp.Notification
	if errors.As(err, &notif) {
		if raw, merr := notif.Marshal(); merr == nil {
			s.conn.SetWriteDeadline(time.Now().Add(200 * time.Millisecond))
			s.conn.Write(raw)
		}
	}
	s.conn.Close()
	return err
}

// readMessage reads one complete message from the connection.
func (s *Session) readMessage() (*bgp.Message, error) {
	var tmp [4096]byte
	for {
		if msg, n, err := bgp.ReadMessage(s.readBuf); err != nil {
			return nil, err
		} else if msg != nil {
			s.readBuf = append(s.readBuf[:0], s.readBuf[n:]...)
			return msg, nil
		}
		n, err := s.conn.Read(tmp[:])
		if n > 0 {
			s.readBuf = append(s.readBuf, tmp[:n]...)
			continue
		}
		if err != nil {
			return nil, err
		}
	}
}

// Send transmits one UPDATE.
func (s *Session) Send(u *bgp.Update) error {
	raw, err := u.Marshal()
	if err != nil {
		return err
	}
	_, err = s.conn.Write(raw)
	return err
}

// Recv returns the next UPDATE, transparently absorbing keepalives and
// enforcing the negotiated hold timer. A received NOTIFICATION or a hold
// timer expiry closes the session and is returned as the error; io.EOF
// signals a clean remote close.
func (s *Session) Recv() (*bgp.Update, error) {
	for {
		if s.hold > 0 {
			if err := s.conn.SetReadDeadline(time.Now().Add(s.hold)); err != nil {
				return nil, err
			}
		}
		msg, err := s.readMessage()
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				expired := &bgp.Notification{Code: bgp.NotifHoldTimerExpired}
				s.fail(expired)
				return nil, expired
			}
			if errors.Is(err, io.EOF) {
				return nil, io.EOF
			}
			return nil, s.fail(err)
		}
		switch msg.Type {
		case bgp.TypeUpdate:
			return msg.Update, nil
		case bgp.TypeKeepalive:
			continue
		case bgp.TypeNotification:
			s.conn.Close()
			return nil, msg.Notification
		default:
			return nil, s.fail(&bgp.Notification{Code: bgp.NotifFSMError})
		}
	}
}

// StartKeepalives sends keepalives every interval until Close. The
// conventional interval is a third of the hold time.
func (s *Session) StartKeepalives(interval time.Duration) {
	if interval <= 0 {
		interval = s.hold / 3
	}
	if interval <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopKeep != nil || s.closed {
		return
	}
	s.stopKeep = make(chan struct{})
	stop := s.stopKeep
	s.keepWG.Add(1)
	go func() {
		defer s.keepWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.mu.Lock()
				closed := s.closed
				s.mu.Unlock()
				if closed {
					return
				}
				if _, err := s.conn.Write(bgp.MarshalKeepalive()); err != nil {
					return
				}
			case <-stop:
				return
			}
		}
	}()
}

// HoldTime returns the negotiated hold time.
func (s *Session) HoldTime() time.Duration { return s.hold }

// Close sends CEASE and closes the connection.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	stop := s.stopKeep
	s.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	// CEASE is best effort: if the peer is not reading (or the transport is
	// unbuffered, like net.Pipe), the write must not stall the close.
	cease := &bgp.Notification{Code: bgp.NotifCease}
	if raw, err := cease.Marshal(); err == nil {
		s.conn.SetWriteDeadline(time.Now().Add(200 * time.Millisecond))
		s.conn.Write(raw)
	}
	err := s.conn.Close()
	s.keepWG.Wait()
	return err
}

// Table accumulates the best routes learned over a session, keyed by
// prefix: what a route collector stores per peer.
type Table struct {
	Routes map[netip.Prefix]bgp.Path
}

// NewTable returns an empty table.
func NewTable() *Table { return &Table{Routes: map[netip.Prefix]bgp.Path{}} }

// Apply folds one UPDATE into the table, both address families.
func (t *Table) Apply(u *bgp.Update) {
	for _, w := range u.Withdrawn {
		delete(t.Routes, w)
	}
	for _, w := range u.V6Withdrawn {
		delete(t.Routes, w)
	}
	path := u.ASPath.Flatten()
	for _, p := range u.Announced {
		t.Routes[p] = path
	}
	for _, p := range u.V6Announced {
		t.Routes[p] = path
	}
}

// Collect receives updates into the table until the peer closes the
// session (io.EOF or CEASE) or max updates arrive (0 = unlimited). It
// returns the number of updates applied.
func (s *Session) Collect(t *Table, max int) (int, error) {
	n := 0
	for max == 0 || n < max {
		u, err := s.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return n, nil
			}
			var notif *bgp.Notification
			if errors.As(err, &notif) && notif.Code == bgp.NotifCease {
				return n, nil
			}
			return n, err
		}
		t.Apply(u)
		n++
	}
	return n, nil
}
