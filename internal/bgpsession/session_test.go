package bgpsession

import (
	"errors"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"countryrank/internal/asn"
	"countryrank/internal/bgp"
	"countryrank/internal/netx"
)

func cfg(a uint32, id string) Config {
	return Config{AS: asn.ASN(a), BGPID: netip.MustParseAddr(id), HoldTime: 3 * time.Second}
}

func pipePair(t *testing.T, a, b Config) (*Session, *Session) {
	t.Helper()
	c1, c2 := net.Pipe()
	var s1, s2 *Session
	var e1, e2 error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); s1, e1 = Establish(c1, a) }()
	go func() { defer wg.Done(); s2, e2 = Establish(c2, b) }()
	wg.Wait()
	if e1 != nil || e2 != nil {
		t.Fatalf("handshake: %v / %v", e1, e2)
	}
	return s1, s2
}

func TestHandshakeNegotiation(t *testing.T) {
	// A 4-byte ASN must survive the AS_TRANS encoding via the capability.
	speaker, collector := pipePair(t,
		Config{AS: 401234, BGPID: netip.MustParseAddr("10.0.0.1"), HoldTime: 9 * time.Second},
		Config{AS: 6447, BGPID: netip.MustParseAddr("10.0.0.2"), HoldTime: 3 * time.Second},
	)
	defer speaker.Close()
	defer collector.Close()
	if collector.Peer.AS != 401234 {
		t.Errorf("collector sees peer AS %v, want 401234", collector.Peer.AS)
	}
	if speaker.Peer.AS != 6447 {
		t.Errorf("speaker sees peer AS %v", speaker.Peer.AS)
	}
	// Hold time negotiates to the minimum of both sides.
	if speaker.HoldTime() != 3*time.Second || collector.HoldTime() != 3*time.Second {
		t.Errorf("hold times: %v / %v, want 3s", speaker.HoldTime(), collector.HoldTime())
	}
}

func TestFeedAndCollect(t *testing.T) {
	speaker, collector := pipePair(t, cfg(64496+100000, "10.0.0.1"), cfg(6447, "10.0.0.2"))
	defer collector.Close()

	want := map[string][]uint32{
		"192.0.2.0/24":    {100001, 3356, 1221},
		"198.51.100.0/24": {100001, 1299, 4826, 1221},
		"203.0.113.0/24":  {100001, 174},
	}
	go func() {
		for pfx, hops := range want {
			path := make(bgp.Path, len(hops))
			for i, h := range hops {
				path[i] = asn.ASN(h)
			}
			u := &bgp.Update{
				ASPath:    bgp.SequencePath(path),
				NextHop:   netip.MustParseAddr("10.0.0.1"),
				Announced: []netip.Prefix{netx.MustPrefix(pfx)},
			}
			if err := speaker.Send(u); err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
		speaker.Close() // CEASE ends collection
	}()

	table := NewTable()
	n, err := collector.Collect(table, 0)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	if n != len(want) {
		t.Fatalf("applied %d updates, want %d", n, len(want))
	}
	for pfx, hops := range want {
		got, ok := table.Routes[netx.MustPrefix(pfx)]
		if !ok {
			t.Fatalf("missing route for %s", pfx)
		}
		if len(got) != len(hops) {
			t.Fatalf("route %s = %v", pfx, got)
		}
		for i, h := range hops {
			if got[i] != asn.ASN(h) {
				t.Fatalf("route %s hop %d = %v, want %d", pfx, i, got[i], h)
			}
		}
	}
}

func TestWithdrawal(t *testing.T) {
	speaker, collector := pipePair(t, cfg(65001+100000, "10.0.0.1"), cfg(6447, "10.0.0.2"))
	defer collector.Close()

	pfx := netx.MustPrefix("192.0.2.0/24")
	go func() {
		speaker.Send(&bgp.Update{
			ASPath:    bgp.SequencePath(bgp.Path{100001, 3356}),
			NextHop:   netip.MustParseAddr("10.0.0.1"),
			Announced: []netip.Prefix{pfx},
		})
		speaker.Send(&bgp.Update{Withdrawn: []netip.Prefix{pfx}})
		speaker.Close()
	}()
	table := NewTable()
	if _, err := collector.Collect(table, 0); err != nil {
		t.Fatalf("collect: %v", err)
	}
	if _, ok := table.Routes[pfx]; ok {
		t.Error("withdrawn route still present")
	}
}

func TestHoldTimerExpiry(t *testing.T) {
	speaker, collector := pipePair(t,
		Config{AS: 100001, BGPID: netip.MustParseAddr("10.0.0.1"), HoldTime: 300 * time.Millisecond},
		Config{AS: 6447, BGPID: netip.MustParseAddr("10.0.0.2"), HoldTime: 300 * time.Millisecond},
	)
	defer speaker.Close()
	defer collector.Close()

	// The speaker goes silent: the collector's hold timer must fire.
	_, err := collector.Recv()
	var notif *bgp.Notification
	if !errors.As(err, &notif) || notif.Code != bgp.NotifHoldTimerExpired {
		t.Fatalf("err = %v, want hold timer expiry", err)
	}
}

func TestKeepalivesPreventExpiry(t *testing.T) {
	speaker, collector := pipePair(t,
		Config{AS: 100001, BGPID: netip.MustParseAddr("10.0.0.1"), HoldTime: 400 * time.Millisecond},
		Config{AS: 6447, BGPID: netip.MustParseAddr("10.0.0.2"), HoldTime: 400 * time.Millisecond},
	)
	defer collector.Close()
	speaker.StartKeepalives(100 * time.Millisecond)

	// After >2 hold periods of silence-except-keepalives, send one update:
	// it must arrive without any expiry.
	go func() {
		time.Sleep(900 * time.Millisecond)
		speaker.Send(&bgp.Update{
			ASPath:    bgp.SequencePath(bgp.Path{100001}),
			NextHop:   netip.MustParseAddr("10.0.0.1"),
			Announced: []netip.Prefix{netx.MustPrefix("192.0.2.0/24")},
		})
		speaker.Close()
	}()
	u, err := collector.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if len(u.Announced) != 1 {
		t.Fatalf("update = %+v", u)
	}
}

func TestGarbageTriggersNotification(t *testing.T) {
	c1, c2 := net.Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := Establish(c2, cfg(6447, "10.0.0.2"))
		done <- err
	}()
	// Send garbage instead of an OPEN.
	junk := make([]byte, 19)
	c1.Write(junk)
	err := <-done
	var notif *bgp.Notification
	if !errors.As(err, &notif) || notif.Code != bgp.NotifMessageHeaderError {
		t.Fatalf("err = %v, want header-error notification", err)
	}
	c1.Close()
}

func TestCloseIdempotent(t *testing.T) {
	speaker, collector := pipePair(t, cfg(100001, "10.0.0.1"), cfg(6447, "10.0.0.2"))
	speaker.StartKeepalives(50 * time.Millisecond)
	if err := speaker.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := speaker.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	collector.Close()
}
