package collector

import (
	"errors"
	"io"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"countryrank/internal/asn"
	"countryrank/internal/bgp"
	"countryrank/internal/bgpsession"
	"countryrank/internal/obs"
)

var (
	mSessions = obs.NewCounter("countryrank_collector_sessions_total",
		"BGP sessions established by the collector")
	mHandshakeFailures = obs.NewCounter("countryrank_collector_handshake_failures_total",
		"inbound connections that failed the OPEN handshake")
	mDropped = obs.NewCounter("countryrank_collector_sessions_dropped_total",
		"sessions that ended on a transport or protocol error")
	mTakeovers = obs.NewCounter("countryrank_collector_takeovers_total",
		"stale sessions evicted by a reconnecting peer")
	mResumed = obs.NewCounter("countryrank_collector_resumed_sessions_total",
		"sessions resumed from a nonzero applied count")
	mApplied = obs.NewCounter("countryrank_collector_updates_applied_total",
		"UPDATE messages applied to peer tables")
	mActive = obs.NewGauge("countryrank_collector_active_sessions",
		"sessions currently established")
)

// Config parameterizes the collector's BGP speaker identity.
type Config struct {
	AS    asn.ASN
	BGPID netip.Addr
	// HoldTime and HandshakeTimeout follow bgpsession defaults when zero.
	HoldTime         time.Duration
	HandshakeTimeout time.Duration
}

// PeerKey identifies a vantage point across reconnects: the AS and BGP
// identifier from its OPEN. Per-peer state — the table and the applied
// count the resume protocol reports — is keyed by it, so a reconnecting
// peer lands back on its own table.
type PeerKey struct {
	AS    asn.ASN
	BGPID netip.Addr
}

// peerState is the durable per-peer record. run serializes sessions of the
// same peer: a reconnect evicts the stale session, then waits on run until
// the old handler has unwound before touching the table.
type peerState struct {
	run      sync.Mutex
	cur      *bgpsession.Session // guarded by Collector.mu
	table    *bgpsession.Table   // guarded by run
	applied  int64               // guarded by run
	complete bool                // End-of-RIB seen; guarded by run
}

// Stats is a point-in-time snapshot of one collector's counters (the obs
// metrics aggregate across all collectors in the process).
type Stats struct {
	Sessions          int64
	HandshakeFailures int64
	Dropped           int64
	Takeovers         int64
	ResumedSessions   int64
	UpdatesApplied    int64
}

// Collector is a passive BGP speaker accepting many concurrent VP sessions.
// Each accepted connection is supervised in its own goroutine: a session
// failure is counted and its peer state retained for resume, never fatal to
// the collector as a whole.
type Collector struct {
	ln  net.Listener
	cfg Config

	mu     sync.Mutex
	states map[PeerKey]*peerState

	wg sync.WaitGroup

	nSessions, nHandshakeFail, nDropped, nTakeovers, nResumed, nApplied atomic.Int64
}

// Serve starts accepting sessions on ln and returns immediately. Close
// stops the accept loop, tears down live sessions, and waits for handlers.
func Serve(ln net.Listener, cfg Config) *Collector {
	c := &Collector{ln: ln, cfg: cfg, states: map[PeerKey]*peerState{}}
	c.wg.Add(1)
	go c.acceptLoop()
	return c
}

// Addr returns the listener's address, for feeders to dial.
func (c *Collector) Addr() net.Addr { return c.ln.Addr() }

func (c *Collector) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go c.handle(conn)
	}
}

func (c *Collector) handle(conn net.Conn) {
	defer c.wg.Done()
	sess, err := bgpsession.Establish(conn, bgpsession.Config{
		AS: c.cfg.AS, BGPID: c.cfg.BGPID,
		HoldTime: c.cfg.HoldTime, HandshakeTimeout: c.cfg.HandshakeTimeout,
	})
	if err != nil {
		mHandshakeFailures.Inc()
		c.nHandshakeFail.Add(1)
		return
	}
	mSessions.Inc()
	c.nSessions.Add(1)
	key := PeerKey{AS: sess.Peer.AS, BGPID: sess.Peer.BGPID}

	c.mu.Lock()
	st := c.states[key]
	if st == nil {
		st = &peerState{table: bgpsession.NewTable()}
		c.states[key] = st
	}
	old := st.cur
	st.cur = sess
	c.mu.Unlock()
	if old != nil {
		// Supervision: a reconnecting peer evicts its stale session rather
		// than waiting for the hold timer to reap it. Closing old unblocks
		// its handler's Recv, which releases st.run below.
		mTakeovers.Inc()
		c.nTakeovers.Add(1)
		old.Close()
	}

	mActive.Add(1)
	defer mActive.Add(-1)
	defer func() {
		c.mu.Lock()
		if st.cur == sess {
			st.cur = nil
		}
		c.mu.Unlock()
		sess.Close()
	}()

	st.run.Lock()
	defer st.run.Unlock()

	if st.applied > 0 {
		mResumed.Inc()
		c.nResumed.Add(1)
	}
	if err := sess.Send(markerUpdate(st.applied)); err != nil {
		mDropped.Inc()
		c.nDropped.Add(1)
		return
	}
	for {
		u, err := sess.Recv()
		if err != nil {
			if !cleanEnd(err) {
				mDropped.Inc()
				c.nDropped.Add(1)
			}
			return
		}
		if isEndOfRIB(u) {
			st.complete = true
			// Acknowledge with the final applied count; the feeder decides
			// success by comparing it against its full table. Keep receiving
			// so the peer's CEASE is consumed as a clean end.
			if err := sess.Send(markerUpdate(st.applied)); err != nil {
				mDropped.Inc()
				c.nDropped.Add(1)
				return
			}
			continue
		}
		st.table.Apply(u)
		st.applied++
		mApplied.Inc()
		c.nApplied.Add(1)
	}
}

// cleanEnd reports whether a Recv error is an orderly session end: the peer
// hung up (EOF) or sent CEASE. Everything else — resets, hold expiry,
// protocol garbage — counts as a drop.
func cleanEnd(err error) bool {
	if errors.Is(err, io.EOF) {
		return true
	}
	var notif *bgp.Notification
	return errors.As(err, &notif) && notif.Code == bgp.NotifCease
}

// Stats snapshots this collector's counters.
func (c *Collector) Stats() Stats {
	return Stats{
		Sessions:          c.nSessions.Load(),
		HandshakeFailures: c.nHandshakeFail.Load(),
		Dropped:           c.nDropped.Load(),
		Takeovers:         c.nTakeovers.Load(),
		ResumedSessions:   c.nResumed.Load(),
		UpdatesApplied:    c.nApplied.Load(),
	}
}

// Tables returns each peer's table together with whether its feed reached
// End-of-RIB. Tables are live references; call after Close (or once a peer
// is complete) to read them without racing a session handler.
func (c *Collector) Tables() map[PeerKey]*bgpsession.Table {
	c.mu.Lock()
	states := make(map[PeerKey]*peerState, len(c.states))
	for k, st := range c.states {
		states[k] = st
	}
	c.mu.Unlock()
	out := make(map[PeerKey]*bgpsession.Table, len(states))
	for k, st := range states {
		st.run.Lock()
		out[k] = st.table
		st.run.Unlock()
	}
	return out
}

// Complete reports whether the peer delivered its full table (End-of-RIB
// seen), and how many updates were applied for it.
func (c *Collector) Complete(key PeerKey) (int64, bool) {
	c.mu.Lock()
	st := c.states[key]
	c.mu.Unlock()
	if st == nil {
		return 0, false
	}
	st.run.Lock()
	defer st.run.Unlock()
	return st.applied, st.complete
}

// Close stops accepting, closes live sessions, and waits for all session
// handlers to unwind.
func (c *Collector) Close() {
	c.ln.Close()
	c.mu.Lock()
	var live []*bgpsession.Session
	for _, st := range c.states {
		if st.cur != nil {
			live = append(live, st.cur)
		}
	}
	c.mu.Unlock()
	for _, s := range live {
		s.Close()
	}
	c.wg.Wait()
}
