package collector

import (
	"context"
	"math/rand"
	"net"
	"net/netip"
	"runtime"
	"testing"
	"time"

	"countryrank/internal/asn"
	"countryrank/internal/bgp"
	"countryrank/internal/bgpsession"
	"countryrank/internal/faultnet"
)

func TestMarkerRoundTrip(t *testing.T) {
	for _, n := range []int64{0, 1, 7, 123456} {
		raw, err := markerUpdate(n).Marshal()
		if err != nil {
			t.Fatalf("marshal marker(%d): %v", n, err)
		}
		u, err := bgp.UnmarshalUpdate(raw)
		if err != nil {
			t.Fatalf("unmarshal marker(%d): %v", n, err)
		}
		got, ok := markerCount(u)
		if !ok || got != n {
			t.Fatalf("markerCount = %d, %v; want %d, true", got, ok, n)
		}
	}
	// Real updates and End-of-RIB must not read as markers.
	real := &bgp.Update{
		ASPath:    bgp.SequencePath(bgp.Path{65001}),
		NextHop:   netip.AddrFrom4([4]byte{10, 0, 0, 1}),
		Announced: []netip.Prefix{netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 1, 0, 0}), 16)},
	}
	if _, ok := markerCount(real); ok {
		t.Fatal("real update decoded as marker")
	}
	if _, ok := markerCount(&bgp.Update{}); ok {
		t.Fatal("end-of-RIB decoded as marker")
	}
	if !isEndOfRIB(&bgp.Update{}) || isEndOfRIB(real) {
		t.Fatal("end-of-RIB detection wrong")
	}
}

func TestBackoffDeterministicCapped(t *testing.T) {
	cfg := FeederConfig{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond}
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for attempt := 1; attempt <= 10; attempt++ {
		da := backoff(a, cfg, attempt)
		db := backoff(b, cfg, attempt)
		if da != db {
			t.Fatalf("attempt %d: backoff not deterministic: %v vs %v", attempt, da, db)
		}
		if da < cfg.BaseBackoff/2 || da >= cfg.MaxBackoff*3/2 {
			t.Fatalf("attempt %d: backoff %v outside [base/2, 1.5*max)", attempt, da)
		}
	}
}

// synthUpdates builds n single-prefix announcements, the shape FeedVP emits.
func synthUpdates(n int) []*bgp.Update {
	out := make([]*bgp.Update, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, &bgp.Update{
			ASPath:  bgp.SequencePath(bgp.Path{65000 + asn.ASN(i%7), 64512}),
			NextHop: netip.AddrFrom4([4]byte{10, 0, 0, 1}),
			Announced: []netip.Prefix{
				netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24),
			},
		})
	}
	return out
}

func newTestCollector(t *testing.T) *Collector {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return Serve(ln, Config{
		AS: 6447, BGPID: netip.AddrFrom4([4]byte{10, 255, 0, 1}),
		HoldTime: 10 * time.Second, HandshakeTimeout: 5 * time.Second,
	})
}

func TestFeedHappyPath(t *testing.T) {
	before := runtime.NumGoroutine()
	c := newTestCollector(t)
	updates := synthUpdates(40)
	key := PeerKey{AS: 65001, BGPID: netip.AddrFrom4([4]byte{10, 9, 0, 1})}

	stats, err := Feed(context.Background(), FeederConfig{
		Addr: c.Addr().String(), AS: key.AS, BGPID: key.BGPID,
		HoldTime: 10 * time.Second,
	}, updates)
	if err != nil {
		t.Fatalf("feed: %v", err)
	}
	if stats.Attempts != 1 || stats.Reconnects != 0 || stats.Sent != int64(len(updates)) {
		t.Fatalf("stats = %+v, want 1 attempt, 0 reconnects, %d sent", stats, len(updates))
	}
	applied, complete := c.Complete(key)
	if !complete || applied != int64(len(updates)) {
		t.Fatalf("Complete = %d, %v; want %d, true", applied, complete, len(updates))
	}
	table := c.Tables()[key]
	if table == nil || len(table.Routes) != len(updates) {
		t.Fatalf("table has %d routes, want %d", len(table.Routes), len(updates))
	}
	c.Close()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d -> %d", before, runtime.NumGoroutine())
}

func TestFeedResumesAfterReset(t *testing.T) {
	c := newTestCollector(t)
	defer c.Close()
	updates := synthUpdates(60)
	key := PeerKey{AS: 65002, BGPID: netip.AddrFrom4([4]byte{10, 9, 0, 2})}

	// The first connection dies mid-feed; later ones are clean. The resume
	// protocol must skip whatever the collector already applied.
	dials := 0
	dial := func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", c.Addr().String())
		if err != nil {
			return nil, err
		}
		dials++
		if dials == 1 {
			return faultnet.Wrap(conn, faultnet.Config{
				Schedule: []faultnet.Fault{{AtByte: 700, Kind: faultnet.Reset}},
			}), nil
		}
		return conn, nil
	}

	stats, err := Feed(context.Background(), FeederConfig{
		Dial: dial, AS: key.AS, BGPID: key.BGPID,
		HoldTime: 10 * time.Second, BaseBackoff: 5 * time.Millisecond,
	}, updates)
	if err != nil {
		t.Fatalf("feed: %v", err)
	}
	if stats.Reconnects == 0 {
		t.Fatal("reset transport produced no reconnects")
	}
	if stats.Resumed == 0 {
		t.Fatal("reconnect re-sent the full table (resumed = 0)")
	}
	if stats.Sent >= int64(len(updates))*2 {
		t.Fatalf("sent %d updates for a %d-entry table: resume is not trimming",
			stats.Sent, len(updates))
	}
	applied, complete := c.Complete(key)
	if !complete || applied != int64(len(updates)) {
		t.Fatalf("Complete = %d, %v; want %d, true", applied, complete, len(updates))
	}
}

func TestFeedRetriesExhausted(t *testing.T) {
	// A listener that is immediately closed: every dial is refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	stats, err := Feed(context.Background(), FeederConfig{
		Addr: addr, AS: 65003, BGPID: netip.AddrFrom4([4]byte{10, 9, 0, 3}),
		MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
	}, synthUpdates(1))
	if err == nil {
		t.Fatal("feed to a dead collector succeeded")
	}
	if stats.Attempts != 3 || stats.Reconnects != 2 {
		t.Fatalf("stats = %+v, want exactly 3 attempts", stats)
	}
}

func TestFeedContextCancelled(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = Feed(ctx, FeederConfig{
		Addr: addr, AS: 65004, BGPID: netip.AddrFrom4([4]byte{10, 9, 0, 4}),
		MaxAttempts: 100, BaseBackoff: 10 * time.Second, MaxBackoff: 10 * time.Second,
	}, synthUpdates(1))
	if err == nil {
		t.Fatal("cancelled feed succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt", elapsed)
	}
}

func TestStaleSessionEvicted(t *testing.T) {
	c := newTestCollector(t)
	defer c.Close()
	key := PeerKey{AS: 65005, BGPID: netip.AddrFrom4([4]byte{10, 9, 0, 5})}

	// A zombie session: established, then silent. It holds the peer state
	// until the reconnect evicts it.
	conn, err := net.Dial("tcp", c.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	zombie, err := bgpsession.Establish(conn, bgpsession.Config{
		AS: key.AS, BGPID: key.BGPID, HoldTime: 30 * time.Second,
	})
	if err != nil {
		t.Fatalf("zombie establish: %v", err)
	}
	defer zombie.Close()
	zombie.StartKeepalives(time.Second)

	done := make(chan error, 1)
	go func() {
		_, err := Feed(context.Background(), FeederConfig{
			Addr: c.Addr().String(), AS: key.AS, BGPID: key.BGPID,
			HoldTime: 10 * time.Second, MaxAttempts: 2, BaseBackoff: 5 * time.Millisecond,
		}, synthUpdates(10))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("feed behind a zombie session: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("feed blocked behind the zombie session: no eviction")
	}
	if got := c.Stats().Takeovers; got < 1 {
		t.Fatalf("takeovers = %d, want >= 1", got)
	}
	applied, complete := c.Complete(key)
	if !complete || applied != 10 {
		t.Fatalf("Complete = %d, %v; want 10, true", applied, complete)
	}
}
