package collector

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"time"

	"countryrank/internal/asn"
	"countryrank/internal/bgp"
	"countryrank/internal/bgpsession"
	"countryrank/internal/obs"
)

var (
	mFeederRetries = obs.NewCounter("countryrank_collector_feeder_retries_total",
		"feeder reconnect attempts after a failed feed")
	mFeederResumed = obs.NewCounter("countryrank_collector_feeder_resumed_updates_total",
		"updates skipped on reconnect because the collector had them applied")
	mFeederSent = obs.NewCounter("countryrank_collector_feeder_sent_total",
		"UPDATE messages sent by feeders")
)

// FeederConfig parameterizes one vantage point's resilient feed.
type FeederConfig struct {
	// Addr is the collector's TCP address; ignored when Dial is set.
	Addr string
	// Dial overrides the transport, e.g. to wrap the connection in a fault
	// injector. Each attempt dials afresh.
	Dial func(ctx context.Context) (net.Conn, error)

	AS    asn.ASN
	BGPID netip.Addr
	// HoldTime and HandshakeTimeout follow bgpsession defaults when zero.
	HoldTime         time.Duration
	HandshakeTimeout time.Duration

	// MaxAttempts caps connection attempts (default 8). The feed fails
	// loudly once the cap is hit; it never retries forever.
	MaxAttempts int
	// BaseBackoff is the first retry delay (default 50ms); each retry
	// doubles it up to MaxBackoff (default 2s), then jitters the result
	// to 50–150% so reconnect storms decorrelate.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed makes the jitter deterministic for tests.
	Seed int64
}

func (cfg FeederConfig) withDefaults() FeederConfig {
	if cfg.Dial == nil {
		addr := cfg.Addr
		cfg.Dial = func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	return cfg
}

// FeedStats accounts one feed's work across all attempts.
type FeedStats struct {
	// Attempts is the number of connections dialed; Reconnects is
	// Attempts-1 for a feed that eventually succeeded.
	Attempts   int
	Reconnects int
	// Resumed is the total updates skipped thanks to the resume protocol;
	// Sent is the total actually transmitted (including re-sends).
	Resumed int64
	Sent    int64
}

// Feed streams updates to the collector, surviving transport faults: on any
// error before the collector acknowledges the complete table, it backs off
// (jittered exponential, capped) and reconnects, resuming from the
// collector's applied count so the table is never re-sent from scratch.
// It returns once the collector's acknowledgement covers every update, the
// context is cancelled, or MaxAttempts is exhausted.
func Feed(ctx context.Context, cfg FeederConfig, updates []*bgp.Update) (FeedStats, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var stats FeedStats
	var lastErr error
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			stats.Reconnects++
			mFeederRetries.Inc()
			if err := sleepCtx(ctx, backoff(rng, cfg, attempt)); err != nil {
				return stats, err
			}
		}
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		stats.Attempts++
		if err := feedOnce(ctx, cfg, updates, &stats); err != nil {
			lastErr = err
			continue
		}
		return stats, nil
	}
	return stats, fmt.Errorf("collector: feed failed after %d attempts: %w",
		cfg.MaxAttempts, lastErr)
}

// feedOnce runs one connection's worth of the protocol: handshake, resume
// marker, update stream, End-of-RIB, acknowledgement.
func feedOnce(ctx context.Context, cfg FeederConfig, updates []*bgp.Update, stats *FeedStats) error {
	conn, err := cfg.Dial(ctx)
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	sess, err := bgpsession.Establish(conn, bgpsession.Config{
		AS: cfg.AS, BGPID: cfg.BGPID,
		HoldTime: cfg.HoldTime, HandshakeTimeout: cfg.HandshakeTimeout,
	})
	if err != nil {
		conn.Close()
		return fmt.Errorf("establish: %w", err)
	}
	// Cancellation must unblock Send/Recv mid-feed, so a watcher closes the
	// session when the context dies.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			sess.Close()
		case <-watchDone:
		}
	}()
	acked := false
	defer func() {
		if !acked {
			sess.Close()
		}
	}()

	u, err := sess.Recv()
	if err != nil {
		return fmt.Errorf("resume marker: %w", err)
	}
	applied, ok := markerCount(u)
	if !ok {
		return fmt.Errorf("collector spoke first but not a marker")
	}
	if applied > int64(len(updates)) {
		return fmt.Errorf("collector claims %d applied of %d", applied, len(updates))
	}
	if applied > 0 {
		stats.Resumed += applied
		mFeederResumed.Add(applied)
	}
	for _, u := range updates[applied:] {
		if err := sess.Send(u); err != nil {
			return fmt.Errorf("send: %w", err)
		}
		stats.Sent++
		mFeederSent.Inc()
	}
	// End-of-RIB, then wait for the collector to acknowledge the count.
	if err := sess.Send(&bgp.Update{}); err != nil {
		return fmt.Errorf("end-of-rib: %w", err)
	}
	ack, err := sess.Recv()
	if err != nil {
		return fmt.Errorf("ack: %w", err)
	}
	got, ok := markerCount(ack)
	if !ok {
		return fmt.Errorf("ack was not a marker")
	}
	if got != int64(len(updates)) {
		return fmt.Errorf("collector acked %d of %d updates", got, len(updates))
	}
	acked = true
	return sess.Close()
}

// backoff computes the delay before the attempt-th retry: exponential from
// BaseBackoff, capped at MaxBackoff, jittered to 50–150%.
func backoff(rng *rand.Rand, cfg FeederConfig, attempt int) time.Duration {
	d := cfg.BaseBackoff
	for i := 1; i < attempt && d < cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > cfg.MaxBackoff {
		d = cfg.MaxBackoff
	}
	return d/2 + time.Duration(rng.Int63n(int64(d)))
}

// sleepCtx sleeps for d or until the context is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
