// Package collector implements a fault-tolerant live collection plane: a
// passive route collector that accepts many concurrent vantage-point
// sessions with per-session supervision, and a VP-side feeder that survives
// transport faults by reconnecting with jittered exponential backoff and
// resuming from the collector's last applied update instead of replaying
// the full table.
//
// Resume protocol, layered on plain BGP UPDATEs so the wire stays RFC 4271:
//
//  1. After the OPEN/KEEPALIVE handshake the collector sends a marker
//     UPDATE announcing a reserved /32 whose AS path encodes how many
//     updates it has already applied for this peer (0 on first contact).
//  2. The feeder skips that many updates and streams the rest.
//  3. The feeder signals End-of-RIB with an empty UPDATE (RFC 4724 §2).
//  4. The collector acknowledges with a second marker carrying its final
//     applied count; the feeder succeeds only when that count matches the
//     full table, otherwise it backs off and reconnects.
//
// Marker updates are control plane only: neither side applies them to a
// routing table, and the reserved prefix is a host route in TEST-NET-1
// (RFC 5737), which the topology generator never carves.
package collector

import (
	"net/netip"

	"countryrank/internal/asn"
	"countryrank/internal/bgp"
)

// markerPrefix is the reserved control-plane prefix. Detection is by exact
// prefix equality (address and bits), so the /32 cannot collide with the
// /16../24 prefixes real feeds announce.
var markerPrefix = netip.PrefixFrom(netip.AddrFrom4([4]byte{192, 0, 2, 77}), 32)

// markerNextHop satisfies the codec's "IPv4 NLRI requires a next hop" rule.
var markerNextHop = netip.AddrFrom4([4]byte{192, 0, 2, 1})

// markerUpdate encodes an applied-update count as a control UPDATE.
func markerUpdate(applied int64) *bgp.Update {
	return &bgp.Update{
		ASPath:    bgp.SequencePath(bgp.Path{asn.ASN(applied)}),
		NextHop:   markerNextHop,
		Announced: []netip.Prefix{markerPrefix},
	}
}

// markerCount decodes a marker UPDATE, returning the applied count it
// carries and whether u is a marker at all.
func markerCount(u *bgp.Update) (int64, bool) {
	if u == nil || len(u.Announced) != 1 || u.Announced[0] != markerPrefix ||
		len(u.Withdrawn) != 0 || len(u.V6Announced) != 0 || len(u.V6Withdrawn) != 0 {
		return 0, false
	}
	path := u.ASPath.Flatten()
	if len(path) != 1 {
		return 0, false
	}
	return int64(path[0]), true
}

// isEndOfRIB reports whether u is the End-of-RIB signal: an UPDATE with no
// reachability in either address family (RFC 4724 §2).
func isEndOfRIB(u *bgp.Update) bool {
	return len(u.Announced) == 0 && len(u.Withdrawn) == 0 &&
		len(u.V6Announced) == 0 && len(u.V6Withdrawn) == 0
}
