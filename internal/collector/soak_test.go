package collector

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"countryrank/internal/bgpsession"
	"countryrank/internal/faultnet"
	"countryrank/internal/obs"
	"countryrank/internal/routing"
	"countryrank/internal/topology"
)

// TestChaosSoak is the end-to-end fault drill: several vantage points feed a
// live collector over transports that reset, truncate, fragment, and delay,
// and the collection rebuilt from the collector's tables must be
// byte-identical to a fault-free run — with the fault handling provably
// exercised (reconnects and resumes observed). Run it under -race; the
// collector's supervision and the feeders' retries are all concurrent.
func TestChaosSoak(t *testing.T) {
	// Sample the collector counters while the soak runs, so the assertions
	// below can check fault handling *over time* (a timeline), not just at
	// exit — and that /debug/timeline actually serves that history.
	tl := obs.NewTimeline(obs.Default, 2*time.Millisecond, 8192,
		"countryrank_collector_updates_applied_total",
		"countryrank_collector_feeder_retries_total",
		"countryrank_collector_resumed_sessions_total",
		"countryrank_collector_sessions_total")
	tl.Start()
	obs.SetDefaultTimeline(tl)
	defer obs.SetDefaultTimeline(nil)

	w := topology.Build(topology.Config{Seed: 5, StubScale: 0.1, VPScale: 0.1})
	col := routing.BuildCollection(w, routing.BuildOptions{
		LoopFrac: -1, PoisonFrac: -1, UnallocFrac: -1, UnstableFrac: -1,
	})

	// Pick VPs with enough routes that the early faults land mid-feed, but
	// few enough that the soak stays fast.
	counts := map[int32]int{}
	for _, r := range col.Records {
		counts[r.VP]++
	}
	var candidates []int32
	for v, n := range counts {
		if n >= 30 && n <= 500 {
			candidates = append(candidates, v)
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	if len(candidates) > 4 {
		candidates = candidates[:4]
	}
	if len(candidates) < 2 {
		t.Skip("world too small for the soak")
	}

	// The fault-free reference: apply each VP's exact update sequence to a
	// fresh table, no network involved.
	ref := map[int32]*bgpsession.Table{}
	for _, v := range candidates {
		tab := bgpsession.NewTable()
		for _, u := range routing.UpdatesForVP(col, v) {
			tab.Apply(u)
		}
		ref[v] = tab
	}
	want := routing.CollectionFromTables(col, ref)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := Serve(ln, Config{
		AS: 6447, BGPID: netip.AddrFrom4([4]byte{10, 255, 0, 1}),
		HoldTime: 30 * time.Second, HandshakeTimeout: 10 * time.Second,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// chaosDial degrades over attempts: a mid-feed reset, then a truncation
	// that lies about delivery, then a merely hostile transport (fragmented,
	// delayed writes), then clean. No silent corruption: corrupted bytes
	// would break the byte-identical guarantee rather than test it — that
	// failure mode belongs to the MRT resync path, not the session layer.
	chaosDial := func(vpIdx int32) func(ctx context.Context) (net.Conn, error) {
		attempt := 0
		return func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			conn, err := d.DialContext(ctx, "tcp", ln.Addr().String())
			if err != nil {
				return nil, err
			}
			attempt++
			switch attempt {
			case 1:
				return faultnet.Wrap(conn, faultnet.Config{
					Seed:     int64(vpIdx),
					Schedule: []faultnet.Fault{{AtByte: 900, Kind: faultnet.Reset}},
				}), nil
			case 2:
				return faultnet.Wrap(conn, faultnet.Config{
					Seed:     int64(vpIdx) + 1,
					MaxWrite: 128,
					Schedule: []faultnet.Fault{{AtByte: 2500, Kind: faultnet.Truncate}},
				}), nil
			default:
				return faultnet.Wrap(conn, faultnet.Config{
					Seed:     int64(vpIdx) + 2,
					MaxWrite: 256,
					Latency:  20 * time.Microsecond,
					Jitter:   10 * time.Microsecond,
				}), nil
			}
		}
	}

	keyOf := func(i int, v int32) PeerKey {
		return PeerKey{
			AS:    w.VPs.VP(int(v)).AS,
			BGPID: netip.AddrFrom4([4]byte{10, 9, byte(i >> 8), byte(i)}),
		}
	}

	var (
		mu         sync.Mutex
		reconnects int
		resumed    int64
		wg         sync.WaitGroup
	)
	for i, v := range candidates {
		i, v := i, v
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := keyOf(i, v)
			stats, err := Feed(ctx, FeederConfig{
				Dial: chaosDial(v), AS: key.AS, BGPID: key.BGPID,
				HoldTime: 30 * time.Second, HandshakeTimeout: 10 * time.Second,
				MaxAttempts: 10, BaseBackoff: 5 * time.Millisecond,
				MaxBackoff: 50 * time.Millisecond, Seed: int64(v),
			}, routing.UpdatesForVP(col, v))
			if err != nil {
				t.Errorf("VP %d: feed: %v", v, err)
				return
			}
			mu.Lock()
			reconnects += stats.Reconnects
			resumed += stats.Resumed
			mu.Unlock()
		}()
	}
	wg.Wait()
	c.Close()
	if t.Failed() {
		return
	}

	// The faults must actually have bitten: a soak that never reconnects
	// proves nothing.
	if reconnects == 0 {
		t.Fatal("chaos soak saw zero reconnects")
	}
	if resumed == 0 {
		t.Fatal("chaos soak never resumed a partial feed")
	}

	// Every VP's feed must be complete at the collector...
	tables := c.Tables()
	got := map[int32]*bgpsession.Table{}
	for i, v := range candidates {
		key := keyOf(i, v)
		applied, complete := c.Complete(key)
		wantN := int64(counts[v])
		if !complete || applied != wantN {
			t.Fatalf("VP %d: applied %d, complete %v; want %d, true", v, applied, complete, wantN)
		}
		got[v] = tables[key]
	}

	// ...and the rebuilt collection byte-identical to the fault-free one.
	live := routing.CollectionFromTables(col, got)
	if !reflect.DeepEqual(live.Prefixes, want.Prefixes) ||
		!reflect.DeepEqual(live.Records, want.Records) ||
		!reflect.DeepEqual(live.Paths, want.Paths) ||
		!reflect.DeepEqual(live.Origin, want.Origin) ||
		!reflect.DeepEqual(live.Stable, want.Stable) {
		t.Fatalf("collection diverged under faults: %d/%d records, %d/%d prefixes, %d/%d paths",
			len(live.Records), len(want.Records),
			len(live.Prefixes), len(want.Prefixes),
			len(live.Paths), len(want.Paths))
	}

	st := c.Stats()
	t.Logf("soak: %d VPs, %d sessions, %d dropped, %d resumed sessions, %d reconnects, %d updates resumed, %d applied",
		len(candidates), st.Sessions, st.Dropped, st.ResumedSessions, reconnects, resumed, st.UpdatesApplied)

	// The timeline must show the reconnect/resume counters *moving during*
	// the soak: a final scrape proves totals, the series proves when.
	tl.Stop()
	srv := httptest.NewServer(obs.NewDebugMux())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/timeline")
	if err != nil {
		t.Fatalf("/debug/timeline: %v", err)
	}
	defer resp.Body.Close()
	var data obs.TimelineData
	if err := json.NewDecoder(resp.Body).Decode(&data); err != nil {
		t.Fatalf("/debug/timeline decode: %v", err)
	}
	if len(data.OffsetsMS) < 2 {
		t.Fatalf("/debug/timeline served %d samples, want a timeline", len(data.OffsetsMS))
	}
	// Counters are process-global, so assert on deltas within the window:
	// the soak's own applied updates, retries, and resumed sessions must
	// all have risen between the baseline sample and the final one.
	for _, name := range []string{
		"countryrank_collector_updates_applied_total",
		"countryrank_collector_feeder_retries_total",
		"countryrank_collector_resumed_sessions_total",
	} {
		series, ok := data.Series[name]
		if !ok || len(series) != len(data.OffsetsMS) {
			t.Fatalf("/debug/timeline series %s missing or misaligned", name)
		}
		if delta := series[len(series)-1] - series[0]; delta <= 0 {
			t.Errorf("timeline shows no movement in %s during the soak (delta %v)", name, delta)
		}
	}
	// And the movement must be gradual, not a single end-of-run jump: the
	// applied counter has to be strictly between its endpoints somewhere.
	applied := data.Series["countryrank_collector_updates_applied_total"]
	first, last := applied[0], applied[len(applied)-1]
	gradual := false
	for _, v := range applied {
		if v > first && v < last {
			gradual = true
			break
		}
	}
	if !gradual {
		t.Errorf("applied-updates timeline jumped %v -> %v with no intermediate samples", first, last)
	}
	if sp := tl.Sparkline(); !strings.Contains(sp, "countryrank_collector_updates_applied_total") {
		t.Errorf("sparkline summary missing applied series:\n%s", sp)
	}
}
