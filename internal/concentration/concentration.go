// Package concentration derives telecom-market concentration statistics
// from the sanitized path data — the "network concentration" analysis the
// paper's conclusion names as a use of the rankings. Market share here is
// last-hop transit share: the fraction of a country's address space whose
// observed paths enter the origin AS through a given provider.
package concentration

import (
	"sort"

	"countryrank/internal/asn"
	"countryrank/internal/sanitize"
)

// Share is one provider's slice of a market.
type Share struct {
	ASN   asn.ASN
	Share float64
}

// Market is a country's transit-market structure.
type Market struct {
	Shares []Share // descending
	// HHI is the Herfindahl–Hirschman index in the economists' 0–10000
	// scale; above 2500 is conventionally "highly concentrated".
	HHI float64
	// CR1 and CR3 are the top-1 and top-3 concentration ratios in [0, 1].
	CR1, CR3 float64
	// Addresses is the weighted market size.
	Addresses uint64
}

// Compute measures the market over the given accepted-record positions
// (typically a national view). For every (prefix, provider) pair observed —
// provider being the AS adjacent to the origin on the path — the prefix's
// addresses count toward the provider, split across the distinct providers
// observed for that prefix (multihoming splits the customer's weight).
func Compute(ds *sanitize.Dataset, recs []int32) Market {
	// Distinct providers observed per prefix.
	providers := map[int32]map[asn.ASN]struct{}{}
	visit := func(i int) {
		_, pfxIdx, path := ds.Record(i)
		if len(path) < 2 {
			return // the origin is the VP itself: no transit observed
		}
		prov := path[len(path)-2]
		m := providers[pfxIdx]
		if m == nil {
			m = map[asn.ASN]struct{}{}
			providers[pfxIdx] = m
		}
		m[prov] = struct{}{}
	}
	if recs == nil {
		for i := 0; i < ds.Len(); i++ {
			visit(i)
		}
	} else {
		for _, i := range recs {
			visit(int(i))
		}
	}

	weights := map[asn.ASN]float64{}
	var total float64
	for pfxIdx, provs := range providers {
		w := float64(ds.Weight[pfxIdx])
		total += w
		per := w / float64(len(provs))
		for p := range provs {
			weights[p] += per
		}
	}

	m := Market{Addresses: uint64(total)}
	if total == 0 {
		return m
	}
	for a, w := range weights {
		m.Shares = append(m.Shares, Share{ASN: a, Share: w / total})
	}
	sort.Slice(m.Shares, func(i, j int) bool {
		if m.Shares[i].Share != m.Shares[j].Share {
			return m.Shares[i].Share > m.Shares[j].Share
		}
		return m.Shares[i].ASN < m.Shares[j].ASN
	})
	for i, s := range m.Shares {
		m.HHI += s.Share * s.Share * 10000
		if i == 0 {
			m.CR1 = s.Share
		}
		if i < 3 {
			m.CR3 += s.Share
		}
	}
	return m
}
