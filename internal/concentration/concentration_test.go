package concentration

import (
	"math"
	"testing"

	"countryrank/internal/countries"
	"countryrank/internal/metrictest"
)

func TestMonopolyMarket(t *testing.T) {
	// One provider (5) carries both prefixes: HHI = 10000, CR1 = 1.
	ds := metrictest.Dataset([]countries.Code{"US"}, []metrictest.Rec{
		{VP: 0, Prefix: "9.0.0.0/24", PrefixCountry: "AU", Path: []uint32{1, 5, 100}},
		{VP: 0, Prefix: "9.1.0.0/24", PrefixCountry: "AU", Path: []uint32{1, 5, 200}},
	})
	m := Compute(ds, nil)
	if math.Abs(m.HHI-10000) > 1e-6 || m.CR1 != 1 || m.CR3 != 1 {
		t.Errorf("monopoly market = %+v", m)
	}
	if len(m.Shares) != 1 || m.Shares[0].ASN != 5 {
		t.Errorf("shares = %+v", m.Shares)
	}
	if m.Addresses != 512 {
		t.Errorf("market size = %d", m.Addresses)
	}
}

func TestSplitMarket(t *testing.T) {
	// Two providers with equal /24 customers: HHI = 5000, CR1 = 0.5.
	ds := metrictest.Dataset([]countries.Code{"US"}, []metrictest.Rec{
		{VP: 0, Prefix: "9.0.0.0/24", PrefixCountry: "AU", Path: []uint32{1, 5, 100}},
		{VP: 0, Prefix: "9.1.0.0/24", PrefixCountry: "AU", Path: []uint32{1, 6, 200}},
	})
	m := Compute(ds, nil)
	if math.Abs(m.HHI-5000) > 1e-6 {
		t.Errorf("HHI = %f", m.HHI)
	}
	if m.CR1 != 0.5 || m.CR3 != 1 {
		t.Errorf("CR1/CR3 = %f/%f", m.CR1, m.CR3)
	}
}

func TestMultihomingSplitsWeight(t *testing.T) {
	// One prefix observed behind two providers: each gets half.
	ds := metrictest.Dataset([]countries.Code{"US", "NL"}, []metrictest.Rec{
		{VP: 0, Prefix: "9.0.0.0/24", PrefixCountry: "AU", Path: []uint32{1, 5, 100}},
		{VP: 1, Prefix: "9.0.0.0/24", PrefixCountry: "AU", Path: []uint32{2, 6, 100}},
	})
	m := Compute(ds, nil)
	if len(m.Shares) != 2 {
		t.Fatalf("shares = %+v", m.Shares)
	}
	for _, s := range m.Shares {
		if math.Abs(s.Share-0.5) > 1e-9 {
			t.Errorf("share = %+v", s)
		}
	}
}

func TestOriginAtVPIgnored(t *testing.T) {
	// A one-hop path (the VP's AS originates the prefix) shows no transit.
	ds := metrictest.Dataset([]countries.Code{"US"}, []metrictest.Rec{
		{VP: 0, Prefix: "9.0.0.0/24", PrefixCountry: "AU", Path: []uint32{100}},
	})
	m := Compute(ds, nil)
	if len(m.Shares) != 0 || m.Addresses != 0 {
		t.Errorf("market = %+v", m)
	}
}

func TestEmptyMarket(t *testing.T) {
	ds := metrictest.Dataset([]countries.Code{"US"}, []metrictest.Rec{
		{VP: 0, Prefix: "9.0.0.0/24", PrefixCountry: "AU", Path: []uint32{1, 5, 100}},
	})
	m := Compute(ds, []int32{})
	if m.HHI != 0 || len(m.Shares) != 0 {
		t.Errorf("empty market = %+v", m)
	}
}
