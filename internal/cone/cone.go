// Package cone computes prefix-level customer cones (§1.1, Figure 1): for
// each sanitized AS path, the segment up to and including the first
// peer↔peer link (or up to the provider side of the first provider→customer
// link) is discarded, and every AS on the remaining provider→customer chain
// absorbs the path's prefix into its cone. An AS's cone score is the number
// of addresses of the distinct prefixes in its cone, so the metric captures
// how much of the considered address space pays the AS — directly or
// through customers of customers — for transit.
package cone

import (
	"slices"
	"sync"

	"countryrank/internal/asn"
	"countryrank/internal/bgp"
	"countryrank/internal/relation"
	"countryrank/internal/sanitize"
	"countryrank/internal/topology"
)

// Scores holds address-weighted cone sizes within one view's scope.
type Scores struct {
	// Addresses[a] is the total address weight of distinct prefixes in a's
	// customer cone, restricted to the view's prefixes.
	Addresses map[asn.ASN]uint64
	// ASes[a] is the number of distinct ASes in a's customer cone
	// (including itself), the unit CAIDA's AS Rank orders by.
	ASes map[asn.ASN]int
	// Total is the address weight of all distinct prefixes in the view:
	// the denominator for Share.
	Total uint64
}

// Share returns a's cone as a fraction of the view's address space.
func (s Scores) Share(a asn.ASN) float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Addresses[a]) / float64(s.Total)
}

// Shares returns every AS's fractional score.
func (s Scores) Shares() map[asn.ASN]float64 {
	out := make(map[asn.ASN]float64, len(s.Addresses))
	for a := range s.Addresses {
		out[a] = s.Share(a)
	}
	return out
}

// scratch holds the dense kernel's reusable pair buffers: cone membership
// is collected as packed (AS id, prefix) and (AS id, member id) pairs, then
// sorted and deduplicated, which replaces the per-AS set maps with two flat
// sorts. Nothing in it escapes Compute.
type scratch struct {
	pairPfx []uint64 // id<<32 | prefix index
	pairAS  []uint64 // id<<32 | member id
	pfxSeen []bool   // per prefix: already counted toward Total
	pfxUsed []int32  // prefixes marked in pfxSeen, for O(touched) reset
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// Starts precomputes, for every accepted record, the index where the
// retained provider→customer chain begins (len(path)-1 when only the
// origin's self-membership survives). The result depends only on (ds, rels)
// — never on the view — so callers that compute cones over many views or
// VP subsets of the same dataset can pay the relationship lookups once and
// pass the result to ComputeFrom.
func Starts(ds *sanitize.Dataset, rels relation.Oracle) []int32 {
	starts := make([]int32, ds.Len())
	for i := range starts {
		_, _, path := ds.Record(i)
		starts[i] = recordStart(path, rels)
	}
	return starts
}

// recordStart resolves one record's retained-chain start (see Starts); a
// negative value means the record contributes nothing.
func recordStart(path bgp.Path, rels relation.Oracle) int32 {
	start := chainStart(path, rels)
	if start < 0 {
		return -1
	}
	// The retained segment must be a pure provider→customer chain down to
	// the origin; if any link breaks (possible with imperfect inferred
	// relationships), the record contributes nothing beyond the origin's
	// self-membership.
	for j := start; j+1 < len(path); j++ {
		if rels.Rel(path[j], path[j+1]) != topology.RelP2C {
			return int32(len(path) - 1)
		}
	}
	return int32(start)
}

// Compute calculates cones over the given accepted-record positions of ds
// (pass nil for all records). rels supplies relationship labels — the
// ground-truth graph or an inferred table.
//
// The dense-id kernel is bit-identical to the retained map-based reference
// (computeMapRef), which the property tests enforce.
func Compute(ds *sanitize.Dataset, recs []int32, rels relation.Oracle) Scores {
	return ComputeFrom(ds, recs, rels, nil)
}

// ComputeFrom is Compute with optionally precomputed chain starts (see
// Starts); pass nil to resolve them on the fly.
func ComputeFrom(ds *sanitize.Dataset, recs []int32, rels relation.Oracle, starts []int32) Scores {
	return compute(ds, recs, rels, starts, true)
}

// ComputeAddresses is ComputeFrom without the ASes (cone-membership count)
// map. Membership pairs are quadratic in chain length and their sort
// dominates the kernel, so rankings that only consume address shares —
// every CC* metric, including each stability trial — use this form.
func ComputeAddresses(ds *sanitize.Dataset, recs []int32, rels relation.Oracle, starts []int32) Scores {
	return compute(ds, recs, rels, starts, false)
}

func compute(ds *sanitize.Dataset, recs []int32, rels relation.Oracle, starts []int32, wantASes bool) Scores {
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	sc.pairPfx = sc.pairPfx[:0]
	sc.pairAS = sc.pairAS[:0]
	// pfxSeen is all-false between calls (reset below via pfxUsed), so
	// sizing it costs O(touched prefixes), not O(total prefixes), per call.
	if cap(sc.pfxSeen) < len(ds.Weight) {
		sc.pfxSeen = make([]bool, len(ds.Weight))
	}
	sc.pfxSeen = sc.pfxSeen[:len(ds.Weight)]
	sc.pfxUsed = sc.pfxUsed[:0]
	defer func() {
		for _, p := range sc.pfxUsed {
			sc.pfxSeen[p] = false
		}
	}()

	s := Scores{}
	each(ds, recs, func(i int) {
		_, pfxIdx, path := ds.Record(i)
		ids := ds.PathIDs[i]
		if !sc.pfxSeen[pfxIdx] {
			sc.pfxSeen[pfxIdx] = true
			sc.pfxUsed = append(sc.pfxUsed, pfxIdx)
			s.Total += ds.Weight[pfxIdx]
		}
		var start int
		if starts != nil {
			start = int(starts[i])
		} else {
			start = int(recordStart(path, rels))
		}
		if start < 0 {
			return
		}
		for j := start; j < len(path); j++ {
			hi := uint64(uint32(ids[j])) << 32
			sc.pairPfx = append(sc.pairPfx, hi|uint64(uint32(pfxIdx)))
			if !wantASes {
				continue
			}
			// An AS's cone contains itself and every AS observed
			// downstream of it on the retained chain.
			for k := j; k < len(path); k++ {
				sc.pairAS = append(sc.pairAS, hi|uint64(uint32(ids[k])))
			}
		}
	})

	slices.Sort(sc.pairPfx)

	s.Addresses = make(map[asn.ASN]uint64, distinctHigh(sc.pairPfx))
	var sum uint64
	flushPairs(sc.pairPfx, func(pair uint64) {
		sum += ds.Weight[int32(uint32(pair))]
	}, func(id int32) {
		s.Addresses[ds.ASNOf[id]] = sum
		sum = 0
	})

	if wantASes {
		slices.Sort(sc.pairAS)
		s.ASes = make(map[asn.ASN]int, distinctHigh(sc.pairAS))
		members := 0
		flushPairs(sc.pairAS, func(pair uint64) {
			members++
		}, func(id int32) {
			s.ASes[ds.ASNOf[id]] = members
			members = 0
		})
	}
	return s
}

// flushPairs walks sorted packed pairs, calling visit once per distinct
// pair and flush(id) at the end of each distinct high-word (AS id) run.
func flushPairs(pairs []uint64, visit func(pair uint64), flush func(id int32)) {
	for k := 0; k < len(pairs); k++ {
		if k == 0 || pairs[k] != pairs[k-1] {
			visit(pairs[k])
		}
		if k+1 == len(pairs) || pairs[k+1]>>32 != pairs[k]>>32 {
			flush(int32(pairs[k] >> 32))
		}
	}
}

// distinctHigh counts distinct high words in sorted packed pairs.
func distinctHigh(pairs []uint64) int {
	n := 0
	for k := range pairs {
		if k == 0 || pairs[k]>>32 != pairs[k-1]>>32 {
			n++
		}
	}
	return n
}

// computeMapRef is the original ASN-keyed map implementation, retained as
// the executable specification the dense kernel is property-tested against.
func computeMapRef(ds *sanitize.Dataset, recs []int32, rels relation.Oracle) Scores {
	// conePrefixes[a] tracks distinct prefix indexes per AS; coneASes[a]
	// tracks the distinct downstream ASes (cone membership).
	conePrefixes := map[asn.ASN]map[int32]struct{}{}
	coneASes := map[asn.ASN]map[asn.ASN]struct{}{}
	seenPrefix := map[int32]struct{}{}

	each(ds, recs, func(i int) {
		_, pfxIdx, path := ds.Record(i)
		seenPrefix[pfxIdx] = struct{}{}
		start := chainStart(path, rels)
		if start < 0 {
			return
		}
		// See Compute: a broken chain keeps only the origin in scope.
		for j := start; j+1 < len(path); j++ {
			if rels.Rel(path[j], path[j+1]) != topology.RelP2C {
				start = len(path) - 1
				break
			}
		}
		for j := start; j < len(path); j++ {
			set := conePrefixes[path[j]]
			if set == nil {
				set = map[int32]struct{}{}
				conePrefixes[path[j]] = set
			}
			set[pfxIdx] = struct{}{}
			members := coneASes[path[j]]
			if members == nil {
				members = map[asn.ASN]struct{}{}
				coneASes[path[j]] = members
			}
			for k := j; k < len(path); k++ {
				members[path[k]] = struct{}{}
			}
		}
	})

	s := Scores{
		Addresses: make(map[asn.ASN]uint64, len(conePrefixes)),
		ASes:      make(map[asn.ASN]int, len(coneASes)),
	}
	for p := range seenPrefix {
		s.Total += ds.Weight[p]
	}
	for a, set := range conePrefixes {
		var sum uint64
		for p := range set {
			sum += ds.Weight[p]
		}
		s.Addresses[a] = sum
	}
	for a, members := range coneASes {
		s.ASes[a] = len(members)
	}
	return s
}

// ComputeRecursive is the ablation variant §1.1 warns against: instead of
// only crediting an AS with prefixes observed downstream of it on actual
// paths, it collects every observed provider→customer link and takes the
// transitive closure, so a provider inherits its customers' entire cones
// even along never-observed combinations. Comparing it with Compute
// quantifies the cone inflation that motivates the observed-path rule.
func ComputeRecursive(ds *sanitize.Dataset, recs []int32, rels relation.Oracle) Scores {
	// Observed p2c links and per-AS directly-originated/observed prefixes.
	links := map[asn.ASN]map[asn.ASN]struct{}{}
	own := map[asn.ASN]map[int32]struct{}{}
	seenPrefix := map[int32]struct{}{}

	each(ds, recs, func(i int) {
		_, pfxIdx, path := ds.Record(i)
		seenPrefix[pfxIdx] = struct{}{}
		if o, ok := path.Origin(); ok {
			set := own[o]
			if set == nil {
				set = map[int32]struct{}{}
				own[o] = set
			}
			set[pfxIdx] = struct{}{}
		}
		start := chainStart(path, rels)
		if start < 0 {
			return
		}
		for j := start; j+1 < len(path); j++ {
			if rels.Rel(path[j], path[j+1]) != topology.RelP2C {
				break
			}
			m := links[path[j]]
			if m == nil {
				m = map[asn.ASN]struct{}{}
				links[path[j]] = m
			}
			m[path[j+1]] = struct{}{}
		}
	})

	// Transitive closure by DFS with memoized prefix sets.
	memo := map[asn.ASN]map[int32]struct{}{}
	var visit func(a asn.ASN, onPath map[asn.ASN]bool) map[int32]struct{}
	visit = func(a asn.ASN, onPath map[asn.ASN]bool) map[int32]struct{} {
		if got, ok := memo[a]; ok {
			return got
		}
		if onPath[a] {
			return nil // defensive: inferred relationship cycles
		}
		onPath[a] = true
		out := map[int32]struct{}{}
		for pfx := range own[a] {
			out[pfx] = struct{}{}
		}
		for c := range links[a] {
			for pfx := range visit(c, onPath) {
				out[pfx] = struct{}{}
			}
		}
		delete(onPath, a)
		memo[a] = out
		return out
	}

	s := Scores{Addresses: map[asn.ASN]uint64{}}
	for p := range seenPrefix {
		s.Total += ds.Weight[p]
	}
	all := map[asn.ASN]bool{}
	for a := range links {
		all[a] = true
	}
	for a := range own {
		all[a] = true
	}
	for a := range all {
		var sum uint64
		for p := range visit(a, map[asn.ASN]bool{}) {
			sum += ds.Weight[p]
		}
		s.Addresses[a] = sum
	}
	return s
}

// chainStart returns the index in path where the provider→customer chain
// begins: after the first peer↔peer link, or at the provider side of the
// first provider→customer link. When the whole path climbs (or relations
// are unknown), only the origin remains in scope. Returns -1 for an empty
// path.
func chainStart(path bgp.Path, rels relation.Oracle) int {
	if len(path) == 0 {
		return -1
	}
	for i := 0; i+1 < len(path); i++ {
		switch rels.Rel(path[i], path[i+1]) {
		case topology.RelP2P:
			return i + 1
		case topology.RelP2C:
			return i
		}
	}
	return len(path) - 1
}

// each visits the requested accepted-record positions, or all of them when
// recs is nil.
func each(ds *sanitize.Dataset, recs []int32, f func(i int)) {
	if recs == nil {
		for i := 0; i < ds.Len(); i++ {
			f(i)
		}
		return
	}
	for _, i := range recs {
		f(int(i))
	}
}
