package cone

import (
	"testing"

	"countryrank/internal/asn"
	"countryrank/internal/countries"
	"countryrank/internal/metrictest"
	"countryrank/internal/sanitize"
)

// fig1Rels encodes the paper's Figure 1: C(30)<D(40); D<E(50), D<F(60);
// A(10), B(20), C mutual peers; A<G(70); B<H(80).
var fig1Rels = metrictest.Rels{
	P2C: [][2]uint32{{30, 40}, {40, 50}, {40, 60}, {10, 70}, {20, 80}},
	P2P: [][2]uint32{{10, 20}, {10, 30}, {20, 30}},
}

func fig1Dataset() *sanitize.Dataset {
	return metrictest.Dataset(
		[]countries.Code{"US", "US"}, // VP 0 in G, VP 1 in H
		[]metrictest.Rec{
			// VP 0 (v_g at G): paths to E, F, H.
			{VP: 0, Prefix: "50.0.0.0/24", PrefixCountry: "US", Path: []uint32{70, 10, 30, 40, 50}},
			{VP: 0, Prefix: "60.0.0.0/24", PrefixCountry: "US", Path: []uint32{70, 10, 30, 40, 60}},
			{VP: 0, Prefix: "80.0.0.0/24", PrefixCountry: "US", Path: []uint32{70, 10, 20, 80}},
			// VP 1 (v_h at H): paths to E, F, G.
			{VP: 1, Prefix: "50.0.0.0/24", PrefixCountry: "US", Path: []uint32{80, 20, 30, 40, 50}},
			{VP: 1, Prefix: "60.0.0.0/24", PrefixCountry: "US", Path: []uint32{80, 20, 30, 40, 60}},
			{VP: 1, Prefix: "70.0.0.0/24", PrefixCountry: "US", Path: []uint32{80, 20, 10, 70}},
		})
}

func TestFigure1Cones(t *testing.T) {
	s := Compute(fig1Dataset(), nil, fig1Rels)

	// Four distinct /24s → 1024 addresses in scope.
	if s.Total != 4*256 {
		t.Fatalf("total = %d", s.Total)
	}
	// Both VPs share visibility of C<D<E and C<D<F (Figure 1's red
	// segments): C and D each hold E's and F's address space.
	if got := s.Addresses[30]; got != 512 {
		t.Errorf("cone(C) = %d, want 512", got)
	}
	if got := s.Addresses[40]; got != 512 {
		t.Errorf("cone(D) = %d, want 512", got)
	}
	// Each VP contributes one more segment: A<G from v_h (green), B<H from
	// v_g (blue).
	if got := s.Addresses[10]; got != 256 {
		t.Errorf("cone(A) = %d, want 256 (G only)", got)
	}
	if got := s.Addresses[20]; got != 256 {
		t.Errorf("cone(B) = %d, want 256 (H only)", got)
	}
	// Origins include themselves.
	for _, origin := range []uint32{50, 60, 70, 80} {
		if got := s.Addresses[asn.ASN(origin)]; got != 256 {
			t.Errorf("cone(%d) = %d, want own 256", origin, got)
		}
	}
	if sh := s.Share(30); sh != 0.5 {
		t.Errorf("Share(C) = %f", sh)
	}
	if len(s.Shares()) != len(s.Addresses) {
		t.Error("Shares size mismatch")
	}
	if (Scores{}).Share(1) != 0 {
		t.Error("empty scores share should be 0")
	}
}

func TestConeDoesNotCountUphillSegments(t *testing.T) {
	s := Compute(fig1Dataset(), nil, fig1Rels)
	// G and H appear first on paths (gray dropped segments): their cones
	// must stay at their own prefix only.
	if s.Addresses[70] != 256 || s.Addresses[80] != 256 {
		t.Errorf("VP-side ASes inflated: G=%d H=%d", s.Addresses[70], s.Addresses[80])
	}
}

func TestConeSubsetRecords(t *testing.T) {
	// Only VP 0's records (positions 0..2).
	s := Compute(fig1Dataset(), []int32{0, 1, 2}, fig1Rels)
	if s.Total != 3*256 {
		t.Fatalf("total = %d", s.Total)
	}
	if s.Addresses[20] != 256 { // B<H from v_g
		t.Errorf("cone(B) = %d", s.Addresses[20])
	}
	if s.Addresses[10] != 0 { // A<G only visible from v_h
		t.Errorf("cone(A) = %d, want 0 in v_g-only view", s.Addresses[10])
	}
}

func TestConeUnknownRelationsOnlyOrigin(t *testing.T) {
	s := Compute(fig1Dataset(), nil, metrictest.Rels{})
	// With no relationship knowledge, only origins keep their own prefix.
	for a, v := range s.Addresses {
		if v != 256 {
			t.Errorf("AS%d cone = %d without relationships", a, v)
		}
	}
}

func TestConeChainStopsOnBrokenLink(t *testing.T) {
	// Path 1 2 3 where 1<2 is p2c but 2-3 is unknown: 1 and 2 must not
	// absorb 3's prefix (robustness against imperfect inference).
	rels := metrictest.Rels{P2C: [][2]uint32{{1, 2}}}
	ds := metrictest.Dataset([]countries.Code{"US"}, []metrictest.Rec{
		{VP: 0, Prefix: "9.0.0.0/24", PrefixCountry: "US", Path: []uint32{1, 2, 3}},
	})
	s := Compute(ds, nil, rels)
	if s.Addresses[1] != 0 || s.Addresses[2] != 0 {
		t.Errorf("broken chain leaked: %v", s.Addresses)
	}
}

func TestMonotoneAlongChain(t *testing.T) {
	rels := metrictest.Rels{P2C: [][2]uint32{{1, 2}, {2, 3}}}
	ds := metrictest.Dataset([]countries.Code{"US"}, []metrictest.Rec{
		{VP: 0, Prefix: "9.0.0.0/24", PrefixCountry: "US", Path: []uint32{1, 2, 3}},
	})
	s := Compute(ds, nil, rels)
	if s.Addresses[1] < s.Addresses[2] || s.Addresses[2] < s.Addresses[3] {
		t.Errorf("cone not monotone along provider chain: %v", s.Addresses)
	}
}

func TestDistinctPrefixDedup(t *testing.T) {
	// The same prefix seen from two VPs counts once in the cone.
	rels := metrictest.Rels{P2C: [][2]uint32{{1, 2}}}
	ds := metrictest.Dataset([]countries.Code{"US", "US"}, []metrictest.Rec{
		{VP: 0, Prefix: "9.0.0.0/24", PrefixCountry: "US", Path: []uint32{1, 2}},
		{VP: 1, Prefix: "9.0.0.0/24", PrefixCountry: "US", Path: []uint32{1, 2}},
	})
	s := Compute(ds, nil, rels)
	if s.Addresses[1] != 256 || s.Total != 256 {
		t.Errorf("dedup failed: %v total %d", s.Addresses, s.Total)
	}
}

func TestASLevelCones(t *testing.T) {
	s := Compute(fig1Dataset(), nil, fig1Rels)
	// C's cone: {C, D, E, F} = 4 ASes; D's: {D, E, F}; origins: themselves.
	if got := s.ASes[30]; got != 4 {
		t.Errorf("AS-cone(C) = %d, want 4", got)
	}
	if got := s.ASes[40]; got != 3 {
		t.Errorf("AS-cone(D) = %d, want 3", got)
	}
	for _, origin := range []uint32{50, 60, 70, 80} {
		if got := s.ASes[asn.ASN(origin)]; got != 1 {
			t.Errorf("AS-cone(%d) = %d, want 1 (itself)", origin, got)
		}
	}
	// A and B each hold themselves plus their single observed customer.
	if s.ASes[10] != 2 || s.ASes[20] != 2 {
		t.Errorf("AS-cones of A/B = %d/%d, want 2/2", s.ASes[10], s.ASes[20])
	}
}
