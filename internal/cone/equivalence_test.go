package cone_test

import (
	"reflect"
	"testing"

	"countryrank/internal/cone"
	"countryrank/internal/core"
)

// TestDenseMatchesMapReference: over several generated worlds and views,
// on both ground-truth and inferred relationships, the dense pair-sort
// kernel must produce byte-identical Scores to the retained map-based
// reference.
func TestDenseMatchesMapReference(t *testing.T) {
	for _, seed := range []int64{1, 5} {
		opt := core.Options{Seed: seed, StubScale: 0.15, VPScale: 0.2}
		if seed == 5 {
			opt.InferRelationships = true // exercise broken-chain handling
		}
		p := core.NewPipeline(opt)
		views := map[string][]int32{
			"global":      nil,
			"intl-AU":     p.ViewRecords(core.International, "AU"),
			"intl-US":     p.ViewRecords(core.International, "US"),
			"natl-JP":     p.ViewRecords(core.National, "JP"),
			"outbound-RU": p.ViewRecords(core.Outbound, "RU"),
			"empty":       p.ViewRecords(core.National, "ZZ"),
		}
		for name, recs := range views {
			got := cone.Compute(p.DS, recs, p.Rels)
			want := cone.ComputeMapRef(p.DS, recs, p.Rels)
			if got.Total != want.Total {
				t.Fatalf("seed %d %s: Total %d != %d", seed, name, got.Total, want.Total)
			}
			if !reflect.DeepEqual(got.Addresses, want.Addresses) {
				t.Fatalf("seed %d %s: Addresses diverge (%d vs %d ASes)",
					seed, name, len(got.Addresses), len(want.Addresses))
			}
			if !reflect.DeepEqual(got.ASes, want.ASes) {
				t.Fatalf("seed %d %s: ASes diverge (%d vs %d)",
					seed, name, len(got.ASes), len(want.ASes))
			}
			starts := cone.Starts(p.DS, p.Rels)
			addr := cone.ComputeAddresses(p.DS, recs, p.Rels, starts)
			if addr.Total != want.Total || !reflect.DeepEqual(addr.Addresses, want.Addresses) {
				t.Fatalf("seed %d %s: ComputeAddresses diverges from reference", seed, name)
			}
			if addr.ASes != nil {
				t.Fatalf("seed %d %s: ComputeAddresses must leave ASes nil", seed, name)
			}
		}
	}
}
