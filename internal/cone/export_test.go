package cone

// ComputeMapRef exposes the retained map-based reference implementation to
// the equivalence property tests.
var ComputeMapRef = computeMapRef
