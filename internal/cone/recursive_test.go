package cone

import (
	"testing"

	"countryrank/internal/countries"
	"countryrank/internal/metrictest"
)

// TestRecursiveInflates demonstrates the inflation §1.1 describes: a
// provider observed transiting for a customer on ONE path inherits the
// customer's whole cone under recursion, even prefixes never observed
// downstream of the provider.
func TestRecursiveInflates(t *testing.T) {
	rels := metrictest.Rels{
		P2C: [][2]uint32{{1, 2}, {2, 3}, {2, 4}},
	}
	// Path via 1 only reaches 3's prefix; 4's prefix is observed only on a
	// path that does not cross 1.
	ds := metrictest.Dataset([]countries.Code{"US", "US"}, []metrictest.Rec{
		{VP: 0, Prefix: "9.0.0.0/24", PrefixCountry: "US", Path: []uint32{1, 2, 3}},
		{VP: 1, Prefix: "9.1.0.0/24", PrefixCountry: "US", Path: []uint32{2, 4}},
	})

	observed := Compute(ds, nil, rels)
	recursive := ComputeRecursive(ds, nil, rels)

	// Observed-path rule: 1's cone holds only 3's prefix.
	if observed.Addresses[1] != 256 {
		t.Errorf("observed cone(1) = %d, want 256", observed.Addresses[1])
	}
	// Recursive closure: 1 inherits 2's full cone, including 4's prefix.
	if recursive.Addresses[1] != 512 {
		t.Errorf("recursive cone(1) = %d, want 512", recursive.Addresses[1])
	}
	// The recursion never shrinks anyone's cone.
	for a, v := range observed.Addresses {
		if recursive.Addresses[a] < v {
			t.Errorf("recursive cone(%v) = %d < observed %d", a, recursive.Addresses[a], v)
		}
	}
	if observed.Total != recursive.Total {
		t.Errorf("scopes differ: %d vs %d", observed.Total, recursive.Total)
	}
}

// TestRecursiveOnWorldInflation quantifies the inflation on a generated
// world: the recursive variant must be a superset, and strictly larger for
// some transit AS.
func TestRecursiveOnWorldInflation(t *testing.T) {
	ds, rels := worldDataset(t)
	observed := Compute(ds, nil, rels)
	recursive := ComputeRecursive(ds, nil, rels)
	inflated := 0
	for a, v := range recursive.Addresses {
		if v < observed.Addresses[a] {
			t.Fatalf("recursive cone(%v) shrank", a)
		}
		if v > observed.Addresses[a] {
			inflated++
		}
	}
	if inflated == 0 {
		t.Error("expected at least one inflated cone on a real-shaped world")
	}
}
