package cone

import (
	"testing"

	"countryrank/internal/asn"
	"countryrank/internal/geoloc"
	"countryrank/internal/relation"
	"countryrank/internal/routing"
	"countryrank/internal/sanitize"
	"countryrank/internal/topology"
)

// worldDataset builds a small sanitized dataset with ground-truth
// relationships for whole-world cone tests.
func worldDataset(t *testing.T) (*sanitize.Dataset, relation.Oracle) {
	t.Helper()
	w := topology.Build(topology.Config{Seed: 13, StubScale: 0.08, VPScale: 0.1})
	col := routing.BuildCollection(w, routing.BuildOptions{LoopFrac: -1, PoisonFrac: -1, UnallocFrac: -1})
	clique := map[asn.ASN]bool{}
	for _, a := range w.Clique {
		clique[a] = true
	}
	ds := sanitize.Run(col, sanitize.Config{
		Clique:       clique,
		Registry:     w.Graph.Registry(),
		RouteServers: w.Graph.RouteServers(),
		GeoTable:     geoloc.GeolocatePrefixes(w.Geo, col.AnnouncedPrefixes(), 0.5),
	})
	return ds, w.Graph
}

// TestGlobalConeHierarchy checks structural invariants on a generated
// world: clique members hold the largest cones and a provider's cone is a
// superset (by weight) of each single-homed customer chain beneath it on
// observed paths.
func TestGlobalConeHierarchy(t *testing.T) {
	ds, rels := worldDataset(t)
	s := Compute(ds, nil, rels)
	if s.Total == 0 {
		t.Fatal("empty scope")
	}
	// Lumen's global cone should dwarf any single stub's.
	lumen := s.Addresses[3356]
	if lumen == 0 {
		t.Fatal("Lumen has no cone")
	}
	var maxStub uint64
	for a, v := range s.Addresses {
		if a >= 100000 && v > maxStub { // generated stubs start at 100000
			maxStub = v
		}
	}
	if lumen <= maxStub {
		t.Errorf("Lumen cone %d not above the largest stub cone %d", lumen, maxStub)
	}
	// Cone shares are valid fractions.
	for a, v := range s.Addresses {
		if v > s.Total {
			t.Errorf("cone(%v) exceeds scope: %d > %d", a, v, s.Total)
		}
	}
}
