package core

import (
	"fmt"

	"countryrank/internal/obs"
	"countryrank/internal/routing"
	"countryrank/internal/topology"
)

var (
	mDegradedRuns = obs.NewCounter("countryrank_core_degraded_runs_total",
		"pipeline runs processed with incomplete coverage")
	mQuorumFailures = obs.NewCounter("countryrank_core_quorum_failures_total",
		"pipeline runs refused because coverage fell below quorum")
)

// Coverage reports how complete a collection was when it reached the
// pipeline: the contract between the fault-tolerant ingest paths (live
// collection, degraded MRT import) and the ranking consumer. A partial run
// is allowed — resilience would be pointless otherwise — but never silent:
// rankings computed from degraded coverage carry a label saying so, and
// coverage below the quorum fails the run outright.
type Coverage struct {
	// VPsExpected is how many vantage points the run was configured to
	// collect from; VPsDelivered how many actually produced records.
	VPsExpected  int
	VPsDelivered int
	// RecordsLost counts records dropped during ingest (rejected entries,
	// truncated feeds); Resyncs and SkippedBytes account corrupt MRT
	// records skipped by the reader's resync scan.
	RecordsLost  int64
	Resyncs      int64
	SkippedBytes int64
	// Reconnects counts feeder reconnects during live collection. Reconnects
	// alone do not make a run degraded — the resume protocol guarantees the
	// delivered tables are exact — but they belong in the report.
	Reconnects int64
}

// Degraded reports whether any data was lost: missing VPs, dropped records,
// or skipped corrupt input.
func (c Coverage) Degraded() bool {
	return c.VPsDelivered < c.VPsExpected || c.RecordsLost > 0 || c.Resyncs > 0
}

// Fraction is the delivered share of expected VPs (1 when none were
// expected: a run with no stated expectation cannot miss it).
func (c Coverage) Fraction() float64 {
	if c.VPsExpected <= 0 {
		return 1
	}
	return float64(c.VPsDelivered) / float64(c.VPsExpected)
}

// String renders the report for labels and errors.
func (c Coverage) String() string {
	return fmt.Sprintf("%d/%d VPs, %d records lost, %d resyncs",
		c.VPsDelivered, c.VPsExpected, c.RecordsLost, c.Resyncs)
}

// Info converts the report to its run-manifest form.
func (c Coverage) Info() obs.CoverageInfo {
	return obs.CoverageInfo{
		VPsExpected:  c.VPsExpected,
		VPsDelivered: c.VPsDelivered,
		RecordsLost:  c.RecordsLost,
		Resyncs:      c.Resyncs,
		SkippedBytes: c.SkippedBytes,
		Reconnects:   c.Reconnects,
		Degraded:     c.Degraded(),
	}
}

// CoverageInfo reports the pipeline's coverage for the run manifest: the
// recorded partial-coverage report when one exists, otherwise a complete
// run over every VP of the world.
func (p *Pipeline) CoverageInfo() obs.CoverageInfo {
	if p.Coverage != nil {
		return p.Coverage.Info()
	}
	n := p.World.VPs.Len()
	return obs.CoverageInfo{VPsExpected: n, VPsDelivered: n}
}

// CoverageFromImport assembles the report for a degraded MRT ingest:
// delivered VPs are counted from the collection, losses come from the
// import stats.
func CoverageFromImport(vpsExpected int, col *routing.Collection, stats routing.ImportStats) Coverage {
	seen := map[int32]bool{}
	col.ForEachRecord(func(_ int, recs []routing.Record) error {
		for _, r := range recs {
			seen[r.VP] = true
		}
		return nil
	})
	return Coverage{
		VPsExpected:  vpsExpected,
		VPsDelivered: len(seen),
		RecordsLost:  stats.Rejects,
		Resyncs:      stats.Resyncs,
		SkippedBytes: stats.SkippedBytes,
	}
}

// NewPipelineFromPartial processes a possibly-incomplete collection. It is
// the loud-failure gate of the degraded path: coverage below the quorum
// (Options.Quorum) returns an error instead of a quietly wrong ranking;
// coverage above it proceeds, with every ranking name labelled when data
// was actually lost.
func NewPipelineFromPartial(w *topology.World, col *routing.Collection, cov Coverage, opt Options) (*Pipeline, error) {
	opt = opt.withDefaults()
	if cov.Fraction() < opt.Quorum {
		mQuorumFailures.Inc()
		return nil, fmt.Errorf("core: coverage %s below quorum %.0f%%", cov, opt.Quorum*100)
	}
	sp := obs.StartSpan("pipeline")
	defer sp.End()
	p := process(w, col, opt, sp)
	p.Coverage = &cov
	if cov.Degraded() {
		mDegradedRuns.Inc()
	}
	return p, nil
}

// label suffixes a ranking name with the degradation report, so a ranking
// computed from partial data can never be mistaken for the real thing.
func (p *Pipeline) label(name string) string {
	if p.Coverage == nil || !p.Coverage.Degraded() {
		return name
	}
	return fmt.Sprintf("%s [degraded: %s]", name, *p.Coverage)
}
