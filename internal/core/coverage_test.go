package core

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"

	"countryrank/internal/routing"
	"countryrank/internal/topology"
)

func partialWorld() (*topology.World, *routing.Collection) {
	o := smallOpts()
	w := topology.Build(topology.Config{
		Seed: o.Seed, StubScale: o.StubScale, VPScale: o.VPScale,
	})
	return w, routing.BuildCollection(w, routing.BuildOptions{})
}

func TestCoverageSemantics(t *testing.T) {
	full := Coverage{VPsExpected: 5, VPsDelivered: 5}
	if full.Degraded() || full.Fraction() != 1 {
		t.Fatalf("full coverage reads degraded: %+v", full)
	}
	// Reconnects alone are not degradation: the resume protocol delivers
	// exact tables through them.
	bumpy := Coverage{VPsExpected: 5, VPsDelivered: 5, Reconnects: 12}
	if bumpy.Degraded() {
		t.Fatal("reconnects alone must not mark a run degraded")
	}
	for _, c := range []Coverage{
		{VPsExpected: 5, VPsDelivered: 3},
		{VPsExpected: 5, VPsDelivered: 5, RecordsLost: 1},
		{VPsExpected: 5, VPsDelivered: 5, Resyncs: 1},
	} {
		if !c.Degraded() {
			t.Fatalf("coverage %+v must read degraded", c)
		}
	}
	if none := (Coverage{}); none.Fraction() != 1 {
		t.Fatal("no expectation must not read as zero coverage")
	}
}

func TestQuorumFailsLoudly(t *testing.T) {
	w, col := partialWorld()
	cov := Coverage{VPsExpected: 10, VPsDelivered: 3}
	if _, err := NewPipelineFromPartial(w, col, cov, Options{}); err == nil {
		t.Fatal("3/10 coverage passed the default 50% quorum")
	} else if !strings.Contains(err.Error(), "quorum") {
		t.Fatalf("quorum failure unclear: %v", err)
	}
	// NoQuorum disables the gate; the run proceeds, labelled.
	p, err := NewPipelineFromPartial(w, col, cov, Options{Quorum: NoQuorum})
	if err != nil {
		t.Fatalf("NoQuorum still gated: %v", err)
	}
	if p.Coverage == nil || !p.Coverage.Degraded() {
		t.Fatal("partial pipeline lost its coverage report")
	}
}

func TestDegradedRankingsLabelled(t *testing.T) {
	w, col := partialWorld()
	cov := Coverage{VPsExpected: 4, VPsDelivered: 3, RecordsLost: 7}
	p, err := NewPipelineFromPartial(w, col, cov, Options{})
	if err != nil {
		t.Fatalf("3/4 coverage failed the 50%% quorum: %v", err)
	}
	cs := p.DS.CountriesWithPrefixes()
	if len(cs) == 0 {
		t.Skip("no countries at this scale")
	}
	c := cs[0]
	cr := p.Country(c)
	for _, r := range []struct {
		name string
		got  string
	}{
		{"CCI", cr.CCI.Metric}, {"CCN", cr.CCN.Metric},
		{"AHI", cr.AHI.Metric}, {"AHN", cr.AHN.Metric},
		{"AHC", p.AHC(c).Metric}, {"CTI", p.CTI(c).Metric},
	} {
		if !strings.Contains(r.got, "degraded") || !strings.Contains(r.got, "3/4 VPs") {
			t.Errorf("%s ranking %q not labelled as degraded", r.name, r.got)
		}
	}
	ccg, ahg := p.Global()
	if !strings.Contains(ccg.Metric, "degraded") || !strings.Contains(ahg.Metric, "degraded") {
		t.Errorf("global rankings %q / %q not labelled", ccg.Metric, ahg.Metric)
	}
}

func TestCompletePartialRunUnlabelled(t *testing.T) {
	w, col := partialWorld()
	cov := Coverage{VPsExpected: 4, VPsDelivered: 4, Reconnects: 2}
	p, err := NewPipelineFromPartial(w, col, cov, Options{})
	if err != nil {
		t.Fatalf("complete coverage rejected: %v", err)
	}
	ccg, _ := p.Global()
	if ccg.Metric != string(CCG) {
		t.Fatalf("complete run got labelled: %q", ccg.Metric)
	}
}

// TestDegradedIngestEndToEnd drives the whole degraded path: export a
// collection to MRT, corrupt a record, re-import with SkipCorrupt, build
// the pipeline from the partial collection, and check the rankings carry
// the resync accounting in their labels.
func TestDegradedIngestEndToEnd(t *testing.T) {
	w, col := partialWorld()
	var streams []io.Reader
	var first []byte
	for i, coll := range w.VPs.Collectors() {
		var b bytes.Buffer
		if err := routing.ExportMRT(&b, col, coll.Name, 1617235200); err != nil {
			t.Fatalf("export %s: %v", coll.Name, err)
		}
		if i == 0 {
			first = b.Bytes()
		} else {
			streams = append(streams, bytes.NewReader(b.Bytes()))
		}
	}
	// Corrupt the second record's length field in the first stream.
	if len(first) < 24 {
		t.Skip("first stream too small")
	}
	length := int(binary.BigEndian.Uint32(first[8:]))
	second := 12 + length
	if second+12 > len(first) {
		t.Skip("first stream has one record")
	}
	mut := append([]byte(nil), first...)
	binary.BigEndian.PutUint32(mut[second+8:], 1<<30)
	streams = append([]io.Reader{bytes.NewReader(mut)}, streams...)

	imported, stats, err := routing.ImportMRTWith(w, streams, routing.ImportOptions{SkipCorrupt: true})
	if err != nil {
		t.Fatalf("degraded import: %v", err)
	}
	if stats.Resyncs == 0 {
		t.Fatal("corruption went unnoticed")
	}
	expected := 0
	seen := map[int32]bool{}
	for _, r := range col.Records {
		seen[r.VP] = true
	}
	expected = len(seen)

	cov := CoverageFromImport(expected, imported, stats)
	if !cov.Degraded() || cov.Resyncs != stats.Resyncs {
		t.Fatalf("coverage %+v does not reflect the import stats %+v", cov, stats)
	}
	p, err := NewPipelineFromPartial(w, imported, cov, Options{})
	if err != nil {
		t.Fatalf("pipeline from degraded import: %v", err)
	}
	ccg, _ := p.Global()
	if !strings.Contains(ccg.Metric, "degraded") {
		t.Fatalf("degraded-import ranking %q not labelled", ccg.Metric)
	}
}
