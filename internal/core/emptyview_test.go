package core

import (
	"testing"

	"countryrank/internal/countries"
)

// TestEmptyNationalViewIsEmptyNotGlobal pins the regression where a country
// with prefixes but no in-country VPs returned a nil national view, which
// the metric packages read as "all records" — silently computing global
// metrics under a national label.
func TestEmptyNationalViewIsEmptyNotGlobal(t *testing.T) {
	p := NewPipeline(smallOpts())
	// Find a country with prefixes but no located in-country VPs.
	var target countries.Code
	for _, c := range p.DS.CountriesWithPrefixes() {
		if p.ViewVPCount(National, c) == 0 {
			target = c
			break
		}
	}
	if target == "" {
		t.Skip("every country has VPs at this scale")
	}
	recs := p.ViewRecords(National, target)
	if recs == nil {
		t.Fatal("empty national view must be non-nil")
	}
	if len(recs) != 0 {
		t.Fatalf("national view of VP-less %s has %d records", target, len(recs))
	}
	cr := p.Country(target)
	if cr.CCN.Len() != 0 || cr.AHN.Len() != 0 {
		t.Fatalf("%s national rankings should be empty, got CCN=%d AHN=%d",
			target, cr.CCN.Len(), cr.AHN.Len())
	}
	// The international side still works.
	if cr.CCI.Len() == 0 {
		t.Errorf("%s international ranking should not be empty", target)
	}
}
