package core

import (
	"testing"
)

func TestDualStackPipeline(t *testing.T) {
	opt := smallOpts()
	opt.IPv6 = true
	p := NewPipeline(opt)

	// Dual stack: both families survive sanitization.
	v4, v6 := 0, 0
	for i := 0; i < p.DS.Len(); i++ {
		if p.DS.PrefixOf(i).Addr().Is4() {
			v4++
		} else {
			v6++
		}
	}
	if v4 == 0 || v6 == 0 {
		t.Fatalf("dual-stack records: v4=%d v6=%d", v4, v6)
	}

	// IPv6 prefixes geolocate and enter the country views.
	recs := p.ViewRecords(International, "AU")
	v6InView := 0
	for _, i := range recs {
		if !p.DS.PrefixOf(int(i)).Addr().Is4() {
			v6InView++
		}
	}
	if v6InView == 0 {
		t.Error("AU international view has no IPv6 records")
	}

	// Rankings still resolve and stay within bounds.
	au := p.Country("AU")
	if au.CCI.Len() == 0 || au.AHN.Len() == 0 {
		t.Fatal("empty dual-stack rankings")
	}
	for _, e := range au.AHI.Top(10) {
		if e.Value < 0 || e.Value > 1 {
			t.Errorf("AHI value out of range: %+v", e)
		}
	}
}

func TestIPv6OffByDefault(t *testing.T) {
	p := NewPipeline(smallOpts())
	for i := 0; i < p.DS.Len(); i++ {
		if !p.DS.PrefixOf(i).Addr().Is4() {
			t.Fatal("IPv4-only world contains IPv6 prefixes")
		}
	}
}
