package core

import "testing"

func TestOutboundView(t *testing.T) {
	p := NewPipeline(midOpts())
	recs := p.ViewRecords(Outbound, "AU")
	if len(recs) == 0 {
		t.Fatal("empty outbound view")
	}
	for _, i := range recs {
		vpIdx, pfxIdx, _ := p.DS.Record(int(i))
		if p.DS.VPCountry[vpIdx] != "AU" {
			t.Fatal("outbound view must use in-country VPs")
		}
		if c := p.DS.PrefixCountry[pfxIdx]; c == "AU" || c == "" {
			t.Fatal("outbound view must target out-of-country prefixes")
		}
	}
	// National + outbound partition everything the country's VPs see.
	nat := p.ViewRecords(National, "AU")
	seenByAU := 0
	for i := 0; i < p.DS.Len(); i++ {
		vpIdx, _, _ := p.DS.Record(i)
		if p.DS.VPCountry[vpIdx] == "AU" {
			seenByAU++
		}
	}
	if len(recs)+len(nat) != seenByAU {
		t.Errorf("outbound(%d) + national(%d) != AU-VP records(%d)", len(recs), len(nat), seenByAU)
	}
}

func TestOutboundRankings(t *testing.T) {
	p := NewPipeline(midOpts())
	out := p.Outbound("AU")
	if out.CCO.Len() == 0 || out.AHO.Len() == 0 {
		t.Fatal("empty outbound rankings")
	}
	// Australia reaches the world through its international carriers and
	// their upstream multinationals: Telstra Global and a clique member
	// should rank inside the AHO top 10.
	if rk, ok := out.AHO.RankOf(4637); !ok || rk > 10 {
		t.Errorf("AHO rank of Telstra Global = %d, %v", rk, ok)
	}
	foundClique := false
	cliqueSet := map[uint32]bool{}
	for _, a := range p.World.Clique {
		cliqueSet[uint32(a)] = true
	}
	for _, e := range out.AHO.Top(10) {
		if cliqueSet[uint32(e.ASN)] {
			foundClique = true
		}
	}
	if !foundClique {
		t.Error("no clique member in AHO top 10")
	}
	// Outbound hegemony values are fractions.
	for _, e := range out.AHO.Top(20) {
		if e.Value < 0 || e.Value > 1 {
			t.Errorf("AHO value out of range: %+v", e)
		}
	}
	if out.AHO.ValueOf(1221) > 0.9 {
		// Telstra domestic carries its own stubs' outbound but not all of
		// the country's.
		t.Errorf("AHO(Telstra domestic) suspiciously high: %f", out.AHO.ValueOf(1221))
	}
}

func TestViewKindStrings(t *testing.T) {
	for _, v := range []ViewKind{National, International, Global, Outbound, ViewKind(99)} {
		if v.String() == "" {
			t.Errorf("ViewKind(%d) empty string", v)
		}
	}
}
