package core

import (
	"reflect"
	"testing"

	"countryrank/internal/hegemony"
)

// TestStabilityDeterministic pins the parallel Stability contract: for a
// fixed seed the output depends only on the seed, never on scheduling.
func TestStabilityDeterministic(t *testing.T) {
	p := NewPipeline(smallOpts())
	sizes := []int{2, 4, 8}
	a := p.Stability(CCI, "AU", sizes, 6, 7)
	b := p.Stability(CCI, "AU", sizes, 6, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("parallel Stability not deterministic for fixed seed:\n%v\n%v", a, b)
	}
	c := p.Stability(CCI, "AU", sizes, 6, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical Stability curves; sub-seeding looks broken")
	}
}

// TestOptionSentinels covers the Trim/Threshold zero-value design: the zero
// value means "paper default", the negative sentinels request an actual
// zero, and other values pass through.
func TestOptionSentinels(t *testing.T) {
	cases := []struct {
		name string
		in   Options
		trim float64
		thr  float64
	}{
		{"defaults", Options{}, hegemony.DefaultTrim, 0.5},
		{"no-trim ablation", Options{Trim: NoTrim}, 0, 0.5},
		{"plurality geolocation", Options{Threshold: PluralityThreshold}, hegemony.DefaultTrim, 0},
		{"explicit", Options{Trim: 0.25, Threshold: 0.8}, 0.25, 0.8},
	}
	for _, c := range cases {
		got := c.in.withDefaults()
		if got.Trim != c.trim || got.Threshold != c.thr {
			t.Errorf("%s: withDefaults() = trim %v thr %v, want trim %v thr %v",
				c.name, got.Trim, got.Threshold, c.trim, c.thr)
		}
	}
}

// TestViewIndexMatchesFullScan checks that the VP-indexed Outbound view and
// the cached country views equal a brute-force scan over every accepted
// record, and that the cache hands back one canonical slice.
func TestViewIndexMatchesFullScan(t *testing.T) {
	p := NewPipeline(smallOpts())
	for _, c := range p.DS.CountriesWithPrefixes() {
		for _, kind := range []ViewKind{National, International, Outbound} {
			got := p.ViewRecords(kind, c)
			if got == nil {
				t.Fatalf("%s/%s: country view must not be nil", kind, c)
			}
			want := []int32{}
			for i := 0; i < p.DS.Len(); i++ {
				vpIdx, pfxIdx, _ := p.DS.Record(i)
				vc := p.DS.VPCountry[vpIdx]
				in := false
				switch kind {
				case National:
					in = p.DS.PrefixCountry[pfxIdx] == c && vc == c
				case International:
					in = p.DS.PrefixCountry[pfxIdx] == c && vc != "" && vc != c
				case Outbound:
					in = vc == c && p.DS.PrefixCountry[pfxIdx] != c
				}
				if in {
					want = append(want, int32(i))
				}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s/%s: indexed view (%d recs) != full scan (%d recs)",
					kind, c, len(got), len(want))
			}
			again := p.ViewRecords(kind, c)
			if len(got) > 0 && &got[0] != &again[0] {
				t.Fatalf("%s/%s: cache returned a different slice on the second call", kind, c)
			}
		}
	}
}
