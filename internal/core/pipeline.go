// Package core assembles the paper's end-to-end pipeline (Figure 6): build
// or ingest a BGP path collection, sanitize it (§3.1), geolocate prefixes
// and vantage points (§3.2), slice the accepted records into national /
// international / global views, and compute the four country-specific
// ranking metrics — CCI, CCN, AHI, AHN — alongside the global (CCG, AHG)
// and baseline (AHC, CTI) metrics, plus the NDCG stability analysis of §4.
package core

import (
	"fmt"
	"math/rand"

	"countryrank/internal/asn"
	"countryrank/internal/bgp"
	"countryrank/internal/cone"
	"countryrank/internal/countries"
	"countryrank/internal/cti"
	"countryrank/internal/geoloc"
	"countryrank/internal/hegemony"
	"countryrank/internal/ihr"
	"countryrank/internal/ndcg"
	"countryrank/internal/rank"
	"countryrank/internal/relation"
	"countryrank/internal/routing"
	"countryrank/internal/sanitize"
	"countryrank/internal/topology"
)

// Options configures a pipeline run. The zero value reproduces the paper's
// defaults: the April 2021 scenario, a 50% geolocation threshold, 10%
// hegemony trim, and ground-truth relationships.
type Options struct {
	Seed      int64
	Scenario  topology.Scenario
	StubScale float64
	VPScale   float64
	// IPv6 builds a dual-stack world (see topology.Config.IPv6).
	IPv6 bool
	// Threshold is the prefix-geolocation majority threshold (default 0.5).
	Threshold float64
	// Trim is the per-side trim fraction for AH and CTI (default 0.10).
	Trim float64
	// InferRelationships switches the cone metrics from generator ground
	// truth to paths-inferred relationships (the ablation of DESIGN.md).
	InferRelationships bool
	// Routing tunes collection assembly (days, anomaly rates).
	Routing routing.BuildOptions
}

func (o Options) withDefaults() Options {
	if o.Threshold == 0 {
		o.Threshold = 0.5
	}
	if o.Trim == 0 {
		o.Trim = hegemony.DefaultTrim
	}
	return o
}

// Pipeline holds one fully-processed snapshot.
type Pipeline struct {
	Opt   Options
	World *topology.World
	Col   *routing.Collection
	DS    *sanitize.Dataset
	Geo   *geoloc.Table
	// Rels labels relationships for the cone and CTI metrics.
	Rels relation.Oracle
	// Inferred is set when InferRelationships was requested.
	Inferred *relation.Table

	// byPrefixCountry indexes accepted-record positions by the destination
	// prefix's country, the common slicing key of all views.
	byPrefixCountry map[countries.Code][]int32
}

// NewPipeline builds the synthetic world for the options and processes it.
func NewPipeline(opt Options) *Pipeline {
	opt = opt.withDefaults()
	w := topology.Build(topology.Config{
		Seed:      opt.Seed,
		Scenario:  opt.Scenario,
		StubScale: opt.StubScale,
		VPScale:   opt.VPScale,
		IPv6:      opt.IPv6,
	})
	col := routing.BuildCollection(w, opt.Routing)
	return process(w, col, opt)
}

// NewPipelineFrom processes an existing world and collection (e.g. one
// imported from MRT dumps).
func NewPipelineFrom(w *topology.World, col *routing.Collection, opt Options) *Pipeline {
	return process(w, col, opt.withDefaults())
}

func process(w *topology.World, col *routing.Collection, opt Options) *Pipeline {
	geoTable := geoloc.GeolocatePrefixes(w.Geo, col.AnnouncedPrefixes(), opt.Threshold)
	clique := map[asn.ASN]bool{}
	for _, a := range w.Clique {
		clique[a] = true
	}
	ds := sanitize.Run(col, sanitize.Config{
		Clique:       clique,
		Registry:     w.Graph.Registry(),
		RouteServers: w.Graph.RouteServers(),
		GeoTable:     geoTable,
	})
	p := &Pipeline{
		Opt:             opt,
		World:           w,
		Col:             col,
		DS:              ds,
		Geo:             geoTable,
		Rels:            w.Graph,
		byPrefixCountry: map[countries.Code][]int32{},
	}
	if opt.InferRelationships {
		seen := map[string]bool{}
		var paths []bgp.Path
		for i := 0; i < ds.Len(); i++ {
			_, _, path := ds.Record(i)
			k := path.Key()
			if !seen[k] {
				seen[k] = true
				paths = append(paths, path)
			}
		}
		p.Inferred = relation.Infer(paths, relation.InferClique(paths, 25))
		p.Rels = p.Inferred
	}
	for i := 0; i < ds.Len(); i++ {
		_, pfxIdx, _ := ds.Record(i)
		c := ds.PrefixCountry[pfxIdx]
		p.byPrefixCountry[c] = append(p.byPrefixCountry[c], int32(i))
	}
	return p
}

// ViewKind selects which VPs a country view uses (§3.2, Table 2).
type ViewKind uint8

const (
	// National: in-country VPs toward in-country prefixes.
	National ViewKind = iota
	// International: out-of-country VPs toward in-country prefixes.
	International
	// Global: all located VPs toward all geolocated prefixes.
	Global
	// Outbound: in-country VPs toward out-of-country prefixes — the
	// "paths out of a country" view the paper's §7 leaves as future work.
	Outbound
)

func (v ViewKind) String() string {
	switch v {
	case National:
		return "national"
	case International:
		return "international"
	case Global:
		return "global"
	case Outbound:
		return "outbound"
	}
	return fmt.Sprintf("ViewKind(%d)", v)
}

// ViewRecords returns the accepted-record positions of the (kind, country)
// view. The country is ignored for Global. The result aliases internal
// state for country views; callers must not mutate it.
func (p *Pipeline) ViewRecords(kind ViewKind, country countries.Code) []int32 {
	if kind == Global {
		return nil // nil means "all accepted records" to the metric packages
	}
	// Country views are never nil, even when empty: the metric packages
	// treat nil as "every record", which would silently turn a
	// no-in-country-VP national view into a global computation.
	out := []int32{}
	if kind == Outbound {
		// In-country VPs toward everyone else's prefixes: scan the full
		// accepted set (the prefix-country index cannot serve this view).
		for i := 0; i < p.DS.Len(); i++ {
			vpIdx, pfxIdx, _ := p.DS.Record(i)
			if p.DS.VPCountry[vpIdx] == country && p.DS.PrefixCountry[pfxIdx] != country {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range p.byPrefixCountry[country] {
		vpIdx, _, _ := p.DS.Record(int(i))
		vc := p.DS.VPCountry[vpIdx]
		switch kind {
		case National:
			if vc == country {
				out = append(out, i)
			}
		case International:
			if vc != "" && vc != country {
				out = append(out, i)
			}
		}
	}
	return out
}

// filterByVPs keeps only records whose VP is in keep. The result is never
// nil (see ViewRecords).
func filterByVPs(ds *sanitize.Dataset, recs []int32, keep map[int32]bool) []int32 {
	out := []int32{}
	visit := func(i int32) {
		vpIdx, _, _ := ds.Record(int(i))
		if keep[vpIdx] {
			out = append(out, i)
		}
	}
	if recs == nil {
		for i := 0; i < ds.Len(); i++ {
			visit(int32(i))
		}
	} else {
		for _, i := range recs {
			visit(i)
		}
	}
	return out
}

// Info returns the presentation metadata resolver for rankings.
func (p *Pipeline) Info() rank.InfoFunc {
	return func(a asn.ASN) rank.ASInfo {
		if node, ok := p.World.Graph.ByASN(a); ok {
			return rank.ASInfo{Name: node.Name, Country: node.Registered}
		}
		return rank.ASInfo{}
	}
}

// Metric identifies one of the rankings the pipeline can produce.
type Metric string

// The paper's metrics (§3) and baselines (§1.2.1, §1.3).
const (
	CCI Metric = "CCI"
	CCN Metric = "CCN"
	AHI Metric = "AHI"
	AHN Metric = "AHN"
	CCG Metric = "CCG"
	AHG Metric = "AHG"
	AHC Metric = "AHC"
	CTI Metric = "CTI"
)

// CountryRankings bundles the four country-specific rankings.
type CountryRankings struct {
	Country                countries.Code
	CCI, CCN, AHI, AHN     *rank.Ranking
	ConeIntl, ConeNational cone.Scores
}

// Country computes the paper's four metrics for one country.
func (p *Pipeline) Country(c countries.Code) *CountryRankings {
	intl := p.ViewRecords(International, c)
	natl := p.ViewRecords(National, c)
	info := p.Info()

	coneI := cone.Compute(p.DS, intl, p.Rels)
	coneN := cone.Compute(p.DS, natl, p.Rels)
	ahI := hegemony.Compute(p.DS, intl, p.Opt.Trim)
	ahN := hegemony.Compute(p.DS, natl, p.Opt.Trim)

	return &CountryRankings{
		Country:      c,
		CCI:          rank.New(string(CCI)+" "+string(c), coneI.Shares(), info, true),
		CCN:          rank.New(string(CCN)+" "+string(c), coneN.Shares(), info, true),
		AHI:          rank.New(string(AHI)+" "+string(c), ahI.Hegemony, info, true),
		AHN:          rank.New(string(AHN)+" "+string(c), ahN.Hegemony, info, true),
		ConeIntl:     coneI,
		ConeNational: coneN,
	}
}

// Global computes the global customer cone (CCG, AS Rank's metric) and
// global hegemony (AHG, IHR's metric) over all accepted records.
func (p *Pipeline) Global() (ccg, ahg *rank.Ranking) {
	info := p.Info()
	cs := cone.Compute(p.DS, nil, p.Rels)
	hs := hegemony.Compute(p.DS, nil, p.Opt.Trim)
	return rank.New(string(CCG), cs.Shares(), info, true),
		rank.New(string(AHG), hs.Hegemony, info, true)
}

// OutboundRankings bundles the §7 future-work "paths out of a country"
// metrics: which ASes carry a country's outbound reach.
type OutboundRankings struct {
	Country  countries.Code
	CCO, AHO *rank.Ranking
}

// Outbound computes cone and hegemony over the outbound view: in-country
// VPs toward out-of-country prefixes. The paper's §7 names this direction
// as future work; it answers "whose networks does this country rely on to
// reach the rest of the world?".
func (p *Pipeline) Outbound(c countries.Code) *OutboundRankings {
	recs := p.ViewRecords(Outbound, c)
	info := p.Info()
	cs := cone.Compute(p.DS, recs, p.Rels)
	hs := hegemony.Compute(p.DS, recs, p.Opt.Trim)
	return &OutboundRankings{
		Country: c,
		CCO:     rank.New("CCO "+string(c), cs.Shares(), info, true),
		AHO:     rank.New("AHO "+string(c), hs.Hegemony, info, true),
	}
}

// AHC computes the IHR country-level baseline for c.
func (p *Pipeline) AHC(c countries.Code) *rank.Ranking {
	s := ihr.Compute(p.DS, p.World.Graph, c, p.Opt.Trim)
	return rank.New(string(AHC)+" "+string(c), s.AHC, p.Info(), true)
}

// CTI computes the country-level transit influence baseline for c over its
// international view.
func (p *Pipeline) CTI(c countries.Code) *rank.Ranking {
	recs := p.ViewRecords(International, c)
	s := cti.Compute(p.DS, recs, p.Rels, p.Opt.Trim)
	return rank.New(string(CTI)+" "+string(c), s.CTI, p.Info(), true)
}

// rankFor computes one country metric over an explicit record subset; used
// by the stability analysis.
func (p *Pipeline) rankFor(m Metric, recs []int32) *rank.Ranking {
	switch m {
	case CCI, CCN, CCG:
		return rank.New(string(m), cone.Compute(p.DS, recs, p.Rels).Shares(), nil, true)
	case AHI, AHN, AHG:
		return rank.New(string(m), hegemony.Compute(p.DS, recs, p.Opt.Trim).Hegemony, nil, true)
	}
	panic(fmt.Sprintf("core: metric %q has no subset form", m))
}

// viewKindOf maps a country metric to its view.
func viewKindOf(m Metric) ViewKind {
	switch m {
	case CCI, AHI:
		return International
	case CCN, AHN:
		return National
	}
	return Global
}

// StabilityPoint is one sample size of a Figure 4 / Figure 5 curve.
type StabilityPoint struct {
	VPs      int
	MeanNDCG float64
	Trials   int
	// MeanTau and MeanJaccard are the alternative list-similarity measures
	// §4.1 implicitly rejects in favor of NDCG, computed for the ablation.
	MeanTau     float64
	MeanJaccard float64
}

// Stability measures how the (metric, country) top-10 ranking degrades as
// VPs are removed (§4): for each requested sample size it draws trials
// random VP subsets, recomputes the metric, and averages NDCG (plus the
// Kendall-tau and Jaccard ablation measures) against the full-view ranking.
func (p *Pipeline) Stability(m Metric, c countries.Code, sizes []int, trials int, seed int64) []StabilityPoint {
	kind := viewKindOf(m)
	full := p.ViewRecords(kind, c)
	fullRank := p.rankFor(m, full)
	fullVals := fullRank.Values()
	fullOrder := fullRank.TopASNs(ndcg.DefaultK)

	// The view's VP population.
	var vps []int32
	seen := map[int32]bool{}
	for _, i := range full {
		vpIdx, _, _ := p.DS.Record(int(i))
		if !seen[vpIdx] {
			seen[vpIdx] = true
			vps = append(vps, vpIdx)
		}
	}

	rng := rand.New(rand.NewSource(seed))
	var out []StabilityPoint
	for _, n := range sizes {
		if n <= 0 || n > len(vps) {
			continue
		}
		var sumNDCG, sumTau, sumJac float64
		for trial := 0; trial < trials; trial++ {
			perm := rng.Perm(len(vps))
			keep := map[int32]bool{}
			for _, j := range perm[:n] {
				keep[vps[j]] = true
			}
			recs := filterByVPs(p.DS, full, keep)
			sample := p.rankFor(m, recs)
			top := sample.TopASNs(ndcg.DefaultK)
			sumNDCG += ndcg.NDCG(top, fullVals, fullOrder, ndcg.DefaultK)
			sumTau += ndcg.KendallTau(top, fullOrder, ndcg.DefaultK)
			sumJac += ndcg.Jaccard(top, fullOrder, ndcg.DefaultK)
		}
		out = append(out, StabilityPoint{
			VPs:         n,
			MeanNDCG:    sumNDCG / float64(trials),
			MeanTau:     sumTau / float64(trials),
			MeanJaccard: sumJac / float64(trials),
			Trials:      trials,
		})
	}
	return out
}

// ViewVPCount returns how many distinct VPs contribute to a view.
func (p *Pipeline) ViewVPCount(kind ViewKind, c countries.Code) int {
	seen := map[int32]bool{}
	recs := p.ViewRecords(kind, c)
	for _, i := range recs {
		vpIdx, _, _ := p.DS.Record(int(i))
		seen[vpIdx] = true
	}
	return len(seen)
}
