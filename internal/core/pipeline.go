// Package core assembles the paper's end-to-end pipeline (Figure 6): build
// or ingest a BGP path collection, sanitize it (§3.1), geolocate prefixes
// and vantage points (§3.2), slice the accepted records into national /
// international / global views, and compute the four country-specific
// ranking metrics — CCI, CCN, AHI, AHN — alongside the global (CCG, AHG)
// and baseline (AHC, CTI) metrics, plus the NDCG stability analysis of §4.
package core

import (
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"time"

	"countryrank/internal/asn"
	"countryrank/internal/bgp"
	"countryrank/internal/cone"
	"countryrank/internal/countries"
	"countryrank/internal/cti"
	"countryrank/internal/geoloc"
	"countryrank/internal/hegemony"
	"countryrank/internal/ihr"
	"countryrank/internal/ndcg"
	"countryrank/internal/obs"
	"countryrank/internal/par"
	"countryrank/internal/rank"
	"countryrank/internal/relation"
	"countryrank/internal/routing"
	"countryrank/internal/sanitize"
	"countryrank/internal/topology"
)

// Cache effectiveness counters and per-kernel duration histograms. The
// cache counters fire once per ViewRecords / fullRankFor call; the kernel
// histograms wrap whole kernel invocations (Country, Global, AHC, CTI) —
// never the per-trial stability loop, whose cost the trials counter tracks
// instead.
var (
	mViewHits = obs.NewCounter("countryrank_core_view_cache_hits_total",
		"ViewRecords calls served from the per-(kind, country) cache")
	mViewMisses = obs.NewCounter("countryrank_core_view_cache_misses_total",
		"ViewRecords calls that computed a fresh view")
	mRankHits = obs.NewCounter("countryrank_core_rank_cache_hits_total",
		"full-view baseline rankings served from cache")
	mRankMisses = obs.NewCounter("countryrank_core_rank_cache_misses_total",
		"full-view baseline rankings computed fresh")
	mTrials = obs.NewCounter("countryrank_core_stability_trials_total",
		"stability downsampling trials executed")

	mKernelCone = obs.NewHistogram("countryrank_core_kernel_cone_seconds",
		"duration of one customer-cone kernel run", nil)
	mKernelHegemony = obs.NewHistogram("countryrank_core_kernel_hegemony_seconds",
		"duration of one AS-hegemony kernel run", nil)
	mKernelCTI = obs.NewHistogram("countryrank_core_kernel_cti_seconds",
		"duration of one country transit influence kernel run", nil)
	mKernelIHR = obs.NewHistogram("countryrank_core_kernel_ihr_seconds",
		"duration of one IHR country-hegemony kernel run", nil)
)

// timeKernel starts a kernel stopwatch; invoke the returned func to record
// the elapsed time, e.g. defer timeKernel(mKernelCone)().
func timeKernel(h *obs.Histogram) func() {
	start := time.Now()
	return func() { h.Observe(time.Since(start)) }
}

// Sentinels for the Options fields whose useful ablation value collides
// with the zero value. The zero value of Options must keep reproducing the
// paper's defaults, so "explicitly zero" needs its own spelling: any
// negative value works, these constants are the documented ones.
const (
	// NoTrim disables hegemony/CTI trimming (the trim-0 ablation of
	// DESIGN.md). Options.Trim == 0 still means "paper default" (10%).
	NoTrim = -1.0
	// PluralityThreshold drops the prefix-geolocation majority requirement:
	// any plurality country wins. Options.Threshold == 0 still means the
	// paper's 50% majority.
	PluralityThreshold = -1.0
	// NoQuorum disables the partial-coverage gate entirely: any nonzero
	// coverage is processed (and labelled). Options.Quorum == 0 still means
	// the default 50% quorum.
	NoQuorum = -1.0
)

// Options configures a pipeline run. The zero value reproduces the paper's
// defaults: the April 2021 scenario, a 50% geolocation threshold, 10%
// hegemony trim, and ground-truth relationships.
type Options struct {
	Seed      int64
	Scenario  topology.Scenario
	StubScale float64
	VPScale   float64
	// IPv6 builds a dual-stack world (see topology.Config.IPv6).
	IPv6 bool
	// Threshold is the prefix-geolocation majority threshold. Zero selects
	// the paper's 0.5; PluralityThreshold (or any negative value) selects
	// an actual 0 threshold.
	Threshold float64
	// Trim is the per-side trim fraction for AH and CTI. Zero selects the
	// paper's 0.10; NoTrim (or any negative value) disables trimming.
	Trim float64
	// InferRelationships switches the cone metrics from generator ground
	// truth to paths-inferred relationships (the ablation of DESIGN.md).
	InferRelationships bool
	// Quorum is the minimum delivered fraction of expected VPs a partial
	// collection must reach (NewPipelineFromPartial); below it the run
	// fails loudly. Zero selects the default 0.5; NoQuorum (or any
	// negative value) disables the gate.
	Quorum float64
	// Routing tunes collection assembly (days, anomaly rates).
	Routing routing.BuildOptions
}

func (o Options) withDefaults() Options {
	switch {
	case o.Threshold == 0:
		o.Threshold = 0.5
	case o.Threshold < 0:
		o.Threshold = 0
	}
	switch {
	case o.Trim == 0:
		o.Trim = hegemony.DefaultTrim
	case o.Trim < 0:
		o.Trim = 0
	}
	switch {
	case o.Quorum == 0:
		o.Quorum = 0.5
	case o.Quorum < 0:
		o.Quorum = 0
	}
	return o
}

// Pipeline holds one fully-processed snapshot.
type Pipeline struct {
	Opt   Options
	World *topology.World
	Col   *routing.Collection
	DS    *sanitize.Dataset
	Geo   *geoloc.Table
	// Rels labels relationships for the cone and CTI metrics.
	Rels relation.Oracle
	// Inferred is set when InferRelationships was requested.
	Inferred *relation.Table
	// Coverage is set when the pipeline was built from a partial collection
	// (NewPipelineFromPartial); nil means a complete run. When it reports
	// degradation, every ranking name carries the report as a label.
	Coverage *Coverage

	// byPrefixCountry indexes accepted-record positions by the destination
	// prefix's country, the common slicing key of all views.
	byPrefixCountry map[countries.Code][]int32
	// byVP indexes accepted-record positions by vantage point (ascending),
	// and vpsByCountry groups located VP indexes by country; together they
	// serve the Outbound view and VP-subset filtering without scanning the
	// full dataset.
	byVP         [][]int32
	vpsByCountry map[countries.Code][]int32
	// coneStarts / ctiDepths hold each record's precomputed chain
	// resolution against Rels (view-independent), so per-trial kernel runs
	// skip the relationship oracle entirely.
	coneStarts []int32
	ctiDepths  []int32

	// viewCache memoizes ViewRecords per (kind, country): the experiment
	// fan-out recomputes the same views for hundreds of trials. Guarded by
	// viewMu because experiment loops run across a worker pool.
	viewMu    sync.RWMutex
	viewCache map[viewKey][]int32

	// rankCache memoizes the full-view baseline ranking per (metric,
	// country): every Stability call compares its trials against the same
	// seed-independent full ranking, so recomputing it per call would
	// dwarf the trials themselves. Cached rankings are shared; callers
	// must treat them as immutable.
	rankMu    sync.RWMutex
	rankCache map[rankKey]*rank.Ranking

	// inViewPool recycles Stability's per-call view-membership buffers
	// (kept all-false between uses; see Stability).
	inViewPool sync.Pool
}

// viewKey identifies one cached country view.
type viewKey struct {
	kind    ViewKind
	country countries.Code
}

// rankKey identifies one cached full-view ranking.
type rankKey struct {
	m       Metric
	country countries.Code
}

// NewPipeline builds the synthetic world for the options and processes it.
func NewPipeline(opt Options) *Pipeline {
	sp := obs.StartSpan("pipeline")
	defer sp.End()
	opt = opt.withDefaults()
	ts := sp.Child("topology")
	w := topology.Build(topology.Config{
		Seed:      opt.Seed,
		Scenario:  opt.Scenario,
		StubScale: opt.StubScale,
		VPScale:   opt.VPScale,
		IPv6:      opt.IPv6,
	})
	ts.End()
	ps := sp.Child("propagation")
	col := routing.BuildCollection(w, opt.Routing)
	ps.AddItems(int64(col.NumRecords()), "records")
	ps.End()
	return process(w, col, opt, sp)
}

// NewPipelineFrom processes an existing world and collection (e.g. one
// imported from MRT dumps).
func NewPipelineFrom(w *topology.World, col *routing.Collection, opt Options) *Pipeline {
	sp := obs.StartSpan("pipeline")
	defer sp.End()
	return process(w, col, opt.withDefaults(), sp)
}

func process(w *topology.World, col *routing.Collection, opt Options, sp *obs.Span) *Pipeline {
	gs := sp.Child("geolocate")
	geoTable := geoloc.GeolocatePrefixes(w.Geo, col.AnnouncedPrefixes(), opt.Threshold)
	gs.End()
	clique := map[asn.ASN]bool{}
	for _, a := range w.Clique {
		clique[a] = true
	}
	ss := sp.Child("sanitize")
	ds := sanitize.Run(col, sanitize.Config{
		Clique:       clique,
		Registry:     w.Graph.Registry(),
		RouteServers: w.Graph.RouteServers(),
		GeoTable:     geoTable,
	})
	ss.AddItems(int64(ds.Len()), "accepted")
	ss.End()
	p := &Pipeline{
		Opt:             opt,
		World:           w,
		Col:             col,
		DS:              ds,
		Geo:             geoTable,
		Rels:            w.Graph,
		byPrefixCountry: map[countries.Code][]int32{},
		vpsByCountry:    map[countries.Code][]int32{},
		viewCache:       map[viewKey][]int32{},
		rankCache:       map[rankKey]*rank.Ranking{},
	}
	if opt.InferRelationships {
		is := sp.Child("infer-relationships")
		seen := map[string]bool{}
		var paths []bgp.Path
		for i := 0; i < ds.Len(); i++ {
			_, _, path := ds.Record(i)
			k := path.Key()
			if !seen[k] {
				seen[k] = true
				paths = append(paths, path)
			}
		}
		p.Inferred = relation.Infer(paths, relation.InferClique(paths, 25))
		p.Rels = p.Inferred
		is.End()
	}
	xs := sp.Child("index")
	p.byVP = make([][]int32, len(ds.VPCountry))
	for i := 0; i < ds.Len(); i++ {
		vpIdx, pfxIdx, _ := ds.Record(i)
		c := ds.PrefixCountry[pfxIdx]
		p.byPrefixCountry[c] = append(p.byPrefixCountry[c], int32(i))
		p.byVP[vpIdx] = append(p.byVP[vpIdx], int32(i))
	}
	for v, c := range ds.VPCountry {
		if c != "" {
			p.vpsByCountry[c] = append(p.vpsByCountry[c], int32(v))
		}
	}
	xs.End()
	cs := sp.Child("precompute")
	p.coneStarts = cone.Starts(ds, p.Rels)
	p.ctiDepths = cti.Depths(ds, p.Rels)
	cs.End()
	return p
}

// ViewKind selects which VPs a country view uses (§3.2, Table 2).
type ViewKind uint8

const (
	// National: in-country VPs toward in-country prefixes.
	National ViewKind = iota
	// International: out-of-country VPs toward in-country prefixes.
	International
	// Global: all located VPs toward all geolocated prefixes.
	Global
	// Outbound: in-country VPs toward out-of-country prefixes — the
	// "paths out of a country" view the paper's §7 leaves as future work.
	Outbound
)

func (v ViewKind) String() string {
	switch v {
	case National:
		return "national"
	case International:
		return "international"
	case Global:
		return "global"
	case Outbound:
		return "outbound"
	}
	return fmt.Sprintf("ViewKind(%d)", v)
}

// ViewRecords returns the accepted-record positions of the (kind, country)
// view. The country is ignored for Global. Results are cached per
// (kind, country) and alias internal state; callers must not mutate them.
// Safe for concurrent use.
func (p *Pipeline) ViewRecords(kind ViewKind, country countries.Code) []int32 {
	if kind == Global {
		return nil // nil means "all accepted records" to the metric packages
	}
	k := viewKey{kind, country}
	p.viewMu.RLock()
	out, ok := p.viewCache[k]
	p.viewMu.RUnlock()
	if ok {
		mViewHits.Inc()
		return out
	}
	mViewMisses.Inc()
	out = p.computeView(kind, country)
	p.viewMu.Lock()
	if prior, ok := p.viewCache[k]; ok {
		out = prior // another worker won the race; keep one canonical slice
	} else {
		p.viewCache[k] = out
	}
	p.viewMu.Unlock()
	return out
}

func (p *Pipeline) computeView(kind ViewKind, country countries.Code) []int32 {
	// Country views are never nil, even when empty: the metric packages
	// treat nil as "every record", which would silently turn a
	// no-in-country-VP national view into a global computation.
	out := []int32{}
	if kind == Outbound {
		// In-country VPs toward everyone else's prefixes, served by the
		// VP index (the prefix-country index cannot serve this view);
		// sorted back to record order, the order a full scan would give.
		for _, vpIdx := range p.vpsByCountry[country] {
			for _, i := range p.byVP[vpIdx] {
				_, pfxIdx, _ := p.DS.Record(int(i))
				if p.DS.PrefixCountry[pfxIdx] != country {
					out = append(out, i)
				}
			}
		}
		slices.Sort(out)
		return out
	}
	for _, i := range p.byPrefixCountry[country] {
		vpIdx, _, _ := p.DS.Record(int(i))
		vc := p.DS.VPCountry[vpIdx]
		switch kind {
		case National:
			if vc == country {
				out = append(out, i)
			}
		case International:
			if vc != "" && vc != country {
				out = append(out, i)
			}
		}
	}
	return out
}

// recordsInView collects, via the VP index, the records of the given VPs
// that belong to the view marked in inView (nil means every record). The result is grouped by VP
// with each VP's records in ascending record order — not globally sorted:
// every metric kernel either buckets by VP (preserving within-VP order,
// which is what their bit-identity proofs rely on) or accumulates
// order-free sums, so the global interleaving is irrelevant and the sort
// would only burn time in the per-trial hot path. Never nil (see
// computeView).
func (p *Pipeline) recordsInView(inView []bool, vps []int32) []int32 {
	out := []int32{}
	for _, vpIdx := range vps {
		for _, i := range p.byVP[vpIdx] {
			if inView == nil || inView[i] {
				out = append(out, i)
			}
		}
	}
	return out
}

// Info returns the presentation metadata resolver for rankings.
func (p *Pipeline) Info() rank.InfoFunc {
	return func(a asn.ASN) rank.ASInfo {
		if node, ok := p.World.Graph.ByASN(a); ok {
			return rank.ASInfo{Name: node.Name, Country: node.Registered}
		}
		return rank.ASInfo{}
	}
}

// Metric identifies one of the rankings the pipeline can produce.
type Metric string

// The paper's metrics (§3) and baselines (§1.2.1, §1.3).
const (
	CCI Metric = "CCI"
	CCN Metric = "CCN"
	AHI Metric = "AHI"
	AHN Metric = "AHN"
	CCG Metric = "CCG"
	AHG Metric = "AHG"
	AHC Metric = "AHC"
	CTI Metric = "CTI"
)

// CountryRankings bundles the four country-specific rankings.
type CountryRankings struct {
	Country                countries.Code
	CCI, CCN, AHI, AHN     *rank.Ranking
	ConeIntl, ConeNational cone.Scores
}

// Country computes the paper's four metrics for one country.
func (p *Pipeline) Country(c countries.Code) *CountryRankings {
	intl := p.ViewRecords(International, c)
	natl := p.ViewRecords(National, c)
	info := p.Info()

	// The four metrics are independent; fan them out.
	var coneI, coneN cone.Scores
	var ahI, ahN hegemony.Scores
	par.Do(
		func() { defer timeKernel(mKernelCone)(); coneI = cone.ComputeFrom(p.DS, intl, p.Rels, p.coneStarts) },
		func() { defer timeKernel(mKernelCone)(); coneN = cone.ComputeFrom(p.DS, natl, p.Rels, p.coneStarts) },
		func() { defer timeKernel(mKernelHegemony)(); ahI = hegemony.Compute(p.DS, intl, p.Opt.Trim) },
		func() { defer timeKernel(mKernelHegemony)(); ahN = hegemony.Compute(p.DS, natl, p.Opt.Trim) },
	)

	return &CountryRankings{
		Country:      c,
		CCI:          rank.New(p.label(string(CCI)+" "+string(c)), coneI.Shares(), info, true),
		CCN:          rank.New(p.label(string(CCN)+" "+string(c)), coneN.Shares(), info, true),
		AHI:          rank.New(p.label(string(AHI)+" "+string(c)), ahI.Hegemony, info, true),
		AHN:          rank.New(p.label(string(AHN)+" "+string(c)), ahN.Hegemony, info, true),
		ConeIntl:     coneI,
		ConeNational: coneN,
	}
}

// Global computes the global customer cone (CCG, AS Rank's metric) and
// global hegemony (AHG, IHR's metric) over all accepted records.
func (p *Pipeline) Global() (ccg, ahg *rank.Ranking) {
	info := p.Info()
	doneC := timeKernel(mKernelCone)
	cs := cone.ComputeFrom(p.DS, nil, p.Rels, p.coneStarts)
	doneC()
	doneH := timeKernel(mKernelHegemony)
	hs := hegemony.Compute(p.DS, nil, p.Opt.Trim)
	doneH()
	return rank.New(p.label(string(CCG)), cs.Shares(), info, true),
		rank.New(p.label(string(AHG)), hs.Hegemony, info, true)
}

// OutboundRankings bundles the §7 future-work "paths out of a country"
// metrics: which ASes carry a country's outbound reach.
type OutboundRankings struct {
	Country  countries.Code
	CCO, AHO *rank.Ranking
}

// Outbound computes cone and hegemony over the outbound view: in-country
// VPs toward out-of-country prefixes. The paper's §7 names this direction
// as future work; it answers "whose networks does this country rely on to
// reach the rest of the world?".
func (p *Pipeline) Outbound(c countries.Code) *OutboundRankings {
	recs := p.ViewRecords(Outbound, c)
	info := p.Info()
	doneC := timeKernel(mKernelCone)
	cs := cone.ComputeFrom(p.DS, recs, p.Rels, p.coneStarts)
	doneC()
	doneH := timeKernel(mKernelHegemony)
	hs := hegemony.Compute(p.DS, recs, p.Opt.Trim)
	doneH()
	return &OutboundRankings{
		Country: c,
		CCO:     rank.New(p.label("CCO "+string(c)), cs.Shares(), info, true),
		AHO:     rank.New(p.label("AHO "+string(c)), hs.Hegemony, info, true),
	}
}

// AHC computes the IHR country-level baseline for c.
func (p *Pipeline) AHC(c countries.Code) *rank.Ranking {
	defer timeKernel(mKernelIHR)()
	s := ihr.Compute(p.DS, p.World.Graph, c, p.Opt.Trim)
	return rank.New(p.label(string(AHC)+" "+string(c)), s.AHC, p.Info(), true)
}

// CTI computes the country-level transit influence baseline for c over its
// international view.
func (p *Pipeline) CTI(c countries.Code) *rank.Ranking {
	recs := p.ViewRecords(International, c)
	defer timeKernel(mKernelCTI)()
	s := cti.ComputeFrom(p.DS, recs, p.Rels, p.ctiDepths, p.Opt.Trim)
	return rank.New(p.label(string(CTI)+" "+string(c)), s.CTI, p.Info(), true)
}

// rankFor computes one country metric over an explicit record subset; used
// by the stability analysis.
func (p *Pipeline) rankFor(m Metric, recs []int32) *rank.Ranking {
	switch m {
	case CCI, CCN, CCG:
		return rank.New(string(m), cone.ComputeAddresses(p.DS, recs, p.Rels, p.coneStarts).Shares(), nil, true)
	case AHI, AHN, AHG:
		return rank.New(string(m), hegemony.Compute(p.DS, recs, p.Opt.Trim).Hegemony, nil, true)
	}
	panic(fmt.Sprintf("core: metric %q has no subset form", m))
}

// sampleTop computes a trial's top-k ASNs without building a full Ranking:
// the stability loop only consumes the top list, so sorting and indexing
// the whole sample would be wasted. Cone trials select on raw address
// weights — the exact uint64 values whose shares rank.New would sort by —
// keeping the selection deterministic.
func (p *Pipeline) sampleTop(m Metric, recs []int32, k int) []asn.ASN {
	switch m {
	case CCI, CCN, CCG:
		return topK(cone.ComputeAddresses(p.DS, recs, p.Rels, p.coneStarts).Addresses, k)
	case AHI, AHN, AHG:
		return topK(hegemony.Compute(p.DS, recs, p.Opt.Trim).Hegemony, k)
	}
	panic(fmt.Sprintf("core: metric %q has no subset form", m))
}

// topK selects the k highest-valued ASes (descending value, ascending ASN
// ties, zeros dropped — rank.New's ordering) by insertion into a small
// sorted window.
func topK[V interface{ ~uint64 | ~float64 }](values map[asn.ASN]V, k int) []asn.ASN {
	type ent struct {
		a asn.ASN
		v V
	}
	ranksBefore := func(x, y ent) bool {
		if x.v != y.v {
			return x.v > y.v
		}
		return x.a < y.a
	}
	best := make([]ent, 0, k)
	for a, v := range values {
		if v == 0 {
			continue
		}
		e := ent{a, v}
		if len(best) < k {
			best = append(best, e)
		} else if ranksBefore(e, best[len(best)-1]) {
			best[len(best)-1] = e
		} else {
			continue
		}
		for i := len(best) - 1; i > 0 && ranksBefore(best[i], best[i-1]); i-- {
			best[i], best[i-1] = best[i-1], best[i]
		}
	}
	out := make([]asn.ASN, len(best))
	for i, e := range best {
		out[i] = e.a
	}
	return out
}

// fullRankFor returns the memoized full-view ranking for (m, c). Safe for
// concurrent use; the result must not be mutated.
func (p *Pipeline) fullRankFor(m Metric, c countries.Code, full []int32) *rank.Ranking {
	k := rankKey{m, c}
	p.rankMu.RLock()
	r, ok := p.rankCache[k]
	p.rankMu.RUnlock()
	if ok {
		mRankHits.Inc()
		return r
	}
	mRankMisses.Inc()
	r = p.rankFor(m, full)
	p.rankMu.Lock()
	if prior, ok := p.rankCache[k]; ok {
		r = prior // keep one canonical ranking per key
	} else {
		p.rankCache[k] = r
	}
	p.rankMu.Unlock()
	return r
}

// viewKindOf maps a country metric to its view.
func viewKindOf(m Metric) ViewKind {
	switch m {
	case CCI, AHI:
		return International
	case CCN, AHN:
		return National
	}
	return Global
}

// StabilityPoint is one sample size of a Figure 4 / Figure 5 curve.
type StabilityPoint struct {
	VPs      int
	MeanNDCG float64
	Trials   int
	// MeanTau and MeanJaccard are the alternative list-similarity measures
	// §4.1 implicitly rejects in favor of NDCG, computed for the ablation.
	MeanTau     float64
	MeanJaccard float64
}

// Stability measures how the (metric, country) top-10 ranking degrades as
// VPs are removed (§4): for each requested sample size it draws trials
// random VP subsets, recomputes the metric, and averages NDCG (plus the
// Kendall-tau and Jaccard ablation measures) against the full-view ranking.
//
// Trials fan out across a bounded worker pool. Each (size, trial) cell
// draws its VP subset from its own sub-seed derived from seed, and the
// per-size means sum in trial order, so the output depends only on seed —
// never on scheduling.
func (p *Pipeline) Stability(m Metric, c countries.Code, sizes []int, trials int, seed int64) []StabilityPoint {
	sp := obs.StartSpan("stability " + string(m) + " " + string(c))
	sp.AddItems(0, "trials")
	defer sp.End()
	kind := viewKindOf(m)
	full := p.ViewRecords(kind, c)
	fullRank := p.fullRankFor(m, c, full)
	fullVals := fullRank.Values()
	fullOrder := fullRank.TopASNs(ndcg.DefaultK)

	// Mark the view for recordsInView; a nil marker means every record.
	// The buffer is pooled and kept all-false between uses, so marking
	// costs O(view), not O(dataset), per call.
	var inView []bool
	if full != nil {
		buf := p.inViewPool.Get()
		if buf == nil || cap(buf.([]bool)) < p.DS.Len() {
			inView = make([]bool, p.DS.Len())
		} else {
			inView = buf.([]bool)[:p.DS.Len()]
		}
		for _, i := range full {
			inView[i] = true
		}
		defer func() {
			for _, i := range full {
				inView[i] = false
			}
			p.inViewPool.Put(inView) //nolint:staticcheck // slice header boxing is fine here
		}()
	}

	// The view's VP population, in first-appearance order.
	var vps []int32
	seen := make([]bool, len(p.DS.VPCountry))
	collect := func(i int32) {
		vpIdx, _, _ := p.DS.Record(int(i))
		if !seen[vpIdx] {
			seen[vpIdx] = true
			vps = append(vps, vpIdx)
		}
	}
	if full == nil {
		for i := 0; i < p.DS.Len(); i++ {
			collect(int32(i))
		}
	} else {
		for _, i := range full {
			collect(i)
		}
	}

	var valid []int
	for _, n := range sizes {
		if n > 0 && n <= len(vps) {
			valid = append(valid, n)
		}
	}

	type cell struct{ ndcgV, tau, jac float64 }
	results := make([][]cell, len(valid))
	for si := range results {
		results[si] = make([]cell, trials)
	}
	par.ForEach(len(valid)*trials, func(job int) {
		si, trial := job/trials, job%trials
		n := valid[si]
		rng := rand.New(rand.NewSource(subSeed(seed, si, trial)))
		perm := rng.Perm(len(vps))
		keep := make([]int32, n)
		for k, j := range perm[:n] {
			keep[k] = vps[j]
		}
		recs := p.recordsInView(inView, keep)
		top := p.sampleTop(m, recs, ndcg.DefaultK)
		results[si][trial] = cell{
			ndcgV: ndcg.NDCG(top, fullVals, fullOrder, ndcg.DefaultK),
			tau:   ndcg.KendallTau(top, fullOrder, ndcg.DefaultK),
			jac:   ndcg.Jaccard(top, fullOrder, ndcg.DefaultK),
		}
		mTrials.Inc()
		sp.AddItems(1, "")
	})

	var out []StabilityPoint
	for si, n := range valid {
		var sumNDCG, sumTau, sumJac float64
		for _, r := range results[si] {
			sumNDCG += r.ndcgV
			sumTau += r.tau
			sumJac += r.jac
		}
		out = append(out, StabilityPoint{
			VPs:         n,
			MeanNDCG:    sumNDCG / float64(trials),
			MeanTau:     sumTau / float64(trials),
			MeanJaccard: sumJac / float64(trials),
			Trials:      trials,
		})
	}
	return out
}

// subSeed derives the deterministic RNG seed for one (size, trial) cell
// from the parent seed via a splitmix64-style mix, so trials are
// independent of each other and of scheduling order.
func subSeed(seed int64, sizeIdx, trial int) int64 {
	x := uint64(seed) ^ 0x9E3779B97F4A7C15
	x ^= uint64(sizeIdx+1) * 0xBF58476D1CE4E5B9
	x ^= uint64(trial+1) * 0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// ViewVPCount returns how many distinct VPs contribute to a view.
func (p *Pipeline) ViewVPCount(kind ViewKind, c countries.Code) int {
	seen := make([]bool, len(p.DS.VPCountry))
	n := 0
	for _, i := range p.ViewRecords(kind, c) {
		vpIdx, _, _ := p.DS.Record(int(i))
		if !seen[vpIdx] {
			seen[vpIdx] = true
			n++
		}
	}
	return n
}
