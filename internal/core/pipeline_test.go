package core

import (
	"testing"

	"countryrank/internal/topology"
)

// smallOpts keeps pipeline tests quick.
func smallOpts() Options {
	return Options{Seed: 3, StubScale: 0.15, VPScale: 0.2}
}

// midOpts is big enough for ranking shapes to emerge.
func midOpts() Options {
	return Options{Seed: 1, StubScale: 0.5, VPScale: 0.5}
}

func TestPipelineDeterministic(t *testing.T) {
	a := NewPipeline(smallOpts())
	b := NewPipeline(smallOpts())
	if a.DS.Stats != b.DS.Stats {
		t.Fatalf("stats differ: %+v vs %+v", a.DS.Stats, b.DS.Stats)
	}
	ra := a.Country("AU").CCI
	rb := b.Country("AU").CCI
	if ra.Len() != rb.Len() {
		t.Fatal("ranking sizes differ")
	}
	for i := range ra.Entries {
		if ra.Entries[i] != rb.Entries[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestViewPartition(t *testing.T) {
	p := NewPipeline(smallOpts())
	for _, c := range p.DS.CountriesWithPrefixes() {
		nat := p.ViewRecords(National, c)
		intl := p.ViewRecords(International, c)
		if len(nat)+len(intl) != len(p.byPrefixCountry[c]) {
			t.Fatalf("%s: views do not partition: %d + %d != %d",
				c, len(nat), len(intl), len(p.byPrefixCountry[c]))
		}
		// Spot-check membership invariants.
		for _, i := range nat {
			vpIdx, pfxIdx, _ := p.DS.Record(int(i))
			if p.DS.VPCountry[vpIdx] != c || p.DS.PrefixCountry[pfxIdx] != c {
				t.Fatalf("%s national view violation", c)
			}
		}
		for _, i := range intl {
			vpIdx, pfxIdx, _ := p.DS.Record(int(i))
			if p.DS.VPCountry[vpIdx] == c || p.DS.PrefixCountry[pfxIdx] != c {
				t.Fatalf("%s international view violation", c)
			}
		}
	}
	if p.ViewRecords(Global, "") != nil {
		t.Error("global view should be nil (= all records)")
	}
}

func TestCaseStudyShapes(t *testing.T) {
	p := NewPipeline(midOpts())

	au := p.Country("AU")
	if top := au.AHN.TopASNs(1); len(top) == 0 || top[0] != 1221 {
		t.Errorf("AU AHN top = %v, want Telstra 1221", top)
	}
	if rk, _ := au.CCN.RankOf(4826); rk == 0 || rk > 3 {
		t.Errorf("AU CCN rank of Vocus = %d, want near the top", rk)
	}
	if rk, _ := au.CCI.RankOf(1299); rk == 0 || rk > 3 {
		t.Errorf("AU CCI rank of Arelion = %d, want near the top", rk)
	}
	// Telstra's international AS matters internationally but not nationally.
	intlRank, _ := au.AHI.RankOf(4637)
	natVal := au.AHN.ValueOf(4637)
	if intlRank == 0 || intlRank > 10 {
		t.Errorf("AU AHI rank of Telstra Global = %d", intlRank)
	}
	if natVal > 0.05 {
		t.Errorf("AU AHN value of Telstra Global = %f, want ≈0 (§5.1)", natVal)
	}

	jp := p.Country("JP")
	if top := jp.CCI.TopASNs(1); top[0] != 2914 {
		t.Errorf("JP CCI top = %v, want NTT America", top)
	}
	if rk, _ := jp.AHN.RankOf(2516); rk == 0 || rk > 3 {
		t.Errorf("JP AHN rank of KDDI = %d", rk)
	}

	ru := p.Country("RU")
	if rk, _ := ru.AHN.RankOf(12389); rk != 1 {
		t.Errorf("RU AHN rank of Rostelecom = %d, want 1", rk)
	}
	// Foreign multinationals dominate Russia's international cone (§5.3).
	foreign := 0
	for _, e := range ru.CCI.Top(3) {
		if e.Info.Country != "RU" {
			foreign++
		}
	}
	if foreign < 2 {
		t.Errorf("RU CCI top-3 should be mostly foreign, got %d foreign", foreign)
	}

	us := p.Country("US")
	if top := us.CCI.TopASNs(1); top[0] != 3356 {
		t.Errorf("US CCI top = %v, want Lumen", top)
	}
}

func TestGlobalRankings(t *testing.T) {
	p := NewPipeline(midOpts())
	ccg, ahg := p.Global()
	if ccg.Len() == 0 || ahg.Len() == 0 {
		t.Fatal("empty global rankings")
	}
	// The global cone leaders must be clique members.
	cliqueSet := map[uint32]bool{}
	for _, a := range p.World.Clique {
		cliqueSet[uint32(a)] = true
	}
	for _, e := range ccg.Top(3) {
		if !cliqueSet[uint32(e.ASN)] {
			t.Errorf("CCG top-3 contains non-clique %v", e.ASN)
		}
	}
	// An AS's global cone bounds its hegemony ordering loosely; just check
	// values are sane fractions.
	for _, e := range ahg.Top(20) {
		if e.Value < 0 || e.Value > 1 {
			t.Errorf("AHG value out of range: %+v", e)
		}
	}
}

func TestAHCAndCTI(t *testing.T) {
	p := NewPipeline(midOpts())
	ahc := p.AHC("AU")
	if ahc.Len() == 0 {
		t.Fatal("empty AHC")
	}
	if rk, ok := ahc.RankOf(1221); !ok || rk > 10 {
		t.Errorf("AHC rank of Telstra = %d, %v", rk, ok)
	}
	// Amazon originates AU prefixes but is US-registered: AHN sees it,
	// AHC's origin filter must exclude its origin contribution (§5.1.2).
	au := p.Country("AU")
	if au.AHN.ValueOf(16509) <= ahc.ValueOf(16509) {
		t.Errorf("AHN(Amazon)=%f should exceed AHC(Amazon)=%f",
			au.AHN.ValueOf(16509), ahc.ValueOf(16509))
	}

	cti := p.CTI("AU")
	if cti.Len() == 0 {
		t.Fatal("empty CTI")
	}
	// §1.3: origins score 0 in CTI, so a pure-origin AS ranked by AHN must
	// not out-rank transit ASes here; check Vocus (transit) is present.
	if _, ok := cti.RankOf(4826); !ok {
		t.Error("CTI should rank Vocus")
	}
}

func TestStabilityImprovesWithVPs(t *testing.T) {
	p := NewPipeline(midOpts())
	pts := p.Stability(CCI, "AU", []int{2, 25, 150}, 4, 42)
	if len(pts) != 3 {
		t.Fatalf("points = %+v", pts)
	}
	for _, pt := range pts {
		if pt.MeanNDCG <= 0 || pt.MeanNDCG > 1.000001 {
			t.Errorf("NDCG out of range: %+v", pt)
		}
	}
	if pts[2].MeanNDCG < pts[0].MeanNDCG {
		t.Errorf("NDCG should improve with VPs: %+v", pts)
	}
	if pts[2].MeanNDCG < 0.9 {
		t.Errorf("large-sample NDCG = %f, want ≥ 0.9 (Figure 5 shape)", pts[2].MeanNDCG)
	}
}

func TestInferredRelationshipsPipeline(t *testing.T) {
	opt := smallOpts()
	opt.InferRelationships = true
	p := NewPipeline(opt)
	if p.Inferred == nil {
		t.Fatal("inferred relationships not active")
	}
	if p.Rels.Rel(3356, 1299) == 0 && p.Inferred.Len() > 0 {
		// Clique members should at least be labeled peers by inference.
		t.Error("inferred oracle seems inactive")
	}
	au := p.Country("AU")
	if au.CCI.Len() == 0 {
		t.Error("CCI empty under inferred relationships")
	}
}

func TestViewVPCount(t *testing.T) {
	p := NewPipeline(smallOpts())
	n := p.ViewVPCount(National, "NL")
	i := p.ViewVPCount(International, "NL")
	if n == 0 || i == 0 {
		t.Errorf("NL VP counts: national=%d international=%d", n, i)
	}
	if i <= n {
		t.Errorf("international view should have more VPs: %d vs %d", i, n)
	}
}

func TestScenarioDifference(t *testing.T) {
	o21 := smallOpts()
	o23 := smallOpts()
	o23.Scenario = topology.Mar2023
	p21 := NewPipeline(o21)
	p23 := NewPipeline(o23)
	tw21 := p21.Country("TW")
	tw23 := p23.Country("TW")
	r21, ok21 := tw21.CCI.RankOf(4134)
	r23, ok23 := tw23.CCI.RankOf(4134)
	if !ok21 || r21 > 15 {
		t.Errorf("2021: China Telecom CCI rank = %d, %v; want within the head", r21, ok21)
	}
	if ok23 && r23 <= r21 {
		t.Errorf("2023: China Telecom should fall in TW CCI: %d → %d", r21, r23)
	}
}

func TestStabilityAblationMeasures(t *testing.T) {
	p := NewPipeline(smallOpts())
	pts := p.Stability(CCI, "AU", []int{3, 40}, 3, 9)
	if len(pts) != 2 {
		t.Fatalf("points = %+v", pts)
	}
	for _, pt := range pts {
		if pt.MeanJaccard < 0 || pt.MeanJaccard > 1 {
			t.Errorf("Jaccard out of range: %+v", pt)
		}
		if pt.MeanTau < -1 || pt.MeanTau > 1 {
			t.Errorf("tau out of range: %+v", pt)
		}
	}
	// Large samples agree on membership and order.
	if pts[1].MeanJaccard < 0.8 || pts[1].MeanTau < 0.7 {
		t.Errorf("large-sample ablation measures too low: %+v", pts[1])
	}
}
