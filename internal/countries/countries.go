// Package countries provides the ISO 3166-1 alpha-2 country codes and
// continent assignments used by the country-level ranking metrics and the
// continental-dominance analysis (Table 12).
package countries

import "sort"

// Code is an ISO 3166-1 alpha-2 country code, upper case ("US", "JP").
// The paper also uses "EU" for pan-European registrations, which we keep.
type Code string

// Continent groups countries per the paper's Table 12 columns.
type Continent string

// Continents in Table 12 order.
const (
	NorthAmerica Continent = "North America"
	SouthAmerica Continent = "South America"
	Europe       Continent = "Europe"
	Africa       Continent = "Africa"
	Asia         Continent = "Asia"
	Oceania      Continent = "Oceania"
)

// AllContinents lists the continents in the paper's presentation order.
func AllContinents() []Continent {
	return []Continent{NorthAmerica, SouthAmerica, Europe, Africa, Asia, Oceania}
}

// info describes one country in our world model.
type info struct {
	name      string
	continent Continent
}

// registry covers every country the synthetic world models, including all
// countries named anywhere in the paper's tables and case studies.
var registry = map[Code]info{
	"US": {"United States", NorthAmerica},
	"CA": {"Canada", NorthAmerica},
	"MX": {"Mexico", NorthAmerica},
	"MQ": {"Martinique", NorthAmerica},
	"BR": {"Brazil", SouthAmerica},
	"AR": {"Argentina", SouthAmerica},
	"CL": {"Chile", SouthAmerica},
	"CO": {"Colombia", SouthAmerica},
	"PE": {"Peru", SouthAmerica},
	"NL": {"Netherlands", Europe},
	"GB": {"United Kingdom", Europe},
	"DE": {"Germany", Europe},
	"FR": {"France", Europe},
	"IT": {"Italy", Europe},
	"ES": {"Spain", Europe},
	"SE": {"Sweden", Europe},
	"CH": {"Switzerland", Europe},
	"AT": {"Austria", Europe},
	"RU": {"Russia", Europe},
	"UA": {"Ukraine", Europe},
	"LT": {"Lithuania", Europe},
	"HR": {"Croatia", Europe},
	"GG": {"Guernsey", Europe},
	"IM": {"Isle of Man", Europe},
	"EU": {"European Union", Europe},
	"ZA": {"South Africa", Africa},
	"KE": {"Kenya", Africa},
	"UG": {"Uganda", Africa},
	"MA": {"Morocco", Africa},
	"CI": {"Ivory Coast", Africa},
	"TN": {"Tunisia", Africa},
	"MU": {"Mauritius", Africa},
	"NA": {"Namibia", Africa},
	"NG": {"Nigeria", Africa},
	"EG": {"Egypt", Africa},
	"JP": {"Japan", Asia},
	"CN": {"China", Asia},
	"TW": {"Taiwan", Asia},
	"SG": {"Singapore", Asia},
	"IN": {"India", Asia},
	"KR": {"South Korea", Asia},
	"HK": {"Hong Kong", Asia},
	"KZ": {"Kazakhstan", Asia},
	"KG": {"Kyrgyzstan", Asia},
	"TJ": {"Tajikistan", Asia},
	"TM": {"Turkmenistan", Asia},
	"UZ": {"Uzbekistan", Asia},
	"AF": {"Afghanistan", Asia},
	"AU": {"Australia", Oceania},
	"NZ": {"New Zealand", Oceania},
	"FJ": {"Fiji", Oceania},
	"PG": {"Papua New Guinea", Oceania},
}

// Known reports whether c is a country the world model understands.
func Known(c Code) bool {
	_, ok := registry[c]
	return ok
}

// Name returns the English name of c, or the code itself when unknown.
func Name(c Code) string {
	if in, ok := registry[c]; ok {
		return in.name
	}
	return string(c)
}

// ContinentOf returns the continent c belongs to. Unknown codes return the
// empty Continent and false.
func ContinentOf(c Code) (Continent, bool) {
	in, ok := registry[c]
	if !ok {
		return "", false
	}
	return in.continent, true
}

// All returns every known country code in sorted order.
func All() []Code {
	out := make([]Code, 0, len(registry))
	for c := range registry {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InContinent returns the known countries of a continent in sorted order.
func InContinent(ct Continent) []Code {
	var out []Code
	for c, in := range registry {
		if in.continent == ct {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FormerSovietBloc lists the ex-USSR countries examined in Figure 7.
func FormerSovietBloc() []Code {
	return []Code{"KZ", "KG", "TJ", "TM", "UZ", "UA", "LT"}
}
