package countries

import "testing"

func TestKnownAndName(t *testing.T) {
	if !Known("US") || !Known("TW") || !Known("EU") {
		t.Error("expected US, TW, EU to be known")
	}
	if Known("XX") {
		t.Error("XX should be unknown")
	}
	if Name("JP") != "Japan" {
		t.Errorf("Name(JP) = %q", Name("JP"))
	}
	if Name("XX") != "XX" {
		t.Errorf("Name of unknown should echo the code, got %q", Name("XX"))
	}
}

func TestContinentOf(t *testing.T) {
	cases := map[Code]Continent{
		"US": NorthAmerica, "BR": SouthAmerica, "DE": Europe,
		"ZA": Africa, "JP": Asia, "AU": Oceania, "RU": Europe, "MU": Africa,
	}
	for c, want := range cases {
		got, ok := ContinentOf(c)
		if !ok || got != want {
			t.Errorf("ContinentOf(%s) = %v, %v; want %v", c, got, ok, want)
		}
	}
	if _, ok := ContinentOf("XX"); ok {
		t.Error("unknown code should not have a continent")
	}
}

func TestAllSortedAndComplete(t *testing.T) {
	all := All()
	if len(all) == 0 {
		t.Fatal("All returned nothing")
	}
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] {
			t.Errorf("All not sorted at %d: %s >= %s", i, all[i-1], all[i])
		}
	}
	// Every paper case-study country is modeled.
	for _, c := range []Code{"AU", "JP", "RU", "US", "TW", "UA"} {
		if !Known(c) {
			t.Errorf("case-study country %s missing", c)
		}
	}
}

func TestInContinentPartition(t *testing.T) {
	seen := map[Code]bool{}
	total := 0
	for _, ct := range AllContinents() {
		for _, c := range InContinent(ct) {
			if seen[c] {
				t.Errorf("%s appears in two continents", c)
			}
			seen[c] = true
			total++
			if got, _ := ContinentOf(c); got != ct {
				t.Errorf("InContinent(%v) contains %s whose continent is %v", ct, c, got)
			}
		}
	}
	if total != len(All()) {
		t.Errorf("continent partition covers %d of %d countries", total, len(All()))
	}
}

func TestFormerSovietBloc(t *testing.T) {
	for _, c := range FormerSovietBloc() {
		if !Known(c) {
			t.Errorf("soviet-bloc country %s unknown", c)
		}
	}
}
