// Package cti implements the Country-level Transit Influence baseline of
// Gamero-Garrido et al. as the paper describes it in §1.3: a modified
// betweenness over paths from out-of-country vantage points, counting only
// the transit (provider→customer) portion of each path, scoring each AS by
// the path prefix's addresses weighted by 1/k where k is the AS's distance
// from the origin (so the origin itself scores 0), and trimming the top and
// bottom 10% of per-VP values like hegemony.
package cti

import (
	"sort"
	"sync"

	"countryrank/internal/asn"
	"countryrank/internal/relation"
	"countryrank/internal/sanitize"
	"countryrank/internal/topology"
)

// Scores holds CTI values per AS.
type Scores struct {
	CTI     map[asn.ASN]float64
	VPCount int
}

// Value returns a's CTI (0 when unseen).
func (s Scores) Value(a asn.ASN) float64 { return s.CTI[a] }

// scratch is the dense kernel's reusable flat state, mirroring the
// hegemony kernel: per-VP accumulation into id-indexed slices, then a
// counting sort of (id, value) pairs into per-AS runs. The same pool
// invariant applies: vpCnt, seen, asF, and counts are zeroed between calls
// through the vpsUsed/touched/idsUsed dirty lists, keeping each call
// O(records + touched entries).
type scratch struct {
	vpCnt    []int32
	vpOff    []int32
	vpsUsed  []int32
	order    []int32
	asF      []float64 // per AS id: score accumulated for the current VP
	seen     []bool
	touched  []int32
	counts   []int32
	idsUsed  []int32
	offsets  []int32
	pairIDs  []int32
	pairVals []float64
	vals     []float64
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func grow[T int32 | uint64 | float64 | bool](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Depths precomputes, for every accepted record, how many hops of the
// origin-side provider→customer chain score (the transit portion's length).
// It depends only on (ds, rels), never on the view, so callers computing
// CTI over many views or VP subsets can pay the relationship lookups once
// and pass the result to ComputeFrom.
func Depths(ds *sanitize.Dataset, rels relation.Oracle) []int32 {
	depths := make([]int32, ds.Len())
	for i := range depths {
		_, _, path := ds.Record(i)
		var d int32
		for j := len(path) - 2; j >= 0; j-- {
			if rels.Rel(path[j], path[j+1]) != topology.RelP2C {
				break
			}
			d++
		}
		depths[i] = d
	}
	return depths
}

// Compute calculates CTI over the given accepted-record positions (the
// caller passes an international view: out-of-country VPs toward in-country
// prefixes). trim < 0 selects the canonical 10%.
//
// The dense-id kernel is bit-identical to the retained map-based reference
// (computeMapRef): records are processed grouped by VP but in record order
// inside each group, so every float accumulation happens in the reference's
// order.
func Compute(ds *sanitize.Dataset, recs []int32, rels relation.Oracle, trim float64) Scores {
	return ComputeFrom(ds, recs, rels, nil, trim)
}

// ComputeFrom is Compute with optionally precomputed transit depths (see
// Depths); pass nil to resolve them on the fly.
func ComputeFrom(ds *sanitize.Dataset, recs []int32, rels relation.Oracle, depths []int32, trim float64) Scores {
	if trim < 0 {
		trim = 0.10
	}
	nAS := ds.NumAS()
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)

	order := bucketByVP(ds, recs, sc)

	sc.asF = grow(sc.asF, nAS)
	sc.seen = grow(sc.seen, nAS)
	sc.counts = grow(sc.counts, nAS)
	sc.idsUsed = sc.idsUsed[:0]
	sc.pairIDs = sc.pairIDs[:0]
	sc.pairVals = sc.pairVals[:0]

	vpCount := 0
	for _, v := range sc.vpsUsed {
		bucket := order[sc.vpOff[v]:][:sc.vpCnt[v]]
		sc.touched = sc.touched[:0]
		var total uint64
		for _, i := range bucket {
			_, pfxIdx, path := ds.Record(int(i))
			ids := ds.PathIDs[i]
			w := ds.Weight[pfxIdx]
			total += w
			// Walk the transit (provider→customer) chain from the origin
			// side: path[len-1] is the origin (k=0); moving toward the VP,
			// an AS at distance k scores w/k while the link below is p2c.
			last := 0
			if depths != nil {
				last = len(path) - 1 - int(depths[i])
			}
			for j := len(path) - 2; j >= last; j-- {
				if depths == nil && rels.Rel(path[j], path[j+1]) != topology.RelP2C {
					break
				}
				k := len(path) - 1 - j
				id := ids[j]
				if !sc.seen[id] {
					sc.seen[id] = true
					sc.asF[id] = 0
					sc.touched = append(sc.touched, id)
				}
				sc.asF[id] += float64(w) / float64(k)
			}
		}
		if total > 0 {
			vpCount++
			ft := float64(total)
			for _, id := range sc.touched {
				sc.pairIDs = append(sc.pairIDs, id)
				sc.pairVals = append(sc.pairVals, sc.asF[id]/ft)
				if sc.counts[id] == 0 {
					sc.idsUsed = append(sc.idsUsed, id)
				}
				sc.counts[id]++
			}
		}
		for _, id := range sc.touched { // restore the pool invariant
			sc.seen[id] = false
			sc.asF[id] = 0
		}
		sc.vpCnt[v] = 0 // likewise
	}

	sc.offsets = grow(sc.offsets, nAS)
	var off int32
	for _, id := range sc.idsUsed {
		sc.offsets[id] = off
		off += sc.counts[id]
		sc.counts[id] = 0 // becomes the scatter cursor
	}
	sc.vals = grow(sc.vals, len(sc.pairVals))
	for k, id := range sc.pairIDs {
		sc.vals[sc.offsets[id]+sc.counts[id]] = sc.pairVals[k]
		sc.counts[id]++
	}

	s := Scores{CTI: make(map[asn.ASN]float64, len(sc.idsUsed)), VPCount: vpCount}
	for _, id := range sc.idsUsed {
		vs := sc.vals[sc.offsets[id]:][:sc.counts[id]]
		sort.Float64s(vs)
		s.CTI[ds.ASNOf[id]] = trimmedMeanSorted(vs, vpCount, trim)
		sc.counts[id] = 0 // restore the pool invariant
	}
	return s
}

// bucketByVP groups the requested record positions by VP, preserving record
// order inside each bucket (see the hegemony kernel).
func bucketByVP(ds *sanitize.Dataset, recs []int32, sc *scratch) []int32 {
	nVP := len(ds.VPCountry)
	sc.vpCnt = grow(sc.vpCnt, nVP)
	sc.vpsUsed = sc.vpsUsed[:0]
	n := len(recs)
	if recs == nil {
		n = ds.Len()
	}
	each(ds, recs, func(i int) {
		vpIdx, _, _ := ds.RecordIDs(i)
		if sc.vpCnt[vpIdx] == 0 {
			sc.vpsUsed = append(sc.vpsUsed, vpIdx)
		}
		sc.vpCnt[vpIdx]++
	})
	sc.vpOff = grow(sc.vpOff, nVP)
	var off int32
	for _, v := range sc.vpsUsed {
		sc.vpOff[v] = off
		off += sc.vpCnt[v]
		sc.vpCnt[v] = 0 // becomes the scatter cursor
	}
	sc.order = grow(sc.order, n)
	each(ds, recs, func(i int) {
		vpIdx, _, _ := ds.RecordIDs(i)
		sc.order[sc.vpOff[vpIdx]+sc.vpCnt[vpIdx]] = int32(i)
		sc.vpCnt[vpIdx]++
	})
	return sc.order
}

func each(ds *sanitize.Dataset, recs []int32, f func(i int)) {
	if recs == nil {
		for i := 0; i < ds.Len(); i++ {
			f(i)
		}
		return
	}
	for _, i := range recs {
		f(int(i))
	}
}

// computeMapRef is the original ASN-keyed map implementation, retained as
// the executable specification the dense kernel is property-tested against.
func computeMapRef(ds *sanitize.Dataset, recs []int32, rels relation.Oracle, trim float64) Scores {
	if trim < 0 {
		trim = 0.10
	}
	nVP := len(ds.VPCountry)
	totals := make([]uint64, nVP)
	perVP := make([]map[asn.ASN]float64, nVP)

	each(ds, recs, func(i int) {
		vpIdx, pfxIdx, path := ds.Record(i)
		w := ds.Weight[pfxIdx]
		totals[vpIdx] += w
		m := perVP[vpIdx]
		if m == nil {
			m = map[asn.ASN]float64{}
			perVP[vpIdx] = m
		}
		for j := len(path) - 2; j >= 0; j-- {
			if rels.Rel(path[j], path[j+1]) != topology.RelP2C {
				break
			}
			k := len(path) - 1 - j
			m[path[j]] += float64(w) / float64(k)
		}
	})

	var vps []int
	for v := 0; v < nVP; v++ {
		if totals[v] > 0 {
			vps = append(vps, v)
		}
	}
	values := map[asn.ASN][]float64{}
	for _, v := range vps {
		for a, sc := range perVP[v] {
			values[a] = append(values[a], sc/float64(totals[v]))
		}
	}
	s := Scores{CTI: make(map[asn.ASN]float64, len(values)), VPCount: len(vps)}
	for a, vals := range values {
		s.CTI[a] = trimmedMean(vals, len(vps), trim)
	}
	return s
}

func trimmedMean(vals []float64, n int, trim float64) float64 {
	if n <= 0 {
		return 0
	}
	padded := make([]float64, n)
	copy(padded, vals)
	sort.Float64s(padded)
	k := int(trim * float64(n))
	if k == 0 && trim > 0 && n >= 3 {
		k = 1 // same small-view convention as hegemony (Figure 2)
	}
	lo, hi := k, n-k
	if lo >= hi {
		lo, hi = 0, n
	}
	var sum float64
	for _, v := range padded[lo:hi] {
		sum += v
	}
	return sum / float64(hi-lo)
}

// trimmedMeanSorted is trimmedMean over already-sorted values with the zero
// padding left implicit; see the hegemony kernel for the bit-identity
// argument.
func trimmedMeanSorted(vals []float64, n int, trim float64) float64 {
	if n <= 0 {
		return 0
	}
	k := int(trim * float64(n))
	if k == 0 && trim > 0 && n >= 3 {
		k = 1
	}
	lo, hi := k, n-k
	if lo >= hi {
		lo, hi = 0, n
	}
	zeros := n - len(vals)
	start := lo - zeros
	if start < 0 {
		start = 0
	}
	end := hi - zeros
	if end < start {
		end = start
	}
	var sum float64
	for _, v := range vals[start:end] {
		sum += v
	}
	return sum / float64(hi-lo)
}
