// Package cti implements the Country-level Transit Influence baseline of
// Gamero-Garrido et al. as the paper describes it in §1.3: a modified
// betweenness over paths from out-of-country vantage points, counting only
// the transit (provider→customer) portion of each path, scoring each AS by
// the path prefix's addresses weighted by 1/k where k is the AS's distance
// from the origin (so the origin itself scores 0), and trimming the top and
// bottom 10% of per-VP values like hegemony.
package cti

import (
	"sort"

	"countryrank/internal/asn"
	"countryrank/internal/relation"
	"countryrank/internal/sanitize"
	"countryrank/internal/topology"
)

// Scores holds CTI values per AS.
type Scores struct {
	CTI     map[asn.ASN]float64
	VPCount int
}

// Value returns a's CTI (0 when unseen).
func (s Scores) Value(a asn.ASN) float64 { return s.CTI[a] }

// Compute calculates CTI over the given accepted-record positions (the
// caller passes an international view: out-of-country VPs toward in-country
// prefixes). trim < 0 selects the canonical 10%.
func Compute(ds *sanitize.Dataset, recs []int32, rels relation.Oracle, trim float64) Scores {
	if trim < 0 {
		trim = 0.10
	}
	nVP := len(ds.VPCountry)
	totals := make([]uint64, nVP)
	perVP := make([]map[asn.ASN]float64, nVP)

	visit := func(i int) {
		vpIdx, pfxIdx, path := ds.Record(i)
		w := ds.Weight[pfxIdx]
		totals[vpIdx] += w
		m := perVP[vpIdx]
		if m == nil {
			m = map[asn.ASN]float64{}
			perVP[vpIdx] = m
		}
		// Walk the transit (provider→customer) chain from the origin side:
		// path[len-1] is the origin (k=0); moving toward the VP, an AS at
		// distance k scores w/k while the link below it is p2c.
		for j := len(path) - 2; j >= 0; j-- {
			if rels.Rel(path[j], path[j+1]) != topology.RelP2C {
				break
			}
			k := len(path) - 1 - j
			m[path[j]] += float64(w) / float64(k)
		}
	}
	if recs == nil {
		for i := 0; i < ds.Len(); i++ {
			visit(i)
		}
	} else {
		for _, i := range recs {
			visit(int(i))
		}
	}

	var vps []int
	for v := 0; v < nVP; v++ {
		if totals[v] > 0 {
			vps = append(vps, v)
		}
	}
	values := map[asn.ASN][]float64{}
	for _, v := range vps {
		for a, sc := range perVP[v] {
			values[a] = append(values[a], sc/float64(totals[v]))
		}
	}
	s := Scores{CTI: make(map[asn.ASN]float64, len(values)), VPCount: len(vps)}
	for a, vals := range values {
		s.CTI[a] = trimmedMean(vals, len(vps), trim)
	}
	return s
}

func trimmedMean(vals []float64, n int, trim float64) float64 {
	if n <= 0 {
		return 0
	}
	padded := make([]float64, n)
	copy(padded, vals)
	sort.Float64s(padded)
	k := int(trim * float64(n))
	if k == 0 && trim > 0 && n >= 3 {
		k = 1 // same small-view convention as hegemony (Figure 2)
	}
	lo, hi := k, n-k
	if lo >= hi {
		lo, hi = 0, n
	}
	var sum float64
	for _, v := range padded[lo:hi] {
		sum += v
	}
	return sum / float64(hi-lo)
}
