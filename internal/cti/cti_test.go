package cti

import (
	"math"
	"testing"

	"countryrank/internal/countries"
	"countryrank/internal/metrictest"
)

func TestReverseDistanceWeights(t *testing.T) {
	// Path 1 2 3 4 with 2>3>4 transit chain (1-2 is peer): origin 4 scores
	// 0, AS 3 scores w/1, AS 2 scores w/2, AS 1 nothing (not transit).
	rels := metrictest.Rels{
		P2C: [][2]uint32{{2, 3}, {3, 4}},
		P2P: [][2]uint32{{1, 2}},
	}
	ds := metrictest.Dataset([]countries.Code{"NL"}, []metrictest.Rec{
		{VP: 0, Prefix: "10.0.0.0/24", PrefixCountry: "US", Path: []uint32{1, 2, 3, 4}},
	})
	s := Compute(ds, nil, rels, 0)
	if s.VPCount != 1 {
		t.Fatalf("VPCount = %d", s.VPCount)
	}
	if got := s.Value(4); got != 0 {
		t.Errorf("CTI(origin) = %f, want 0 (reverse order starts at 0)", got)
	}
	if got := s.Value(3); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("CTI(3) = %f, want 1/1", got)
	}
	if got := s.Value(2); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("CTI(2) = %f, want 1/2", got)
	}
	if got := s.Value(1); got != 0 {
		t.Errorf("CTI(1) = %f, want 0 (peer link is not transit)", got)
	}
}

func TestTransitOnlyStopsAtPeerLink(t *testing.T) {
	// Entire path is peer links: nobody scores.
	rels := metrictest.Rels{P2P: [][2]uint32{{1, 2}, {2, 3}}}
	ds := metrictest.Dataset([]countries.Code{"NL"}, []metrictest.Rec{
		{VP: 0, Prefix: "10.0.0.0/24", PrefixCountry: "US", Path: []uint32{1, 2, 3}},
	})
	s := Compute(ds, nil, rels, 0)
	for a, v := range s.CTI {
		if v != 0 {
			t.Errorf("CTI(%v) = %f on peer-only path", a, v)
		}
	}
}

// TestAOLPPenalty pins §1.3's observation: for an origin announcing large
// prefixes, CTI under-scores the origin relative to cone/hegemony but
// boosts the AS directly adjacent to it.
func TestAOLPPenalty(t *testing.T) {
	rels := metrictest.Rels{P2C: [][2]uint32{{2, 4}}}
	ds := metrictest.Dataset([]countries.Code{"NL"}, []metrictest.Rec{
		{VP: 0, Prefix: "10.0.0.0/16", PrefixCountry: "US", Path: []uint32{2, 4}},
	})
	s := Compute(ds, nil, rels, 0)
	if s.Value(4) != 0 {
		t.Error("origin must score 0 even when announcing a /16")
	}
	if math.Abs(s.Value(2)-1.0) > 1e-9 {
		t.Errorf("adjacent AS gets the full weight: %f", s.Value(2))
	}
}

func TestNormalizationAcrossPrefixes(t *testing.T) {
	// VP sees two prefixes: /24 via transit AS 5 and /24 not via it:
	// CTI(5) = (256/1)/512 = 0.5.
	rels := metrictest.Rels{P2C: [][2]uint32{{5, 7}, {6, 8}}}
	ds := metrictest.Dataset([]countries.Code{"NL"}, []metrictest.Rec{
		{VP: 0, Prefix: "10.0.0.0/24", PrefixCountry: "US", Path: []uint32{1, 5, 7}},
		{VP: 0, Prefix: "10.1.0.0/24", PrefixCountry: "US", Path: []uint32{1, 6, 8}},
	})
	s := Compute(ds, nil, rels, 0)
	if got := s.Value(5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("CTI(5) = %f, want 0.5", got)
	}
}

func TestTrimmedAcrossVPs(t *testing.T) {
	// Three VPs with CTI(5) views 1, 0.5, 0: the small-view trim keeps the
	// middle value.
	rels := metrictest.Rels{P2C: [][2]uint32{{5, 7}, {6, 8}}}
	ds := metrictest.Dataset([]countries.Code{"NL", "DE", "SE"}, []metrictest.Rec{
		{VP: 0, Prefix: "10.0.0.0/24", PrefixCountry: "US", Path: []uint32{1, 5, 7}},
		{VP: 1, Prefix: "10.0.0.0/24", PrefixCountry: "US", Path: []uint32{2, 5, 7}},
		{VP: 1, Prefix: "10.1.0.0/24", PrefixCountry: "US", Path: []uint32{2, 6, 8}},
		{VP: 2, Prefix: "10.1.0.0/24", PrefixCountry: "US", Path: []uint32{3, 6, 8}},
	})
	s := Compute(ds, nil, rels, -1)
	if got := s.Value(5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("CTI(5) = %f, want the middle per-VP value 0.5", got)
	}
}
