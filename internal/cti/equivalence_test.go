package cti_test

import (
	"reflect"
	"testing"

	"countryrank/internal/core"
	"countryrank/internal/cti"
)

// TestDenseMatchesMapReference: the dense kernel processes records grouped
// by VP but in record order inside each group, so even its float
// accumulations must match the map-based reference bit for bit.
func TestDenseMatchesMapReference(t *testing.T) {
	for _, seed := range []int64{1, 5} {
		p := core.NewPipeline(core.Options{Seed: seed, StubScale: 0.15, VPScale: 0.2})
		views := map[string][]int32{
			"global":  nil,
			"intl-AU": p.ViewRecords(core.International, "AU"),
			"intl-JP": p.ViewRecords(core.International, "JP"),
			"intl-RU": p.ViewRecords(core.International, "RU"),
			"empty":   p.ViewRecords(core.International, "ZZ"),
		}
		for name, recs := range views {
			for _, trim := range []float64{-1, 0, 0.10} {
				got := cti.Compute(p.DS, recs, p.Rels, trim)
				want := cti.ComputeMapRef(p.DS, recs, p.Rels, trim)
				if got.VPCount != want.VPCount {
					t.Fatalf("seed %d %s trim %v: VPCount %d != %d",
						seed, name, trim, got.VPCount, want.VPCount)
				}
				if !reflect.DeepEqual(got.CTI, want.CTI) {
					t.Fatalf("seed %d %s trim %v: dense kernel diverges from map reference (%d vs %d ASes)",
						seed, name, trim, len(got.CTI), len(want.CTI))
				}
			}
		}
	}
}
