package experiments

import (
	"fmt"
	"sort"
	"strings"

	"countryrank/internal/asn"
	"countryrank/internal/core"
	"countryrank/internal/countries"
	"countryrank/internal/rank"
)

// CaseStudyRow is one AS's standing across the four country metrics, the
// format of Tables 5–8.
type CaseStudyRow struct {
	ASN  asn.ASN
	Info rank.ASInfo
	// Per metric: 1-based rank (0 = unranked) and value.
	CCIRank, AHIRank, CCNRank, AHNRank int
	CCIVal, AHIVal, CCNVal, AHNVal     float64
	// CCGRank is the AS's global customer-cone rank (the subscript
	// annotations in the paper's tables).
	CCGRank int
}

// CaseStudy reproduces the per-country tables of §5: the union of the top
// ASes of each metric, annotated with their standing in all four.
type CaseStudy struct {
	Country countries.Code
	Rows    []CaseStudyRow
}

// RunCaseStudy computes the case-study table for one country. topPer is how
// many leaders of each metric to include (the paper uses 2).
func RunCaseStudy(p *core.Pipeline, c countries.Code, topPer int, ccg *rank.Ranking) CaseStudy {
	cr := p.Country(c)
	union := map[asn.ASN]bool{}
	for _, r := range []*rank.Ranking{cr.CCI, cr.AHI, cr.CCN, cr.AHN} {
		for _, a := range r.TopASNs(topPer) {
			union[a] = true
		}
	}
	cs := CaseStudy{Country: c}
	info := p.Info()
	for a := range union {
		row := CaseStudyRow{ASN: a, Info: info(a)}
		row.CCIRank, _ = cr.CCI.RankOf(a)
		row.AHIRank, _ = cr.AHI.RankOf(a)
		row.CCNRank, _ = cr.CCN.RankOf(a)
		row.AHNRank, _ = cr.AHN.RankOf(a)
		row.CCIVal = cr.CCI.ValueOf(a)
		row.AHIVal = cr.AHI.ValueOf(a)
		row.CCNVal = cr.CCN.ValueOf(a)
		row.AHNVal = cr.AHN.ValueOf(a)
		if ccg != nil {
			row.CCGRank, _ = ccg.RankOf(a)
		}
		cs.Rows = append(cs.Rows, row)
	}
	// Order by best (minimum) rank across metrics, like the paper's tables.
	best := func(r CaseStudyRow) int {
		b := 1 << 30
		for _, x := range []int{r.CCIRank, r.AHIRank, r.CCNRank, r.AHNRank} {
			if x > 0 && x < b {
				b = x
			}
		}
		return b
	}
	sort.Slice(cs.Rows, func(i, j int) bool {
		bi, bj := best(cs.Rows[i]), best(cs.Rows[j])
		if bi != bj {
			return bi < bj
		}
		return cs.Rows[i].ASN < cs.Rows[j].ASN
	})
	return cs
}

// Render formats the case study in the paper's rank+percent cell style.
func (cs CaseStudy) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Case study %s (Tables 5–8 style)\n", cs.Country)
	fmt.Fprintf(&b, "%-8s %-22s %-3s  %-11s %-11s %-11s %-11s %s\n",
		"ASN", "name", "cc", "CCI", "AHI", "CCN", "AHN", "CCG")
	cell := func(rk int, v float64) string {
		if rk == 0 {
			return "-"
		}
		return fmt.Sprintf("%d %.0f%%", rk, 100*v)
	}
	for _, r := range cs.Rows {
		ccg := "-"
		if r.CCGRank > 0 {
			ccg = fmt.Sprintf("%d", r.CCGRank)
		}
		fmt.Fprintf(&b, "%-8d %-22s %-3s  %-11s %-11s %-11s %-11s %s\n",
			uint32(r.ASN), r.Info.Name, r.Info.Country,
			cell(r.CCIRank, r.CCIVal), cell(r.AHIRank, r.AHIVal),
			cell(r.CCNRank, r.CCNVal), cell(r.AHNRank, r.AHNVal), ccg)
	}
	return b.String()
}

// Table9Row contrasts one AS's country-specific and global standings.
type Table9Row struct {
	ASN                                asn.ASN
	Info                               rank.ASInfo
	CCIRank, CCGRank, AHIRank, AHGRank int
	AHCRank, AHNRank                   int
}

// Table9 is the paper's global-vs-country contrast for Australia: the top
// 10 by CCI and by AHI, with each AS's CCG/AHG/AHC/AHN ranks alongside.
type Table9 struct {
	Country  countries.Code
	ConeRows []Table9Row // top 10 by CCI
	HegRows  []Table9Row // top 10 by AHI
}

// RunTable9 computes the contrast table.
func RunTable9(p *core.Pipeline, c countries.Code) Table9 {
	cr := p.Country(c)
	ccg, ahg := p.Global()
	ahc := p.AHC(c)
	info := p.Info()
	mk := func(a asn.ASN) Table9Row {
		r := Table9Row{ASN: a, Info: info(a)}
		r.CCIRank, _ = cr.CCI.RankOf(a)
		r.CCGRank, _ = ccg.RankOf(a)
		r.AHIRank, _ = cr.AHI.RankOf(a)
		r.AHGRank, _ = ahg.RankOf(a)
		r.AHCRank, _ = ahc.RankOf(a)
		r.AHNRank, _ = cr.AHN.RankOf(a)
		return r
	}
	t := Table9{Country: c}
	for _, a := range cr.CCI.TopASNs(10) {
		t.ConeRows = append(t.ConeRows, mk(a))
	}
	for _, a := range cr.AHI.TopASNs(10) {
		t.HegRows = append(t.HegRows, mk(a))
	}
	return t
}

// Render formats the contrast table.
func (t Table9) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 9: %s country-specific vs global rankings\n", t.Country)
	b.WriteString("Customer cone:            AS Hegemony:\n")
	fmt.Fprintf(&b, "%-4s %-5s %-20s   %-4s %-5s %-5s %-5s %-20s\n",
		"CCI", "CCG", "AS", "AHI", "AHG", "AHC", "AHN", "AS")
	for i := 0; i < len(t.ConeRows) || i < len(t.HegRows); i++ {
		left, right := "", ""
		if i < len(t.ConeRows) {
			r := t.ConeRows[i]
			left = fmt.Sprintf("%-4d %-5s %-20s", r.CCIRank, dash(r.CCGRank),
				fmt.Sprintf("%d %s %s", uint32(r.ASN), r.Info.Name, r.Info.Country))
		} else {
			left = strings.Repeat(" ", 31)
		}
		if i < len(t.HegRows) {
			r := t.HegRows[i]
			right = fmt.Sprintf("%-4d %-5s %-5s %-5s %-20s", r.AHIRank, dash(r.AHGRank),
				dash(r.AHCRank), dash(r.AHNRank),
				fmt.Sprintf("%d %s %s", uint32(r.ASN), r.Info.Name, r.Info.Country))
		}
		fmt.Fprintf(&b, "%s   %s\n", left, right)
	}
	return b.String()
}

func dash(v int) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}
