// Package experiments regenerates every table and figure of the paper's
// evaluation from a pipeline run. Each experiment returns a typed result
// with a Render method producing the paper-style presentation; cmd/
// experiments prints them all and EXPERIMENTS.md records the comparison
// against the published values.
package experiments

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"countryrank/internal/core"
	"countryrank/internal/countries"
	"countryrank/internal/geoloc"
	"countryrank/internal/sanitize"
)

// Table1 is the path-sanitization accounting (§3.1).
type Table1 struct {
	Stats sanitize.Stats
}

// RunTable1 extracts the Table 1 accounting from the pipeline.
func RunTable1(p *core.Pipeline) Table1 { return Table1{Stats: p.DS.Stats} }

// Render formats the table.
func (t Table1) Render() string {
	return "Table 1: filtering paths\n" + t.Stats.Render()
}

// Table2 is the static view-definition matrix of the paper.
type Table2 struct{}

// RunTable2 returns the (static) Table 2.
func RunTable2() Table2 { return Table2{} }

// Render formats the view matrix: which ASes/prefixes/VPs each metric uses.
func (Table2) Render() string {
	return `Table 2: AS path input data per metric
                      ASes      prefixes     VPs
type        metric    in  out   in  out      in  out
national    AHN,CCN             X            X
internat.   AHI,CCI             X                X
IHR country AHC       X                      X   X
global      AHG                 X   X        X   X
global      CCG                 X   X        X   X
`
}

// Table4Row is one country's census (Tables 3 and 4 share this data).
type Table4Row struct {
	Country   countries.Code
	VPs       int
	VPASNs    int
	ASNs      int // ASes registered in the country
	Prefixes  int
	Addresses uint64
}

// Table4 is the per-country VP/AS/prefix/address census.
type Table4 struct {
	Rows []Table4Row // sorted by VP count descending
}

// RunTable4 computes the census over the sanitized data set.
func RunTable4(p *core.Pipeline) Table4 {
	byC := map[countries.Code]*Table4Row{}
	get := func(c countries.Code) *Table4Row {
		r := byC[c]
		if r == nil {
			r = &Table4Row{Country: c}
			byC[c] = r
		}
		return r
	}
	for _, cc := range p.World.VPs.Census() {
		r := get(cc.Country)
		r.VPs = cc.VPs
		r.VPASNs = cc.VPASNs
	}
	g := p.World.Graph
	for _, a := range g.AllASNs() {
		node, _ := g.ByASN(a)
		if node.Registered != "" {
			get(node.Registered).ASNs++
		}
	}
	for pfxIdx, c := range p.DS.PrefixCountry {
		if c == "" {
			continue
		}
		r := get(c)
		r.Prefixes++
		r.Addresses += p.DS.Weight[pfxIdx]
	}
	t := Table4{}
	for _, r := range byC {
		t.Rows = append(t.Rows, *r)
	}
	sort.Slice(t.Rows, func(i, j int) bool {
		if t.Rows[i].VPs != t.Rows[j].VPs {
			return t.Rows[i].VPs > t.Rows[j].VPs
		}
		return t.Rows[i].Country < t.Rows[j].Country
	})
	return t
}

// Render formats countries with >7 in-country VPs, like the paper.
func (t Table4) Render() string {
	var b strings.Builder
	b.WriteString("Table 4: countries by in-country VPs (VPs > 7)\n")
	fmt.Fprintf(&b, "%-4s %6s %8s %8s %10s %12s\n", "cc", "VPs", "VP-ASNs", "ASNs", "prefixes", "addresses")
	for _, r := range t.Rows {
		if r.VPs <= 7 {
			continue
		}
		fmt.Fprintf(&b, "%-4s %6d %8d %8d %10d %11.1fm\n",
			r.Country, r.VPs, r.VPASNs, r.ASNs, r.Prefixes, float64(r.Addresses)/1e6)
	}
	return b.String()
}

// Table13_14 is the per-country geolocation filter accounting.
type Table13_14 struct {
	// PctPrefixes and PctAddresses are keyed by country.
	PctPrefixes  map[countries.Code]float64
	PctAddresses map[countries.Code]float64
}

// RunTable13_14 extracts filter percentages from the geolocation table.
func RunTable13_14(p *core.Pipeline) Table13_14 {
	t := Table13_14{
		PctPrefixes:  map[countries.Code]float64{},
		PctAddresses: map[countries.Code]float64{},
	}
	for _, s := range p.Geo.CountryStats() {
		t.PctPrefixes[s.Country] = s.PctPrefixesFiltered()
		t.PctAddresses[s.Country] = s.PctAddressesFiltered()
	}
	return t
}

// Render shows case-study countries plus the most-filtered tail.
func (t Table13_14) Render() string {
	var b strings.Builder
	b.WriteString("Tables 13/14: % of prefixes / addresses filtered by the 50% threshold\n")
	caseStudies := []countries.Code{"RU", "TW", "UA", "US", "AU", "JP"}
	fmt.Fprintf(&b, "%-4s %10s %10s\n", "cc", "%prefixes", "%addrs")
	for _, c := range caseStudies {
		fmt.Fprintf(&b, "%-4s %9.1f%% %9.1f%%\n", c, t.PctPrefixes[c], t.PctAddresses[c])
	}
	b.WriteString("most filtered:\n")
	type kv struct {
		c countries.Code
		v float64
	}
	var worst []kv
	for c, v := range t.PctPrefixes {
		worst = append(worst, kv{c, v})
	}
	sort.Slice(worst, func(i, j int) bool {
		if worst[i].v != worst[j].v {
			return worst[i].v > worst[j].v
		}
		return worst[i].c < worst[j].c
	})
	for i := 0; i < 4 && i < len(worst); i++ {
		fmt.Fprintf(&b, "%-4s %9.1f%% %9.1f%%\n", worst[i].c, worst[i].v, t.PctAddresses[worst[i].c])
	}
	return b.String()
}

// Figure8 sweeps the geolocation majority threshold: for each threshold,
// the share of prefixes passing per country (§Appendix B).
type Figure8 struct {
	Thresholds []float64
	// PassShare[i] is, at Thresholds[i], the fraction of countries whose
	// prefixes pass at ≥99% / ≥95% / lower bands.
	CountriesAt99 []int
	CountriesAt95 []int
	Countries     int
}

// RunFigure8 computes the threshold sweep.
func RunFigure8(p *core.Pipeline) Figure8 {
	f := Figure8{Thresholds: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}}
	announced := p.Col.AnnouncedPrefixes()
	for _, th := range f.Thresholds {
		tbl := geolocate(p, announced, th)
		pass := map[countries.Code][2]int{} // [passed, total]
		for _, g := range tbl.ByPrefix {
			c := g.Country
			if c == "" {
				c = g.Plurality
			}
			if c == "" {
				continue
			}
			v := pass[c]
			v[1]++
			if g.Reason == geoloc.NotFiltered {
				v[0]++
			}
			pass[c] = v
		}
		n99, n95 := 0, 0
		for _, v := range pass {
			share := float64(v[0]) / float64(v[1])
			if share >= 0.99 {
				n99++
			}
			if share >= 0.95 {
				n95++
			}
		}
		f.CountriesAt99 = append(f.CountriesAt99, n99)
		f.CountriesAt95 = append(f.CountriesAt95, n95)
		f.Countries = len(pass)
	}
	return f
}

// Render formats the sweep.
func (f Figure8) Render() string {
	var b strings.Builder
	b.WriteString("Figure 8: countries by share of prefixes passing the geolocation threshold\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %10s\n", "threshold", "≥99% pass", "≥95% pass", "countries")
	for i, th := range f.Thresholds {
		fmt.Fprintf(&b, "%-10.1f %12d %12d %10d\n", th, f.CountriesAt99[i], f.CountriesAt95[i], f.Countries)
	}
	return b.String()
}

// Figure9 is the prefix-length histogram of filtered prefixes.
type Figure9 struct {
	// CoveredByLen and NoConsensusByLen count filtered prefixes by length.
	CoveredByLen     map[int]int
	NoConsensusByLen map[int]int
}

// RunFigure9 extracts the histogram.
func RunFigure9(p *core.Pipeline) Figure9 {
	h := p.Geo.FilteredLengthHistogram()
	return Figure9{
		CoveredByLen:     h[geoloc.CoveredByMoreSpecifics],
		NoConsensusByLen: h[geoloc.NoConsensus],
	}
}

// Render formats the histogram and the covered-vs-consensus split the paper
// reports (85% covered by more specifics).
func (f Figure9) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9: filtered prefixes by length\n")
	total, covered := 0, 0
	lens := map[int]bool{}
	for l, n := range f.CoveredByLen {
		covered += n
		total += n
		lens[l] = true
	}
	for l, n := range f.NoConsensusByLen {
		total += n
		lens[l] = true
	}
	var ls []int
	for l := range lens {
		ls = append(ls, l)
	}
	sort.Ints(ls)
	fmt.Fprintf(&b, "%-6s %10s %14s\n", "len", "covered", "no-consensus")
	for _, l := range ls {
		fmt.Fprintf(&b, "/%-5d %10d %14d\n", l, f.CoveredByLen[l], f.NoConsensusByLen[l])
	}
	if total > 0 {
		fmt.Fprintf(&b, "covered-by-more-specifics share: %.0f%% (paper: 85%%)\n",
			100*float64(covered)/float64(total))
	}
	return b.String()
}

// Figure10 is the VP concentration across ASes per country.
type Figure10 struct {
	// Dist[country][k] = number of VPs living in ASes that host k VPs.
	Dist map[countries.Code]map[int]int
}

// RunFigure10 computes the concentration for countries with >7 VPs.
func RunFigure10(p *core.Pipeline) Figure10 {
	f := Figure10{Dist: map[countries.Code]map[int]int{}}
	for _, cc := range p.World.VPs.Census() {
		if cc.VPs <= 7 {
			continue
		}
		f.Dist[cc.Country] = p.World.VPs.ASConcentration(cc.Country)
	}
	return f
}

// Render formats per-country VP concentration.
func (f Figure10) Render() string {
	var b strings.Builder
	b.WriteString("Figure 10: VP distribution across ASes, by country\n")
	var cs []countries.Code
	for c := range f.Dist {
		cs = append(cs, c)
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	singles, total := 0, 0
	for _, c := range cs {
		var ks []int
		for k := range f.Dist[c] {
			ks = append(ks, k)
		}
		sort.Ints(ks)
		fmt.Fprintf(&b, "%-4s", c)
		for _, k := range ks {
			fmt.Fprintf(&b, "  %d-VP-AS:%d", k, f.Dist[c][k])
			total += f.Dist[c][k]
			if k == 1 {
				singles += f.Dist[c][k]
			}
		}
		b.WriteByte('\n')
	}
	if total > 0 {
		fmt.Fprintf(&b, "VPs alone in their AS: %.0f%% (paper: 81%%)\n", 100*float64(singles)/float64(total))
	}
	return b.String()
}

// geolocate re-runs prefix geolocation at an alternate threshold.
func geolocate(p *core.Pipeline, announced []netip.Prefix, th float64) *geoloc.Table {
	return geoloc.GeolocatePrefixes(p.World.Geo, announced, th)
}
