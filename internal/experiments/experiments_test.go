package experiments

import (
	"strings"
	"sync"
	"testing"

	"countryrank/internal/core"
	"countryrank/internal/countries"
	"countryrank/internal/topology"
)

// Shared pipelines: experiments only read them, so building once keeps the
// test package fast.
var (
	pipeOnce sync.Once
	p21      *core.Pipeline
	p23      *core.Pipeline
)

func pipelines(t *testing.T) (*core.Pipeline, *core.Pipeline) {
	t.Helper()
	pipeOnce.Do(func() {
		p21 = core.NewPipeline(core.Options{Seed: 1, StubScale: 0.4, VPScale: 0.5})
		p23 = core.NewPipeline(core.Options{
			Seed: 1, Scenario: topology.Mar2023, StubScale: 0.4, VPScale: 0.5,
		})
	})
	return p21, p23
}

func TestTable1(t *testing.T) {
	p, _ := pipelines(t)
	tb := RunTable1(p)
	if tb.Stats.Total == 0 || tb.Stats.Counts[0] == 0 {
		t.Fatal("empty accounting")
	}
	out := tb.Render()
	for _, want := range []string{"accepted", "unstable", "loop", "VP no location"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 render missing %q", want)
		}
	}
}

func TestTable2(t *testing.T) {
	out := RunTable2().Render()
	for _, want := range []string{"AHN,CCN", "AHI,CCI", "AHC", "CCG"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestTable4(t *testing.T) {
	p, _ := pipelines(t)
	tb := RunTable4(p)
	if len(tb.Rows) < 10 {
		t.Fatalf("too few rows: %d", len(tb.Rows))
	}
	if tb.Rows[0].Country != "NL" {
		t.Errorf("top VP country = %v, want NL (Table 4)", tb.Rows[0].Country)
	}
	for _, r := range tb.Rows {
		if r.Country == "US" {
			if r.ASNs < tb.Rows[0].ASNs {
				t.Errorf("US should have the largest AS census: %d vs NL %d", r.ASNs, tb.Rows[0].ASNs)
			}
			if r.Addresses == 0 || r.Prefixes == 0 {
				t.Error("US census empty")
			}
		}
	}
	if !strings.Contains(tb.Render(), "NL") {
		t.Error("render missing NL")
	}
}

func TestCaseStudyAndTable9(t *testing.T) {
	p, _ := pipelines(t)
	ccg, _ := p.Global()
	cs := RunCaseStudy(p, "AU", 2, ccg)
	if len(cs.Rows) < 3 {
		t.Fatalf("case study too small: %+v", cs.Rows)
	}
	found := map[uint32]bool{}
	for _, r := range cs.Rows {
		found[uint32(r.ASN)] = true
	}
	for _, want := range []uint32{1221, 4826} {
		if !found[want] {
			t.Errorf("AU case study missing AS%d", want)
		}
	}
	if !strings.Contains(cs.Render(), "Telstra") {
		t.Error("render missing Telstra")
	}

	t9 := RunTable9(p, "AU")
	if len(t9.ConeRows) != 10 || len(t9.HegRows) != 10 {
		t.Fatalf("table 9 sizes: %d/%d", len(t9.ConeRows), len(t9.HegRows))
	}
	// Global ranks must be populated for the multinationals.
	multinationalSeen := false
	for _, r := range t9.ConeRows {
		if r.Info.Country != "AU" && r.CCGRank > 0 && r.CCGRank <= 10 {
			multinationalSeen = true
		}
	}
	if !multinationalSeen {
		t.Error("no multinational with top-10 CCG in AU's CCI list")
	}
	if !strings.Contains(t9.Render(), "AHC") {
		t.Error("render missing AHC column")
	}
}

func TestTemporalRussiaAndTaiwan(t *testing.T) {
	a, b := pipelines(t)
	ru := RunTemporal(a, b, "RU")
	if len(ru.ConeDelta) != 10 || len(ru.HegDelta) != 10 {
		t.Fatalf("delta sizes: %d/%d", len(ru.ConeDelta), len(ru.HegDelta))
	}
	if ru.ForeignShareTop10() < 3 {
		t.Errorf("Russia should stay foreign-dependent: %d foreign in top 10", ru.ForeignShareTop10())
	}
	if !strings.Contains(ru.Render(), "Rostelecom") {
		t.Error("render missing Rostelecom")
	}

	tw := RunTemporal(a, b, "TW")
	oldCT, _ := tw.ConeOldFul.RankOf(4134)
	if oldCT == 0 || oldCT > 15 {
		t.Errorf("2021 China Telecom CCI rank = %d", oldCT)
	}
	newTop := map[uint32]bool{}
	for _, d := range tw.ConeDelta {
		newTop[uint32(d.ASN)] = true
	}
	if newTop[4134] {
		t.Error("China Telecom should have left Taiwan's CCI top 10 by 2023")
	}
}

func TestTable12AndFigure7(t *testing.T) {
	p, _ := pipelines(t)
	t12 := RunTable12(p)
	if len(t12.Rows) < 5 {
		t.Fatalf("table 12 too small: %d rows", len(t12.Rows))
	}
	if t12.Rows[0].Registered != "US" {
		t.Errorf("top serving country = %v, want US (§6.3)", t12.Rows[0].Registered)
	}
	if t12.USShare < 0.5 {
		t.Errorf("US share = %.2f, want the dominant majority", t12.USShare)
	}
	if !strings.Contains(t12.Render(), "U.S.") {
		t.Error("render missing US share line")
	}

	f7 := RunFigure7(p)
	if f7.MaxRussianAHI["TM"] < 0.2 {
		t.Errorf("Turkmenistan Russian AHI = %f, want > 0.2", f7.MaxRussianAHI["TM"])
	}
	if f7.MaxRussianAHI["UA"] > 0.2 {
		t.Errorf("Ukraine Russian AHI = %f, want low (Figure 7)", f7.MaxRussianAHI["UA"])
	}
	if !strings.Contains(f7.Render(), "TM") {
		t.Error("figure 7 render missing TM")
	}
}

func TestGeolocFigures(t *testing.T) {
	p, _ := pipelines(t)
	f8 := RunFigure8(p)
	if len(f8.Thresholds) != len(f8.CountriesAt99) {
		t.Fatal("figure 8 series mismatch")
	}
	for i := 1; i < len(f8.CountriesAt99); i++ {
		if f8.CountriesAt99[i] > f8.CountriesAt99[i-1] {
			t.Errorf("pass counts should not rise with threshold: %v", f8.CountriesAt99)
		}
	}
	if !strings.Contains(f8.Render(), "threshold") {
		t.Error("figure 8 render")
	}

	f9 := RunFigure9(p)
	covered, nc := 0, 0
	for _, n := range f9.CoveredByLen {
		covered += n
	}
	for _, n := range f9.NoConsensusByLen {
		nc += n
	}
	if covered == 0 || nc == 0 {
		t.Fatalf("figure 9 empty: covered=%d noconsensus=%d", covered, nc)
	}
	if covered <= nc {
		t.Errorf("covered-by-more-specifics (%d) should dominate (%d), as in the paper's 85%%", covered, nc)
	}

	t1314 := RunTable13_14(p)
	for _, tough := range []countries.Code{"IM", "GG", "MQ", "NA"} {
		if t1314.PctPrefixes[tough] <= t1314.PctPrefixes["US"] {
			t.Errorf("%s should filter more prefixes than US: %.2f vs %.2f",
				tough, t1314.PctPrefixes[tough], t1314.PctPrefixes["US"])
		}
	}
	if !strings.Contains(t1314.Render(), "most filtered") {
		t.Error("table 13/14 render")
	}
}

func TestFigure10(t *testing.T) {
	p, _ := pipelines(t)
	f := RunFigure10(p)
	if len(f.Dist) == 0 {
		t.Fatal("empty figure 10")
	}
	singles, total := 0, 0
	for _, d := range f.Dist {
		for k, n := range d {
			total += n
			if k == 1 {
				singles += n
			}
		}
	}
	if float64(singles)/float64(total) < 0.6 {
		t.Errorf("single-VP share = %d/%d, want the large majority (Figure 10)", singles, total)
	}
}

func TestStabilityFigures(t *testing.T) {
	p, _ := pipelines(t)
	f4 := RunFigure4(p, 2, 7)
	if len(f4.AHN) == 0 || len(f4.CCN) == 0 {
		t.Fatal("figure 4 empty")
	}
	for _, c := range f4.AHN {
		if len(c.Points) == 0 {
			t.Fatalf("no points for %s", c.Country)
		}
		last := c.Points[len(c.Points)-1]
		if last.MeanNDCG < 0.95 {
			t.Errorf("%s full-sample NDCG = %f", c.Country, last.MeanNDCG)
		}
	}
	if f4.AHN[0].MinVPsFor(0.8) == 0 {
		t.Error("0.8 never reached")
	}
	if !strings.Contains(f4.Render(), "NDCG") {
		t.Error("figure 4 render")
	}

	f5 := RunFigure5(p, 2, 9)
	if len(f5.AHI) != 5 || len(f5.CCI) != 5 {
		t.Fatalf("figure 5 sizes: %d/%d", len(f5.AHI), len(f5.CCI))
	}
	if !strings.Contains(f5.Render(), "out-of-country") {
		t.Error("figure 5 render")
	}
}
