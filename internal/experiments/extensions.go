package experiments

import (
	"fmt"
	"sort"
	"strings"

	"countryrank/internal/asn"
	"countryrank/internal/bgp"
	"countryrank/internal/concentration"
	"countryrank/internal/core"
	"countryrank/internal/countries"
	"countryrank/internal/relation"
	"countryrank/internal/routing"
)

// The experiments below go beyond the paper's published evaluation: the
// concentration analysis its conclusion names as an application, the
// country-dependence matrix generalizing Figure 7, and the backup-path
// failure analysis §7 lists as future work.

// ConcentrationRow is one country's market structure.
type ConcentrationRow struct {
	Country countries.Code
	Market  concentration.Market
}

// Concentration is the per-country transit-market concentration extension.
type Concentration struct {
	Rows []ConcentrationRow // sorted by descending HHI
}

// RunConcentration measures each case-study country's national transit
// market.
func RunConcentration(p *core.Pipeline, cs []countries.Code) Concentration {
	var out Concentration
	for _, c := range cs {
		recs := p.ViewRecords(core.National, c)
		out.Rows = append(out.Rows, ConcentrationRow{
			Country: c,
			Market:  concentration.Compute(p.DS, recs),
		})
	}
	sort.Slice(out.Rows, func(i, j int) bool { return out.Rows[i].Market.HHI > out.Rows[j].Market.HHI })
	return out
}

// Render formats the concentration table.
func (c Concentration) Render() string {
	var b strings.Builder
	b.WriteString("Extension: national transit-market concentration\n")
	fmt.Fprintf(&b, "%-4s %8s %6s %6s  %s\n", "cc", "HHI", "CR1", "CR3", "leader")
	info := func(r ConcentrationRow) string {
		if len(r.Market.Shares) == 0 {
			return "-"
		}
		s := r.Market.Shares[0]
		return fmt.Sprintf("AS%d (%.0f%%)", uint32(s.ASN), 100*s.Share)
	}
	for _, r := range c.Rows {
		fmt.Fprintf(&b, "%-4s %8.0f %5.0f%% %5.0f%%  %s\n",
			r.Country, r.Market.HHI, 100*r.Market.CR1, 100*r.Market.CR3, info(r))
	}
	b.WriteString("(HHI > 2500 is conventionally a highly concentrated market)\n")
	return b.String()
}

// DependenceMatrix generalizes Figure 7 to every (server country, target
// country) pair: the maximum AHI any AS registered in one country holds
// over another country's address space.
type DependenceMatrix struct {
	Targets []countries.Code
	// Max[target][registered] = best AHI.
	Max map[countries.Code]map[countries.Code]float64
}

// RunDependenceMatrix computes the matrix for the given targets (nil =
// every country with prefixes).
func RunDependenceMatrix(p *core.Pipeline, targets []countries.Code) DependenceMatrix {
	if targets == nil {
		targets = p.DS.CountriesWithPrefixes()
	}
	m := DependenceMatrix{Targets: targets, Max: map[countries.Code]map[countries.Code]float64{}}
	info := p.Info()
	scores := ahiByTarget(p, targets)
	for ti, target := range targets {
		hs := scores[ti]
		if hs.Hegemony == nil {
			continue
		}
		row := map[countries.Code]float64{}
		for a, v := range hs.Hegemony {
			reg := info(a).Country
			if reg == "" || reg == target {
				continue
			}
			if v > row[reg] {
				row[reg] = v
			}
		}
		m.Max[target] = row
	}
	return m
}

// TopForeignDependence returns each target's strongest foreign dependence.
func (m DependenceMatrix) TopForeignDependence(target countries.Code) (countries.Code, float64) {
	var best countries.Code
	var bv float64
	var regs []countries.Code
	for r := range m.Max[target] {
		regs = append(regs, r)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
	for _, r := range regs {
		if v := m.Max[target][r]; v > bv {
			bv, best = v, r
		}
	}
	return best, bv
}

// Render formats each target's top foreign dependence.
func (m DependenceMatrix) Render() string {
	var b strings.Builder
	b.WriteString("Extension: strongest foreign dependence per country (max AHI)\n")
	for _, t := range m.Targets {
		c, v := m.TopForeignDependence(t)
		if c == "" {
			continue
		}
		fmt.Fprintf(&b, "%-4s depends most on %-4s (AHI %.0f%%)\n", t, c, 100*v)
	}
	return b.String()
}

// InferenceValidation scores the relationship-inference substrate against
// generator ground truth: the validation the paper could only sample
// (§2, "lack of ground truth").
type InferenceValidation struct {
	CliqueHits, CliqueSize, CliqueTruth int
	Val                                 relation.Validation
}

// RunInferenceValidation infers relationships from the pipeline's accepted
// paths and scores them against the world's ground truth.
func RunInferenceValidation(p *core.Pipeline) InferenceValidation {
	seen := map[string]bool{}
	var paths []bgp.Path
	for i := 0; i < p.DS.Len(); i++ {
		_, _, path := p.DS.Record(i)
		k := path.Key()
		if !seen[k] {
			seen[k] = true
			paths = append(paths, path)
		}
	}
	inferredClique := relation.InferClique(paths, 25)
	gt := map[asn.ASN]bool{}
	for _, a := range p.World.Clique {
		gt[a] = true
	}
	out := InferenceValidation{CliqueSize: len(inferredClique), CliqueTruth: len(p.World.Clique)}
	for _, a := range inferredClique {
		if gt[a] {
			out.CliqueHits++
		}
	}
	tbl := relation.Infer(paths, inferredClique)
	out.Val = relation.Validate(tbl, p.World.Graph)
	return out
}

// Render formats the validation summary.
func (v InferenceValidation) Render() string {
	var b strings.Builder
	b.WriteString("Extension: relationship-inference validation vs ground truth\n")
	fmt.Fprintf(&b, "clique: %d/%d inferred members are true clique ASes (truth size %d)\n",
		v.CliqueHits, v.CliqueSize, v.CliqueTruth)
	fmt.Fprintf(&b, "relationships: %d edges compared, %.1f%% correct\n",
		v.Val.Compared, 100*v.Val.Accuracy())
	for truth, m := range v.Val.Confusion {
		for inferred, n := range m {
			fmt.Fprintf(&b, "  %v mislabeled as %v: %d\n", truth, inferred, n)
		}
	}
	return b.String()
}

// Resilience is the §7 backup-path extension: fail each of a country's top
// AHI links and measure path churn, loss, and newly revealed topology.
type Resilience struct {
	Country countries.Code
	Impacts []routing.FailureImpact
}

// RunResilience fails the links between the country's top-AHI transit AS
// and its customers among the country's top origins.
func RunResilience(p *core.Pipeline, c countries.Code, maxLinks int) Resilience {
	out := Resilience{Country: c}
	cr := p.Country(c)
	g := p.World.Graph
	// Candidate links: edges from the top-5 AHI ASes to their customers.
	seen := map[[2]uint32]bool{}
	for _, e := range cr.AHI.Top(5) {
		for _, cust := range g.Customers(e.ASN) {
			k := [2]uint32{uint32(e.ASN), uint32(cust)}
			if seen[k] {
				continue
			}
			seen[k] = true
			out.Impacts = append(out.Impacts, routing.FailLink(p.Col, e.ASN, cust, p.Opt.Routing))
			if len(out.Impacts) >= maxLinks {
				return out
			}
		}
	}
	return out
}

// Render formats the failure impacts.
func (r Resilience) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: link-failure resilience for %s (backup-path analysis, §7)\n", r.Country)
	fmt.Fprintf(&b, "%-22s %10s %8s %10s\n", "failed link", "changed", "lost", "revealed")
	for _, im := range r.Impacts {
		fmt.Fprintf(&b, "AS%-8d → AS%-8d %9d %8d %10d\n",
			uint32(im.A), uint32(im.B), im.ChangedRecords, im.LostRecords, im.RevealedLinks)
	}
	return b.String()
}
