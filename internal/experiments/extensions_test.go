package experiments

import (
	"strings"
	"testing"

	"countryrank/internal/countries"
)

func TestConcentration(t *testing.T) {
	p, _ := pipelines(t)
	c := RunConcentration(p, []countries.Code{"AU", "US", "RU", "JP"})
	if len(c.Rows) != 4 {
		t.Fatalf("rows = %d", len(c.Rows))
	}
	byC := map[countries.Code]ConcentrationRow{}
	for _, r := range c.Rows {
		if r.Market.HHI <= 0 || r.Market.HHI > 10000 {
			t.Errorf("%s HHI = %f", r.Country, r.Market.HHI)
		}
		if r.Market.CR1 > r.Market.CR3 {
			t.Errorf("%s CR1 %f > CR3 %f", r.Country, r.Market.CR1, r.Market.CR3)
		}
		byC[r.Country] = r
	}
	// §5.4: the U.S. market is less concentrated than the incumbent-led
	// Australian one.
	if byC["US"].Market.HHI >= byC["AU"].Market.HHI {
		t.Errorf("US HHI %.0f should be below AU %.0f",
			byC["US"].Market.HHI, byC["AU"].Market.HHI)
	}
	if !strings.Contains(c.Render(), "HHI") {
		t.Error("render")
	}
}

func TestDependenceMatrix(t *testing.T) {
	p, _ := pipelines(t)
	m := RunDependenceMatrix(p, []countries.Code{"TM", "KZ", "UA", "AU"})
	// Central Asia depends on Russia; Ukraine does not (Figure 7).
	if c, v := m.TopForeignDependence("TM"); c != "RU" || v < 0.2 {
		t.Errorf("TM depends on %s at %f, want RU strongly", c, v)
	}
	if c, _ := m.TopForeignDependence("UA"); c == "RU" {
		t.Error("UA should not depend most on RU")
	}
	// Australia's strongest foreign dependence is a Western multinational.
	if c, v := m.TopForeignDependence("AU"); !(c == "SE" || c == "US") || v < 0.1 {
		t.Errorf("AU depends on %s at %f", c, v)
	}
	if !strings.Contains(m.Render(), "depends most on") {
		t.Error("render")
	}
}

func TestResilience(t *testing.T) {
	p, _ := pipelines(t)
	r := RunResilience(p, "JP", 2)
	if len(r.Impacts) == 0 {
		t.Fatal("no failure impacts")
	}
	for _, im := range r.Impacts {
		if im.TotalRecords == 0 {
			t.Errorf("impact %v-%v has no baseline", im.A, im.B)
		}
		if im.ChangedRecords < 0 || im.LostRecords < 0 {
			t.Errorf("negative counts: %+v", im)
		}
	}
	if !strings.Contains(r.Render(), "failed link") {
		t.Error("render")
	}
}

func TestInferenceValidation(t *testing.T) {
	p, _ := pipelines(t)
	v := RunInferenceValidation(p)
	if v.CliqueHits < v.CliqueSize*3/4 {
		t.Errorf("clique: %d/%d", v.CliqueHits, v.CliqueSize)
	}
	if v.Val.Compared < 500 || v.Val.Accuracy() < 0.85 {
		t.Errorf("validation: %d compared, %.3f accurate", v.Val.Compared, v.Val.Accuracy())
	}
	if !strings.Contains(v.Render(), "clique") {
		t.Error("render")
	}
}
