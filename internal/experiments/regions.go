package experiments

import (
	"fmt"
	"sort"
	"strings"

	"countryrank/internal/asn"
	"countryrank/internal/core"
	"countryrank/internal/countries"
	"countryrank/internal/hegemony"
	"countryrank/internal/par"
)

// ahiByTarget computes each target country's international-view hegemony
// across a bounded worker pool. Entry i is the zero Scores (nil map) when
// target i has no international records. Callers merge the results
// sequentially in target order, keeping output deterministic.
func ahiByTarget(p *core.Pipeline, targets []countries.Code) []hegemony.Scores {
	out := make([]hegemony.Scores, len(targets))
	par.ForEach(len(targets), func(i int) {
		recs := p.ViewRecords(core.International, targets[i])
		if len(recs) == 0 {
			return
		}
		out[i] = hegemony.Compute(p.DS, recs, p.Opt.Trim)
	})
	return out
}

// AHIThreshold is Table 12's bar for "serves a country".
const AHIThreshold = 0.1

// Table12Row aggregates, for ASes registered in one country, how many
// target countries per continent they serve with AHI above the threshold.
type Table12Row struct {
	Registered countries.Code
	// Served[continent] = number of countries with some AS from Registered
	// above the AHI threshold.
	Served map[countries.Continent]int
	Total  int
	// TopAS is the AS from Registered serving the most countries.
	TopAS        asn.ASN
	TopASName    string
	TopASServed  int
	TopASBestAHI float64
}

// Table12 is the continental-dominance analysis (§6.3).
type Table12 struct {
	Rows []Table12Row
	// CountriesPerContinent sizes each column.
	CountriesPerContinent map[countries.Continent]int
	// USShare is the fraction of countries served by a U.S. AS.
	USShare float64
}

// RunTable12 computes AHI for every country with prefixes and aggregates by
// the serving AS's registration country.
func RunTable12(p *core.Pipeline) Table12 {
	type serveKey struct {
		reg    countries.Code
		target countries.Code
	}
	served := map[serveKey]bool{}
	perAS := map[asn.ASN]map[countries.Code]float64{} // AS → target → AHI
	info := p.Info()

	targets := p.DS.CountriesWithPrefixes()
	scores := ahiByTarget(p, targets)
	for ti, target := range targets {
		hs := scores[ti]
		if hs.Hegemony == nil {
			continue
		}
		for a, v := range hs.Hegemony {
			if v <= AHIThreshold {
				continue
			}
			reg := info(a).Country
			if reg == "" {
				continue
			}
			served[serveKey{reg, target}] = true
			m := perAS[a]
			if m == nil {
				m = map[countries.Code]float64{}
				perAS[a] = m
			}
			m[target] = v
		}
	}

	t := Table12{CountriesPerContinent: map[countries.Continent]int{}}
	for _, c := range targets {
		if ct, ok := countries.ContinentOf(c); ok {
			t.CountriesPerContinent[ct]++
		}
	}

	byReg := map[countries.Code]*Table12Row{}
	for k := range served {
		r := byReg[k.reg]
		if r == nil {
			r = &Table12Row{Registered: k.reg, Served: map[countries.Continent]int{}}
			byReg[k.reg] = r
		}
		if ct, ok := countries.ContinentOf(k.target); ok {
			r.Served[ct]++
		}
		r.Total++
	}
	// Top AS per registration country.
	for a, targets := range perAS {
		reg := info(a).Country
		r := byReg[reg]
		if r == nil {
			continue
		}
		best := 0.0
		for _, v := range targets {
			if v > best {
				best = v
			}
		}
		if len(targets) > r.TopASServed ||
			(len(targets) == r.TopASServed && a < r.TopAS) {
			r.TopAS = a
			r.TopASName = info(a).Name
			r.TopASServed = len(targets)
			r.TopASBestAHI = best
		}
	}
	for _, r := range byReg {
		t.Rows = append(t.Rows, *r)
	}
	sort.Slice(t.Rows, func(i, j int) bool {
		if t.Rows[i].Total != t.Rows[j].Total {
			return t.Rows[i].Total > t.Rows[j].Total
		}
		return t.Rows[i].Registered < t.Rows[j].Registered
	})
	if us := byReg["US"]; us != nil && len(targets) > 0 {
		t.USShare = float64(us.Total) / float64(len(targets))
	}
	return t
}

// Render formats Table 12.
func (t Table12) Render() string {
	var b strings.Builder
	b.WriteString("Table 12: countries per continent served by each country's ASes (AHI > 0.1)\n")
	cts := countries.AllContinents()
	fmt.Fprintf(&b, "%-4s", "cc")
	for _, ct := range cts {
		fmt.Fprintf(&b, " %8.8s(%d)", string(ct), t.CountriesPerContinent[ct])
	}
	fmt.Fprintf(&b, " %7s  %s\n", "total", "top AS")
	for _, r := range t.Rows {
		if r.Total < 2 {
			continue
		}
		fmt.Fprintf(&b, "%-4s", r.Registered)
		for _, ct := range cts {
			fmt.Fprintf(&b, " %11d", r.Served[ct])
		}
		fmt.Fprintf(&b, " %7d  AS%d %s serves %d (best AHI %.0f%%)\n",
			r.Total, uint32(r.TopAS), r.TopASName, r.TopASServed, 100*r.TopASBestAHI)
	}
	fmt.Fprintf(&b, "share of countries served by a U.S. AS: %.0f%% (paper: 76%%)\n", 100*t.USShare)
	return b.String()
}

// Figure7 reports Russian ASes' AHI over former Soviet bloc countries.
type Figure7 struct {
	// MaxRussianAHI[country] is the highest AHI any RU-registered AS holds
	// toward the country.
	MaxRussianAHI map[countries.Code]float64
}

// RunFigure7 computes Russian hegemony over the ex-USSR countries plus
// Russia itself.
func RunFigure7(p *core.Pipeline) Figure7 {
	f := Figure7{MaxRussianAHI: map[countries.Code]float64{}}
	info := p.Info()
	targets := append(countries.FormerSovietBloc(), "RU")
	scores := ahiByTarget(p, targets)
	for ti, target := range targets {
		hs := scores[ti]
		if hs.Hegemony == nil {
			continue
		}
		best := 0.0
		for a, v := range hs.Hegemony {
			if info(a).Country == "RU" && v > best {
				best = v
			}
		}
		f.MaxRussianAHI[target] = best
	}
	return f
}

// Render formats Figure 7: which ex-Soviet countries still depend on
// Russian networks (AHI > 0.2 in the paper's reading).
func (f Figure7) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7: Russia's AHI over former Soviet bloc countries\n")
	var cs []countries.Code
	for c := range f.MaxRussianAHI {
		cs = append(cs, c)
	}
	sort.Slice(cs, func(i, j int) bool { return f.MaxRussianAHI[cs[i]] > f.MaxRussianAHI[cs[j]] })
	for _, c := range cs {
		dep := ""
		if f.MaxRussianAHI[c] > 0.2 {
			dep = "  << depends on Russian infrastructure"
		}
		fmt.Fprintf(&b, "%-4s %6.1f%%%s\n", c, 100*f.MaxRussianAHI[c], dep)
	}
	return b.String()
}
