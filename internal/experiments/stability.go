package experiments

import (
	"fmt"
	"sort"
	"strings"

	"countryrank/internal/core"
	"countryrank/internal/countries"
)

// StabilityCurve is one (metric, country) downsampling series.
type StabilityCurve struct {
	Metric  core.Metric
	Country countries.Code
	Points  []core.StabilityPoint
}

// MinVPsFor returns the smallest sample size whose mean NDCG reaches the
// threshold, or 0 when never reached — the paper's "k VPs for NDCG ≥ 0.9".
func (c StabilityCurve) MinVPsFor(threshold float64) int {
	for _, pt := range c.Points {
		if pt.MeanNDCG >= threshold {
			return pt.VPs
		}
	}
	return 0
}

// Figure4 is the national-view stability analysis: AHN and CCN NDCG curves
// for the five countries with the most in-country VPs.
type Figure4 struct {
	Countries []countries.Code
	AHN, CCN  []StabilityCurve
}

// RunFigure4 downsamples in-country VPs for the top-VP countries.
func RunFigure4(p *core.Pipeline, trials int, seed int64) Figure4 {
	f := Figure4{}
	census := p.World.VPs.Census()
	for i := 0; i < len(census) && i < 5; i++ {
		f.Countries = append(f.Countries, census[i].Country)
	}
	for _, c := range f.Countries {
		max := p.ViewVPCount(core.National, c)
		sizes := sampleSizes(max)
		f.AHN = append(f.AHN, StabilityCurve{
			Metric: core.AHN, Country: c,
			Points: p.Stability(core.AHN, c, sizes, trials, seed),
		})
		f.CCN = append(f.CCN, StabilityCurve{
			Metric: core.CCN, Country: c,
			Points: p.Stability(core.CCN, c, sizes, trials, seed+1),
		})
	}
	return f
}

// Render formats the curves plus the headline thresholds.
func (f Figure4) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4: national-view stability (NDCG vs in-country VPs)\n")
	renderCurves(&b, "AHN", f.AHN)
	renderCurves(&b, "CCN", f.CCN)
	fmt.Fprintf(&b, "VPs for NDCG ≥ 0.8: AHN %d, CCN %d (paper: 9 and 6)\n",
		maxMinVPs(f.AHN, 0.8), maxMinVPs(f.CCN, 0.8))
	fmt.Fprintf(&b, "VPs for NDCG ≥ 0.9: AHN %d, CCN %d (paper: 25 and 19)\n",
		maxMinVPs(f.AHN, 0.9), maxMinVPs(f.CCN, 0.9))
	return b.String()
}

// Figure5 is the international-view stability analysis.
type Figure5 struct {
	Countries []countries.Code
	AHI, CCI  []StabilityCurve
}

// RunFigure5 downsamples out-of-country VPs for the case-study countries.
func RunFigure5(p *core.Pipeline, trials int, seed int64) Figure5 {
	f := Figure5{Countries: []countries.Code{"AU", "JP", "RU", "US", "TW"}}
	for _, c := range f.Countries {
		max := p.ViewVPCount(core.International, c)
		sizes := sampleSizes(max)
		f.AHI = append(f.AHI, StabilityCurve{
			Metric: core.AHI, Country: c,
			Points: p.Stability(core.AHI, c, sizes, trials, seed),
		})
		f.CCI = append(f.CCI, StabilityCurve{
			Metric: core.CCI, Country: c,
			Points: p.Stability(core.CCI, c, sizes, trials, seed+1),
		})
	}
	return f
}

// Render formats the curves and the minimum-VP headline.
func (f Figure5) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5: international-view stability (NDCG vs out-of-country VPs)\n")
	renderCurves(&b, "AHI", f.AHI)
	renderCurves(&b, "CCI", f.CCI)
	fmt.Fprintf(&b, "VPs for NDCG ≥ 0.9: AHI %d, CCI %d (paper: stable by 91–411 VPs)\n",
		maxMinVPs(f.AHI, 0.9), maxMinVPs(f.CCI, 0.9))
	return b.String()
}

// sampleSizes builds a roughly geometric grid of VP sample sizes up to max.
func sampleSizes(max int) []int {
	if max <= 0 {
		return nil
	}
	base := []int{1, 2, 3, 4, 6, 9, 13, 19, 25, 40, 60, 91, 140, 200, 300, 411, 550, 700}
	var out []int
	for _, n := range base {
		if n < max {
			out = append(out, n)
		}
	}
	out = append(out, max)
	sort.Ints(out)
	return out
}

func renderCurves(b *strings.Builder, name string, curves []StabilityCurve) {
	for _, c := range curves {
		fmt.Fprintf(b, "  %s %-3s:", name, c.Country)
		for _, pt := range c.Points {
			fmt.Fprintf(b, " %d:%.2f", pt.VPs, pt.MeanNDCG)
		}
		b.WriteByte('\n')
	}
}

// maxMinVPs returns the largest per-country minimum VP count to reach the
// threshold (the conservative "enough VPs anywhere" bound).
func maxMinVPs(curves []StabilityCurve, threshold float64) int {
	out := 0
	for _, c := range curves {
		if v := c.MinVPsFor(threshold); v > out {
			out = v
		}
	}
	return out
}
