package experiments

import (
	"fmt"
	"strings"

	"countryrank/internal/core"
	"countryrank/internal/countries"
	"countryrank/internal/rank"
)

// Temporal compares a country's CCI and AHI top-10 across two snapshots:
// the format of Table 10 (Russia 2021→2023) and Table 11 (Taiwan).
type Temporal struct {
	Country    countries.Code
	OldLabel   string
	NewLabel   string
	ConeOld    []rank.Entry // old CCI top 10
	ConeDelta  []rank.DeltaEntry
	HegOld     []rank.Entry // old AHI top 10
	HegDelta   []rank.DeltaEntry
	ConeOldFul *rank.Ranking
	HegOldFull *rank.Ranking
}

// RunTemporal computes the two-snapshot comparison for country c.
func RunTemporal(pOld, pNew *core.Pipeline, c countries.Code) Temporal {
	oldR := pOld.Country(c)
	newR := pNew.Country(c)
	return Temporal{
		Country:    c,
		OldLabel:   string(pOld.World.Config.Scenario),
		NewLabel:   string(pNew.World.Config.Scenario),
		ConeOld:    oldR.CCI.Top(10),
		ConeDelta:  rank.Delta(oldR.CCI, newR.CCI, 10),
		HegOld:     oldR.AHI.Top(10),
		HegDelta:   rank.Delta(oldR.AHI, newR.AHI, 10),
		ConeOldFul: oldR.CCI,
		HegOldFull: oldR.AHI,
	}
}

// ForeignShareTop10 returns how many of the new snapshot's top-10 CCI ASes
// are registered outside the country: the paper's headline for Russia
// ("dependence on foreign transit has not decreased").
func (t Temporal) ForeignShareTop10() int {
	n := 0
	for _, d := range t.ConeDelta {
		if d.Info.Country != t.Country {
			n++
		}
	}
	return n
}

// Render formats the side-by-side comparison in Table 10/11 style.
func (t Temporal) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Temporal %s: %s → %s\n", t.Country, t.OldLabel, t.NewLabel)
	b.WriteString("customer cone (CCI):\n")
	renderDeltaSide(&b, t.ConeOld, t.ConeDelta)
	b.WriteString("hegemony (AHI):\n")
	renderDeltaSide(&b, t.HegOld, t.HegDelta)
	fmt.Fprintf(&b, "foreign ASes in new CCI top-10: %d\n", t.ForeignShareTop10())
	return b.String()
}

func renderDeltaSide(b *strings.Builder, old []rank.Entry, delta []rank.DeltaEntry) {
	fmt.Fprintf(b, "  %-3s %-28s %8s | %-28s %6s %8s\n", "#", "old", "value", "new", "Δrank", "Δvalue")
	for i := 0; i < len(old) || i < len(delta); i++ {
		left := ""
		if i < len(old) {
			e := old[i]
			left = fmt.Sprintf("%-28s %7.1f%%", label(e), 100*e.Value)
		} else {
			left = strings.Repeat(" ", 37)
		}
		right := ""
		if i < len(delta) {
			d := delta[i]
			move := "new"
			if d.WasRanked {
				move = fmt.Sprintf("%+d", d.RankDelta)
			}
			right = fmt.Sprintf("%-28s %6s %+7.1f%%",
				fmt.Sprintf("%d %s %s", uint32(d.ASN), d.Info.Name, d.Info.Country),
				move, 100*d.ValueDiff)
		}
		fmt.Fprintf(b, "  %-3d %s | %s\n", i+1, left, right)
	}
}

func label(e rank.Entry) string {
	return fmt.Sprintf("%d %s %s", uint32(e.ASN), e.Info.Name, e.Info.Country)
}
