// Package export writes the artifacts the paper promises to share for
// reproducibility (§1, contribution 5): the country-inferred AS rankings,
// the AS-path input data, the VP geolocations, and the per-country
// geolocation statistics — all as CSV, the least-surprising interchange
// format for measurement datasets.
package export

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"countryrank/internal/geoloc"
	"countryrank/internal/rank"
	"countryrank/internal/sanitize"
	"countryrank/internal/vp"
)

// WriteRankingCSV writes one ranking: rank,asn,name,country,value.
func WriteRankingCSV(w io.Writer, r *rank.Ranking) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rank", "asn", "name", "country", "value"}); err != nil {
		return err
	}
	for _, e := range r.Entries {
		rec := []string{
			strconv.Itoa(e.Rank),
			strconv.FormatUint(uint64(e.ASN), 10),
			e.Info.Name,
			string(e.Info.Country),
			strconv.FormatFloat(e.Value, 'f', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteVPGeoCSV writes the vantage-point geolocations: index, address, AS,
// collector, country ("" when the collector is multi-hop), feed type.
func WriteVPGeoCSV(w io.Writer, set *vp.Set) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"vp", "address", "asn", "collector", "country", "feed"}); err != nil {
		return err
	}
	for i := 0; i < set.Len(); i++ {
		v := set.VP(i)
		country, _ := set.Country(i)
		feed := "full"
		if v.Feed == vp.CustomerFeed {
			feed = "customer"
		}
		rec := []string{
			strconv.Itoa(i),
			v.Addr.String(),
			strconv.FormatUint(uint64(v.AS), 10),
			v.Collector,
			string(country),
			feed,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePathsCSV writes the sanitized AS-path input data: vp, prefix,
// prefix country, path (space-separated ASNs). limit > 0 truncates the
// output (the full set runs to millions of rows).
func WritePathsCSV(w io.Writer, ds *sanitize.Dataset, limit int) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"vp", "prefix", "country", "path"}); err != nil {
		return err
	}
	n := ds.Len()
	if limit > 0 && limit < n {
		n = limit
	}
	for i := 0; i < n; i++ {
		vpIdx, pfxIdx, path := ds.Record(i)
		pathStr := ""
		for j, a := range path {
			if j > 0 {
				pathStr += " "
			}
			pathStr += strconv.FormatUint(uint64(a), 10)
		}
		rec := []string{
			strconv.Itoa(int(vpIdx)),
			ds.PrefixOf(i).String(),
			string(ds.PrefixCountry[pfxIdx]),
			pathStr,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteGeoStatsCSV writes per-country geolocation accounting (Tables 4 and
// 13/14 source data).
func WriteGeoStatsCSV(w io.Writer, t *geoloc.Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"country", "prefixes", "addresses",
		"filtered_prefixes", "filtered_addresses",
		"pct_prefixes_filtered", "pct_addresses_filtered",
	}); err != nil {
		return err
	}
	for _, s := range t.CountryStats() {
		rec := []string{
			string(s.Country),
			strconv.Itoa(s.Prefixes),
			strconv.FormatUint(s.Addresses, 10),
			strconv.Itoa(s.FilteredPrefixes),
			strconv.FormatUint(s.FilteredAddresses, 10),
			fmt.Sprintf("%.3f", s.PctPrefixesFiltered()),
			fmt.Sprintf("%.3f", s.PctAddressesFiltered()),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
