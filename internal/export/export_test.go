package export

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"countryrank/internal/asn"
	"countryrank/internal/countries"
	"countryrank/internal/geoloc"
	"countryrank/internal/metrictest"
	"countryrank/internal/netx"
	"countryrank/internal/rank"
	"countryrank/internal/vp"

	"net/netip"
)

func parse(t *testing.T, b *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(b).ReadAll()
	if err != nil {
		t.Fatalf("csv parse: %v", err)
	}
	return rows
}

func TestWriteRankingCSV(t *testing.T) {
	r := rank.New("CCI", map[asn.ASN]float64{1221: 0.44, 4826: 0.81}, func(a asn.ASN) rank.ASInfo {
		return rank.ASInfo{Name: "n" + a.String(), Country: "AU"}
	}, false)
	var buf bytes.Buffer
	if err := WriteRankingCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	rows := parse(t, &buf)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != "rank" || rows[1][1] != "4826" || rows[2][1] != "1221" {
		t.Errorf("rows = %v", rows)
	}
	if !strings.HasPrefix(rows[1][4], "0.81") {
		t.Errorf("value = %q", rows[1][4])
	}
}

func TestWriteVPGeoCSV(t *testing.T) {
	set, err := vp.NewSet(
		[]vp.Collector{
			{Name: "rc", ID: netip.MustParseAddr("10.0.0.1"), Country: "US"},
			{Name: "mh", ID: netip.MustParseAddr("10.0.0.2"), Country: "NL", MultiHop: true},
		},
		[]vp.VP{
			{Index: 0, Addr: netip.MustParseAddr("10.1.0.1"), AS: 3356, Collector: "rc"},
			{Index: 1, Addr: netip.MustParseAddr("10.1.0.2"), AS: 1299, Collector: "mh", Feed: vp.CustomerFeed},
		})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteVPGeoCSV(&buf, set); err != nil {
		t.Fatal(err)
	}
	rows := parse(t, &buf)
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[1][4] != "US" || rows[2][4] != "" {
		t.Errorf("countries = %q / %q (multi-hop must be blank)", rows[1][4], rows[2][4])
	}
	if rows[2][5] != "customer" {
		t.Errorf("feed = %q", rows[2][5])
	}
}

func TestWritePathsCSV(t *testing.T) {
	ds := metrictest.Dataset([]countries.Code{"US"}, []metrictest.Rec{
		{VP: 0, Prefix: "9.0.0.0/24", PrefixCountry: "AU", Path: []uint32{1, 5, 100}},
		{VP: 0, Prefix: "9.1.0.0/24", PrefixCountry: "AU", Path: []uint32{1, 200}},
	})
	var buf bytes.Buffer
	if err := WritePathsCSV(&buf, ds, 0); err != nil {
		t.Fatal(err)
	}
	rows := parse(t, &buf)
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[1][3] != "1 5 100" {
		t.Errorf("path = %q", rows[1][3])
	}
	// Limit truncates.
	buf.Reset()
	if err := WritePathsCSV(&buf, ds, 1); err != nil {
		t.Fatal(err)
	}
	if rows := parse(t, &buf); len(rows) != 2 {
		t.Errorf("limited rows = %v", rows)
	}
}

func TestWriteGeoStatsCSV(t *testing.T) {
	var db geoloc.DB
	db.Add(netx.MustPrefix("1.0.0.0/8"), "US")
	tbl := geoloc.GeolocatePrefixes(&db, []netip.Prefix{netx.MustPrefix("1.0.0.0/16")}, 0.5)
	var buf bytes.Buffer
	if err := WriteGeoStatsCSV(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	rows := parse(t, &buf)
	if len(rows) != 2 || rows[1][0] != "US" || rows[1][1] != "1" {
		t.Errorf("rows = %v", rows)
	}
}
