// Package faultnet wraps a net.Conn with deterministic, seeded fault
// injection: added latency, partial writes, byte corruption, silent
// truncation, and mid-stream connection resets, all scriptable through a
// fault schedule keyed on the cumulative byte offset of the write stream.
//
// The collection layer must survive vantage points that flap, stall, and
// deliver partial tables; faultnet lets any session test inject those
// conditions reproducibly — the same seed and schedule always produce the
// same byte stream and the same failure points, so chaos tests are ordinary
// deterministic tests.
package faultnet

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Kind selects what a scheduled Fault does when the write stream reaches its
// offset.
type Kind uint8

const (
	// Reset closes the underlying connection immediately: the pending write
	// fails and the peer sees a hard close, like a TCP RST mid-stream.
	Reset Kind = iota
	// Truncate silently drops the rest of the current write (reporting
	// success to the caller) and then kills the connection on the next
	// operation: the crashed-host case, where the sender believes bytes
	// were delivered that never arrived.
	Truncate
	// Corrupt flips the low bit of the byte at the fault offset and lets
	// the stream continue: an undetected single-byte transport error.
	Corrupt
)

func (k Kind) String() string {
	switch k {
	case Reset:
		return "reset"
	case Truncate:
		return "truncate"
	case Corrupt:
		return "corrupt"
	}
	return "unknown"
}

// Fault is one scripted event: when the connection has written AtByte
// cumulative bytes, Kind fires. Schedules are sorted by AtByte at Wrap time.
type Fault struct {
	AtByte int64
	Kind   Kind
}

// Config parameterizes the injected faults. The zero value injects nothing
// and behaves like the bare connection.
type Config struct {
	// Seed drives the deterministic RNG behind jitter and chunk sizing.
	Seed int64
	// Latency delays every Read and Write; Jitter adds a uniform random
	// extra delay in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// MaxWrite caps the bytes forwarded per underlying Write call, splitting
	// large writes into random chunks of 1..MaxWrite bytes (partial writes).
	MaxWrite int
	// Schedule scripts faults at cumulative write offsets.
	Schedule []Fault
}

// ErrInjectedReset is returned by operations on a connection killed by a
// Reset or Truncate fault.
var ErrInjectedReset = errors.New("faultnet: injected connection reset")

// Conn is a net.Conn with fault injection layered over an inner connection.
type Conn struct {
	inner net.Conn
	cfg   Config

	mu       sync.Mutex
	rng      *rand.Rand
	written  int64   // cumulative bytes forwarded to inner
	schedule []Fault // remaining faults, ascending AtByte
	broken   bool    // a Reset/Truncate fired; all further ops fail
}

// Wrap layers fault injection over conn. The schedule is copied and sorted,
// so the caller's slice is not retained.
func Wrap(conn net.Conn, cfg Config) *Conn {
	sched := append([]Fault(nil), cfg.Schedule...)
	for i := 1; i < len(sched); i++ {
		for j := i; j > 0 && sched[j].AtByte < sched[j-1].AtByte; j-- {
			sched[j], sched[j-1] = sched[j-1], sched[j]
		}
	}
	return &Conn{
		inner:    conn,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		schedule: sched,
	}
}

// delay sleeps the configured latency plus jitter. Called with mu held only
// long enough to draw the jitter, never across the sleep.
func (c *Conn) delay() {
	if c.cfg.Latency == 0 && c.cfg.Jitter == 0 {
		return
	}
	d := c.cfg.Latency
	c.mu.Lock()
	if c.cfg.Jitter > 0 {
		d += time.Duration(c.rng.Int63n(int64(c.cfg.Jitter)))
	}
	c.mu.Unlock()
	time.Sleep(d)
}

// Read delegates to the inner connection after the injected latency.
func (c *Conn) Read(p []byte) (int, error) {
	c.delay()
	c.mu.Lock()
	broken := c.broken
	c.mu.Unlock()
	if broken {
		return 0, ErrInjectedReset
	}
	return c.inner.Read(p)
}

// Write forwards p through the fault model: chunked into partial writes,
// corrupted, truncated, or reset according to the schedule. It reports the
// bytes the caller believes were sent, which for Truncate exceeds the bytes
// actually delivered — exactly the lie a crashed host tells.
func (c *Conn) Write(p []byte) (int, error) {
	c.delay()
	total := 0
	for len(p) > 0 {
		c.mu.Lock()
		if c.broken {
			c.mu.Unlock()
			return total, ErrInjectedReset
		}
		chunk := len(p)
		if c.cfg.MaxWrite > 0 && chunk > c.cfg.MaxWrite {
			chunk = 1 + c.rng.Intn(c.cfg.MaxWrite)
		}
		// Apply the first scheduled fault that lands inside this chunk. A
		// corruption shrinks the chunk to end at the corrupted byte, so a
		// later fault in the same write gets its own iteration.
		var kill bool
		buf := p[:chunk]
		if len(c.schedule) > 0 && c.schedule[0].AtByte < c.written+int64(chunk) {
			f := c.schedule[0]
			off := int(f.AtByte - c.written)
			if off < 0 {
				off = 0
			}
			c.schedule = c.schedule[1:]
			switch f.Kind {
			case Corrupt:
				chunk = off + 1
				mut := append([]byte(nil), p[:chunk]...)
				mut[off] ^= 0x01
				buf = mut
			case Reset:
				c.broken = true
				c.mu.Unlock()
				c.inner.Close()
				return total, ErrInjectedReset
			case Truncate:
				// Deliver the bytes before the cut, swallow the rest.
				buf = p[:off]
				kill = true
			}
		}
		c.mu.Unlock()

		if len(buf) > 0 {
			n, err := c.inner.Write(buf)
			c.mu.Lock()
			c.written += int64(n)
			c.mu.Unlock()
			if err != nil {
				return total + n, err
			}
		}
		if kill {
			c.mu.Lock()
			c.broken = true
			c.mu.Unlock()
			c.inner.Close()
			// The caller is told the whole write succeeded.
			return total + len(p), nil
		}
		total += chunk
		p = p[chunk:]
	}
	return total, nil
}

// Close closes the inner connection.
func (c *Conn) Close() error { return c.inner.Close() }

// LocalAddr delegates to the inner connection.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr delegates to the inner connection.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline delegates to the inner connection.
func (c *Conn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline delegates to the inner connection.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline delegates to the inner connection.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }

// Written returns the cumulative bytes actually forwarded to the inner
// connection, the offset base the Schedule is keyed on.
func (c *Conn) Written() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.written
}

// Broken reports whether a Reset or Truncate fault has killed the
// connection.
func (c *Conn) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}
