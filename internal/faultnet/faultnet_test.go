package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// sink drains one side of a pipe into a buffer until EOF.
func sink(c net.Conn) (<-chan []byte, func()) {
	out := make(chan []byte, 1)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, c)
		out <- buf.Bytes()
	}()
	return out, func() { c.Close() }
}

func TestPassthrough(t *testing.T) {
	a, b := net.Pipe()
	got, stop := sink(b)
	defer stop()
	fc := Wrap(a, Config{})
	msg := []byte("hello over a perfect network")
	if n, err := fc.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("write = %d, %v", n, err)
	}
	fc.Close()
	if !bytes.Equal(<-got, msg) {
		t.Fatal("payload altered by zero-config wrapper")
	}
}

func TestPartialWritesDeterministic(t *testing.T) {
	payload := bytes.Repeat([]byte("abcdefgh"), 64)
	run := func(seed int64) []byte {
		a, b := net.Pipe()
		got, stop := sink(b)
		defer stop()
		fc := Wrap(a, Config{Seed: seed, MaxWrite: 7})
		if _, err := fc.Write(payload); err != nil {
			t.Fatalf("write: %v", err)
		}
		fc.Close()
		return <-got
	}
	if !bytes.Equal(run(42), payload) {
		t.Fatal("chunked write dropped or reordered bytes")
	}
	if !bytes.Equal(run(42), run(42)) {
		t.Fatal("same seed produced different streams")
	}
}

func TestCorruptFlipsOneBit(t *testing.T) {
	a, b := net.Pipe()
	got, stop := sink(b)
	defer stop()
	fc := Wrap(a, Config{Schedule: []Fault{{AtByte: 5, Kind: Corrupt}}})
	msg := []byte("0123456789")
	if _, err := fc.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	fc.Close()
	recv := <-got
	if len(recv) != len(msg) {
		t.Fatalf("received %d bytes, want %d", len(recv), len(msg))
	}
	for i := range msg {
		want := msg[i]
		if i == 5 {
			want ^= 0x01
		}
		if recv[i] != want {
			t.Fatalf("byte %d = %#x, want %#x", i, recv[i], want)
		}
	}
}

func TestResetKillsConnection(t *testing.T) {
	a, b := net.Pipe()
	got, stop := sink(b)
	defer stop()
	fc := Wrap(a, Config{Schedule: []Fault{{AtByte: 4, Kind: Reset}}})
	_, err := fc.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("write err = %v, want ErrInjectedReset", err)
	}
	if !fc.Broken() {
		t.Fatal("connection not marked broken after reset")
	}
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-reset write err = %v", err)
	}
	if n := len(<-got); n > 4 {
		t.Fatalf("peer received %d bytes past the reset point", n)
	}
}

func TestTruncateLiesAboutDelivery(t *testing.T) {
	a, b := net.Pipe()
	got, stop := sink(b)
	defer stop()
	fc := Wrap(a, Config{Schedule: []Fault{{AtByte: 6, Kind: Truncate}}})
	msg := []byte("0123456789")
	n, err := fc.Write(msg)
	if err != nil || n != len(msg) {
		t.Fatalf("truncated write reported %d, %v; want full success", n, err)
	}
	if recv := <-got; !bytes.Equal(recv, msg[:6]) {
		t.Fatalf("peer received %q, want the 6 bytes before the cut", recv)
	}
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-truncate write err = %v, want ErrInjectedReset", err)
	}
}

func TestLatencyDelaysWrites(t *testing.T) {
	a, b := net.Pipe()
	_, stop := sink(b)
	defer stop()
	fc := Wrap(a, Config{Seed: 1, Latency: 30 * time.Millisecond, Jitter: 10 * time.Millisecond})
	start := time.Now()
	if _, err := fc.Write([]byte("delayed")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("write completed in %v, want >= 30ms latency", d)
	}
	fc.Close()
}

func TestScheduleSortedAndSequential(t *testing.T) {
	a, b := net.Pipe()
	got, stop := sink(b)
	defer stop()
	// Out-of-order schedule: both corruptions must land at their offsets.
	fc := Wrap(a, Config{Schedule: []Fault{
		{AtByte: 8, Kind: Corrupt},
		{AtByte: 2, Kind: Corrupt},
	}})
	msg := []byte("aaaaaaaaaaaa")
	if _, err := fc.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	fc.Close()
	recv := <-got
	for i, c := range recv {
		want := byte('a')
		if i == 2 || i == 8 {
			want ^= 0x01
		}
		if c != want {
			t.Fatalf("byte %d = %#x, want %#x", i, c, want)
		}
	}
}
