// Package geoloc implements prefix geolocation per §3.2.1 and Appendix B of
// the paper. A DB plays the role the NetAcuity commercial service plays in
// the paper: it answers "which country is this address in" at arbitrary
// granularity. On top of it, GeolocatePrefixes implements the paper's
// pipeline: split announced prefixes into non-overlapping blocks mapped to
// their most specific prefix, drop prefixes entirely covered by more
// specifics, and assign each remaining prefix to a country only when at
// least a majority-threshold share of its addresses agree.
package geoloc

import (
	"fmt"
	"net/netip"
	"sort"

	"countryrank/internal/countries"
	"countryrank/internal/netx"
)

// DB is an address-to-country database. Entries are CIDR-aligned and the
// most specific entry covering an address wins, like a commercial
// geolocation feed flattened to country granularity.
type DB struct {
	trie netx.Trie[countries.Code]
}

// Add records that every address of p geolocates to country c, unless a more
// specific entry overrides part of p.
func (db *DB) Add(p netip.Prefix, c countries.Code) {
	db.trie.Insert(p, c)
}

// Len returns the number of DB entries.
func (db *DB) Len() int { return db.trie.Len() }

// CountryOf returns the country of a single address.
func (db *DB) CountryOf(addr netip.Addr) (countries.Code, bool) {
	_, c, ok := db.trie.Lookup(addr)
	return c, ok
}

// WeightByCountry accumulates into acc the number of addresses of block
// geolocated to each country. Addresses with no DB entry are accumulated
// under the empty Code.
func (db *DB) WeightByCountry(block netip.Prefix, acc map[countries.Code]uint64) {
	if len(db.trie.Descendants(block)) == 0 {
		// No finer-grained entries inside the block: the longest match of any
		// address in it is uniform across the block.
		c, ok := db.CountryOf(block.Addr())
		if !ok {
			c = ""
		}
		acc[c] += netx.AddressWeight(block)
		return
	}
	lo, hi := netx.Halves(block)
	db.WeightByCountry(lo, acc)
	db.WeightByCountry(hi, acc)
}

// FilterReason explains why a prefix received no country.
type FilterReason uint8

const (
	// NotFiltered marks prefixes that geolocated successfully.
	NotFiltered FilterReason = iota
	// CoveredByMoreSpecifics marks prefixes whose entire address space is
	// covered by more specific announced prefixes (1.2% in the paper).
	CoveredByMoreSpecifics
	// NoConsensus marks prefixes where no country reached the majority
	// threshold (0.2% of prefixes, 1.5% of addresses in the paper).
	NoConsensus
)

func (r FilterReason) String() string {
	switch r {
	case NotFiltered:
		return "ok"
	case CoveredByMoreSpecifics:
		return "covered-by-more-specifics"
	case NoConsensus:
		return "no-geolocation-consensus"
	}
	return fmt.Sprintf("FilterReason(%d)", r)
}

// PrefixGeo is the geolocation outcome for one announced prefix.
type PrefixGeo struct {
	Prefix  netip.Prefix
	Country countries.Code // valid only when Reason == NotFiltered
	Reason  FilterReason
	// Majority is the address share of the winning (or plurality) country.
	Majority float64
	// Plurality is the country with the largest address share even when the
	// threshold was not met; used by the Figure 8 threshold sweep and the
	// Table 13/14 per-country filter accounting.
	Plurality countries.Code
}

// Table is the result of geolocating a set of announced prefixes.
type Table struct {
	ByPrefix map[netip.Prefix]PrefixGeo
	// Threshold is the majority threshold used (the paper uses 0.50).
	Threshold float64
}

// GeolocatePrefixes runs the §3.2.1 pipeline over the announced prefixes.
func GeolocatePrefixes(db *DB, announced []netip.Prefix, threshold float64) *Table {
	t := &Table{ByPrefix: make(map[netip.Prefix]PrefixGeo, len(announced)), Threshold: threshold}

	var cover netx.Trie[struct{}]
	for _, p := range announced {
		cover.Insert(p, struct{}{})
	}
	blocks := netx.SplitBlocks(announced)
	blocksByOwner := map[netip.Prefix][]netip.Prefix{}
	for _, b := range blocks {
		blocksByOwner[b.Owner] = append(blocksByOwner[b.Owner], b.Prefix)
	}

	for _, pv := range cover.All() { // canonical order, deduplicated
		p := pv.Prefix
		owned := blocksByOwner[p]
		if len(owned) == 0 {
			t.ByPrefix[p] = PrefixGeo{Prefix: p, Reason: CoveredByMoreSpecifics}
			continue
		}
		acc := map[countries.Code]uint64{}
		for _, b := range owned {
			db.WeightByCountry(b, acc)
		}
		var total, best uint64
		var bestC countries.Code
		for c, w := range acc {
			total += w
			if c == "" {
				continue // unlocatable addresses never win
			}
			if w > best || (w == best && c < bestC) {
				best, bestC = w, c
			}
		}
		g := PrefixGeo{Prefix: p, Plurality: bestC}
		if total > 0 {
			g.Majority = float64(best) / float64(total)
		}
		// Appendix B: the winning country's share must be *above* the
		// threshold, so an exact 50/50 split fails at the 0.5 threshold.
		if bestC != "" && g.Majority > threshold {
			g.Country = bestC
			g.Reason = NotFiltered
		} else {
			g.Reason = NoConsensus
		}
		t.ByPrefix[p] = g
	}
	return t
}

// Country returns the country of p, with ok false when p was filtered or
// never geolocated.
func (t *Table) Country(p netip.Prefix) (countries.Code, bool) {
	g, ok := t.ByPrefix[p]
	if !ok || g.Reason != NotFiltered {
		return "", false
	}
	return g.Country, true
}

// CountryStat aggregates per-country accounting for Tables 4, 13 and 14.
type CountryStat struct {
	Country countries.Code
	// Prefixes and Addresses count successfully geolocated prefixes.
	Prefixes  int
	Addresses uint64
	// FilteredPrefixes / FilteredAddresses count prefixes attributed to the
	// country by plurality that the threshold filtered (Tables 13/14).
	FilteredPrefixes  int
	FilteredAddresses uint64
}

// PctPrefixesFiltered returns the Table 13 percentage for the country.
func (s CountryStat) PctPrefixesFiltered() float64 {
	n := s.Prefixes + s.FilteredPrefixes
	if n == 0 {
		return 0
	}
	return 100 * float64(s.FilteredPrefixes) / float64(n)
}

// PctAddressesFiltered returns the Table 14 percentage for the country.
func (s CountryStat) PctAddressesFiltered() float64 {
	n := s.Addresses + s.FilteredAddresses
	if n == 0 {
		return 0
	}
	return 100 * float64(s.FilteredAddresses) / float64(n)
}

// CountryStats returns per-country accounting sorted by country code.
// Covered-by-more-specific prefixes belong to no country and are excluded,
// matching the paper (they carry no forwarded traffic).
func (t *Table) CountryStats() []CountryStat {
	m := map[countries.Code]*CountryStat{}
	get := func(c countries.Code) *CountryStat {
		s := m[c]
		if s == nil {
			s = &CountryStat{Country: c}
			m[c] = s
		}
		return s
	}
	for _, g := range t.ByPrefix {
		switch g.Reason {
		case NotFiltered:
			s := get(g.Country)
			s.Prefixes++
			s.Addresses += netx.AddressWeight(g.Prefix)
		case NoConsensus:
			if g.Plurality == "" {
				continue
			}
			s := get(g.Plurality)
			s.FilteredPrefixes++
			s.FilteredAddresses += netx.AddressWeight(g.Prefix)
		}
	}
	out := make([]CountryStat, 0, len(m))
	for _, s := range m {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Country < out[j].Country })
	return out
}

// FilteredLengthHistogram returns, keyed by prefix length, how many prefixes
// each filter reason removed: the Figure 9 histogram.
func (t *Table) FilteredLengthHistogram() map[FilterReason]map[int]int {
	out := map[FilterReason]map[int]int{
		CoveredByMoreSpecifics: {},
		NoConsensus:            {},
	}
	for _, g := range t.ByPrefix {
		if g.Reason == NotFiltered {
			continue
		}
		out[g.Reason][g.Prefix.Bits()]++
	}
	return out
}
