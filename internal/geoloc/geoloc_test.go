package geoloc

import (
	"net/netip"
	"testing"

	"countryrank/internal/countries"
	"countryrank/internal/netx"
)

func TestCountryOf(t *testing.T) {
	var db DB
	db.Add(netx.MustPrefix("1.0.0.0/8"), "US")
	db.Add(netx.MustPrefix("1.2.0.0/16"), "CA")

	if c, ok := db.CountryOf(netip.MustParseAddr("1.1.1.1")); !ok || c != "US" {
		t.Errorf("1.1.1.1 = %v,%v", c, ok)
	}
	if c, ok := db.CountryOf(netip.MustParseAddr("1.2.3.4")); !ok || c != "CA" {
		t.Errorf("1.2.3.4 = %v,%v (more specific must win)", c, ok)
	}
	if _, ok := db.CountryOf(netip.MustParseAddr("9.9.9.9")); ok {
		t.Error("uncovered address should miss")
	}
}

func TestWeightByCountry(t *testing.T) {
	var db DB
	db.Add(netx.MustPrefix("1.0.0.0/8"), "US")
	db.Add(netx.MustPrefix("1.0.0.0/10"), "CA") // first quarter of the /8

	acc := map[countries.Code]uint64{}
	db.WeightByCountry(netx.MustPrefix("1.0.0.0/8"), acc)
	if acc["CA"] != 1<<22 {
		t.Errorf("CA weight = %d, want %d", acc["CA"], 1<<22)
	}
	if acc["US"] != 3<<22 {
		t.Errorf("US weight = %d, want %d", acc["US"], 3<<22)
	}

	// A block with no DB entry at all accumulates under "".
	acc = map[countries.Code]uint64{}
	db.WeightByCountry(netx.MustPrefix("7.0.0.0/24"), acc)
	if acc[""] != 256 {
		t.Errorf("unlocatable weight = %d", acc[""])
	}
}

func buildTestDB() *DB {
	var db DB
	db.Add(netx.MustPrefix("1.0.0.0/8"), "US")
	db.Add(netx.MustPrefix("2.0.0.0/8"), "JP")
	return &db
}

func TestGeolocateMajority(t *testing.T) {
	db := buildTestDB()
	// 75% US / 25% JP.
	db.Add(netx.MustPrefix("1.0.192.0/18"), "JP")
	tbl := GeolocatePrefixes(db, []netip.Prefix{netx.MustPrefix("1.0.0.0/16")}, 0.5)
	g := tbl.ByPrefix[netx.MustPrefix("1.0.0.0/16")]
	if g.Reason != NotFiltered || g.Country != "US" {
		t.Fatalf("got %+v, want US", g)
	}
	if g.Majority < 0.74 || g.Majority > 0.76 {
		t.Errorf("majority = %f", g.Majority)
	}
	if c, ok := tbl.Country(netx.MustPrefix("1.0.0.0/16")); !ok || c != "US" {
		t.Errorf("Country = %v,%v", c, ok)
	}
}

func TestGeolocateNoConsensus(t *testing.T) {
	db := buildTestDB()
	// JP 50%, DE 25%, US 25%: an exact half is not "above" the 50%
	// threshold (Appendix B), so the prefix is filtered.
	db.Add(netx.MustPrefix("1.1.128.0/18"), "JP")
	db.Add(netx.MustPrefix("1.1.192.0/18"), "DE")
	db.Add(netx.MustPrefix("1.1.64.0/18"), "JP")
	tbl := GeolocatePrefixes(db, []netip.Prefix{netx.MustPrefix("1.1.0.0/16")}, 0.5)
	g := tbl.ByPrefix[netx.MustPrefix("1.1.0.0/16")]
	if g.Reason != NoConsensus {
		t.Fatalf("got %+v, want no consensus", g)
	}
	if g.Plurality != "JP" {
		t.Errorf("plurality = %v, want JP at 50%%", g.Plurality)
	}
	if _, ok := tbl.Country(netx.MustPrefix("1.1.0.0/16")); ok {
		t.Error("filtered prefix should have no country")
	}
	// With a lower threshold, the same prefix passes (Figure 8's sweep).
	tbl2 := GeolocatePrefixes(db, []netip.Prefix{netx.MustPrefix("1.1.0.0/16")}, 0.3)
	if g2 := tbl2.ByPrefix[netx.MustPrefix("1.1.0.0/16")]; g2.Reason != NotFiltered || g2.Country != "JP" {
		t.Errorf("threshold 0.3: %+v", g2)
	}
}

func TestGeolocateCoveredByMoreSpecifics(t *testing.T) {
	db := buildTestDB()
	announced := []netip.Prefix{
		netx.MustPrefix("1.4.0.0/15"),
		netx.MustPrefix("1.4.0.0/16"),
		netx.MustPrefix("1.5.0.0/16"),
	}
	tbl := GeolocatePrefixes(db, announced, 0.5)
	if g := tbl.ByPrefix[netx.MustPrefix("1.4.0.0/15")]; g.Reason != CoveredByMoreSpecifics {
		t.Fatalf("parent: %+v", g)
	}
	for _, p := range announced[1:] {
		if g := tbl.ByPrefix[p]; g.Reason != NotFiltered || g.Country != "US" {
			t.Errorf("child %v: %+v", p, g)
		}
	}
	hist := tbl.FilteredLengthHistogram()
	if hist[CoveredByMoreSpecifics][15] != 1 {
		t.Errorf("histogram = %v", hist)
	}
}

func TestGeolocatePartialCoverageUsesOwnBlocks(t *testing.T) {
	db := buildTestDB()
	// Parent /15 half-covered by a /16 in another country: the parent's
	// own remaining block decides its geolocation.
	db.Add(netx.MustPrefix("1.6.0.0/16"), "JP")
	announced := []netip.Prefix{netx.MustPrefix("1.6.0.0/15"), netx.MustPrefix("1.6.0.0/16")}
	tbl := GeolocatePrefixes(db, announced, 0.5)
	parent := tbl.ByPrefix[netx.MustPrefix("1.6.0.0/15")]
	// Its only uncovered block is 1.7.0.0/16, all US.
	if parent.Reason != NotFiltered || parent.Country != "US" || parent.Majority != 1.0 {
		t.Fatalf("parent: %+v", parent)
	}
	child := tbl.ByPrefix[netx.MustPrefix("1.6.0.0/16")]
	if child.Country != "JP" {
		t.Fatalf("child: %+v", child)
	}
}

func TestCountryStats(t *testing.T) {
	db := buildTestDB()
	db.Add(netx.MustPrefix("1.1.64.0/18"), "JP")
	db.Add(netx.MustPrefix("1.1.128.0/18"), "JP")
	db.Add(netx.MustPrefix("1.1.192.0/18"), "DE")
	announced := []netip.Prefix{
		netx.MustPrefix("1.0.0.0/16"), // clean US
		netx.MustPrefix("1.1.0.0/16"), // 25 US / 50 JP / 25 DE → filtered, plurality JP
		netx.MustPrefix("2.0.0.0/16"), // clean JP
	}
	tbl := GeolocatePrefixes(db, announced, 0.51)
	stats := tbl.CountryStats()
	byC := map[countries.Code]CountryStat{}
	for _, s := range stats {
		byC[s.Country] = s
	}
	us := byC["US"]
	if us.Prefixes != 1 || us.Addresses != 65536 || us.FilteredPrefixes != 0 {
		t.Errorf("US stat = %+v", us)
	}
	jp := byC["JP"]
	if jp.Prefixes != 1 || jp.FilteredPrefixes != 1 || jp.FilteredAddresses != 65536 {
		t.Errorf("JP stat = %+v", jp)
	}
	if got := jp.PctPrefixesFiltered(); got != 50 {
		t.Errorf("JP pct prefixes filtered = %f", got)
	}
	if got := jp.PctAddressesFiltered(); got != 50 {
		t.Errorf("JP pct addresses filtered = %f", got)
	}
	if (CountryStat{}).PctPrefixesFiltered() != 0 {
		t.Error("empty stat should be 0%")
	}
}

func TestThresholdSweepMonotonic(t *testing.T) {
	db := buildTestDB()
	db.Add(netx.MustPrefix("1.1.0.0/17"), "JP")
	db.Add(netx.MustPrefix("1.2.0.0/18"), "JP")
	announced := []netip.Prefix{
		netx.MustPrefix("1.0.0.0/16"), netx.MustPrefix("1.1.0.0/16"),
		netx.MustPrefix("1.2.0.0/16"), netx.MustPrefix("2.0.0.0/16"),
	}
	prev := -1
	for _, th := range []float64{0.2, 0.4, 0.6, 0.8, 0.95} {
		tbl := GeolocatePrefixes(db, announced, th)
		ok := 0
		for _, g := range tbl.ByPrefix {
			if g.Reason == NotFiltered {
				ok++
			}
		}
		if prev >= 0 && ok > prev {
			t.Fatalf("passing prefixes increased from %d to %d as threshold rose to %f", prev, ok, th)
		}
		prev = ok
	}
}

func TestFilterReasonString(t *testing.T) {
	if NotFiltered.String() != "ok" || CoveredByMoreSpecifics.String() == "" || NoConsensus.String() == "" {
		t.Error("FilterReason strings")
	}
	if FilterReason(99).String() == "" {
		t.Error("unknown reason should still render")
	}
}
