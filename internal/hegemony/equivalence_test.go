package hegemony_test

import (
	"reflect"
	"testing"

	"countryrank/internal/core"
	"countryrank/internal/hegemony"
)

// TestDenseMatchesMapReference is the tentpole equivalence property: over
// several generated worlds, views, and trim settings, the dense-id kernel
// must produce byte-identical Scores to the retained map-based reference.
func TestDenseMatchesMapReference(t *testing.T) {
	for _, seed := range []int64{1, 5} {
		p := core.NewPipeline(core.Options{Seed: seed, StubScale: 0.15, VPScale: 0.2})
		views := map[string][]int32{
			"global":          nil,
			"intl-AU":         p.ViewRecords(core.International, "AU"),
			"intl-RU":         p.ViewRecords(core.International, "RU"),
			"natl-AU":         p.ViewRecords(core.National, "AU"),
			"outbound-JP":     p.ViewRecords(core.Outbound, "JP"),
			"empty-natl-none": p.ViewRecords(core.National, "ZZ"),
		}
		for name, recs := range views {
			for _, trim := range []float64{-1, 0, 0.10, 0.25} {
				got := hegemony.Compute(p.DS, recs, trim)
				want := hegemony.ComputeMapRef(p.DS, recs, trim)
				if got.VPCount != want.VPCount {
					t.Fatalf("seed %d %s trim %v: VPCount %d != %d",
						seed, name, trim, got.VPCount, want.VPCount)
				}
				if !reflect.DeepEqual(got.Hegemony, want.Hegemony) {
					t.Fatalf("seed %d %s trim %v: dense kernel diverges from map reference (%d vs %d ASes)",
						seed, name, trim, len(got.Hegemony), len(want.Hegemony))
				}
			}
		}
	}
}
