// Package hegemony implements the AS hegemony metric (§1.2, Figure 2): the
// likelihood that an AS lies on a path toward a set of prefixes. For each
// vantage point, every AS gets the address-weighted fraction of the VP's
// paths that contain it; the final score is the mean of the per-VP values
// after trimming the top and bottom 10%, which damps the bias of VPs that
// are topologically very near or very far from the AS.
package hegemony

import (
	"sort"
	"sync"

	"countryrank/internal/asn"
	"countryrank/internal/sanitize"
)

// DefaultTrim is the fraction trimmed from each end of the per-VP score
// distribution, following Fontugne et al.
const DefaultTrim = 0.10

// Scores holds hegemony values in [0, 1] per AS.
type Scores struct {
	Hegemony map[asn.ASN]float64
	// VPCount is the number of vantage points contributing to the view;
	// each AS's score averages over all of them (zeros included).
	VPCount int
}

// Value returns a's hegemony (0 when unseen).
func (s Scores) Value(a asn.ASN) float64 { return s.Hegemony[a] }

// scratch is the reusable flat working state of the dense kernel. All
// slices are indexed by the dataset's dense ids (or VP indexes) and sized
// lazily; the pool keeps them across calls so steady-state Compute does not
// allocate per-VP maps. Nothing in it escapes Compute.
//
// Pool invariant: vpCnt is all-zero, seen all-false, asW and counts all-zero
// between calls; every write is undone via the vpsUsed/touched/idsUsed dirty
// lists. That keeps each call O(records + touched entries) rather than
// O(total ASes + total VPs), which matters for stability trials over tiny
// VP subsets.
type scratch struct {
	vpCnt    []int32  // per VP: bucket size (doubles as scatter cursor)
	vpOff    []int32  // per VP: bucket offset into order (used VPs only)
	vpsUsed  []int32  // VPs with records, in first-appearance order
	order    []int32  // record positions grouped by VP, record order kept
	asW      []uint64 // per AS id: weight containing it, for the current VP
	seen     []bool   // per AS id: marker for the current VP
	touched  []int32  // AS ids touched by the current VP
	counts   []int32  // per AS id: contributing VPs (then scatter cursor)
	idsUsed  []int32  // AS ids scored by any VP this call
	offsets  []int32  // per AS id: start into vals (used ids only)
	pairIDs  []int32  // (id, value) pairs in VP-major order
	pairVals []float64
	vals     []float64 // per-AS value lists after counting-sort
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// grow returns s resized to n. A reallocation is zeroed by make; a resize
// within capacity exposes only entries the reset discipline already zeroed,
// so the pool invariant holds across either path.
func grow[T int32 | uint64 | float64 | bool](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Compute calculates hegemony over the given accepted-record positions of
// ds (nil means every record). trim is the per-side trim fraction; negative
// values select DefaultTrim, zero disables trimming (the ablation case).
//
// The kernel accumulates into flat dense-id slices drawn from a pool; its
// result is bit-identical to the retained map-based reference
// (computeMapRef), which the property tests enforce.
func Compute(ds *sanitize.Dataset, recs []int32, trim float64) Scores {
	if trim < 0 {
		trim = DefaultTrim
	}
	nAS := ds.NumAS()
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)

	order := bucketByVP(ds, recs, sc)

	// Per-VP accumulation over the VP's bucket: asW[id] is the weight of
	// the VP's paths containing id. The per-AS value lists end up sorted
	// before summing, so visiting VPs in first-appearance order (not VP
	// index order) still reproduces the reference bit for bit.
	sc.asW = grow(sc.asW, nAS)
	sc.seen = grow(sc.seen, nAS)
	sc.counts = grow(sc.counts, nAS)
	sc.idsUsed = sc.idsUsed[:0]
	sc.pairIDs = sc.pairIDs[:0]
	sc.pairVals = sc.pairVals[:0]

	vpCount := 0
	for _, v := range sc.vpsUsed {
		bucket := order[sc.vpOff[v]:][:sc.vpCnt[v]]
		sc.touched = sc.touched[:0]
		var total uint64
		for _, i := range bucket {
			_, pfxIdx, ids := ds.RecordIDs(int(i))
			w := ds.Weight[pfxIdx]
			total += w
			// Count each AS once per path even if prepending survived.
			var last int32 = -1
			for j, id := range ids {
				if j > 0 && id == last {
					continue
				}
				if !sc.seen[id] {
					sc.seen[id] = true
					sc.asW[id] = 0
					sc.touched = append(sc.touched, id)
				}
				sc.asW[id] += w
				last = id
			}
		}
		if total > 0 {
			vpCount++
			ft := float64(total)
			for _, id := range sc.touched {
				sc.pairIDs = append(sc.pairIDs, id)
				sc.pairVals = append(sc.pairVals, float64(sc.asW[id])/ft)
				if sc.counts[id] == 0 {
					sc.idsUsed = append(sc.idsUsed, id)
				}
				sc.counts[id]++
			}
		}
		for _, id := range sc.touched { // restore the pool invariant
			sc.seen[id] = false
			sc.asW[id] = 0
		}
		sc.vpCnt[v] = 0 // likewise
	}

	// Counting-sort the (id, value) pairs into per-AS value runs.
	sc.offsets = grow(sc.offsets, nAS)
	var off int32
	for _, id := range sc.idsUsed {
		sc.offsets[id] = off
		off += sc.counts[id]
		sc.counts[id] = 0 // becomes the scatter cursor
	}
	sc.vals = grow(sc.vals, len(sc.pairVals))
	for k, id := range sc.pairIDs {
		sc.vals[sc.offsets[id]+sc.counts[id]] = sc.pairVals[k]
		sc.counts[id]++
	}

	s := Scores{Hegemony: make(map[asn.ASN]float64, len(sc.idsUsed)), VPCount: vpCount}
	for _, id := range sc.idsUsed {
		vs := sc.vals[sc.offsets[id]:][:sc.counts[id]]
		sort.Float64s(vs)
		s.Hegemony[ds.ASNOf[id]] = trimmedMeanSorted(vs, vpCount, trim)
		sc.counts[id] = 0 // restore the pool invariant
	}
	return s
}

// bucketByVP groups the requested record positions by VP, preserving record
// order inside each bucket, using sc's reusable slices. It returns the
// grouped positions; sc.vpsUsed lists the non-empty VPs in first-appearance
// order and sc.vpOff/vpCnt describe each one's run. Only touched vpCnt
// entries are ever written, keeping the call O(records).
func bucketByVP(ds *sanitize.Dataset, recs []int32, sc *scratch) []int32 {
	nVP := len(ds.VPCountry)
	sc.vpCnt = grow(sc.vpCnt, nVP)
	sc.vpsUsed = sc.vpsUsed[:0]
	n := len(recs)
	if recs == nil {
		n = ds.Len()
	}
	each(ds, recs, func(i int) {
		vpIdx, _, _ := ds.RecordIDs(i)
		if sc.vpCnt[vpIdx] == 0 {
			sc.vpsUsed = append(sc.vpsUsed, vpIdx)
		}
		sc.vpCnt[vpIdx]++
	})
	sc.vpOff = grow(sc.vpOff, nVP)
	var off int32
	for _, v := range sc.vpsUsed {
		sc.vpOff[v] = off
		off += sc.vpCnt[v]
		sc.vpCnt[v] = 0 // becomes the scatter cursor
	}
	sc.order = grow(sc.order, n)
	each(ds, recs, func(i int) {
		vpIdx, _, _ := ds.RecordIDs(i)
		sc.order[sc.vpOff[vpIdx]+sc.vpCnt[vpIdx]] = int32(i)
		sc.vpCnt[vpIdx]++
	})
	return sc.order
}

// each visits the requested accepted-record positions, or all of them when
// recs is nil.
func each(ds *sanitize.Dataset, recs []int32, f func(i int)) {
	if recs == nil {
		for i := 0; i < ds.Len(); i++ {
			f(i)
		}
		return
	}
	for _, i := range recs {
		f(int(i))
	}
}

// computeMapRef is the original ASN-keyed map implementation, retained as
// the executable specification the dense kernel is property-tested against.
func computeMapRef(ds *sanitize.Dataset, recs []int32, trim float64) Scores {
	if trim < 0 {
		trim = DefaultTrim
	}

	// Per-VP accumulation. VP indexes are dense and small.
	nVP := len(ds.VPCountry)
	totals := make([]uint64, nVP)            // total path weight per VP
	perVP := make([]map[asn.ASN]uint64, nVP) // per VP, per AS, weight containing it

	each(ds, recs, func(i int) {
		vpIdx, pfxIdx, path := ds.Record(i)
		w := ds.Weight[pfxIdx]
		totals[vpIdx] += w
		m := perVP[vpIdx]
		if m == nil {
			m = map[asn.ASN]uint64{}
			perVP[vpIdx] = m
		}
		// Count each AS once per path even if prepending survived.
		var last asn.ASN
		for j, a := range path {
			if j > 0 && a == last {
				continue
			}
			m[a] += w
			last = a
		}
	})

	// Gather the contributing VPs and per-AS value lists.
	var vps []int
	for v := 0; v < nVP; v++ {
		if totals[v] > 0 {
			vps = append(vps, v)
		}
	}
	values := map[asn.ASN][]float64{}
	for _, v := range vps {
		for a, w := range perVP[v] {
			values[a] = append(values[a], float64(w)/float64(totals[v]))
		}
	}

	s := Scores{Hegemony: make(map[asn.ASN]float64, len(values)), VPCount: len(vps)}
	for a, vals := range values {
		s.Hegemony[a] = trimmedMean(vals, len(vps), trim)
	}
	return s
}

// trimmedMean pads vals with zeros up to n (VPs that never saw the AS),
// sorts, trims floor(trim*n) entries from each end, and averages the rest.
func trimmedMean(vals []float64, n int, trim float64) float64 {
	if n <= 0 {
		return 0
	}
	padded := make([]float64, n)
	copy(padded, vals)
	sort.Float64s(padded)
	k := int(trim * float64(n))
	if k == 0 && trim > 0 && n >= 3 {
		// Figure 2's worked example drops one value from each end even with
		// only three VPs; follow that convention for small views.
		k = 1
	}
	lo, hi := k, n-k
	if lo >= hi {
		// Degenerate tiny-VP case: fall back to the plain mean.
		lo, hi = 0, n
	}
	var sum float64
	for _, v := range padded[lo:hi] {
		sum += v
	}
	return sum / float64(hi-lo)
}

// trimmedMeanSorted is trimmedMean over an already-sorted value list whose
// zero padding up to n entries stays implicit: the padded distribution is
// (n - len(vals)) zeros followed by vals. Summing in padded order keeps the
// float result bit-identical to trimmedMean (leading zeros add exactly
// nothing), without materializing the pad.
func trimmedMeanSorted(vals []float64, n int, trim float64) float64 {
	if n <= 0 {
		return 0
	}
	k := int(trim * float64(n))
	if k == 0 && trim > 0 && n >= 3 {
		// Figure 2's small-view convention, as in trimmedMean.
		k = 1
	}
	lo, hi := k, n-k
	if lo >= hi {
		lo, hi = 0, n
	}
	zeros := n - len(vals)
	start := lo - zeros
	if start < 0 {
		start = 0
	}
	end := hi - zeros
	if end < start {
		end = start // the kept window is all implicit zeros
	}
	var sum float64
	for _, v := range vals[start:end] {
		sum += v
	}
	return sum / float64(hi-lo)
}
