// Package hegemony implements the AS hegemony metric (§1.2, Figure 2): the
// likelihood that an AS lies on a path toward a set of prefixes. For each
// vantage point, every AS gets the address-weighted fraction of the VP's
// paths that contain it; the final score is the mean of the per-VP values
// after trimming the top and bottom 10%, which damps the bias of VPs that
// are topologically very near or very far from the AS.
package hegemony

import (
	"sort"

	"countryrank/internal/asn"
	"countryrank/internal/sanitize"
)

// DefaultTrim is the fraction trimmed from each end of the per-VP score
// distribution, following Fontugne et al.
const DefaultTrim = 0.10

// Scores holds hegemony values in [0, 1] per AS.
type Scores struct {
	Hegemony map[asn.ASN]float64
	// VPCount is the number of vantage points contributing to the view;
	// each AS's score averages over all of them (zeros included).
	VPCount int
}

// Value returns a's hegemony (0 when unseen).
func (s Scores) Value(a asn.ASN) float64 { return s.Hegemony[a] }

// Compute calculates hegemony over the given accepted-record positions of
// ds (nil means every record). trim is the per-side trim fraction; negative
// values select DefaultTrim, zero disables trimming (the ablation case).
func Compute(ds *sanitize.Dataset, recs []int32, trim float64) Scores {
	if trim < 0 {
		trim = DefaultTrim
	}

	// Per-VP accumulation. VP indexes are dense and small.
	nVP := len(ds.VPCountry)
	totals := make([]uint64, nVP)            // total path weight per VP
	perVP := make([]map[asn.ASN]uint64, nVP) // per VP, per AS, weight containing it

	visit := func(i int) {
		vpIdx, pfxIdx, path := ds.Record(i)
		w := ds.Weight[pfxIdx]
		totals[vpIdx] += w
		m := perVP[vpIdx]
		if m == nil {
			m = map[asn.ASN]uint64{}
			perVP[vpIdx] = m
		}
		// Count each AS once per path even if prepending survived.
		var last asn.ASN
		for j, a := range path {
			if j > 0 && a == last {
				continue
			}
			m[a] += w
			last = a
		}
	}
	if recs == nil {
		for i := 0; i < ds.Len(); i++ {
			visit(i)
		}
	} else {
		for _, i := range recs {
			visit(int(i))
		}
	}

	// Gather the contributing VPs and per-AS value lists.
	var vps []int
	for v := 0; v < nVP; v++ {
		if totals[v] > 0 {
			vps = append(vps, v)
		}
	}
	values := map[asn.ASN][]float64{}
	for _, v := range vps {
		for a, w := range perVP[v] {
			values[a] = append(values[a], float64(w)/float64(totals[v]))
		}
	}

	s := Scores{Hegemony: make(map[asn.ASN]float64, len(values)), VPCount: len(vps)}
	for a, vals := range values {
		s.Hegemony[a] = trimmedMean(vals, len(vps), trim)
	}
	return s
}

// trimmedMean pads vals with zeros up to n (VPs that never saw the AS),
// sorts, trims floor(trim*n) entries from each end, and averages the rest.
func trimmedMean(vals []float64, n int, trim float64) float64 {
	if n <= 0 {
		return 0
	}
	padded := make([]float64, n)
	copy(padded, vals)
	sort.Float64s(padded)
	k := int(trim * float64(n))
	if k == 0 && trim > 0 && n >= 3 {
		// Figure 2's worked example drops one value from each end even with
		// only three VPs; follow that convention for small views.
		k = 1
	}
	lo, hi := k, n-k
	if lo >= hi {
		// Degenerate tiny-VP case: fall back to the plain mean.
		lo, hi = 0, n
	}
	var sum float64
	for _, v := range padded[lo:hi] {
		sum += v
	}
	return sum / float64(hi-lo)
}
