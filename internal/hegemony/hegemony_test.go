package hegemony

import (
	"math"
	"testing"

	"countryrank/internal/countries"
	"countryrank/internal/metrictest"
)

// TestFigure2WorkedExample pins the caption of the paper's Figure 2: AS A
// receives per-VP scores 1, 0.67 and 0.33; after removing the top and
// bottom values only 0.67 remains.
func TestFigure2WorkedExample(t *testing.T) {
	// Three VPs, three equal-size prefixes. AS 100 ("A") appears on all of
	// VP0's paths, 2/3 of VP1's and 1/3 of VP2's.
	ds := metrictest.Dataset([]countries.Code{"US", "US", "US"}, []metrictest.Rec{
		{VP: 0, Prefix: "10.0.1.0/24", PrefixCountry: "US", Path: []uint32{1, 100, 201}},
		{VP: 0, Prefix: "10.0.2.0/24", PrefixCountry: "US", Path: []uint32{1, 100, 202}},
		{VP: 0, Prefix: "10.0.3.0/24", PrefixCountry: "US", Path: []uint32{1, 100, 203}},

		{VP: 1, Prefix: "10.0.1.0/24", PrefixCountry: "US", Path: []uint32{2, 100, 201}},
		{VP: 1, Prefix: "10.0.2.0/24", PrefixCountry: "US", Path: []uint32{2, 100, 202}},
		{VP: 1, Prefix: "10.0.3.0/24", PrefixCountry: "US", Path: []uint32{2, 9, 203}},

		{VP: 2, Prefix: "10.0.1.0/24", PrefixCountry: "US", Path: []uint32{3, 100, 201}},
		{VP: 2, Prefix: "10.0.2.0/24", PrefixCountry: "US", Path: []uint32{3, 9, 202}},
		{VP: 2, Prefix: "10.0.3.0/24", PrefixCountry: "US", Path: []uint32{3, 9, 203}},
	})
	s := Compute(ds, nil, -1)
	if s.VPCount != 3 {
		t.Fatalf("VPCount = %d", s.VPCount)
	}
	if got := s.Value(100); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Errorf("hegemony(A) = %f, want 0.67 (the surviving middle score)", got)
	}
}

func TestAddressWeighting(t *testing.T) {
	// One VP, two prefixes: a /23 (512 addresses) through AS 5 and a /24
	// (256) not through it. Hegemony(5) = 512/768.
	ds := metrictest.Dataset([]countries.Code{"US"}, []metrictest.Rec{
		{VP: 0, Prefix: "10.0.0.0/23", PrefixCountry: "US", Path: []uint32{1, 5, 7}},
		{VP: 0, Prefix: "10.1.0.0/24", PrefixCountry: "US", Path: []uint32{1, 8}},
	})
	s := Compute(ds, nil, 0) // no trimming: single VP
	if got := s.Value(5); math.Abs(got-512.0/768.0) > 1e-9 {
		t.Errorf("hegemony(5) = %f", got)
	}
	if got := s.Value(1); got != 1 {
		t.Errorf("hegemony(VP AS) = %f, want 1 from its own VP", got)
	}
}

func TestZeroPaddingForUnseenVPs(t *testing.T) {
	// AS 50 is seen only by VP 0 of 2; with no trim its score must average
	// in VP 1's implicit zero.
	ds := metrictest.Dataset([]countries.Code{"US", "US"}, []metrictest.Rec{
		{VP: 0, Prefix: "10.0.0.0/24", PrefixCountry: "US", Path: []uint32{1, 50, 9}},
		{VP: 1, Prefix: "10.0.0.0/24", PrefixCountry: "US", Path: []uint32{2, 9}},
	})
	s := Compute(ds, nil, 0)
	if got := s.Value(50); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("hegemony(50) = %f, want 0.5 (zero-padded)", got)
	}
}

func TestTrimDampsSingleVPBias(t *testing.T) {
	// Ten VPs; AS 60 is on one VP's only path and invisible elsewhere.
	// With 10% trim the single outlier view is dropped entirely.
	var recs []metrictest.Rec
	vpc := make([]countries.Code, 10)
	for v := 0; v < 10; v++ {
		vpc[v] = "US"
		path := []uint32{uint32(v + 1), 9}
		if v == 0 {
			path = []uint32{1, 60, 9}
		}
		recs = append(recs, metrictest.Rec{VP: v, Prefix: "10.0.0.0/24", PrefixCountry: "US", Path: path})
	}
	ds := metrictest.Dataset(vpc, recs)
	s := Compute(ds, nil, -1)
	if got := s.Value(60); got != 0 {
		t.Errorf("hegemony(60) = %f, want 0 after trimming the single enthusiast VP", got)
	}
	// The origin is on every path: hegemony 1 regardless of trimming.
	if got := s.Value(9); got != 1 {
		t.Errorf("hegemony(origin) = %f", got)
	}
}

func TestPrependingCountedOnce(t *testing.T) {
	ds := metrictest.Dataset([]countries.Code{"US"}, []metrictest.Rec{
		{VP: 0, Prefix: "10.0.0.0/24", PrefixCountry: "US", Path: []uint32{1, 7, 7, 7}},
	})
	s := Compute(ds, nil, 0)
	if got := s.Value(7); got != 1 {
		t.Errorf("hegemony(7) = %f, prepending must not inflate beyond 1", got)
	}
}

func TestValuesBounded(t *testing.T) {
	ds := metrictest.Dataset([]countries.Code{"US", "NL", "JP"}, []metrictest.Rec{
		{VP: 0, Prefix: "10.0.0.0/24", PrefixCountry: "US", Path: []uint32{1, 5, 9}},
		{VP: 1, Prefix: "10.0.0.0/24", PrefixCountry: "US", Path: []uint32{2, 5, 9}},
		{VP: 2, Prefix: "10.1.0.0/24", PrefixCountry: "US", Path: []uint32{3, 9}},
	})
	s := Compute(ds, nil, -1)
	for a, v := range s.Hegemony {
		if v < 0 || v > 1 {
			t.Errorf("hegemony(%v) = %f out of [0,1]", a, v)
		}
	}
}

func TestTrimmedMeanEdgeCases(t *testing.T) {
	if trimmedMean(nil, 0, 0.1) != 0 {
		t.Error("no VPs should give 0")
	}
	// n=1: trimming would remove everything; fall back to plain mean.
	if got := trimmedMean([]float64{0.8}, 1, 0.1); got != 0.8 {
		t.Errorf("n=1 mean = %f", got)
	}
	// n=2 with the small-view convention: k=1 would leave nothing → mean.
	if got := trimmedMean([]float64{0.2, 0.4}, 2, 0.1); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("n=2 mean = %f", got)
	}
}
