package ihr_test

import (
	"reflect"
	"testing"

	"countryrank/internal/core"
	"countryrank/internal/countries"
	"countryrank/internal/ihr"
)

// TestParallelMatchesMapReference: the fan-out per-origin computation with
// dense-id merging must produce byte-identical Scores to the retained
// sequential map-based reference — both merge origins in ascending order,
// so even float accumulation order is pinned.
func TestParallelMatchesMapReference(t *testing.T) {
	for _, seed := range []int64{1, 5} {
		p := core.NewPipeline(core.Options{Seed: seed, StubScale: 0.15, VPScale: 0.2})
		for _, c := range []countries.Code{"AU", "JP", "US", "ZZ"} {
			for _, weighting := range []ihr.Weighting{ihr.ByASCount, ihr.ByUsers} {
				got := ihr.ComputeWeighted(p.DS, p.World.Graph, c, p.Opt.Trim, weighting)
				want := ihr.ComputeMapRef(p.DS, p.World.Graph, c, p.Opt.Trim, weighting)
				if got.Origins != want.Origins {
					t.Fatalf("seed %d %s w%d: Origins %d != %d",
						seed, c, weighting, got.Origins, want.Origins)
				}
				if !reflect.DeepEqual(got.AHC, want.AHC) {
					t.Fatalf("seed %d %s w%d: parallel AHC diverges from reference (%d vs %d ASes)",
						seed, c, weighting, len(got.AHC), len(want.AHC))
				}
			}
		}
	}
}
