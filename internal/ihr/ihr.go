// Package ihr reimplements the Internet Health Report's simplified
// country-level hegemony baseline, AHC (§1.2.1): AS hegemony is computed
// per *origin AS* over all vantage points, and a country's score for AS a
// is the unweighted mean of a's per-origin hegemony across the origin ASes
// *registered* in that country — regardless of where those ASes' prefixes
// geolocate, which is exactly the imprecision (§5.1.2's Amazon example) the
// paper's prefix-based metrics fix.
package ihr

import (
	"countryrank/internal/asn"
	"countryrank/internal/countries"
	"countryrank/internal/hegemony"
	"countryrank/internal/sanitize"
	"countryrank/internal/topology"
)

// Scores holds AHC values per AS for one country.
type Scores struct {
	AHC map[asn.ASN]float64
	// Origins is the number of origin ASes registered in the country that
	// the mean runs over.
	Origins int
}

// Value returns a's AHC score.
func (s Scores) Value(a asn.ASN) float64 { return s.AHC[a] }

// Weighting selects how per-origin hegemony values aggregate into the
// country score. IHR publishes both variants (§1.2.1); the paper uses the
// AS-count weighting because its focus is infrastructure, not population.
type Weighting uint8

const (
	// ByASCount weights every origin AS equally (the paper's choice).
	ByASCount Weighting = iota
	// ByUsers weights each origin AS by its estimated user population
	// (IHR's APNIC-derived variant).
	ByUsers
)

// Compute calculates AHC for one country over all accepted records with
// equal per-AS weights. trim follows hegemony.Compute semantics.
func Compute(ds *sanitize.Dataset, g *topology.Graph, country countries.Code, trim float64) Scores {
	return ComputeWeighted(ds, g, country, trim, ByASCount)
}

// ComputeWeighted calculates AHC with the chosen origin weighting.
func ComputeWeighted(ds *sanitize.Dataset, g *topology.Graph, country countries.Code, trim float64, weighting Weighting) Scores {
	// Group accepted records by origin AS.
	byOrigin := map[asn.ASN][]int32{}
	for i := 0; i < ds.Len(); i++ {
		_, pfxIdx, _ := ds.Record(i)
		o := ds.Col.Origin[pfxIdx]
		byOrigin[o] = append(byOrigin[o], int32(i))
	}

	sum := map[asn.ASN]float64{}
	origins := 0
	var totalWeight float64
	for o, recs := range byOrigin {
		node, ok := g.ByASN(o)
		if !ok || node.Registered != country {
			continue
		}
		w := 1.0
		if weighting == ByUsers {
			w = float64(node.Users)
			if w <= 0 {
				continue
			}
		}
		origins++
		totalWeight += w
		hs := hegemony.Compute(ds, recs, trim)
		for a, v := range hs.Hegemony {
			sum[a] += w * v
		}
	}
	s := Scores{AHC: make(map[asn.ASN]float64, len(sum)), Origins: origins}
	if totalWeight == 0 {
		return s
	}
	for a, v := range sum {
		s.AHC[a] = v / totalWeight
	}
	return s
}
