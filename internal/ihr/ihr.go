// Package ihr reimplements the Internet Health Report's simplified
// country-level hegemony baseline, AHC (§1.2.1): AS hegemony is computed
// per *origin AS* over all vantage points, and a country's score for AS a
// is the unweighted mean of a's per-origin hegemony across the origin ASes
// *registered* in that country — regardless of where those ASes' prefixes
// geolocate, which is exactly the imprecision (§5.1.2's Amazon example) the
// paper's prefix-based metrics fix.
package ihr

import (
	"sort"

	"countryrank/internal/asn"
	"countryrank/internal/countries"
	"countryrank/internal/hegemony"
	"countryrank/internal/par"
	"countryrank/internal/sanitize"
	"countryrank/internal/topology"
)

// Scores holds AHC values per AS for one country.
type Scores struct {
	AHC map[asn.ASN]float64
	// Origins is the number of origin ASes registered in the country that
	// the mean runs over.
	Origins int
}

// Value returns a's AHC score.
func (s Scores) Value(a asn.ASN) float64 { return s.AHC[a] }

// Weighting selects how per-origin hegemony values aggregate into the
// country score. IHR publishes both variants (§1.2.1); the paper uses the
// AS-count weighting because its focus is infrastructure, not population.
type Weighting uint8

const (
	// ByASCount weights every origin AS equally (the paper's choice).
	ByASCount Weighting = iota
	// ByUsers weights each origin AS by its estimated user population
	// (IHR's APNIC-derived variant).
	ByUsers
)

// Compute calculates AHC for one country over all accepted records with
// equal per-AS weights. trim follows hegemony.Compute semantics.
func Compute(ds *sanitize.Dataset, g *topology.Graph, country countries.Code, trim float64) Scores {
	return ComputeWeighted(ds, g, country, trim, ByASCount)
}

// originGroup is one qualifying origin AS's record subset and weight.
type originGroup struct {
	origin asn.ASN
	recs   []int32
	w      float64
}

// groupQualifyingOrigins buckets the accepted records by origin AS, keeps
// the origins registered in country (with a positive weight under the
// chosen weighting), and returns the groups in ascending origin order so
// every later float accumulation has a fixed order.
func groupQualifyingOrigins(ds *sanitize.Dataset, g *topology.Graph, country countries.Code, weighting Weighting) []originGroup {
	byOrigin := map[asn.ASN][]int32{}
	for i := 0; i < ds.Len(); i++ {
		_, pfxIdx, _ := ds.Record(i)
		o := ds.Col.Origin[pfxIdx]
		byOrigin[o] = append(byOrigin[o], int32(i))
	}
	var groups []originGroup
	for o, recs := range byOrigin {
		node, ok := g.ByASN(o)
		if !ok || node.Registered != country {
			continue
		}
		w := 1.0
		if weighting == ByUsers {
			w = float64(node.Users)
			if w <= 0 {
				continue
			}
		}
		groups = append(groups, originGroup{o, recs, w})
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].origin < groups[j].origin })
	return groups
}

// ComputeWeighted calculates AHC with the chosen origin weighting. The
// per-origin hegemony computations fan out over a bounded worker pool and
// merge into a flat dense-id accumulator in ascending origin order, so the
// result is deterministic and bit-identical to the retained sequential
// map-based reference (computeMapRef).
func ComputeWeighted(ds *sanitize.Dataset, g *topology.Graph, country countries.Code, trim float64, weighting Weighting) Scores {
	groups := groupQualifyingOrigins(ds, g, country, weighting)
	perOrigin := make([]hegemony.Scores, len(groups))
	par.ForEach(len(groups), func(i int) {
		perOrigin[i] = hegemony.Compute(ds, groups[i].recs, trim)
	})

	sum := make([]float64, ds.NumAS())
	scored := make([]bool, ds.NumAS())
	var totalWeight float64
	for i, grp := range groups {
		totalWeight += grp.w
		for a, v := range perOrigin[i].Hegemony {
			id := ds.IDOf[a]
			sum[id] += grp.w * v
			scored[id] = true
		}
	}
	nScored := 0
	for id := range scored {
		if scored[id] {
			nScored++
		}
	}
	s := Scores{AHC: make(map[asn.ASN]float64, nScored), Origins: len(groups)}
	if totalWeight == 0 {
		return s
	}
	for id, ok := range scored {
		if ok {
			s.AHC[ds.ASNOf[id]] = sum[id] / totalWeight
		}
	}
	return s
}

// computeMapRef is the original sequential map-based implementation,
// retained as the executable specification ComputeWeighted is
// property-tested against. Origins merge in ascending order, the same
// fixed float-accumulation order the parallel version uses.
func computeMapRef(ds *sanitize.Dataset, g *topology.Graph, country countries.Code, trim float64, weighting Weighting) Scores {
	groups := groupQualifyingOrigins(ds, g, country, weighting)
	sum := map[asn.ASN]float64{}
	var totalWeight float64
	for _, grp := range groups {
		totalWeight += grp.w
		hs := hegemony.Compute(ds, grp.recs, trim)
		for a, v := range hs.Hegemony {
			sum[a] += grp.w * v
		}
	}
	s := Scores{AHC: make(map[asn.ASN]float64, len(sum)), Origins: len(groups)}
	if totalWeight == 0 {
		return s
	}
	for a, v := range sum {
		s.AHC[a] = v / totalWeight
	}
	return s
}
