package ihr

import (
	"math"
	"testing"

	"countryrank/internal/asn"
	"countryrank/internal/countries"
	"countryrank/internal/metrictest"
	"countryrank/internal/topology"
)

func testGraph(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.NewGraph()
	for _, a := range []struct {
		asn uint32
		reg countries.Code
	}{
		{100, "AU"}, {200, "AU"}, {300, "US"}, {5, "US"}, {1, "NL"}, {2, "NL"},
	} {
		g.MustAddAS(topology.AS{ASN: asn.ASN(a.asn), Registered: a.reg, Class: topology.ClassStub})
	}
	return g
}

func TestAHCMeansOverRegisteredOrigins(t *testing.T) {
	g := testGraph(t)
	// Two AU-registered origins (100, 200) and one US origin (300).
	// Transit AS 5 carries all of 100's paths and none of 200's.
	ds := metrictest.Dataset([]countries.Code{"NL", "NL"}, []metrictest.Rec{
		{VP: 0, Prefix: "10.0.0.0/24", PrefixCountry: "AU", Path: []uint32{1, 5, 100}},
		{VP: 1, Prefix: "10.0.0.0/24", PrefixCountry: "AU", Path: []uint32{2, 5, 100}},
		{VP: 0, Prefix: "10.1.0.0/24", PrefixCountry: "AU", Path: []uint32{1, 200}},
		{VP: 1, Prefix: "10.1.0.0/24", PrefixCountry: "AU", Path: []uint32{2, 200}},
		{VP: 0, Prefix: "10.2.0.0/24", PrefixCountry: "US", Path: []uint32{1, 5, 300}},
	})
	s := Compute(ds, g, "AU", 0)
	if s.Origins != 2 {
		t.Fatalf("origins = %d", s.Origins)
	}
	// AH_100(5) = 1 (on every path to 100); AH_200(5) = 0 → AHC = 0.5.
	if got := s.Value(5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("AHC(5) = %f, want 0.5", got)
	}
	// Origin 100 itself: AH_100(100)=1, AH_200(100)=0 → 0.5.
	if got := s.Value(100); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("AHC(100) = %f", got)
	}
	// The US origin contributes nothing to AU's AHC.
	if got := s.Value(300); got != 0 {
		t.Errorf("AHC(300) = %f", got)
	}
}

// TestAHCRegistrationBlindness pins §5.1.2's Amazon case: an AS registered
// elsewhere but originating prefixes in the country is *invisible* to AHC,
// unlike the paper's prefix-based AHN.
func TestAHCRegistrationBlindness(t *testing.T) {
	g := testGraph(t)
	// AS 300 (US-registered) originates a prefix geolocated to AU.
	ds := metrictest.Dataset([]countries.Code{"NL"}, []metrictest.Rec{
		{VP: 0, Prefix: "10.9.0.0/24", PrefixCountry: "AU", Path: []uint32{1, 300}},
		{VP: 0, Prefix: "10.0.0.0/24", PrefixCountry: "AU", Path: []uint32{1, 100}},
	})
	s := Compute(ds, g, "AU", 0)
	if _, ok := s.AHC[300]; ok && s.AHC[300] > 0 {
		// 300 can appear via AU origins' paths, but here it is on none.
		t.Errorf("AHC should not credit the foreign-registered origin: %v", s.AHC[300])
	}
	if s.Origins != 1 {
		t.Errorf("origins = %d (only the AU-registered AS)", s.Origins)
	}
}

func TestAHCUserWeighting(t *testing.T) {
	// Origin 100 has 9× the users of origin 200; AS 5 transits only 100.
	g := topology.NewGraph()
	g.MustAddAS(topology.AS{ASN: 100, Registered: "AU", Class: topology.ClassStub, Users: 90000})
	g.MustAddAS(topology.AS{ASN: 200, Registered: "AU", Class: topology.ClassStub, Users: 10000})
	g.MustAddAS(topology.AS{ASN: 5, Registered: "US", Class: topology.ClassTransit, Users: 0})
	g.MustAddAS(topology.AS{ASN: 1, Registered: "NL", Class: topology.ClassStub, Users: 1})
	ds := metrictest.Dataset([]countries.Code{"NL"}, []metrictest.Rec{
		{VP: 0, Prefix: "10.0.0.0/24", PrefixCountry: "AU", Path: []uint32{1, 5, 100}},
		{VP: 0, Prefix: "10.1.0.0/24", PrefixCountry: "AU", Path: []uint32{1, 200}},
	})
	equal := ComputeWeighted(ds, g, "AU", 0, ByASCount)
	users := ComputeWeighted(ds, g, "AU", 0, ByUsers)
	if math.Abs(equal.Value(5)-0.5) > 1e-9 {
		t.Errorf("AS-count AHC(5) = %f, want 0.5", equal.Value(5))
	}
	if math.Abs(users.Value(5)-0.9) > 1e-9 {
		t.Errorf("user-weighted AHC(5) = %f, want 0.9", users.Value(5))
	}
	if equal.Origins != 2 || users.Origins != 2 {
		t.Errorf("origins = %d/%d", equal.Origins, users.Origins)
	}
}

func TestAHCUnknownCountry(t *testing.T) {
	g := testGraph(t)
	ds := metrictest.Dataset([]countries.Code{"NL"}, []metrictest.Rec{
		{VP: 0, Prefix: "10.0.0.0/24", PrefixCountry: "AU", Path: []uint32{1, 100}},
	})
	s := Compute(ds, g, "ZZ", 0)
	if s.Origins != 0 || len(s.AHC) != 0 {
		t.Errorf("unknown country should be empty: %+v", s)
	}
}
