// Package metrictest provides hand-construction helpers for metric-package
// tests: tiny datasets with explicit (VP, prefix, path) records, bypassing
// the world generator.
package metrictest

import (
	"net/netip"

	"countryrank/internal/asn"
	"countryrank/internal/bgp"
	"countryrank/internal/countries"
	"countryrank/internal/netx"
	"countryrank/internal/routing"
	"countryrank/internal/sanitize"
	"countryrank/internal/topology"
)

// Rec declares one observation.
type Rec struct {
	VP            int
	Prefix        string
	PrefixCountry countries.Code
	Path          []uint32
}

// Dataset builds a fully-accepted dataset from explicit records.
// vpCountries assigns each VP index a country.
func Dataset(vpCountries []countries.Code, recs []Rec) *sanitize.Dataset {
	col := &routing.Collection{Days: 1}
	pfxIdx := map[netip.Prefix]int32{}
	var prefixCountry []countries.Code
	for _, r := range recs {
		pfx := netx.MustPrefix(r.Prefix)
		pi, ok := pfxIdx[pfx]
		if !ok {
			pi = int32(len(col.Prefixes))
			pfxIdx[pfx] = pi
			col.Prefixes = append(col.Prefixes, pfx)
			path := toPath(r.Path)
			origin, _ := path.Origin()
			col.Origin = append(col.Origin, origin)
			prefixCountry = append(prefixCountry, r.PrefixCountry)
			col.Stable = append(col.Stable, true)
		}
		col.Records = append(col.Records, routing.Record{
			VP:     int32(r.VP),
			Prefix: pi,
			Path:   int32(len(col.Paths)),
		})
		col.Paths = append(col.Paths, toPath(r.Path))
	}
	return sanitize.NewDataset(col, vpCountries, prefixCountry)
}

func toPath(p []uint32) bgp.Path {
	out := make(bgp.Path, len(p))
	for i, a := range p {
		out[i] = asn.ASN(a)
	}
	return out
}

// Rels is a literal relationship oracle for tests: P2C entries are
// [provider, customer]; P2P entries are unordered pairs.
type Rels struct {
	P2C [][2]uint32
	P2P [][2]uint32
}

// Rel implements relation.Oracle.
func (r Rels) Rel(a, b asn.ASN) topology.Rel {
	for _, e := range r.P2C {
		if asn.ASN(e[0]) == a && asn.ASN(e[1]) == b {
			return topology.RelP2C
		}
		if asn.ASN(e[0]) == b && asn.ASN(e[1]) == a {
			return topology.RelC2P
		}
	}
	for _, e := range r.P2P {
		if (asn.ASN(e[0]) == a && asn.ASN(e[1]) == b) || (asn.ASN(e[0]) == b && asn.ASN(e[1]) == a) {
			return topology.RelP2P
		}
	}
	return topology.RelNone
}
