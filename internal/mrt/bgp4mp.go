package mrt

import (
	"encoding/binary"
	"errors"
	"net/netip"

	"countryrank/internal/asn"
	"countryrank/internal/bgp"
)

// BGP4MP record type and subtypes (RFC 6396 §4.4). The simulator uses
// MESSAGE_AS4: a raw BGP message with 4-octet peer/local AS numbers, the
// format RouteViews and RIS use for their update archives.
const (
	TypeBGP4MP = 16

	SubtypeBGP4MPMessageAS4 = 4
)

// BGP4MP is a decoded BGP4MP_MESSAGE_AS4 record: one BGP message as
// exchanged between a peer (vantage point) and the collector.
type BGP4MP struct {
	PeerAS  asn.ASN
	LocalAS asn.ASN
	PeerIP  netip.Addr
	LocalIP netip.Addr
	// Message is the decoded BGP message (usually an UPDATE).
	Message *bgp.Message
}

// WriteBGP4MP appends one BGP4MP_MESSAGE_AS4 record carrying rawMsg, which
// must be a complete BGP message including its 19-byte header. Unlike RIB
// records, update records may be written at any point in the stream.
func (w *Writer) WriteBGP4MP(peerAS, localAS asn.ASN, peerIP, localIP netip.Addr, rawMsg []byte) error {
	if peerIP.Is4() != localIP.Is4() {
		return errors.New("mrt: BGP4MP peer and local address families differ")
	}
	w.beginRecord()
	w.buf = binary.BigEndian.AppendUint32(w.buf, uint32(peerAS))
	w.buf = binary.BigEndian.AppendUint32(w.buf, uint32(localAS))
	w.buf = binary.BigEndian.AppendUint16(w.buf, 0) // interface index
	if peerIP.Is4() {
		w.buf = binary.BigEndian.AppendUint16(w.buf, 1) // AFI IPv4
		p, l := peerIP.As4(), localIP.As4()
		w.buf = append(w.buf, p[:]...)
		w.buf = append(w.buf, l[:]...)
	} else {
		w.buf = binary.BigEndian.AppendUint16(w.buf, 2) // AFI IPv6
		p, l := peerIP.As16(), localIP.As16()
		w.buf = append(w.buf, p[:]...)
		w.buf = append(w.buf, l[:]...)
	}
	w.buf = append(w.buf, rawMsg...)
	return w.finishRecord(TypeBGP4MP, SubtypeBGP4MPMessageAS4)
}

func decodeBGP4MP(body []byte) (*BGP4MP, error) {
	if len(body) < 12 {
		return nil, errors.New("mrt: truncated BGP4MP")
	}
	m := &BGP4MP{
		PeerAS:  asn.ASN(binary.BigEndian.Uint32(body[0:4])),
		LocalAS: asn.ASN(binary.BigEndian.Uint32(body[4:8])),
	}
	afi := binary.BigEndian.Uint16(body[10:12])
	rest := body[12:]
	switch afi {
	case 1:
		if len(rest) < 8 {
			return nil, errors.New("mrt: truncated BGP4MP v4 addresses")
		}
		m.PeerIP = netip.AddrFrom4([4]byte(rest[0:4]))
		m.LocalIP = netip.AddrFrom4([4]byte(rest[4:8]))
		rest = rest[8:]
	case 2:
		if len(rest) < 32 {
			return nil, errors.New("mrt: truncated BGP4MP v6 addresses")
		}
		m.PeerIP = netip.AddrFrom16([16]byte(rest[0:16]))
		m.LocalIP = netip.AddrFrom16([16]byte(rest[16:32]))
		rest = rest[32:]
	default:
		return nil, errors.New("mrt: unknown BGP4MP AFI")
	}
	msg, n, err := bgp.ReadMessage(rest)
	if err != nil {
		return nil, err
	}
	if msg == nil || n != len(rest) {
		return nil, errors.New("mrt: BGP4MP does not hold exactly one BGP message")
	}
	m.Message = msg
	return m, nil
}
