package mrt

import (
	"bytes"
	"io"
	"net/netip"
	"testing"

	"countryrank/internal/bgp"
	"countryrank/internal/netx"
)

func sampleUpdate(t *testing.T) []byte {
	t.Helper()
	u := &bgp.Update{
		ASPath:    bgp.SequencePath(bgp.Path{100001, 3356, 1221}),
		NextHop:   netip.MustParseAddr("10.0.0.1"),
		Announced: []netip.Prefix{netx.MustPrefix("192.0.2.0/24")},
	}
	raw, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestBGP4MPRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 111)
	raw := sampleUpdate(t)
	if err := w.WriteBGP4MP(100001, 6447,
		netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("192.0.2.1"), raw); err != nil {
		t.Fatal(err)
	}
	w.SetTimestamp(222)
	if err := w.WriteBGP4MP(100002, 6447,
		netip.MustParseAddr("2001:db8::1"), netip.MustParseAddr("2001:db8::2"), raw); err != nil {
		t.Fatal(err)
	}
	w.Flush()

	r := NewReader(&buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	m := rec.BGP4MP
	if m == nil || rec.Timestamp != 111 {
		t.Fatalf("rec = %+v", rec)
	}
	if m.PeerAS != 100001 || m.LocalAS != 6447 || m.PeerIP != netip.MustParseAddr("10.0.0.1") {
		t.Errorf("header = %+v", m)
	}
	if m.Message == nil || m.Message.Update == nil {
		t.Fatal("no update decoded")
	}
	if !m.Message.Update.ASPath.Flatten().Equal(bgp.Path{100001, 3356, 1221}) {
		t.Errorf("path = %v", m.Message.Update.ASPath.Flatten())
	}

	rec, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Timestamp != 222 || rec.BGP4MP.PeerIP != netip.MustParseAddr("2001:db8::1") {
		t.Errorf("v6 record = %+v", rec.BGP4MP)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestBGP4MPMixedFamiliesRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	err := w.WriteBGP4MP(1, 2, netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("2001:db8::1"), sampleUpdate(t))
	if err == nil {
		t.Error("mixed address families must be rejected")
	}
}

func TestBGP4MPInterleavedWithRIB(t *testing.T) {
	// Update records may interleave with TABLE_DUMP_V2 in one stream.
	var buf bytes.Buffer
	w := NewWriter(&buf, 7)
	if err := w.WritePeerIndexTable(netip.MustParseAddr("10.9.9.9"), "x", testPeers()); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBGP4MP(3356, 6447, netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), sampleUpdate(t)); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(netx.MustPrefix("10.1.0.0/16"), []RIBEntry{
		{PeerIndex: 0, Attrs: attrs(3356, 1221)},
	}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r := NewReader(&buf)
	kinds := []string{}
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case rec.PeerIndexTable != nil:
			kinds = append(kinds, "pit")
		case rec.BGP4MP != nil:
			kinds = append(kinds, "update")
		case rec.RIB != nil:
			kinds = append(kinds, "rib")
		}
	}
	want := []string{"pit", "update", "rib"}
	if len(kinds) != 3 {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
}

func TestDecodeBGP4MPTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	w.WriteBGP4MP(1, 2, netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), sampleUpdate(t))
	w.Flush()
	all := buf.Bytes()
	// Rewrite the declared length to chop the BGP message mid-way, keeping
	// the MRT framing self-consistent.
	for cut := 13; cut < 20; cut++ {
		hdr := append([]byte{}, all[:12]...)
		body := all[12 : 12+cut]
		hdr[8], hdr[9], hdr[10], hdr[11] = 0, 0, byte(cut>>8), byte(cut)
		if _, err := NewReader(bytes.NewReader(append(hdr, body...))).Next(); err == nil {
			t.Fatalf("cut %d should fail", cut)
		}
	}
}
