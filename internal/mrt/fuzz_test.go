package mrt

import (
	"bytes"
	"io"
	"net/netip"
	"testing"

	"countryrank/internal/bgp"
	"countryrank/internal/netx"
)

// corpusStream builds a well-formed dump (PIT + v4 RIB + v6 RIB + BGP4MP)
// used to seed the fuzzer with structurally valid input.
func corpusStream(t testing.TB) []byte {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1617235200)
	if err := w.WritePeerIndexTable(netip.MustParseAddr("198.51.100.1"), "route-views.fuzz", testPeers()); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(netx.MustPrefix("10.1.0.0/16"), []RIBEntry{
		{PeerIndex: 0, OriginatedAt: 100, Attrs: attrs(3356, 1221)},
		{PeerIndex: 1, OriginatedAt: 200, Attrs: attrs(1299, 4826, 1221)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(netx.MustPrefix("2001:db8:5::/48"), []RIBEntry{
		{PeerIndex: 1, OriginatedAt: 300, Attrs: attrs(2914, 4713)},
	}); err != nil {
		t.Fatal(err)
	}
	u := &bgp.Update{
		ASPath:    bgp.SequencePath(bgp.Path{3356, 1221}),
		NextHop:   netip.MustParseAddr("203.0.113.1"),
		Announced: []netip.Prefix{netx.MustPrefix("192.0.2.0/24")},
	}
	raw, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBGP4MP(3356, 6447, netip.MustParseAddr("203.0.113.1"),
		netip.MustParseAddr("192.0.2.1"), raw); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReaderNext feeds arbitrary bytes through both decode paths (Next and
// the storage-reusing Scan) and requires that they never panic and always
// agree on the record sequence.
func FuzzReaderNext(f *testing.F) {
	valid := corpusStream(f)
	f.Add(valid)
	// Truncations at interesting boundaries.
	for _, n := range []int{0, 1, 11, 12, 13, 40, len(valid) / 2, len(valid) - 1} {
		if n <= len(valid) {
			f.Add(valid[:n])
		}
	}
	// A corrupted length field and a flipped subtype.
	mut := append([]byte(nil), valid...)
	mut[9] = 0xFF
	f.Add(mut)
	mut2 := append([]byte(nil), valid...)
	mut2[7] = 9
	f.Add(mut2)

	f.Fuzz(func(t *testing.T, data []byte) {
		fresh := NewReader(bytes.NewReader(data))
		reuse := NewReader(bytes.NewReader(data))
		for {
			a, errA := fresh.Next()
			b, errB := reuse.Scan()
			if (errA == nil) != (errB == nil) {
				t.Fatalf("Next err %v, Scan err %v", errA, errB)
			}
			if errA != nil {
				if errA != io.EOF && errA.Error() != errB.Error() {
					t.Fatalf("error text diverged: %q vs %q", errA, errB)
				}
				return
			}
			if (a.RIB == nil) != (b.RIB == nil) ||
				(a.PeerIndexTable == nil) != (b.PeerIndexTable == nil) ||
				(a.BGP4MP == nil) != (b.BGP4MP == nil) {
				t.Fatal("record kind diverged between Next and Scan")
			}
			if a.RIB != nil {
				if a.RIB.Prefix != b.RIB.Prefix || a.RIB.Seq != b.RIB.Seq ||
					len(a.RIB.Entries) != len(b.RIB.Entries) {
					t.Fatal("RIB diverged between Next and Scan")
				}
				for i := range a.RIB.Entries {
					ea, eb := a.RIB.Entries[i], b.RIB.Entries[i]
					if ea.PeerIndex != eb.PeerIndex || ea.OriginatedAt != eb.OriginatedAt ||
						!ea.Attrs.PathOf().Equal(eb.Attrs.PathOf()) {
						t.Fatal("RIB entry diverged between Next and Scan")
					}
				}
			}
		}
	})
}
