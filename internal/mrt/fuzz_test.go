package mrt

import (
	"bytes"
	"io"
	"net/netip"
	"testing"

	"countryrank/internal/bgp"
	"countryrank/internal/netx"
)

// corpusStream builds a well-formed dump (PIT + v4 RIB + v6 RIB + BGP4MP)
// used to seed the fuzzer with structurally valid input.
func corpusStream(t testing.TB) []byte {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1617235200)
	if err := w.WritePeerIndexTable(netip.MustParseAddr("198.51.100.1"), "route-views.fuzz", testPeers()); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(netx.MustPrefix("10.1.0.0/16"), []RIBEntry{
		{PeerIndex: 0, OriginatedAt: 100, Attrs: attrs(3356, 1221)},
		{PeerIndex: 1, OriginatedAt: 200, Attrs: attrs(1299, 4826, 1221)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(netx.MustPrefix("2001:db8:5::/48"), []RIBEntry{
		{PeerIndex: 1, OriginatedAt: 300, Attrs: attrs(2914, 4713)},
	}); err != nil {
		t.Fatal(err)
	}
	u := &bgp.Update{
		ASPath:    bgp.SequencePath(bgp.Path{3356, 1221}),
		NextHop:   netip.MustParseAddr("203.0.113.1"),
		Announced: []netip.Prefix{netx.MustPrefix("192.0.2.0/24")},
	}
	raw, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBGP4MP(3356, 6447, netip.MustParseAddr("203.0.113.1"),
		netip.MustParseAddr("192.0.2.1"), raw); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReaderNext feeds arbitrary bytes through both decode paths (Next and
// the storage-reusing Scan) and requires that they never panic and always
// agree on the record sequence.
func FuzzReaderNext(f *testing.F) {
	valid := corpusStream(f)
	f.Add(valid)
	// Truncations at interesting boundaries.
	for _, n := range []int{0, 1, 11, 12, 13, 40, len(valid) / 2, len(valid) - 1} {
		if n <= len(valid) {
			f.Add(valid[:n])
		}
	}
	// A corrupted length field and a flipped subtype.
	mut := append([]byte(nil), valid...)
	mut[9] = 0xFF
	f.Add(mut)
	mut2 := append([]byte(nil), valid...)
	mut2[7] = 9
	f.Add(mut2)
	// Truncated mid-record: cut inside the second record's body, so the
	// resync path sees a tail that ends before a plausible header.
	f.Add(valid[: len(valid)*3/4 : len(valid)*3/4])
	// Mid-stream garbage: a run of non-header bytes wedged between records,
	// exercising the forward scan over bytes that never align.
	garbage := bytes.Repeat([]byte{0xA5, 0x5A, 0x00, 0xFF}, 16)
	spliced := append(append(append([]byte(nil), valid[:40]...), garbage...), valid[40:]...)
	f.Add(spliced)
	// Garbage that embeds a plausible-but-lying header (type 13, subtype 2,
	// huge length), forcing a second resync after the first lands badly.
	lying := make([]byte, 12)
	lying[5] = TypeTableDumpV2
	lying[7] = SubtypeRIBIPv4Unicast
	lying[8] = 0x03
	f.Add(append(append(append([]byte(nil), valid[:40]...), lying...), valid[40:]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		fresh := NewReader(bytes.NewReader(data))
		reuse := NewReader(bytes.NewReader(data))
		// The resync reader must terminate on any input without panicking,
		// surface nothing but EOF, and never recover fewer records than the
		// strict reader (it reads the same prefix, then keeps going).
		resil := NewReader(bytes.NewReader(data))
		resil.SetResync(true)
		resilRecords := 0
		for {
			_, err := resil.Scan()
			if err != nil {
				if err != io.EOF {
					t.Fatalf("resync reader returned non-EOF error: %v", err)
				}
				break
			}
			resilRecords++
		}
		strictRecords := 0
		for {
			a, errA := fresh.Next()
			b, errB := reuse.Scan()
			if (errA == nil) != (errB == nil) {
				t.Fatalf("Next err %v, Scan err %v", errA, errB)
			}
			if errA != nil {
				if errA != io.EOF && errA.Error() != errB.Error() {
					t.Fatalf("error text diverged: %q vs %q", errA, errB)
				}
				if resilRecords < strictRecords {
					t.Fatalf("resync reader recovered %d records, strict reader %d",
						resilRecords, strictRecords)
				}
				return
			}
			strictRecords++
			if (a.RIB == nil) != (b.RIB == nil) ||
				(a.PeerIndexTable == nil) != (b.PeerIndexTable == nil) ||
				(a.BGP4MP == nil) != (b.BGP4MP == nil) {
				t.Fatal("record kind diverged between Next and Scan")
			}
			if a.RIB != nil {
				if a.RIB.Prefix != b.RIB.Prefix || a.RIB.Seq != b.RIB.Seq ||
					len(a.RIB.Entries) != len(b.RIB.Entries) {
					t.Fatal("RIB diverged between Next and Scan")
				}
				for i := range a.RIB.Entries {
					ea, eb := a.RIB.Entries[i], b.RIB.Entries[i]
					if ea.PeerIndex != eb.PeerIndex || ea.OriginatedAt != eb.OriginatedAt ||
						!ea.Attrs.PathOf().Equal(eb.Attrs.PathOf()) {
						t.Fatal("RIB entry diverged between Next and Scan")
					}
				}
			}
		}
	})
}
