// Package mrt implements the MRT export format (RFC 6396) used by the
// RouteViews and RIPE RIS collector projects, restricted to the
// TABLE_DUMP_V2 records the ranking pipeline consumes: PEER_INDEX_TABLE
// plus RIB_IPV4_UNICAST / RIB_IPV6_UNICAST.
//
// The simulator serializes its per-collector RIBs through this package and
// the analysis pipeline parses them back, so the pipeline exercises the same
// interchange format it would face on real collector archives.
package mrt

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"

	"countryrank/internal/asn"
	"countryrank/internal/bgp"
)

// MRT record types and TABLE_DUMP_V2 subtypes (RFC 6396 §4, §4.3).
const (
	TypeTableDumpV2 = 13

	SubtypePeerIndexTable = 1
	SubtypeRIBIPv4Unicast = 2
	SubtypeRIBIPv6Unicast = 4
)

// Peer identifies one vantage point in a PEER_INDEX_TABLE.
type Peer struct {
	BGPID netip.Addr // collector-assigned router ID (IPv4)
	Addr  netip.Addr // the VP's peering address
	AS    asn.ASN
}

// RIBEntry is one VP's best route for a prefix.
type RIBEntry struct {
	PeerIndex    uint16
	OriginatedAt uint32 // seconds since epoch, as recorded by the collector
	Attrs        bgp.AttrSet
}

// RIBRecord is a RIB_IPV4_UNICAST / RIB_IPV6_UNICAST record: every VP's best
// route toward one prefix.
type RIBRecord struct {
	Seq     uint32
	Prefix  netip.Prefix
	Entries []RIBEntry
}

// Writer serializes TABLE_DUMP_V2 records. A PEER_INDEX_TABLE must be
// written before any RIB records, mirroring collector dump layout.
type Writer struct {
	w         *bufio.Writer
	timestamp uint32
	seq       uint32
	wrotePIT  bool
}

// NewWriter returns a Writer stamping every record with the given time.
func NewWriter(w io.Writer, timestamp uint32) *Writer {
	return &Writer{w: bufio.NewWriter(w), timestamp: timestamp}
}

// SetTimestamp changes the timestamp applied to subsequent records, for
// update streams spanning time.
func (w *Writer) SetTimestamp(ts uint32) { w.timestamp = ts }

func (w *Writer) writeRecord(subtype uint16, body []byte) error {
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:], w.timestamp)
	binary.BigEndian.PutUint16(hdr[4:], TypeTableDumpV2)
	binary.BigEndian.PutUint16(hdr[6:], subtype)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(body)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(body)
	return err
}

// WritePeerIndexTable writes the peer table. Peer order defines the
// PeerIndex values RIB entries refer to.
func (w *Writer) WritePeerIndexTable(collectorID netip.Addr, viewName string, peers []Peer) error {
	if w.wrotePIT {
		return errors.New("mrt: PEER_INDEX_TABLE already written")
	}
	if !collectorID.Is4() {
		return errors.New("mrt: collector ID must be IPv4")
	}
	if len(peers) > 0xFFFF {
		return fmt.Errorf("mrt: %d peers exceeds uint16", len(peers))
	}
	var b bytes.Buffer
	id := collectorID.As4()
	b.Write(id[:])
	binary.Write(&b, binary.BigEndian, uint16(len(viewName)))
	b.WriteString(viewName)
	binary.Write(&b, binary.BigEndian, uint16(len(peers)))
	for _, p := range peers {
		if !p.BGPID.Is4() {
			return errors.New("mrt: peer BGP ID must be IPv4")
		}
		// Peer type: bit 0 = IPv6 address, bit 1 = 4-byte AS (always set).
		var pt byte = 0x02
		if p.Addr.Is6() && !p.Addr.Is4In6() {
			pt |= 0x01
		}
		b.WriteByte(pt)
		bid := p.BGPID.As4()
		b.Write(bid[:])
		if pt&0x01 != 0 {
			a := p.Addr.As16()
			b.Write(a[:])
		} else {
			a := p.Addr.Unmap().As4()
			b.Write(a[:])
		}
		binary.Write(&b, binary.BigEndian, uint32(p.AS))
	}
	w.wrotePIT = true
	return w.writeRecord(SubtypePeerIndexTable, b.Bytes())
}

// WriteRIB writes one RIB record; sequence numbers are assigned in call
// order. The prefix family selects the subtype.
func (w *Writer) WriteRIB(prefix netip.Prefix, entries []RIBEntry) error {
	if !w.wrotePIT {
		return errors.New("mrt: PEER_INDEX_TABLE must precede RIB records")
	}
	if len(entries) > 0xFFFF {
		return fmt.Errorf("mrt: %d entries exceeds uint16", len(entries))
	}
	var b bytes.Buffer
	binary.Write(&b, binary.BigEndian, w.seq)
	w.seq++
	prefix = prefix.Masked()
	b.WriteByte(byte(prefix.Bits()))
	nbytes := (prefix.Bits() + 7) / 8
	subtype := uint16(SubtypeRIBIPv4Unicast)
	if prefix.Addr().Is4() {
		a := prefix.Addr().As4()
		b.Write(a[:nbytes])
	} else {
		subtype = SubtypeRIBIPv6Unicast
		a := prefix.Addr().As16()
		b.Write(a[:nbytes])
	}
	binary.Write(&b, binary.BigEndian, uint16(len(entries)))
	for _, e := range entries {
		attrs, err := e.Attrs.Marshal()
		if err != nil {
			return fmt.Errorf("mrt: entry attrs: %w", err)
		}
		if len(attrs) > 0xFFFF {
			return errors.New("mrt: attributes exceed uint16 length")
		}
		binary.Write(&b, binary.BigEndian, e.PeerIndex)
		binary.Write(&b, binary.BigEndian, e.OriginatedAt)
		binary.Write(&b, binary.BigEndian, uint16(len(attrs)))
		b.Write(attrs)
	}
	return w.writeRecord(subtype, b.Bytes())
}

// Flush writes any buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Record is a decoded MRT record: exactly one of PeerIndexTable, RIB or
// BGP4MP is non-nil.
type Record struct {
	Timestamp      uint32
	PeerIndexTable *PeerIndexTable
	RIB            *RIBRecord
	BGP4MP         *BGP4MP
}

// PeerIndexTable is the decoded PEER_INDEX_TABLE.
type PeerIndexTable struct {
	CollectorID netip.Addr
	ViewName    string
	Peers       []Peer
}

// Reader parses TABLE_DUMP_V2 records from a stream.
type Reader struct {
	r *bufio.Reader
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// Next returns the next record, or io.EOF at end of stream. Records of
// types other than TABLE_DUMP_V2 are rejected.
func (r *Reader) Next() (*Record, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("mrt: header: %w", err)
	}
	ts := binary.BigEndian.Uint32(hdr[0:])
	typ := binary.BigEndian.Uint16(hdr[4:])
	sub := binary.BigEndian.Uint16(hdr[6:])
	length := binary.BigEndian.Uint32(hdr[8:])
	if typ != TypeTableDumpV2 && typ != TypeBGP4MP {
		return nil, fmt.Errorf("mrt: unsupported record type %d", typ)
	}
	if length > 1<<26 {
		return nil, fmt.Errorf("mrt: implausible record length %d", length)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r.r, body); err != nil {
		return nil, fmt.Errorf("mrt: body: %w", err)
	}
	rec := &Record{Timestamp: ts}
	if typ == TypeBGP4MP {
		if sub != SubtypeBGP4MPMessageAS4 {
			return nil, fmt.Errorf("mrt: unsupported BGP4MP subtype %d", sub)
		}
		m, err := decodeBGP4MP(body)
		if err != nil {
			return nil, err
		}
		rec.BGP4MP = m
		return rec, nil
	}
	switch sub {
	case SubtypePeerIndexTable:
		pit, err := decodePeerIndexTable(body)
		if err != nil {
			return nil, err
		}
		rec.PeerIndexTable = pit
	case SubtypeRIBIPv4Unicast, SubtypeRIBIPv6Unicast:
		rib, err := decodeRIB(body, sub == SubtypeRIBIPv6Unicast)
		if err != nil {
			return nil, err
		}
		rec.RIB = rib
	default:
		return nil, fmt.Errorf("mrt: unsupported TABLE_DUMP_V2 subtype %d", sub)
	}
	return rec, nil
}

func decodePeerIndexTable(b []byte) (*PeerIndexTable, error) {
	if len(b) < 8 {
		return nil, errors.New("mrt: truncated PEER_INDEX_TABLE")
	}
	pit := &PeerIndexTable{CollectorID: netip.AddrFrom4([4]byte(b[:4]))}
	nameLen := int(binary.BigEndian.Uint16(b[4:6]))
	b = b[6:]
	if len(b) < nameLen+2 {
		return nil, errors.New("mrt: truncated view name")
	}
	pit.ViewName = string(b[:nameLen])
	b = b[nameLen:]
	n := int(binary.BigEndian.Uint16(b[:2]))
	b = b[2:]
	pit.Peers = make([]Peer, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 5 {
			return nil, errors.New("mrt: truncated peer entry")
		}
		pt := b[0]
		var p Peer
		p.BGPID = netip.AddrFrom4([4]byte(b[1:5]))
		b = b[5:]
		if pt&0x01 != 0 {
			if len(b) < 16 {
				return nil, errors.New("mrt: truncated v6 peer address")
			}
			p.Addr = netip.AddrFrom16([16]byte(b[:16]))
			b = b[16:]
		} else {
			if len(b) < 4 {
				return nil, errors.New("mrt: truncated v4 peer address")
			}
			p.Addr = netip.AddrFrom4([4]byte(b[:4]))
			b = b[4:]
		}
		if pt&0x02 != 0 {
			if len(b) < 4 {
				return nil, errors.New("mrt: truncated peer AS")
			}
			p.AS = asn.ASN(binary.BigEndian.Uint32(b[:4]))
			b = b[4:]
		} else {
			if len(b) < 2 {
				return nil, errors.New("mrt: truncated peer AS")
			}
			p.AS = asn.ASN(binary.BigEndian.Uint16(b[:2]))
			b = b[2:]
		}
		pit.Peers = append(pit.Peers, p)
	}
	return pit, nil
}

func decodeRIB(b []byte, v6 bool) (*RIBRecord, error) {
	if len(b) < 5 {
		return nil, errors.New("mrt: truncated RIB record")
	}
	rib := &RIBRecord{Seq: binary.BigEndian.Uint32(b[:4])}
	bits := int(b[4])
	b = b[5:]
	max := 32
	if v6 {
		max = 128
	}
	if bits > max {
		return nil, fmt.Errorf("mrt: prefix length %d exceeds %d", bits, max)
	}
	nbytes := (bits + 7) / 8
	if len(b) < nbytes+2 {
		return nil, errors.New("mrt: truncated prefix")
	}
	if v6 {
		var a [16]byte
		copy(a[:], b[:nbytes])
		rib.Prefix = netip.PrefixFrom(netip.AddrFrom16(a), bits).Masked()
	} else {
		var a [4]byte
		copy(a[:], b[:nbytes])
		rib.Prefix = netip.PrefixFrom(netip.AddrFrom4(a), bits).Masked()
	}
	b = b[nbytes:]
	n := int(binary.BigEndian.Uint16(b[:2]))
	b = b[2:]
	rib.Entries = make([]RIBEntry, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 8 {
			return nil, errors.New("mrt: truncated RIB entry")
		}
		var e RIBEntry
		e.PeerIndex = binary.BigEndian.Uint16(b[:2])
		e.OriginatedAt = binary.BigEndian.Uint32(b[2:6])
		alen := int(binary.BigEndian.Uint16(b[6:8]))
		b = b[8:]
		if len(b) < alen {
			return nil, errors.New("mrt: truncated RIB entry attributes")
		}
		attrs, err := bgp.UnmarshalAttrs(b[:alen])
		if err != nil {
			return nil, fmt.Errorf("mrt: entry attrs: %w", err)
		}
		e.Attrs = attrs
		b = b[alen:]
		rib.Entries = append(rib.Entries, e)
	}
	return rib, nil
}
