// Package mrt implements the MRT export format (RFC 6396) used by the
// RouteViews and RIPE RIS collector projects, restricted to the
// TABLE_DUMP_V2 records the ranking pipeline consumes: PEER_INDEX_TABLE
// plus RIB_IPV4_UNICAST / RIB_IPV6_UNICAST.
//
// The simulator serializes its per-collector RIBs through this package and
// the analysis pipeline parses them back, so the pipeline exercises the same
// interchange format it would face on real collector archives.
//
// The codec is allocation-free in steady state: the Writer assembles every
// record with direct big-endian puts into one reusable scratch buffer, and
// the Reader decodes into a reusable body buffer. Next returns freshly
// allocated records; the opt-in Scan reuses the decoded record and its
// entries across calls for high-throughput import loops.
package mrt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net/netip"

	"countryrank/internal/asn"
	"countryrank/internal/bgp"
	"countryrank/internal/obs"
)

// Resync accounting: real collector archives contain the occasional mangled
// record, and an import that survives one must say so.
var (
	mResyncs = obs.NewCounter("countryrank_mrt_resyncs_total",
		"corrupt MRT records skipped by scanning forward to the next plausible header")
	mSkippedBytes = obs.NewCounter("countryrank_mrt_skipped_bytes_total",
		"bytes discarded while resynchronizing MRT streams")
)

// MRT record types and TABLE_DUMP_V2 subtypes (RFC 6396 §4, §4.3).
const (
	TypeTableDumpV2 = 13

	SubtypePeerIndexTable = 1
	SubtypeRIBIPv4Unicast = 2
	SubtypeRIBIPv6Unicast = 4
)

// Peer identifies one vantage point in a PEER_INDEX_TABLE.
type Peer struct {
	BGPID netip.Addr // collector-assigned router ID (IPv4)
	Addr  netip.Addr // the VP's peering address
	AS    asn.ASN
}

// RIBEntry is one VP's best route for a prefix.
type RIBEntry struct {
	PeerIndex    uint16
	OriginatedAt uint32 // seconds since epoch, as recorded by the collector
	Attrs        bgp.AttrSet
}

// RIBRecord is a RIB_IPV4_UNICAST / RIB_IPV6_UNICAST record: every VP's best
// route toward one prefix.
type RIBRecord struct {
	Seq     uint32
	Prefix  netip.Prefix
	Entries []RIBEntry
}

// recordHeaderLen is the fixed MRT record header: timestamp, type, subtype,
// body length.
const recordHeaderLen = 12

// Writer serializes TABLE_DUMP_V2 records. A PEER_INDEX_TABLE must be
// written before any RIB records, mirroring collector dump layout.
type Writer struct {
	w         *bufio.Writer
	timestamp uint32
	seq       uint32
	wrotePIT  bool
	// buf holds the record being assembled (header + body) and is reused
	// across records, so steady-state writes allocate nothing.
	buf []byte
}

// NewWriter returns a Writer stamping every record with the given time.
func NewWriter(w io.Writer, timestamp uint32) *Writer {
	return &Writer{w: bufio.NewWriter(w), timestamp: timestamp}
}

// SetTimestamp changes the timestamp applied to subsequent records, for
// update streams spanning time.
func (w *Writer) SetTimestamp(ts uint32) { w.timestamp = ts }

// beginRecord resets the scratch buffer, leaving room for the header.
func (w *Writer) beginRecord() {
	if cap(w.buf) < recordHeaderLen {
		w.buf = make([]byte, recordHeaderLen, 4096)
	}
	w.buf = w.buf[:recordHeaderLen]
}

// finishRecord stamps the header over the assembled body and flushes the
// record to the underlying writer.
func (w *Writer) finishRecord(typ, subtype uint16) error {
	body := len(w.buf) - recordHeaderLen
	if uint64(body) > math.MaxUint32 {
		return fmt.Errorf("mrt: record body %d bytes exceeds uint32", body)
	}
	binary.BigEndian.PutUint32(w.buf[0:], w.timestamp)
	binary.BigEndian.PutUint16(w.buf[4:], typ)
	binary.BigEndian.PutUint16(w.buf[6:], subtype)
	binary.BigEndian.PutUint32(w.buf[8:], uint32(body))
	_, err := w.w.Write(w.buf)
	return err
}

// WritePeerIndexTable writes the peer table. Peer order defines the
// PeerIndex values RIB entries refer to.
func (w *Writer) WritePeerIndexTable(collectorID netip.Addr, viewName string, peers []Peer) error {
	if w.wrotePIT {
		return errors.New("mrt: PEER_INDEX_TABLE already written")
	}
	if !collectorID.Is4() {
		return errors.New("mrt: collector ID must be IPv4")
	}
	if len(peers) > 0xFFFF {
		return fmt.Errorf("mrt: %d peers exceeds uint16", len(peers))
	}
	if len(viewName) > 0xFFFF {
		return fmt.Errorf("mrt: view name %d bytes exceeds uint16", len(viewName))
	}
	w.beginRecord()
	id := collectorID.As4()
	w.buf = append(w.buf, id[:]...)
	w.buf = binary.BigEndian.AppendUint16(w.buf, uint16(len(viewName)))
	w.buf = append(w.buf, viewName...)
	w.buf = binary.BigEndian.AppendUint16(w.buf, uint16(len(peers)))
	for _, p := range peers {
		if !p.BGPID.Is4() {
			return errors.New("mrt: peer BGP ID must be IPv4")
		}
		// Peer type: bit 0 = IPv6 address, bit 1 = 4-byte AS (always set).
		var pt byte = 0x02
		if p.Addr.Is6() && !p.Addr.Is4In6() {
			pt |= 0x01
		}
		w.buf = append(w.buf, pt)
		bid := p.BGPID.As4()
		w.buf = append(w.buf, bid[:]...)
		if pt&0x01 != 0 {
			a := p.Addr.As16()
			w.buf = append(w.buf, a[:]...)
		} else {
			a := p.Addr.Unmap().As4()
			w.buf = append(w.buf, a[:]...)
		}
		w.buf = binary.BigEndian.AppendUint32(w.buf, uint32(p.AS))
	}
	w.wrotePIT = true
	return w.finishRecord(TypeTableDumpV2, SubtypePeerIndexTable)
}

// WriteRIB writes one RIB record; sequence numbers are assigned in call
// order. The prefix family selects the subtype.
func (w *Writer) WriteRIB(prefix netip.Prefix, entries []RIBEntry) error {
	if !w.wrotePIT {
		return errors.New("mrt: PEER_INDEX_TABLE must precede RIB records")
	}
	if len(entries) > 0xFFFF {
		return fmt.Errorf("mrt: %d entries exceeds uint16", len(entries))
	}
	w.beginRecord()
	w.buf = binary.BigEndian.AppendUint32(w.buf, w.seq)
	w.seq++
	prefix = prefix.Masked()
	w.buf = append(w.buf, byte(prefix.Bits()))
	nbytes := (prefix.Bits() + 7) / 8
	subtype := uint16(SubtypeRIBIPv4Unicast)
	if prefix.Addr().Is4() {
		a := prefix.Addr().As4()
		w.buf = append(w.buf, a[:nbytes]...)
	} else {
		subtype = SubtypeRIBIPv6Unicast
		a := prefix.Addr().As16()
		w.buf = append(w.buf, a[:nbytes]...)
	}
	w.buf = binary.BigEndian.AppendUint16(w.buf, uint16(len(entries)))
	for i := range entries {
		e := &entries[i]
		w.buf = binary.BigEndian.AppendUint16(w.buf, e.PeerIndex)
		w.buf = binary.BigEndian.AppendUint32(w.buf, e.OriginatedAt)
		// Attribute length back-patched once the attrs are appended.
		lenPos := len(w.buf)
		w.buf = append(w.buf, 0, 0)
		var err error
		if w.buf, err = e.Attrs.AppendWire(w.buf); err != nil {
			return fmt.Errorf("mrt: entry attrs: %w", err)
		}
		alen := len(w.buf) - lenPos - 2
		if alen > 0xFFFF {
			return errors.New("mrt: attributes exceed uint16 length")
		}
		binary.BigEndian.PutUint16(w.buf[lenPos:], uint16(alen))
	}
	return w.finishRecord(TypeTableDumpV2, subtype)
}

// Flush writes any buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Record is a decoded MRT record: exactly one of PeerIndexTable, RIB or
// BGP4MP is non-nil.
type Record struct {
	Timestamp      uint32
	PeerIndexTable *PeerIndexTable
	RIB            *RIBRecord
	BGP4MP         *BGP4MP
}

// PeerIndexTable is the decoded PEER_INDEX_TABLE.
type PeerIndexTable struct {
	CollectorID netip.Addr
	ViewName    string
	Peers       []Peer
}

// Reader parses TABLE_DUMP_V2 records from a stream.
type Reader struct {
	r      *bufio.Reader
	sawPIT bool
	hdr    [recordHeaderLen]byte
	body   []byte // reusable record body buffer

	// Skip-and-resync state (see SetResync). pending holds bytes the resync
	// scanner read past the next plausible header; reads drain it before the
	// stream. consumed accumulates the failed record's bytes so the scanner
	// can rescan them.
	resync       bool
	pending      []byte
	consumed     []byte
	resyncs      int64
	skippedBytes int64

	// Scan-mode storage, reused across Scan calls.
	scanRec Record
	scanPIT PeerIndexTable
	scanRIB RIBRecord
	dec     bgp.AttrDecoder
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// Next returns the next record, or io.EOF at end of stream. Records of
// types other than TABLE_DUMP_V2 are rejected. The record is freshly
// allocated and remains valid across calls; import loops that can tolerate
// reuse should prefer Scan.
func (r *Reader) Next() (*Record, error) { return r.next(false) }

// Scan is Next with storage reuse: the returned record, its peer table or
// RIB entries, and every attribute set within them are owned by the Reader
// and valid only until the following Scan or Next call. Callers must copy
// whatever they keep. BGP4MP records are still freshly decoded (update
// messages are small; the RIB path is the hot one).
func (r *Reader) Scan() (*Record, error) { return r.next(true) }

// SetResync switches the Reader into skip-and-resync mode: instead of
// aborting on a corrupt record, it scans forward to the next byte position
// that looks like a plausible MRT header and resumes decoding there,
// counting the discarded records and bytes (Resyncs, SkippedBytes, and the
// countryrank_mrt_* metrics). A truncated tail then reads as a clean EOF.
func (r *Reader) SetResync(on bool) { r.resync = on }

// Resyncs returns how many corrupt records have been skipped.
func (r *Reader) Resyncs() int64 { return r.resyncs }

// SkippedBytes returns how many bytes resynchronization has discarded.
func (r *Reader) SkippedBytes() int64 { return r.skippedBytes }

// readFull fills p from the pending resync buffer first, then the stream.
func (r *Reader) readFull(p []byte) (int, error) {
	n := 0
	if len(r.pending) > 0 {
		n = copy(p, r.pending)
		r.pending = r.pending[n:]
	}
	if n == len(p) {
		return n, nil
	}
	m, err := io.ReadFull(r.r, p[n:])
	if n > 0 && errors.Is(err, io.EOF) {
		err = io.ErrUnexpectedEOF
	}
	return n + m, err
}

func (r *Reader) next(reuse bool) (*Record, error) {
	for {
		rec, err := r.nextOnce(reuse)
		// Only the bare io.EOF sentinel is a clean end of stream; a wrapped
		// EOF (header or body cut short) is corruption the resync path owns.
		if err == nil || err == io.EOF || !r.resync {
			return rec, err
		}
		mResyncs.Inc()
		r.resyncs++
		if !r.resyncScan() {
			return nil, io.EOF
		}
	}
}

// plausibleHeader reports whether b (>= 12 bytes) parses as a record header
// this Reader could decode: a supported type/subtype pair with a sane
// length. Resynchronization resumes at the first such position.
func plausibleHeader(b []byte) bool {
	typ := binary.BigEndian.Uint16(b[4:])
	sub := binary.BigEndian.Uint16(b[6:])
	length := binary.BigEndian.Uint32(b[8:])
	if length > 1<<26 {
		return false
	}
	switch typ {
	case TypeTableDumpV2:
		return sub == SubtypePeerIndexTable || sub == SubtypeRIBIPv4Unicast ||
			sub == SubtypeRIBIPv6Unicast
	case TypeBGP4MP:
		return sub == SubtypeBGP4MPMessageAS4
	}
	return false
}

// resyncScan drops the first byte of the failed record and slides forward —
// over the already-consumed bytes, then the stream — until a plausible
// header lines up. Bytes past that header go back into pending. Returns
// false when the stream ends first (the truncated-tail case).
func (r *Reader) resyncScan() bool {
	// Own the consumed bytes: hdr/body are reused arrays the next decode
	// will overwrite.
	buf := append([]byte(nil), r.consumed...)
	r.consumed = r.consumed[:0]
	skipped := int64(0)
	defer func() {
		r.skippedBytes += skipped
		mSkippedBytes.Add(skipped)
	}()
	if len(buf) == 0 {
		return false
	}
	buf = buf[1:]
	skipped++
	var one [1]byte
	for {
		for len(buf) < recordHeaderLen {
			n, err := r.readFull(one[:])
			if n > 0 {
				buf = append(buf, one[0])
			}
			if err != nil {
				skipped += int64(len(buf))
				return false
			}
		}
		if plausibleHeader(buf) {
			r.pending = append(buf, r.pending...)
			return true
		}
		buf = buf[1:]
		skipped++
	}
}

func (r *Reader) nextOnce(reuse bool) (*Record, error) {
	hdr := r.hdr[:]
	if n, err := r.readFull(hdr); err != nil {
		if n == 0 && errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		r.consumed = append(r.consumed[:0], hdr[:n]...)
		return nil, fmt.Errorf("mrt: header: %w", err)
	}
	r.consumed = append(r.consumed[:0], hdr...)
	ts := binary.BigEndian.Uint32(hdr[0:])
	typ := binary.BigEndian.Uint16(hdr[4:])
	sub := binary.BigEndian.Uint16(hdr[6:])
	length := binary.BigEndian.Uint32(hdr[8:])
	if typ != TypeTableDumpV2 && typ != TypeBGP4MP {
		return nil, fmt.Errorf("mrt: unsupported record type %d", typ)
	}
	if length > 1<<26 {
		return nil, fmt.Errorf("mrt: implausible record length %d", length)
	}
	if uint32(cap(r.body)) < length {
		r.body = make([]byte, length)
	}
	body := r.body[:length]
	n, err := r.readFull(body)
	r.consumed = append(r.consumed, body[:n]...)
	if err != nil {
		return nil, fmt.Errorf("mrt: body: %w", err)
	}
	var rec *Record
	if reuse {
		rec = &r.scanRec
		*rec = Record{}
	} else {
		rec = &Record{}
	}
	rec.Timestamp = ts
	if typ == TypeBGP4MP {
		if sub != SubtypeBGP4MPMessageAS4 {
			return nil, fmt.Errorf("mrt: unsupported BGP4MP subtype %d", sub)
		}
		m, err := decodeBGP4MP(body)
		if err != nil {
			return nil, err
		}
		rec.BGP4MP = m
		return rec, nil
	}
	switch sub {
	case SubtypePeerIndexTable:
		if r.sawPIT {
			return nil, errors.New("mrt: duplicate PEER_INDEX_TABLE in stream")
		}
		var pit *PeerIndexTable
		if reuse {
			pit = &r.scanPIT
			pit.Peers = pit.Peers[:0]
		} else {
			pit = &PeerIndexTable{}
		}
		if err := decodePeerIndexTable(body, pit); err != nil {
			return nil, err
		}
		r.sawPIT = true
		rec.PeerIndexTable = pit
	case SubtypeRIBIPv4Unicast, SubtypeRIBIPv6Unicast:
		var rib *RIBRecord
		var dec *bgp.AttrDecoder
		if reuse {
			rib = &r.scanRIB
			rib.Entries = rib.Entries[:0]
			dec = &r.dec
			dec.Reset()
		} else {
			rib = &RIBRecord{}
		}
		if err := decodeRIB(body, sub == SubtypeRIBIPv6Unicast, rib, dec); err != nil {
			return nil, err
		}
		rec.RIB = rib
	default:
		return nil, fmt.Errorf("mrt: unsupported TABLE_DUMP_V2 subtype %d", sub)
	}
	return rec, nil
}

func decodePeerIndexTable(b []byte, pit *PeerIndexTable) error {
	if len(b) < 8 {
		return errors.New("mrt: truncated PEER_INDEX_TABLE")
	}
	pit.CollectorID = netip.AddrFrom4([4]byte(b[:4]))
	nameLen := int(binary.BigEndian.Uint16(b[4:6]))
	b = b[6:]
	if len(b) < nameLen+2 {
		return errors.New("mrt: truncated view name")
	}
	pit.ViewName = string(b[:nameLen])
	b = b[nameLen:]
	n := int(binary.BigEndian.Uint16(b[:2]))
	b = b[2:]
	if pit.Peers == nil {
		pit.Peers = make([]Peer, 0, n)
	}
	for i := 0; i < n; i++ {
		if len(b) < 5 {
			return errors.New("mrt: truncated peer entry")
		}
		pt := b[0]
		var p Peer
		p.BGPID = netip.AddrFrom4([4]byte(b[1:5]))
		b = b[5:]
		if pt&0x01 != 0 {
			if len(b) < 16 {
				return errors.New("mrt: truncated v6 peer address")
			}
			p.Addr = netip.AddrFrom16([16]byte(b[:16]))
			b = b[16:]
		} else {
			if len(b) < 4 {
				return errors.New("mrt: truncated v4 peer address")
			}
			p.Addr = netip.AddrFrom4([4]byte(b[:4]))
			b = b[4:]
		}
		if pt&0x02 != 0 {
			if len(b) < 4 {
				return errors.New("mrt: truncated peer AS")
			}
			p.AS = asn.ASN(binary.BigEndian.Uint32(b[:4]))
			b = b[4:]
		} else {
			if len(b) < 2 {
				return errors.New("mrt: truncated peer AS")
			}
			p.AS = asn.ASN(binary.BigEndian.Uint16(b[:2]))
			b = b[2:]
		}
		pit.Peers = append(pit.Peers, p)
	}
	return nil
}

// decodeRIB parses a RIB record body into rib. With a non-nil dec the
// entries' attribute sets are decoded into the decoder's reusable arenas
// (the Scan path); with nil they are freshly allocated.
func decodeRIB(b []byte, v6 bool, rib *RIBRecord, dec *bgp.AttrDecoder) error {
	if len(b) < 5 {
		return errors.New("mrt: truncated RIB record")
	}
	rib.Seq = binary.BigEndian.Uint32(b[:4])
	bits := int(b[4])
	b = b[5:]
	max := 32
	if v6 {
		max = 128
	}
	if bits > max {
		return fmt.Errorf("mrt: prefix length %d exceeds %d", bits, max)
	}
	nbytes := (bits + 7) / 8
	if len(b) < nbytes+2 {
		return errors.New("mrt: truncated prefix")
	}
	if v6 {
		var a [16]byte
		copy(a[:], b[:nbytes])
		rib.Prefix = netip.PrefixFrom(netip.AddrFrom16(a), bits).Masked()
	} else {
		var a [4]byte
		copy(a[:], b[:nbytes])
		rib.Prefix = netip.PrefixFrom(netip.AddrFrom4(a), bits).Masked()
	}
	b = b[nbytes:]
	n := int(binary.BigEndian.Uint16(b[:2]))
	b = b[2:]
	if rib.Entries == nil {
		rib.Entries = make([]RIBEntry, 0, n)
	}
	for i := 0; i < n; i++ {
		if len(b) < 8 {
			return errors.New("mrt: truncated RIB entry")
		}
		var e RIBEntry
		e.PeerIndex = binary.BigEndian.Uint16(b[:2])
		e.OriginatedAt = binary.BigEndian.Uint32(b[2:6])
		alen := int(binary.BigEndian.Uint16(b[6:8]))
		b = b[8:]
		if len(b) < alen {
			return errors.New("mrt: truncated RIB entry attributes")
		}
		var attrs bgp.AttrSet
		var err error
		if dec != nil {
			attrs, err = dec.Decode(b[:alen])
		} else {
			attrs, err = bgp.UnmarshalAttrs(b[:alen])
		}
		if err != nil {
			return fmt.Errorf("mrt: entry attrs: %w", err)
		}
		e.Attrs = attrs
		b = b[alen:]
		rib.Entries = append(rib.Entries, e)
	}
	return nil
}
