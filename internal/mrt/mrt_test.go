package mrt

import (
	"bytes"
	"io"
	"math/rand"
	"net/netip"
	"testing"

	"countryrank/internal/asn"
	"countryrank/internal/bgp"
	"countryrank/internal/netx"
)

func testPeers() []Peer {
	return []Peer{
		{BGPID: netip.MustParseAddr("10.0.0.1"), Addr: netip.MustParseAddr("203.0.113.1"), AS: 3356},
		{BGPID: netip.MustParseAddr("10.0.0.2"), Addr: netip.MustParseAddr("2001:db8::7"), AS: 1299},
	}
}

func attrs(p ...uint32) bgp.AttrSet {
	path := make(bgp.Path, len(p))
	for i, a := range p {
		path[i] = asn.ASN(a)
	}
	return bgp.AttrSet{
		Origin:  bgp.OriginIGP,
		ASPath:  bgp.SequencePath(path),
		NextHop: netip.MustParseAddr("192.0.2.1"),
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1617235200) // 2021-04-01
	if err := w.WritePeerIndexTable(netip.MustParseAddr("198.51.100.1"), "route-views.test", testPeers()); err != nil {
		t.Fatalf("WritePeerIndexTable: %v", err)
	}
	if err := w.WriteRIB(netx.MustPrefix("10.1.0.0/16"), []RIBEntry{
		{PeerIndex: 0, OriginatedAt: 100, Attrs: attrs(3356, 1221)},
		{PeerIndex: 1, OriginatedAt: 200, Attrs: attrs(1299, 4826, 1221)},
	}); err != nil {
		t.Fatalf("WriteRIB v4: %v", err)
	}
	if err := w.WriteRIB(netx.MustPrefix("2001:db8:5::/48"), []RIBEntry{
		{PeerIndex: 1, OriginatedAt: 300, Attrs: bgp.AttrSet{ASPath: bgp.SequencePath(bgp.Path{2914, 4713})}},
	}); err != nil {
		t.Fatalf("WriteRIB v6: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	r := NewReader(&buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatalf("Next 1: %v", err)
	}
	pit := rec.PeerIndexTable
	if pit == nil {
		t.Fatal("first record should be PEER_INDEX_TABLE")
	}
	if rec.Timestamp != 1617235200 {
		t.Errorf("timestamp = %d", rec.Timestamp)
	}
	if pit.ViewName != "route-views.test" || pit.CollectorID != netip.MustParseAddr("198.51.100.1") {
		t.Errorf("pit header = %+v", pit)
	}
	if len(pit.Peers) != 2 {
		t.Fatalf("peers = %d", len(pit.Peers))
	}
	if pit.Peers[0].AS != 3356 || pit.Peers[0].Addr != netip.MustParseAddr("203.0.113.1") {
		t.Errorf("peer 0 = %+v", pit.Peers[0])
	}
	if pit.Peers[1].Addr != netip.MustParseAddr("2001:db8::7") {
		t.Errorf("peer 1 v6 addr = %+v", pit.Peers[1])
	}

	rec, err = r.Next()
	if err != nil {
		t.Fatalf("Next 2: %v", err)
	}
	rib := rec.RIB
	if rib == nil || rib.Prefix != netx.MustPrefix("10.1.0.0/16") || rib.Seq != 0 {
		t.Fatalf("rib 1 = %+v", rib)
	}
	if len(rib.Entries) != 2 {
		t.Fatalf("entries = %d", len(rib.Entries))
	}
	if !rib.Entries[1].Attrs.PathOf().Equal(bgp.Path{1299, 4826, 1221}) {
		t.Errorf("entry path = %v", rib.Entries[1].Attrs.PathOf())
	}
	if rib.Entries[0].OriginatedAt != 100 {
		t.Errorf("originated = %d", rib.Entries[0].OriginatedAt)
	}

	rec, err = r.Next()
	if err != nil {
		t.Fatalf("Next 3: %v", err)
	}
	if rec.RIB == nil || rec.RIB.Prefix != netx.MustPrefix("2001:db8:5::/48") || rec.RIB.Seq != 1 {
		t.Fatalf("rib 2 = %+v", rec.RIB)
	}

	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestWriterOrderEnforced(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	if err := w.WriteRIB(netx.MustPrefix("10.0.0.0/8"), nil); err == nil {
		t.Error("RIB before PEER_INDEX_TABLE must fail")
	}
	if err := w.WritePeerIndexTable(netip.MustParseAddr("10.0.0.1"), "v", nil); err != nil {
		t.Fatalf("pit: %v", err)
	}
	if err := w.WritePeerIndexTable(netip.MustParseAddr("10.0.0.1"), "v", nil); err == nil {
		t.Error("second PEER_INDEX_TABLE must fail")
	}
}

func TestReaderErrors(t *testing.T) {
	// Unsupported type.
	raw := make([]byte, 12)
	raw[5] = 12 // TABLE_DUMP (v1)
	if _, err := NewReader(bytes.NewReader(raw)).Next(); err == nil {
		t.Error("v1 TABLE_DUMP should be rejected")
	}
	// Truncated header.
	if _, err := NewReader(bytes.NewReader(raw[:5])).Next(); err == nil {
		t.Error("truncated header should fail")
	}
	// Truncated body.
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	w.WritePeerIndexTable(netip.MustParseAddr("10.0.0.1"), "v", testPeers())
	w.Flush()
	all := buf.Bytes()
	if _, err := NewReader(bytes.NewReader(all[:len(all)-3])).Next(); err == nil {
		t.Error("truncated body should fail")
	}
}

func TestRoundTripRandomRIBs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var buf bytes.Buffer
	w := NewWriter(&buf, 7)
	peers := make([]Peer, 30)
	for i := range peers {
		peers[i] = Peer{
			BGPID: netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)}),
			Addr:  netip.AddrFrom4([4]byte{172, 16, 0, byte(i + 1)}),
			AS:    asn.ASN(rng.Intn(1 << 17)),
		}
	}
	if err := w.WritePeerIndexTable(netip.MustParseAddr("10.9.9.9"), "rand", peers); err != nil {
		t.Fatal(err)
	}
	type wantRIB struct {
		pfx     netip.Prefix
		entries []RIBEntry
	}
	var want []wantRIB
	for i := 0; i < 100; i++ {
		a := rng.Uint32()
		pfx := netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}), 8+rng.Intn(25)).Masked()
		n := 1 + rng.Intn(5)
		es := make([]RIBEntry, n)
		for j := range es {
			pl := 1 + rng.Intn(6)
			p := make(bgp.Path, pl)
			for k := range p {
				p[k] = asn.ASN(1 + rng.Intn(1<<18))
			}
			es[j] = RIBEntry{
				PeerIndex:    uint16(rng.Intn(len(peers))),
				OriginatedAt: rng.Uint32(),
				Attrs:        bgp.AttrSet{Origin: bgp.OriginCode(rng.Intn(3)), ASPath: bgp.SequencePath(p)},
			}
		}
		want = append(want, wantRIB{pfx, es})
		if err := w.WriteRIB(pfx, es); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()

	r := NewReader(&buf)
	if _, err := r.Next(); err != nil { // PIT
		t.Fatal(err)
	}
	for i, wr := range want {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("rib %d: %v", i, err)
		}
		rib := rec.RIB
		if rib.Prefix != wr.pfx || int(rib.Seq) != i || len(rib.Entries) != len(wr.entries) {
			t.Fatalf("rib %d mismatch: %+v", i, rib)
		}
		for j, e := range rib.Entries {
			we := wr.entries[j]
			if e.PeerIndex != we.PeerIndex || e.OriginatedAt != we.OriginatedAt ||
				!e.Attrs.PathOf().Equal(we.Attrs.PathOf()) || e.Attrs.Origin != we.Attrs.Origin {
				t.Fatalf("rib %d entry %d mismatch", i, j)
			}
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}
