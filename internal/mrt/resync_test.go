package mrt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net/netip"
	"testing"

	"countryrank/internal/netx"
)

// recordedStream builds a dump and returns both the bytes and the offset of
// each record, so tests can corrupt precise positions.
func recordedStream(t *testing.T) ([]byte, []int) {
	t.Helper()
	var buf bytes.Buffer
	var offsets []int
	w := NewWriter(&buf, 1617235200)
	flush := func() {
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	offsets = append(offsets, buf.Len())
	if err := w.WritePeerIndexTable(netip.MustParseAddr("198.51.100.1"), "rv.resync", testPeers()); err != nil {
		t.Fatal(err)
	}
	flush()
	for i, pfx := range []string{"10.1.0.0/16", "10.2.0.0/16", "10.3.0.0/16"} {
		offsets = append(offsets, buf.Len())
		if err := w.WriteRIB(netx.MustPrefix(pfx), []RIBEntry{
			{PeerIndex: uint16(i % 2), OriginatedAt: 100, Attrs: attrs(3356, 1221)},
		}); err != nil {
			t.Fatal(err)
		}
		flush()
	}
	return buf.Bytes(), offsets
}

// drain reads every record, returning the RIB prefixes seen.
func drain(t *testing.T, r *Reader) ([]string, error) {
	t.Helper()
	var pfxs []string
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return pfxs, nil
		}
		if err != nil {
			return pfxs, err
		}
		if rec.RIB != nil {
			pfxs = append(pfxs, rec.RIB.Prefix.String())
		}
	}
}

func TestResyncMidStreamGarbage(t *testing.T) {
	stream, offsets := recordedStream(t)
	// Wedge 100 bytes of garbage between the first and second RIB record.
	cut := offsets[2]
	garbage := bytes.Repeat([]byte{0xAA}, 100)
	mut := append(append(append([]byte(nil), stream[:cut]...), garbage...), stream[cut:]...)

	// Strict mode aborts at the garbage.
	if _, err := drain(t, NewReader(bytes.NewReader(mut))); err == nil {
		t.Fatal("strict reader accepted mid-stream garbage")
	}

	// Resync mode recovers every record.
	r := NewReader(bytes.NewReader(mut))
	r.SetResync(true)
	pfxs, err := drain(t, r)
	if err != nil {
		t.Fatalf("resync reader: %v", err)
	}
	want := []string{"10.1.0.0/16", "10.2.0.0/16", "10.3.0.0/16"}
	if len(pfxs) != len(want) {
		t.Fatalf("recovered %v, want %v", pfxs, want)
	}
	for i := range want {
		if pfxs[i] != want[i] {
			t.Fatalf("recovered %v, want %v", pfxs, want)
		}
	}
	if r.Resyncs() != 1 {
		t.Errorf("resyncs = %d, want 1", r.Resyncs())
	}
	if r.SkippedBytes() != int64(len(garbage)) {
		t.Errorf("skipped %d bytes, want %d", r.SkippedBytes(), len(garbage))
	}
}

func TestResyncCorruptLength(t *testing.T) {
	stream, offsets := recordedStream(t)
	// Blow up the second RIB record's length field: the record is lost, the
	// stream is not.
	mut := append([]byte(nil), stream...)
	binary.BigEndian.PutUint32(mut[offsets[2]+8:], 1<<30)

	if _, err := drain(t, NewReader(bytes.NewReader(mut))); err == nil {
		t.Fatal("strict reader accepted an implausible length")
	}

	r := NewReader(bytes.NewReader(mut))
	r.SetResync(true)
	pfxs, err := drain(t, r)
	if err != nil {
		t.Fatalf("resync reader: %v", err)
	}
	want := []string{"10.1.0.0/16", "10.3.0.0/16"}
	if len(pfxs) != len(want) || pfxs[0] != want[0] || pfxs[1] != want[1] {
		t.Fatalf("recovered %v, want %v (corrupt record dropped)", pfxs, want)
	}
	if r.Resyncs() < 1 {
		t.Errorf("resyncs = %d, want >= 1", r.Resyncs())
	}
	if r.SkippedBytes() == 0 {
		t.Error("skipped bytes = 0, want > 0")
	}
}

func TestResyncTruncatedTail(t *testing.T) {
	stream, offsets := recordedStream(t)
	// Cut mid-way through the last record.
	cutAt := offsets[3] + (len(stream)-offsets[3])/2
	mut := stream[:cutAt]

	if _, err := drain(t, NewReader(bytes.NewReader(mut))); err == nil {
		t.Fatal("strict reader accepted a truncated record")
	}

	r := NewReader(bytes.NewReader(mut))
	r.SetResync(true)
	pfxs, err := drain(t, r)
	if err != nil {
		t.Fatalf("resync reader: %v", err)
	}
	want := []string{"10.1.0.0/16", "10.2.0.0/16"}
	if len(pfxs) != len(want) || pfxs[0] != want[0] || pfxs[1] != want[1] {
		t.Fatalf("recovered %v, want %v (truncated tail dropped)", pfxs, want)
	}
	if r.Resyncs() != 1 {
		t.Errorf("resyncs = %d, want 1", r.Resyncs())
	}
}

func TestResyncCleanStreamUntouched(t *testing.T) {
	stream, _ := recordedStream(t)
	r := NewReader(bytes.NewReader(stream))
	r.SetResync(true)
	pfxs, err := drain(t, r)
	if err != nil {
		t.Fatalf("resync reader on clean stream: %v", err)
	}
	if len(pfxs) != 3 || r.Resyncs() != 0 || r.SkippedBytes() != 0 {
		t.Fatalf("clean stream: %d records, %d resyncs, %d skipped",
			len(pfxs), r.Resyncs(), r.SkippedBytes())
	}
}
