package mrt

import (
	"bytes"
	"io"
	"net/netip"
	"strings"
	"testing"

	"countryrank/internal/asn"
	"countryrank/internal/bgp"
	"countryrank/internal/netx"
)

// TestScanMatchesNext drives both decode paths over a multi-record dump and
// requires identical decoded content record by record.
func TestScanMatchesNext(t *testing.T) {
	raw := corpusStream(t)

	fresh := NewReader(bytes.NewReader(raw))
	reuse := NewReader(bytes.NewReader(raw))
	n := 0
	for {
		a, errA := fresh.Next()
		b, errB := reuse.Scan()
		if (errA == nil) != (errB == nil) {
			t.Fatalf("record %d: Next err %v, Scan err %v", n, errA, errB)
		}
		if errA == io.EOF {
			break
		}
		if errA != nil {
			t.Fatalf("record %d: %v", n, errA)
		}
		if a.Timestamp != b.Timestamp {
			t.Fatalf("record %d timestamp: %d vs %d", n, a.Timestamp, b.Timestamp)
		}
		switch {
		case a.PeerIndexTable != nil:
			bp := b.PeerIndexTable
			if bp == nil || bp.ViewName != a.PeerIndexTable.ViewName ||
				len(bp.Peers) != len(a.PeerIndexTable.Peers) {
				t.Fatalf("record %d PIT mismatch", n)
			}
			for i := range bp.Peers {
				if bp.Peers[i] != a.PeerIndexTable.Peers[i] {
					t.Fatalf("record %d peer %d mismatch", n, i)
				}
			}
		case a.RIB != nil:
			if b.RIB == nil || b.RIB.Prefix != a.RIB.Prefix ||
				len(b.RIB.Entries) != len(a.RIB.Entries) {
				t.Fatalf("record %d RIB mismatch", n)
			}
			for i := range a.RIB.Entries {
				ea, eb := a.RIB.Entries[i], b.RIB.Entries[i]
				if ea.PeerIndex != eb.PeerIndex ||
					!ea.Attrs.PathOf().Equal(eb.Attrs.PathOf()) {
					t.Fatalf("record %d entry %d mismatch", n, i)
				}
			}
		case a.BGP4MP != nil:
			if b.BGP4MP == nil || a.BGP4MP.PeerAS != b.BGP4MP.PeerAS {
				t.Fatalf("record %d BGP4MP mismatch", n)
			}
		}
		n++
	}
	if n != 4 {
		t.Fatalf("decoded %d records, want 4", n)
	}
}

// TestScanReusesStorage pins the opt-in contract: a scanned record is
// invalidated (overwritten in place) by the following Scan.
func TestScanReusesStorage(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 7)
	if err := w.WritePeerIndexTable(netip.MustParseAddr("10.0.0.1"), "v", testPeers()); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(netx.MustPrefix("10.1.0.0/16"), []RIBEntry{
		{PeerIndex: 0, Attrs: attrs(111, 222)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(netx.MustPrefix("10.2.0.0/16"), []RIBEntry{
		{PeerIndex: 1, Attrs: attrs(333, 444)},
	}); err != nil {
		t.Fatal(err)
	}
	w.Flush()

	r := NewReader(&buf)
	if _, err := r.Scan(); err != nil { // PIT
		t.Fatal(err)
	}
	first, err := r.Scan()
	if err != nil {
		t.Fatal(err)
	}
	rib := first.RIB
	second, err := r.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if second.RIB != rib {
		t.Fatal("Scan did not reuse the RIB record")
	}
	if rib.Prefix != netx.MustPrefix("10.2.0.0/16") {
		t.Fatalf("reused record holds %v", rib.Prefix)
	}
}

func TestDuplicatePeerIndexTableRejected(t *testing.T) {
	var one bytes.Buffer
	w := NewWriter(&one, 0)
	if err := w.WritePeerIndexTable(netip.MustParseAddr("10.0.0.1"), "v", testPeers()); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	// Two copies of the same PIT record back to back.
	raw := append(append([]byte(nil), one.Bytes()...), one.Bytes()...)
	r := NewReader(bytes.NewReader(raw))
	if _, err := r.Next(); err != nil {
		t.Fatalf("first PIT: %v", err)
	}
	_, err := r.Next()
	if err == nil || !strings.Contains(err.Error(), "duplicate PEER_INDEX_TABLE") {
		t.Fatalf("duplicate PIT: got %v", err)
	}
}

func TestWriterRejectsOversizeViewName(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	if err := w.WritePeerIndexTable(netip.MustParseAddr("10.0.0.1"),
		strings.Repeat("x", 0x10000), nil); err == nil {
		t.Fatal("view name over uint16 must fail")
	}
}

// TestWriterZeroAlloc pins the steady-state allocation contract of the
// writer scratch-buffer path.
func TestWriterZeroAlloc(t *testing.T) {
	w := NewWriter(io.Discard, 7)
	if err := w.WritePeerIndexTable(netip.MustParseAddr("10.0.0.1"), "v", testPeers()); err != nil {
		t.Fatal(err)
	}
	pfx := netx.MustPrefix("10.1.0.0/16")
	entries := []RIBEntry{
		{PeerIndex: 0, Attrs: bgp.AttrSet{ASPath: bgp.SequencePath(bgp.Path{asn.ASN(3356), asn.ASN(1221)})}},
	}
	// Warm the scratch buffer.
	if err := w.WriteRIB(pfx, entries); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := w.WriteRIB(pfx, entries); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("WriteRIB allocates %.1f times per record in steady state", avg)
	}
}
