package mrt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Section is a byte range of an MRT stream covering whole records:
// [Start, End).
type Section struct {
	Start, End int64
}

// IndexSections walks the record headers of an MRT stream — headers only,
// bodies are skipped — and splits it at record boundaries into sections of
// roughly target bytes each. The first section always covers exactly the
// first record: for TABLE_DUMP_V2 dumps that is the PEER_INDEX_TABLE, which
// a parallel chunk decoder must replay in front of every other section.
//
// Headers are validated with the same plausibility check the resync scanner
// uses. An implausible header or a truncated record aborts the index with an
// error: the caller falls back to sequential decode, which owns all error
// reporting and recovery. An empty stream indexes to no sections.
func IndexSections(r io.Reader, target int64) ([]Section, error) {
	if target <= 0 {
		target = 4 << 20
	}
	br := bufio.NewReaderSize(r, 1<<16)
	var (
		sections []Section
		hdr      [recordHeaderLen]byte
		off      int64
		open     = false // a section is accumulating records
		start    int64
	)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("mrt: section index: header at %d: %w", off, err)
		}
		if !plausibleHeader(hdr[:]) {
			return nil, fmt.Errorf("mrt: section index: implausible header at %d", off)
		}
		length := int64(binary.BigEndian.Uint32(hdr[8:]))
		if _, err := br.Discard(int(length)); err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return nil, fmt.Errorf("mrt: section index: body at %d: %w", off, err)
		}
		end := off + recordHeaderLen + length
		switch {
		case len(sections) == 0:
			// The first record is its own section.
			sections = append(sections, Section{Start: off, End: end})
		case !open:
			start, open = off, true
		}
		if open && end-start >= target {
			sections = append(sections, Section{Start: start, End: end})
			open = false
		}
		off = end
	}
	if open {
		sections = append(sections, Section{Start: start, End: off})
	}
	return sections, nil
}
