package ndcg

import "countryrank/internal/asn"

// The paper justifies NDCG over simpler list-comparison measures (§4.1);
// KendallTau and Jaccard implement the obvious alternatives so the choice
// can be ablated: Jaccard sees only membership (no ordering), Kendall tau
// sees only ordering of the common members (no relevance weighting), while
// NDCG weighs both, emphasizing the head of the list.

// KendallTau computes the rank correlation of the two top-k lists over
// their common members: the fraction of concordant minus discordant pairs,
// in [-1, 1]. Lists with fewer than two common members return 0.
func KendallTau(a, b []asn.ASN, k int) float64 {
	a, b = topK(a, k), topK(b, k)
	posA := map[asn.ASN]int{}
	for i, x := range a {
		posA[x] = i
	}
	var common []asn.ASN
	posB := map[asn.ASN]int{}
	for i, x := range b {
		if _, ok := posA[x]; ok {
			posB[x] = i
			common = append(common, x)
		}
	}
	n := len(common)
	if n < 2 {
		return 0
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			x, y := common[i], common[j]
			da := posA[x] - posA[y]
			db := posB[x] - posB[y]
			if da*db > 0 {
				concordant++
			} else if da*db < 0 {
				discordant++
			}
		}
	}
	pairs := n * (n - 1) / 2
	return float64(concordant-discordant) / float64(pairs)
}

// Jaccard returns the membership overlap of the two top-k lists:
// |A ∩ B| / |A ∪ B|, in [0, 1]. Two empty lists return 1.
func Jaccard(a, b []asn.ASN, k int) float64 {
	a, b = topK(a, k), topK(b, k)
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inA := map[asn.ASN]bool{}
	for _, x := range a {
		inA[x] = true
	}
	union := len(a)
	inter := 0
	for _, x := range b {
		if inA[x] {
			inter++
		} else {
			union++
		}
	}
	return float64(inter) / float64(union)
}
