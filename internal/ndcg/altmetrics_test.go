package ndcg

import (
	"math"
	"testing"

	"countryrank/internal/asn"
)

func TestKendallTau(t *testing.T) {
	a := []asn.ASN{1, 2, 3, 4}
	if got := KendallTau(a, a, 10); got != 1 {
		t.Errorf("identical lists tau = %f", got)
	}
	rev := []asn.ASN{4, 3, 2, 1}
	if got := KendallTau(a, rev, 10); got != -1 {
		t.Errorf("reversed lists tau = %f", got)
	}
	// One adjacent swap among 4 elements: 5 concordant, 1 discordant → 2/3.
	swapped := []asn.ASN{2, 1, 3, 4}
	if got := KendallTau(a, swapped, 10); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("one-swap tau = %f", got)
	}
	// Disjoint or tiny overlaps return 0.
	if KendallTau(a, []asn.ASN{9, 8}, 10) != 0 {
		t.Error("disjoint lists should give 0")
	}
	if KendallTau(a, []asn.ASN{3}, 10) != 0 {
		t.Error("single common member should give 0")
	}
	// k truncation applies before comparison.
	if got := KendallTau(a, rev, 1); got != 0 {
		t.Errorf("k=1 tau = %f (no pairs)", got)
	}
}

func TestJaccard(t *testing.T) {
	a := []asn.ASN{1, 2, 3}
	if Jaccard(a, a, 10) != 1 {
		t.Error("identical lists")
	}
	if Jaccard(a, []asn.ASN{4, 5, 6}, 10) != 0 {
		t.Error("disjoint lists")
	}
	if got := Jaccard(a, []asn.ASN{2, 3, 4}, 10); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("half-overlap = %f", got)
	}
	if Jaccard(nil, nil, 10) != 1 {
		t.Error("two empty lists are identical")
	}
	// Ordering is invisible to Jaccard — the property NDCG adds.
	if Jaccard(a, []asn.ASN{3, 2, 1}, 10) != 1 {
		t.Error("Jaccard must ignore order")
	}
}

// TestNDCGSeesWhatJaccardMisses pins the §4.1 rationale: a reordered top
// list keeps Jaccard at 1 while NDCG drops.
func TestNDCGSeesWhatJaccardMisses(t *testing.T) {
	full := []asn.ASN{1, 2, 3}
	vals := map[asn.ASN]float64{1: 0.9, 2: 0.5, 3: 0.1}
	reordered := []asn.ASN{3, 2, 1}
	if Jaccard(full, reordered, 3) != 1 {
		t.Fatal("setup: same membership")
	}
	if NDCG(reordered, vals, full, 3) >= 1 {
		t.Error("NDCG must penalize the reordering")
	}
}
