// Package ndcg implements the Normalized Discounted Cumulative Gain the
// paper uses to measure ranking stability under vantage-point downsampling
// (§4.1): a sample-based top-k ranking is scored by the full-view metric
// values of the ASes it places at each rank, discounted logarithmically,
// and normalized by the full ranking's own DCG.
package ndcg

import (
	"math"

	"countryrank/internal/asn"
)

// DefaultK is the top-list size the paper evaluates (TRA = top 10 ASes).
const DefaultK = 10

// DCG computes Σ rel_p / log2(p+1) over the given relevances in rank order
// (p is 1-based).
func DCG(rels []float64) float64 {
	var sum float64
	for i, r := range rels {
		sum += r / math.Log2(float64(i)+2)
	}
	return sum
}

// NDCG scores a sample-based ranking against the full view. sampleOrder is
// the sample's top ASes (best first); fullValue maps each AS to its
// full-view metric value (the relevance); fullOrder is the full view's own
// ranking. Only the first k entries of each are used. Returns 0 when the
// full ranking is empty or has zero DCG.
func NDCG(sampleOrder []asn.ASN, fullValue map[asn.ASN]float64, fullOrder []asn.ASN, k int) float64 {
	if k <= 0 {
		k = DefaultK
	}
	sample := topK(sampleOrder, k)
	full := topK(fullOrder, k)

	rels := make([]float64, len(sample))
	for i, a := range sample {
		rels[i] = fullValue[a]
	}
	ideal := make([]float64, len(full))
	for i, a := range full {
		ideal[i] = fullValue[a]
	}
	fd := DCG(ideal)
	if fd == 0 {
		return 0
	}
	return DCG(rels) / fd
}

func topK(xs []asn.ASN, k int) []asn.ASN {
	if len(xs) > k {
		return xs[:k]
	}
	return xs
}
