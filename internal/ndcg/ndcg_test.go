package ndcg

import (
	"math"
	"testing"
	"testing/quick"

	"countryrank/internal/asn"
)

func TestDCG(t *testing.T) {
	// DCG of [3, 2, 1] = 3/log2(2) + 2/log2(3) + 1/log2(4).
	want := 3.0 + 2.0/math.Log2(3) + 0.5
	if got := DCG([]float64{3, 2, 1}); math.Abs(got-want) > 1e-12 {
		t.Errorf("DCG = %f, want %f", got, want)
	}
	if DCG(nil) != 0 {
		t.Error("empty DCG should be 0")
	}
}

func TestNDCGPerfect(t *testing.T) {
	full := []asn.ASN{1, 2, 3}
	vals := map[asn.ASN]float64{1: 0.5, 2: 0.3, 3: 0.1}
	if got := NDCG(full, vals, full, 10); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical ranking NDCG = %f", got)
	}
}

func TestNDCGDegradesWithDisorder(t *testing.T) {
	full := []asn.ASN{1, 2, 3, 4}
	vals := map[asn.ASN]float64{1: 0.9, 2: 0.5, 3: 0.2, 4: 0.1}
	swapTop := NDCG([]asn.ASN{2, 1, 3, 4}, vals, full, 10)
	swapTail := NDCG([]asn.ASN{1, 2, 4, 3}, vals, full, 10)
	if swapTop >= 1 || swapTail >= 1 {
		t.Errorf("disorder should cost: top=%f tail=%f", swapTop, swapTail)
	}
	if swapTop >= swapTail {
		t.Errorf("a swap at the top (%f) should cost more than at the tail (%f)", swapTop, swapTail)
	}
}

func TestNDCGMissingAS(t *testing.T) {
	full := []asn.ASN{1, 2}
	vals := map[asn.ASN]float64{1: 0.9, 2: 0.5}
	// The sample surfaces an AS the full view values at zero.
	got := NDCG([]asn.ASN{1, 99}, vals, full, 10)
	want := 0.9 / (0.9 + 0.5/math.Log2(3))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("NDCG = %f, want %f", got, want)
	}
}

func TestNDCGZeroFull(t *testing.T) {
	if NDCG([]asn.ASN{1}, map[asn.ASN]float64{}, []asn.ASN{1}, 10) != 0 {
		t.Error("zero full DCG should give 0")
	}
}

func TestNDCGKTruncation(t *testing.T) {
	full := []asn.ASN{1, 2, 3}
	vals := map[asn.ASN]float64{1: 0.9, 2: 0.5, 3: 0.4}
	// With k=1 only the top entry matters.
	if got := NDCG([]asn.ASN{1, 3, 2}, vals, full, 1); got != 1 {
		t.Errorf("k=1 NDCG = %f", got)
	}
	// k<=0 selects DefaultK.
	if got := NDCG(full, vals, full, 0); got != 1 {
		t.Errorf("default-k NDCG = %f", got)
	}
}

// TestNDCGBounded: for samples that are permutations of the full top list,
// NDCG is in (0, 1].
func TestNDCGBounded(t *testing.T) {
	f := func(seed uint32) bool {
		// Build a 5-AS full ranking with descending positive values.
		full := []asn.ASN{10, 20, 30, 40, 50}
		vals := map[asn.ASN]float64{10: 5, 20: 4, 30: 3, 40: 2, 50: 1}
		// Derive a permutation from the seed.
		perm := append([]asn.ASN(nil), full...)
		s := seed
		for i := len(perm) - 1; i > 0; i-- {
			s = s*1664525 + 1013904223
			j := int(s) % (i + 1)
			if j < 0 {
				j = -j
			}
			perm[i], perm[j] = perm[j], perm[i]
		}
		got := NDCG(perm, vals, full, 5)
		return got > 0 && got <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
