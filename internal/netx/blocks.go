package netx

import (
	"net/netip"
	"sort"
)

// Block is a maximal CIDR-aligned run of addresses whose most-specific
// covering prefix is Owner. Splitting announced prefixes into blocks is the
// first step of prefix geolocation (§3.2.1): different sub-blocks of an
// announced prefix may sit in different countries, and only the portion not
// covered by a more-specific announcement is attributed to the covering
// prefix.
type Block struct {
	// Prefix is the CIDR-aligned block itself.
	Prefix netip.Prefix
	// Owner is the most specific announced prefix covering the block.
	Owner netip.Prefix
}

// SplitBlocks partitions the address space announced by prefixes into
// non-overlapping blocks, each mapped to its most specific covering prefix.
// Duplicate input prefixes are coalesced. The result is in canonical prefix
// order. Prefixes entirely covered by more specifics contribute no blocks.
func SplitBlocks(prefixes []netip.Prefix) []Block {
	var trie Trie[struct{}]
	for _, p := range prefixes {
		trie.Insert(p, struct{}{})
	}
	var out []Block
	// For each announced prefix, emit the CIDR chunks of it that are not
	// covered by any strictly more specific announced prefix.
	for _, pv := range trie.All() {
		owner := pv.Prefix
		descendants := trie.Descendants(owner)
		if len(descendants) == 0 {
			out = append(out, Block{Prefix: owner, Owner: owner})
			continue
		}
		out = append(out, carve(owner, owner, descendants)...)
	}
	sort.Slice(out, func(i, j int) bool { return ComparePrefixes(out[i].Prefix, out[j].Prefix) < 0 })
	return out
}

// carve returns the blocks of cur not covered by any prefix in descendants,
// attributing them to owner. descendants are all strictly inside owner.
func carve(cur, owner netip.Prefix, descendants []netip.Prefix) []Block {
	covered := false
	anyInside := false
	for _, d := range descendants {
		if Covers(d, cur) && d != owner {
			covered = true
			break
		}
		if Covers(cur, d) && d != cur {
			anyInside = true
		}
	}
	if covered {
		return nil
	}
	if !anyInside {
		return []Block{{Prefix: cur, Owner: owner}}
	}
	// Some descendant lies strictly inside cur: split and recurse. cur cannot
	// be a host route here because nothing fits strictly inside one.
	lo, hi := Halves(cur)
	var out []Block
	out = append(out, carve(lo, owner, descendants)...)
	out = append(out, carve(hi, owner, descendants)...)
	return out
}
