package netx

import (
	"math/rand"
	"net/netip"
	"testing"
)

func TestSplitBlocksNoOverlapInput(t *testing.T) {
	in := []netip.Prefix{MustPrefix("10.0.0.0/8"), MustPrefix("11.0.0.0/8")}
	got := SplitBlocks(in)
	if len(got) != 2 {
		t.Fatalf("got %d blocks, want 2: %v", len(got), got)
	}
	for i, b := range got {
		if b.Prefix != in[i] || b.Owner != in[i] {
			t.Errorf("block %d = %+v, want identity", i, b)
		}
	}
}

func TestSplitBlocksCarving(t *testing.T) {
	// 10.0.0.0/22 with a more specific 10.0.1.0/24 carved out of it.
	got := SplitBlocks([]netip.Prefix{MustPrefix("10.0.0.0/22"), MustPrefix("10.0.1.0/24")})
	type want struct{ pfx, owner string }
	wants := []want{
		{"10.0.0.0/24", "10.0.0.0/22"},
		{"10.0.1.0/24", "10.0.1.0/24"},
		{"10.0.2.0/23", "10.0.0.0/22"},
	}
	if len(got) != len(wants) {
		t.Fatalf("got %d blocks %v, want %d", len(got), got, len(wants))
	}
	for i, w := range wants {
		if got[i].Prefix != MustPrefix(w.pfx) || got[i].Owner != MustPrefix(w.owner) {
			t.Errorf("block %d = %+v, want %s owned by %s", i, got[i], w.pfx, w.owner)
		}
	}
}

func TestSplitBlocksFullyCoveredParent(t *testing.T) {
	// The /23 is fully covered by its two /24s: it must contribute no blocks.
	got := SplitBlocks([]netip.Prefix{
		MustPrefix("10.0.0.0/23"), MustPrefix("10.0.0.0/24"), MustPrefix("10.0.1.0/24"),
	})
	if len(got) != 2 {
		t.Fatalf("got %v, want the two /24s only", got)
	}
	for _, b := range got {
		if b.Prefix != b.Owner || b.Prefix.Bits() != 24 {
			t.Errorf("unexpected block %+v", b)
		}
	}
}

func TestSplitBlocksDuplicates(t *testing.T) {
	got := SplitBlocks([]netip.Prefix{MustPrefix("10.0.0.0/8"), MustPrefix("10.0.0.0/8")})
	if len(got) != 1 {
		t.Fatalf("duplicates should coalesce, got %v", got)
	}
}

// TestSplitBlocksPartition verifies on random inputs that blocks are
// pairwise disjoint, each owned by its most specific covering input prefix,
// and that total block weight equals the weight of the union of inputs.
func TestSplitBlocksPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		var in []netip.Prefix
		for i := 0; i < 12; i++ {
			// Confine to 10/8 so overlaps are common.
			p := randomV4Prefix(rng, 10)
			b := p.Addr().As4()
			b[0] = 10
			in = append(in, netip.PrefixFrom(netip.AddrFrom4(b), p.Bits()).Masked())
		}
		blocks := SplitBlocks(in)
		for i := range blocks {
			for j := i + 1; j < len(blocks); j++ {
				if Overlaps(blocks[i].Prefix, blocks[j].Prefix) {
					t.Fatalf("trial %d: overlapping blocks %v %v", trial, blocks[i], blocks[j])
				}
			}
			// Owner must cover the block and be the most specific input doing so.
			b := blocks[i]
			if !Covers(b.Owner, b.Prefix) {
				t.Fatalf("owner %v does not cover block %v", b.Owner, b.Prefix)
			}
			for _, p := range in {
				if Covers(p, b.Prefix) && p.Bits() > b.Owner.Bits() {
					t.Fatalf("block %v owned by %v but %v is more specific", b.Prefix, b.Owner, p)
				}
			}
		}
		// Weight conservation: sample addresses and check membership parity.
		var blockWeight uint64
		for _, b := range blocks {
			blockWeight += AddressWeight(b.Prefix)
		}
		unionWeight := unionWeight(in)
		if blockWeight != unionWeight {
			t.Fatalf("trial %d: block weight %d != union weight %d", trial, blockWeight, unionWeight)
		}
	}
}

// unionWeight computes the number of addresses covered by at least one input
// prefix, via SplitBlocks-independent carving on a sorted copy.
func unionWeight(in []netip.Prefix) uint64 {
	// Use the trie's disjoint set: insert all, then count weight of entries
	// not covered by a strictly shorter entry, minus double counting handled
	// by recursion. Simplest correct approach: merge intervals.
	type iv struct{ lo, hi uint64 } // [lo, hi)
	var ivs []iv
	for _, p := range in {
		a4 := p.Masked().Addr().As4()
		lo := uint64(a4[0])<<24 | uint64(a4[1])<<16 | uint64(a4[2])<<8 | uint64(a4[3])
		ivs = append(ivs, iv{lo, lo + AddressWeight(p)})
	}
	for i := 0; i < len(ivs); i++ {
		for j := i + 1; j < len(ivs); j++ {
			if ivs[j].lo < ivs[i].lo {
				ivs[i], ivs[j] = ivs[j], ivs[i]
			}
		}
	}
	var total, end uint64
	for _, v := range ivs {
		if v.lo > end {
			total += v.hi - v.lo
			end = v.hi
		} else if v.hi > end {
			total += v.hi - end
			end = v.hi
		}
	}
	return total
}
