// Package netx provides IP prefix utilities used throughout the ranking
// pipeline: address weighting, prefix relations, a binary radix trie over
// prefixes, and the non-overlapping block splitting that prefix geolocation
// (§3.2.1 of the paper) requires.
//
// The package is built on net/netip and supports both IPv4 and IPv6, though
// the synthetic workloads in this repository are IPv4-centric like the
// paper's April 2021 data set.
package netx

import (
	"fmt"
	"net/netip"
)

// AddressWeight returns the number of addresses covered by p, used to weight
// prefixes in the customer cone and hegemony calculations. IPv4 prefixes
// count individual addresses (a /24 weighs 256). IPv6 prefixes count /64
// subnets so that weights remain comparable across huge allocations; a /48
// weighs 65536 and any prefix longer than /64 weighs 1.
func AddressWeight(p netip.Prefix) uint64 {
	if !p.IsValid() {
		return 0
	}
	if p.Addr().Is4() {
		return 1 << (32 - p.Bits())
	}
	if p.Bits() >= 64 {
		return 1
	}
	return 1 << (64 - p.Bits())
}

// Covers reports whether outer contains every address of inner. A prefix
// covers itself. Prefixes of different address families never cover each
// other.
func Covers(outer, inner netip.Prefix) bool {
	if outer.Addr().Is4() != inner.Addr().Is4() {
		return false
	}
	return outer.Bits() <= inner.Bits() && outer.Contains(inner.Addr())
}

// Overlaps reports whether the two prefixes share any address.
func Overlaps(a, b netip.Prefix) bool {
	return Covers(a, b) || Covers(b, a)
}

// Halves splits p into its two child prefixes of length Bits()+1. It panics
// if p is a host route (/32 or /128), which has no children.
func Halves(p netip.Prefix) (lo, hi netip.Prefix) {
	bits := p.Bits()
	max := 32
	if !p.Addr().Is4() {
		max = 128
	}
	if bits >= max {
		panic(fmt.Sprintf("netx: Halves of host route %v", p))
	}
	lo = netip.PrefixFrom(p.Masked().Addr(), bits+1)
	hiAddr := setBit(p.Masked().Addr(), bits)
	hi = netip.PrefixFrom(hiAddr, bits+1)
	return lo.Masked(), hi.Masked()
}

// setBit returns addr with bit i (0 = most significant) set to 1.
func setBit(addr netip.Addr, i int) netip.Addr {
	if addr.Is4() {
		a4 := addr.As4()
		a4[i/8] |= 1 << (7 - i%8)
		return netip.AddrFrom4(a4)
	}
	a16 := addr.As16()
	a16[i/8] |= 1 << (7 - i%8)
	return netip.AddrFrom16(a16)
}

// bit returns bit i (0 = most significant) of addr.
func bit(addr netip.Addr, i int) int {
	var b byte
	if addr.Is4() {
		a4 := addr.As4()
		b = a4[i/8]
	} else {
		a16 := addr.As16()
		b = a16[i/8]
	}
	return int(b>>(7-i%8)) & 1
}

// MustPrefix parses s as a CIDR prefix and panics on error. It is intended
// for tests and for the hand-curated world model where inputs are constants.
func MustPrefix(s string) netip.Prefix {
	p, err := netip.ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p.Masked()
}

// ComparePrefixes orders prefixes by family (IPv4 first), then address, then
// length. It is the canonical ordering for deterministic iteration.
func ComparePrefixes(a, b netip.Prefix) int {
	a4, b4 := a.Addr().Is4(), b.Addr().Is4()
	if a4 != b4 {
		if a4 {
			return -1
		}
		return 1
	}
	if c := a.Addr().Compare(b.Addr()); c != 0 {
		return c
	}
	switch {
	case a.Bits() < b.Bits():
		return -1
	case a.Bits() > b.Bits():
		return 1
	}
	return 0
}
