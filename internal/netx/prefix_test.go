package netx

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestAddressWeight(t *testing.T) {
	cases := []struct {
		pfx  string
		want uint64
	}{
		{"10.0.0.0/8", 1 << 24},
		{"192.168.1.0/24", 256},
		{"192.168.1.1/32", 1},
		{"0.0.0.0/0", 1 << 32},
		{"2001:db8::/32", 1 << 32},
		{"2001:db8::/48", 1 << 16},
		{"2001:db8::/64", 1},
		{"2001:db8::1/128", 1},
	}
	for _, c := range cases {
		if got := AddressWeight(MustPrefix(c.pfx)); got != c.want {
			t.Errorf("AddressWeight(%s) = %d, want %d", c.pfx, got, c.want)
		}
	}
	if AddressWeight(netip.Prefix{}) != 0 {
		t.Error("AddressWeight of invalid prefix should be 0")
	}
}

func TestCoversAndOverlaps(t *testing.T) {
	p8 := MustPrefix("10.0.0.0/8")
	p16 := MustPrefix("10.1.0.0/16")
	other := MustPrefix("11.0.0.0/8")
	v6 := MustPrefix("2001:db8::/32")

	if !Covers(p8, p16) {
		t.Error("10/8 should cover 10.1/16")
	}
	if Covers(p16, p8) {
		t.Error("10.1/16 should not cover 10/8")
	}
	if !Covers(p8, p8) {
		t.Error("prefix should cover itself")
	}
	if Covers(p8, other) || Overlaps(p8, other) {
		t.Error("10/8 and 11/8 are disjoint")
	}
	if Covers(p8, v6) || Covers(v6, p8) {
		t.Error("families never cover each other")
	}
	if !Overlaps(p16, p8) {
		t.Error("overlap should be symmetric in coverage")
	}
}

func TestHalves(t *testing.T) {
	lo, hi := Halves(MustPrefix("10.0.0.0/8"))
	if lo != MustPrefix("10.0.0.0/9") || hi != MustPrefix("10.128.0.0/9") {
		t.Errorf("Halves(10/8) = %v, %v", lo, hi)
	}
	lo, hi = Halves(MustPrefix("192.168.0.0/23"))
	if lo != MustPrefix("192.168.0.0/24") || hi != MustPrefix("192.168.1.0/24") {
		t.Errorf("Halves(192.168.0/23) = %v, %v", lo, hi)
	}
	lo, hi = Halves(MustPrefix("2001:db8::/32"))
	if lo != MustPrefix("2001:db8::/33") || hi != MustPrefix("2001:db8:8000::/33") {
		t.Errorf("Halves v6 = %v, %v", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Error("Halves of /32 should panic")
		}
	}()
	Halves(MustPrefix("1.2.3.4/32"))
}

func TestHalvesPartition(t *testing.T) {
	// Property: the two halves are disjoint, both covered by the parent, and
	// their weights sum to the parent's weight.
	f := func(a uint32, bits uint8) bool {
		b := int(bits % 32) // 0..31 so halving is legal
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}), b).Masked()
		lo, hi := Halves(p)
		return Covers(p, lo) && Covers(p, hi) && !Overlaps(lo, hi) &&
			AddressWeight(lo)+AddressWeight(hi) == AddressWeight(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComparePrefixes(t *testing.T) {
	ordered := []string{"9.0.0.0/8", "10.0.0.0/8", "10.0.0.0/16", "10.1.0.0/16", "2001:db8::/32"}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := ComparePrefixes(MustPrefix(ordered[i]), MustPrefix(ordered[j]))
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%s, %s) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestMustPrefixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustPrefix should panic on junk")
		}
	}()
	MustPrefix("not-a-prefix")
}

// randomV4Prefix returns a random masked IPv4 prefix with length in [minLen, 32].
func randomV4Prefix(rng *rand.Rand, minLen int) netip.Prefix {
	a := rng.Uint32()
	bits := minLen + rng.Intn(33-minLen)
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}), bits).Masked()
}
