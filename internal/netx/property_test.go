package netx

import (
	"math/rand"
	"net/netip"
	"testing"
)

// TestCoveredByMoreSpecificsMatchesBruteForce cross-checks the trie's
// coverage query against exhaustive address sampling on random prefix sets.
func TestCoveredByMoreSpecificsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		var tr Trie[int]
		var pfxs []netip.Prefix
		for i := 0; i < 14; i++ {
			// Confined to 10.0.0.0/12 with lengths 14..20 so that nesting is
			// frequent and exhaustive /20-granule checking is feasible.
			p := randomV4Prefix(rng, 14)
			b := p.Addr().As4()
			b[0], b[1] = 10, b[1]&0x0F
			bits := 14 + rng.Intn(7)
			p = netip.PrefixFrom(netip.AddrFrom4(b), bits).Masked()
			pfxs = append(pfxs, p)
			tr.Insert(p, i)
		}
		for _, p := range pfxs {
			got := tr.CoveredByMoreSpecifics(p)
			want := bruteCovered(p, pfxs)
			if got != want {
				t.Fatalf("trial %d: CoveredByMoreSpecifics(%v) = %v, brute force %v (set %v)",
					trial, p, got, want, pfxs)
			}
		}
	}
}

// bruteCovered checks, /22-granule by granule, whether every part of p is
// inside some strictly more specific member of pfxs.
func bruteCovered(p netip.Prefix, pfxs []netip.Prefix) bool {
	if p.Bits() >= 22 {
		// Granularity floor: check single addresses.
		for _, q := range pfxs {
			if q != p && Covers(q, p) && q.Bits() > p.Bits() {
				return true
			}
		}
		// A host-level prefix can also be covered by the union of two more
		// specifics only if it is splittable; recurse when possible.
		if p.Bits() >= 32 {
			return false
		}
	}
	lo, hi := Halves(p)
	return bruteHalf(lo, p, pfxs) && bruteHalf(hi, p, pfxs)
}

func bruteHalf(h, orig netip.Prefix, pfxs []netip.Prefix) bool {
	for _, q := range pfxs {
		if q != orig && q.Bits() > orig.Bits() && Covers(q, h) {
			return true
		}
	}
	if h.Bits() >= 32 {
		return false
	}
	lo, hi := Halves(h)
	return bruteHalf(lo, orig, pfxs) && bruteHalf(hi, orig, pfxs)
}

// TestSplitBlocksLookupAgreement verifies that for random addresses, the
// block owner equals the longest announced prefix containing the address.
func TestSplitBlocksLookupAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		var pfxs []netip.Prefix
		var tr Trie[struct{}]
		for i := 0; i < 10; i++ {
			p := randomV4Prefix(rng, 10)
			b := p.Addr().As4()
			b[0] = 10
			p = netip.PrefixFrom(netip.AddrFrom4(b), p.Bits()).Masked()
			pfxs = append(pfxs, p)
			tr.Insert(p, struct{}{})
		}
		blocks := SplitBlocks(pfxs)
		var blockTrie Trie[netip.Prefix]
		for _, blk := range blocks {
			blockTrie.Insert(blk.Prefix, blk.Owner)
		}
		for q := 0; q < 300; q++ {
			a := rng.Uint32()
			addr := netip.AddrFrom4([4]byte{10, byte(a >> 16), byte(a >> 8), byte(a)})
			wantPfx, _, inAnnounced := tr.Lookup(addr)
			_, owner, inBlocks := blockTrie.Lookup(addr)
			if inAnnounced != inBlocks {
				t.Fatalf("coverage disagreement at %v: announced=%v blocks=%v", addr, inAnnounced, inBlocks)
			}
			if inAnnounced && owner != wantPfx {
				t.Fatalf("owner of %v = %v, want longest match %v", addr, owner, wantPfx)
			}
		}
	}
}
