package netx

import (
	"net/netip"
	"sort"
)

// Trie is a binary radix trie mapping IP prefixes to values. It supports the
// coverage queries the geolocation pipeline needs: longest-prefix match,
// descendant enumeration, and detecting prefixes entirely covered by more
// specifics. The zero value is empty and ready to use. Trie is not safe for
// concurrent mutation.
type Trie[V any] struct {
	v4, v6 *trieNode[V]
	count  int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
}

// Insert associates val with prefix p, replacing any existing value.
func (t *Trie[V]) Insert(p netip.Prefix, val V) {
	p = p.Masked()
	n := t.root(p, true)
	for i := 0; i < p.Bits(); i++ {
		b := bit(p.Addr(), i)
		if n.child[b] == nil {
			n.child[b] = &trieNode[V]{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.count++
	}
	n.set = true
	n.val = val
}

func (t *Trie[V]) root(p netip.Prefix, create bool) *trieNode[V] {
	if p.Addr().Is4() {
		if t.v4 == nil && create {
			t.v4 = &trieNode[V]{}
		}
		return t.v4
	}
	if t.v6 == nil && create {
		t.v6 = &trieNode[V]{}
	}
	return t.v6
}

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.count }

// Get returns the value stored exactly at p.
func (t *Trie[V]) Get(p netip.Prefix) (V, bool) {
	var zero V
	p = p.Masked()
	n := t.root(p, false)
	if n == nil {
		return zero, false
	}
	for i := 0; i < p.Bits(); i++ {
		n = n.child[bit(p.Addr(), i)]
		if n == nil {
			return zero, false
		}
	}
	if !n.set {
		return zero, false
	}
	return n.val, true
}

// Lookup returns the value of the longest stored prefix containing addr.
func (t *Trie[V]) Lookup(addr netip.Addr) (netip.Prefix, V, bool) {
	var zero V
	var bestVal V
	bestLen := -1
	fam := netip.PrefixFrom(addr, 0)
	n := t.root(fam, false)
	if n == nil {
		return netip.Prefix{}, zero, false
	}
	max := 32
	if !addr.Is4() {
		max = 128
	}
	for i := 0; ; i++ {
		if n.set {
			bestLen = i
			bestVal = n.val
		}
		if i == max {
			break
		}
		n = n.child[bit(addr, i)]
		if n == nil {
			break
		}
	}
	if bestLen < 0 {
		return netip.Prefix{}, zero, false
	}
	return netip.PrefixFrom(addr, bestLen).Masked(), bestVal, true
}

// Descendants returns all stored prefixes strictly more specific than p,
// in canonical order.
func (t *Trie[V]) Descendants(p netip.Prefix) []netip.Prefix {
	p = p.Masked()
	n := t.root(p, false)
	if n == nil {
		return nil
	}
	for i := 0; i < p.Bits(); i++ {
		n = n.child[bit(p.Addr(), i)]
		if n == nil {
			return nil
		}
	}
	var out []netip.Prefix
	var walk func(n *trieNode[V], pfx netip.Prefix)
	walk = func(n *trieNode[V], pfx netip.Prefix) {
		if n == nil {
			return
		}
		if n.set && pfx != p {
			out = append(out, pfx)
		}
		max := 32
		if !pfx.Addr().Is4() {
			max = 128
		}
		if pfx.Bits() >= max {
			return
		}
		lo, hi := Halves(pfx)
		walk(n.child[0], lo)
		walk(n.child[1], hi)
	}
	walk(n, p)
	sort.Slice(out, func(i, j int) bool { return ComparePrefixes(out[i], out[j]) < 0 })
	return out
}

// CoveredByMoreSpecifics reports whether every address of p is covered by
// stored prefixes strictly more specific than p. The paper filters such
// prefixes (1.2% of its April 2021 data) before geolocation because no
// traffic matches them under longest-prefix forwarding.
func (t *Trie[V]) CoveredByMoreSpecifics(p netip.Prefix) bool {
	p = p.Masked()
	n := t.root(p, false)
	if n == nil {
		return false
	}
	for i := 0; i < p.Bits(); i++ {
		n = n.child[bit(p.Addr(), i)]
		if n == nil {
			return false
		}
	}
	return coveredBelow(n, p, true)
}

// coveredBelow reports whether the address space of pfx is fully covered by
// set nodes at or below n. skipSelf excludes n's own entry (used for the
// strictly-more-specific semantics at the query root).
func coveredBelow[V any](n *trieNode[V], pfx netip.Prefix, skipSelf bool) bool {
	if n == nil {
		return false
	}
	if n.set && !skipSelf {
		return true
	}
	max := 32
	if !pfx.Addr().Is4() {
		max = 128
	}
	if pfx.Bits() >= max {
		return false
	}
	lo, hi := Halves(pfx)
	return coveredBelow(n.child[0], lo, false) && coveredBelow(n.child[1], hi, false)
}

// All returns every stored (prefix, value) pair in canonical order.
func (t *Trie[V]) All() []PrefixValue[V] {
	var out []PrefixValue[V]
	var walk func(n *trieNode[V], pfx netip.Prefix)
	walk = func(n *trieNode[V], pfx netip.Prefix) {
		if n == nil {
			return
		}
		if n.set {
			out = append(out, PrefixValue[V]{Prefix: pfx, Value: n.val})
		}
		max := 32
		if !pfx.Addr().Is4() {
			max = 128
		}
		if pfx.Bits() >= max {
			return
		}
		lo, hi := Halves(pfx)
		walk(n.child[0], lo)
		walk(n.child[1], hi)
	}
	if t.v4 != nil {
		walk(t.v4, MustPrefix("0.0.0.0/0"))
	}
	if t.v6 != nil {
		walk(t.v6, MustPrefix("::/0"))
	}
	sort.Slice(out, func(i, j int) bool { return ComparePrefixes(out[i].Prefix, out[j].Prefix) < 0 })
	return out
}

// PrefixValue pairs a prefix with its stored value.
type PrefixValue[V any] struct {
	Prefix netip.Prefix
	Value  V
}
