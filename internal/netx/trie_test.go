package netx

import (
	"math/rand"
	"net/netip"
	"testing"
)

func TestTrieInsertGet(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustPrefix("10.0.0.0/8"), 1)
	tr.Insert(MustPrefix("10.1.0.0/16"), 2)
	tr.Insert(MustPrefix("2001:db8::/32"), 3)
	tr.Insert(MustPrefix("10.0.0.0/8"), 10) // overwrite

	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if v, ok := tr.Get(MustPrefix("10.0.0.0/8")); !ok || v != 10 {
		t.Errorf("Get(10/8) = %d, %v", v, ok)
	}
	if v, ok := tr.Get(MustPrefix("10.1.0.0/16")); !ok || v != 2 {
		t.Errorf("Get(10.1/16) = %d, %v", v, ok)
	}
	if _, ok := tr.Get(MustPrefix("10.2.0.0/16")); ok {
		t.Error("Get of absent prefix should fail")
	}
	if v, ok := tr.Get(MustPrefix("2001:db8::/32")); !ok || v != 3 {
		t.Errorf("Get(v6) = %d, %v", v, ok)
	}
}

func TestTrieLookupLongestMatch(t *testing.T) {
	var tr Trie[string]
	tr.Insert(MustPrefix("10.0.0.0/8"), "eight")
	tr.Insert(MustPrefix("10.1.0.0/16"), "sixteen")
	tr.Insert(MustPrefix("10.1.2.0/24"), "twentyfour")

	cases := []struct {
		addr string
		want string
		pfx  string
	}{
		{"10.1.2.3", "twentyfour", "10.1.2.0/24"},
		{"10.1.9.9", "sixteen", "10.1.0.0/16"},
		{"10.200.0.1", "eight", "10.0.0.0/8"},
	}
	for _, c := range cases {
		pfx, v, ok := tr.Lookup(netip.MustParseAddr(c.addr))
		if !ok || v != c.want || pfx != MustPrefix(c.pfx) {
			t.Errorf("Lookup(%s) = %v,%q,%v; want %q via %s", c.addr, pfx, v, ok, c.want, c.pfx)
		}
	}
	if _, _, ok := tr.Lookup(netip.MustParseAddr("11.0.0.1")); ok {
		t.Error("Lookup outside stored space should miss")
	}
	if _, _, ok := tr.Lookup(netip.MustParseAddr("2001:db8::1")); ok {
		t.Error("v6 lookup with no v6 entries should miss")
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	var tr Trie[string]
	tr.Insert(MustPrefix("0.0.0.0/0"), "default")
	pfx, v, ok := tr.Lookup(netip.MustParseAddr("203.0.113.7"))
	if !ok || v != "default" || pfx != MustPrefix("0.0.0.0/0") {
		t.Errorf("default route lookup = %v,%q,%v", pfx, v, ok)
	}
}

func TestTrieDescendants(t *testing.T) {
	var tr Trie[int]
	for i, s := range []string{"10.0.0.0/8", "10.0.0.0/16", "10.1.0.0/16", "10.1.2.0/24", "11.0.0.0/8"} {
		tr.Insert(MustPrefix(s), i)
	}
	got := tr.Descendants(MustPrefix("10.0.0.0/8"))
	want := []netip.Prefix{MustPrefix("10.0.0.0/16"), MustPrefix("10.1.0.0/16"), MustPrefix("10.1.2.0/24")}
	if len(got) != len(want) {
		t.Fatalf("Descendants = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Descendants[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if d := tr.Descendants(MustPrefix("11.0.0.0/8")); len(d) != 0 {
		t.Errorf("11/8 should have no descendants, got %v", d)
	}
	if d := tr.Descendants(MustPrefix("12.0.0.0/8")); len(d) != 0 {
		t.Errorf("absent prefix should have no descendants, got %v", d)
	}
}

func TestCoveredByMoreSpecifics(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustPrefix("10.0.0.0/23"), 0)
	tr.Insert(MustPrefix("10.0.0.0/24"), 1)
	if tr.CoveredByMoreSpecifics(MustPrefix("10.0.0.0/23")) {
		t.Error("/23 with only one /24 child is not fully covered")
	}
	tr.Insert(MustPrefix("10.0.1.0/24"), 2)
	if !tr.CoveredByMoreSpecifics(MustPrefix("10.0.0.0/23")) {
		t.Error("/23 with both /24 children is fully covered")
	}
	// Deeper, uneven coverage: /22 covered by one /23 and two /24s.
	tr.Insert(MustPrefix("10.0.0.0/22"), 3)
	if tr.CoveredByMoreSpecifics(MustPrefix("10.0.0.0/22")) {
		t.Error("/22 only half covered")
	}
	tr.Insert(MustPrefix("10.0.2.0/23"), 4)
	if !tr.CoveredByMoreSpecifics(MustPrefix("10.0.0.0/22")) {
		t.Error("/22 now fully covered by /23+/24+/24")
	}
	// The intermediate /23 is itself an entry; the /22 query must not be
	// satisfied by the /22's own entry.
	if tr.CoveredByMoreSpecifics(MustPrefix("10.0.0.0/24")) {
		t.Error("/24 host-level entry has no more specifics")
	}
	if tr.CoveredByMoreSpecifics(MustPrefix("99.0.0.0/8")) {
		t.Error("absent prefix cannot be covered")
	}
}

func TestTrieAllCanonicalOrder(t *testing.T) {
	var tr Trie[int]
	in := []string{"11.0.0.0/8", "10.0.0.0/8", "10.0.0.0/16", "2001:db8::/32"}
	for i, s := range in {
		tr.Insert(MustPrefix(s), i)
	}
	all := tr.All()
	if len(all) != 4 {
		t.Fatalf("All returned %d entries", len(all))
	}
	for i := 1; i < len(all); i++ {
		if ComparePrefixes(all[i-1].Prefix, all[i].Prefix) >= 0 {
			t.Errorf("All not in canonical order: %v before %v", all[i-1].Prefix, all[i].Prefix)
		}
	}
}

// TestTrieLookupMatchesNaive cross-checks longest-prefix match against a
// brute-force scan on random inputs.
func TestTrieLookupMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var tr Trie[int]
		var pfxs []netip.Prefix
		for i := 0; i < 60; i++ {
			p := randomV4Prefix(rng, 4)
			pfxs = append(pfxs, p)
			tr.Insert(p, i)
		}
		for q := 0; q < 200; q++ {
			a := rng.Uint32()
			addr := netip.AddrFrom4([4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)})
			bestLen := -1
			for _, p := range pfxs {
				if p.Contains(addr) && p.Bits() > bestLen {
					bestLen = p.Bits()
				}
			}
			pfx, _, ok := tr.Lookup(addr)
			switch {
			case bestLen < 0 && ok:
				t.Fatalf("Lookup(%v) hit %v, naive missed", addr, pfx)
			case bestLen >= 0 && !ok:
				t.Fatalf("Lookup(%v) missed, naive found /%d", addr, bestLen)
			case ok && pfx.Bits() != bestLen:
				t.Fatalf("Lookup(%v) = /%d, naive /%d", addr, pfx.Bits(), bestLen)
			}
		}
	}
}
