package obs

import (
	"context"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// Access-log pipeline metrics. All increments are plain atomic adds on the
// request path.
var (
	mAccessEvents = NewCounter("countryrank_accesslog_events_total",
		"wide events enqueued for the access-log writer")
	mAccessDropped = NewCounter("countryrank_accesslog_dropped_total",
		"wide events dropped because the access-log ring was full")
	mAccessSkipped = NewCounter("countryrank_accesslog_skipped_total",
		"2xx/304 responses skipped by access-log head sampling")
	mAccessWritten = NewCounter("countryrank_accesslog_written_total",
		"wide events emitted by the access-log writer goroutine")
)

// An AccessEvent is one request's wide event: everything an operator needs
// to answer "which requests were slow and why" from a single structured
// record. It is a plain value — copying it into the ring allocates
// nothing (the string fields alias memory the request already owns).
type AccessEvent struct {
	Start   time.Time
	Route   string // route class: "country", "top", "snapshot", "other"
	Target  string // country code or top metric key ("" when n/a)
	N       int32  // top-N size (0 when n/a)
	Status  int32
	Bytes   int64
	Latency time.Duration
	Epoch   int64  // snapshot epoch the response was served from
	Digest  string // snapshot content digest
	ETagHit bool   // If-None-Match revalidation answered 304
	Sampled bool   // promoted to a request trace
	Client  string // client address (RemoteAddr)
}

// accessSlot is one ring cell. seq is the Vyukov-style sequence number:
// equal to the cell's claim position when free, position+1 once the event
// is published, and position+capacity after the drainer recycles it.
type accessSlot struct {
	seq atomic.Uint64
	ev  AccessEvent
}

// AccessLogConfig shapes the emission policy.
type AccessLogConfig struct {
	// Capacity is the ring size, rounded up to a power of two (default 1024).
	Capacity int
	// SampleOK head-samples successful responses: 1 logs every 2xx/304,
	// N logs one in N, 0 logs none. Errors and slow requests are always
	// logged regardless.
	SampleOK int
	// SlowAfter always-logs any request at or above this latency (0
	// disables the slow override).
	SlowAfter time.Duration
}

// An AccessLog is a wide-event request log decoupled from request I/O: the
// handler publishes events into a bounded lock-free MPSC ring (one atomic
// CAS claim plus a struct copy, zero allocations, never blocking), and a
// single writer goroutine drains the ring into a slog.Logger. When the
// writer falls behind and the ring fills, new events are dropped and
// counted — backpressure never reaches the serving path.
type AccessLog struct {
	cfg    AccessLogConfig
	logger *slog.Logger

	slots []accessSlot
	mask  uint64
	tail  atomic.Uint64 // next position a producer claims
	head  uint64        // next position the drainer consumes (drainer-owned)

	okSeq atomic.Uint64 // head-sampling counter over successful responses

	wake    chan struct{}
	stop    chan struct{}
	done    chan struct{}
	started bool
	closeMu sync.Mutex
}

// NewAccessLog builds the log emitting through logger. Call Start to begin
// draining; until then events accumulate in (and overflow) the ring.
func NewAccessLog(logger *slog.Logger, cfg AccessLogConfig) *AccessLog {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = 1024
	}
	// Round up to a power of two so position&mask indexes the ring.
	n := 1
	for n < capacity {
		n <<= 1
	}
	l := &AccessLog{
		cfg:    cfg,
		logger: logger,
		slots:  make([]accessSlot, n),
		mask:   uint64(n - 1),
		wake:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for i := range l.slots {
		l.slots[i].seq.Store(uint64(i))
	}
	return l
}

// Record applies the emission policy and, when the event qualifies,
// publishes it into the ring. It never blocks and never allocates; a full
// ring drops the event and counts the drop.
func (l *AccessLog) Record(ev AccessEvent) {
	if ev.Status < 400 {
		// Head-sample the healthy traffic; errors and slow requests below
		// always pass.
		if l.cfg.SlowAfter <= 0 || ev.Latency < l.cfg.SlowAfter {
			n := l.cfg.SampleOK
			if n <= 0 {
				mAccessSkipped.Inc()
				return
			}
			if n > 1 && l.okSeq.Add(1)%uint64(n) != 0 {
				mAccessSkipped.Inc()
				return
			}
		}
	}
	for {
		pos := l.tail.Load()
		slot := &l.slots[pos&l.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos:
			if !l.tail.CompareAndSwap(pos, pos+1) {
				continue // lost the claim race; retry
			}
			slot.ev = ev
			slot.seq.Store(pos + 1) // publish: drainer may now read ev
			mAccessEvents.Inc()
			select {
			case l.wake <- struct{}{}:
			default:
			}
			return
		case seq < pos:
			// The cell still holds an unconsumed event a full lap behind:
			// the ring is full. Drop rather than block the handler.
			mAccessDropped.Inc()
			return
		default:
			// seq > pos: another producer advanced tail past our stale
			// read; reload and retry.
		}
	}
}

// Start launches the writer goroutine. Exposed separately from the
// constructor so tests can measure the producer path with the ring
// quiescent.
func (l *AccessLog) Start() *AccessLog {
	l.closeMu.Lock()
	defer l.closeMu.Unlock()
	if l.started {
		return l
	}
	l.started = true
	go l.drainLoop()
	return l
}

// Close drains any queued events, stops the writer goroutine, and waits
// for it to exit. Safe to call once after Start; a never-started log just
// flushes inline.
func (l *AccessLog) Close() {
	l.closeMu.Lock()
	defer l.closeMu.Unlock()
	if !l.started {
		l.drain()
		return
	}
	l.started = false
	close(l.stop)
	<-l.done
}

func (l *AccessLog) drainLoop() {
	defer close(l.done)
	for {
		l.drain()
		select {
		case <-l.wake:
		case <-l.stop:
			l.drain() // final flush
			return
		}
	}
}

// drain consumes every published event currently in the ring.
func (l *AccessLog) drain() {
	for {
		slot := &l.slots[l.head&l.mask]
		if slot.seq.Load() != l.head+1 {
			return // next cell not yet published
		}
		ev := slot.ev
		slot.ev = AccessEvent{} // drop string references so the GC can reclaim
		slot.seq.Store(l.head + l.mask + 1)
		l.head++
		l.emit(ev)
	}
}

func (l *AccessLog) emit(ev AccessEvent) {
	etag := "miss"
	if ev.ETagHit {
		etag = "hit"
	}
	l.logger.LogAttrs(context.Background(), slog.LevelInfo, "request",
		slog.Time("start", ev.Start),
		slog.String("route", ev.Route),
		slog.String("target", ev.Target),
		slog.Int("n", int(ev.N)),
		slog.Int("status", int(ev.Status)),
		slog.Int64("bytes", ev.Bytes),
		slog.String("etag", etag),
		slog.Int64("epoch", ev.Epoch),
		slog.String("digest", ev.Digest),
		slog.Duration("latency", ev.Latency),
		slog.String("client", ev.Client),
		slog.Bool("sampled", ev.Sampled),
	)
	mAccessWritten.Inc()
}
