package obs

import (
	"context"
	"log/slog"
	"runtime"
	"sync"
	"testing"
	"time"
)

// captureHandler retains slog records for assertions.
type captureHandler struct {
	mu      sync.Mutex
	records []map[string]any
}

func (c *captureHandler) Enabled(context.Context, slog.Level) bool { return true }
func (c *captureHandler) WithAttrs([]slog.Attr) slog.Handler       { return c }
func (c *captureHandler) WithGroup(string) slog.Handler            { return c }
func (c *captureHandler) Handle(_ context.Context, r slog.Record) error {
	m := map[string]any{}
	r.Attrs(func(a slog.Attr) bool { m[a.Key] = a.Value.Any(); return true })
	c.mu.Lock()
	c.records = append(c.records, m)
	c.mu.Unlock()
	return nil
}

func (c *captureHandler) targets(t *testing.T) []string {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, r := range c.records {
		out = append(out, r["target"].(string))
	}
	return out
}

// TestAccessLogRingOrderAndDrop fills a small un-started ring past capacity:
// the first `capacity` events must survive in arrival order and the overflow
// must be dropped (counted), never blocking the producer.
func TestAccessLogRingOrderAndDrop(t *testing.T) {
	col := &captureHandler{}
	l := NewAccessLog(slog.New(col), AccessLogConfig{Capacity: 4, SampleOK: 1})
	dropped0 := mAccessDropped.Value()

	for _, target := range []string{"a", "b", "c", "d", "e", "f"} {
		l.Record(AccessEvent{Status: 200, Target: target})
	}
	l.Close() // never started: flushes inline

	got := col.targets(t)
	if len(got) != 4 || got[0] != "a" || got[1] != "b" || got[2] != "c" || got[3] != "d" {
		t.Errorf("ring delivered %v, want [a b c d] in arrival order", got)
	}
	if d := mAccessDropped.Value() - dropped0; d != 2 {
		t.Errorf("dropped %d events, want 2", d)
	}
}

// TestAccessLogRingRecycles drives several laps through a started ring and
// checks nothing is lost when the drainer keeps up.
func TestAccessLogRingRecycles(t *testing.T) {
	col := &captureHandler{}
	l := NewAccessLog(slog.New(col), AccessLogConfig{Capacity: 8, SampleOK: 1}).Start()
	const n = 100
	for i := 0; i < n; i++ {
		l.Record(AccessEvent{Status: 500}) // always-log path
		if i%8 == 7 {
			time.Sleep(time.Millisecond) // let the drainer lap
		}
	}
	l.Close()
	col.mu.Lock()
	defer col.mu.Unlock()
	if len(col.records) == 0 || len(col.records) > n {
		t.Fatalf("drained %d records from %d events", len(col.records), n)
	}
}

// TestAccessLogHeadSampling checks the emission policy: 1-in-N for healthy
// responses, errors and slow requests always logged.
func TestAccessLogHeadSampling(t *testing.T) {
	col := &captureHandler{}
	l := NewAccessLog(slog.New(col), AccessLogConfig{SampleOK: 3, SlowAfter: 10 * time.Millisecond})

	for i := 0; i < 9; i++ {
		l.Record(AccessEvent{Status: 200, Target: "ok"})
	}
	l.Record(AccessEvent{Status: 500, Target: "err"})
	l.Record(AccessEvent{Status: 404, Target: "err"})
	l.Record(AccessEvent{Status: 200, Target: "slow", Latency: 20 * time.Millisecond})
	l.Close()

	okN, errN, slowN := 0, 0, 0
	for _, target := range col.targets(t) {
		switch target {
		case "ok":
			okN++
		case "err":
			errN++
		case "slow":
			slowN++
		}
	}
	if okN != 3 {
		t.Errorf("1-in-3 sampling kept %d of 9 OK events, want 3", okN)
	}
	if errN != 2 {
		t.Errorf("kept %d of 2 error events, want both", errN)
	}
	if slowN != 1 {
		t.Errorf("kept %d slow events, want 1 (SlowAfter override)", slowN)
	}

	// SampleOK 0 logs no healthy traffic at all.
	col2 := &captureHandler{}
	l2 := NewAccessLog(slog.New(col2), AccessLogConfig{SampleOK: 0})
	l2.Record(AccessEvent{Status: 200})
	l2.Record(AccessEvent{Status: 503, Target: "err"})
	l2.Close()
	if got := col2.targets(t); len(got) != 1 || got[0] != "err" {
		t.Errorf("SampleOK=0 emitted %v, want only the error", got)
	}
}

// TestAccessLogRecordZeroAlloc pins the producer path at zero allocations,
// including the drop path once the ring is full.
func TestAccessLogRecordZeroAlloc(t *testing.T) {
	l := NewAccessLog(slog.New(slog.NewJSONHandler(nopSyncWriter{}, nil)),
		AccessLogConfig{Capacity: 16, SampleOK: 1})
	ev := AccessEvent{Status: 200, Route: "country", Target: "AU", Bytes: 128}
	if allocs := testing.AllocsPerRun(500, func() { l.Record(ev) }); allocs != 0 {
		t.Errorf("Record: %.1f allocs/op, want 0", allocs)
	}
}

type nopSyncWriter struct{}

func (nopSyncWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestAccessLogDrainerStops checks Close reaps the writer goroutine.
func TestAccessLogDrainerStops(t *testing.T) {
	before := runtime.NumGoroutine()
	l := NewAccessLog(slog.New(slog.NewJSONHandler(nopSyncWriter{}, nil)),
		AccessLogConfig{SampleOK: 1}).Start()
	for i := 0; i < 50; i++ {
		l.Record(AccessEvent{Status: 200})
	}
	l.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines %d > %d before Start: drainer leaked", n, before)
	}
}
