package obs

import (
	"sort"
	"testing"
	"time"
)

// TestExpBuckets pins the 1-2.5-5 ladder: strictly increasing, spanning the
// requested range, derived from integer nanoseconds so the bucket edges are
// exact decimals.
func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(10*time.Microsecond, time.Second)
	want := []float64{
		1e-05, 2.5e-05, 5e-05, 0.0001, 0.00025, 0.0005,
		0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1,
	}
	if len(got) != len(want) {
		t.Fatalf("ExpBuckets = %v (%d buckets), want %v", got, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("buckets not ascending: %v", got)
	}
}

func TestExpBucketsRanges(t *testing.T) {
	// A sub-decade range still produces at least one bucket reaching max.
	got := ExpBuckets(30*time.Millisecond, 40*time.Millisecond)
	if len(got) == 0 || got[len(got)-1] < 0.04 {
		t.Fatalf("ExpBuckets(30ms, 40ms) = %v", got)
	}
	// min == max collapses to a single bucket.
	got = ExpBuckets(time.Millisecond, time.Millisecond)
	if len(got) != 1 || got[0] != 0.001 {
		t.Fatalf("ExpBuckets(1ms, 1ms) = %v", got)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("ExpBuckets with max < min should panic")
		}
	}()
	ExpBuckets(time.Second, time.Millisecond)
}

// TestServingBuckets guards the serving-tuned default schedule: it must
// resolve microsecond-scale in-process latencies (first bucket 10µs) while
// still covering slow outliers up to a second.
func TestServingBuckets(t *testing.T) {
	if ServingBuckets[0] != 1e-05 {
		t.Errorf("first serving bucket = %v, want 10µs", ServingBuckets[0])
	}
	if last := ServingBuckets[len(ServingBuckets)-1]; last != 1 {
		t.Errorf("last serving bucket = %v, want 1s", last)
	}
	// DurationBuckets (the pipeline default) must be untouched by the
	// serving schedule: existing histograms keep their golden exposition.
	wantDefault := []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
	if len(DurationBuckets) != len(wantDefault) {
		t.Fatalf("DurationBuckets changed: %v", DurationBuckets)
	}
	for i := range wantDefault {
		if DurationBuckets[i] != wantDefault[i] {
			t.Fatalf("DurationBuckets[%d] = %v, want %v", i, DurationBuckets[i], wantDefault[i])
		}
	}
}
