package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// This file exports a Trace in the Chrome trace-event JSON format, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing. Spans become complete
// ("X") events; span events become thread-scoped instant ("i") events. The
// single-threaded pipeline spine lands on track 0, and fan-out children
// whose lifetimes partially overlap are flattened onto synthetic extra
// tracks so viewers never see two half-overlapping slices on one row.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTraceFile is the top-level JSON object Perfetto expects.
type chromeTraceFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// exportSpan is a lock-free copy of one span taken under the trace mutex.
type exportSpan struct {
	id, parent uint64
	name, unit string
	start, end time.Time
	ended      bool
	items      int64
	attrs      []SpanAttr
	events     []SpanEvent
}

// snapshotSpans flattens the trace into copies safe to format outside the
// lock. Open spans get "now" as a provisional end.
func (t *Trace) snapshotSpans(now time.Time) []exportSpan {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []exportSpan
	var walk func(s *Span)
	walk = func(s *Span) {
		e := exportSpan{
			id:    s.id,
			name:  s.Name,
			unit:  s.unit,
			start: s.start,
			end:   now,
			ended: s.ended,
			items: s.items.Load(),
		}
		if s.parent != nil {
			e.parent = s.parent.id
		}
		if s.ended {
			e.end = s.start.Add(s.dur)
		}
		if len(s.attrs) > 0 {
			e.attrs = append([]SpanAttr(nil), s.attrs...)
		}
		if len(s.events) > 0 {
			e.events = append([]SpanEvent(nil), s.events...)
		}
		out = append(out, e)
		for _, c := range s.children {
			walk(c)
		}
	}
	for _, r := range t.roots {
		walk(r)
	}
	return out
}

// assignTracks gives each span a track (tid) such that any two spans on the
// same track are either disjoint in time or strictly nested — the invariant
// trace viewers need to stack slices correctly. The greedy first-fit keeps
// the sequential pipeline spine on track 0 and spills partially-overlapping
// fan-out children onto fresh tracks.
func assignTracks(spans []exportSpan) []int {
	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := spans[order[a]], spans[order[b]]
		if !sa.start.Equal(sb.start) {
			return sa.start.Before(sb.start)
		}
		return sa.end.After(sb.end) // longer first, so containers precede content
	})
	tids := make([]int, len(spans))
	var tracks [][]time.Time // per track: stack of open interval ends
	for _, i := range order {
		s := spans[i]
		placed := false
		for ti := range tracks {
			st := tracks[ti]
			for len(st) > 0 && !st[len(st)-1].After(s.start) {
				st = st[:len(st)-1]
			}
			if len(st) == 0 || !s.end.After(st[len(st)-1]) {
				tracks[ti] = append(st, s.end)
				tids[i] = ti
				placed = true
				break
			}
			tracks[ti] = st
		}
		if !placed {
			tracks = append(tracks, []time.Time{s.end})
			tids[i] = len(tracks) - 1
		}
	}
	return tids
}

// WriteChromeTrace renders the trace (including still-open spans) as Chrome
// trace-event JSON. The time origin is the earliest recorded span start;
// timestamps and durations are microseconds, with durations clamped to at
// least 1µs so zero-length spans stay visible.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	now := time.Now()
	spans := t.snapshotSpans(now)
	file := chromeTraceFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	if len(spans) > 0 {
		epoch := spans[0].start
		for _, s := range spans {
			if s.start.Before(epoch) {
				epoch = s.start
			}
		}
		tids := assignTracks(spans)
		maxTID := 0
		for _, tid := range tids {
			if tid > maxTID {
				maxTID = tid
			}
		}
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "process_name", Phase: "M", PID: 1,
			Args: map[string]any{"name": "countryrank"},
		})
		for tid := 0; tid <= maxTID; tid++ {
			label := "pipeline"
			if tid > 0 {
				label = "fan-out"
			}
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: "thread_name", Phase: "M", PID: 1, TID: tid,
				Args: map[string]any{"name": label},
			})
		}
		for i, s := range spans {
			args := map[string]any{"span_id": s.id}
			if s.parent != 0 {
				args["parent_id"] = s.parent
			}
			if s.items > 0 {
				args[nonEmpty(s.unit, "items")] = s.items
				if d := s.end.Sub(s.start); d > 0 {
					args["per_second"] = float64(s.items) / d.Seconds()
				}
			}
			if !s.ended {
				args["open"] = true
			}
			for _, a := range s.attrs {
				args[a.Key] = a.Value
			}
			dur := s.end.Sub(s.start).Microseconds()
			if dur < 1 {
				dur = 1
			}
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: s.name, Phase: "X",
				TS: s.start.Sub(epoch).Microseconds(), Dur: dur,
				PID: 1, TID: tids[i], Args: args,
			})
			for _, ev := range s.events {
				file.TraceEvents = append(file.TraceEvents, chromeEvent{
					Name: ev.Name, Phase: "i",
					TS:  ev.At.Sub(epoch).Microseconds(),
					PID: 1, TID: tids[i], Scope: "t",
					Args: map[string]any{"span_id": s.id},
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}
