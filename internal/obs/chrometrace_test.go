package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// decodeTrace unmarshals an exported trace for assertions.
func decodeTrace(t *testing.T, raw string) chromeTraceFile {
	t.Helper()
	var file chromeTraceFile
	if err := json.Unmarshal([]byte(raw), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, raw)
	}
	return file
}

// TestChromeTraceExport checks the exported event stream: complete events
// for every span (with IDs, parents, items, and attrs in args), instant
// events for span events, and metadata naming the process.
func TestChromeTraceExport(t *testing.T) {
	tr := &Trace{}
	root := tr.Start("pipeline")
	root.SetAttr("seed", 7)
	child := tr.Start("sanitize")
	child.AddItems(100, "records")
	child.Event("halfway")
	time.Sleep(2 * time.Millisecond)
	child.End()
	root.End()

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	file := decodeTrace(t, b.String())
	if file.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}

	byName := map[string][]chromeEvent{}
	var complete, instant, meta int
	for _, ev := range file.TraceEvents {
		byName[ev.Name] = append(byName[ev.Name], ev)
		switch ev.Phase {
		case "X":
			complete++
			if ev.Dur < 1 {
				t.Errorf("complete event %q has dur %d < 1", ev.Name, ev.Dur)
			}
		case "i":
			instant++
			if ev.Scope != "t" {
				t.Errorf("instant event %q scope = %q, want t", ev.Name, ev.Scope)
			}
		case "M":
			meta++
		}
	}
	if complete != 2 {
		t.Errorf("complete events = %d, want 2", complete)
	}
	if instant != 1 {
		t.Errorf("instant events = %d, want 1", instant)
	}
	if meta == 0 {
		t.Error("no metadata events")
	}

	rootEv := byName["pipeline"][0]
	if rootEv.Args["seed"] != float64(7) {
		t.Errorf("root attr seed = %v", rootEv.Args["seed"])
	}
	if rootEv.Args["span_id"] == nil {
		t.Error("root missing span_id")
	}
	sanEv := byName["sanitize"][0]
	if sanEv.Args["parent_id"] != rootEv.Args["span_id"] {
		t.Errorf("sanitize parent_id = %v, want %v", sanEv.Args["parent_id"], rootEv.Args["span_id"])
	}
	if sanEv.Args["records"] != float64(100) {
		t.Errorf("sanitize items arg = %v", sanEv.Args["records"])
	}
	if _, ok := sanEv.Args["per_second"]; !ok {
		t.Error("sanitize missing per_second arg")
	}
	// Nested sequential spans share the main track.
	if rootEv.TID != sanEv.TID {
		t.Errorf("nested spans on different tracks: %d vs %d", rootEv.TID, sanEv.TID)
	}
}

// TestChromeTraceFanOutTracks checks the track-flattening invariant: two
// partially-overlapping fan-out children may not share a track, while the
// containing parent stays on the spine.
func TestChromeTraceFanOutTracks(t *testing.T) {
	tr := &Trace{}
	parent := tr.Start("fanout")
	a := parent.Child("worker-a")
	time.Sleep(time.Millisecond)
	b := parent.Child("worker-b") // overlaps a: must land on another track
	time.Sleep(time.Millisecond)
	a.End()
	time.Sleep(time.Millisecond)
	b.End()
	parent.End()

	var buf strings.Builder
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	file := decodeTrace(t, buf.String())
	tids := map[string]int{}
	spans := map[string][2]int64{}
	for _, ev := range file.TraceEvents {
		if ev.Phase == "X" {
			tids[ev.Name] = ev.TID
			spans[ev.Name] = [2]int64{ev.TS, ev.TS + ev.Dur}
		}
	}
	if tids["worker-a"] == tids["worker-b"] {
		t.Errorf("overlapping fan-out children share track %d", tids["worker-a"])
	}
	// Whichever child shares the parent's track must be nested inside it.
	for _, name := range []string{"worker-a", "worker-b"} {
		if tids[name] == tids["fanout"] {
			p, c := spans["fanout"], spans[name]
			if c[0] < p[0] || c[1] > p[1] {
				t.Errorf("%s shares parent track but is not nested: %v outside %v", name, c, p)
			}
		}
	}
}

// TestChromeTraceOpenSpan checks that a still-open span exports with a
// provisional duration and an open marker instead of being dropped.
func TestChromeTraceOpenSpan(t *testing.T) {
	tr := &Trace{}
	s := tr.Start("still-running")
	time.Sleep(time.Millisecond)
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	s.End()
	file := decodeTrace(t, b.String())
	found := false
	for _, ev := range file.TraceEvents {
		if ev.Phase == "X" && ev.Name == "still-running" {
			found = true
			if ev.Args["open"] != true {
				t.Error("open span not marked open")
			}
			if ev.Dur < 1 {
				t.Errorf("open span dur = %d", ev.Dur)
			}
		}
	}
	if !found {
		t.Fatal("open span missing from export")
	}
}

// TestChromeTraceEmpty checks an empty trace still renders a loadable file.
func TestChromeTraceEmpty(t *testing.T) {
	tr := &Trace{}
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	file := decodeTrace(t, b.String())
	if file.TraceEvents == nil {
		t.Error("traceEvents must be an array, not null")
	}
}

// TestSpanAttrsEvents covers the span annotation API directly.
func TestSpanAttrsEvents(t *testing.T) {
	tr := &Trace{}
	s := tr.Start("s")
	s.SetAttr("k", "v1")
	s.SetAttr("k", "v2") // replace, not append
	s.SetAttr("n", 3)
	s.Event("e1")
	s.End()
	attrs := s.Attrs()
	if len(attrs) != 2 {
		t.Fatalf("attrs = %v, want 2 entries", attrs)
	}
	if attrs[0].Key != "k" || attrs[0].Value != "v2" {
		t.Errorf("attr k = %v", attrs[0])
	}
	evs := s.Events()
	if len(evs) != 1 || evs[0].Name != "e1" || evs[0].At.IsZero() {
		t.Errorf("events = %v", evs)
	}
	if s.ID() == 0 {
		t.Error("span ID unassigned")
	}
	if tr.Start("second").ID() == s.ID() {
		t.Error("span IDs not unique")
	}
}
