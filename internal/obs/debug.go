package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewDebugMux builds the debug endpoint set every cmd shares:
//
//	/metrics         Prometheus text exposition of the Default registry
//	/healthz         liveness probe ("ok")
//	/debug/vars      expvar JSON (includes the countryrank metric bridge)
//	/debug/pprof     the standard pprof profile index
//	/debug/trace     Chrome trace-event JSON snapshot of the DefaultTrace
//	/debug/timeline  ring-buffer metric timeline JSON (empty series when
//	                 no timeline sampler is installed)
func NewDebugMux() *http.ServeMux {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = Default.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = DefaultTrace.WriteChromeTrace(w)
	})
	mux.HandleFunc("/debug/timeline", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		if tl := GetDefaultTimeline(); tl != nil {
			_ = enc.Encode(tl.Snapshot())
			return
		}
		_ = enc.Encode(TimelineData{Series: map[string][]float64{}, OffsetsMS: []int64{}})
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts the debug server on addr (host:port; port 0 picks a
// free one) and returns the bound address plus a closer that shuts the
// server down and releases its listener. Earlier revisions leaked the
// http.Server for the life of the process; callers (CmdFlags.Done) now
// close it once the linger window ends.
func ServeDebug(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewDebugMux(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
