package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewDebugMux builds the debug endpoint set every cmd shares:
//
//	/metrics      Prometheus text exposition of the Default registry
//	/healthz      liveness probe ("ok")
//	/debug/vars   expvar JSON (includes the countryrank metric bridge)
//	/debug/pprof  the standard pprof profile index
func NewDebugMux() *http.ServeMux {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = Default.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts the debug server on addr (host:port; port 0 picks a free
// one) and returns the bound address. The server runs on a background
// goroutine for the life of the process.
func ServeDebug(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewDebugMux(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
