package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// defaultReady is the process-wide readiness probe behind /readyz, distinct
// from /healthz liveness: a live daemon can be not-ready (e.g. serving a
// snapshot stale beyond its threshold) and should be rotated out of a load
// balancer without being restarted.
var defaultReady atomic.Pointer[func() (detail string, ready bool)]

// SetDefaultReady installs (or, with nil, clears) the readiness probe
// /readyz consults. With no probe installed /readyz answers ok, matching
// /healthz's permissive default.
func SetDefaultReady(fn func() (string, bool)) {
	if fn == nil {
		defaultReady.Store(nil)
		return
	}
	defaultReady.Store(&fn)
}

// GetDefaultReady returns the installed readiness probe, or nil.
func GetDefaultReady() func() (string, bool) {
	if p := defaultReady.Load(); p != nil {
		return *p
	}
	return nil
}

// defaultHistory feeds /debug/history: a provider returning an
// epoch-aligned series document (rankd installs its snapshot store's
// HistoryData). Kept as an opaque any so obs does not depend on the
// snapshot package.
var defaultHistory atomic.Pointer[func() any]

// SetDefaultHistory installs (or, with nil, clears) the /debug/history
// provider.
func SetDefaultHistory(fn func() any) {
	if fn == nil {
		defaultHistory.Store(nil)
		return
	}
	defaultHistory.Store(&fn)
}

// GetDefaultHistory returns the installed history provider, or nil.
func GetDefaultHistory() func() any {
	if p := defaultHistory.Load(); p != nil {
		return *p
	}
	return nil
}

// NewDebugMux builds the debug endpoint set every cmd shares:
//
//	/metrics         Prometheus text exposition of the Default registry
//	/healthz         liveness probe: "ok", or 503 "degraded: <reason>" while
//	                 the installed SLO engine's fast-burn threshold trips
//	/readyz          readiness probe: consults the installed readiness
//	                 function (SetDefaultReady); 503 "not ready: <detail>"
//	                 when it reports false, ok otherwise
//	/debug/vars      expvar JSON (includes the countryrank metric bridge)
//	/debug/pprof     the standard pprof profile index
//	/debug/trace     Chrome trace-event JSON snapshot of the DefaultTrace
//	/debug/timeline  ring-buffer metric timeline JSON (empty series when
//	                 no timeline sampler is installed)
//	/debug/history   epoch-aligned rank-drift series from the installed
//	                 history provider (SetDefaultHistory; empty when none)
//	/debug/requests  sampled request traces: active, recent, and slowest-N
//	                 per route (empty when no tracker is installed)
//	/debug/slo       objectives, window counts, and burn rates (disabled
//	                 marker when no SLO engine is installed)
func NewDebugMux() *http.ServeMux {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		RefreshRuntimeMetrics()
		if s := GetDefaultSLO(); s != nil {
			s.refreshMetrics()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = Default.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s := GetDefaultSLO(); s != nil {
			if reason, degraded := s.Degraded(); degraded {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(w, "degraded: "+reason)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if probe := GetDefaultReady(); probe != nil {
			if detail, ready := probe(); !ready {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(w, "not ready: "+detail)
				return
			} else if detail != "ok" && detail != "" {
				fmt.Fprintln(w, "ok: "+detail)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/requests", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		if t := GetDefaultRequests(); t != nil {
			_ = enc.Encode(t.Snapshot())
			return
		}
		_ = enc.Encode(RequestsData{Active: []ReqSpanData{}, Routes: map[string]RouteRequests{}})
	})
	mux.HandleFunc("/debug/slo", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		if s := GetDefaultSLO(); s != nil {
			_ = enc.Encode(s.Status())
			return
		}
		_ = enc.Encode(map[string]bool{"enabled": false})
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = DefaultTrace.WriteChromeTrace(w)
	})
	mux.HandleFunc("/debug/history", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		if h := GetDefaultHistory(); h != nil {
			_ = enc.Encode(h())
			return
		}
		_ = enc.Encode(map[string]any{"epochs": []int64{}, "series": map[string][]float64{}})
	})
	mux.HandleFunc("/debug/timeline", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		if tl := GetDefaultTimeline(); tl != nil {
			_ = enc.Encode(tl.Snapshot())
			return
		}
		_ = enc.Encode(TimelineData{Series: map[string][]float64{}, OffsetsMS: []int64{}})
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts the debug server on addr (host:port; port 0 picks a
// free one) and returns the bound address plus a closer that shuts the
// server down and releases its listener. Earlier revisions leaked the
// http.Server for the life of the process; callers (CmdFlags.Done) now
// close it once the linger window ends.
func ServeDebug(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewDebugMux(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
