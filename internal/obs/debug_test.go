package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestReadyzProbe pins the /readyz contract: permissive with no probe
// installed, 503 "not ready" when the probe reports false, detail carried
// either way, and liveness (/healthz) unaffected — readiness and liveness
// are separate questions (rotate out of the LB vs restart the process).
func TestReadyzProbe(t *testing.T) {
	mux := NewDebugMux()
	hit := func(path string) (int, string) {
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		return w.Code, w.Body.String()
	}

	SetDefaultReady(nil)
	t.Cleanup(func() { SetDefaultReady(nil) })
	if code, body := hit("/readyz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("no probe: /readyz = %d %q, want 200 ok", code, body)
	}

	state := "no snapshot published"
	ready := false
	SetDefaultReady(func() (string, bool) { return state, ready })
	if code, body := hit("/readyz"); code != 503 || !strings.Contains(body, "not ready: no snapshot published") {
		t.Fatalf("unready probe: /readyz = %d %q", code, body)
	}
	// Unreadiness must not flip liveness.
	if code, _ := hit("/healthz"); code != 200 {
		t.Fatalf("/healthz followed /readyz down: %d", code)
	}

	state, ready = "serving warm-loaded snapshot (rebuild pending)", true
	if code, body := hit("/readyz"); code != 200 || !strings.Contains(body, "warm-loaded") {
		t.Fatalf("ready-with-detail probe: /readyz = %d %q", code, body)
	}

	state, ready = "ok", true
	if code, body := hit("/readyz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("plain ready probe: /readyz = %d %q", code, body)
	}
}

// TestDebugHistory pins the /debug/history installation point: an empty
// document with no provider installed, the provider's value (JSON-encoded)
// once one is set.
func TestDebugHistory(t *testing.T) {
	mux := NewDebugMux()
	hit := func(path string) (int, string) {
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		return w.Code, w.Body.String()
	}

	SetDefaultHistory(nil)
	t.Cleanup(func() { SetDefaultHistory(nil) })
	if code, body := hit("/debug/history"); code != 200 || !strings.Contains(body, `"epochs":[]`) {
		t.Fatalf("no provider: /debug/history = %d %q, want empty document", code, body)
	}

	SetDefaultHistory(func() any {
		return map[string]any{"epochs": []int64{7, 8}, "series": map[string][]float64{"churn_cci": {0, 1.5}}}
	})
	code, body := hit("/debug/history")
	if code != 200 {
		t.Fatalf("/debug/history = %d", code)
	}
	for _, frag := range []string{`"epochs":[7,8]`, `"churn_cci":[0,1.5]`} {
		if !strings.Contains(body, frag) {
			t.Errorf("/debug/history body %q missing %q", body, frag)
		}
	}
}
