package obs

import (
	"flag"
	"log/slog"
	"os"
	"time"
)

// CmdFlags is the observability flag set every cmd shares: structured-log
// verbosity, the opt-in debug server, and a linger window that keeps the
// process (and its /metrics endpoint) alive after the work finishes so CI
// smoke tests and humans can scrape a completed run.
type CmdFlags struct {
	cmd       string
	Verbosity *int
	DebugAddr *string
	Linger    *time.Duration
}

// Flags registers -v, -debug-addr, and -debug-linger on the default flag
// set. Call before flag.Parse, then Init after it.
func Flags(cmd string) *CmdFlags {
	return &CmdFlags{
		cmd:       cmd,
		Verbosity: flag.Int("v", 0, "log verbosity: 0 info, 1 debug stage logs"),
		DebugAddr: flag.String("debug-addr", "", "serve /metrics, /healthz, expvar and pprof on this host:port"),
		Linger:    flag.Duration("debug-linger", 0, "keep the debug server up this long after finishing (requires -debug-addr)"),
	}
}

// Init installs the slog default logger at the requested verbosity and, when
// -debug-addr was given, starts the debug server. Call right after
// flag.Parse.
func (f *CmdFlags) Init() {
	level := slog.LevelInfo
	if *f.Verbosity >= 1 {
		level = slog.LevelDebug
	}
	h := slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	slog.SetDefault(slog.New(h).With("cmd", f.cmd))
	if *f.DebugAddr != "" {
		addr, err := ServeDebug(*f.DebugAddr)
		if err != nil {
			slog.Error("debug server failed", "err", err)
			os.Exit(1)
		}
		slog.Info("debug server listening", "addr", addr)
	}
}

// Done blocks for the -debug-linger window (a no-op without -debug-addr or
// with a zero linger). Call it at the end of main, after the run's output.
func (f *CmdFlags) Done() {
	if *f.DebugAddr == "" || *f.Linger <= 0 {
		return
	}
	slog.Info("lingering for scrapes", "for", *f.Linger)
	time.Sleep(*f.Linger)
}
