package obs

import (
	"context"
	"flag"
	"log/slog"
	"os"
	"os/signal"
	"time"
)

// CmdFlags is the observability flag set every cmd shares: structured-log
// verbosity, the opt-in debug server, a linger window that keeps the
// process (and its /metrics endpoint) alive after the work finishes, and
// the run's export artifacts — a Chrome trace (-trace-out), a provenance
// manifest (-manifest), and a live metric timeline (-timeline).
type CmdFlags struct {
	cmd         string
	fs          *flag.FlagSet
	Verbosity   *int
	DebugAddr   *string
	Linger      *time.Duration
	TraceOut    *string
	ManifestOut *string
	SampleEvery *time.Duration

	// Manifest is the run's provenance record, created by Init. Cmds
	// enrich it (Seed, AddInput, SetCoverage, SetDrops) as the run learns
	// its inputs; Done finalizes and writes it when -manifest was given.
	Manifest *RunManifest

	start     time.Time
	boundAddr string
	shutdown  func()
	timeline  *Timeline
	// testInterrupt substitutes for SIGINT delivery in tests; when nil,
	// Done listens for a real interrupt during the linger window.
	testInterrupt <-chan struct{}
}

// Flags registers the shared observability flags on the default flag set.
// Call before flag.Parse, then Init after it.
func Flags(cmd string) *CmdFlags { return FlagsOn(flag.CommandLine, cmd) }

// FlagsOn registers the shared observability flags on fs (the testable
// entry point; Flags uses the process default set).
func FlagsOn(fs *flag.FlagSet, cmd string) *CmdFlags {
	return &CmdFlags{
		cmd:       cmd,
		fs:        fs,
		Verbosity: fs.Int("v", 0, "log verbosity: 0 info, 1 debug stage logs"),
		DebugAddr: fs.String("debug-addr", "", "serve /metrics, /healthz, expvar, pprof, /debug/trace and /debug/timeline on this host:port"),
		Linger:    fs.Duration("debug-linger", 0, "keep the debug server up this long after finishing (requires -debug-addr; SIGINT cuts it short)"),
		TraceOut:  fs.String("trace-out", "", "write the run's stage spans as Chrome trace-event JSON (Perfetto-loadable) to this path"),
		ManifestOut: fs.String("manifest", "",
			"write a run provenance manifest (flags, seeds, input digests, coverage, drops, metrics, span tree) as JSON to this path"),
		SampleEvery: fs.Duration("timeline", 0,
			"sample all registry metrics at this interval into the /debug/timeline ring buffer (0 disables)"),
	}
}

// Init installs the slog default logger at the requested verbosity, starts
// the provenance manifest, and, when -debug-addr was given, the debug
// server (plus the -timeline sampler when enabled). Call right after
// flag.Parse.
func (f *CmdFlags) Init() {
	f.start = time.Now()
	level := slog.LevelInfo
	if *f.Verbosity >= 1 {
		level = slog.LevelDebug
	}
	h := slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	slog.SetDefault(slog.New(h).With("cmd", f.cmd))
	EnableRuntimeMetrics()
	f.Manifest = NewRunManifest(f.cmd, f.fs)
	if *f.DebugAddr != "" {
		addr, shutdown, err := ServeDebug(*f.DebugAddr)
		if err != nil {
			slog.Error("debug server failed", "err", err)
			os.Exit(1)
		}
		f.boundAddr = addr
		f.shutdown = shutdown
		slog.Info("debug server listening", "addr", addr)
	}
	if *f.SampleEvery > 0 {
		f.timeline = NewTimeline(Default, *f.SampleEvery, 600)
		f.timeline.Start()
		SetDefaultTimeline(f.timeline)
	}
}

// Done finishes the run's observability: it stops the timeline sampler,
// writes the -trace-out and -manifest artifacts, blocks for the
// -debug-linger window (a no-op without -debug-addr or with a zero linger;
// SIGINT cuts the wait short), and finally shuts the debug server down.
// Call it at the end of main, after the run's output.
func (f *CmdFlags) Done() {
	if f.timeline != nil {
		f.timeline.Stop()
		if slog.Default().Enabled(context.Background(), slog.LevelDebug) {
			os.Stderr.WriteString("metric timeline:\n" + f.timeline.Sparkline())
		}
	}
	if *f.TraceOut != "" {
		if err := writeTraceFile(*f.TraceOut); err != nil {
			slog.Error("trace export failed", "path", *f.TraceOut, "err", err)
		} else {
			slog.Info("trace written", "path", *f.TraceOut)
		}
	}
	if *f.ManifestOut != "" && f.Manifest != nil {
		f.Manifest.Finish(time.Since(f.start), Default.Snapshot(), DefaultTrace.Render())
		if err := f.Manifest.WriteFile(*f.ManifestOut); err != nil {
			slog.Error("manifest export failed", "path", *f.ManifestOut, "err", err)
		} else {
			slog.Info("manifest written", "path", *f.ManifestOut)
		}
	}
	f.linger()
	if f.shutdown != nil {
		f.shutdown()
		f.shutdown = nil
	}
}

// linger blocks for the -debug-linger window, returning early on SIGINT so
// an operator (or CI harness) can release a lingering process without
// waiting out the full window.
func (f *CmdFlags) linger() {
	if *f.DebugAddr == "" || *f.Linger <= 0 {
		return
	}
	interrupted := f.testInterrupt
	if interrupted == nil {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		interrupted = ctx.Done()
	}
	slog.Info("lingering for scrapes", "for", *f.Linger)
	select {
	case <-time.After(*f.Linger):
	case <-interrupted:
		slog.Info("linger cut short by interrupt")
	}
}

// writeTraceFile snapshots the DefaultTrace as Chrome trace-event JSON.
func writeTraceFile(path string) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := DefaultTrace.WriteChromeTrace(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}
