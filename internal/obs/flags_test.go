package obs

import (
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// newTestFlags builds a CmdFlags on a private FlagSet so tests never touch
// the process-wide flag.CommandLine.
func newTestFlags(t *testing.T, args ...string) *CmdFlags {
	t.Helper()
	fs := flag.NewFlagSet("obs-test", flag.ContinueOnError)
	f := FlagsOn(fs, "obstest")
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestDoneNoLinger: without -debug-addr (or with a zero linger) Done must
// return immediately.
func TestDoneNoLinger(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-debug-linger", "5s"},        // linger without a server: no-op
		{"-debug-addr", "127.0.0.1:0"}, // server without linger
		{"-debug-addr", "127.0.0.1:0", "-debug-linger", "0s"},
	} {
		f := newTestFlags(t, args...)
		f.Init()
		start := time.Now()
		f.Done()
		if d := time.Since(start); d > time.Second {
			t.Errorf("Done(%v) blocked %v, want immediate return", args, d)
		}
	}
}

// TestDoneLingerWaits: with a server and a short linger, Done blocks for
// roughly the window, keeps the server scrapeable during it, and shuts the
// server down afterwards (the leak fix: the listener must actually close).
func TestDoneLingerWaits(t *testing.T) {
	f := newTestFlags(t, "-debug-addr", "127.0.0.1:0", "-debug-linger", "300ms")
	f.Init()
	if f.shutdown == nil {
		t.Fatal("Init did not record a shutdown func")
	}
	addr := serverAddr(t, f)

	done := make(chan struct{})
	go func() { f.Done(); close(done) }()

	// Mid-linger the endpoints must answer.
	time.Sleep(50 * time.Millisecond)
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("debug server unreachable during linger: %v", err)
	}
	resp.Body.Close()

	start := time.Now()
	<-done
	if total := time.Since(start); total > 2*time.Second {
		t.Fatalf("Done overstayed the linger window: %v", total)
	}
	// After Done the server must be gone — this is the http.Server leak fix.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := http.Get("http://" + addr + "/healthz")
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("debug server still answering after Done")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDoneLingerInterrupted: an interrupt must cut the linger window short
// instead of blocking the full duration.
func TestDoneLingerInterrupted(t *testing.T) {
	f := newTestFlags(t, "-debug-addr", "127.0.0.1:0", "-debug-linger", "30s")
	interrupt := make(chan struct{})
	f.testInterrupt = interrupt
	f.Init()
	done := make(chan struct{})
	start := time.Now()
	go func() { f.Done(); close(done) }()
	time.Sleep(50 * time.Millisecond)
	close(interrupt)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("interrupt did not cut the 30s linger short")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("Done took %v despite interrupt", d)
	}
}

// serverAddr returns the debug server's bound address (the tests bind
// 127.0.0.1:0, so the real port is only known after Init).
func serverAddr(t *testing.T, f *CmdFlags) string {
	t.Helper()
	if f.boundAddr == "" {
		t.Fatal("no bound debug address recorded")
	}
	return f.boundAddr
}

// TestFlagsArtifacts: Done writes the -trace-out and -manifest files.
func TestFlagsArtifacts(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	manifestPath := filepath.Join(dir, "manifest.json")
	f := newTestFlags(t, "-trace-out", tracePath, "-manifest", manifestPath)
	f.Init()
	f.Manifest.Seed("world", 9)
	sp := StartSpan("flagstest-stage")
	sp.AddItems(3, "things")
	sp.End()
	f.Done()

	var trace chromeTraceFile
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	found := false
	for _, ev := range trace.TraceEvents {
		if ev.Phase == "X" && ev.Name == "flagstest-stage" {
			found = true
		}
	}
	if !found {
		t.Error("trace missing the recorded span")
	}

	var m RunManifest
	raw, err = os.ReadFile(manifestPath)
	if err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("manifest not JSON: %v", err)
	}
	if m.Cmd != "obstest" || m.Schema != ManifestSchema {
		t.Errorf("manifest cmd/schema = %q/%d", m.Cmd, m.Schema)
	}
	if m.Seeds["world"] != 9 {
		t.Errorf("manifest seeds = %v", m.Seeds)
	}
	if m.WallSeconds <= 0 {
		t.Errorf("manifest wall_seconds = %v", m.WallSeconds)
	}
	if len(m.Metrics) == 0 {
		t.Error("manifest metrics empty")
	}
	if !strings.Contains(m.SpanTree, "flagstest-stage") {
		t.Errorf("manifest span tree missing stage:\n%s", m.SpanTree)
	}
	if _, ok := m.Flags["trace-out"]; !ok {
		t.Error("manifest flags missing the shared obs flags")
	}
}

// TestFlagsTimeline: -timeline installs, samples, and stops the default
// timeline sampler.
func TestFlagsTimeline(t *testing.T) {
	// Register before Init: a default timeline samples the metrics present
	// when sampling starts.
	c := NewCounter("countryrank_test_flagstl_total", "")
	f := newTestFlags(t, "-timeline", "1ms")
	f.Init()
	if GetDefaultTimeline() == nil {
		t.Fatal("-timeline did not install a default sampler")
	}
	c.Inc()
	time.Sleep(10 * time.Millisecond)
	f.Done()
	d := GetDefaultTimeline().Snapshot()
	if len(d.OffsetsMS) < 2 {
		t.Fatalf("timeline sampled %d times, want >= 2", len(d.OffsetsMS))
	}
	series, ok := d.Series["countryrank_test_flagstl_total"]
	if !ok {
		t.Fatal("timeline missing registry counter")
	}
	if series[len(series)-1] < 1 {
		t.Errorf("timeline final sample = %v, want >= 1", series[len(series)-1])
	}
	SetDefaultTimeline(nil)
}

// TestPublishExpvarTwice: the expvar bridge must tolerate repeated
// publication (expvar.Publish panics on duplicate names; the bridge must
// not).
func TestPublishExpvarTwice(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("PublishExpvar panicked on second call: %v", r)
		}
	}()
	PublishExpvar()
	PublishExpvar()
}

// TestRenderDeepTree: renderLocked's name padding went negative past depth
// 16 and fmt rejected the width; a 24-deep tree must render cleanly.
func TestRenderDeepTree(t *testing.T) {
	tr := &Trace{}
	spans := make([]*Span, 0, 24)
	for i := 0; i < 24; i++ {
		spans = append(spans, tr.Start("deep"))
	}
	for i := len(spans) - 1; i >= 0; i-- {
		spans[i].End()
	}
	out := tr.Render()
	if strings.Contains(out, "%!(BADWIDTH)") {
		t.Fatalf("deep render hit a negative pad:\n%s", out)
	}
	if got := strings.Count(out, "deep"); got != 24 {
		t.Errorf("rendered %d spans, want 24", got)
	}
}
