package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"
)

// ManifestSchema versions the manifest JSON layout. Bump it on any
// field rename or semantic change; the golden test pins the rendering.
const ManifestSchema = 1

// RunEnv captures the toolchain and machine shape a run executed under.
type RunEnv struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
}

// InputDigest identifies one input file by content: a ranking is only as
// reproducible as the bytes that fed it.
type InputDigest struct {
	Path   string `json:"path"`
	SHA256 string `json:"sha256"`
	Bytes  int64  `json:"bytes"`
}

// CoverageInfo is the manifest's view of core.Coverage (mirrored here so
// the leaf obs package needs no import of core). Degraded runs carry the
// same loss accounting their ranking labels do.
type CoverageInfo struct {
	VPsExpected  int   `json:"vps_expected"`
	VPsDelivered int   `json:"vps_delivered"`
	RecordsLost  int64 `json:"records_lost"`
	Resyncs      int64 `json:"resyncs"`
	SkippedBytes int64 `json:"skipped_bytes"`
	Reconnects   int64 `json:"reconnects"`
	Degraded     bool  `json:"degraded"`
}

// DropStats is the manifest's view of sanitize.Stats: the Table-1
// accounting of why records were dropped before any metric saw them.
type DropStats struct {
	Total    int            `json:"total"`
	Accepted int            `json:"accepted"`
	Rejected int            `json:"rejected"`
	ByReason map[string]int `json:"by_reason,omitempty"`
}

// A RunManifest is the provenance record of one run: which binary, flags,
// seeds, inputs, coverage, and drop accounting produced a given output,
// plus the final metric snapshot and stage tree. Every cmd emits one
// behind -manifest; a ranking without its manifest is just an assertion.
type RunManifest struct {
	Schema        int               `json:"schema"`
	Cmd           string            `json:"cmd"`
	Started       string            `json:"started"`
	WallSeconds   float64           `json:"wall_seconds"`
	Args          []string          `json:"args"`
	Flags         map[string]string `json:"flags"`
	Seeds         map[string]int64  `json:"seeds,omitempty"`
	Env           RunEnv            `json:"env"`
	Inputs        []InputDigest     `json:"inputs,omitempty"`
	Coverage      *CoverageInfo     `json:"coverage,omitempty"`
	SanitizeDrops *DropStats        `json:"sanitize_drops,omitempty"`
	// Notes carries free-form provenance a cmd wants pinned to the run —
	// rankd records its serving config and the published snapshot digest
	// here, so a scraped ranking can be traced to the exact bytes served.
	Notes    map[string]string `json:"notes,omitempty"`
	Metrics  map[string]any    `json:"metrics"`
	SpanTree string            `json:"span_tree"`

	mu sync.Mutex
}

// NewRunManifest starts a manifest for cmd: command-line args, the full
// flag set (every flag with its effective value — call after fs.Parse),
// and the toolchain environment. Coverage, drops, seeds, and inputs are
// added by the run as it learns them; Finish stamps the rest.
func NewRunManifest(cmd string, fs *flag.FlagSet) *RunManifest {
	m := &RunManifest{
		Schema:  ManifestSchema,
		Cmd:     cmd,
		Started: time.Now().UTC().Format(time.RFC3339),
		Args:    append([]string{}, os.Args[1:]...),
		Flags:   map[string]string{},
		Env: RunEnv{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GoMaxProcs: runtime.GOMAXPROCS(0),
		},
	}
	if fs != nil {
		fs.VisitAll(func(f *flag.Flag) {
			m.Flags[f.Name] = f.Value.String()
		})
	}
	return m
}

// Seed records one named seed (world, trials…) in the manifest.
func (m *RunManifest) Seed(name string, v int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.Seeds == nil {
		m.Seeds = map[string]int64{}
	}
	m.Seeds[name] = v
}

// SetNote records one named free-form provenance note.
func (m *RunManifest) SetNote(name, value string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.Notes == nil {
		m.Notes = map[string]string{}
	}
	m.Notes[name] = value
}

// AddInput hashes one input file (SHA-256 over its full content) into the
// manifest's input list.
func (m *RunManifest) AddInput(path string) error {
	d, err := HashFile(path)
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.Inputs = append(m.Inputs, d)
	m.mu.Unlock()
	return nil
}

// SetCoverage records the run's coverage/degraded state.
func (m *RunManifest) SetCoverage(c CoverageInfo) {
	m.mu.Lock()
	m.Coverage = &c
	m.mu.Unlock()
}

// SetDrops records the sanitizer's Table-1 drop accounting.
func (m *RunManifest) SetDrops(d DropStats) {
	m.mu.Lock()
	m.SanitizeDrops = &d
	m.mu.Unlock()
}

// Finish stamps the run's wall time, metric snapshot, and rendered span
// tree. Call once, when the run's work is complete.
func (m *RunManifest) Finish(wall time.Duration, metrics map[string]any, spanTree string) {
	m.mu.Lock()
	m.WallSeconds = wall.Seconds()
	m.Metrics = metrics
	m.SpanTree = spanTree
	m.mu.Unlock()
}

// WriteJSON renders the manifest as indented JSON (stable: struct field
// order is fixed and map keys marshal sorted).
func (m *RunManifest) WriteJSON(w io.Writer) error {
	m.mu.Lock()
	buf, err := json.MarshalIndent(m, "", "  ")
	m.mu.Unlock()
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// WriteFile writes the manifest JSON to path.
func (m *RunManifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: manifest: %w", err)
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: manifest: %w", err)
	}
	return f.Close()
}

// HashFile digests one file with SHA-256.
func HashFile(path string) (InputDigest, error) {
	f, err := os.Open(path)
	if err != nil {
		return InputDigest{}, err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return InputDigest{}, err
	}
	return InputDigest{Path: path, SHA256: hex.EncodeToString(h.Sum(nil)), Bytes: n}, nil
}
