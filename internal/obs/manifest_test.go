package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestManifestGolden pins the manifest JSON schema. The fixture fills every
// field with fixed values; any rename, reorder, or type change shows up as
// a golden diff and must come with a ManifestSchema bump.
func TestManifestGolden(t *testing.T) {
	m := &RunManifest{
		Schema:      ManifestSchema,
		Cmd:         "asrank",
		Started:     "2026-08-05T12:00:00Z",
		WallSeconds: 1.25,
		Args:        []string{"-seed", "7", "-scale", "0.5"},
		Flags:       map[string]string{"seed": "7", "scale": "0.5", "top": "20"},
		Seeds:       map[string]int64{"world": 7},
		Env: RunEnv{
			GoVersion:  "go1.24.0",
			GOOS:       "linux",
			GOARCH:     "amd64",
			NumCPU:     8,
			GoMaxProcs: 8,
		},
		Inputs: []InputDigest{{
			Path:   "dumps/rrc00.mrt",
			SHA256: "0f343b0931126a20f133d67c2b018a3b1e3b0e6f9cd69f0c9e1c0f3a2b1d4e5f",
			Bytes:  4096,
		}},
		Coverage: &CoverageInfo{
			VPsExpected:  40,
			VPsDelivered: 38,
			RecordsLost:  12,
			Resyncs:      1,
			SkippedBytes: 512,
			Reconnects:   3,
			Degraded:     true,
		},
		SanitizeDrops: &DropStats{
			Total:    1000,
			Accepted: 900,
			Rejected: 100,
			ByReason: map[string]int{"loop": 40, "unstable": 60},
		},
		Metrics:  map[string]any{"countryrank_sanitize_records_total": int64(1000)},
		SpanTree: "pipeline 1.25s\n  sanitize 0.5s\n",
	}
	var b strings.Builder
	if err := m.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	goldenPath := filepath.Join("testdata", "manifest.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("manifest schema drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestNewRunManifest checks the skeleton capture: schema version, full flag
// set with effective values, and a sane environment block.
func TestNewRunManifest(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.Int64("seed", 1, "")
	fs.Float64("scale", 1, "")
	if err := fs.Parse([]string{"-seed", "42"}); err != nil {
		t.Fatal(err)
	}
	m := NewRunManifest("testcmd", fs)
	if m.Schema != ManifestSchema {
		t.Errorf("Schema = %d, want %d", m.Schema, ManifestSchema)
	}
	if m.Cmd != "testcmd" {
		t.Errorf("Cmd = %q", m.Cmd)
	}
	if m.Flags["seed"] != "42" {
		t.Errorf("Flags[seed] = %q, want 42 (parsed value, not default)", m.Flags["seed"])
	}
	if m.Flags["scale"] != "1" {
		t.Errorf("Flags[scale] = %q, want the default 1", m.Flags["scale"])
	}
	if m.Env.GoVersion == "" || m.Env.GoMaxProcs <= 0 || m.Env.NumCPU <= 0 {
		t.Errorf("Env incomplete: %+v", m.Env)
	}
	if _, err := time.Parse(time.RFC3339, m.Started); err != nil {
		t.Errorf("Started %q not RFC3339: %v", m.Started, err)
	}

	m.Seed("world", 42)
	m.SetCoverage(CoverageInfo{VPsExpected: 3, VPsDelivered: 3})
	m.SetDrops(DropStats{Total: 10, Accepted: 9, Rejected: 1})
	m.Finish(2*time.Second, map[string]any{"countryrank_test_total": int64(1)}, "root 2s\n")
	if m.WallSeconds != 2 {
		t.Errorf("WallSeconds = %v, want 2", m.WallSeconds)
	}

	var b strings.Builder
	if err := m.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	for _, key := range []string{"schema", "cmd", "started", "wall_seconds", "args", "flags", "seeds", "env", "coverage", "sanitize_drops", "metrics", "span_tree"} {
		if _, ok := back[key]; !ok {
			t.Errorf("manifest JSON missing key %q", key)
		}
	}
}

// TestHashFile checks the digest helper against a directly computed sum.
func TestHashFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "input.mrt")
	content := []byte("some mrt bytes\n")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := HashFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(content)
	if d.SHA256 != hex.EncodeToString(sum[:]) {
		t.Errorf("SHA256 = %s, want %s", d.SHA256, hex.EncodeToString(sum[:]))
	}
	if d.Bytes != int64(len(content)) {
		t.Errorf("Bytes = %d, want %d", d.Bytes, len(content))
	}
	if d.Path != path {
		t.Errorf("Path = %q, want %q", d.Path, path)
	}
	if _, err := HashFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("HashFile on a missing file should error")
	}
}

// TestManifestNotes checks SetNote: notes land in the JSON under "notes",
// and a manifest with no notes omits the key entirely so the golden schema
// (and every existing consumer) is unaffected.
func TestManifestNotes(t *testing.T) {
	m := &RunManifest{}
	var b strings.Builder
	if err := m.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), `"notes"`) {
		t.Errorf("empty manifest should omit notes:\n%s", b.String())
	}

	m.SetNote("snapshot_digest", "abc123")
	m.SetNote("serving_addr", "127.0.0.1:8080")
	m.SetNote("snapshot_digest", "def456") // later writes win
	b.Reset()
	if err := m.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back struct {
		Notes map[string]string `json:"notes"`
	}
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Notes["snapshot_digest"] != "def456" || back.Notes["serving_addr"] != "127.0.0.1:8080" {
		t.Errorf("notes = %v", back.Notes)
	}
}
