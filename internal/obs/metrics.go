// Package obs is the pipeline's observability layer: a concurrency-safe
// metrics registry (atomic counters, gauges, and fixed-bucket duration
// histograms) with Prometheus text-format and expvar exposition, a
// lightweight span recorder that times pipeline stages hierarchically, and
// an opt-in debug HTTP server serving /metrics, /healthz, expvar, and
// net/http/pprof. Everything is stdlib-only, and the write paths are
// allocation-free (plain atomic adds) so hot loops can be instrumented
// without perturbing the numbers they measure.
//
// Metric names follow the Prometheus convention countryrank_<subsystem>_<name>
// and are validated at registration; registering the same name twice returns
// the existing metric, so package-level metric variables stay cheap to
// declare wherever they are used.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// A Counter is a monotonically increasing metric. The zero value is ready to
// use, but counters should normally be created through a Registry so they
// are exposed.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be non-negative; negative adds are
// coerced to zero to keep the counter monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// A Gauge is a metric that can go up and down (e.g. busy workers).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// A FloatGauge is a float64-valued gauge (burn rates, ratios) stored as
// atomic bits, so reads and writes stay lock- and allocation-free.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// A FloatCounter is a float64-valued monotonic metric (e.g. cumulative GC
// pause seconds). Values are refreshed with Set from an already-monotonic
// source; Set never moves the counter backwards.
type FloatCounter struct {
	bits atomic.Uint64
}

// Set raises the counter to v; a v below the current value is ignored so
// the series stays monotonic even if the refresh source resets.
func (c *FloatCounter) Set(v float64) {
	for {
		old := c.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if c.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// DurationBuckets is the default histogram bucket layout: upper bounds in
// seconds spanning 100µs to 10s, wide enough for every pipeline stage from a
// single kernel run to a full build.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ServingBuckets is the request-latency schedule: the same 1-2.5-5 decade
// ladder as DurationBuckets but shifted down to 10µs, so sub-millisecond
// handler latencies (a preserialized-snapshot hit runs in the tens of
// microseconds) land across buckets instead of piling into the first one.
// Pass it to NewHistogram for any metric timing individual requests.
var ServingBuckets = ExpBuckets(10*time.Microsecond, time.Second)

// ExpBuckets builds a histogram bucket schedule as a 1-2.5-5 ladder of
// upper bounds covering [min, max] (both clamped onto ladder steps, max
// inclusive). Bounds are derived from integer nanoseconds so the same
// arguments always yield bit-identical float64 schedules. Panics on a
// non-positive or inverted range.
func ExpBuckets(min, max time.Duration) []float64 {
	if min <= 0 || max < min {
		panic(fmt.Sprintf("obs: ExpBuckets invalid range [%v, %v]", min, max))
	}
	var out []float64
	for decade := int64(1); decade > 0 && decade <= int64(max); decade *= 10 {
		for _, step := range []int64{decade, decade * 25 / 10, decade * 5} {
			if step < int64(min) || step > int64(max) {
				continue
			}
			out = append(out, float64(step)/1e9)
		}
	}
	if len(out) == 0 || out[len(out)-1] < max.Seconds() {
		out = append(out, max.Seconds())
	}
	return out
}

// A Histogram accumulates duration observations into fixed buckets. Writes
// are two atomic adds plus a bucket scan over a small fixed array; there is
// no locking and no allocation.
type Histogram struct {
	bounds []float64 // upper bounds, seconds, ascending
	counts []atomic.Int64
	sumNs  atomic.Int64 // sum of observations, nanoseconds
	count  atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	for i, ub := range h.bounds {
		if s <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.sumNs.Add(int64(d))
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations in seconds.
func (h *Histogram) Sum() float64 { return float64(h.sumNs.Load()) / 1e9 }

// snapshot returns cumulative bucket counts aligned with h.bounds plus the
// +Inf bucket (== Count) for exposition.
func (h *Histogram) snapshot() []int64 {
	out := make([]int64, len(h.bounds)+1)
	var cum int64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	out[len(h.bounds)] = h.count.Load()
	return out
}

// metric pairs a registered name with its typed collector.
type metric struct {
	name string
	help string
	c    *Counter
	g    *Gauge
	h    *Histogram
	fg   *FloatGauge
	fc   *FloatCounter
}

// A Registry holds named metrics and renders them for exposition. The zero
// value is ready to use; most code uses the package-level Default registry
// through NewCounter / NewGauge / NewHistogram.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*metric
	ordered []*metric
}

// Default is the process-wide registry served by the debug server.
var Default = &Registry{}

func (r *Registry) register(name, help string, build func() *metric) *metric {
	if err := CheckName(name); err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName == nil {
		r.byName = map[string]*metric{}
	}
	if m, ok := r.byName[name]; ok {
		return m
	}
	m := build()
	m.name = name
	m.help = help
	r.byName[name] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter returns the registry's counter with the given name, creating it if
// needed. Panics if the name is invalid or already bound to another type.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, help, func() *metric { return &metric{c: &Counter{}} })
	if m.c == nil {
		panic(fmt.Sprintf("obs: metric %q is not a counter", name))
	}
	return m.c
}

// Gauge returns the registry's gauge with the given name, creating it if
// needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, help, func() *metric { return &metric{g: &Gauge{}} })
	if m.g == nil {
		panic(fmt.Sprintf("obs: metric %q is not a gauge", name))
	}
	return m.g
}

// FloatGauge returns the registry's float gauge with the given name,
// creating it if needed.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	m := r.register(name, help, func() *metric { return &metric{fg: &FloatGauge{}} })
	if m.fg == nil {
		panic(fmt.Sprintf("obs: metric %q is not a float gauge", name))
	}
	return m.fg
}

// FloatCounter returns the registry's float counter with the given name,
// creating it if needed.
func (r *Registry) FloatCounter(name, help string) *FloatCounter {
	m := r.register(name, help, func() *metric { return &metric{fc: &FloatCounter{}} })
	if m.fc == nil {
		panic(fmt.Sprintf("obs: metric %q is not a float counter", name))
	}
	return m.fc
}

// Histogram returns the registry's histogram with the given name, creating
// it with the given bucket upper bounds (nil selects DurationBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	m := r.register(name, help, func() *metric {
		if buckets == nil {
			buckets = DurationBuckets
		}
		if !sort.Float64sAreSorted(buckets) {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
		}
		return &metric{h: &Histogram{
			bounds: buckets,
			counts: make([]atomic.Int64, len(buckets)),
		}}
	})
	if m.h == nil {
		panic(fmt.Sprintf("obs: metric %q is not a histogram", name))
	}
	return m.h
}

// NewCounter registers (or fetches) a counter in the Default registry.
func NewCounter(name, help string) *Counter { return Default.Counter(name, help) }

// NewGauge registers (or fetches) a gauge in the Default registry.
func NewGauge(name, help string) *Gauge { return Default.Gauge(name, help) }

// NewFloatGauge registers (or fetches) a float gauge in the Default registry.
func NewFloatGauge(name, help string) *FloatGauge { return Default.FloatGauge(name, help) }

// NewFloatCounter registers (or fetches) a float counter in the Default
// registry.
func NewFloatCounter(name, help string) *FloatCounter { return Default.FloatCounter(name, help) }

// NewHistogram registers (or fetches) a duration histogram in the Default
// registry, with DurationBuckets when buckets is nil.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return Default.Histogram(name, help, buckets)
}

// CheckName validates a metric name: the countryrank_ prefix the repo's
// catalogue mandates, and the Prometheus identifier grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func CheckName(name string) error {
	const prefix = "countryrank_"
	if len(name) < len(prefix) || name[:len(prefix)] != prefix {
		return fmt.Errorf("obs: metric name %q lacks the countryrank_ prefix", name)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return fmt.Errorf("obs: metric name %q starts with a digit", name)
			}
		default:
			return fmt.Errorf("obs: metric name %q has invalid byte %q", name, c)
		}
	}
	return nil
}

// formatFloat renders a float the way Prometheus clients do: integral values
// without an exponent, +Inf spelled literally.
func formatFloat(f float64) string {
	if math.IsInf(f, +1) {
		return "+Inf"
	}
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}
