package obs

import (
	"strings"
	"testing"
	"time"
)

func TestCheckName(t *testing.T) {
	valid := []string{
		"countryrank_sanitize_records_total",
		"countryrank_core_kernel_cone_seconds",
		"countryrank_par_workers_busy",
		"countryrank_x:y_total",
	}
	for _, n := range valid {
		if err := CheckName(n); err != nil {
			t.Errorf("CheckName(%q) = %v, want nil", n, err)
		}
	}
	invalid := []string{
		"",
		"sanitize_records_total",    // missing prefix
		"Countryrank_records_total", // wrong-case prefix
		"countryrank_records-total", // hyphen
		"countryrank_records total", // space
		"countryrank_récords_total", // non-ASCII
	}
	for _, n := range invalid {
		if err := CheckName(n); err == nil {
			t.Errorf("CheckName(%q) = nil, want error", n)
		}
	}
}

func TestRegistryTypeClash(t *testing.T) {
	r := &Registry{}
	r.Counter("countryrank_test_clash_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge over a counter should panic")
		}
	}()
	r.Gauge("countryrank_test_clash_total", "")
}

func TestRegistryIdempotent(t *testing.T) {
	r := &Registry{}
	a := r.Counter("countryrank_test_idem_total", "help")
	b := r.Counter("countryrank_test_idem_total", "other help")
	if a != b {
		t.Fatal("same name should return the same counter")
	}
}

func TestCounterMonotonic(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3) // coerced to zero: counters never go down
	c.Inc()
	if got := c.Value(); got != 6 {
		t.Fatalf("Value = %d, want 6", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := &Registry{}
	h := r.Histogram("countryrank_test_hist_seconds", "", []float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(2 * time.Second)        // overflows into +Inf only
	if got := h.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	cum := h.snapshot()
	want := []int64{1, 3, 3, 4} // cumulative: le=0.001, le=0.01, le=0.1, +Inf
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("snapshot = %v, want %v", cum, want)
		}
	}
	wantSum := 0.0005 + 0.005 + 0.005 + 2
	if diff := h.Sum() - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Sum = %g, want %g", h.Sum(), wantSum)
	}
}

// TestWritePrometheusGolden pins the exposition format: HELP/TYPE comments,
// lexicographic metric order, cumulative histogram buckets with a +Inf
// terminal, and _sum/_count series.
func TestWritePrometheusGolden(t *testing.T) {
	r := &Registry{}
	c := r.Counter("countryrank_test_records_total", "records seen")
	c.Add(42)
	g := r.Gauge("countryrank_test_busy", "busy workers")
	g.Set(3)
	h := r.Histogram("countryrank_test_run_seconds", "run duration", []float64{0.5, 1})
	h.Observe(250 * time.Millisecond)
	h.Observe(2 * time.Second)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP countryrank_test_busy busy workers
# TYPE countryrank_test_busy gauge
countryrank_test_busy 3
# HELP countryrank_test_records_total records seen
# TYPE countryrank_test_records_total counter
countryrank_test_records_total 42
# HELP countryrank_test_run_seconds run duration
# TYPE countryrank_test_run_seconds histogram
countryrank_test_run_seconds_bucket{le="0.5"} 1
countryrank_test_run_seconds_bucket{le="1"} 1
countryrank_test_run_seconds_bucket{le="+Inf"} 2
countryrank_test_run_seconds_sum 2.25
countryrank_test_run_seconds_count 2
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestDefaultRegistryNamesValid(t *testing.T) {
	// Every metric registered by the instrumented packages must satisfy
	// CheckName; registration panics otherwise, but this also guards the
	// exposition against a future registry that skips validation.
	Default.mu.Lock()
	names := make([]string, 0, len(Default.ordered))
	for _, m := range Default.ordered {
		names = append(names, m.name)
	}
	Default.mu.Unlock()
	for _, n := range names {
		if err := CheckName(n); err != nil {
			t.Errorf("registered metric %q: %v", n, err)
		}
	}
}

func TestSnapshot(t *testing.T) {
	r := &Registry{}
	r.Counter("countryrank_test_snap_total", "").Add(7)
	h := r.Histogram("countryrank_test_snap_seconds", "", []float64{1})
	h.Observe(time.Second / 2)
	snap := r.Snapshot()
	if got := snap["countryrank_test_snap_total"]; got != int64(7) {
		t.Errorf("counter in snapshot = %v, want 7", got)
	}
	if got := snap["countryrank_test_snap_seconds_count"]; got != int64(1) {
		t.Errorf("histogram count in snapshot = %v, want 1", got)
	}
	if got := snap["countryrank_test_snap_seconds_sum"]; got != 0.5 {
		t.Errorf("histogram sum in snapshot = %v, want 0.5", got)
	}
}

func TestSpanTree(t *testing.T) {
	tr := &Trace{}
	root := tr.Start("pipeline")
	child := tr.Start("sanitize")
	child.AddItems(100, "records")
	child.End()
	fan := root.Child("kernels")
	fan.AddItems(4, "")
	fan.End()
	root.End()

	if root.Depth() != 0 || child.Depth() != 1 || fan.Depth() != 1 {
		t.Fatalf("depths: root=%d child=%d fan=%d", root.Depth(), child.Depth(), fan.Depth())
	}
	if n, unit := root.TotalItems(); n != 104 || unit != "records" {
		t.Fatalf("TotalItems = %d %q, want 104 records", n, unit)
	}
	out := tr.Render()
	for _, frag := range []string{"pipeline", "sanitize", "kernels", "[100 records", "/s]", "%"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Render missing %q:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "(open)") {
		t.Errorf("all spans ended but Render shows open:\n%s", out)
	}
}

func TestSpanHooks(t *testing.T) {
	tr := &Trace{}
	var started, ended []string
	tr.OnStart = func(s *Span) { started = append(started, s.Name) }
	tr.OnEnd = func(s *Span) { ended = append(ended, s.Name) }
	a := tr.Start("a")
	b := tr.Start("b")
	b.End()
	a.End()
	if strings.Join(started, ",") != "a,b" {
		t.Errorf("OnStart order = %v", started)
	}
	if strings.Join(ended, ",") != "b,a" {
		t.Errorf("OnEnd order = %v", ended)
	}
}

// TestSpanCurrentRestored checks the nesting invariant: after a child ends,
// new spans parent to the still-open ancestor, not to the closed child.
func TestSpanCurrentRestored(t *testing.T) {
	tr := &Trace{}
	root := tr.Start("root")
	tr.Start("first").End()
	second := tr.Start("second")
	if second.Depth() != 1 {
		t.Fatalf("second should nest under root, depth=%d", second.Depth())
	}
	second.End()
	root.End()
	next := tr.Start("next-root")
	if next.Depth() != 0 {
		t.Fatalf("span after root ended should be a root, depth=%d", next.Depth())
	}
	next.End()
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0.5:  "0.5",
		1:    "1",
		10:   "10",
		2.25: "2.25",
	}
	for f, want := range cases {
		if got := formatFloat(f); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", f, got, want)
		}
	}
}
