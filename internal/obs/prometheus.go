package obs

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), in lexicographic name order so the
// output is stable for scraping diffs and golden tests.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := make([]*metric, len(r.ordered))
	copy(ms, r.ordered)
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })

	var b strings.Builder
	for _, m := range ms {
		if m.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
		}
		switch {
		case m.c != nil:
			fmt.Fprintf(&b, "# TYPE %s counter\n", m.name)
			fmt.Fprintf(&b, "%s %d\n", m.name, m.c.Value())
		case m.g != nil:
			fmt.Fprintf(&b, "# TYPE %s gauge\n", m.name)
			fmt.Fprintf(&b, "%s %d\n", m.name, m.g.Value())
		case m.fg != nil:
			fmt.Fprintf(&b, "# TYPE %s gauge\n", m.name)
			fmt.Fprintf(&b, "%s %s\n", m.name, formatFloat(m.fg.Value()))
		case m.fc != nil:
			fmt.Fprintf(&b, "# TYPE %s counter\n", m.name)
			fmt.Fprintf(&b, "%s %s\n", m.name, formatFloat(m.fc.Value()))
		case m.h != nil:
			fmt.Fprintf(&b, "# TYPE %s histogram\n", m.name)
			cum := m.h.snapshot()
			for i, ub := range m.h.bounds {
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.name, formatFloat(ub), cum[i])
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum[len(cum)-1])
			fmt.Fprintf(&b, "%s_sum %s\n", m.name, formatFloat(m.h.Sum()))
			fmt.Fprintf(&b, "%s_count %d\n", m.name, m.h.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot returns the current value of every registered metric keyed by
// name. Histograms contribute <name>_count and <name>_sum entries. This is
// the expvar view of the registry.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	ms := make([]*metric, len(r.ordered))
	copy(ms, r.ordered)
	r.mu.Unlock()
	out := make(map[string]any, len(ms))
	for _, m := range ms {
		switch {
		case m.c != nil:
			out[m.name] = m.c.Value()
		case m.g != nil:
			out[m.name] = m.g.Value()
		case m.fg != nil:
			out[m.name] = m.fg.Value()
		case m.fc != nil:
			out[m.name] = m.fc.Value()
		case m.h != nil:
			out[m.name+"_count"] = m.h.Count()
			out[m.name+"_sum"] = m.h.Sum()
		}
	}
	return out
}

var publishOnce sync.Once

// PublishExpvar bridges the Default registry into the process expvar map
// under the "countryrank" key, so /debug/vars shows the same numbers as
// /metrics. Safe to call repeatedly; only the first call publishes.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("countryrank", expvar.Func(func() any {
			return Default.Snapshot()
		}))
	})
}
