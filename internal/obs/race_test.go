// External test package: obs is imported by par, so tests that drive the
// registry through par.ForEach must live outside package obs to avoid an
// import cycle.
package obs_test

import (
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"countryrank/internal/obs"
	"countryrank/internal/par"
)

// TestConcurrentWriters hammers one counter, one gauge, and one histogram
// from a parallel loop while a goroutine concurrently snapshots and renders
// the registry. Run under -race this exercises every lock-free write path
// against the locked read paths.
func TestConcurrentWriters(t *testing.T) {
	r := &obs.Registry{}
	c := r.Counter("countryrank_test_race_total", "")
	g := r.Gauge("countryrank_test_race_busy", "")
	h := r.Histogram("countryrank_test_race_seconds", "", nil)

	const n = 2000
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			r.Snapshot()
			if err := r.WritePrometheus(io.Discard); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	par.ForEach(n, func(i int) {
		c.Inc()
		g.Add(1)
		g.Add(-1)
		h.Observe(time.Duration(i%1000) * time.Microsecond)
	})
	close(done)
	wg.Wait()

	if got := c.Value(); got != n {
		t.Errorf("counter = %d, want %d", got, n)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != n {
		t.Errorf("histogram count = %d, want %d", got, n)
	}
}

// TestConcurrentRegistration races metric registration for the same and
// distinct names against exposition.
func TestConcurrentRegistration(t *testing.T) {
	r := &obs.Registry{}
	names := []string{
		"countryrank_test_reg_a_total",
		"countryrank_test_reg_b_total",
		"countryrank_test_reg_c_total",
	}
	par.ForEach(64, func(i int) {
		r.Counter(names[i%len(names)], "help").Inc()
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Error(err)
		}
	})
	snap := r.Snapshot()
	var total int64
	for _, n := range names {
		v, ok := snap[n].(int64)
		if !ok {
			t.Fatalf("metric %s missing from snapshot", n)
		}
		total += v
	}
	if total != 64 {
		t.Errorf("total increments = %d, want 64", total)
	}
}

// TestConcurrentSpans attaches children and item counts to one span from a
// parallel loop while another goroutine renders the trace.
func TestConcurrentSpans(t *testing.T) {
	tr := &obs.Trace{}
	root := tr.Start("fanout")
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = tr.Render()
			_, _ = root.TotalItems()
		}
	}()
	par.ForEach(256, func(i int) {
		c := root.Child("task")
		c.AddItems(1, "tasks")
		c.End()
	})
	close(done)
	wg.Wait()
	root.End()
	if n, unit := root.TotalItems(); n != 256 || unit != "tasks" {
		t.Errorf("TotalItems = %d %q, want 256 tasks", n, unit)
	}
}

// TestParMetricsFlow checks that par's own instrumentation lands in the
// default registry: running a loop moves the tasks counter and leaves the
// busy-workers gauge at zero.
func TestParMetricsFlow(t *testing.T) {
	tasks := obs.NewCounter("countryrank_par_tasks_total", "")
	before := tasks.Value()
	par.ForEach(100, func(int) {})
	if got := tasks.Value() - before; got != 100 {
		t.Errorf("par tasks delta = %d, want 100", got)
	}
	busy := obs.NewGauge("countryrank_par_workers_busy", "")
	if got := busy.Value(); got != 0 {
		t.Errorf("busy workers after quiescence = %d, want 0", got)
	}
}
