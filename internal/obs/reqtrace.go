package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Request-tracing metrics.
var (
	mTraceSeen = NewCounter("countryrank_reqtrace_seen_total",
		"requests that consulted the trace sampler")
	mTraceSampled = NewCounter("countryrank_reqtrace_sampled_total",
		"requests promoted to a full request trace")
	mTraceActive = NewGauge("countryrank_reqtrace_active",
		"sampled requests currently in flight")
)

// A ReqSpan is one sampled request's trace: a detached obs.Span carrying
// timestamped events (parse, lookup, write…) plus the request facts the
// /debug/requests inspector renders. Only sampled requests ever allocate
// one; the unsampled path sees a nil pointer and pays a single sampler
// decision.
type ReqSpan struct {
	span  *Span
	start time.Time

	// Written once by Finish, then only read under the tracker lock.
	Route   string
	Path    string
	Status  int
	Bytes   int64
	Latency time.Duration
	done    bool
}

// Event records a timestamped marker (e.g. "parse", "lookup", "write") on
// the request's span. Nil-safe so handlers can call it unconditionally.
func (r *ReqSpan) Event(name string) {
	if r != nil {
		r.span.Event(name)
	}
}

// A ReqTracker retains sampled request traces for after-the-fact
// inspection, net/trace-style: the set of active (in-flight) sampled
// requests, a bounded most-recent ring per route, and a slowest-N exemplar
// shelf per route so the request behind a p999 spike is still inspectable
// long after it completed. /debug/requests serves Snapshot.
type ReqTracker struct {
	sampler *Sampler
	trace   Trace // private span factory; never rendered into DefaultTrace

	recentN int
	slowN   int

	mu     sync.Mutex
	active map[*ReqSpan]struct{}
	routes map[string]*routeShelf
}

// routeShelf is one route's retention: a ring of the most recent completed
// traces (oldest evicted first) and the slowest-N shelf ordered
// slowest-first (the fastest exemplar evicted when a slower one arrives).
type routeShelf struct {
	recent []*ReqSpan // ring; head is the next overwrite position
	head   int
	full   bool
	slow   []*ReqSpan // sorted by Latency descending, len <= slowN
}

// NewReqTracker samples requests at rate with the given seed, retaining
// per route the recentN most recent completed traces (default 64) and the
// slowN slowest (default 8).
func NewReqTracker(seed int64, rate float64, recentN, slowN int) *ReqTracker {
	if recentN <= 0 {
		recentN = 64
	}
	if slowN <= 0 {
		slowN = 8
	}
	return &ReqTracker{
		sampler: NewSampler(seed, rate),
		recentN: recentN,
		slowN:   slowN,
		active:  map[*ReqSpan]struct{}{},
		routes:  map[string]*routeShelf{},
	}
}

// Start consults the sampler for the arriving request. It returns nil —
// with zero allocations — unless the request is promoted, in which case
// the returned ReqSpan is registered active and its span is running.
func (t *ReqTracker) Start(path string) *ReqSpan {
	mTraceSeen.Inc()
	if !t.sampler.Sample() {
		return nil
	}
	mTraceSampled.Inc()
	r := &ReqSpan{Path: path, start: time.Now()}
	r.span = t.trace.StartDetached("request")
	t.mu.Lock()
	t.active[r] = struct{}{}
	mTraceActive.Set(int64(len(t.active)))
	t.mu.Unlock()
	return r
}

// Finish completes a sampled request: closes its span, moves it from the
// active set into its route's recent ring, and offers it to the slowest-N
// shelf. Nil-safe.
func (t *ReqTracker) Finish(r *ReqSpan, route string, status int, bytes int64) {
	if r == nil {
		return
	}
	r.span.End()
	t.mu.Lock()
	defer t.mu.Unlock()
	r.Route, r.Status, r.Bytes = route, status, bytes
	r.Latency = r.span.Duration()
	r.done = true
	delete(t.active, r)
	mTraceActive.Set(int64(len(t.active)))

	sh := t.routes[route]
	if sh == nil {
		sh = &routeShelf{recent: make([]*ReqSpan, 0, t.recentN)}
		t.routes[route] = sh
	}
	if len(sh.recent) < t.recentN {
		sh.recent = append(sh.recent, r)
	} else {
		sh.recent[sh.head] = r
		sh.head = (sh.head + 1) % t.recentN
		sh.full = true
	}
	// Insert into the slowest shelf (sorted descending); evict the fastest
	// exemplar when over capacity.
	i := len(sh.slow)
	for i > 0 && sh.slow[i-1].Latency < r.Latency {
		i--
	}
	if i < t.slowN {
		sh.slow = append(sh.slow, nil)
		copy(sh.slow[i+1:], sh.slow[i:])
		sh.slow[i] = r
		if len(sh.slow) > t.slowN {
			sh.slow = sh.slow[:t.slowN]
		}
	}
}

// Seen returns how many requests consulted the sampler.
func (t *ReqTracker) Seen() int64 { return t.sampler.Seen() }

// Sampled returns how many requests were promoted to a trace.
func (t *ReqTracker) Sampled() int64 { return t.sampler.Sampled() }

// ReqSpanData is one trace in the /debug/requests JSON.
type ReqSpanData struct {
	Route     string         `json:"route,omitempty"`
	Path      string         `json:"path"`
	Start     string         `json:"start"`
	Status    int            `json:"status,omitempty"`
	Bytes     int64          `json:"bytes,omitempty"`
	LatencyUS int64          `json:"latency_us"`
	Open      bool           `json:"open,omitempty"`
	Events    []ReqEventData `json:"events,omitempty"`
}

// ReqEventData is one span event with its offset into the request.
type ReqEventData struct {
	Name     string `json:"name"`
	OffsetUS int64  `json:"offset_us"`
}

// RouteRequests is one route's retained traces.
type RouteRequests struct {
	Recent  []ReqSpanData `json:"recent"`
	Slowest []ReqSpanData `json:"slowest"`
}

// RequestsData is the /debug/requests JSON shape.
type RequestsData struct {
	Seen    int64                    `json:"seen"`
	Sampled int64                    `json:"sampled"`
	Active  []ReqSpanData            `json:"active"`
	Routes  map[string]RouteRequests `json:"routes"`
}

func (t *ReqTracker) render(r *ReqSpan) ReqSpanData {
	d := ReqSpanData{
		Route:  r.Route,
		Path:   r.Path,
		Start:  r.start.UTC().Format(time.RFC3339Nano),
		Status: r.Status,
		Bytes:  r.Bytes,
		Open:   !r.done,
	}
	if r.done {
		d.LatencyUS = r.Latency.Microseconds()
	} else {
		d.LatencyUS = time.Since(r.start).Microseconds()
	}
	for _, ev := range r.span.Events() {
		d.Events = append(d.Events, ReqEventData{
			Name:     ev.Name,
			OffsetUS: ev.At.Sub(r.start).Microseconds(),
		})
	}
	return d
}

// defaultRequests is the process-wide tracker /debug/requests serves.
var defaultRequests atomic.Pointer[ReqTracker]

// SetDefaultRequests installs (or, with nil, clears) the tracker served at
// /debug/requests.
func SetDefaultRequests(t *ReqTracker) { defaultRequests.Store(t) }

// GetDefaultRequests returns the installed tracker, or nil.
func GetDefaultRequests() *ReqTracker { return defaultRequests.Load() }

// Snapshot copies the tracker state into its JSON report. Recent traces
// come back oldest-first; the slowest shelf slowest-first.
func (t *ReqTracker) Snapshot() RequestsData {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := RequestsData{
		Seen:    t.sampler.Seen(),
		Sampled: t.sampler.Sampled(),
		Active:  []ReqSpanData{},
		Routes:  map[string]RouteRequests{},
	}
	for r := range t.active {
		d.Active = append(d.Active, t.render(r))
	}
	for route, sh := range t.routes {
		rr := RouteRequests{Recent: []ReqSpanData{}, Slowest: []ReqSpanData{}}
		if sh.full {
			for i := 0; i < len(sh.recent); i++ {
				rr.Recent = append(rr.Recent, t.render(sh.recent[(sh.head+i)%len(sh.recent)]))
			}
		} else {
			for _, r := range sh.recent {
				rr.Recent = append(rr.Recent, t.render(r))
			}
		}
		for _, r := range sh.slow {
			rr.Slowest = append(rr.Slowest, t.render(r))
		}
		d.Routes[route] = rr
	}
	return d
}
