package obs

import (
	"fmt"
	"testing"
	"time"
)

// finish completes a started span after a short controlled delay so
// successive finishes have strictly increasing latencies.
func finishAfter(t *ReqTracker, r *ReqSpan, route string, d time.Duration) {
	time.Sleep(d)
	t.Finish(r, route, 200, 1)
}

// TestReqTrackerRecentEviction fills a 3-slot recent ring with 5 traces and
// checks the oldest two were evicted and the survivors come back
// oldest-first.
func TestReqTrackerRecentEviction(t *testing.T) {
	tr := NewReqTracker(1, 1, 3, 8)
	for i := 0; i < 5; i++ {
		r := tr.Start(fmt.Sprintf("/p/%d", i))
		if r == nil {
			t.Fatal("rate-1 tracker declined a request")
		}
		tr.Finish(r, "country", 200, 0)
	}
	snap := tr.Snapshot()
	recent := snap.Routes["country"].Recent
	if len(recent) != 3 {
		t.Fatalf("recent holds %d traces, want 3", len(recent))
	}
	for i, want := range []string{"/p/2", "/p/3", "/p/4"} {
		if recent[i].Path != want {
			t.Errorf("recent[%d] = %s, want %s (oldest-first)", i, recent[i].Path, want)
		}
	}
	if snap.Seen != 5 || snap.Sampled != 5 {
		t.Errorf("seen/sampled = %d/%d, want 5/5", snap.Seen, snap.Sampled)
	}
}

// TestReqTrackerSlowestShelf checks the slowest-N shelf keeps the N slowest
// traces in descending latency order, evicting the fastest exemplar.
func TestReqTrackerSlowestShelf(t *testing.T) {
	tr := NewReqTracker(1, 1, 8, 2)
	// Start all five up front, then finish them one by one with increasing
	// delays: later finishes are strictly slower.
	spans := make([]*ReqSpan, 5)
	for i := range spans {
		spans[i] = tr.Start(fmt.Sprintf("/p/%d", i))
	}
	for _, r := range spans {
		finishAfter(tr, r, "top", 3*time.Millisecond)
	}
	slow := tr.Snapshot().Routes["top"].Slowest
	if len(slow) != 2 {
		t.Fatalf("slowest shelf holds %d, want 2", len(slow))
	}
	// All spans started together and finished sequentially, so the last
	// finished are the slowest: /p/4, then /p/3.
	if slow[0].LatencyUS < slow[1].LatencyUS {
		t.Errorf("shelf not sorted slowest-first: %d < %d", slow[0].LatencyUS, slow[1].LatencyUS)
	}
	if slow[0].Path != "/p/4" || slow[1].Path != "/p/3" {
		t.Errorf("shelf = [%s %s], want [/p/4 /p/3]", slow[0].Path, slow[1].Path)
	}
}

// TestReqTrackerActive checks in-flight sampled requests appear in the
// active set until finished.
func TestReqTrackerActive(t *testing.T) {
	tr := NewReqTracker(1, 1, 8, 2)
	r := tr.Start("/inflight")
	r.Event("parse")
	snap := tr.Snapshot()
	if len(snap.Active) != 1 || !snap.Active[0].Open || snap.Active[0].Path != "/inflight" {
		t.Fatalf("active = %+v", snap.Active)
	}
	tr.Finish(r, "country", 200, 42)
	snap = tr.Snapshot()
	if len(snap.Active) != 0 {
		t.Errorf("finished trace still active")
	}
	got := snap.Routes["country"].Recent[0]
	if got.Status != 200 || got.Bytes != 42 || len(got.Events) != 1 || got.Events[0].Name != "parse" {
		t.Errorf("finished trace = %+v", got)
	}
}

// TestReqTrackerUnsampledPathAllocs pins the rate-0 fast path at zero
// allocations: one sampler decision, no span, nil-safe Event/Finish.
func TestReqTrackerUnsampledPathAllocs(t *testing.T) {
	tr := NewReqTracker(1, 0, 8, 2)
	if allocs := testing.AllocsPerRun(500, func() {
		r := tr.Start("/v1/countries/AU")
		r.Event("parse")
		tr.Finish(r, "country", 200, 0)
	}); allocs != 0 {
		t.Errorf("unsampled path: %.1f allocs/op, want 0", allocs)
	}
}
