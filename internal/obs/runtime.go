package obs

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Runtime self-metrics: the serving daemon's own health (goroutine count,
// heap, GC pauses) scraped alongside its request metrics. They refresh on
// demand — from the /metrics handler and the timeline sampler's tick —
// rather than on a dedicated goroutine, so an idle process pays nothing.
var (
	runtimeOnce    sync.Once
	runtimeEnabled atomic.Bool
	rmGoroutines   *Gauge
	rmHeapAlloc    *Gauge
	rmGomaxprocs   *Gauge
	rmGCPause      *FloatCounter
)

// EnableRuntimeMetrics registers the countryrank_go_* self-metrics in the
// Default registry and takes a first reading. Idempotent; CmdFlags.Init
// calls it for every cmd.
func EnableRuntimeMetrics() {
	runtimeOnce.Do(func() {
		rmGoroutines = NewGauge("countryrank_go_goroutines",
			"current goroutine count (refreshed on scrape)")
		rmHeapAlloc = NewGauge("countryrank_go_heap_alloc_bytes",
			"bytes of allocated heap objects (refreshed on scrape)")
		rmGomaxprocs = NewGauge("countryrank_go_gomaxprocs",
			"GOMAXPROCS the process runs with")
		rmGCPause = NewFloatCounter("countryrank_go_gc_pause_seconds_total",
			"cumulative GC stop-the-world pause seconds")
		runtimeEnabled.Store(true)
	})
	RefreshRuntimeMetrics()
}

// RefreshRuntimeMetrics re-reads the runtime into the self-metric gauges.
// A no-op until EnableRuntimeMetrics has run.
func RefreshRuntimeMetrics() {
	if !runtimeEnabled.Load() {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rmGoroutines.Set(int64(runtime.NumGoroutine()))
	rmHeapAlloc.Set(int64(ms.HeapAlloc))
	rmGomaxprocs.Set(int64(runtime.GOMAXPROCS(0)))
	rmGCPause.Set(float64(ms.PauseTotalNs) / 1e9)
}
