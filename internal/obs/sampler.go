package obs

import (
	"math"
	"sync/atomic"
)

// A Sampler makes deterministic, rate-configurable sampling decisions for
// request tracing. Each arrival claims the next sequence number with one
// atomic add and the decision for a given sequence number is a pure
// function of (seed, rate, sequence): a splitmix64 hash of the sequence
// compared against a fixed threshold. The *set* of sampled sequence
// numbers is therefore identical at any GOMAXPROCS or interleaving — only
// which goroutine draws which number varies — and a replay with the same
// seed samples the same arrivals. The decision path performs no
// allocation and takes no locks.
type Sampler struct {
	seed      uint64
	threshold uint64 // decision boundary mapped onto [0, 2^64)
	always    bool   // rate >= 1
	seq       atomic.Uint64
	sampled   atomic.Int64
}

// NewSampler builds a sampler that promotes approximately rate (in [0, 1])
// of arrivals. Rates at or above 1 sample everything; rates at or below 0
// sample nothing.
func NewSampler(seed int64, rate float64) *Sampler {
	s := &Sampler{seed: uint64(seed)}
	switch {
	case rate >= 1:
		s.always = true
	case rate > 0:
		s.threshold = uint64(rate * math.MaxUint64)
	}
	return s
}

// Sample claims the next arrival's sequence number and returns its
// decision.
func (s *Sampler) Sample() bool {
	i := s.seq.Add(1) - 1
	if !s.Decide(i) {
		return false
	}
	s.sampled.Add(1)
	return true
}

// Decide reports the (pure, replayable) decision for sequence number i.
func (s *Sampler) Decide(i uint64) bool {
	if s.always {
		return true
	}
	if s.threshold == 0 {
		return false
	}
	return splitmix64(s.seed+i*0x9e3779b97f4a7c15) < s.threshold
}

// Seen returns how many arrivals have claimed a decision.
func (s *Sampler) Seen() int64 { return int64(s.seq.Load()) }

// Sampled returns how many arrivals were promoted.
func (s *Sampler) Sampled() int64 { return s.sampled.Load() }

// splitmix64 is the finalizer of the splitmix64 generator: a bijective
// avalanche mix, so distinct inputs spread uniformly over uint64.
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
