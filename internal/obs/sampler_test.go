package obs

import (
	"runtime"
	"sync"
	"testing"
)

func TestSamplerRateEdges(t *testing.T) {
	always := NewSampler(1, 1)
	never := NewSampler(1, 0)
	for i := 0; i < 100; i++ {
		if !always.Sample() {
			t.Fatal("rate 1 declined an arrival")
		}
		if never.Sample() {
			t.Fatal("rate 0 promoted an arrival")
		}
	}
	if always.Seen() != 100 || always.Sampled() != 100 {
		t.Errorf("always: seen %d sampled %d", always.Seen(), always.Sampled())
	}
	if never.Seen() != 100 || never.Sampled() != 0 {
		t.Errorf("never: seen %d sampled %d", never.Seen(), never.Sampled())
	}
}

func TestSamplerRateApproximation(t *testing.T) {
	const n = 100000
	s := NewSampler(42, 0.2)
	hits := 0
	for i := uint64(0); i < n; i++ {
		if s.Decide(i) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.18 || got > 0.22 {
		t.Errorf("rate 0.2 sampled %.4f of %d arrivals", got, n)
	}
}

// TestSamplerDeterministicAcrossGOMAXPROCS pins the core property: the set
// of sampled sequence numbers is a pure function of (seed, rate). Hammering
// Sample from many goroutines must promote exactly the arrivals a serial
// replay of Decide promotes, regardless of scheduling.
func TestSamplerDeterministicAcrossGOMAXPROCS(t *testing.T) {
	const n = 20000
	for _, procs := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		s := NewSampler(7, 0.1)
		var wg sync.WaitGroup
		per := n / procs
		for g := 0; g < procs; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					s.Sample()
				}
			}()
		}
		wg.Wait()

		want := int64(0)
		replay := NewSampler(7, 0.1)
		for i := uint64(0); i < uint64(procs*per); i++ {
			if replay.Decide(i) {
				want++
			}
		}
		if s.Sampled() != want {
			t.Errorf("procs=%d: sampled %d, serial replay says %d", procs, s.Sampled(), want)
		}
		if s.Seen() != int64(procs*per) {
			t.Errorf("procs=%d: seen %d, want %d", procs, s.Seen(), procs*per)
		}
	}
}

// TestSamplerReplay checks two samplers with the same seed and rate make
// identical decisions arrival by arrival.
func TestSamplerReplay(t *testing.T) {
	a := NewSampler(99, 0.33)
	b := NewSampler(99, 0.33)
	diff := NewSampler(100, 0.33)
	same := true
	for i := uint64(0); i < 10000; i++ {
		if a.Decide(i) != b.Decide(i) {
			t.Fatalf("same seed diverged at %d", i)
		}
		if a.Decide(i) != diff.Decide(i) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced an identical 10k-decision sequence")
	}
}
