package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SLO exposition metrics. Burn-rate gauges are refreshed on scrape (the
// /metrics handler and the timeline sampler), not per request.
var (
	mSLOErrors = NewCounter("countryrank_slo_errors_total",
		"responses counted against the availability objective (5xx)")
	mSLOBreaches = NewCounter("countryrank_slo_latency_breaches_total",
		"non-304 responses slower than the latency objective threshold")
	mSLOEligible = NewCounter("countryrank_slo_requests_total",
		"responses examined by the SLO engine")
	mSLODegraded = NewGauge("countryrank_slo_degraded",
		"1 while the fast-burn threshold is tripped and /healthz reports degraded")
	mSLOAvailFast = NewFloatGauge("countryrank_slo_availability_fast_burn",
		"availability burn rate over the fast window (1.0 = spending budget exactly)")
	mSLOAvailSlow = NewFloatGauge("countryrank_slo_availability_slow_burn",
		"availability burn rate over the slow window")
	mSLOLatFast = NewFloatGauge("countryrank_slo_latency_fast_burn",
		"latency burn rate over the fast window")
	mSLOLatSlow = NewFloatGauge("countryrank_slo_latency_slow_burn",
		"latency burn rate over the slow window")
)

// SLOConfig declares the serving objectives and the windows burn rates are
// computed over. Windows are sized in wall time but granular to Bucket, so
// tests compress an hour-shaped policy into milliseconds by scaling all
// three durations together.
type SLOConfig struct {
	// Availability is the target fraction of responses that must not be
	// server errors (5xx), e.g. 0.999. Zero disables the objective.
	Availability float64
	// LatencyTarget is the target fraction of non-304 responses that must
	// complete under LatencyThreshold, e.g. 0.999 of responses < 5ms.
	// Zero disables the objective. 304s are excluded: a revalidation
	// writes no body and would flatter the distribution.
	LatencyTarget    float64
	LatencyThreshold time.Duration
	// Bucket is the counter rotation granularity (default 5s).
	Bucket time.Duration
	// FastWindow and SlowWindow are the burn-rate windows (defaults 5m and
	// 1h). The fast window drives the degraded flip; the slow window gives
	// scrapes the long view.
	FastWindow time.Duration
	SlowWindow time.Duration
	// TripFastBurn degrades /healthz while any objective's fast-window
	// burn rate is at or above it (default 14.4 — the classic "exhausts a
	// 30-day budget in 2 days" page threshold).
	TripFastBurn float64
	// Clock substitutes a fake time source in tests; nil means time.Now.
	Clock func() time.Time
}

func (c *SLOConfig) fill() {
	if c.Bucket <= 0 {
		c.Bucket = 5 * time.Second
	}
	if c.FastWindow <= 0 {
		c.FastWindow = 5 * time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = time.Hour
	}
	if c.SlowWindow < c.FastWindow {
		c.SlowWindow = c.FastWindow
	}
	if c.TripFastBurn <= 0 {
		c.TripFastBurn = 14.4
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

// ParseSLO parses the -slo flag syntax: a comma-separated list of
// key=value clauses. "default" (or "on") selects the defaults.
//
//	availability=99.9            availability target, percent
//	latency=99.9@5ms             latency target percent @ threshold
//	bucket=5s fast=5m slow=1h    rotation granularity and burn windows
//	trip=14.4                    fast-burn degrade threshold
//
// Example: "availability=99.9,latency=99@5ms,fast=1m,slow=30m,trip=10".
func ParseSLO(spec string) (SLOConfig, error) {
	cfg := SLOConfig{Availability: 0.999, LatencyTarget: 0.999, LatencyThreshold: 5 * time.Millisecond}
	cfg.fill()
	if spec == "default" || spec == "on" {
		return cfg, nil
	}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return cfg, fmt.Errorf("obs: slo clause %q is not key=value", clause)
		}
		switch key {
		case "availability":
			pct, err := strconv.ParseFloat(val, 64)
			if err != nil || pct <= 0 || pct >= 100 {
				return cfg, fmt.Errorf("obs: slo availability %q (want percent in (0,100))", val)
			}
			cfg.Availability = pct / 100
		case "latency":
			pctStr, thrStr, ok := strings.Cut(val, "@")
			if !ok {
				return cfg, fmt.Errorf("obs: slo latency %q (want PCT@DURATION)", val)
			}
			pct, err := strconv.ParseFloat(pctStr, 64)
			if err != nil || pct <= 0 || pct >= 100 {
				return cfg, fmt.Errorf("obs: slo latency percent %q", pctStr)
			}
			thr, err := time.ParseDuration(thrStr)
			if err != nil || thr <= 0 {
				return cfg, fmt.Errorf("obs: slo latency threshold %q", thrStr)
			}
			cfg.LatencyTarget, cfg.LatencyThreshold = pct/100, thr
		case "bucket", "fast", "slow":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return cfg, fmt.Errorf("obs: slo %s %q", key, val)
			}
			switch key {
			case "bucket":
				cfg.Bucket = d
			case "fast":
				cfg.FastWindow = d
			case "slow":
				cfg.SlowWindow = d
			}
		case "trip":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 {
				return cfg, fmt.Errorf("obs: slo trip %q", val)
			}
			cfg.TripFastBurn = f
		default:
			return cfg, fmt.Errorf("obs: unknown slo key %q", key)
		}
	}
	if cfg.SlowWindow < cfg.FastWindow {
		return cfg, fmt.Errorf("obs: slo slow window %v shorter than fast %v", cfg.SlowWindow, cfg.FastWindow)
	}
	return cfg, nil
}

// String renders the config back in ParseSLO syntax (for manifests).
func (c SLOConfig) String() string {
	return fmt.Sprintf("availability=%g,latency=%g@%s,bucket=%s,fast=%s,slow=%s,trip=%g",
		c.Availability*100, c.LatencyTarget*100, c.LatencyThreshold,
		c.Bucket, c.FastWindow, c.SlowWindow, c.TripFastBurn)
}

// sloBucket is one rotation bucket. tick stamps which bucket interval the
// counters belong to; a reader ignores buckets whose tick fell out of its
// window, so idle time ages breaches out without any background goroutine.
type sloBucket struct {
	tick     atomic.Int64
	total    atomic.Int64 // all responses
	errors   atomic.Int64 // 5xx
	eligible atomic.Int64 // non-304 (latency-objective population)
	slow     atomic.Int64 // non-304 over the threshold
}

// An SLO tracks availability and latency objectives over sliding
// multi-window counters and derives burn rates: the fraction of the error
// budget being spent, normalized so burn 1.0 consumes the budget exactly
// at the end of the period. Record is on the per-request hot path and
// performs only atomic adds (plus a mutex-guarded bucket rotation once per
// Bucket interval).
type SLO struct {
	cfg     SLOConfig
	buckets []sloBucket
	rotate  sync.Mutex
}

// NewSLO builds the engine; zero-valued config fields take defaults.
func NewSLO(cfg SLOConfig) *SLO {
	cfg.fill()
	n := int(cfg.SlowWindow/cfg.Bucket) + 1
	s := &SLO{cfg: cfg, buckets: make([]sloBucket, n)}
	for i := range s.buckets {
		s.buckets[i].tick.Store(-1)
	}
	return s
}

// Config returns the engine's effective (filled) configuration.
func (s *SLO) Config() SLOConfig { return s.cfg }

// Record accounts one response. notModified marks a 304 revalidation,
// which is excluded from the latency objective's population.
func (s *SLO) Record(status int, latency time.Duration, notModified bool) {
	tick := s.cfg.Clock().UnixNano() / int64(s.cfg.Bucket)
	b := &s.buckets[int(tick%int64(len(s.buckets)))]
	if b.tick.Load() != tick {
		s.rotate.Lock()
		if b.tick.Load() != tick {
			b.total.Store(0)
			b.errors.Store(0)
			b.eligible.Store(0)
			b.slow.Store(0)
			b.tick.Store(tick)
		}
		s.rotate.Unlock()
	}
	mSLOEligible.Inc()
	b.total.Add(1)
	if status >= 500 {
		b.errors.Add(1)
		mSLOErrors.Inc()
	}
	if !notModified {
		b.eligible.Add(1)
		if latency > s.cfg.LatencyThreshold {
			b.slow.Add(1)
			mSLOBreaches.Inc()
		}
	}
}

// WindowCounts is one objective's tally over one window.
type WindowCounts struct {
	Good  int64   `json:"good"`
	Bad   int64   `json:"bad"`
	Total int64   `json:"total"`
	Burn  float64 `json:"burn"`
}

// ObjectiveStatus is one objective in the /debug/slo report.
type ObjectiveStatus struct {
	Name        string       `json:"name"`
	Target      float64      `json:"target"`
	ThresholdMS float64      `json:"threshold_ms,omitempty"`
	Fast        WindowCounts `json:"fast"`
	Slow        WindowCounts `json:"slow"`
}

// SLOStatus is the /debug/slo JSON shape.
type SLOStatus struct {
	BucketSeconds     float64           `json:"bucket_seconds"`
	FastWindowSeconds float64           `json:"fast_window_seconds"`
	SlowWindowSeconds float64           `json:"slow_window_seconds"`
	TripFastBurn      float64           `json:"trip_fast_burn"`
	Objectives        []ObjectiveStatus `json:"objectives"`
	Degraded          bool              `json:"degraded"`
	Reason            string            `json:"reason,omitempty"`
}

// sums tallies the buckets whose tick falls inside the trailing window.
func (s *SLO) sums(window time.Duration) (total, errors, eligible, slow int64) {
	nowTick := s.cfg.Clock().UnixNano() / int64(s.cfg.Bucket)
	minTick := nowTick - int64(window/s.cfg.Bucket) + 1
	for i := range s.buckets {
		b := &s.buckets[i]
		t := b.tick.Load()
		if t < minTick || t > nowTick {
			continue
		}
		total += b.total.Load()
		errors += b.errors.Load()
		eligible += b.eligible.Load()
		slow += b.slow.Load()
	}
	return
}

// burn converts a bad/total ratio into a budget burn rate; an empty window
// burns nothing.
func burn(bad, total int64, target float64) float64 {
	if total == 0 || target >= 1 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - target)
}

// Burns returns the availability and latency fast/slow burn rates.
func (s *SLO) Burns() (availFast, availSlow, latFast, latSlow float64) {
	tot, errs, elig, slow := s.sums(s.cfg.FastWindow)
	availFast = burn(errs, tot, s.cfg.Availability)
	latFast = burn(slow, elig, s.cfg.LatencyTarget)
	tot, errs, elig, slow = s.sums(s.cfg.SlowWindow)
	availSlow = burn(errs, tot, s.cfg.Availability)
	latSlow = burn(slow, elig, s.cfg.LatencyTarget)
	return
}

// Degraded reports whether any enabled objective's fast-window burn rate
// is at or above the trip threshold, and which one tripped first.
func (s *SLO) Degraded() (reason string, degraded bool) {
	availFast, _, latFast, _ := s.Burns()
	if s.cfg.Availability > 0 && availFast >= s.cfg.TripFastBurn {
		return fmt.Sprintf("availability fast burn %.2f >= %.2f", availFast, s.cfg.TripFastBurn), true
	}
	if s.cfg.LatencyTarget > 0 && latFast >= s.cfg.TripFastBurn {
		return fmt.Sprintf("latency fast burn %.2f >= %.2f", latFast, s.cfg.TripFastBurn), true
	}
	return "", false
}

// Status assembles the full /debug/slo report and refreshes the burn-rate
// gauges as a side effect (scrape-driven metric refresh).
func (s *SLO) Status() SLOStatus {
	st := SLOStatus{
		BucketSeconds:     s.cfg.Bucket.Seconds(),
		FastWindowSeconds: s.cfg.FastWindow.Seconds(),
		SlowWindowSeconds: s.cfg.SlowWindow.Seconds(),
		TripFastBurn:      s.cfg.TripFastBurn,
	}
	fTot, fErr, fElig, fSlow := s.sums(s.cfg.FastWindow)
	sTot, sErr, sElig, sSlow := s.sums(s.cfg.SlowWindow)
	if s.cfg.Availability > 0 {
		st.Objectives = append(st.Objectives, ObjectiveStatus{
			Name: "availability", Target: s.cfg.Availability,
			Fast: WindowCounts{Good: fTot - fErr, Bad: fErr, Total: fTot, Burn: burn(fErr, fTot, s.cfg.Availability)},
			Slow: WindowCounts{Good: sTot - sErr, Bad: sErr, Total: sTot, Burn: burn(sErr, sTot, s.cfg.Availability)},
		})
	}
	if s.cfg.LatencyTarget > 0 {
		st.Objectives = append(st.Objectives, ObjectiveStatus{
			Name: "latency", Target: s.cfg.LatencyTarget,
			ThresholdMS: float64(s.cfg.LatencyThreshold) / float64(time.Millisecond),
			Fast:        WindowCounts{Good: fElig - fSlow, Bad: fSlow, Total: fElig, Burn: burn(fSlow, fElig, s.cfg.LatencyTarget)},
			Slow:        WindowCounts{Good: sElig - sSlow, Bad: sSlow, Total: sElig, Burn: burn(sSlow, sElig, s.cfg.LatencyTarget)},
		})
	}
	st.Reason, st.Degraded = s.Degraded()
	s.refreshMetrics()
	return st
}

// refreshMetrics pushes the current burn rates into the registry gauges.
func (s *SLO) refreshMetrics() {
	availFast, availSlow, latFast, latSlow := s.Burns()
	mSLOAvailFast.Set(availFast)
	mSLOAvailSlow.Set(availSlow)
	mSLOLatFast.Set(latFast)
	mSLOLatSlow.Set(latSlow)
	if _, bad := s.Degraded(); bad {
		mSLODegraded.Set(1)
	} else {
		mSLODegraded.Set(0)
	}
}

// defaultSLO is the process-wide engine /debug/slo and /healthz consult.
var defaultSLO atomic.Pointer[SLO]

// SetDefaultSLO installs (or, with nil, clears) the SLO engine behind
// /debug/slo and the /healthz degraded flip.
func SetDefaultSLO(s *SLO) { defaultSLO.Store(s) }

// GetDefaultSLO returns the installed engine, or nil.
func GetDefaultSLO() *SLO { return defaultSLO.Load() }
