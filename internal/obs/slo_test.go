package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a settable time source for window tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func testSLOConfig(clk *fakeClock) SLOConfig {
	return SLOConfig{
		Availability:  0.99,                                         // 1% error budget
		LatencyTarget: 0.9, LatencyThreshold: 10 * time.Millisecond, // 10% budget
		Bucket: time.Second, FastWindow: 5 * time.Second, SlowWindow: 10 * time.Second,
		TripFastBurn: 2,
		Clock:        clk.Now,
	}
}

func approx(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

// TestSLOBurnMath drives hand-computed traffic through one bucket:
//
//	100 non-304 responses: 2 are 5xx, 3 breach the 10ms threshold.
//	availability burn = (2/100) / (1-0.99)  = 2.0
//	latency burn      = (3/100) / (1-0.9)   = 0.3
//
// Then 50 extra 304s join the availability population but must stay out of
// the latency population:
//
//	availability burn = (2/150) / 0.01      = 4/3
//	latency burn unchanged at 0.3 over 100 eligible.
func TestSLOBurnMath(t *testing.T) {
	clk := newFakeClock()
	s := NewSLO(testSLOConfig(clk))
	for i := 0; i < 95; i++ {
		s.Record(200, time.Millisecond, false)
	}
	s.Record(500, time.Millisecond, false)
	s.Record(503, time.Millisecond, false)
	for i := 0; i < 3; i++ {
		s.Record(200, 20*time.Millisecond, false)
	}

	availFast, availSlow, latFast, latSlow := s.Burns()
	if !approx(availFast, 2.0) || !approx(availSlow, 2.0) {
		t.Errorf("availability burn = %g/%g, want 2.0/2.0", availFast, availSlow)
	}
	if !approx(latFast, 0.3) || !approx(latSlow, 0.3) {
		t.Errorf("latency burn = %g/%g, want 0.3/0.3", latFast, latSlow)
	}

	for i := 0; i < 50; i++ {
		s.Record(304, 0, true)
	}
	availFast, _, latFast, _ = s.Burns()
	if !approx(availFast, 2.0/150*100) {
		t.Errorf("availability burn with 304s = %g, want %g", availFast, 2.0/150*100)
	}
	if !approx(latFast, 0.3) {
		t.Errorf("latency burn moved to %g after 304s, want 0.3", latFast)
	}

	st := s.Status()
	if st.Objectives[1].Fast.Total != 100 {
		t.Errorf("latency population = %d, want 100 (304s excluded)", st.Objectives[1].Fast.Total)
	}
	if st.Objectives[0].Fast.Total != 150 || st.Objectives[0].Fast.Bad != 2 {
		t.Errorf("availability fast = %+v", st.Objectives[0].Fast)
	}
	// Availability burn 4/3 sits below the trip threshold of 2.
	if st.Degraded {
		t.Errorf("degraded at burn %g < trip 2: %s", 2.0/150*100, st.Reason)
	}
	if mSLODegraded.Value() != 0 {
		t.Error("countryrank_slo_degraded gauge raised below the trip threshold")
	}
	if got := mSLOLatFast.Value(); !approx(got, 0.3) {
		t.Errorf("latency fast burn gauge = %g, want 0.3", got)
	}
}

// TestSLOWindowAging checks breaches age out of the fast window before the
// slow window, with no traffic needed to recover: burst 10 errors, then
// just move the clock.
func TestSLOWindowAging(t *testing.T) {
	clk := newFakeClock()
	s := NewSLO(testSLOConfig(clk))
	for i := 0; i < 10; i++ {
		s.Record(500, time.Millisecond, false)
	}
	if _, degraded := s.Degraded(); !degraded {
		t.Fatal("10/10 errors did not trip the fast burn")
	}

	clk.Advance(3 * time.Second) // burst still inside the 5s fast window
	if availFast, _, _, _ := s.Burns(); !approx(availFast, 100) {
		t.Errorf("fast burn at +3s = %g, want 100", availFast)
	}

	clk.Advance(3 * time.Second) // +6s: out of fast, still inside slow
	availFast, availSlow, _, _ := s.Burns()
	if availFast != 0 {
		t.Errorf("fast burn at +6s = %g, want 0 (burst aged out)", availFast)
	}
	if !approx(availSlow, 100) {
		t.Errorf("slow burn at +6s = %g, want 100", availSlow)
	}
	if reason, degraded := s.Degraded(); degraded {
		t.Errorf("still degraded at +6s: %s", reason)
	}

	clk.Advance(6 * time.Second) // +12s: out of the 10s slow window too
	if _, availSlow, _, _ := s.Burns(); availSlow != 0 {
		t.Errorf("slow burn at +12s = %g, want 0", availSlow)
	}
}

// TestSLOBucketRecycling advances the clock a full ring lap so a new tick
// lands on a previously used bucket, which must reset rather than
// accumulate stale counts.
func TestSLOBucketRecycling(t *testing.T) {
	clk := newFakeClock()
	s := NewSLO(testSLOConfig(clk))
	if len(s.buckets) != 11 {
		t.Fatalf("ring sized %d, want 11 (slow/bucket + 1)", len(s.buckets))
	}
	for i := 0; i < 5; i++ {
		s.Record(500, time.Millisecond, false)
	}
	clk.Advance(11 * time.Second) // same bucket index, new tick
	s.Record(200, time.Millisecond, false)
	tot, errs, _, _ := s.sums(s.cfg.SlowWindow)
	if tot != 1 || errs != 0 {
		t.Errorf("after recycling: total=%d errors=%d, want 1/0", tot, errs)
	}
}

func TestParseSLO(t *testing.T) {
	cfg, err := ParseSLO("availability=99,latency=95@2ms,bucket=1s,fast=5s,slow=30s,trip=10")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Availability != 0.99 || cfg.LatencyTarget != 0.95 ||
		cfg.LatencyThreshold != 2*time.Millisecond || cfg.Bucket != time.Second ||
		cfg.FastWindow != 5*time.Second || cfg.SlowWindow != 30*time.Second || cfg.TripFastBurn != 10 {
		t.Errorf("parsed %+v", cfg)
	}
	// String round-trips through ParseSLO.
	cfg2, err := ParseSLO(cfg.String())
	if err != nil {
		t.Fatalf("round trip: %v (spec %q)", err, cfg.String())
	}
	if cfg2.Availability != cfg.Availability || cfg2.FastWindow != cfg.FastWindow {
		t.Errorf("round trip drifted: %+v vs %+v", cfg2, cfg)
	}

	def, err := ParseSLO("default")
	if err != nil || def.Availability != 0.999 || def.FastWindow != 5*time.Minute {
		t.Errorf("default = %+v, %v", def, err)
	}

	for _, bad := range []string{
		"availability=0", "availability=100", "availability=x",
		"latency=99", "latency=99@0s", "latency=0@5ms",
		"bucket=-1s", "trip=0", "nonsense=1", "noequals",
		"fast=1h,slow=5m",
	} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("ParseSLO(%q) accepted", bad)
		}
	}
}

// TestSLOHealthzDegradeRecover runs the full loop an operator sees: install
// the engine, burn the budget, watch /healthz flip to 503, age the burst
// out, watch it recover.
func TestSLOHealthzDegradeRecover(t *testing.T) {
	clk := newFakeClock()
	s := NewSLO(testSLOConfig(clk))
	SetDefaultSLO(s)
	defer SetDefaultSLO(nil)
	mux := NewDebugMux()

	healthz := func() (int, string) {
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
		return w.Code, w.Body.String()
	}

	if code, body := healthz(); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("initial healthz = %d %q", code, body)
	}
	for i := 0; i < 20; i++ {
		s.Record(200, 50*time.Millisecond, false) // latency breaches
	}
	code, body := healthz()
	if code != 503 || !strings.Contains(body, "degraded: latency fast burn") {
		t.Fatalf("breached healthz = %d %q", code, body)
	}
	clk.Advance(6 * time.Second) // past the 5s fast window
	if code, body := healthz(); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("recovered healthz = %d %q", code, body)
	}
}

// TestSLOConcurrentRecord hammers Record from many goroutines with an
// advancing clock so bucket rotation races are exercised under -race, then
// checks no response was lost or double-counted.
func TestSLOConcurrentRecord(t *testing.T) {
	var ticks atomic.Int64
	base := time.Unix(2_000_000, 0)
	cfg := SLOConfig{
		Availability: 0.99, LatencyTarget: 0.9, LatencyThreshold: 10 * time.Millisecond,
		Bucket: time.Millisecond, FastWindow: 5 * time.Second, SlowWindow: 10 * time.Second,
		Clock: func() time.Time {
			return base.Add(time.Duration(ticks.Add(1)) * 100 * time.Microsecond)
		},
	}
	s := NewSLO(cfg)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				switch {
				case i%100 == 0:
					s.Record(500, time.Millisecond, false)
				case i%50 == 0:
					s.Record(304, 0, true)
				default:
					s.Record(200, time.Millisecond, false)
				}
			}
		}(w)
	}
	wg.Wait()
	tot, errs, elig, _ := s.sums(cfg.SlowWindow)
	if tot != workers*per {
		t.Errorf("total = %d, want %d", tot, workers*per)
	}
	if errs != workers*per/100 {
		t.Errorf("errors = %d, want %d", errs, workers*per/100)
	}
	// i%100==0 wins over i%50==0, so each worker records per/100 304s.
	want304 := per / 100
	if elig != int64(workers*(per-want304)) {
		t.Errorf("eligible = %d, want %d (304s excluded)", elig, workers*(per-want304))
	}
}
