package obs

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// A Trace records a hierarchy of timed stages. Start opens a span under the
// most recently started still-open span (the common single-threaded nesting
// of a pipeline run); concurrent sections attach children to an explicit
// parent with Span.Child instead. Structure is best-effort under
// concurrency — spans never cycle, but interleaved Start calls from
// different goroutines may parent to whichever span is current.
type Trace struct {
	mu      sync.Mutex
	roots   []*Span
	current *Span

	// OnStart and OnEnd, when set, are invoked for every span as it opens
	// and closes — the hook -progress style streaming reports attach to.
	// Set them before the first Start; they run outside the trace lock.
	OnStart func(*Span)
	OnEnd   func(*Span)
}

// DefaultTrace is the process-wide trace the pipeline records into.
var DefaultTrace = &Trace{}

// A Span is one timed stage. It is safe to add items and children from
// multiple goroutines; End must be called exactly once.
type Span struct {
	Name  string
	trace *Trace

	parent   *Span
	children []*Span
	start    time.Time
	dur      time.Duration
	ended    bool
	depth    int

	items atomic.Int64
	unit  string
}

// Start opens a root-or-nested span in the trace.
func (t *Trace) Start(name string) *Span {
	s := &Span{Name: name, trace: t, start: time.Now()}
	t.mu.Lock()
	if t.current != nil && !t.current.ended {
		s.parent = t.current
		s.depth = t.current.depth + 1
		t.current.children = append(t.current.children, s)
	} else {
		t.roots = append(t.roots, s)
	}
	t.current = s
	hook := t.OnStart
	t.mu.Unlock()
	if hook != nil {
		hook(s)
	}
	return s
}

// StartSpan opens a span in the DefaultTrace.
func StartSpan(name string) *Span { return DefaultTrace.Start(name) }

// Child opens a nested span under s without moving the trace's current
// pointer, which makes it safe to call from fan-out goroutines.
func (s *Span) Child(name string) *Span {
	c := &Span{Name: name, trace: s.trace, parent: s, depth: s.depth + 1, start: time.Now()}
	t := s.trace
	t.mu.Lock()
	s.children = append(s.children, c)
	hook := t.OnStart
	t.mu.Unlock()
	if hook != nil {
		hook(c)
	}
	return c
}

// AddItems accumulates a work count on the span (trials run, records
// decoded…); unit names the count in reports. The last non-empty unit wins.
func (s *Span) AddItems(n int64, unit string) {
	s.items.Add(n)
	if unit != "" {
		s.trace.mu.Lock()
		s.unit = unit
		s.trace.mu.Unlock()
	}
}

// End closes the span, returns its duration, and fires the trace's OnEnd
// hook. When slog's debug level is enabled the span also emits a structured
// stage log (stage, duration, items).
func (s *Span) End() time.Duration {
	d := time.Since(s.start)
	t := s.trace
	t.mu.Lock()
	if !s.ended {
		s.dur = d
		s.ended = true
		if t.current == s {
			t.current = s.parent
		}
	}
	hook := t.OnEnd
	t.mu.Unlock()
	if hook != nil {
		hook(s)
	}
	if l := slog.Default(); l.Enabled(context.Background(), slog.LevelDebug) {
		items, unit := s.Items()
		attrs := []slog.Attr{
			slog.String("stage", s.Name),
			slog.Duration("duration", d),
		}
		if items > 0 {
			attrs = append(attrs, slog.Int64(nonEmpty(unit, "items"), items))
		}
		l.LogAttrs(context.Background(), slog.LevelDebug, "stage done", attrs...)
	}
	return d
}

func nonEmpty(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}

// Duration returns the span's measured duration (elapsed time so far when
// the span is still open).
func (s *Span) Duration() time.Duration {
	s.trace.mu.Lock()
	ended, d := s.ended, s.dur
	s.trace.mu.Unlock()
	if ended {
		return d
	}
	return time.Since(s.start)
}

// Depth returns the span's nesting depth (0 for roots).
func (s *Span) Depth() int { return s.depth }

// Items returns the span's own item count and unit.
func (s *Span) Items() (int64, string) {
	s.trace.mu.Lock()
	unit := s.unit
	s.trace.mu.Unlock()
	return s.items.Load(), unit
}

// TotalItems sums the span's items with all its descendants'; the unit is
// the first non-empty one found depth-first.
func (s *Span) TotalItems() (int64, string) {
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	return s.totalLocked()
}

func (s *Span) totalLocked() (int64, string) {
	n, unit := s.items.Load(), s.unit
	for _, c := range s.children {
		cn, cu := c.totalLocked()
		n += cn
		if unit == "" {
			unit = cu
		}
	}
	return n, unit
}

// Render formats the recorded spans as an indented tree with durations,
// item counts, and each child's share of its parent — the one-shot stage
// report.
func (t *Trace) Render() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	for _, s := range t.roots {
		s.renderLocked(&b, 0, 0)
	}
	return b.String()
}

func (s *Span) renderLocked(b *strings.Builder, indent int, parentDur time.Duration) {
	d := s.dur
	if !s.ended {
		d = time.Since(s.start)
	}
	fmt.Fprintf(b, "%*s%-*s %10s", indent*2, "", 32-indent*2, s.Name, d.Round(time.Microsecond))
	if parentDur > 0 {
		fmt.Fprintf(b, " %5.1f%%", 100*float64(d)/float64(parentDur))
	}
	if n := s.items.Load(); n > 0 {
		fmt.Fprintf(b, "  [%d %s]", n, nonEmpty(s.unit, "items"))
	}
	if !s.ended {
		b.WriteString("  (open)")
	}
	b.WriteByte('\n')
	for _, c := range s.children {
		c.renderLocked(b, indent+1, d)
	}
}

// Reset discards all recorded spans (primarily for tests).
func (t *Trace) Reset() {
	t.mu.Lock()
	t.roots = nil
	t.current = nil
	t.mu.Unlock()
}
