package obs

import (
	"context"
	"fmt"
	"log/slog"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// A Trace records a hierarchy of timed stages. Start opens a span under the
// most recently started still-open span (the common single-threaded nesting
// of a pipeline run); concurrent sections attach children to an explicit
// parent with Span.Child instead. Structure is best-effort under
// concurrency — spans never cycle, but interleaved Start calls from
// different goroutines may parent to whichever span is current.
type Trace struct {
	mu      sync.Mutex
	roots   []*Span
	current *Span
	nextID  uint64

	// OnStart and OnEnd, when set, are invoked for every span as it opens
	// and closes — the hook -progress style streaming reports attach to.
	// Set them before the first Start; they run outside the trace lock.
	OnStart func(*Span)
	OnEnd   func(*Span)
}

// DefaultTrace is the process-wide trace the pipeline records into.
var DefaultTrace = &Trace{}

// A Span is one timed stage. It is safe to add items and children from
// multiple goroutines; End must be called exactly once.
type Span struct {
	Name  string
	trace *Trace

	id       uint64
	parent   *Span
	children []*Span
	start    time.Time
	dur      time.Duration
	ended    bool
	depth    int

	items atomic.Int64
	unit  string

	attrs  []SpanAttr
	events []SpanEvent
}

// A SpanAttr is one key/value annotation on a span, carried into the
// exported trace (and shown as args in Perfetto).
type SpanAttr struct {
	Key   string
	Value any
}

// A SpanEvent is a timestamped point-in-time marker inside a span,
// exported as an instant event on the span's track.
type SpanEvent struct {
	Name string
	At   time.Time
}

// Start opens a root-or-nested span in the trace.
func (t *Trace) Start(name string) *Span {
	s := &Span{Name: name, trace: t, start: time.Now()}
	t.mu.Lock()
	t.nextID++
	s.id = t.nextID
	if t.current != nil && !t.current.ended {
		s.parent = t.current
		s.depth = t.current.depth + 1
		t.current.children = append(t.current.children, s)
	} else {
		t.roots = append(t.roots, s)
	}
	t.current = s
	hook := t.OnStart
	t.mu.Unlock()
	if hook != nil {
		hook(s)
	}
	return s
}

// StartSpan opens a span in the DefaultTrace.
func StartSpan(name string) *Span { return DefaultTrace.Start(name) }

// StartDetached opens a span that records against t (IDs, attrs, events,
// End) but is not linked into the trace's root list or current-pointer
// nesting. Detached spans are for high-churn per-request tracing: they are
// reclaimed by the GC as soon as the caller drops them, so a long-running
// server does not accumulate an unbounded span tree.
func (t *Trace) StartDetached(name string) *Span {
	s := &Span{Name: name, trace: t, start: time.Now()}
	t.mu.Lock()
	t.nextID++
	s.id = t.nextID
	t.mu.Unlock()
	return s
}

// Child opens a nested span under s without moving the trace's current
// pointer, which makes it safe to call from fan-out goroutines.
func (s *Span) Child(name string) *Span {
	c := &Span{Name: name, trace: s.trace, parent: s, depth: s.depth + 1, start: time.Now()}
	t := s.trace
	t.mu.Lock()
	t.nextID++
	c.id = t.nextID
	s.children = append(s.children, c)
	hook := t.OnStart
	t.mu.Unlock()
	if hook != nil {
		hook(c)
	}
	return c
}

// ID returns the span's trace-unique identifier (1-based, in start order).
func (s *Span) ID() uint64 { return s.id }

// SetAttr attaches (or replaces) a key/value annotation on the span. Values
// should be JSON-encodable; they surface in the exported Chrome trace args.
func (s *Span) SetAttr(key string, value any) {
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, SpanAttr{Key: key, Value: value})
}

// Attrs returns a copy of the span's annotations.
func (s *Span) Attrs() []SpanAttr {
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanAttr, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Event records a timestamped marker inside the span (a retry, a phase
// boundary…), exported as an instant event on the span's trace track.
func (s *Span) Event(name string) {
	ev := SpanEvent{Name: name, At: time.Now()}
	t := s.trace
	t.mu.Lock()
	s.events = append(s.events, ev)
	t.mu.Unlock()
}

// Events returns a copy of the span's recorded events.
func (s *Span) Events() []SpanEvent {
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanEvent, len(s.events))
	copy(out, s.events)
	return out
}

// AddItems accumulates a work count on the span (trials run, records
// decoded…); unit names the count in reports. The last non-empty unit wins.
func (s *Span) AddItems(n int64, unit string) {
	s.items.Add(n)
	if unit != "" {
		s.trace.mu.Lock()
		s.unit = unit
		s.trace.mu.Unlock()
	}
}

// End closes the span, returns its duration, and fires the trace's OnEnd
// hook. When slog's debug level is enabled the span also emits a structured
// stage log (stage, duration, items).
func (s *Span) End() time.Duration {
	d := time.Since(s.start)
	t := s.trace
	t.mu.Lock()
	if !s.ended {
		s.dur = d
		s.ended = true
		if t.current == s {
			t.current = s.parent
		}
	}
	hook := t.OnEnd
	t.mu.Unlock()
	if hook != nil {
		hook(s)
	}
	if l := slog.Default(); l.Enabled(context.Background(), slog.LevelDebug) {
		items, unit := s.Items()
		attrs := []slog.Attr{
			slog.String("stage", s.Name),
			slog.Duration("duration", d),
		}
		if items > 0 {
			attrs = append(attrs, slog.Int64(nonEmpty(unit, "items"), items))
			if d > 0 {
				attrs = append(attrs, slog.String("rate", formatRate(float64(items)/d.Seconds())+"/s"))
			}
		}
		l.LogAttrs(context.Background(), slog.LevelDebug, "stage done", attrs...)
	}
	return d
}

func nonEmpty(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}

// Duration returns the span's measured duration (elapsed time so far when
// the span is still open).
func (s *Span) Duration() time.Duration {
	s.trace.mu.Lock()
	ended, d := s.ended, s.dur
	s.trace.mu.Unlock()
	if ended {
		return d
	}
	return time.Since(s.start)
}

// Depth returns the span's nesting depth (0 for roots).
func (s *Span) Depth() int { return s.depth }

// Items returns the span's own item count and unit.
func (s *Span) Items() (int64, string) {
	s.trace.mu.Lock()
	unit := s.unit
	s.trace.mu.Unlock()
	return s.items.Load(), unit
}

// TotalItems sums the span's items with all its descendants'; the unit is
// the first non-empty one found depth-first.
func (s *Span) TotalItems() (int64, string) {
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	return s.totalLocked()
}

func (s *Span) totalLocked() (int64, string) {
	n, unit := s.items.Load(), s.unit
	for _, c := range s.children {
		cn, cu := c.totalLocked()
		n += cn
		if unit == "" {
			unit = cu
		}
	}
	return n, unit
}

// Render formats the recorded spans as an indented tree with durations,
// item counts, and each child's share of its parent — the one-shot stage
// report.
func (t *Trace) Render() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	for _, s := range t.roots {
		s.renderLocked(&b, 0, 0)
	}
	return b.String()
}

func (s *Span) renderLocked(b *strings.Builder, indent int, parentDur time.Duration) {
	d := s.dur
	if !s.ended {
		d = time.Since(s.start)
	}
	// Deep trees would drive the name padding negative past depth 16, which
	// %-*s rejects ("%!(BADWIDTH)"); clamp so arbitrarily deep spans render.
	pad := 32 - indent*2
	if pad < 0 {
		pad = 0
	}
	fmt.Fprintf(b, "%*s%-*s %10s", indent*2, "", pad, s.Name, d.Round(time.Microsecond))
	if parentDur > 0 {
		fmt.Fprintf(b, " %5.1f%%", 100*float64(d)/float64(parentDur))
	}
	if n := s.items.Load(); n > 0 {
		fmt.Fprintf(b, "  [%d %s", n, nonEmpty(s.unit, "items"))
		if d > 0 {
			fmt.Fprintf(b, ", %s/s", formatRate(float64(n)/d.Seconds()))
		}
		b.WriteByte(']')
	}
	if !s.ended {
		b.WriteString("  (open)")
	}
	b.WriteByte('\n')
	for _, c := range s.children {
		c.renderLocked(b, indent+1, d)
	}
}

// formatRate renders an items-per-second rate compactly: whole numbers once
// the rate is fast, three significant digits below that.
func formatRate(r float64) string {
	if r >= 100 {
		return strconv.FormatFloat(r, 'f', 0, 64)
	}
	return strconv.FormatFloat(r, 'g', 3, 64)
}

// Reset discards all recorded spans (primarily for tests).
func (t *Trace) Reset() {
	t.mu.Lock()
	t.roots = nil
	t.current = nil
	t.mu.Unlock()
}
