package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// A Timeline samples selected registry metrics at a fixed interval into a
// ring buffer, giving long-running work (collector sessions, stability
// sweeps) metric *history* instead of a point-in-time scrape: /debug/timeline
// serves the buffer as JSON, and Sparkline renders a terminal summary.
// Sampling walks the registry's locked snapshot once per tick, far off any
// hot path; the ring bounds memory no matter how long the run lives.
type Timeline struct {
	reg      *Registry
	interval time.Duration
	names    []string

	mu      sync.Mutex
	start   time.Time
	buf     []timelineSample
	head    int // next write position once the ring is full
	n       int
	dropped int64

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

type timelineSample struct {
	offset time.Duration
	values []float64
}

// NewTimeline builds a sampler over r at the given interval, keeping the
// most recent capacity samples (default 600 when capacity <= 0). With no
// names, every metric registered at Start time is sampled (histograms as
// their _count/_sum series); otherwise only the named series are.
func NewTimeline(r *Registry, interval time.Duration, capacity int, names ...string) *Timeline {
	if capacity <= 0 {
		capacity = 600
	}
	if interval <= 0 {
		interval = time.Second
	}
	return &Timeline{
		reg:      r,
		interval: interval,
		names:    append([]string{}, names...),
		buf:      make([]timelineSample, 0, capacity),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start takes an immediate baseline sample and begins ticking on a
// background goroutine until Stop.
func (t *Timeline) Start() {
	t.mu.Lock()
	t.start = time.Now()
	if len(t.names) == 0 {
		for name := range t.reg.Snapshot() {
			t.names = append(t.names, name)
		}
		sort.Strings(t.names)
	}
	t.mu.Unlock()
	t.sample()
	go func() {
		defer close(t.done)
		tick := time.NewTicker(t.interval)
		defer tick.Stop()
		for {
			select {
			case <-t.stop:
				return
			case <-tick.C:
				t.sample()
			}
		}
	}()
}

// Stop halts sampling and records one final sample so the end state is
// always captured. Safe to call more than once.
func (t *Timeline) Stop() {
	t.stopOnce.Do(func() {
		close(t.stop)
		<-t.done
		t.sample()
	})
}

func (t *Timeline) sample() {
	// The tick is the scrape cadence for pull-refreshed series: runtime
	// self-metrics and SLO burn gauges update here so a -timeline run can
	// replay req/s alongside burn rate and the daemon's own health.
	RefreshRuntimeMetrics()
	if s := GetDefaultSLO(); s != nil {
		s.refreshMetrics()
	}
	snap := t.reg.Snapshot()
	t.mu.Lock()
	defer t.mu.Unlock()
	vals := make([]float64, len(t.names))
	for i, name := range t.names {
		vals[i] = toFloat(snap[name])
	}
	s := timelineSample{offset: time.Since(t.start), values: vals}
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, s)
		return
	}
	t.buf[t.head] = s
	t.head = (t.head + 1) % len(t.buf)
	t.dropped++
}

func toFloat(v any) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	default:
		return 0
	}
}

// TimelineData is the JSON shape of a timeline snapshot: per-series value
// arrays aligned with offsets_ms (milliseconds since sampling started).
type TimelineData struct {
	IntervalSeconds float64              `json:"interval_seconds"`
	Start           string               `json:"start"`
	OffsetsMS       []int64              `json:"offsets_ms"`
	Series          map[string][]float64 `json:"series"`
	DroppedSamples  int64                `json:"dropped_samples,omitempty"`
}

// Snapshot copies the ring (oldest sample first) into a JSON-able report.
func (t *Timeline) Snapshot() TimelineData {
	t.mu.Lock()
	defer t.mu.Unlock()
	ordered := make([]timelineSample, 0, len(t.buf))
	if t.dropped > 0 {
		ordered = append(ordered, t.buf[t.head:]...)
		ordered = append(ordered, t.buf[:t.head]...)
	} else {
		ordered = append(ordered, t.buf...)
	}
	d := TimelineData{
		IntervalSeconds: t.interval.Seconds(),
		Start:           t.start.UTC().Format(time.RFC3339),
		OffsetsMS:       make([]int64, len(ordered)),
		Series:          make(map[string][]float64, len(t.names)),
		DroppedSamples:  t.dropped,
	}
	for i, name := range t.names {
		col := make([]float64, len(ordered))
		for j, s := range ordered {
			col[j] = s.values[i]
		}
		d.Series[name] = col
	}
	for j, s := range ordered {
		d.OffsetsMS[j] = s.offset.Milliseconds()
	}
	return d
}

var sparkBlocks = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a one-line-per-series terminal summary of the sampled
// window: first and last values plus a min-max-normalized block sparkline
// over the most recent samples (at most 64 per series).
func (t *Timeline) Sparkline() string {
	d := t.Snapshot()
	names := make([]string, 0, len(d.Series))
	for name := range d.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		vals := d.Series[name]
		if len(vals) > 64 {
			vals = vals[len(vals)-64:]
		}
		if len(vals) == 0 {
			continue
		}
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		runes := make([]rune, len(vals))
		for i, v := range vals {
			k := 0
			if hi > lo {
				k = int((v - lo) / (hi - lo) * float64(len(sparkBlocks)-1))
			}
			runes[i] = sparkBlocks[k]
		}
		fmt.Fprintf(&b, "%-56s %12g → %-12g %s\n", name, vals[0], vals[len(vals)-1], string(runes))
	}
	return b.String()
}

// defaultTimeline is the process-wide timeline /debug/timeline serves.
var defaultTimeline atomic.Pointer[Timeline]

// SetDefaultTimeline installs (or, with nil, clears) the timeline served at
// /debug/timeline.
func SetDefaultTimeline(t *Timeline) { defaultTimeline.Store(t) }

// GetDefaultTimeline returns the installed timeline, or nil.
func GetDefaultTimeline() *Timeline { return defaultTimeline.Load() }
