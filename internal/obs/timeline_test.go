package obs

import (
	"strings"
	"testing"
	"time"
)

// TestTimelineSampling drives a counter while a fast timeline samples it
// and checks the series is non-empty, aligned, and non-decreasing.
func TestTimelineSampling(t *testing.T) {
	r := &Registry{}
	c := r.Counter("countryrank_test_tl_total", "")
	g := r.Gauge("countryrank_test_tl_busy", "")
	tl := NewTimeline(r, time.Millisecond, 128)
	tl.Start()
	for i := 0; i < 50; i++ {
		c.Inc()
		g.Set(int64(i % 5))
		time.Sleep(500 * time.Microsecond)
	}
	tl.Stop()
	tl.Stop() // idempotent

	d := tl.Snapshot()
	if d.IntervalSeconds != 0.001 {
		t.Errorf("IntervalSeconds = %v", d.IntervalSeconds)
	}
	series := d.Series["countryrank_test_tl_total"]
	if len(series) < 2 {
		t.Fatalf("series too short: %d samples", len(series))
	}
	if len(d.OffsetsMS) != len(series) {
		t.Fatalf("offsets (%d) misaligned with series (%d)", len(d.OffsetsMS), len(series))
	}
	for i := 1; i < len(series); i++ {
		if series[i] < series[i-1] {
			t.Fatalf("counter series decreased at %d: %v", i, series)
		}
		if d.OffsetsMS[i] < d.OffsetsMS[i-1] {
			t.Fatalf("offsets not monotonic at %d: %v", i, d.OffsetsMS)
		}
	}
	// Stop takes a final sample, so the last value is the end state.
	if last := series[len(series)-1]; last != 50 {
		t.Errorf("final sample = %v, want 50", last)
	}
	if first := series[0]; first != 0 {
		t.Errorf("baseline sample = %v, want 0", first)
	}
}

// TestTimelineRing checks the ring buffer drops oldest samples and reports
// the drop count once capacity is exceeded.
func TestTimelineRing(t *testing.T) {
	r := &Registry{}
	c := r.Counter("countryrank_test_ring_total", "")
	tl := NewTimeline(r, time.Hour, 4, "countryrank_test_ring_total")
	tl.start = time.Now()
	for i := 0; i < 10; i++ {
		c.Inc()
		tl.sample()
	}
	d := tl.Snapshot()
	series := d.Series["countryrank_test_ring_total"]
	if len(series) != 4 {
		t.Fatalf("ring kept %d samples, want 4", len(series))
	}
	if d.DroppedSamples != 6 {
		t.Errorf("DroppedSamples = %d, want 6", d.DroppedSamples)
	}
	// Oldest-first: the 4 newest samples are counter values 7..10.
	want := []float64{7, 8, 9, 10}
	for i, v := range want {
		if series[i] != v {
			t.Fatalf("series = %v, want %v", series, want)
		}
	}
}

// TestTimelineSelectedNames checks name filtering and missing-name safety.
func TestTimelineSelectedNames(t *testing.T) {
	r := &Registry{}
	r.Counter("countryrank_test_sel_a_total", "").Add(5)
	r.Counter("countryrank_test_sel_b_total", "").Add(9)
	tl := NewTimeline(r, time.Hour, 8,
		"countryrank_test_sel_a_total", "countryrank_test_sel_missing_total")
	tl.start = time.Now()
	tl.sample()
	d := tl.Snapshot()
	if len(d.Series) != 2 {
		t.Fatalf("series = %v, want exactly the 2 selected names", d.Series)
	}
	if got := d.Series["countryrank_test_sel_a_total"][0]; got != 5 {
		t.Errorf("selected series sample = %v, want 5", got)
	}
	if got := d.Series["countryrank_test_sel_missing_total"][0]; got != 0 {
		t.Errorf("missing metric should sample as 0, got %v", got)
	}
	if _, ok := d.Series["countryrank_test_sel_b_total"]; ok {
		t.Error("unselected metric leaked into the timeline")
	}
}

// TestTimelineSparkline checks the terminal rendering mentions each series
// and draws blocks.
func TestTimelineSparkline(t *testing.T) {
	r := &Registry{}
	c := r.Counter("countryrank_test_spark_total", "")
	tl := NewTimeline(r, time.Hour, 64, "countryrank_test_spark_total")
	tl.start = time.Now()
	for i := 0; i < 16; i++ {
		c.Add(int64(i))
		tl.sample()
	}
	out := tl.Sparkline()
	if !strings.Contains(out, "countryrank_test_spark_total") {
		t.Errorf("sparkline missing series name:\n%s", out)
	}
	if !strings.ContainsRune(out, '▁') || !strings.ContainsRune(out, '█') {
		t.Errorf("sparkline missing min/max blocks:\n%s", out)
	}
}

// TestDefaultTimeline checks the /debug/timeline installation point.
func TestDefaultTimeline(t *testing.T) {
	if GetDefaultTimeline() != nil {
		t.Skip("another test left a default timeline installed")
	}
	tl := NewTimeline(&Registry{}, time.Hour, 4)
	SetDefaultTimeline(tl)
	if GetDefaultTimeline() != tl {
		t.Error("default timeline not installed")
	}
	SetDefaultTimeline(nil)
	if GetDefaultTimeline() != nil {
		t.Error("default timeline not cleared")
	}
}
