package par

import (
	"runtime"
	"sync"
)

// OrderedMap runs produce(i) for every i in [0, n) across at most
// min(n, GOMAXPROCS) goroutines and feeds each result to consume(i, v) in
// strict index order on the caller's goroutine. It is the pipelined variant
// of ForEach for fan-outs whose merge must be deterministic AND must not
// hold every partial result at once: at most window results (default
// workers+1) exist between production and consumption, so a worker that
// runs far ahead of the merge blocks instead of accumulating memory.
//
// With GOMAXPROCS=1 the calls run inline, strictly alternating
// produce(i), consume(i), in index order.
func OrderedMap[T any](n int, window int, produce func(int) T, consume func(int, T)) {
	if n <= 0 {
		return
	}
	mLoops.Inc()
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		mBusy.Add(1)
		for i := 0; i < n; i++ {
			consume(i, produce(i))
			mTasks.Inc()
		}
		mBusy.Add(-1)
		return
	}
	if window <= workers {
		window = workers + 1
	}
	if window > n {
		window = n
	}

	type slot struct {
		v     T
		ready bool
	}
	var (
		mu       sync.Mutex
		produced = sync.NewCond(&mu) // signalled when a slot becomes ready
		consumed = sync.NewCond(&mu) // signalled when the merge frees a slot
		slots    = make([]slot, window)
		next     int // next index to claim for production
		done     int // next index the consumer will merge
		wg       sync.WaitGroup
	)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mBusy.Add(1)
			defer mBusy.Add(-1)
			for {
				mu.Lock()
				i := next
				if i >= n {
					mu.Unlock()
					return
				}
				next++
				// Backpressure: wait until the merge has freed this
				// index's slot in the ring.
				for i-done >= window {
					consumed.Wait()
				}
				mu.Unlock()

				v := produce(i)
				mTasks.Inc()

				mu.Lock()
				slots[i%window] = slot{v: v, ready: true}
				produced.Broadcast()
				mu.Unlock()
			}
		}()
	}

	// The caller's goroutine is the merge: strictly ascending index order.
	for done < n {
		mu.Lock()
		for !slots[done%window].ready {
			produced.Wait()
		}
		v := slots[done%window].v
		slots[done%window] = slot{} // release the value for GC
		mu.Unlock()

		consume(done, v)

		mu.Lock()
		done++
		consumed.Broadcast()
		mu.Unlock()
	}
	wg.Wait()
}
