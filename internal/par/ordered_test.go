package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestOrderedMapConsumesInOrder(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		var seen []int
		OrderedMap(n, 0, func(i int) int { return i * i }, func(i, v int) {
			if v != i*i {
				t.Fatalf("n=%d: consume(%d) got %d, want %d", n, i, v, i*i)
			}
			seen = append(seen, i)
		})
		if len(seen) != n {
			t.Fatalf("n=%d: consumed %d values", n, len(seen))
		}
		for i, v := range seen {
			if v != i {
				t.Fatalf("n=%d: consume order %v", n, seen)
			}
		}
	}
}

func TestOrderedMapProducesEachOnce(t *testing.T) {
	const n = 500
	var produced [n]int32
	var consumed int32
	OrderedMap(n, 3, func(i int) int {
		atomic.AddInt32(&produced[i], 1)
		return i
	}, func(i, v int) {
		consumed++
	})
	if consumed != n {
		t.Fatalf("consumed %d, want %d", consumed, n)
	}
	for i := range produced {
		if produced[i] != 1 {
			t.Fatalf("produce(%d) ran %d times", i, produced[i])
		}
	}
}

// TestOrderedMapBoundedWindow proves backpressure: with a slow consumer, a
// producer can never run more than the window ahead of the merge point.
func TestOrderedMapBoundedWindow(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 {
		t.Skip("needs parallel workers to observe the window")
	}
	const n = 200
	window := workers + 1
	var done int64 // consumer progress, read by producers
	var maxAhead int64
	OrderedMap(n, window, func(i int) int {
		if ahead := int64(i) - atomic.LoadInt64(&done); ahead > atomic.LoadInt64(&maxAhead) {
			atomic.StoreInt64(&maxAhead, ahead)
		}
		return i
	}, func(i, v int) {
		atomic.StoreInt64(&done, int64(i)+1)
	})
	// A produce(i) only starts once i-done < window held at claim time; the
	// observation above races the consumer by at most one step.
	if maxAhead > int64(window)+1 {
		t.Fatalf("producer ran %d ahead of consumer, window %d", maxAhead, window)
	}
}

func TestOrderedMapInlineAtOneProc(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	// With one proc the calls must strictly alternate produce(i), consume(i).
	var trace []int
	OrderedMap(5, 0, func(i int) int {
		trace = append(trace, i)
		return i
	}, func(i, v int) {
		trace = append(trace, -i-1)
	})
	want := []int{0, -1, 1, -2, 2, -3, 3, -4, 4, -5}
	if len(trace) != len(want) {
		t.Fatalf("trace %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}
