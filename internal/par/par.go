// Package par provides the bounded fork-join helpers the pipeline's
// embarrassingly-parallel loops share. Work is distributed over at most
// GOMAXPROCS goroutines via an atomic work counter, mirroring the
// propagation pool in routing.BuildCollection; callers keep determinism by
// writing each task's result to its own slot and merging sequentially.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"countryrank/internal/obs"
)

var (
	mLoops = obs.NewCounter("countryrank_par_loops_total",
		"fork-join fan-outs executed (ForEach and Do calls)")
	mTasks = obs.NewCounter("countryrank_par_tasks_total",
		"individual tasks executed by the worker pool")
	mBusy = obs.NewGauge("countryrank_par_workers_busy",
		"worker goroutines currently executing tasks")
)

// ForEach runs fn(i) for every i in [0, n), distributing the calls over at
// most min(n, GOMAXPROCS) goroutines, and returns once all calls have
// completed. fn must be safe for concurrent use; with GOMAXPROCS=1 the
// calls run inline in index order.
func ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	mLoops.Inc()
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		mBusy.Add(1)
		for i := 0; i < n; i++ {
			fn(i)
			mTasks.Inc()
		}
		mBusy.Add(-1)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mBusy.Add(1)
			defer mBusy.Add(-1)
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
				mTasks.Inc()
			}
		}()
	}
	wg.Wait()
}

// Do runs the given functions concurrently and waits for all of them.
func Do(fns ...func()) {
	ForEach(len(fns), func(i int) { fns[i]() })
}
