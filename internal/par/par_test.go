package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversEachIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000} {
		hits := make([]atomic.Int32, n)
		ForEach(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, got)
			}
		}
	}
}

func TestDoRunsAll(t *testing.T) {
	var a, b, c atomic.Bool
	Do(func() { a.Store(true) }, func() { b.Store(true) }, func() { c.Store(true) })
	if !a.Load() || !b.Load() || !c.Load() {
		t.Fatal("Do returned before all funcs ran")
	}
}
