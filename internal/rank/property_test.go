package rank

import (
	"testing"
	"testing/quick"

	"countryrank/internal/asn"
)

// TestRankingWellFormed checks structural invariants over random value maps:
// ranks are dense 1..n, values descend, lookups agree with entries.
func TestRankingWellFormed(t *testing.T) {
	f := func(vals map[uint16]uint32) bool {
		m := make(map[asn.ASN]float64, len(vals))
		for a, v := range vals {
			m[asn.ASN(a)+1] = float64(v) / float64(1<<32)
		}
		r := New("q", m, nil, false)
		if r.Len() != len(m) {
			return false
		}
		for i, e := range r.Entries {
			if e.Rank != i+1 {
				return false
			}
			if i > 0 {
				prev := r.Entries[i-1]
				if prev.Value < e.Value {
					return false
				}
				if prev.Value == e.Value && prev.ASN >= e.ASN {
					return false
				}
			}
			if rk, ok := r.RankOf(e.ASN); !ok || rk != e.Rank {
				return false
			}
			if r.ValueOf(e.ASN) != e.Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDeltaConsistency checks that Delta's rank movements are consistent
// with the two rankings for random inputs.
func TestDeltaConsistency(t *testing.T) {
	f := func(oldVals, newVals map[uint8]uint16) bool {
		toMap := func(in map[uint8]uint16) map[asn.ASN]float64 {
			out := map[asn.ASN]float64{}
			for a, v := range in {
				out[asn.ASN(a)+1] = float64(v)
			}
			return out
		}
		o := New("old", toMap(oldVals), nil, false)
		n := New("new", toMap(newVals), nil, false)
		for _, d := range Delta(o, n, 10) {
			nr, ok := n.RankOf(d.ASN)
			if !ok || nr != d.Rank {
				return false
			}
			or, wasRanked := o.RankOf(d.ASN)
			if wasRanked != d.WasRanked {
				return false
			}
			if wasRanked && or-nr != d.RankDelta {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
