// Package rank turns metric score maps into ordered rankings and computes
// the cross-snapshot deltas the paper's temporal tables (10 and 11) report.
package rank

import (
	"cmp"
	"fmt"
	"slices"
	"strings"

	"countryrank/internal/asn"
	"countryrank/internal/countries"
)

// ASInfo annotates an AS for presentation.
type ASInfo struct {
	Name    string
	Country countries.Code
}

// InfoFunc resolves presentation metadata for an AS.
type InfoFunc func(asn.ASN) ASInfo

// Entry is one ranked AS.
type Entry struct {
	Rank  int // 1-based
	ASN   asn.ASN
	Value float64
	Info  ASInfo
}

// Ranking is a descending ordering of ASes by metric value. Ties break by
// ascending ASN so rankings are deterministic.
type Ranking struct {
	Metric  string
	Entries []Entry
	byASN   map[asn.ASN]int // ASN → index into Entries
}

// New builds a ranking from metric values. ASes with zero value are kept
// (they may matter for NDCG padding) unless dropZero is set.
func New(metric string, values map[asn.ASN]float64, info InfoFunc, dropZero bool) *Ranking {
	r := &Ranking{Metric: metric}
	r.Entries = make([]Entry, 0, len(values))
	for a, v := range values {
		if dropZero && v == 0 {
			continue
		}
		e := Entry{ASN: a, Value: v}
		if info != nil {
			e.Info = info(a)
		}
		r.Entries = append(r.Entries, e)
	}
	slices.SortFunc(r.Entries, func(a, b Entry) int {
		if a.Value != b.Value {
			if a.Value > b.Value {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.ASN, b.ASN)
	})
	r.byASN = make(map[asn.ASN]int, len(r.Entries))
	for i := range r.Entries {
		r.Entries[i].Rank = i + 1
		r.byASN[r.Entries[i].ASN] = i
	}
	return r
}

// Len returns the number of ranked ASes.
func (r *Ranking) Len() int { return len(r.Entries) }

// Top returns the first k entries.
func (r *Ranking) Top(k int) []Entry {
	if k > len(r.Entries) {
		k = len(r.Entries)
	}
	return r.Entries[:k]
}

// TopASNs returns the first k ASNs (the TRA of §3.3).
func (r *Ranking) TopASNs(k int) []asn.ASN {
	top := r.Top(k)
	out := make([]asn.ASN, len(top))
	for i, e := range top {
		out[i] = e.ASN
	}
	return out
}

// RankOf returns a's 1-based rank, or 0 and false when unranked.
func (r *Ranking) RankOf(a asn.ASN) (int, bool) {
	i, ok := r.byASN[a]
	if !ok {
		return 0, false
	}
	return i + 1, true
}

// ValueOf returns a's metric value (0 when unranked).
func (r *Ranking) ValueOf(a asn.ASN) float64 {
	if i, ok := r.byASN[a]; ok {
		return r.Entries[i].Value
	}
	return 0
}

// Values returns the ranking as a value map, e.g. for NDCG relevances.
func (r *Ranking) Values() map[asn.ASN]float64 {
	out := make(map[asn.ASN]float64, len(r.Entries))
	for _, e := range r.Entries {
		out[e.ASN] = e.Value
	}
	return out
}

// DeltaEntry describes one AS's movement between two snapshots, as in
// Tables 10 and 11.
type DeltaEntry struct {
	Rank      int // rank in the new snapshot
	ASN       asn.ASN
	Info      ASInfo
	NewValue  float64
	RankDelta int     // old rank − new rank (positive = climbed); 0 if new
	ValueDiff float64 // new − old value
	WasRanked bool
}

// Delta compares the new snapshot's top k against the old ranking.
func Delta(old, new *Ranking, k int) []DeltaEntry {
	var out []DeltaEntry
	for _, e := range new.Top(k) {
		d := DeltaEntry{Rank: e.Rank, ASN: e.ASN, Info: e.Info, NewValue: e.Value}
		if oldRank, ok := old.RankOf(e.ASN); ok {
			d.WasRanked = true
			d.RankDelta = oldRank - e.Rank
			d.ValueDiff = e.Value - old.ValueOf(e.ASN)
		}
		out = append(out, d)
	}
	return out
}

// Render prints the top k as an aligned table.
func (r *Ranking) Render(k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (top %d)\n", r.Metric, k)
	for _, e := range r.Top(k) {
		fmt.Fprintf(&b, "%3d. AS%-7d %-24s %-3s %6.2f%%\n",
			e.Rank, uint32(e.ASN), e.Info.Name, e.Info.Country, 100*e.Value)
	}
	return b.String()
}
