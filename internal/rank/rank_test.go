package rank

import (
	"strings"
	"testing"

	"countryrank/internal/asn"
)

func info(a asn.ASN) ASInfo {
	names := map[asn.ASN]ASInfo{
		1221: {Name: "Telstra", Country: "AU"},
		4826: {Name: "Vocus", Country: "AU"},
		1299: {Name: "Arelion", Country: "SE"},
	}
	return names[a]
}

func TestNewOrderingAndTies(t *testing.T) {
	r := New("CCI", map[asn.ASN]float64{1221: 0.4, 4826: 0.8, 1299: 0.8, 7545: 0}, info, false)
	if r.Len() != 4 {
		t.Fatalf("Len = %d", r.Len())
	}
	// 1299 and 4826 tie at 0.8: the lower ASN wins.
	want := []asn.ASN{1299, 4826, 1221, 7545}
	for i, e := range r.Entries {
		if e.ASN != want[i] || e.Rank != i+1 {
			t.Errorf("entry %d = %+v, want %v", i, e, want[i])
		}
	}
	if rk, ok := r.RankOf(1221); !ok || rk != 3 {
		t.Errorf("RankOf(1221) = %d,%v", rk, ok)
	}
	if _, ok := r.RankOf(9999); ok {
		t.Error("unranked AS should miss")
	}
	if v := r.ValueOf(4826); v != 0.8 {
		t.Errorf("ValueOf = %f", v)
	}
	if v := r.ValueOf(9999); v != 0 {
		t.Errorf("ValueOf(unranked) = %f", v)
	}
}

func TestDropZero(t *testing.T) {
	r := New("AHN", map[asn.ASN]float64{1: 0.5, 2: 0}, nil, true)
	if r.Len() != 1 || r.Entries[0].ASN != 1 {
		t.Errorf("dropZero kept %+v", r.Entries)
	}
}

func TestTopAndTopASNs(t *testing.T) {
	r := New("m", map[asn.ASN]float64{1: 3, 2: 2, 3: 1}, nil, false)
	if got := r.TopASNs(2); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("TopASNs = %v", got)
	}
	if got := r.Top(99); len(got) != 3 {
		t.Errorf("Top overflow = %v", got)
	}
	vals := r.Values()
	if len(vals) != 3 || vals[1] != 3 {
		t.Errorf("Values = %v", vals)
	}
}

func TestDelta(t *testing.T) {
	old := New("CCI", map[asn.ASN]float64{10: 0.9, 20: 0.8, 30: 0.7}, nil, false)
	new_ := New("CCI", map[asn.ASN]float64{20: 0.95, 10: 0.85, 40: 0.5}, nil, false)
	d := Delta(old, new_, 3)
	if len(d) != 3 {
		t.Fatalf("delta = %+v", d)
	}
	// 20 climbed from 2 to 1.
	if d[0].ASN != 20 || d[0].RankDelta != 1 || !d[0].WasRanked {
		t.Errorf("d[0] = %+v", d[0])
	}
	if diff := d[0].ValueDiff; diff < 0.149 || diff > 0.151 {
		t.Errorf("value diff = %f", diff)
	}
	// 10 slipped from 1 to 2.
	if d[1].ASN != 10 || d[1].RankDelta != -1 {
		t.Errorf("d[1] = %+v", d[1])
	}
	// 40 is new.
	if d[2].ASN != 40 || d[2].WasRanked {
		t.Errorf("d[2] = %+v", d[2])
	}
}

func TestRender(t *testing.T) {
	r := New("CCI Australia", map[asn.ASN]float64{1221: 0.44, 4826: 0.81}, info, false)
	out := r.Render(2)
	if !strings.Contains(out, "Vocus") || !strings.Contains(out, "Telstra") || !strings.Contains(out, "81.00%") {
		t.Errorf("render:\n%s", out)
	}
}
