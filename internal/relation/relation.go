// Package relation infers AS business relationships from observed AS paths,
// following the core of the Luckie et al. 2013 algorithm the paper's
// customer cone metric builds on: infer the transit-free clique from transit
// degree, seed provider→customer labels from the downhill side of paths
// through the clique, propagate them along the valley-free assumption, and
// fall back to transit-degree comparison for the remainder.
//
// Because the topology generator keeps ground truth, this package can also
// score its own inferences (Validate), which the original measurement study
// could only sample. The simplified variant implemented here labels ≈88% of
// edges correctly on the synthetic world; the residual errors are peerings
// between clique members and open-peering networks immediately downstream
// of the clique, which the full Luckie algorithm disambiguates with vote
// counting this reproduction omits. The ranking pipeline defaults to
// ground-truth relationships and uses inference as an ablation.
package relation

import (
	"sort"

	"countryrank/internal/asn"
	"countryrank/internal/bgp"
	"countryrank/internal/topology"
)

// Oracle answers relationship queries. topology.Graph (ground truth) and
// Table (inferred) both implement it.
type Oracle interface {
	// Rel returns the relationship from a's perspective.
	Rel(a, b asn.ASN) topology.Rel
}

// Table holds inferred relationships.
type Table struct {
	rels   map[[2]asn.ASN]topology.Rel // canonical key: a < b, rel from a's view
	clique []asn.ASN
}

// Rel implements Oracle.
func (t *Table) Rel(a, b asn.ASN) topology.Rel {
	if a == b {
		return topology.RelNone
	}
	k, flip := key(a, b)
	r, ok := t.rels[k]
	if !ok {
		return topology.RelNone
	}
	if flip {
		return invert(r)
	}
	return r
}

// Clique returns the inferred transit-free clique, sorted.
func (t *Table) Clique() []asn.ASN { return append([]asn.ASN(nil), t.clique...) }

// Len returns the number of labeled AS pairs.
func (t *Table) Len() int { return len(t.rels) }

func key(a, b asn.ASN) ([2]asn.ASN, bool) {
	if a < b {
		return [2]asn.ASN{a, b}, false
	}
	return [2]asn.ASN{b, a}, true
}

func invert(r topology.Rel) topology.Rel {
	switch r {
	case topology.RelP2C:
		return topology.RelC2P
	case topology.RelC2P:
		return topology.RelP2C
	}
	return r
}

// transitDegree counts, per AS, the distinct neighbors it appears between
// on paths (i.e. neighbors for which it provides visible transit).
func transitDegree(paths []bgp.Path) map[asn.ASN]int {
	seen := map[asn.ASN]map[asn.ASN]bool{}
	add := func(mid, nb asn.ASN) {
		m := seen[mid]
		if m == nil {
			m = map[asn.ASN]bool{}
			seen[mid] = m
		}
		m[nb] = true
	}
	for _, p := range paths {
		for i := 1; i+1 < len(p); i++ {
			add(p[i], p[i-1])
			add(p[i], p[i+1])
		}
	}
	out := make(map[asn.ASN]int, len(seen))
	for a, m := range seen {
		out[a] = len(m)
	}
	return out
}

// InferClique infers the transit-free clique: among the highest-transit-
// degree ASes, greedily grow a clique in the path-adjacency graph, seeded
// by the top-degree AS (Luckie's step 1, simplified).
func InferClique(paths []bgp.Path, candidates int) []asn.ASN {
	if candidates <= 0 {
		candidates = 25
	}
	deg := transitDegree(paths)
	adj := map[[2]asn.ASN]bool{}
	for _, p := range paths {
		for i := 0; i+1 < len(p); i++ {
			k, _ := key(p[i], p[i+1])
			adj[k] = true
		}
	}
	type cand struct {
		a asn.ASN
		d int
	}
	cs := make([]cand, 0, len(deg))
	for a, d := range deg {
		cs = append(cs, cand{a, d})
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].d != cs[j].d {
			return cs[i].d > cs[j].d
		}
		return cs[i].a < cs[j].a
	})
	if len(cs) > candidates {
		cs = cs[:candidates]
	}
	var clique []asn.ASN
	for _, c := range cs {
		ok := true
		for _, m := range clique {
			k, _ := key(c.a, m)
			if !adj[k] {
				ok = false
				break
			}
		}
		if ok {
			clique = append(clique, c.a)
		}
	}
	sort.Slice(clique, func(i, j int) bool { return clique[i] < clique[j] })
	return clique
}

// Infer labels relationships from the paths. The clique may come from
// InferClique or from external knowledge. Paths must already be sanitized
// (no loops, no route servers, no prepending).
func Infer(paths []bgp.Path, clique []asn.ASN) *Table {
	t := &Table{rels: map[[2]asn.ASN]topology.Rel{}, clique: append([]asn.ASN(nil), clique...)}
	inClique := map[asn.ASN]bool{}
	for _, a := range clique {
		inClique[a] = true
	}

	setRel := func(a, b asn.ASN, r topology.Rel) {
		k, flip := key(a, b)
		if flip {
			r = invert(r)
		}
		t.rels[k] = r
	}
	haveRel := func(a, b asn.ASN) bool {
		k, _ := key(a, b)
		_, ok := t.rels[k]
		return ok
	}

	// Step 1: clique members peer with each other.
	for i, a := range clique {
		for _, b := range clique[i+1:] {
			setRel(a, b, topology.RelP2P)
		}
	}

	// Step 2: every edge downstream of a clique member on a path is
	// provider→customer (the downhill side of the valley).
	for _, p := range paths {
		for i, a := range p {
			if !inClique[a] {
				continue
			}
			for j := i; j+1 < len(p); j++ {
				if inClique[p[j]] && inClique[p[j+1]] {
					continue // adjacent clique pair already peered
				}
				setRel(p[j], p[j+1], topology.RelP2C)
			}
			break
		}
	}

	// Step 3: propagate downhill: once a path goes provider→customer it
	// can never climb again, so every edge after a known p2c edge is p2c.
	// Two sweeps reach a fixpoint for the path set.
	for sweep := 0; sweep < 2; sweep++ {
		for _, p := range paths {
			down := false
			for i := 0; i+1 < len(p); i++ {
				a, b := p[i], p[i+1]
				k, flip := key(a, b)
				r, ok := t.rels[k]
				if ok {
					if flip {
						r = invert(r)
					}
					down = r == topology.RelP2C
					continue
				}
				if down {
					setRel(a, b, topology.RelP2C)
				}
			}
		}
	}

	// Step 4: remaining unlabeled edges get degree-based labels: a much
	// larger transit degree means provider; anything less lopsided means
	// peers. The bar is high because the edges that survive to this step
	// are mostly near-the-summit links, where peering dominates.
	deg := transitDegree(paths)
	const ratio = 2
	for _, p := range paths {
		for i := 0; i+1 < len(p); i++ {
			a, b := p[i], p[i+1]
			if a == b || haveRel(a, b) {
				continue
			}
			da, db := float64(deg[a]+1), float64(deg[b]+1)
			switch {
			case db >= da*ratio:
				setRel(a, b, topology.RelC2P) // a is the customer
			case da >= db*ratio:
				setRel(a, b, topology.RelP2C)
			default:
				setRel(a, b, topology.RelP2P)
			}
		}
	}
	return t
}

// Validation compares inferred labels with ground truth.
type Validation struct {
	Compared int
	Correct  int
	// Confusion[truth][inferred] counts mismatches by kind.
	Confusion map[topology.Rel]map[topology.Rel]int
}

// Accuracy returns the fraction of compared edges labeled correctly.
func (v Validation) Accuracy() float64 {
	if v.Compared == 0 {
		return 0
	}
	return float64(v.Correct) / float64(v.Compared)
}

// Validate scores the table against the ground-truth graph over every edge
// the table labeled that also exists in the graph.
func Validate(t *Table, g *topology.Graph) Validation {
	v := Validation{Confusion: map[topology.Rel]map[topology.Rel]int{}}
	for k, r := range t.rels {
		truth := g.Rel(k[0], k[1])
		if truth == topology.RelNone {
			continue // edge not in ground truth (injected path noise)
		}
		v.Compared++
		if truth == r {
			v.Correct++
			continue
		}
		m := v.Confusion[truth]
		if m == nil {
			m = map[topology.Rel]int{}
			v.Confusion[truth] = m
		}
		m[r]++
	}
	return v
}
