package relation

import (
	"testing"

	"countryrank/internal/asn"
	"countryrank/internal/bgp"
	"countryrank/internal/geoloc"
	"countryrank/internal/routing"
	"countryrank/internal/sanitize"
	"countryrank/internal/topology"
)

func TestTableRelSymmetry(t *testing.T) {
	tbl := &Table{rels: map[[2]asn.ASN]topology.Rel{}}
	k, _ := key(1, 2)
	tbl.rels[k] = topology.RelP2C // 1 provider of 2
	if tbl.Rel(1, 2) != topology.RelP2C || tbl.Rel(2, 1) != topology.RelC2P {
		t.Error("p2c symmetry broken")
	}
	k2, flip := key(5, 3)
	if !flip {
		t.Fatal("key should canonicalize order")
	}
	tbl.rels[k2] = topology.RelP2P
	if tbl.Rel(3, 5) != topology.RelP2P || tbl.Rel(5, 3) != topology.RelP2P {
		t.Error("p2p symmetry broken")
	}
	if tbl.Rel(1, 9) != topology.RelNone || tbl.Rel(1, 1) != topology.RelNone {
		t.Error("absent relations should be none")
	}
}

func TestInferCliqueFigure1(t *testing.T) {
	// Figure 1 paths: the three peers A(10), B(20), C(30) transit the most.
	paths := []bgp.Path{
		{70, 10, 30, 40, 50},
		{70, 10, 30, 40, 60},
		{80, 20, 30, 40, 50},
		{80, 20, 30, 40, 60},
		{70, 10, 20, 80},
		{80, 20, 10, 70},
		{50, 40, 30, 10, 70},
		{50, 40, 30, 20, 80},
	}
	clique := InferClique(paths, 5)
	want := map[asn.ASN]bool{10: true, 20: true, 30: true}
	if len(clique) < 3 {
		t.Fatalf("clique = %v", clique)
	}
	for _, a := range clique {
		if !want[a] && a != 40 {
			t.Errorf("unexpected clique member %v", a)
		}
	}
	for w := range want {
		found := false
		for _, a := range clique {
			if a == w {
				found = true
			}
		}
		if !found {
			t.Errorf("clique missing %v", w)
		}
	}
}

func TestInferDownhillFromClique(t *testing.T) {
	paths := []bgp.Path{
		{70, 10, 30, 40, 50},
		{80, 20, 30, 40, 60},
	}
	tbl := Infer(paths, []asn.ASN{10, 20, 30})
	if tbl.Rel(30, 40) != topology.RelP2C {
		t.Errorf("30-40 = %v, want p2c", tbl.Rel(30, 40))
	}
	if tbl.Rel(40, 50) != topology.RelP2C || tbl.Rel(40, 60) != topology.RelP2C {
		t.Error("downhill propagation failed")
	}
	if tbl.Rel(10, 20) != topology.RelP2P || tbl.Rel(10, 30) != topology.RelP2P {
		t.Error("clique pairs should peer")
	}
	if tbl.Len() == 0 || len(tbl.Clique()) != 3 {
		t.Error("table accessors wrong")
	}
}

// TestInferOnWorld validates inference accuracy against generator ground
// truth: the headline capability the synthetic substrate adds.
func TestInferOnWorld(t *testing.T) {
	w := topology.Build(topology.Config{Seed: 11, StubScale: 0.12, VPScale: 0.15})
	col := routing.BuildCollection(w, routing.BuildOptions{})
	clique := map[asn.ASN]bool{}
	for _, a := range w.Clique {
		clique[a] = true
	}
	ds := sanitize.Run(col, sanitize.Config{
		Clique:       clique,
		Registry:     w.Graph.Registry(),
		RouteServers: w.Graph.RouteServers(),
		GeoTable:     geoloc.GeolocatePrefixes(w.Geo, col.AnnouncedPrefixes(), 0.5),
	})
	// Deduplicate paths before inference.
	seen := map[string]bool{}
	var paths []bgp.Path
	for i := 0; i < ds.Len(); i++ {
		_, _, p := ds.Record(i)
		k := p.Key()
		if !seen[k] {
			seen[k] = true
			paths = append(paths, p)
		}
	}

	inferredClique := InferClique(paths, 25)
	gt := map[asn.ASN]bool{}
	for _, a := range w.Clique {
		gt[a] = true
	}
	hits := 0
	for _, a := range inferredClique {
		if gt[a] {
			hits++
		}
	}
	if hits < len(inferredClique)*3/4 || hits < 8 {
		t.Errorf("inferred clique %v matches only %d ground-truth members", inferredClique, hits)
	}

	tbl := Infer(paths, inferredClique)
	val := Validate(tbl, w.Graph)
	if val.Compared < 500 {
		t.Fatalf("too few compared edges: %d", val.Compared)
	}
	// The simplified Luckie variant reaches ≈88% on this world; the residual
	// errors are clique↔open-peer edges (see the package comment).
	if acc := val.Accuracy(); acc < 0.85 {
		t.Errorf("inference accuracy = %.3f, want ≥ 0.85 (confusion: %v)", acc, val.Confusion)
	}
}

func TestValidateEmpty(t *testing.T) {
	v := Validation{}
	if v.Accuracy() != 0 {
		t.Error("empty validation accuracy should be 0")
	}
}

func TestInferDegreeFallback(t *testing.T) {
	// No clique given: a high-transit-degree middle AS becomes the provider
	// of the low-degree edge ASes.
	paths := []bgp.Path{
		{1, 100, 2},
		{3, 100, 4},
		{5, 100, 6},
		{1, 100, 4},
		{3, 100, 2},
	}
	tbl := Infer(paths, nil)
	if tbl.Rel(100, 2) != topology.RelP2C {
		t.Errorf("100-2 = %v, want p2c via degree", tbl.Rel(100, 2))
	}
	if tbl.Rel(1, 100) != topology.RelC2P {
		t.Errorf("1-100 = %v, want c2p via degree", tbl.Rel(1, 100))
	}
}
