package ribstore

import (
	"fmt"
	"os"
	"path/filepath"
)

// BucketSet is the intermediate of an external group-by: the records of a
// Set partitioned into numbered buckets, each small enough to load, sort
// and emit in memory. Stream order is preserved within every bucket, so a
// stable in-bucket sort reproduces exactly what the same stable sort over
// the whole resident stream would have produced.
type BucketSet struct {
	dirs []string
}

// Buckets partitions every record of s into n bucket runs under dir,
// bucketOf mapping each record to a bucket in [0, n). The spilled-export
// path uses it with a key-range bucketOf (e.g. prefix-index ranges) so
// that concatenating buckets 0..n-1 respects the outer sort key.
func (s *Set) Buckets(dir string, n int, bucketOf func(Rec) int) (*BucketSet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ribstore: %d buckets", n)
	}
	bs := &BucketSet{dirs: make([]string, n)}
	writers := make([]*Writer, n)
	for i := range writers {
		bs.dirs[i] = filepath.Join(dir, fmt.Sprintf("bucket-%04d", i))
		// Small per-bucket output buffers: up to a few hundred files are
		// open at once, so the default megabyte buffer would dominate RSS.
		w, err := newWriterSize(bs.dirs[i], 64<<10)
		if err != nil {
			return nil, err
		}
		if err := w.NextRun(i); err != nil {
			return nil, err
		}
		writers[i] = w
	}
	var one [1]Rec
	err := s.ForEach(func(_ int, recs []Rec) error {
		for _, r := range recs {
			b := bucketOf(r)
			if b < 0 || b >= n {
				return fmt.Errorf("ribstore: record bucketed to %d of %d", b, n)
			}
			one[0] = r
			if err := writers[b].Append(one[:]); err != nil {
				return err
			}
		}
		return nil
	})
	for _, w := range writers {
		if cerr := w.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return nil, err
	}
	return bs, nil
}

// Len returns the number of buckets.
func (b *BucketSet) Len() int { return len(b.dirs) }

// AppendBucket appends every record of bucket i to dst, in the order they
// were streamed in, and returns the extended slice.
func (b *BucketSet) AppendBucket(dst []Rec, i int) ([]Rec, error) {
	set, err := OpenDir(b.dirs[i])
	if err != nil {
		return dst, err
	}
	defer set.Close()
	err = set.ForEach(func(_ int, recs []Rec) error {
		dst = append(dst, recs...)
		return nil
	})
	return dst, err
}

// Remove deletes the bucket files.
func (b *BucketSet) Remove() error {
	var err error
	for _, d := range b.dirs {
		if rerr := os.RemoveAll(d); err == nil {
			err = rerr
		}
	}
	return err
}
