// Package ribstore implements the out-of-core columnar record store behind
// internet-scale collection builds: the (VP, prefix, path) triples that
// dominate a collection's memory are written to disk in shard-ordered runs
// of a compact columnar format and streamed back in fixed-size chunks, so a
// run over millions of prefixes keeps only the dense side tables (prefixes,
// origins, interned paths) resident.
//
// On-disk layout, one file per run (run-NNNN.crib):
//
//	offset 0:  magic "CRIB" (4 bytes)
//	offset 4:  u16 format version (currently 1)
//	offset 6:  u16 reserved (0)
//	offset 8:  u32 shard index the run was merged from
//	offset 12: u64 record count of the run
//	offset 20: row groups, each:
//	             u32 n       — records in the group (≤ GroupSize)
//	             u32 crc32   — IEEE CRC of the 12·n payload bytes
//	             payload     — vp[n], prefix[n], path[n]: little-endian
//	                           int32 columns, in that order
//	footer:    magic "BIRC" + u64 record count again
//
// All integers are little-endian. The trailing footer makes truncation
// detectable (a cut file ends mid-group or without the footer) and the
// per-group CRC makes corruption detectable without re-reading the whole
// file to verify a single global checksum.
package ribstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Rec is one observed (vantage point, prefix, AS path) triple in dense-index
// form: the unit the paper's Table 1 accounts for. VP indexes the world's
// vp.Set, Prefix the collection's prefix table, Path its interned path table.
type Rec struct {
	VP     int32
	Prefix int32
	Path   int32
}

const (
	magic       = "CRIB"
	footerMagic = "BIRC"
	version     = 1
	headerLen   = 20
	footerLen   = 12

	// GroupSize is the row-group granularity: 64Ki records ≈ 768 KiB of
	// column payload per group, large enough to amortize CRC and syscall
	// cost, small enough that a streaming reader's buffer stays modest.
	GroupSize = 64 * 1024
)

// recBytes is the encoded size of one record across the three columns.
const recBytes = 12

var crcTable = crc32.IEEETable

// Writer spills records into run files under a directory. Runs are numbered
// in creation order; a shard-ordered merge that calls NextRun at each shard
// boundary therefore produces runs whose concatenation is the canonical
// record order.
type Writer struct {
	dir     string
	bufSize int
	runs    int
	file    *os.File
	buf     *bufio.Writer
	shard   uint32
	runRecs uint64
	bytes   int64

	// group accumulates up to GroupSize records before a flush.
	group []Rec
	// scratch holds one encoded group payload.
	scratch []byte
}

// NewWriter prepares a spill writer rooted at dir, creating it if needed.
// No run file exists until the first NextRun call.
func NewWriter(dir string) (*Writer, error) {
	return newWriterSize(dir, 1<<20)
}

// newWriterSize is NewWriter with an explicit output buffer size, for
// fan-out writers (Buckets) that hold many files open at once.
func newWriterSize(dir string, bufSize int) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ribstore: create spill dir: %w", err)
	}
	return &Writer{dir: dir, bufSize: bufSize}, nil
}

// NextRun closes the current run (if any) and starts a new one attributed
// to the given shard index.
func (w *Writer) NextRun(shard int) error {
	if err := w.closeRun(); err != nil {
		return err
	}
	path := filepath.Join(w.dir, fmt.Sprintf("run-%06d.crib", w.runs))
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("ribstore: create run: %w", err)
	}
	w.runs++
	w.file = f
	w.buf = bufio.NewWriterSize(f, w.bufSize)
	w.shard = uint32(shard)
	w.runRecs = 0

	var hdr [headerLen]byte
	copy(hdr[:4], magic)
	binary.LittleEndian.PutUint16(hdr[4:], version)
	binary.LittleEndian.PutUint32(hdr[8:], w.shard)
	// Record count back-patched at closeRun via a second write; the header
	// slot is zero until then so a crash mid-run reads as truncated.
	if _, err := w.buf.Write(hdr[:]); err != nil {
		return err
	}
	w.bytes += headerLen
	return nil
}

// Append spills records to the current run. NextRun must have been called.
func (w *Writer) Append(recs []Rec) error {
	if w.file == nil {
		return errors.New("ribstore: Append before NextRun")
	}
	for len(recs) > 0 {
		room := GroupSize - len(w.group)
		if room > len(recs) {
			room = len(recs)
		}
		w.group = append(w.group, recs[:room]...)
		recs = recs[room:]
		if len(w.group) == GroupSize {
			if err := w.flushGroup(); err != nil {
				return err
			}
		}
	}
	return nil
}

// flushGroup encodes and writes the pending row group.
func (w *Writer) flushGroup() error {
	n := len(w.group)
	if n == 0 {
		return nil
	}
	need := n * recBytes
	if cap(w.scratch) < need {
		w.scratch = make([]byte, need)
	}
	p := w.scratch[:need]
	// Columnar within the group: all VPs, then all prefixes, then all paths.
	for i, r := range w.group {
		binary.LittleEndian.PutUint32(p[4*i:], uint32(r.VP))
	}
	for i, r := range w.group {
		binary.LittleEndian.PutUint32(p[4*(n+i):], uint32(r.Prefix))
	}
	for i, r := range w.group {
		binary.LittleEndian.PutUint32(p[4*(2*n+i):], uint32(r.Path))
	}
	var gh [8]byte
	binary.LittleEndian.PutUint32(gh[0:], uint32(n))
	binary.LittleEndian.PutUint32(gh[4:], crc32.Checksum(p, crcTable))
	if _, err := w.buf.Write(gh[:]); err != nil {
		return err
	}
	if _, err := w.buf.Write(p); err != nil {
		return err
	}
	w.bytes += int64(8 + len(p))
	w.runRecs += uint64(n)
	w.group = w.group[:0]
	return nil
}

// closeRun flushes the pending group, writes the footer, back-patches the
// header record count, and closes the file. Empty runs are kept: a valid
// zero-record run is still a boundary marker.
func (w *Writer) closeRun() error {
	if w.file == nil {
		return nil
	}
	if err := w.flushGroup(); err != nil {
		return err
	}
	var ft [footerLen]byte
	copy(ft[:4], footerMagic)
	binary.LittleEndian.PutUint64(ft[4:], w.runRecs)
	if _, err := w.buf.Write(ft[:]); err != nil {
		return err
	}
	w.bytes += footerLen
	if err := w.buf.Flush(); err != nil {
		return err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], w.runRecs)
	if _, err := w.file.WriteAt(cnt[:], 12); err != nil {
		return err
	}
	err := w.file.Close()
	w.file = nil
	w.buf = nil
	return err
}

// Close finishes the last run. The writer must not be used after.
func (w *Writer) Close() error { return w.closeRun() }

// Bytes returns the total bytes written so far, including headers/footers.
func (w *Writer) Bytes() int64 { return w.bytes }

// Runs returns how many runs have been started.
func (w *Writer) Runs() int { return w.runs }

// Set is an ordered collection of spill runs opened for streaming reads.
type Set struct {
	dir   string
	paths []string
	count int64
}

// OpenDir opens every run file under dir, in run order, validating headers
// and footers. The per-group CRCs are verified lazily during ForEach.
func OpenDir(dir string) (*Set, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ribstore: open spill dir: %w", err)
	}
	s := &Set{dir: dir}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".crib" {
			continue
		}
		s.paths = append(s.paths, filepath.Join(dir, e.Name()))
	}
	sort.Strings(s.paths)
	if len(s.paths) == 0 {
		return nil, fmt.Errorf("ribstore: no run files in %s", dir)
	}
	for _, p := range s.paths {
		n, err := validateRun(p)
		if err != nil {
			return nil, err
		}
		s.count += n
	}
	return s, nil
}

// validateRun checks a run's header and footer and returns its record count.
func validateRun(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var hdr [headerLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, fmt.Errorf("ribstore: %s: truncated header: %w", path, err)
	}
	if string(hdr[:4]) != magic {
		return 0, fmt.Errorf("ribstore: %s: bad magic %q", path, hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != version {
		return 0, fmt.Errorf("ribstore: %s: unsupported version %d", path, v)
	}
	n := binary.LittleEndian.Uint64(hdr[12:])
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if st.Size() < headerLen+footerLen {
		return 0, fmt.Errorf("ribstore: %s: truncated run", path)
	}
	var ft [footerLen]byte
	if _, err := f.ReadAt(ft[:], st.Size()-footerLen); err != nil {
		return 0, fmt.Errorf("ribstore: %s: footer: %w", path, err)
	}
	if string(ft[:4]) != footerMagic {
		return 0, fmt.Errorf("ribstore: %s: truncated or corrupt run (missing footer)", path)
	}
	if fn := binary.LittleEndian.Uint64(ft[4:]); fn != n {
		return 0, fmt.Errorf("ribstore: %s: header/footer record count mismatch (%d vs %d)", path, n, fn)
	}
	return int64(n), nil
}

// Len returns the total record count across all runs.
func (s *Set) Len() int { return int(s.count) }

// Runs returns the number of run files in the set.
func (s *Set) Runs() int { return len(s.paths) }

// ForEach streams every record in run order, invoking fn with the absolute
// index of the chunk's first record and a chunk of decoded records. The
// chunk slice is reused between calls; fn must copy whatever it keeps.
// Group CRCs are verified as the stream advances; a mismatch, a short
// group, or a missing footer aborts with an error.
func (s *Set) ForEach(fn func(base int, recs []Rec) error) error {
	base := 0
	buf := make([]byte, GroupSize*recBytes)
	recs := make([]Rec, GroupSize)
	for _, path := range s.paths {
		n, err := s.forEachRun(path, buf, recs, base, fn)
		if err != nil {
			return err
		}
		base += n
	}
	return nil
}

func (s *Set) forEachRun(path string, buf []byte, recs []Rec, base int, fn func(int, []Rec) error) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("ribstore: %s: header: %w", path, err)
	}
	want := binary.LittleEndian.Uint64(hdr[12:])
	read := uint64(0)
	for read < want {
		var gh [8]byte
		if _, err := io.ReadFull(r, gh[:]); err != nil {
			return 0, fmt.Errorf("ribstore: %s: truncated group header: %w", path, err)
		}
		n := int(binary.LittleEndian.Uint32(gh[0:]))
		if n <= 0 || n > GroupSize || read+uint64(n) > want {
			return 0, fmt.Errorf("ribstore: %s: implausible group size %d", path, n)
		}
		p := buf[:n*recBytes]
		if _, err := io.ReadFull(r, p); err != nil {
			return 0, fmt.Errorf("ribstore: %s: truncated group: %w", path, err)
		}
		if got, wantCRC := crc32.Checksum(p, crcTable), binary.LittleEndian.Uint32(gh[4:]); got != wantCRC {
			return 0, fmt.Errorf("ribstore: %s: group CRC mismatch at record %d (corrupt spill file)", path, base+int(read))
		}
		out := recs[:n]
		for i := range out {
			out[i] = Rec{
				VP:     int32(binary.LittleEndian.Uint32(p[4*i:])),
				Prefix: int32(binary.LittleEndian.Uint32(p[4*(n+i):])),
				Path:   int32(binary.LittleEndian.Uint32(p[4*(2*n+i):])),
			}
		}
		if err := fn(base+int(read), out); err != nil {
			return 0, err
		}
		read += uint64(n)
	}
	var ft [footerLen]byte
	if _, err := io.ReadFull(r, ft[:]); err != nil || string(ft[:4]) != footerMagic {
		return 0, fmt.Errorf("ribstore: %s: truncated or corrupt run (missing footer)", path)
	}
	return int(read), nil
}

// Close releases the set. Run files are opened per ForEach pass, so Close
// only exists to satisfy the store contract (and future mmap readers).
func (s *Set) Close() error { return nil }
