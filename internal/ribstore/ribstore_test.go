package ribstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// genRecs builds a deterministic record sequence long enough to span
// multiple row groups.
func genRecs(n int) []Rec {
	recs := make([]Rec, n)
	for i := range recs {
		recs[i] = Rec{
			VP:     int32(i % 257),
			Prefix: int32(i % 8191),
			Path:   int32(i * 7 % 65537),
		}
	}
	return recs
}

// writeRuns spills recs into nRuns runs under dir and returns the writer's
// byte count.
func writeRuns(t *testing.T, dir string, recs []Rec, nRuns int) int64 {
	t.Helper()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < nRuns; r++ {
		if err := w.NextRun(r); err != nil {
			t.Fatal(err)
		}
		lo, hi := r*len(recs)/nRuns, (r+1)*len(recs)/nRuns
		// Append in uneven slivers to exercise group batching.
		for lo < hi {
			step := 1000
			if lo+step > hi {
				step = hi - lo
			}
			if err := w.Append(recs[lo : lo+step]); err != nil {
				t.Fatal(err)
			}
			lo += step
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return w.Bytes()
}

// readAll streams every record of the set into one slice, checking that the
// chunk bases are contiguous.
func readAll(t *testing.T, s *Set) []Rec {
	t.Helper()
	var out []Rec
	err := s.ForEach(func(base int, recs []Rec) error {
		if base != len(out) {
			t.Fatalf("chunk base = %d, want %d", base, len(out))
		}
		out = append(out, recs...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRoundTripMultiRun(t *testing.T) {
	// More than two full groups, split across runs, so the stream crosses
	// both group and run boundaries (and one run gets a partial last group).
	recs := genRecs(2*GroupSize + 12345)
	dir := t.TempDir()
	bytes := writeRuns(t, dir, recs, 3)

	s, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Runs() != 3 {
		t.Fatalf("runs = %d, want 3", s.Runs())
	}
	if s.Len() != len(recs) {
		t.Fatalf("len = %d, want %d", s.Len(), len(recs))
	}
	got := readAll(t, s)
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
	// The writer's byte accounting must match what landed on disk.
	var onDisk int64
	for _, p := range s.paths {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		onDisk += st.Size()
	}
	if bytes != onDisk {
		t.Fatalf("Writer.Bytes() = %d, on disk %d", bytes, onDisk)
	}
}

func TestEmptyRunIsValidBoundary(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.NextRun(0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.Runs() != 1 {
		t.Fatalf("len=%d runs=%d, want 0 and 1", s.Len(), s.Runs())
	}
	if got := readAll(t, s); len(got) != 0 {
		t.Fatalf("read %d records from empty run", len(got))
	}
}

func TestTruncatedRunRejected(t *testing.T) {
	recs := genRecs(GroupSize + 100)
	dir := t.TempDir()
	writeRuns(t, dir, recs, 1)
	path := filepath.Join(dir, "run-000000.crib")
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file mid-group: the footer vanishes, OpenDir must refuse.
	if err := os.Truncate(path, st.Size()-footerLen-10); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir); err == nil {
		t.Fatal("OpenDir accepted a truncated run")
	} else if !strings.Contains(err.Error(), "footer") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCorruptGroupRejected(t *testing.T) {
	recs := genRecs(GroupSize + 100)
	dir := t.TempDir()
	writeRuns(t, dir, recs, 1)
	path := filepath.Join(dir, "run-000000.crib")

	// Flip one payload byte inside the first group. Header and footer stay
	// intact, so OpenDir succeeds and the CRC check during ForEach trips.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	off := int64(headerLen + 8 + 1000)
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	err = s.ForEach(func(int, []Rec) error { return nil })
	if err == nil {
		t.Fatal("ForEach accepted a corrupt group")
	}
	if !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestOpenDirRejectsMissingAndBadRuns(t *testing.T) {
	if _, err := OpenDir(t.TempDir()); err == nil {
		t.Fatal("OpenDir accepted a directory with no runs")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "run-000000.crib"), []byte("NOPE"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir); err == nil {
		t.Fatal("OpenDir accepted a garbage run file")
	}
}

func TestBucketsPartitionPreservesOrder(t *testing.T) {
	recs := genRecs(3*GroupSize + 777)
	dir := t.TempDir()
	writeRuns(t, dir, recs, 2)
	s, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}

	const nb = 7
	const nKeys = 8191 // Prefix ranges over [0, 8191)
	bucketOf := func(r Rec) int { return int(int64(r.Prefix) * nb / nKeys) }
	bs, err := s.Buckets(filepath.Join(dir, "buckets"), nb, bucketOf)
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Remove()
	if bs.Len() != nb {
		t.Fatalf("buckets = %d, want %d", bs.Len(), nb)
	}

	// Each bucket must hold exactly the records mapping to it, in stream
	// order; concatenating buckets must lose or duplicate nothing.
	total := 0
	for b := 0; b < nb; b++ {
		var want []Rec
		for _, r := range recs {
			if bucketOf(r) == b {
				want = append(want, r)
			}
		}
		got, err := bs.AppendBucket(nil, b)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("bucket %d: %d records, want %d", b, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("bucket %d record %d = %+v, want %+v", b, i, got[i], want[i])
			}
		}
		total += len(got)
	}
	if total != len(recs) {
		t.Fatalf("buckets hold %d records, want %d", total, len(recs))
	}

	// Out-of-range bucket assignment must fail loudly.
	if _, err := s.Buckets(filepath.Join(dir, "bad"), 2, func(Rec) int { return 5 }); err == nil {
		t.Fatal("Buckets accepted an out-of-range bucket index")
	}
}
