package routing

import (
	"fmt"
	"math/rand"
	"net/netip"
	"runtime"
	"slices"
	"sync"
	"time"

	"countryrank/internal/asn"
	"countryrank/internal/bgp"
	"countryrank/internal/obs"
	"countryrank/internal/par"
	"countryrank/internal/ribstore"
	"countryrank/internal/topology"
	"countryrank/internal/vp"
)

var (
	mPathsPropagated = obs.NewCounter("countryrank_routing_paths_propagated_total",
		"best paths exported by vantage points during route propagation")
	mRecordsBuilt = obs.NewCounter("countryrank_routing_records_built_total",
		"(VP, prefix, path) records assembled into collections")
	mPropagateSeconds = obs.NewHistogram("countryrank_routing_propagate_seconds",
		"duration of one full-collection route propagation", nil)
	mShardsDone = obs.NewCounter("countryrank_routing_shards_done_total",
		"propagation shards completed and merged into a collection")
	mSpillBytes = obs.NewCounter("countryrank_routing_spill_bytes_total",
		"bytes written to out-of-core columnar record spill runs")
)

// Record is one observed (vantage point, prefix, AS path) triple: the unit
// the paper's Table 1 accounts for and every metric consumes. It is an
// alias of the columnar store's record, so spilled runs and resident slices
// share one layout: VP indexes the world's vp.Set, Prefix indexes
// Collection.Prefixes, Path indexes Collection.Paths.
type Record = ribstore.Rec

// Collection is a multi-day observation of the world from its vantage
// points: the synthetic equivalent of the five daily RIB snapshots the paper
// takes from RouteViews and RIPE RIS.
type Collection struct {
	World    *topology.World
	Prefixes []netip.Prefix
	// Origin[i] is the origin AS of Prefixes[i].
	Origin []asn.ASN
	Paths  []bgp.Path
	// Records holds every (VP, prefix, path) observation of the base day
	// when the collection is resident. Spilled collections (BuildOptions.
	// SpillDir) keep Records nil and stream from disk instead; consumers
	// that want to work in either mode use NumRecords and ForEachRecord.
	Records []Record
	// spill is non-nil when the records live on disk.
	spill *spillRecords
	// Stable[i] reports whether Prefixes[i] was announced on every one of
	// the Days daily snapshots; unstable prefixes are filtered by the
	// sanitizer (Table 1's largest reject class after VP location).
	Stable []bool
	// DayMask[i] records per-day presence: bit d set means Prefixes[i] was
	// announced on day d. Stable[i] == (all Days bits set).
	DayMask []uint16
	Days    int
}

// RIBStore is the record plane of a Collection: the canonical-order stream
// of (VP, prefix, path) triples, resident or out-of-core. Everything
// downstream of propagation — the sanitizer, MRT export, coverage — reads
// records only through this contract, so a spilled collection flows through
// the pipeline without ever materializing its record slice.
type RIBStore interface {
	// NumRecords returns the total record count.
	NumRecords() int
	// ForEachRecord streams every record in canonical order, calling fn
	// with the absolute index of each chunk's first record. The chunk slice
	// may be reused between calls; fn must copy whatever it keeps.
	ForEachRecord(fn func(base int, recs []Record) error) error
	// Spilled reports whether the records live on disk.
	Spilled() bool
	// Close releases any on-disk resources. The spill files themselves are
	// kept: they belong to the caller-chosen spill directory.
	Close() error
}

// memRecords adapts a resident record slice to the RIBStore contract.
type memRecords struct{ recs []Record }

func (m memRecords) NumRecords() int { return len(m.recs) }
func (m memRecords) Spilled() bool   { return false }
func (m memRecords) Close() error    { return nil }

func (m memRecords) ForEachRecord(fn func(int, []Record) error) error {
	// Chunked like the spilled store, so consumers behave identically in
	// both modes instead of growing accidental whole-slice dependencies.
	for base := 0; base < len(m.recs); base += ribstore.GroupSize {
		end := base + ribstore.GroupSize
		if end > len(m.recs) {
			end = len(m.recs)
		}
		if err := fn(base, m.recs[base:end]); err != nil {
			return err
		}
	}
	return nil
}

// spillRecords adapts an on-disk run set to the RIBStore contract.
type spillRecords struct {
	set   *ribstore.Set
	bytes int64
}

func (s *spillRecords) NumRecords() int { return s.set.Len() }
func (s *spillRecords) Spilled() bool   { return true }
func (s *spillRecords) Close() error    { return s.set.Close() }

func (s *spillRecords) ForEachRecord(fn func(int, []Record) error) error {
	return s.set.ForEach(fn)
}

// Store returns the collection's record plane.
func (c *Collection) Store() RIBStore {
	if c.spill != nil {
		return c.spill
	}
	return memRecords{c.Records}
}

// NumRecords returns the collection's record count, resident or spilled.
func (c *Collection) NumRecords() int { return c.Store().NumRecords() }

// ForEachRecord streams the records in canonical order (see RIBStore).
func (c *Collection) ForEachRecord(fn func(base int, recs []Record) error) error {
	return c.Store().ForEachRecord(fn)
}

// Spilled reports whether the records live on disk.
func (c *Collection) Spilled() bool { return c.spill != nil }

// SpillBytes returns how many bytes the collection's spill runs occupy
// (0 for resident collections).
func (c *Collection) SpillBytes() int64 {
	if c.spill == nil {
		return 0
	}
	return c.spill.bytes
}

// Close releases the collection's record store.
func (c *Collection) Close() error { return c.Store().Close() }

// PresentOn reports whether prefix pi was announced on day d.
func (c *Collection) PresentOn(pi int32, day int) bool {
	if len(c.DayMask) == 0 {
		return true // single-RIB collections (e.g. MRT imports)
	}
	return c.DayMask[pi]&(1<<day) != 0
}

// BuildOptions tunes collection assembly. Zero values select the rates that
// reproduce Table 1's reject-class proportions.
type BuildOptions struct {
	Days int
	// UnstableFrac is the fraction of prefixes missing from ≥1 daily RIB.
	UnstableFrac float64
	// LoopFrac / PoisonFrac / UnallocFrac are per-record corruption rates.
	LoopFrac    float64
	PoisonFrac  float64
	UnallocFrac float64
	Seed        int64
	// Shards splits propagation into this many contiguous origin ranges,
	// propagated in parallel and merged in shard order; the output is
	// byte-identical for every shard count and GOMAXPROCS. 0 picks
	// 4×GOMAXPROCS. 1 is the sequential baseline.
	Shards int
	// SpillDir, when set, spills the records to columnar run files under
	// the directory instead of holding them resident (one run per shard);
	// the collection then streams them back via ForEachRecord. The run
	// files persist after the collection is closed.
	SpillDir string
}

func (o BuildOptions) withDefaults(w *topology.World) BuildOptions {
	if o.Days == 0 {
		o.Days = 5
	}
	if o.UnstableFrac == 0 {
		o.UnstableFrac = 0.08
	}
	if o.LoopFrac == 0 {
		o.LoopFrac = 0.0008
	}
	if o.PoisonFrac == 0 {
		o.PoisonFrac = 0.0001
	}
	if o.UnallocFrac == 0 {
		o.UnallocFrac = 0.0009
	}
	if o.Seed == 0 {
		o.Seed = w.Config.Seed + 7
	}
	return o
}

// BuildCollection propagates every origin's routes across the world and
// records the best path each vantage point exports, then injects the
// real-world dirt (loops, poisoned paths, unallocated ASNs, day-to-day
// instability) the sanitizer must handle. Spill failures (BuildOptions.
// SpillDir on a broken disk) panic; use BuildCollectionWith to handle them.
func BuildCollection(w *topology.World, opt BuildOptions) *Collection {
	col, err := BuildCollectionWith(w, opt)
	if err != nil {
		panic(fmt.Sprintf("routing: collection spill: %v", err))
	}
	return col
}

// BuildCollectionWith is BuildCollection with spill-failure reporting. The
// only error source is I/O on BuildOptions.SpillDir; with no spill
// directory it never fails.
func BuildCollectionWith(w *topology.World, opt BuildOptions) (*Collection, error) {
	start := time.Now()
	opt = opt.withDefaults(w)
	g := w.Graph
	rng := rand.New(rand.NewSource(opt.Seed))
	sp := obs.StartSpan("propagate")
	defer sp.End()

	col := &Collection{World: w, Days: opt.Days}

	// Index prefixes.
	prefixIdx := map[netip.Prefix]int32{}
	for _, po := range g.AllPrefixes() {
		if _, dup := prefixIdx[po.Prefix]; dup {
			continue // MOAS: first origin wins in the index; rare by design
		}
		prefixIdx[po.Prefix] = int32(len(col.Prefixes))
		col.Prefixes = append(col.Prefixes, po.Prefix)
		col.Origin = append(col.Origin, po.Origin)
	}

	// Group prefix indexes by origin node.
	byOrigin := make([][]int32, g.NumASes())
	for i := range col.Prefixes {
		node, ok := g.Index(col.Origin[i])
		if !ok {
			continue
		}
		byOrigin[node] = append(byOrigin[node], int32(i))
	}

	// VP nodes.
	type vpAt struct {
		vpIdx int32
		node  int32
		feed  vp.FeedType
	}
	var vps []vpAt
	for i := 0; i < w.VPs.Len(); i++ {
		v := w.VPs.VP(i)
		node, ok := g.Index(v.AS)
		if !ok {
			continue
		}
		vps = append(vps, vpAt{int32(i), node, v.Feed})
	}

	// Day-to-day instability: stable prefixes appear in every daily RIB;
	// unstable ones flap, missing at least one day. Drawn before the merge
	// so the spill sink can stream records straight to disk; the rng
	// sequence matches the historical order (no draws happen mid-merge
	// except the per-record anomaly draws that always followed these).
	col.Stable = make([]bool, len(col.Prefixes))
	col.DayMask = make([]uint16, len(col.Prefixes))
	full := uint16(1<<opt.Days) - 1
	for i := range col.Stable {
		if rng.Float64() >= opt.UnstableFrac {
			col.Stable[i] = true
			col.DayMask[i] = full
			continue
		}
		mask := uint16(0)
		for d := 0; d < opt.Days; d++ {
			if rng.Float64() < 0.7 {
				mask |= 1 << d
			}
		}
		// Flapping means visible at least once and absent at least once.
		if mask == 0 {
			mask = 1
		}
		if mask == full {
			mask &^= 1 << uint(rng.Intn(opt.Days))
		}
		col.DayMask[i] = mask
	}

	// Shard plan: contiguous ranges over the origins that announce
	// anything, so merging shards in index order IS origin order — the
	// canonical record order, independent of GOMAXPROCS and shard count.
	var active []int32
	for origin := int32(0); origin < int32(g.NumASes()); origin++ {
		if len(byOrigin[origin]) > 0 {
			active = append(active, origin)
		}
	}
	shards := opt.Shards
	if shards <= 0 {
		shards = 4 * runtime.GOMAXPROCS(0)
	}
	if shards > len(active) {
		shards = len(active)
	}
	if shards < 1 {
		shards = 1
	}
	sp.AddItems(0, "shards")

	sink, err := newRecordSink(col, opt.SpillDir)
	if err != nil {
		return nil, err
	}
	if opt.SpillDir == "" {
		// Size the output up front: repeated append-doubling of
		// multi-megabyte slices dominates the profile otherwise. Nearly
		// every full-feed VP has a route to every origin, so records ≈
		// VPs × prefixes; customer feeds make this a mild overestimate.
		est := len(vps) * len(col.Prefixes)
		const maxEst = 64 << 20
		if est > maxEst {
			est = maxEst
		}
		col.Records = make([]Record, 0, est)
	}

	// Per-shard propagation states are pooled: OrderedMap runs at most
	// GOMAXPROCS producers, so the pool holds that many states at peak no
	// matter how many shards the run splits into.
	g.ASNs() // warm the cache once; workers then only read it
	statePool := sync.Pool{New: func() any { return newPropState(g) }}

	// One shard's routes, grouped by origin: counts[k] routes belong to the
	// k-th origin of the shard, flattened into vpIdxs/paths.
	type shardRoutes struct {
		counts []int32
		vpIdxs []int32
		paths  []bgp.Path
	}
	produce := func(si int) shardRoutes {
		lo, hi := si*len(active)/shards, (si+1)*len(active)/shards
		st := statePool.Get().(*propState)
		defer statePool.Put(st)
		var out shardRoutes
		for _, origin := range active[lo:hi] {
			propagate(g, origin, st)
			n0 := len(out.vpIdxs)
			for _, v := range vps {
				cls := st.class[v.node]
				if cls == classNone {
					continue
				}
				// Customer-feed VPs export only customer-learned (or
				// own) routes, like a peer applying export policy.
				if v.feed == vp.CustomerFeed && cls > classCustomer {
					continue
				}
				out.vpIdxs = append(out.vpIdxs, v.vpIdx)
				out.paths = append(out.paths, extractPath(g, st, v.node))
			}
			out.counts = append(out.counts, int32(len(out.vpIdxs)-n0))
		}
		return out
	}

	// The merge runs on this goroutine in strict shard order: intern each
	// route's path, fan it out across the origin's prefixes, inject the
	// per-record anomalies (rng draws stay in record order), and hand each
	// origin's batch to the sink. Peak resident record state is one
	// origin's batch plus the bounded window of produced-but-unmerged
	// shards — never the whole collection.
	an := newAnomalizer(w, rng, opt)
	it := bgp.NewInterner(0)
	var nRoutes int64
	var recBuf []Record
	consume := func(si int, rt shardRoutes) {
		if sink.err != nil {
			return
		}
		if err := sink.nextShard(si); err != nil {
			return
		}
		lo, hi := si*len(active)/shards, (si+1)*len(active)/shards
		k := 0
		for oi, origin := range active[lo:hi] {
			pfxs := byOrigin[origin]
			recBuf = recBuf[:0]
			for j := int32(0); j < rt.counts[oi]; j++ {
				vpIdx, path := rt.vpIdxs[k], rt.paths[k]
				k++
				pi := it.InternOwned(path)
				for _, pfx := range pfxs {
					rec := Record{VP: vpIdx, Prefix: pfx, Path: pi}
					if mutated := an.maybeMutate(path); mutated != nil {
						rec.Path = it.InternOwned(mutated)
					}
					recBuf = append(recBuf, rec)
				}
			}
			if err := sink.append(recBuf); err != nil {
				return
			}
		}
		nRoutes += int64(len(rt.vpIdxs))
		mShardsDone.Inc()
		sp.AddItems(1, "")
	}
	par.OrderedMap(shards, 0, produce, consume)
	col.Paths = it.Paths()
	if err := sink.finish(); err != nil {
		return nil, err
	}

	mPathsPropagated.Add(nRoutes)
	mRecordsBuilt.Add(int64(col.NumRecords()))
	mPropagateSeconds.Observe(time.Since(start))
	return col, nil
}

// anomalizer corrupts a small fraction of records the way public BGP data
// is corrupted: AS path loops, poisoned paths (a non-clique AS wedged
// between two clique ASes), and unallocated ASNs. One rng draw per record,
// in record order, keeps the injection deterministic under sharding.
type anomalizer struct {
	rng       *rand.Rand
	opt       BuildOptions
	cliqueSet map[asn.ASN]bool
	stubPool  []asn.ASN
}

func newAnomalizer(w *topology.World, rng *rand.Rand, opt BuildOptions) *anomalizer {
	g := w.Graph
	a := &anomalizer{rng: rng, opt: opt, cliqueSet: map[asn.ASN]bool{}}
	for _, c := range w.Clique {
		a.cliqueSet[c] = true
	}
	// A pool of real stub ASNs for poisoning payloads.
	for i := int32(0); i < int32(g.NumASes()); i++ {
		if g.Node(i).Class == topology.ClassStub {
			a.stubPool = append(a.stubPool, g.Node(i).ASN)
			if len(a.stubPool) >= 64 {
				break
			}
		}
	}
	slices.Sort(a.stubPool)
	return a
}

// maybeMutate draws one record's anomaly verdict and returns the corrupted
// path, or nil to keep the original.
func (a *anomalizer) maybeMutate(p bgp.Path) bgp.Path {
	r := a.rng.Float64()
	switch opt := a.opt; {
	case r < opt.LoopFrac:
		if len(p) < 3 {
			return nil
		}
		// Re-insert the first hop later in the path: A B A B C.
		out := make(bgp.Path, 0, len(p)+2)
		out = append(out, p[0], p[1], p[0])
		out = append(out, p[1:]...)
		return out
	case r < opt.LoopFrac+opt.PoisonFrac:
		if len(a.stubPool) == 0 {
			return nil
		}
		// Insert a stub between two adjacent clique ASes.
		for j := 0; j+1 < len(p); j++ {
			if a.cliqueSet[p[j]] && a.cliqueSet[p[j+1]] && !p.Contains(a.stubPool[0]) {
				out := make(bgp.Path, 0, len(p)+1)
				out = append(out, p[:j+1]...)
				out = append(out, a.stubPool[a.rng.Intn(len(a.stubPool))])
				out = append(out, p[j+1:]...)
				if out.HasNonAdjacentLoop() {
					return nil
				}
				return out
			}
		}
		return nil
	case r < opt.LoopFrac+opt.PoisonFrac+opt.UnallocFrac:
		if len(p) < 2 {
			return nil
		}
		// Leak a private-use ASN mid-path.
		out := make(bgp.Path, 0, len(p)+1)
		out = append(out, p[0], asn.ASN(64512+a.rng.Intn(1000)))
		out = append(out, p[1:]...)
		return out
	}
	return nil
}

// recordSink routes merged records to their destination: the resident
// Records slice, or one columnar spill run per shard.
type recordSink struct {
	col *Collection
	wr  *ribstore.Writer
	dir string
	err error
}

func newRecordSink(col *Collection, spillDir string) (*recordSink, error) {
	s := &recordSink{col: col, dir: spillDir}
	if spillDir != "" {
		wr, err := ribstore.NewWriter(spillDir)
		if err != nil {
			return nil, err
		}
		s.wr = wr
	}
	return s, nil
}

// nextShard marks a shard (spill run) boundary.
func (s *recordSink) nextShard(i int) error {
	if s.wr == nil {
		return nil
	}
	if err := s.wr.NextRun(i); err != nil {
		s.err = err
	}
	return s.err
}

// append adds one batch of records in canonical order.
func (s *recordSink) append(recs []Record) error {
	if s.wr == nil {
		s.col.Records = append(s.col.Records, recs...)
		return nil
	}
	if err := s.wr.Append(recs); err != nil {
		s.err = err
	}
	return s.err
}

// finish closes the spill runs and attaches the on-disk store.
func (s *recordSink) finish() error {
	if s.err != nil {
		return s.err
	}
	if s.wr == nil {
		return nil
	}
	if s.wr.Runs() == 0 {
		// An empty collection still needs one valid (zero-record) run so
		// the directory opens cleanly.
		if err := s.wr.NextRun(0); err != nil {
			return err
		}
	}
	if err := s.wr.Close(); err != nil {
		return err
	}
	set, err := ribstore.OpenDir(s.dir)
	if err != nil {
		return err
	}
	s.col.spill = &spillRecords{set: set, bytes: s.wr.Bytes()}
	mSpillBytes.Add(s.wr.Bytes())
	return nil
}

// PathOf returns the path of record i (resident collections only).
func (c *Collection) PathOf(i int) bgp.Path { return c.Paths[c.Records[i].Path] }

// PrefixOf returns the prefix of record i (resident collections only).
func (c *Collection) PrefixOf(i int) netip.Prefix { return c.Prefixes[c.Records[i].Prefix] }

// AnnouncedPrefixes returns the distinct announced prefixes.
func (c *Collection) AnnouncedPrefixes() []netip.Prefix {
	return append([]netip.Prefix(nil), c.Prefixes...)
}
