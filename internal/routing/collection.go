package routing

import (
	"math/rand"
	"net/netip"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"countryrank/internal/asn"
	"countryrank/internal/bgp"
	"countryrank/internal/obs"
	"countryrank/internal/topology"
	"countryrank/internal/vp"
)

var (
	mPathsPropagated = obs.NewCounter("countryrank_routing_paths_propagated_total",
		"best paths exported by vantage points during route propagation")
	mRecordsBuilt = obs.NewCounter("countryrank_routing_records_built_total",
		"(VP, prefix, path) records assembled into collections")
	mPropagateSeconds = obs.NewHistogram("countryrank_routing_propagate_seconds",
		"duration of one full-collection route propagation", nil)
)

// Record is one observed (vantage point, prefix, AS path) triple: the unit
// the paper's Table 1 accounts for and every metric consumes.
type Record struct {
	VP     int32 // index into the world's vp.Set
	Prefix int32 // index into Collection.Prefixes
	Path   int32 // index into Collection.Paths
}

// Collection is a multi-day observation of the world from its vantage
// points: the synthetic equivalent of the five daily RIB snapshots the paper
// takes from RouteViews and RIPE RIS.
type Collection struct {
	World    *topology.World
	Prefixes []netip.Prefix
	// Origin[i] is the origin AS of Prefixes[i].
	Origin []asn.ASN
	Paths  []bgp.Path
	// Records holds every (VP, prefix, path) observation of the base day.
	Records []Record
	// Stable[i] reports whether Prefixes[i] was announced on every one of
	// the Days daily snapshots; unstable prefixes are filtered by the
	// sanitizer (Table 1's largest reject class after VP location).
	Stable []bool
	// DayMask[i] records per-day presence: bit d set means Prefixes[i] was
	// announced on day d. Stable[i] == (all Days bits set).
	DayMask []uint16
	Days    int
}

// PresentOn reports whether prefix pi was announced on day d.
func (c *Collection) PresentOn(pi int32, day int) bool {
	if len(c.DayMask) == 0 {
		return true // single-RIB collections (e.g. MRT imports)
	}
	return c.DayMask[pi]&(1<<day) != 0
}

// BuildOptions tunes collection assembly. Zero values select the rates that
// reproduce Table 1's reject-class proportions.
type BuildOptions struct {
	Days int
	// UnstableFrac is the fraction of prefixes missing from ≥1 daily RIB.
	UnstableFrac float64
	// LoopFrac / PoisonFrac / UnallocFrac are per-record corruption rates.
	LoopFrac    float64
	PoisonFrac  float64
	UnallocFrac float64
	Seed        int64
}

func (o BuildOptions) withDefaults(w *topology.World) BuildOptions {
	if o.Days == 0 {
		o.Days = 5
	}
	if o.UnstableFrac == 0 {
		o.UnstableFrac = 0.08
	}
	if o.LoopFrac == 0 {
		o.LoopFrac = 0.0008
	}
	if o.PoisonFrac == 0 {
		o.PoisonFrac = 0.0001
	}
	if o.UnallocFrac == 0 {
		o.UnallocFrac = 0.0009
	}
	if o.Seed == 0 {
		o.Seed = w.Config.Seed + 7
	}
	return o
}

// BuildCollection propagates every origin's routes across the world and
// records the best path each vantage point exports, then injects the
// real-world dirt (loops, poisoned paths, unallocated ASNs, day-to-day
// instability) the sanitizer must handle.
func BuildCollection(w *topology.World, opt BuildOptions) *Collection {
	start := time.Now()
	opt = opt.withDefaults(w)
	g := w.Graph
	rng := rand.New(rand.NewSource(opt.Seed))

	col := &Collection{World: w, Days: opt.Days}

	// Index prefixes.
	prefixIdx := map[netip.Prefix]int32{}
	for _, po := range g.AllPrefixes() {
		if _, dup := prefixIdx[po.Prefix]; dup {
			continue // MOAS: first origin wins in the index; rare by design
		}
		prefixIdx[po.Prefix] = int32(len(col.Prefixes))
		col.Prefixes = append(col.Prefixes, po.Prefix)
		col.Origin = append(col.Origin, po.Origin)
	}

	// Group prefix indexes by origin node.
	byOrigin := make([][]int32, g.NumASes())
	for i := range col.Prefixes {
		node, ok := g.Index(col.Origin[i])
		if !ok {
			continue
		}
		byOrigin[node] = append(byOrigin[node], int32(i))
	}

	// VP nodes.
	type vpAt struct {
		vpIdx int32
		node  int32
		feed  vp.FeedType
	}
	var vps []vpAt
	for i := 0; i < w.VPs.Len(); i++ {
		v := w.VPs.VP(i)
		node, ok := g.Index(v.AS)
		if !ok {
			continue
		}
		vps = append(vps, vpAt{int32(i), node, v.Feed})
	}

	// Propagate origins in parallel; merge per-origin results in origin
	// order so the collection is deterministic regardless of scheduling.
	type vpRoute struct {
		vpIdx int32
		path  bgp.Path
	}
	perOrigin := make([][]vpRoute, g.NumASes())
	g.ASNs() // warm the cache once; workers then only read it
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	next := int32(0)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := newPropState(g)
			for {
				origin := atomic.AddInt32(&next, 1) - 1
				if origin >= int32(g.NumASes()) {
					return
				}
				if len(byOrigin[origin]) == 0 {
					continue
				}
				propagate(g, origin, st)
				var routes []vpRoute
				for _, v := range vps {
					cls := st.class[v.node]
					if cls == classNone {
						continue
					}
					// Customer-feed VPs export only customer-learned (or
					// own) routes, like a peer applying export policy.
					if v.feed == vp.CustomerFeed && cls > classCustomer {
						continue
					}
					routes = append(routes, vpRoute{v.vpIdx, extractPath(g, st, v.node)})
				}
				perOrigin[origin] = routes
			}
		}()
	}
	wg.Wait()
	// Size the output exactly: repeated append-doubling of multi-megabyte
	// slices dominates the profile otherwise. Paths are hash-consed — many
	// VPs export the same route toward an origin — so the interner sizes to
	// the upper bound and the final table is typically much smaller.
	var nPaths, nRecs int
	for origin := range perOrigin {
		nPaths += len(perOrigin[origin])
		nRecs += len(perOrigin[origin]) * len(byOrigin[origin])
	}
	it := bgp.NewInterner(nPaths)
	col.Records = make([]Record, 0, nRecs)
	for origin := int32(0); origin < int32(g.NumASes()); origin++ {
		pfxs := byOrigin[origin]
		for _, rt := range perOrigin[origin] {
			pi := it.InternOwned(rt.path)
			for _, pfx := range pfxs {
				col.Records = append(col.Records, Record{VP: rt.vpIdx, Prefix: pfx, Path: pi})
			}
		}
	}
	col.Paths = it.Paths()

	// Day-to-day instability: stable prefixes appear in every daily RIB;
	// unstable ones flap, missing at least one day.
	col.Stable = make([]bool, len(col.Prefixes))
	col.DayMask = make([]uint16, len(col.Prefixes))
	full := uint16(1<<opt.Days) - 1
	for i := range col.Stable {
		if rng.Float64() >= opt.UnstableFrac {
			col.Stable[i] = true
			col.DayMask[i] = full
			continue
		}
		mask := uint16(0)
		for d := 0; d < opt.Days; d++ {
			if rng.Float64() < 0.7 {
				mask |= 1 << d
			}
		}
		// Flapping means visible at least once and absent at least once.
		if mask == 0 {
			mask = 1
		}
		if mask == full {
			mask &^= 1 << uint(rng.Intn(opt.Days))
		}
		col.DayMask[i] = mask
	}

	col.injectAnomalies(rng, opt)
	mPathsPropagated.Add(int64(nPaths))
	mRecordsBuilt.Add(int64(len(col.Records)))
	mPropagateSeconds.Observe(time.Since(start))
	return col
}

// injectAnomalies corrupts a small fraction of records the way public BGP
// data is corrupted: AS path loops, poisoned paths (a non-clique AS wedged
// between two clique ASes), and unallocated ASNs.
func (c *Collection) injectAnomalies(rng *rand.Rand, opt BuildOptions) {
	g := c.World.Graph
	cliqueSet := map[asn.ASN]bool{}
	for _, a := range c.World.Clique {
		cliqueSet[a] = true
	}
	// A pool of real stub ASNs for poisoning payloads.
	var stubPool []asn.ASN
	for i := int32(0); i < int32(g.NumASes()); i++ {
		if g.Node(i).Class == topology.ClassStub {
			stubPool = append(stubPool, g.Node(i).ASN)
			if len(stubPool) >= 64 {
				break
			}
		}
	}
	slices.Sort(stubPool)

	mutate := func(idx int, f func(bgp.Path) bgp.Path) {
		old := c.Paths[c.Records[idx].Path]
		mutated := f(old.Clone())
		if mutated == nil {
			return
		}
		c.Records[idx].Path = int32(len(c.Paths))
		c.Paths = append(c.Paths, mutated)
	}

	for i := range c.Records {
		r := rng.Float64()
		switch {
		case r < opt.LoopFrac:
			mutate(i, func(p bgp.Path) bgp.Path {
				if len(p) < 3 {
					return nil
				}
				// Re-insert the first hop later in the path: A B A B C.
				out := make(bgp.Path, 0, len(p)+2)
				out = append(out, p[0], p[1], p[0])
				out = append(out, p[1:]...)
				return out
			})
		case r < opt.LoopFrac+opt.PoisonFrac:
			mutate(i, func(p bgp.Path) bgp.Path {
				if len(stubPool) == 0 {
					return nil
				}
				// Insert a stub between two adjacent clique ASes.
				for j := 0; j+1 < len(p); j++ {
					if cliqueSet[p[j]] && cliqueSet[p[j+1]] && !p.Contains(stubPool[0]) {
						out := make(bgp.Path, 0, len(p)+1)
						out = append(out, p[:j+1]...)
						out = append(out, stubPool[rng.Intn(len(stubPool))])
						out = append(out, p[j+1:]...)
						if out.HasNonAdjacentLoop() {
							return nil
						}
						return out
					}
				}
				return nil
			})
		case r < opt.LoopFrac+opt.PoisonFrac+opt.UnallocFrac:
			mutate(i, func(p bgp.Path) bgp.Path {
				if len(p) < 2 {
					return nil
				}
				// Leak a private-use ASN mid-path.
				out := make(bgp.Path, 0, len(p)+1)
				out = append(out, p[0], asn.ASN(64512+rng.Intn(1000)))
				out = append(out, p[1:]...)
				return out
			})
		}
	}
}

// PathOf returns the path of record i.
func (c *Collection) PathOf(i int) bgp.Path { return c.Paths[c.Records[i].Path] }

// PrefixOf returns the prefix of record i.
func (c *Collection) PrefixOf(i int) netip.Prefix { return c.Prefixes[c.Records[i].Prefix] }

// AnnouncedPrefixes returns the distinct announced prefixes.
func (c *Collection) AnnouncedPrefixes() []netip.Prefix {
	return append([]netip.Prefix(nil), c.Prefixes...)
}
