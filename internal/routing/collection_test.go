package routing

import (
	"bytes"
	"io"
	"sort"
	"testing"

	"countryrank/internal/topology"
	"countryrank/internal/vp"
)

func testWorld(t *testing.T) *topology.World {
	t.Helper()
	return topology.Build(topology.Config{Seed: 5, StubScale: 0.1, VPScale: 0.1})
}

func TestBuildCollectionDeterministic(t *testing.T) {
	w := testWorld(t)
	a := BuildCollection(w, BuildOptions{})
	b := BuildCollection(w, BuildOptions{})
	if len(a.Records) != len(b.Records) || len(a.Paths) != len(b.Paths) {
		t.Fatalf("sizes differ: %d/%d vs %d/%d", len(a.Records), len(a.Paths), len(b.Records), len(b.Paths))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
		if !a.PathOf(i).Equal(b.PathOf(i)) {
			t.Fatalf("path of record %d differs", i)
		}
	}
}

func TestCollectionShape(t *testing.T) {
	w := testWorld(t)
	c := BuildCollection(w, BuildOptions{})
	if len(c.Prefixes) == 0 || len(c.Records) == 0 {
		t.Fatal("empty collection")
	}
	if len(c.Origin) != len(c.Prefixes) || len(c.Stable) != len(c.Prefixes) {
		t.Fatal("parallel slices out of sync")
	}
	if c.Days != 5 {
		t.Errorf("Days = %d", c.Days)
	}
	// Every record references valid indexes and a non-empty path ending at
	// the prefix's origin (unless the path was corrupted by injection).
	for i, r := range c.Records {
		if r.VP < 0 || int(r.VP) >= w.VPs.Len() || r.Prefix < 0 || int(r.Prefix) >= len(c.Prefixes) {
			t.Fatalf("record %d out of range: %+v", i, r)
		}
		if len(c.PathOf(i)) == 0 {
			t.Fatalf("record %d has empty path", i)
		}
	}
	// Instability rate near the configured 8%.
	unstable := 0
	for _, s := range c.Stable {
		if !s {
			unstable++
		}
	}
	frac := float64(unstable) / float64(len(c.Stable))
	if frac < 0.04 || frac > 0.14 {
		t.Errorf("unstable fraction = %f, want ≈0.08", frac)
	}
}

func TestAnomalyInjectionRates(t *testing.T) {
	w := testWorld(t)
	c := BuildCollection(w, BuildOptions{LoopFrac: 0.01, PoisonFrac: 0.002, UnallocFrac: 0.005})
	reg := w.Graph.Registry()
	loops, unalloc := 0, 0
	for i := range c.Records {
		p := c.PathOf(i)
		if p.DedupAdjacent().HasNonAdjacentLoop() {
			loops++
			continue
		}
		for _, a := range p {
			if !reg.Allocated(a) {
				unalloc++
				break
			}
		}
	}
	n := float64(len(c.Records))
	if f := float64(loops) / n; f < 0.005 || f > 0.02 {
		t.Errorf("loop fraction = %f, want ≈0.01", f)
	}
	if f := float64(unalloc) / n; f < 0.002 || f > 0.01 {
		t.Errorf("unallocated fraction = %f, want ≈0.005", f)
	}
}

func TestCustomerFeedVPsExportLess(t *testing.T) {
	w := testWorld(t)
	c := BuildCollection(w, BuildOptions{})
	perVP := make([]int, w.VPs.Len())
	for _, r := range c.Records {
		perVP[r.VP]++
	}
	var full, partial []int
	for i := 0; i < w.VPs.Len(); i++ {
		if perVP[i] == 0 {
			continue
		}
		if w.VPs.VP(i).Feed == vp.CustomerFeed {
			partial = append(partial, perVP[i])
		} else {
			full = append(full, perVP[i])
		}
	}
	if len(partial) == 0 || len(full) == 0 {
		t.Skip("world too small to compare feed types")
	}
	med := func(xs []int) int {
		sort.Ints(xs)
		return xs[len(xs)/2]
	}
	if med(partial) >= med(full)/2 {
		t.Errorf("customer-feed median %d not well below full-feed median %d", med(partial), med(full))
	}
}

func TestMRTRoundTrip(t *testing.T) {
	w := testWorld(t)
	c := BuildCollection(w, BuildOptions{LoopFrac: -1, PoisonFrac: -1, UnallocFrac: -1})

	var bufs []io.Reader
	for _, coll := range w.VPs.Collectors() {
		var b bytes.Buffer
		if err := ExportMRT(&b, c, coll.Name, 1617235200); err != nil {
			t.Fatalf("export %s: %v", coll.Name, err)
		}
		bufs = append(bufs, &b)
	}
	got, err := ImportMRT(w, bufs)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if len(got.Records) != len(c.Records) {
		t.Fatalf("record count: got %d, want %d", len(got.Records), len(c.Records))
	}
	// Compare as multisets of (vp, prefix, path-string).
	key := func(col *Collection, i int) string {
		return col.Prefixes[col.Records[i].Prefix].String() + "|" +
			string(rune(col.Records[i].VP)) + "|" + col.PathOf(i).String()
	}
	want := map[string]int{}
	for i := range c.Records {
		want[key(c, i)]++
	}
	for i := range got.Records {
		want[key(got, i)]--
	}
	for k, v := range want {
		if v != 0 {
			t.Fatalf("multiset mismatch at %q: %+d", k, v)
		}
	}
}

func TestExportMRTUnknownCollector(t *testing.T) {
	w := testWorld(t)
	c := BuildCollection(w, BuildOptions{})
	if err := ExportMRT(io.Discard, c, "no-such-collector", 0); err == nil {
		t.Error("unknown collector must error")
	}
}
