package routing

import (
	"countryrank/internal/asn"
	"countryrank/internal/topology"
)

// FailureImpact summarizes what removing one inter-AS link changes: the
// backup-path analysis the paper's §7 motivates ("public BGP data does not
// reveal backup paths ... future work could attempt to infer backup paths").
// Failing a link in the simulator and re-propagating reveals exactly the
// backup paths a passive observer never sees.
type FailureImpact struct {
	A, B asn.ASN
	// ChangedRecords counts (VP, prefix) observations whose best path
	// changed after the failure.
	ChangedRecords int
	// LostRecords counts observations that became unreachable.
	LostRecords int
	// RevealedLinks counts adjacent AS pairs appearing on post-failure
	// paths that no pre-failure path contained: pure backup topology.
	RevealedLinks int
	// TotalRecords is the pre-failure observation count.
	TotalRecords int
}

// FailLink rebuilds the collection on a copy of the world with the a–b
// relationship removed and diffs it against the original collection. The
// original world and collection are not modified.
func FailLink(col *Collection, a, b asn.ASN, opt BuildOptions) FailureImpact {
	w := col.World
	impact := FailureImpact{A: a, B: b, TotalRecords: col.NumRecords()}

	// Pre-failure path index per (VP, prefix), and the pre-failure link set.
	type key struct{ vp, pfx int32 }
	before := make(map[key]int32, col.NumRecords())
	col.ForEachRecord(func(_ int, recs []Record) error {
		for _, r := range recs {
			before[key{r.VP, r.Prefix}] = r.Path
		}
		return nil
	})
	links := map[[2]asn.ASN]bool{}
	for _, p := range col.Paths {
		for i := 0; i+1 < len(p); i++ {
			links[linkKey(p[i], p[i+1])] = true
		}
	}

	// Fail the link on a cloned graph and re-propagate. Anomaly injection
	// is disabled: the diff must reflect routing, not noise.
	failed := &topology.World{
		Config: w.Config,
		Graph:  w.Graph.Clone(),
		VPs:    w.VPs,
		Geo:    w.Geo,
		Clique: w.Clique,
	}
	failed.Graph.RemoveEdge(a, b)
	opt.LoopFrac, opt.PoisonFrac, opt.UnallocFrac = -1, -1, -1
	// The rebuild diffs in memory either way, and a spill directory here
	// would collide with the original collection's run files.
	opt.SpillDir = ""
	after := BuildCollection(failed, opt)

	afterIdx := make(map[key]int32, len(after.Records))
	for _, r := range after.Records {
		afterIdx[key{r.VP, r.Prefix}] = r.Path
	}

	revealed := map[[2]asn.ASN]bool{}
	for k, beforePath := range before {
		afterPath, ok := afterIdx[k]
		if !ok {
			impact.LostRecords++
			continue
		}
		if !col.Paths[beforePath].Equal(after.Paths[afterPath]) {
			impact.ChangedRecords++
			p := after.Paths[afterPath]
			for i := 0; i+1 < len(p); i++ {
				lk := linkKey(p[i], p[i+1])
				if !links[lk] {
					revealed[lk] = true
				}
			}
		}
	}
	impact.RevealedLinks = len(revealed)
	return impact
}

func linkKey(a, b asn.ASN) [2]asn.ASN {
	if a > b {
		a, b = b, a
	}
	return [2]asn.ASN{a, b}
}
