package routing

import (
	"net/netip"
	"testing"

	"countryrank/internal/asn"
	"countryrank/internal/geoloc"
	"countryrank/internal/netx"
	"countryrank/internal/topology"
	"countryrank/internal/vp"
)

func TestFailLinkRevealsBackupPaths(t *testing.T) {
	w := testWorld(t)
	opt := BuildOptions{LoopFrac: -1, PoisonFrac: -1, UnallocFrac: -1}
	col := BuildCollection(w, opt)

	// Fail NTT OCN's sole transit link (2914 → 4713): every observation of
	// OCN-originated prefixes from outside must change or die, revealing
	// the Vocus-style backups... here OCN is single-homed, so its prefixes
	// become unreachable from abroad while domestic peerings may survive.
	impact := FailLink(col, 2914, 4713, opt)
	if impact.TotalRecords != len(col.Records) {
		t.Fatalf("total = %d", impact.TotalRecords)
	}
	if impact.ChangedRecords == 0 && impact.LostRecords == 0 {
		t.Fatal("failing the incumbent's transit link changed nothing")
	}

	// Fail one of Rostelecom's three transit links: reachability must be
	// preserved (multihoming) while many paths shift to the backups.
	impact2 := FailLink(col, 1299, 12389, opt)
	if impact2.LostRecords > impact2.TotalRecords/100 {
		t.Errorf("multihomed failure lost %d records", impact2.LostRecords)
	}
	if impact2.ChangedRecords == 0 {
		t.Error("failing a used transit link should move paths")
	}

	// The original collection must be untouched.
	if w.Graph.Rel(1299, 12389) != topology.RelP2C {
		t.Error("FailLink mutated the original world")
	}
}

// TestHiddenBackupRevealed constructs the situation §7 describes: a backup
// link invisible to passive observation until the primary fails.
func TestHiddenBackupRevealed(t *testing.T) {
	g := topology.NewGraph()
	for _, a := range []uint32{10, 20, 30, 99} {
		g.MustAddAS(topology.AS{ASN: asn.ASN(a), Class: topology.ClassTransit, Registered: "US"})
	}
	// VP AS 10 is a provider of 20 and 30; origin 99 dual-homes to 20
	// (primary, shorter from the VP by tie-hash or equal) and 30.
	g.AddP2C(10, 20)
	g.AddP2C(10, 30)
	g.AddP2C(20, 99)
	g.AddP2C(30, 99)
	g.Originate(99, netx.MustPrefix("10.9.0.0/24"))

	set, err := vp.NewSet(
		[]vp.Collector{{Name: "rc", ID: netip.MustParseAddr("10.0.0.1"), Country: "US"}},
		[]vp.VP{{Index: 0, Addr: netip.MustParseAddr("10.0.0.9"), AS: 10, Collector: "rc"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	w := &topology.World{Graph: g, VPs: set, Geo: &geoloc.DB{}}
	opt := BuildOptions{LoopFrac: -1, PoisonFrac: -1, UnallocFrac: -1, UnstableFrac: -1, Seed: 7}
	col := BuildCollection(w, opt)
	if len(col.Records) != 1 {
		t.Fatalf("records = %d", len(col.Records))
	}
	primary := col.Paths[col.Records[0].Path]
	mid := primary[1] // 20 or 30, whichever the tie-hash chose
	backup := asn.ASN(50 - uint32(mid))

	impact := FailLink(col, mid, 99, opt)
	if impact.ChangedRecords != 1 || impact.LostRecords != 0 {
		t.Fatalf("impact = %+v", impact)
	}
	// Both hops of the backup route (VP→backup and backup→origin) were
	// invisible before the failure.
	if impact.RevealedLinks != 2 {
		t.Errorf("revealed links = %d, want 2 (via %v)", impact.RevealedLinks, backup)
	}
}

func TestFailAbsentLinkIsNoop(t *testing.T) {
	w := testWorld(t)
	opt := BuildOptions{LoopFrac: -1, PoisonFrac: -1, UnallocFrac: -1}
	col := BuildCollection(w, opt)
	impact := FailLink(col, 3356, 2516, opt) // no such edge (KDDI buys from 2914/3257)
	if w.Graph.Rel(3356, 2516) != topology.RelNone {
		t.Skip("edge exists in this world; pick another")
	}
	if impact.ChangedRecords != 0 || impact.LostRecords != 0 {
		t.Errorf("no-op failure changed %d, lost %d", impact.ChangedRecords, impact.LostRecords)
	}
}
