package routing

import (
	"net"
	"net/netip"
	"runtime"
	"sync"
	"testing"
	"time"

	"countryrank/internal/bgpsession"
	"countryrank/internal/faultnet"
)

// TestFeedVPClosesSessionOnSendError is the regression test for the session
// leak: a transport failure mid-feed must tear the session down, including
// the keepalive goroutine, instead of returning with the session open.
func TestFeedVPClosesSessionOnSendError(t *testing.T) {
	w := testWorld(t)
	col := BuildCollection(w, BuildOptions{LoopFrac: -1, PoisonFrac: -1, UnallocFrac: -1, UnstableFrac: -1})
	var vpIdx int32 = -1
	for _, r := range col.Records {
		vpIdx = r.VP
		break
	}
	if vpIdx < 0 {
		t.Skip("no records")
	}

	before := runtime.NumGoroutine()

	speakerConn, collectorConn := net.Pipe()
	// The transport resets shortly after the handshake: the first large
	// enough Send fails mid-feed.
	faulty := faultnet.Wrap(speakerConn, faultnet.Config{
		Schedule: []faultnet.Fault{{AtByte: 150, Kind: faultnet.Reset}},
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess, err := bgpsession.Establish(collectorConn, bgpsession.Config{
			AS: 6447, BGPID: netip.MustParseAddr("10.0.0.2"), HoldTime: 10 * time.Second,
		})
		if err != nil {
			return // the reset may land during the handshake; that's fine
		}
		defer sess.Close()
		sess.Collect(bgpsession.NewTable(), 0)
	}()

	sess, err := bgpsession.Establish(faulty, bgpsession.Config{
		AS: w.VPs.VP(int(vpIdx)).AS, BGPID: netip.MustParseAddr("10.0.0.1"),
		HoldTime: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("establish: %v", err)
	}
	// The keepalive goroutine is exactly what leaked before the fix.
	sess.StartKeepalives(50 * time.Millisecond)
	if _, err := FeedVP(sess, col, vpIdx); err == nil {
		t.Fatal("feed over a reset transport succeeded")
	}
	collectorConn.Close()
	wg.Wait()

	// All goroutines (keepalive, collector, pipe plumbing) must unwind.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked after FeedVP error: %d -> %d\n%s",
		before, runtime.NumGoroutine(), buf[:n])
}
