package routing

import (
	"bytes"
	"io"
	"testing"

	"countryrank/internal/topology"
)

func dualStackWorld(t *testing.T) *topology.World {
	t.Helper()
	return topology.Build(topology.Config{Seed: 5, StubScale: 0.1, VPScale: 0.1, IPv6: true})
}

func TestDualStackMRTRoundTrip(t *testing.T) {
	w := dualStackWorld(t)
	c := BuildCollection(w, BuildOptions{LoopFrac: -1, PoisonFrac: -1, UnallocFrac: -1})

	hasV6 := false
	for _, p := range c.Prefixes {
		if !p.Addr().Is4() {
			hasV6 = true
			break
		}
	}
	if !hasV6 {
		t.Fatal("dual-stack collection has no IPv6 prefixes")
	}

	var bufs []io.Reader
	for _, coll := range w.VPs.Collectors() {
		var b bytes.Buffer
		if err := ExportMRT(&b, c, coll.Name, 7); err != nil {
			t.Fatalf("export %s: %v", coll.Name, err)
		}
		bufs = append(bufs, &b)
	}
	got, err := ImportMRT(w, bufs)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if len(got.Records) != len(c.Records) {
		t.Fatalf("records: %d vs %d", len(got.Records), len(c.Records))
	}
	gotV6 := 0
	for _, p := range got.Prefixes {
		if !p.Addr().Is4() {
			gotV6++
		}
	}
	if gotV6 == 0 {
		t.Error("IPv6 prefixes lost in the MRT round trip")
	}
}

func TestDualStackUpdateStream(t *testing.T) {
	w := dualStackWorld(t)
	c := BuildCollection(w, BuildOptions{LoopFrac: -1, PoisonFrac: -1, UnallocFrac: -1, UnstableFrac: 0.4})
	collector := w.VPs.Collectors()[2].Name
	var buf bytes.Buffer
	if err := ExportUpdatesMRT(&buf, c, collector, 1, 99); err != nil {
		t.Fatalf("export updates: %v", err)
	}
	if buf.Len() == 0 {
		t.Skip("no churn at this collector")
	}
}
