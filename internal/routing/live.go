package routing

import (
	"cmp"
	"fmt"
	"net/netip"
	"slices"

	"countryrank/internal/bgp"
	"countryrank/internal/bgpsession"
)

// UpdatesForVP builds the UPDATE sequence one vantage point's base-day
// routes produce, in record order: the exact messages FeedVP sends. Resumable
// feeders replay a suffix of this sequence after a reconnect.
func UpdatesForVP(c *Collection, vpIdx int32) []*bgp.Update {
	v := c.World.VPs.VP(int(vpIdx))
	var out []*bgp.Update
	for _, r := range c.Records {
		if r.VP != vpIdx {
			continue
		}
		u := &bgp.Update{ASPath: bgp.SequencePath(c.Paths[r.Path])}
		pfx := c.Prefixes[r.Prefix]
		if pfx.Addr().Is4() {
			u.NextHop = v.Addr
			u.Announced = []netip.Prefix{pfx}
		} else {
			u.V6NextHop = v6NextHop
			u.V6Announced = []netip.Prefix{pfx}
		}
		out = append(out, u)
	}
	return out
}

// FeedVP streams one vantage point's base-day routes over an established
// BGP session, the way a real VP feeds a collector, and closes the session.
// The session is torn down on every exit path — a Send failure must not
// leave the keepalive goroutine running. Returns the number of UPDATEs sent.
func FeedVP(sess *bgpsession.Session, c *Collection, vpIdx int32) (int, error) {
	updates := UpdatesForVP(c, vpIdx)
	for n, u := range updates {
		if err := sess.Send(u); err != nil {
			sess.Close()
			return n, fmt.Errorf("routing: feed VP %d: %w", vpIdx, err)
		}
	}
	return len(updates), sess.Close()
}

// v6NextHop is the synthetic IPv6 next hop used when feeding IPv6 routes
// (VP addresses in the world model are IPv4).
var v6NextHop = netip.MustParseAddr("2001:db8::1")

// CollectionFromTables assembles a Collection from per-VP session tables,
// the collector-side counterpart of FeedVP. All prefixes are marked stable
// (a live feed carries one table).
func CollectionFromTables(c *Collection, tables map[int32]*bgpsession.Table) *Collection {
	out := &Collection{World: c.World, Days: 1}
	prefixIdx := map[netip.Prefix]int32{}

	vps := make([]int32, 0, len(tables))
	for v := range tables {
		vps = append(vps, v)
	}
	slices.Sort(vps)

	for _, v := range vps {
		t := tables[v]
		pfxs := make([]netip.Prefix, 0, len(t.Routes))
		for p := range t.Routes {
			pfxs = append(pfxs, p)
		}
		slices.SortFunc(pfxs, func(a, b netip.Prefix) int {
			if c := a.Addr().Compare(b.Addr()); c != 0 {
				return c
			}
			return cmp.Compare(a.Bits(), b.Bits())
		})
		for _, p := range pfxs {
			pi, ok := prefixIdx[p]
			if !ok {
				pi = int32(len(out.Prefixes))
				prefixIdx[p] = pi
				out.Prefixes = append(out.Prefixes, p)
				origin, _ := t.Routes[p].Origin()
				out.Origin = append(out.Origin, origin)
			}
			out.Records = append(out.Records, Record{
				VP:     v,
				Prefix: pi,
				Path:   int32(len(out.Paths)),
			})
			out.Paths = append(out.Paths, t.Routes[p])
		}
	}
	out.Stable = make([]bool, len(out.Prefixes))
	for i := range out.Stable {
		out.Stable[i] = true
	}
	return out
}
