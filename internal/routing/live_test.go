package routing

import (
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"countryrank/internal/bgpsession"
)

// TestLiveFeedRoundTrip runs real BGP sessions between three vantage points
// and a collector over in-memory pipes, then rebuilds a collection from the
// collected tables and compares it against the original records.
func TestLiveFeedRoundTrip(t *testing.T) {
	w := testWorld(t)
	col := BuildCollection(w, BuildOptions{LoopFrac: -1, PoisonFrac: -1, UnallocFrac: -1, UnstableFrac: -1})

	// Pick three VPs with records.
	counts := map[int32]int{}
	for _, r := range col.Records {
		counts[r.VP]++
	}
	var vps []int32
	for v, n := range counts {
		if n > 0 {
			vps = append(vps, v)
		}
		if len(vps) == 3 {
			break
		}
	}
	if len(vps) < 3 {
		t.Skip("not enough VPs")
	}

	tables := map[int32]*bgpsession.Table{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, vpIdx := range vps {
		vpIdx := vpIdx
		speakerConn, collectorConn := net.Pipe()
		wg.Add(2)
		go func() {
			defer wg.Done()
			sess, err := bgpsession.Establish(speakerConn, bgpsession.Config{
				AS: w.VPs.VP(int(vpIdx)).AS, BGPID: netip.MustParseAddr("10.0.0.1"),
				HoldTime: 10 * time.Second,
			})
			if err != nil {
				t.Errorf("speaker establish: %v", err)
				return
			}
			if _, err := FeedVP(sess, col, vpIdx); err != nil {
				t.Errorf("feed: %v", err)
			}
		}()
		go func() {
			defer wg.Done()
			sess, err := bgpsession.Establish(collectorConn, bgpsession.Config{
				AS: 6447, BGPID: netip.MustParseAddr("10.0.0.2"), HoldTime: 10 * time.Second,
			})
			if err != nil {
				t.Errorf("collector establish: %v", err)
				return
			}
			table := bgpsession.NewTable()
			if _, err := sess.Collect(table, 0); err != nil {
				t.Errorf("collect: %v", err)
				return
			}
			mu.Lock()
			tables[vpIdx] = table
			mu.Unlock()
		}()
	}
	wg.Wait()

	live := CollectionFromTables(col, tables)

	// Every original record for these VPs must appear with its exact path.
	want := map[string]string{}
	for _, r := range col.Records {
		if _, ok := tables[r.VP]; !ok {
			continue
		}
		k := string(rune(r.VP)) + "|" + col.Prefixes[r.Prefix].String()
		want[k] = col.Paths[r.Path].String()
	}
	got := map[string]string{}
	for _, r := range live.Records {
		k := string(rune(r.VP)) + "|" + live.Prefixes[r.Prefix].String()
		got[k] = live.Paths[r.Path].String()
	}
	if len(got) != len(want) {
		t.Fatalf("live records %d, want %d", len(got), len(want))
	}
	for k, p := range want {
		if got[k] != p {
			t.Fatalf("route %q = %q, want %q", k, got[k], p)
		}
	}
}
