package routing

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"
	"os"

	"countryrank/internal/asn"
	"countryrank/internal/bgp"
	"countryrank/internal/mrt"
	"countryrank/internal/obs"
	"countryrank/internal/par"
	"countryrank/internal/ribstore"
	"countryrank/internal/topology"
)

// The MRT data-plane counters: stream volume in both directions plus the
// decode rejections that would otherwise vanish silently (unknown peers,
// malformed records). Each is bulk-added once per stream or export, never
// inside the per-record hot loop.
var (
	mMRTRecordsIn = obs.NewCounter("countryrank_routing_mrt_records_in_total",
		"RIB entries imported from MRT streams")
	mMRTBytesIn = obs.NewCounter("countryrank_routing_mrt_bytes_in_total",
		"bytes read from MRT streams")
	mMRTRecordsOut = obs.NewCounter("countryrank_routing_mrt_records_out_total",
		"RIB entries and updates written to MRT streams")
	mMRTBytesOut = obs.NewCounter("countryrank_routing_mrt_bytes_out_total",
		"bytes written to MRT streams")
	mMRTRejects = obs.NewCounter("countryrank_routing_mrt_decode_rejects_total",
		"MRT entries rejected during import (unknown peers, malformed records)")
)

// countingReader tracks bytes consumed from an MRT stream.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// countingWriter tracks bytes emitted to an MRT stream.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// scatterRecords stably distributes src into dst grouped by ascending
// key(r), with nKeys bounding the key space. Two chained passes implement an
// LSD radix sort over a composite key; one pass is a stable group-by that
// replaces a map plus sort.Slice when the keys are dense indexes.
func scatterRecords(src, dst []Record, nKeys int, key func(Record) int32) {
	cnt := make([]int32, nKeys+1)
	for _, r := range src {
		cnt[key(r)+1]++
	}
	for k := 0; k < nKeys; k++ {
		cnt[k+1] += cnt[k]
	}
	for _, r := range src {
		k := key(r)
		dst[cnt[k]] = r
		cnt[k]++
	}
}

// exportBuckets picks how many prefix- or VP-range buckets a spilled export
// partitions its records into: enough that one bucket's records sit
// comfortably in memory, few enough that the bucket writers' buffers don't.
func exportBuckets(nRecs int) int {
	const perBucket = 1 << 20 // records resident at once (~12 MB)
	n := nRecs/perBucket + 1
	if n > 256 {
		n = 256
	}
	return n
}

// forEachKeyRange streams a spilled collection's records through emit in
// ascending ranges of key (a monotone record field: prefix or VP index): an
// external group-by via on-disk bucket partitioning. Records arrive at emit
// in canonical order within each range, so emit sees exactly the slices a
// resident run would cut from the globally sorted stream.
func forEachKeyRange(c *Collection, nKeys int, key func(ribstore.Rec) int32, emit func([]Record) error) error {
	if c.NumRecords() == 0 || nKeys == 0 {
		return nil
	}
	tmp, err := os.MkdirTemp("", "countryrank-export-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	nb := exportBuckets(c.NumRecords())
	if nb > nKeys {
		nb = nKeys
	}
	bs, err := c.spill.set.Buckets(tmp, nb, func(r ribstore.Rec) int {
		return int(int64(key(r)) * int64(nb) / int64(nKeys))
	})
	if err != nil {
		return err
	}
	var buf []Record
	for i := 0; i < nb; i++ {
		buf, err = bs.AppendBucket(buf[:0], i)
		if err != nil {
			return err
		}
		if err := emit(buf); err != nil {
			return err
		}
	}
	return nil
}

// ExportMRT writes the collection's base-day RIB for one collector as a
// TABLE_DUMP_V2 stream: the same interchange format RouteViews and RIS
// publish, so downstream tooling can consume simulated dumps unchanged.
// Spilled collections are exported by streaming prefix-range buckets
// through the same group emitter, never holding the full record set
// resident; the output is byte-identical to the resident export.
func ExportMRT(w io.Writer, c *Collection, collector string, timestamp uint32) error {
	set := c.World.VPs
	coll, ok := set.Collector(collector)
	if !ok {
		return fmt.Errorf("routing: unknown collector %q", collector)
	}

	// Peer table: the collector's VPs, in VP-index order. peerOf maps the
	// dense VP index to its peer index, -1 for other collectors' VPs.
	peerOf := make([]int32, set.Len())
	var peers []mrt.Peer
	for i := 0; i < set.Len(); i++ {
		v := set.VP(i)
		if v.Collector != collector {
			peerOf[i] = -1
			continue
		}
		peerOf[i] = int32(len(peers))
		peers = append(peers, mrt.Peer{BGPID: v.Addr, Addr: v.Addr, AS: v.AS})
	}

	cw := &countingWriter{w: w}
	mw := mrt.NewWriter(cw, timestamp)
	if err := mw.WritePeerIndexTable(coll.ID, collector, peers); err != nil {
		return err
	}

	// emit writes one prefix-contiguous batch of records, arriving in
	// canonical order: two counting-sort passes group them by ascending
	// prefix index with ascending VP inside each group — least significant
	// digit first, so the VP order survives the stable scatter by prefix —
	// then each prefix group becomes one RIB record.
	//
	// entries and its parallel AS_SEQUENCE segments reuse scratch across
	// groups; segScratch is fully built before entries reference it, since
	// growing it mid-group would leave earlier ASPath slices pointing at
	// the retired array. keepBuf filters without touching the batch, so the
	// resident path can pass c.Records itself — no copy of the full slice.
	var entries []mrt.RIBEntry
	var segScratch []bgp.Segment
	var keepBuf, scratch []Record
	var nOut int64
	emit := func(batch []Record) error {
		keepBuf = keepBuf[:0]
		for _, r := range batch {
			if peerOf[r.VP] >= 0 {
				keepBuf = append(keepBuf, r)
			}
		}
		keep := keepBuf
		if len(keep) == 0 {
			return nil
		}
		if cap(scratch) < len(keep) {
			scratch = make([]Record, len(keep))
		}
		byVP := scratch[:len(keep)]
		scatterRecords(keep, byVP, set.Len(), func(r Record) int32 { return r.VP })
		scatterRecords(byVP, keep, len(c.Prefixes), func(r Record) int32 { return r.Prefix })
		for s := 0; s < len(keep); {
			p := keep[s].Prefix
			e := s
			for e < len(keep) && keep[e].Prefix == p {
				e++
			}
			segScratch = segScratch[:0]
			for _, r := range keep[s:e] {
				segScratch = append(segScratch, bgp.Segment{
					Type: bgp.SegmentSequence,
					ASNs: c.Paths[r.Path],
				})
			}
			entries = entries[:0]
			for i, r := range keep[s:e] {
				var seq bgp.ASPath
				if len(segScratch[i].ASNs) > 0 {
					seq = segScratch[i : i+1 : i+1]
				}
				entries = append(entries, mrt.RIBEntry{
					PeerIndex:    uint16(peerOf[r.VP]),
					OriginatedAt: timestamp,
					Attrs: bgp.AttrSet{
						Origin: bgp.OriginIGP,
						ASPath: seq,
					},
				})
			}
			if err := mw.WriteRIB(c.Prefixes[p], entries); err != nil {
				return err
			}
			s = e
		}
		nOut += int64(len(keep))
		return nil
	}

	if c.Spilled() {
		err := forEachKeyRange(c, len(c.Prefixes),
			func(r ribstore.Rec) int32 { return r.Prefix }, emit)
		if err != nil {
			return err
		}
	} else {
		if err := emit(c.Records); err != nil {
			return err
		}
	}
	if err := mw.Flush(); err != nil {
		return err
	}
	mMRTRecordsOut.Add(nOut)
	mMRTBytesOut.Add(cw.n)
	return nil
}

// ExportUpdatesMRT writes the BGP4MP update stream one collector would have
// recorded during day (1 ≤ day < c.Days): for every VP of the collector, an
// UPDATE announcing each prefix that appeared relative to day-1 and
// withdrawing each prefix that vanished. Combined with the day-0 RIB this
// reconstructs any day's table, the way RouteViews consumers replay
// rib + updates archives. Spilled collections stream VP-range buckets.
func ExportUpdatesMRT(w io.Writer, c *Collection, collector string, day int, timestamp uint32) error {
	if day <= 0 || day >= c.Days {
		return fmt.Errorf("routing: day %d outside 1..%d", day, c.Days-1)
	}
	set := c.World.VPs
	if _, ok := set.Collector(collector); !ok {
		return fmt.Errorf("routing: unknown collector %q", collector)
	}

	cw := &countingWriter{w: w}
	mw := mrt.NewWriter(cw, timestamp)
	collectorIP := netip.AddrFrom4([4]byte{192, 0, 2, 1})

	// emit writes one VP-contiguous batch: a stable counting pass groups the
	// collector's records by ascending VP while keeping record order within
	// each VP, then each changed prefix becomes one UPDATE.
	var raw []byte
	var keepBuf, scratch []Record
	var nOut int64
	emit := func(batch []Record) error {
		keepBuf = keepBuf[:0]
		for _, r := range batch {
			if set.VP(int(r.VP)).Collector == collector {
				keepBuf = append(keepBuf, r)
			}
		}
		keep := keepBuf
		if len(keep) == 0 {
			return nil
		}
		if cap(scratch) < len(keep) {
			scratch = make([]Record, len(keep))
		}
		order := scratch[:len(keep)]
		scatterRecords(keep, order, set.Len(), func(r Record) int32 { return r.VP })
		for _, r := range order {
			v := set.VP(int(r.VP))
			was := c.PresentOn(r.Prefix, day-1)
			is := c.PresentOn(r.Prefix, day)
			if was == is {
				continue
			}
			var u bgp.Update
			pfx := c.Prefixes[r.Prefix]
			switch {
			case is && pfx.Addr().Is4():
				u = bgp.Update{
					ASPath:    bgp.SequencePath(c.Paths[r.Path]),
					NextHop:   v.Addr,
					Announced: []netip.Prefix{pfx},
				}
			case is:
				u = bgp.Update{
					ASPath:      bgp.SequencePath(c.Paths[r.Path]),
					V6NextHop:   v6NextHop,
					V6Announced: []netip.Prefix{pfx},
				}
			case pfx.Addr().Is4():
				u = bgp.Update{Withdrawn: []netip.Prefix{pfx}}
			default:
				u = bgp.Update{V6Withdrawn: []netip.Prefix{pfx}}
			}
			var err error
			raw, err = u.AppendWire(raw[:0])
			if err != nil {
				return fmt.Errorf("routing: update: %w", err)
			}
			if err := mw.WriteBGP4MP(v.AS, 6447, v.Addr, collectorIP, raw); err != nil {
				return err
			}
			nOut++
		}
		return nil
	}

	if c.Spilled() {
		err := forEachKeyRange(c, set.Len(),
			func(r ribstore.Rec) int32 { return r.VP }, emit)
		if err != nil {
			return err
		}
	} else {
		if err := emit(c.Records); err != nil {
			return err
		}
	}
	if err := mw.Flush(); err != nil {
		return err
	}
	mMRTRecordsOut.Add(nOut)
	mMRTBytesOut.Add(cw.n)
	return nil
}

// importStream is the per-stream partial of a parallel ImportMRT. Records
// carry the global VP index but stream-local prefix and path indexes; the
// merge remaps them in stream order, which keeps the result independent of
// worker scheduling. paths is run-length deduplicated per peer, not fully
// interned — full hash-consing happens once, in the merge — so the hot
// decode loop stays free of intern-table hashing.
type importStream struct {
	prefixes  []netip.Prefix
	origins   []asn.ASN
	originSet []bool
	records   []Record
	paths     []bgp.Path
	// rejects counts entries dropped during decode (unknown peers, bad peer
	// indexes); bytes is the stream's wire size. Both fold into the obs
	// counters once per stream during the merge. resyncs / skippedBytes
	// account the reader's skip-and-resync recoveries in degraded mode.
	rejects      int64
	bytes        int64
	resyncs      int64
	skippedBytes int64
	err          error
}

func importOneStream(stream io.Reader, byAddr map[netip.Addr]int32, opt ImportOptions) (out importStream) {
	cr := &countingReader{r: stream}
	defer func() { out.bytes = cr.n }()
	r := mrt.NewReader(cr)
	if opt.SkipCorrupt {
		r.SetResync(true)
		defer func() {
			out.resyncs = r.Resyncs()
			out.skippedBytes = r.SkippedBytes()
		}()
	}
	prefixIdx := map[netip.Prefix]int32{}
	// vpOf resolves a stream peer index to the world VP index (-1 unknown);
	// it is built once per peer table so the hot loop never hashes peering
	// addresses. lastPath memoizes each peer's most recent path: exports
	// emit prefixes of one origin back to back, so consecutive RIB records
	// usually repeat the previous path per peer, and a slice compare
	// collapses the run. Retained paths are sliced out of a shared arena;
	// append may retire the arena's backing array, but earlier slices keep
	// the old one alive, so they stay valid.
	var vpOf, lastPath []int32
	var flat, arena bgp.Path
	for {
		rec, err := r.Scan()
		if err == io.EOF {
			return out
		}
		if err != nil {
			out.rejects++
			out.err = err
			return out
		}
		if rec.PeerIndexTable != nil {
			peers := rec.PeerIndexTable.Peers
			vpOf = vpOf[:0]
			lastPath = lastPath[:0]
			for _, p := range peers {
				gi, known := byAddr[p.Addr]
				if !known {
					gi = -1
				}
				vpOf = append(vpOf, gi)
				lastPath = append(lastPath, -1)
			}
			continue
		}
		rib := rec.RIB
		if rib == nil {
			continue
		}
		pi, ok := prefixIdx[rib.Prefix]
		if !ok {
			pi = int32(len(out.prefixes))
			prefixIdx[rib.Prefix] = pi
			out.prefixes = append(out.prefixes, rib.Prefix)
			out.origins = append(out.origins, 0)
			out.originSet = append(out.originSet, false)
		}
		for _, e := range rib.Entries {
			if int(e.PeerIndex) >= len(vpOf) {
				// In degraded mode a bad peer index (e.g. the PIT itself was
				// corrupt and skipped) drops the entry, not the stream.
				out.rejects++
				if opt.SkipCorrupt {
					continue
				}
				out.err = fmt.Errorf("routing: peer index %d out of range", e.PeerIndex)
				return out
			}
			vpIdx := vpOf[e.PeerIndex]
			if vpIdx < 0 {
				out.rejects++
				continue
			}
			flat = e.Attrs.ASPath.AppendFlat(flat[:0])
			if o, ok := flat.Origin(); ok && !out.originSet[pi] {
				out.origins[pi] = o
				out.originSet[pi] = true
			}
			pathID := lastPath[e.PeerIndex]
			if pathID < 0 || !flat.Equal(out.paths[pathID]) {
				pathID = int32(len(out.paths))
				start := len(arena)
				arena = append(arena, flat...)
				out.paths = append(out.paths, arena[start:len(arena):len(arena)])
				lastPath[e.PeerIndex] = pathID
			}
			out.records = append(out.records, Record{
				VP:     vpIdx,
				Prefix: pi,
				Path:   pathID,
			})
		}
	}
}

// ImportOptions tunes MRT ingest. The zero value is strict: any corrupt
// record aborts the import.
type ImportOptions struct {
	// SkipCorrupt turns on degraded-mode ingest: corrupt records are skipped
	// via the reader's resync scan, entries referencing unknown peer indexes
	// are dropped, and the import completes with the losses accounted in
	// ImportStats instead of returning an error. It also disables chunked
	// parallel file decode (resync recovery must see the whole stream).
	SkipCorrupt bool
	// SpillDir, when set, spills the merged records to columnar run files
	// under the directory (one run per stream or chunk) instead of holding
	// them resident; the collection streams them back via ForEachRecord.
	SpillDir string
	// ChunkTarget is the per-chunk byte target ImportMRTFiles splits files
	// into for parallel decode. 0 selects 4 MiB.
	ChunkTarget int64
}

// ImportStats accounts what a degraded import lost: the coverage report a
// partial collection is labelled with.
type ImportStats struct {
	// Records is the number of RIB entries imported.
	Records int64
	// Rejects is entries dropped during decode (unknown peers, bad indexes).
	Rejects int64
	// Resyncs is corrupt records skipped; SkippedBytes the bytes discarded.
	Resyncs      int64
	SkippedBytes int64
}

// ImportMRT parses TABLE_DUMP_V2 streams (one per collector) back into a
// Collection attached to the given world. VPs are matched by peering
// address; entries from unknown peers are dropped. Streams decode
// concurrently and merge in stream order, so the result is identical at any
// GOMAXPROCS. Paths are hash-consed into a shared table; the origin of each
// prefix is the first one observed in stream order, with "not yet seen"
// tracked explicitly so an AS0 origin is preserved rather than overwritten.
// Stability defaults to true for every prefix (MRT carries a single day).
func ImportMRT(w *topology.World, streams []io.Reader) (*Collection, error) {
	col, _, err := ImportMRTWith(w, streams, ImportOptions{})
	return col, err
}

// ImportMRTWith is ImportMRT with explicit options and loss accounting. With
// SkipCorrupt set it is the degraded-mode ingest path: corrupt records cost
// coverage, not the run.
func ImportMRTWith(w *topology.World, streams []io.Reader, opt ImportOptions) (*Collection, ImportStats, error) {
	parts := make([]importStream, len(streams))
	byAddr := vpsByAddr(w)
	par.ForEach(len(streams), func(si int) {
		parts[si] = importOneStream(streams[si], byAddr, opt)
	})
	return mergeImportParts(w, parts, opt)
}

// ImportMRTFiles is ImportMRT over dump files, decoding each file's record
// sections in parallel: a sequential header-only pre-scan (mrt.IndexSections)
// cuts the file at record boundaries into ~ChunkTarget-byte chunks, and each
// chunk is decoded by its own worker with the PEER_INDEX_TABLE record
// replayed in front. Chunks merge in (file, offset) order — the stream order
// a sequential decode would have produced — so the collection is identical
// to ImportMRT of the same files at any GOMAXPROCS. Files that cannot be
// pre-scanned (corrupt headers, a leading record that is not a PIT) and all
// SkipCorrupt imports fall back to sequential whole-file decode.
func ImportMRTFiles(w *topology.World, paths []string, opt ImportOptions) (*Collection, ImportStats, error) {
	if opt.ChunkTarget <= 0 {
		opt.ChunkTarget = 4 << 20
	}
	// chunk is one unit of parallel decode work.
	type chunk struct {
		r io.Reader
		// pitReplayed is the PIT bytes prepended to a non-leading chunk,
		// deducted from the byte metrics after decode.
		pitReplayed int64
	}
	var chunks []chunk
	var files []*os.File
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, ImportStats{}, err
		}
		files = append(files, f)
		sections := indexFile(f, opt)
		if len(sections) < 3 {
			// Nothing to parallelize (or the pre-scan failed): decode the
			// whole file as one sequential stream, which owns all error
			// handling and resync recovery.
			if _, err := f.Seek(0, io.SeekStart); err != nil {
				return nil, ImportStats{}, err
			}
			chunks = append(chunks, chunk{r: f})
			continue
		}
		pitRaw := make([]byte, sections[0].End-sections[0].Start)
		if _, err := f.ReadAt(pitRaw, sections[0].Start); err != nil {
			return nil, ImportStats{}, err
		}
		chunks = append(chunks, chunk{
			r: io.NewSectionReader(f, sections[0].Start, sections[1].End-sections[0].Start),
		})
		for _, s := range sections[2:] {
			chunks = append(chunks, chunk{
				r: io.MultiReader(bytes.NewReader(pitRaw),
					io.NewSectionReader(f, s.Start, s.End-s.Start)),
				pitReplayed: int64(len(pitRaw)),
			})
		}
	}

	byAddr := vpsByAddr(w)
	parts := make([]importStream, len(chunks))
	par.ForEach(len(chunks), func(ci int) {
		parts[ci] = importOneStream(chunks[ci].r, byAddr, opt)
		parts[ci].bytes -= chunks[ci].pitReplayed
	})
	return mergeImportParts(w, parts, opt)
}

// indexFile pre-scans one dump file into sections, or returns nil when the
// file must be decoded sequentially: degraded-mode imports (resync recovery
// is a whole-stream affair), unscannable files, or files whose first record
// is not the PEER_INDEX_TABLE every chunk needs replayed.
func indexFile(f *os.File, opt ImportOptions) []mrt.Section {
	if opt.SkipCorrupt {
		return nil
	}
	sections, err := mrt.IndexSections(f, opt.ChunkTarget)
	if err != nil || len(sections) == 0 {
		return nil
	}
	var hdr [12]byte
	if _, err := f.ReadAt(hdr[:], sections[0].Start); err != nil {
		return nil
	}
	typ := binary.BigEndian.Uint16(hdr[4:])
	sub := binary.BigEndian.Uint16(hdr[6:])
	if typ != mrt.TypeTableDumpV2 || sub != mrt.SubtypePeerIndexTable {
		return nil
	}
	return sections
}

func vpsByAddr(w *topology.World) map[netip.Addr]int32 {
	set := w.VPs
	byAddr := make(map[netip.Addr]int32, set.Len())
	for i := 0; i < set.Len(); i++ {
		byAddr[set.VP(i).Addr] = int32(i)
	}
	return byAddr
}

// mergeImportParts folds decoded stream partials into a Collection in part
// order, remapping stream-local prefix and path indexes into the global
// tables and routing the records through a recordSink (resident or spilled,
// one spill run per part).
func mergeImportParts(w *topology.World, parts []importStream, opt ImportOptions) (*Collection, ImportStats, error) {
	sp := obs.StartSpan("mrt-import")
	sp.AddItems(0, "records")
	defer sp.End()

	var stats ImportStats
	for si := range parts {
		p := &parts[si]
		mMRTBytesIn.Add(p.bytes)
		mMRTRecordsIn.Add(int64(len(p.records)))
		mMRTRejects.Add(p.rejects)
		sp.AddItems(int64(len(p.records)), "")
		stats.Records += int64(len(p.records))
		stats.Rejects += p.rejects
		stats.Resyncs += p.resyncs
		stats.SkippedBytes += p.skippedBytes
		if p.err != nil {
			return nil, stats, p.err
		}
	}

	col := &Collection{World: w, Days: 1}
	sink, err := newRecordSink(col, opt.SpillDir)
	if err != nil {
		return nil, stats, err
	}
	if opt.SpillDir == "" {
		nRecs := 0
		for si := range parts {
			nRecs += len(parts[si].records)
		}
		col.Records = make([]Record, 0, nRecs)
	}
	prefixIdx := map[netip.Prefix]int32{}
	it := bgp.NewInterner(0)
	var originSet []bool
	for si := range parts {
		p := &parts[si]
		if err := sink.nextShard(si); err != nil {
			return nil, stats, err
		}
		pfxMap := make([]int32, len(p.prefixes))
		for li, pfx := range p.prefixes {
			gi, ok := prefixIdx[pfx]
			if !ok {
				gi = int32(len(col.Prefixes))
				prefixIdx[pfx] = gi
				col.Prefixes = append(col.Prefixes, pfx)
				col.Origin = append(col.Origin, 0)
				originSet = append(originSet, false)
			}
			if p.originSet[li] && !originSet[gi] {
				col.Origin[gi] = p.origins[li]
				originSet[gi] = true
			}
			pfxMap[li] = gi
		}
		// Stream-local paths are already owned copies, so the global table
		// can adopt them without recopying.
		pathMap := make([]int32, len(p.paths))
		for li, path := range p.paths {
			pathMap[li] = it.InternOwned(path)
		}
		// Remap in place, then hand the part's records to the sink: the
		// resident path copies them into the output slice; the spill path
		// streams them to this part's run and the part is released.
		for k, r := range p.records {
			p.records[k] = Record{
				VP:     r.VP,
				Prefix: pfxMap[r.Prefix],
				Path:   pathMap[r.Path],
			}
		}
		if err := sink.append(p.records); err != nil {
			return nil, stats, err
		}
		p.records = nil
	}
	col.Paths = it.Paths()
	col.Stable = make([]bool, len(col.Prefixes))
	for i := range col.Stable {
		col.Stable[i] = true
	}
	if err := sink.finish(); err != nil {
		return nil, stats, err
	}
	return col, stats, nil
}
