package routing

import (
	"fmt"
	"io"
	"net/netip"
	"sort"

	"countryrank/internal/bgp"
	"countryrank/internal/mrt"
	"countryrank/internal/topology"
)

// ExportMRT writes the collection's base-day RIB for one collector as a
// TABLE_DUMP_V2 stream: the same interchange format RouteViews and RIS
// publish, so downstream tooling can consume simulated dumps unchanged.
func ExportMRT(w io.Writer, c *Collection, collector string, timestamp uint32) error {
	set := c.World.VPs
	coll, ok := set.Collector(collector)
	if !ok {
		return fmt.Errorf("routing: unknown collector %q", collector)
	}

	// Peer table: the collector's VPs, in VP-index order.
	var peerIdx = map[int32]uint16{}
	var peers []mrt.Peer
	for i := 0; i < set.Len(); i++ {
		v := set.VP(i)
		if v.Collector != collector {
			continue
		}
		peerIdx[int32(i)] = uint16(len(peers))
		peers = append(peers, mrt.Peer{BGPID: v.Addr, Addr: v.Addr, AS: v.AS})
	}

	mw := mrt.NewWriter(w, timestamp)
	if err := mw.WritePeerIndexTable(coll.ID, collector, peers); err != nil {
		return err
	}

	// Group records by prefix, keeping only this collector's VPs.
	byPrefix := make(map[int32][]Record)
	for _, r := range c.Records {
		if _, ok := peerIdx[r.VP]; ok {
			byPrefix[r.Prefix] = append(byPrefix[r.Prefix], r)
		}
	}
	pfxs := make([]int32, 0, len(byPrefix))
	for p := range byPrefix {
		pfxs = append(pfxs, p)
	}
	sort.Slice(pfxs, func(i, j int) bool { return pfxs[i] < pfxs[j] })

	for _, p := range pfxs {
		recs := byPrefix[p]
		sort.Slice(recs, func(i, j int) bool { return recs[i].VP < recs[j].VP })
		entries := make([]mrt.RIBEntry, 0, len(recs))
		for _, r := range recs {
			entries = append(entries, mrt.RIBEntry{
				PeerIndex:    peerIdx[r.VP],
				OriginatedAt: timestamp,
				Attrs: bgp.AttrSet{
					Origin: bgp.OriginIGP,
					ASPath: bgp.SequencePath(c.Paths[r.Path]),
				},
			})
		}
		if err := mw.WriteRIB(c.Prefixes[p], entries); err != nil {
			return err
		}
	}
	return mw.Flush()
}

// ExportUpdatesMRT writes the BGP4MP update stream one collector would have
// recorded during day (1 ≤ day < c.Days): for every VP of the collector, an
// UPDATE announcing each prefix that appeared relative to day-1 and
// withdrawing each prefix that vanished. Combined with the day-0 RIB this
// reconstructs any day's table, the way RouteViews consumers replay
// rib + updates archives.
func ExportUpdatesMRT(w io.Writer, c *Collection, collector string, day int, timestamp uint32) error {
	if day <= 0 || day >= c.Days {
		return fmt.Errorf("routing: day %d outside 1..%d", day, c.Days-1)
	}
	set := c.World.VPs
	if _, ok := set.Collector(collector); !ok {
		return fmt.Errorf("routing: unknown collector %q", collector)
	}

	mw := mrt.NewWriter(w, timestamp)
	collectorIP := netip.AddrFrom4([4]byte{192, 0, 2, 1})

	// Group this collector's records by VP for deterministic emission.
	byVP := map[int32][]Record{}
	var vpOrder []int32
	for _, r := range c.Records {
		v := set.VP(int(r.VP))
		if v.Collector != collector {
			continue
		}
		if _, seen := byVP[r.VP]; !seen {
			vpOrder = append(vpOrder, r.VP)
		}
		byVP[r.VP] = append(byVP[r.VP], r)
	}
	sort.Slice(vpOrder, func(i, j int) bool { return vpOrder[i] < vpOrder[j] })

	for _, vpIdx := range vpOrder {
		v := set.VP(int(vpIdx))
		for _, r := range byVP[vpIdx] {
			was := c.PresentOn(r.Prefix, day-1)
			is := c.PresentOn(r.Prefix, day)
			if was == is {
				continue
			}
			var u bgp.Update
			pfx := c.Prefixes[r.Prefix]
			switch {
			case is && pfx.Addr().Is4():
				u = bgp.Update{
					ASPath:    bgp.SequencePath(c.Paths[r.Path]),
					NextHop:   v.Addr,
					Announced: []netip.Prefix{pfx},
				}
			case is:
				u = bgp.Update{
					ASPath:      bgp.SequencePath(c.Paths[r.Path]),
					V6NextHop:   v6NextHop,
					V6Announced: []netip.Prefix{pfx},
				}
			case pfx.Addr().Is4():
				u = bgp.Update{Withdrawn: []netip.Prefix{pfx}}
			default:
				u = bgp.Update{V6Withdrawn: []netip.Prefix{pfx}}
			}
			raw, err := u.Marshal()
			if err != nil {
				return fmt.Errorf("routing: update: %w", err)
			}
			if err := mw.WriteBGP4MP(v.AS, 6447, v.Addr, collectorIP, raw); err != nil {
				return err
			}
		}
	}
	return mw.Flush()
}

// ImportMRT parses TABLE_DUMP_V2 streams (one per collector) back into a
// Collection attached to the given world. VPs are matched by peering
// address; entries from unknown peers are dropped. Stability defaults to
// true for every prefix (MRT carries a single day).
func ImportMRT(w *topology.World, streams []io.Reader) (*Collection, error) {
	set := w.VPs
	byAddr := map[netip.Addr]int32{}
	for i := 0; i < set.Len(); i++ {
		byAddr[set.VP(i).Addr] = int32(i)
	}

	col := &Collection{World: w, Days: 1}
	prefixIdx := map[netip.Prefix]int32{}

	for _, stream := range streams {
		r := mrt.NewReader(stream)
		var peers []mrt.Peer
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			if rec.PeerIndexTable != nil {
				peers = rec.PeerIndexTable.Peers
				continue
			}
			rib := rec.RIB
			if rib == nil {
				continue
			}
			pi, ok := prefixIdx[rib.Prefix]
			if !ok {
				pi = int32(len(col.Prefixes))
				prefixIdx[rib.Prefix] = pi
				col.Prefixes = append(col.Prefixes, rib.Prefix)
				col.Origin = append(col.Origin, 0)
			}
			for _, e := range rib.Entries {
				if int(e.PeerIndex) >= len(peers) {
					return nil, fmt.Errorf("routing: peer index %d out of range", e.PeerIndex)
				}
				vpIdx, known := byAddr[peers[e.PeerIndex].Addr]
				if !known {
					continue
				}
				path := e.Attrs.PathOf()
				if o, ok := path.Origin(); ok && col.Origin[pi] == 0 {
					col.Origin[pi] = o
				}
				col.Records = append(col.Records, Record{
					VP:     vpIdx,
					Prefix: pi,
					Path:   int32(len(col.Paths)),
				})
				col.Paths = append(col.Paths, path)
			}
		}
	}
	col.Stable = make([]bool, len(col.Prefixes))
	for i := range col.Stable {
		col.Stable[i] = true
	}
	return col, nil
}
