package routing

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// recordOffsets walks a well-formed MRT stream header-by-header and returns
// the byte offset of each record, so tests can corrupt precise positions.
func recordOffsets(t *testing.T, stream []byte) []int {
	t.Helper()
	var offsets []int
	pos := 0
	for pos+12 <= len(stream) {
		offsets = append(offsets, pos)
		length := int(binary.BigEndian.Uint32(stream[pos+8:]))
		pos += 12 + length
	}
	if pos != len(stream) {
		t.Fatalf("stream did not cleave into records: ended at %d of %d", pos, len(stream))
	}
	return offsets
}

// TestImportMRTDegraded corrupts one record in one collector stream and
// checks both ingest modes: strict aborts, SkipCorrupt completes with the
// loss accounted in ImportStats.
func TestImportMRTDegraded(t *testing.T) {
	w := testWorld(t)
	c := BuildCollection(w, BuildOptions{LoopFrac: -1, PoisonFrac: -1, UnallocFrac: -1})

	var clean [][]byte
	for _, coll := range w.VPs.Collectors() {
		var b bytes.Buffer
		if err := ExportMRT(&b, c, coll.Name, 1617235200); err != nil {
			t.Fatalf("export %s: %v", coll.Name, err)
		}
		clean = append(clean, b.Bytes())
	}

	// Blow up the length field of the second record (first RIB record after
	// the peer index table) in the first stream.
	offsets := recordOffsets(t, clean[0])
	if len(offsets) < 3 {
		t.Skip("first stream too small to corrupt safely")
	}
	mut := append([]byte(nil), clean[0]...)
	binary.BigEndian.PutUint32(mut[offsets[1]+8:], 1<<30)

	streams := func() []io.Reader {
		rs := []io.Reader{bytes.NewReader(mut)}
		for _, b := range clean[1:] {
			rs = append(rs, bytes.NewReader(b))
		}
		return rs
	}

	if _, err := ImportMRT(w, streams()); err == nil {
		t.Fatal("strict import accepted a corrupt record")
	}

	got, stats, err := ImportMRTWith(w, streams(), ImportOptions{SkipCorrupt: true})
	if err != nil {
		t.Fatalf("degraded import: %v", err)
	}
	if stats.Resyncs < 1 {
		t.Errorf("resyncs = %d, want >= 1", stats.Resyncs)
	}
	if stats.SkippedBytes == 0 {
		t.Error("skipped bytes = 0, want > 0")
	}
	if len(got.Records) >= len(c.Records) {
		t.Errorf("degraded import has %d records, want < %d (the corrupt record is lost)",
			len(got.Records), len(c.Records))
	}
	if stats.Records != int64(len(got.Records)) {
		t.Errorf("stats.Records = %d, collection has %d", stats.Records, len(got.Records))
	}
	// The loss is bounded: only the one corrupted record's entries are gone.
	if len(got.Records) == 0 {
		t.Fatal("degraded import lost everything")
	}
}
