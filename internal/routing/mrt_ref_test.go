package routing

import (
	"bytes"
	"fmt"
	"io"
	"net/netip"
	"runtime"
	"sort"
	"testing"

	"countryrank/internal/bgp"
	"countryrank/internal/mrt"
	"countryrank/internal/topology"
)

// This file retains the pre-counting-sort, serial MRT path as an executable
// reference, the same discipline the dense metric kernels use: the old
// map+sort.Slice exporters must be byte-identical to the new ones, and the
// serial importer must produce the same collection as the parallel one.

// exportMRTRef is the original ExportMRT: map-based peer index, group by
// prefix in a map, two sort.Slice passes.
func exportMRTRef(w io.Writer, c *Collection, collector string, timestamp uint32) error {
	set := c.World.VPs
	coll, ok := set.Collector(collector)
	if !ok {
		return fmt.Errorf("routing: unknown collector %q", collector)
	}

	var peerIdx = map[int32]uint16{}
	var peers []mrt.Peer
	for i := 0; i < set.Len(); i++ {
		v := set.VP(i)
		if v.Collector != collector {
			continue
		}
		peerIdx[int32(i)] = uint16(len(peers))
		peers = append(peers, mrt.Peer{BGPID: v.Addr, Addr: v.Addr, AS: v.AS})
	}

	mw := mrt.NewWriter(w, timestamp)
	if err := mw.WritePeerIndexTable(coll.ID, collector, peers); err != nil {
		return err
	}

	byPrefix := make(map[int32][]Record)
	for _, r := range c.Records {
		if _, ok := peerIdx[r.VP]; ok {
			byPrefix[r.Prefix] = append(byPrefix[r.Prefix], r)
		}
	}
	pfxs := make([]int32, 0, len(byPrefix))
	for p := range byPrefix {
		pfxs = append(pfxs, p)
	}
	sort.Slice(pfxs, func(i, j int) bool { return pfxs[i] < pfxs[j] })

	for _, p := range pfxs {
		recs := byPrefix[p]
		sort.Slice(recs, func(i, j int) bool { return recs[i].VP < recs[j].VP })
		entries := make([]mrt.RIBEntry, 0, len(recs))
		for _, r := range recs {
			entries = append(entries, mrt.RIBEntry{
				PeerIndex:    peerIdx[r.VP],
				OriginatedAt: timestamp,
				Attrs: bgp.AttrSet{
					Origin: bgp.OriginIGP,
					ASPath: bgp.SequencePath(c.Paths[r.Path]),
				},
			})
		}
		if err := mw.WriteRIB(c.Prefixes[p], entries); err != nil {
			return err
		}
	}
	return mw.Flush()
}

// exportUpdatesMRTRef is the original ExportUpdatesMRT: VP grouping in a
// map plus a sorted VP order, one Marshal per update.
func exportUpdatesMRTRef(w io.Writer, c *Collection, collector string, day int, timestamp uint32) error {
	if day <= 0 || day >= c.Days {
		return fmt.Errorf("routing: day %d outside 1..%d", day, c.Days-1)
	}
	set := c.World.VPs
	if _, ok := set.Collector(collector); !ok {
		return fmt.Errorf("routing: unknown collector %q", collector)
	}

	mw := mrt.NewWriter(w, timestamp)
	collectorIP := netip.AddrFrom4([4]byte{192, 0, 2, 1})

	byVP := map[int32][]Record{}
	var vpOrder []int32
	for _, r := range c.Records {
		v := set.VP(int(r.VP))
		if v.Collector != collector {
			continue
		}
		if _, seen := byVP[r.VP]; !seen {
			vpOrder = append(vpOrder, r.VP)
		}
		byVP[r.VP] = append(byVP[r.VP], r)
	}
	sort.Slice(vpOrder, func(i, j int) bool { return vpOrder[i] < vpOrder[j] })

	for _, vpIdx := range vpOrder {
		v := set.VP(int(vpIdx))
		for _, r := range byVP[vpIdx] {
			was := c.PresentOn(r.Prefix, day-1)
			is := c.PresentOn(r.Prefix, day)
			if was == is {
				continue
			}
			var u bgp.Update
			pfx := c.Prefixes[r.Prefix]
			switch {
			case is && pfx.Addr().Is4():
				u = bgp.Update{
					ASPath:    bgp.SequencePath(c.Paths[r.Path]),
					NextHop:   v.Addr,
					Announced: []netip.Prefix{pfx},
				}
			case is:
				u = bgp.Update{
					ASPath:      bgp.SequencePath(c.Paths[r.Path]),
					V6NextHop:   v6NextHop,
					V6Announced: []netip.Prefix{pfx},
				}
			case pfx.Addr().Is4():
				u = bgp.Update{Withdrawn: []netip.Prefix{pfx}}
			default:
				u = bgp.Update{V6Withdrawn: []netip.Prefix{pfx}}
			}
			raw, err := u.Marshal()
			if err != nil {
				return fmt.Errorf("routing: update: %w", err)
			}
			if err := mw.WriteBGP4MP(v.AS, 6447, v.Addr, collectorIP, raw); err != nil {
				return err
			}
		}
	}
	return mw.Flush()
}

// importMRTRef is the original serial ImportMRT, with the origin sentinel
// fixed the same way (explicit unset tracking) so only parallelism and
// interning differ from the production path.
func importMRTRef(w *topology.World, streams []io.Reader) (*Collection, error) {
	set := w.VPs
	byAddr := map[netip.Addr]int32{}
	for i := 0; i < set.Len(); i++ {
		byAddr[set.VP(i).Addr] = int32(i)
	}

	col := &Collection{World: w, Days: 1}
	prefixIdx := map[netip.Prefix]int32{}
	var originSet []bool

	for _, stream := range streams {
		r := mrt.NewReader(stream)
		var peers []mrt.Peer
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			if rec.PeerIndexTable != nil {
				peers = rec.PeerIndexTable.Peers
				continue
			}
			rib := rec.RIB
			if rib == nil {
				continue
			}
			pi, ok := prefixIdx[rib.Prefix]
			if !ok {
				pi = int32(len(col.Prefixes))
				prefixIdx[rib.Prefix] = pi
				col.Prefixes = append(col.Prefixes, rib.Prefix)
				col.Origin = append(col.Origin, 0)
				originSet = append(originSet, false)
			}
			for _, e := range rib.Entries {
				if int(e.PeerIndex) >= len(peers) {
					return nil, fmt.Errorf("routing: peer index %d out of range", e.PeerIndex)
				}
				vpIdx, known := byAddr[peers[e.PeerIndex].Addr]
				if !known {
					continue
				}
				path := e.Attrs.PathOf()
				if o, ok := path.Origin(); ok && !originSet[pi] {
					col.Origin[pi] = o
					originSet[pi] = true
				}
				col.Records = append(col.Records, Record{
					VP:     vpIdx,
					Prefix: pi,
					Path:   int32(len(col.Paths)),
				})
				col.Paths = append(col.Paths, path)
			}
		}
	}
	col.Stable = make([]bool, len(col.Prefixes))
	for i := range col.Stable {
		col.Stable[i] = true
	}
	return col, nil
}

func refWorldAndCollection(t *testing.T) (*topology.World, *Collection) {
	t.Helper()
	w := testWorld(t)
	return w, BuildCollection(w, BuildOptions{})
}

func TestExportMRTMatchesReference(t *testing.T) {
	w, c := refWorldAndCollection(t)
	for _, coll := range w.VPs.Collectors() {
		var got, want bytes.Buffer
		if err := ExportMRT(&got, c, coll.Name, 1617235200); err != nil {
			t.Fatalf("%s: %v", coll.Name, err)
		}
		if err := exportMRTRef(&want, c, coll.Name, 1617235200); err != nil {
			t.Fatalf("%s ref: %v", coll.Name, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("%s: export differs from reference (%d vs %d bytes)",
				coll.Name, got.Len(), want.Len())
		}
	}
}

func TestExportUpdatesMRTMatchesReference(t *testing.T) {
	w, c := refWorldAndCollection(t)
	for _, coll := range w.VPs.Collectors() {
		for day := 1; day < c.Days; day++ {
			var got, want bytes.Buffer
			if err := ExportUpdatesMRT(&got, c, coll.Name, day, 1617235200); err != nil {
				t.Fatalf("%s day %d: %v", coll.Name, day, err)
			}
			if err := exportUpdatesMRTRef(&want, c, coll.Name, day, 1617235200); err != nil {
				t.Fatalf("%s day %d ref: %v", coll.Name, day, err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("%s day %d: update export differs from reference", coll.Name, day)
			}
		}
	}
}

func exportAll(t *testing.T, w *topology.World, c *Collection) [][]byte {
	t.Helper()
	var dumps [][]byte
	for _, coll := range w.VPs.Collectors() {
		var buf bytes.Buffer
		if err := ExportMRT(&buf, c, coll.Name, 1617235200); err != nil {
			t.Fatalf("%s: %v", coll.Name, err)
		}
		dumps = append(dumps, buf.Bytes())
	}
	return dumps
}

func readersFor(dumps [][]byte) []io.Reader {
	rs := make([]io.Reader, len(dumps))
	for i, d := range dumps {
		rs[i] = bytes.NewReader(d)
	}
	return rs
}

// requireSameCollection compares two collections record by record. Path
// indexes are compared by value, not index: the parallel importer interns
// paths while the reference stores one per record.
func requireSameCollection(t *testing.T, got, want *Collection) {
	t.Helper()
	if len(got.Prefixes) != len(want.Prefixes) ||
		len(got.Records) != len(want.Records) {
		t.Fatalf("shape differs: %d/%d prefixes, %d/%d records",
			len(got.Prefixes), len(want.Prefixes), len(got.Records), len(want.Records))
	}
	for i := range want.Prefixes {
		if got.Prefixes[i] != want.Prefixes[i] {
			t.Fatalf("prefix %d: %v vs %v", i, got.Prefixes[i], want.Prefixes[i])
		}
		if got.Origin[i] != want.Origin[i] {
			t.Fatalf("origin of prefix %d: %v vs %v", i, got.Origin[i], want.Origin[i])
		}
		if got.Stable[i] != want.Stable[i] {
			t.Fatalf("stability of prefix %d differs", i)
		}
	}
	for i := range want.Records {
		g, r := got.Records[i], want.Records[i]
		if g.VP != r.VP || g.Prefix != r.Prefix {
			t.Fatalf("record %d: (%d,%d) vs (%d,%d)", i, g.VP, g.Prefix, r.VP, r.Prefix)
		}
		if !got.PathOf(i).Equal(want.PathOf(i)) {
			t.Fatalf("record %d path: %v vs %v", i, got.PathOf(i), want.PathOf(i))
		}
	}
}

func TestImportMRTMatchesReference(t *testing.T) {
	w, c := refWorldAndCollection(t)
	dumps := exportAll(t, w, c)

	got, err := ImportMRT(w, readersFor(dumps))
	if err != nil {
		t.Fatal(err)
	}
	want, err := importMRTRef(w, readersFor(dumps))
	if err != nil {
		t.Fatal(err)
	}
	requireSameCollection(t, got, want)
	if len(got.Paths) >= len(want.Paths) {
		t.Errorf("interning did not shrink the path table: %d vs %d",
			len(got.Paths), len(want.Paths))
	}
}

func TestImportMRTDeterministicAcrossGOMAXPROCS(t *testing.T) {
	w, c := refWorldAndCollection(t)
	dumps := exportAll(t, w, c)

	old := runtime.GOMAXPROCS(1)
	serial, err := ImportMRT(w, readersFor(dumps))
	runtime.GOMAXPROCS(old)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ImportMRT(w, readersFor(dumps))
	if err != nil {
		t.Fatal(err)
	}
	requireSameCollection(t, serial, parallel)
	// With interning the path tables must match index for index too.
	if len(serial.Paths) != len(parallel.Paths) {
		t.Fatalf("path tables differ: %d vs %d", len(serial.Paths), len(parallel.Paths))
	}
	for i := range serial.Paths {
		if !serial.Paths[i].Equal(parallel.Paths[i]) {
			t.Fatalf("path %d differs", i)
		}
	}
	for i := range serial.Records {
		if serial.Records[i] != parallel.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

// TestImportMRTOriginZero pins the origin-sentinel fix: a prefix whose first
// observed path originates at AS0 must keep AS0 rather than being
// overwritten by a later record (the old code used Origin==0 to mean "not
// yet seen").
func TestImportMRTOriginZero(t *testing.T) {
	w := testWorld(t)
	set := w.VPs
	coll := set.Collectors()[0]
	var peers []mrt.Peer
	for i := 0; i < set.Len() && len(peers) < 2; i++ {
		v := set.VP(i)
		if v.Collector != coll.Name {
			continue
		}
		peers = append(peers, mrt.Peer{BGPID: v.Addr, Addr: v.Addr, AS: v.AS})
	}
	if len(peers) < 2 {
		t.Skip("collector has fewer than two VPs")
	}

	var buf bytes.Buffer
	mw := mrt.NewWriter(&buf, 1617235200)
	if err := mw.WritePeerIndexTable(coll.ID, coll.Name, peers); err != nil {
		t.Fatal(err)
	}
	pfx := netip.MustParsePrefix("203.0.113.0/24")
	entries := []mrt.RIBEntry{
		// The first entry's path terminates at AS0, the second at AS64500.
		{PeerIndex: 0, Attrs: bgp.AttrSet{ASPath: bgp.SequencePath(bgp.Path{3356, 0})}},
		{PeerIndex: 1, Attrs: bgp.AttrSet{ASPath: bgp.SequencePath(bgp.Path{1299, 64500})}},
	}
	if err := mw.WriteRIB(pfx, entries); err != nil {
		t.Fatal(err)
	}
	if err := mw.Flush(); err != nil {
		t.Fatal(err)
	}

	col, err := ImportMRT(w, []io.Reader{bytes.NewReader(buf.Bytes())})
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Prefixes) != 1 || col.Prefixes[0] != pfx {
		t.Fatalf("prefixes = %v", col.Prefixes)
	}
	if col.Origin[0] != 0 {
		t.Fatalf("Origin = %v, want the first-seen AS0 origin preserved", col.Origin[0])
	}
	if len(col.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(col.Records))
	}
}
