// Package routing simulates BGP route propagation over the AS topology and
// assembles the vantage-point path collections the ranking pipeline consumes.
// Propagation follows the Gao–Rexford model that underpins the valley-free
// assumption the paper's metrics rely on: routes learned from customers are
// exported to everyone, routes learned from peers or providers only to
// customers, and each AS prefers customer routes over peer routes over
// provider routes, breaking ties by shortest AS path and then lowest
// next-hop ASN.
package routing

import (
	"cmp"
	"slices"

	"countryrank/internal/asn"
	"countryrank/internal/bgp"
	"countryrank/internal/topology"
)

// Route class in preference order. Lower is preferred.
const (
	classOrigin   uint8 = 0
	classCustomer uint8 = 1
	classPeer     uint8 = 2
	classProvider uint8 = 3
	classNone     uint8 = 4
)

// offer is a deferred phase-2 route offer across a peering link.
type offer struct{ to, via int32 }

// propState holds per-origin propagation state, reused across origins to
// avoid reallocation. The BFS queues, peer-offer list and distance buckets
// keep their backing arrays between origins, so a warm propagate call
// allocates nothing.
type propState struct {
	class  []uint8
	dist   []int32
	parent []int32
	// asns caches g.ASNs() so the tie-break hot path (better, sortByASN)
	// does not re-fetch the slice per comparison.
	asns []asn.ASN
	// cur / next are phase 1's ping-pong BFS queues; offers is phase 2's
	// deferred offer list; buckets are phase 3's distance buckets.
	cur, next []int32
	offers    []offer
	buckets   [][]int32
}

func newPropState(g *topology.Graph) *propState {
	n := g.NumASes()
	return &propState{
		class:  make([]uint8, n),
		dist:   make([]int32, n),
		parent: make([]int32, n),
		asns:   g.ASNs(),
	}
}

func (s *propState) reset() {
	for i := range s.class {
		s.class[i] = classNone
		s.dist[i] = 0
		s.parent[i] = -1
	}
	s.cur = s.cur[:0]
	s.next = s.next[:0]
	s.offers = s.offers[:0]
	for i := range s.buckets {
		s.buckets[i] = s.buckets[i][:0]
	}
	s.buckets = s.buckets[:0]
}

// growBuckets extends the bucket list to n entries, re-exposing retired
// inner arrays (and their capacity) instead of allocating fresh ones.
func (s *propState) growBuckets(n int32) {
	for int32(len(s.buckets)) < n {
		if len(s.buckets) < cap(s.buckets) {
			s.buckets = s.buckets[:len(s.buckets)+1]
		} else {
			s.buckets = append(s.buckets, nil)
		}
	}
}

// bucket appends v to distance bucket d.
func (s *propState) bucket(d int32, v int32) {
	s.growBuckets(d + 1)
	s.buckets[d] = append(s.buckets[d], v)
}

// better reports whether an offer (dist d via neighbor n) beats the current
// route of node v within the same class. Equal-length ties break on a
// deterministic per-(node, neighbor) hash: real BGP resolves such ties on
// router-local state (IGP cost, router ID), which is arbitrary but stable —
// a global "lowest ASN wins" rule would funnel every equal-cost decision in
// the world through the same provider and badly skew path diversity.
func better(g *topology.Graph, s *propState, v int32, d int32, n int32) bool {
	if d != s.dist[v] {
		return d < s.dist[v]
	}
	cur := s.parent[v]
	if cur < 0 {
		return true
	}
	asns := s.asns
	hn, hc := tieHash(asns[v], asns[n]), tieHash(asns[v], asns[cur])
	if hn != hc {
		return hn < hc
	}
	return asns[n] < asns[cur]
}

// tieHash mixes the deciding AS and the candidate neighbor into a stable
// pseudo-random preference.
func tieHash(v, n asn.ASN) uint32 {
	x := uint32(v)*0x9E3779B9 ^ uint32(n)*0x85EBCA6B
	x ^= x >> 16
	x *= 0x7FEB352D
	x ^= x >> 15
	x *= 0x846CA68B
	x ^= x >> 16
	return x
}

// propagate computes every AS's best route toward origin (a node index).
// After it returns, s.class/dist/parent describe the routing tree.
func propagate(g *topology.Graph, origin int32, s *propState) {
	s.reset()
	s.class[origin] = classOrigin
	s.dist[origin] = 0

	// Phase 1: customer routes climb provider links, breadth-first. The two
	// queues ping-pong over the state's reusable backing arrays.
	cur, next := append(s.cur[:0], origin), s.next[:0]
	for len(cur) > 0 {
		sortByASN(s.asns, cur)
		next = next[:0]
		for _, u := range cur {
			du := s.dist[u]
			for _, p := range g.ProvidersIdx(u) {
				switch {
				case s.class[p] < classCustomer:
					// origin or already-better class; never overwritten.
				case s.class[p] == classCustomer:
					if du+1 == s.dist[p] && better(g, s, p, du+1, u) {
						s.parent[p] = u
					}
					// Longer offers lose; shorter cannot occur in BFS order.
				default:
					s.class[p] = classCustomer
					s.dist[p] = du + 1
					s.parent[p] = u
					next = append(next, p)
				}
			}
		}
		cur, next = next, cur
	}
	s.cur, s.next = cur[:0], next[:0]

	// Phase 2: one-hop peer spread from every customer-routed AS.
	// Collect offers first so iteration order cannot leak into results.
	offers := s.offers[:0]
	for u := int32(0); u < int32(g.NumASes()); u++ {
		if s.class[u] > classCustomer {
			continue
		}
		for _, v := range g.PeersIdx(u) {
			if s.class[v] > classPeer {
				offers = append(offers, offer{v, u})
			}
		}
	}
	s.offers = offers
	for _, o := range offers {
		d := s.dist[o.via] + 1
		switch {
		case s.class[o.to] < classPeer:
		case s.class[o.to] == classPeer:
			if better(g, s, o.to, d, o.via) {
				s.dist[o.to] = d
				s.parent[o.to] = o.via
			}
		default:
			s.class[o.to] = classPeer
			s.dist[o.to] = d
			s.parent[o.to] = o.via
		}
	}

	// Phase 3: everything flows down customer links, multi-source BFS
	// ordered by distance (buckets; AS paths are short). The buckets and
	// their backing arrays live in the state and are reused across origins.
	maxD := int32(0)
	for u := int32(0); u < int32(g.NumASes()); u++ {
		if s.class[u] <= classPeer && s.dist[u] > maxD {
			maxD = s.dist[u]
		}
	}
	s.growBuckets(maxD + 2)
	for u := int32(0); u < int32(g.NumASes()); u++ {
		if s.class[u] <= classPeer {
			s.buckets[s.dist[u]] = append(s.buckets[s.dist[u]], u)
		}
	}
	for d := int32(0); d < int32(len(s.buckets)); d++ {
		bucket := s.buckets[d]
		sortByASN(s.asns, bucket)
		for _, u := range bucket {
			if s.dist[u] != d {
				continue // re-bucketed at a smaller distance already
			}
			for _, c := range g.CustomersIdx(u) {
				switch {
				case s.class[c] <= classPeer:
				case s.class[c] == classProvider:
					if d+1 == s.dist[c] && better(g, s, c, d+1, u) {
						s.parent[c] = u
					} else if d+1 < s.dist[c] {
						s.dist[c] = d + 1
						s.parent[c] = u
						s.bucket(d+1, c)
					}
				default:
					s.class[c] = classProvider
					s.dist[c] = d + 1
					s.parent[c] = u
					s.bucket(d+1, c)
				}
			}
		}
	}
}

func sortByASN(asns []asn.ASN, nodes []int32) {
	slices.SortFunc(nodes, func(a, b int32) int {
		return cmp.Compare(asns[a], asns[b])
	})
}

// extractPath returns the AS path from node v toward the origin of the
// routing tree in s: v's ASN first, origin last. Route-server hops are
// materialized in the path (real collectors see RS ASNs too), and origin
// prepending is applied. Returns nil when v has no route.
func extractPath(g *topology.Graph, s *propState, v int32) bgp.Path {
	if s.class[v] == classNone {
		return nil
	}
	var path bgp.Path
	for cur := v; ; {
		path = append(path, g.Node(cur).ASN)
		next := s.parent[cur]
		if next < 0 {
			break
		}
		// Peering sessions through an IXP route server leak the RS ASN into
		// the path; the sanitizer must strip it later.
		if rs := g.ViaRS(cur, next); rs != 0 && g.RelIdx(cur, next) == topology.RelP2P {
			path = append(path, rs)
		}
		cur = next
	}
	origin := path[len(path)-1]
	if n, ok := g.ByASN(origin); ok && n.Prepend > 0 {
		for i := 0; i < n.Prepend; i++ {
			path = append(path, origin)
		}
	}
	return path
}
