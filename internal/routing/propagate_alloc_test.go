package routing

import (
	"testing"

	"countryrank/internal/topology"
)

// TestPropagateSteadyStateAllocs guards the warm-path allocation contract:
// once a propState has been exercised over every origin, further propagate
// calls reuse the BFS queues, offer list and distance buckets and must not
// allocate at all. A regression here multiplies across the millions of
// origin propagations an internet-scale build performs.
func TestPropagateSteadyStateAllocs(t *testing.T) {
	w := testWorld(t)
	g := w.Graph
	g.ASNs() // warm the shared ASN cache like BuildCollection does
	st := newPropState(g)
	n := int32(g.NumASes())
	for origin := int32(0); origin < n; origin++ {
		propagate(g, origin, st)
	}
	origin := int32(0)
	allocs := testing.AllocsPerRun(50, func() {
		propagate(g, origin, st)
		origin = (origin + 1) % n
	})
	if allocs != 0 {
		t.Fatalf("warm propagate allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkPropagateWarm is the allocs/op companion of the guard test: run
// with -benchmem to watch the steady-state number directly.
func BenchmarkPropagateWarm(b *testing.B) {
	w := topology.Build(topology.Config{Seed: 5, StubScale: 0.1, VPScale: 0.1})
	g := w.Graph
	g.ASNs()
	st := newPropState(g)
	n := int32(g.NumASes())
	for origin := int32(0); origin < n; origin++ {
		propagate(g, origin, st)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		propagate(g, int32(i)%n, st)
	}
}
