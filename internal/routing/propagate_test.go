package routing

import (
	"testing"

	"countryrank/internal/asn"
	"countryrank/internal/bgp"
	"countryrank/internal/netx"
	"countryrank/internal/topology"
)

// figure1Graph builds the topology of the paper's Figure 1:
// C provider of D; D provider of E and F; A, B, C mutual peers;
// A provider of G; B provider of H. VPs sit in G and H.
func figure1Graph(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.NewGraph()
	for _, a := range []struct {
		asn  uint32
		name string
	}{
		{10, "A"}, {20, "B"}, {30, "C"}, {40, "D"}, {50, "E"}, {60, "F"}, {70, "G"}, {80, "H"},
	} {
		g.MustAddAS(topology.AS{ASN: asn.ASN(a.asn), Name: a.name, Registered: "US", Class: topology.ClassTransit})
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddP2C(30, 40)) // C < D
	must(g.AddP2C(40, 50)) // D < E
	must(g.AddP2C(40, 60)) // D < F
	must(g.AddP2P(10, 20, 0))
	must(g.AddP2P(10, 30, 0))
	must(g.AddP2P(20, 30, 0))
	must(g.AddP2C(10, 70)) // A < G
	must(g.AddP2C(20, 80)) // B < H
	return g
}

func pathAt(t *testing.T, g *topology.Graph, st *propState, a asn.ASN) bgp.Path {
	t.Helper()
	i, ok := g.Index(a)
	if !ok {
		t.Fatalf("no node %v", a)
	}
	return extractPath(g, st, i)
}

func TestFigure1Paths(t *testing.T) {
	g := figure1Graph(t)
	st := newPropState(g)
	origin, _ := g.Index(50) // E announces
	propagate(g, origin, st)

	// VP at G: G's provider A peers with C, C learned E via its customer
	// chain: G A C D E.
	if got := pathAt(t, g, st, 70); !got.Equal(bgp.Path{70, 10, 30, 40, 50}) {
		t.Errorf("path at G = %v", got)
	}
	// VP at H: H B C D E.
	if got := pathAt(t, g, st, 80); !got.Equal(bgp.Path{80, 20, 30, 40, 50}) {
		t.Errorf("path at H = %v", got)
	}
	// A and B learn via peer C (peer route).
	if got := pathAt(t, g, st, 10); !got.Equal(bgp.Path{10, 30, 40, 50}) {
		t.Errorf("path at A = %v", got)
	}
	// F learns via its provider D.
	if got := pathAt(t, g, st, 60); !got.Equal(bgp.Path{60, 40, 50}) {
		t.Errorf("path at F = %v", got)
	}
	// Origin's own path.
	if got := pathAt(t, g, st, 50); !got.Equal(bgp.Path{50}) {
		t.Errorf("path at E = %v", got)
	}
}

// TestPreferCustomerOverPeerOverProvider pins the Gao–Rexford preference.
func TestPreferCustomerOverPeerOverProvider(t *testing.T) {
	g := topology.NewGraph()
	for _, a := range []uint32{1, 2, 3, 4} {
		g.MustAddAS(topology.AS{ASN: asn.ASN(a), Class: topology.ClassTransit, Registered: "US"})
	}
	// Node 1 can reach origin 4 three ways: via customer 4 directly (p2c),
	// via peer 4? Build: 1 provider of 2; 2 provider of 4 (customer chain
	// 1<2<4); 1 peers with 3; 3 provider of 4. Customer route (1 2 4,
	// length 3) must beat peer route (1 3 4) even at equal length.
	if err := g.AddP2C(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddP2C(2, 4); err != nil {
		t.Fatal(err)
	}
	if err := g.AddP2P(1, 3, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AddP2C(3, 4); err != nil {
		t.Fatal(err)
	}
	st := newPropState(g)
	origin, _ := g.Index(4)
	propagate(g, origin, st)
	if got := pathAt(t, g, st, 1); !got.Equal(bgp.Path{1, 2, 4}) {
		t.Errorf("customer route should win: %v", got)
	}

	// Remove the customer chain: the peer route must now win over any
	// provider route.
	g2 := topology.NewGraph()
	for _, a := range []uint32{1, 3, 4, 5} {
		g2.MustAddAS(topology.AS{ASN: asn.ASN(a), Class: topology.ClassTransit, Registered: "US"})
	}
	g2.AddP2P(1, 3, 0)
	g2.AddP2C(3, 4)
	g2.AddP2C(5, 1) // 5 is 1's provider
	g2.AddP2C(5, 4) // provider route 1 5 4 available
	st2 := newPropState(g2)
	origin2, _ := g2.Index(4)
	propagate(g2, origin2, st2)
	if got := pathAt(t, g2, st2, 1); !got.Equal(bgp.Path{1, 3, 4}) {
		t.Errorf("peer route should beat provider route: %v", got)
	}
}

func TestShortestBeatsLonger(t *testing.T) {
	g := topology.NewGraph()
	for _, a := range []uint32{1, 20, 30, 35, 4} {
		g.MustAddAS(topology.AS{ASN: asn.ASN(a), Class: topology.ClassTransit, Registered: "US"})
	}
	// Customer routes from 1 to 4: direct via 20 (2 hops) and via 30-35
	// (3 hops). Shorter must win regardless of tie-break hashing.
	g.AddP2C(1, 20)
	g.AddP2C(1, 30)
	g.AddP2C(20, 4)
	g.AddP2C(30, 35)
	g.AddP2C(35, 4)
	st := newPropState(g)
	origin, _ := g.Index(4)
	propagate(g, origin, st)
	if got := pathAt(t, g, st, 1); !got.Equal(bgp.Path{1, 20, 4}) {
		t.Errorf("shortest customer route should win: %v", got)
	}
}

func TestEqualCostTieBreakDeterministic(t *testing.T) {
	build := func() *topology.Graph {
		g := topology.NewGraph()
		for _, a := range []uint32{1, 20, 30, 4} {
			g.MustAddAS(topology.AS{ASN: asn.ASN(a), Class: topology.ClassTransit, Registered: "US"})
		}
		g.AddP2C(1, 20)
		g.AddP2C(1, 30)
		g.AddP2C(20, 4)
		g.AddP2C(30, 4)
		return g
	}
	g := build()
	st := newPropState(g)
	origin, _ := g.Index(4)
	propagate(g, origin, st)
	first := pathAt(t, g, st, 1).Clone()
	if !first.Equal(bgp.Path{1, 20, 4}) && !first.Equal(bgp.Path{1, 30, 4}) {
		t.Fatalf("tie-break picked a non-candidate: %v", first)
	}
	// Re-running on a freshly built graph must reproduce the same choice.
	for i := 0; i < 3; i++ {
		g2 := build()
		st2 := newPropState(g2)
		origin2, _ := g2.Index(4)
		propagate(g2, origin2, st2)
		if got := pathAt(t, g2, st2, 1); !got.Equal(first) {
			t.Fatalf("tie-break unstable: %v vs %v", got, first)
		}
	}
}

func TestValleyFreePropagation(t *testing.T) {
	// Peer and provider routes must not be re-exported to peers/providers:
	// G (customer of A) reaches E in Figure 1, but C's peers A and B must
	// not relay A's peer route onward to each other's customers as a
	// shortcut. Verify no path violates valley-freeness on the full world.
	w := topology.Build(topology.Config{Seed: 5, StubScale: 0.1, VPScale: 0.1})
	col := BuildCollection(w, BuildOptions{LoopFrac: -1, PoisonFrac: -1, UnallocFrac: -1})
	rs := w.Graph.RouteServers()
	checked := 0
	for i := 0; i < len(col.Records); i++ {
		p := col.PathOf(i).DedupAdjacent()
		// Strip route-server hops: they are transparent.
		clean := make(bgp.Path, 0, len(p))
		for _, a := range p {
			if !rs[a] {
				clean = append(clean, a)
			}
		}
		if !valleyFree(w.Graph, clean) {
			t.Fatalf("path %v violates valley-freeness", p)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no records checked")
	}
}

// valleyFree reports whether the relationship sequence along the path (VP
// side first) is uphill (c2p), at most one peer step, then downhill (p2c).
func valleyFree(g *topology.Graph, p bgp.Path) bool {
	const (
		up = iota
		peered
		down
	)
	state := up
	for i := 0; i+1 < len(p); i++ {
		rel := g.Rel(p[i], p[i+1])
		switch rel {
		case topology.RelC2P:
			if state != up {
				return false
			}
		case topology.RelP2P:
			if state != up {
				return false
			}
			state = peered
		case topology.RelP2C:
			state = down
		default:
			return false // adjacent ASes with no relationship
		}
	}
	return true
}

func TestPrependAppearsAndDedups(t *testing.T) {
	g := topology.NewGraph()
	g.MustAddAS(topology.AS{ASN: 1, Class: topology.ClassTransit, Registered: "US"})
	g.MustAddAS(topology.AS{ASN: 2, Class: topology.ClassStub, Registered: "US", Prepend: 2})
	g.AddP2C(1, 2)
	st := newPropState(g)
	origin, _ := g.Index(2)
	propagate(g, origin, st)
	got := pathAt(t, g, st, 1)
	if !got.Equal(bgp.Path{1, 2, 2, 2}) {
		t.Errorf("prepended path = %v", got)
	}
	if !got.DedupAdjacent().Equal(bgp.Path{1, 2}) {
		t.Errorf("dedup = %v", got.DedupAdjacent())
	}
}

func TestRouteServerInPath(t *testing.T) {
	g := topology.NewGraph()
	g.MustAddAS(topology.AS{ASN: 1, Class: topology.ClassAccess, Registered: "DE"})
	g.MustAddAS(topology.AS{ASN: 2, Class: topology.ClassAccess, Registered: "DE"})
	g.MustAddAS(topology.AS{ASN: 6695, Class: topology.ClassRouteServer, Registered: "DE"})
	g.MustAddAS(topology.AS{ASN: 9, Class: topology.ClassStub, Registered: "DE"})
	g.AddP2P(1, 2, 6695)
	g.AddP2C(2, 9)
	st := newPropState(g)
	origin, _ := g.Index(9)
	propagate(g, origin, st)
	got := pathAt(t, g, st, 1)
	if !got.Equal(bgp.Path{1, 6695, 2, 9}) {
		t.Errorf("route-server path = %v", got)
	}
}

func TestNoRouteForDisconnected(t *testing.T) {
	g := topology.NewGraph()
	g.MustAddAS(topology.AS{ASN: 1, Class: topology.ClassStub, Registered: "US"})
	g.MustAddAS(topology.AS{ASN: 2, Class: topology.ClassStub, Registered: "US"})
	g.Originate(2, netx.MustPrefix("10.0.0.0/24"))
	st := newPropState(g)
	origin, _ := g.Index(2)
	propagate(g, origin, st)
	i1, _ := g.Index(1)
	if p := extractPath(g, st, i1); p != nil {
		t.Errorf("disconnected AS got a path: %v", p)
	}
}
