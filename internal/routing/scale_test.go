package routing

import (
	"bytes"
	"crypto/sha256"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"countryrank/internal/topology"
)

// collectionEqual compares everything downstream consumers can observe:
// prefix/origin/stability tables, the full record stream, and every
// record's path value.
func collectionEqual(t *testing.T, a, b *Collection, label string) {
	t.Helper()
	if !reflect.DeepEqual(a.Prefixes, b.Prefixes) {
		t.Fatalf("%s: prefixes differ", label)
	}
	if !reflect.DeepEqual(a.Origin, b.Origin) {
		t.Fatalf("%s: origins differ", label)
	}
	if !reflect.DeepEqual(a.Stable, b.Stable) || !reflect.DeepEqual(a.DayMask, b.DayMask) {
		t.Fatalf("%s: stability differs", label)
	}
	if a.NumRecords() != b.NumRecords() {
		t.Fatalf("%s: %d vs %d records", label, a.NumRecords(), b.NumRecords())
	}
	ra, err := allRecords(a)
	if err != nil {
		t.Fatalf("%s: stream a: %v", label, err)
	}
	rb, err := allRecords(b)
	if err != nil {
		t.Fatalf("%s: stream b: %v", label, err)
	}
	for i := range ra {
		if ra[i].VP != rb[i].VP || ra[i].Prefix != rb[i].Prefix {
			t.Fatalf("%s: record %d = %+v vs %+v", label, i, ra[i], rb[i])
		}
		if !a.Paths[ra[i].Path].Equal(b.Paths[rb[i].Path]) {
			t.Fatalf("%s: record %d path differs", label, i)
		}
	}
}

func allRecords(c *Collection) ([]Record, error) {
	out := make([]Record, 0, c.NumRecords())
	err := c.ForEachRecord(func(_ int, recs []Record) error {
		out = append(out, recs...)
		return nil
	})
	return out, err
}

// mrtDigest exports every collector and hashes the concatenated streams.
func mrtDigest(t *testing.T, c *Collection) [32]byte {
	t.Helper()
	h := sha256.New()
	for _, coll := range c.World.VPs.Collectors() {
		var buf bytes.Buffer
		if err := ExportMRT(&buf, c, coll.Name, 1617235200); err != nil {
			t.Fatal(err)
		}
		h.Write(buf.Bytes())
	}
	var d [32]byte
	copy(d[:], h.Sum(nil))
	return d
}

// TestShardedBuildDeterministic proves the tentpole invariant: the sharded
// build produces byte-identical collections (and byte-identical MRT exports)
// for every shard count at every GOMAXPROCS.
func TestShardedBuildDeterministic(t *testing.T) {
	w := testWorld(t)
	base := BuildCollection(w, BuildOptions{Shards: 1})
	baseDigest := mrtDigest(t, base)
	for _, procs := range []int{1, 4, 16} {
		prev := runtime.GOMAXPROCS(procs)
		for _, shards := range []int{2, 7, 64} {
			col := BuildCollection(w, BuildOptions{Shards: shards})
			collectionEqual(t, base, col, "sequential vs sharded")
			// The sharded interner assigns the same IDs too: records and
			// path tables match exactly, not just observably.
			if !reflect.DeepEqual(base.Records, col.Records) {
				t.Fatalf("procs=%d shards=%d: record slices differ", procs, shards)
			}
			if d := mrtDigest(t, col); d != baseDigest {
				t.Fatalf("procs=%d shards=%d: MRT digest differs", procs, shards)
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestSpilledBuildMatchesResident proves out-of-core builds are observably
// identical to resident ones, through both the record stream and MRT export.
func TestSpilledBuildMatchesResident(t *testing.T) {
	w := testWorld(t)
	resident := BuildCollection(w, BuildOptions{})
	spilled, err := BuildCollectionWith(w, BuildOptions{SpillDir: t.TempDir(), Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer spilled.Close()
	if !spilled.Spilled() || spilled.Records != nil {
		t.Fatal("spilled collection holds resident records")
	}
	if resident.Spilled() || resident.SpillBytes() != 0 {
		t.Fatal("resident collection claims a spill")
	}
	if spilled.SpillBytes() <= 0 {
		t.Fatal("spill wrote no bytes")
	}
	collectionEqual(t, resident, spilled, "resident vs spilled")
	if mrtDigest(t, resident) != mrtDigest(t, spilled) {
		t.Fatal("MRT export differs between resident and spilled")
	}

	// The spilled update stream must match the resident one as well.
	coll := w.VPs.Collectors()[0]
	var ur, us bytes.Buffer
	if err := ExportUpdatesMRT(&ur, resident, coll.Name, 1, 1617235200); err != nil {
		t.Fatal(err)
	}
	if err := ExportUpdatesMRT(&us, spilled, coll.Name, 1, 1617235200); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ur.Bytes(), us.Bytes()) {
		t.Fatal("update stream differs between resident and spilled")
	}
}

// TestSpillErrorPaths proves damaged spill files fail loudly, not quietly:
// a corrupt group surfaces through ForEachRecord, a truncated run through
// the streaming footer check.
func TestSpillErrorPaths(t *testing.T) {
	w := testWorld(t)
	dir := t.TempDir()
	col, err := BuildCollectionWith(w, BuildOptions{SpillDir: dir, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	runs, err := filepath.Glob(filepath.Join(dir, "run-*.crib"))
	if err != nil || len(runs) == 0 {
		t.Fatalf("no runs found: %v", err)
	}

	// Flip a payload byte in the first non-empty run.
	var victim string
	for _, r := range runs {
		if st, err := os.Stat(r); err == nil && st.Size() > 64 {
			victim = r
			break
		}
	}
	if victim == "" {
		t.Fatal("no non-empty run to corrupt")
	}
	f, err := os.OpenFile(victim, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], 40); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], 40); err != nil {
		t.Fatal(err)
	}
	f.Close()
	err = col.ForEachRecord(func(int, []Record) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corrupt run streamed without a CRC error: %v", err)
	}

	// Restore, then truncate the tail: the missing footer must abort the
	// stream.
	if _, err := os.Stat(victim); err != nil {
		t.Fatal(err)
	}
	f, err = os.OpenFile(victim, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], 40); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := col.ForEachRecord(func(int, []Record) error { return nil }); err != nil {
		t.Fatalf("restored run failed to stream: %v", err)
	}
	st, err := os.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(victim, st.Size()-20); err != nil {
		t.Fatal(err)
	}
	if err := col.ForEachRecord(func(int, []Record) error { return nil }); err == nil {
		t.Fatal("truncated run streamed without error")
	}
}

// TestImportMRTFilesMatchesStreams proves the chunk-parallel file importer
// is identical to the sequential stream importer — including with a chunk
// target small enough to force many chunks per file — and that a spilled
// import matches a resident one.
func TestImportMRTFilesMatchesStreams(t *testing.T) {
	w := testWorld(t)
	col := BuildCollection(w, BuildOptions{})
	dir := t.TempDir()
	var paths []string
	for _, coll := range w.VPs.Collectors() {
		var buf bytes.Buffer
		if err := ExportMRT(&buf, col, coll.Name, 1617235200); err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, coll.Name+".mrt")
		if err := os.WriteFile(p, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}

	seq := importViaStreams(t, w, paths)
	for _, target := range []int64{1 << 12, 1 << 20} {
		par, _, err := ImportMRTFiles(w, paths, ImportOptions{ChunkTarget: target})
		if err != nil {
			t.Fatal(err)
		}
		collectionEqual(t, seq, par, "sequential vs chunked import")
		if !reflect.DeepEqual(seq.Records, par.Records) {
			t.Fatalf("target=%d: record slices differ", target)
		}
	}

	spilled, _, err := ImportMRTFiles(w, paths, ImportOptions{ChunkTarget: 1 << 12, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer spilled.Close()
	if !spilled.Spilled() {
		t.Fatal("import ignored SpillDir")
	}
	collectionEqual(t, seq, spilled, "resident vs spilled import")
}

func importViaStreams(t *testing.T, w *topology.World, paths []string) *Collection {
	t.Helper()
	var files []*os.File
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	readers := make([]io.Reader, 0, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		readers = append(readers, f)
	}
	col, err := ImportMRT(w, readers)
	if err != nil {
		t.Fatal(err)
	}
	return col
}
