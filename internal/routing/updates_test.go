package routing

import (
	"bytes"
	"io"
	"net/netip"
	"testing"

	"countryrank/internal/bgp"
	"countryrank/internal/mrt"
)

// TestUpdateStreamReconstructsDailyRIBs replays day-0 RIB + per-day BGP4MP
// update streams and verifies the result matches each day's ground-truth
// table, per VP — the rib+updates consumption model of RouteViews archives.
func TestUpdateStreamReconstructsDailyRIBs(t *testing.T) {
	w := testWorld(t)
	c := BuildCollection(w, BuildOptions{LoopFrac: -1, PoisonFrac: -1, UnallocFrac: -1, UnstableFrac: 0.3})

	collector := w.VPs.Collectors()[2].Name
	// Current table per (vp, prefix), seeded from day 0.
	type key struct {
		vp  int32
		pfx netip.Prefix
	}
	table := map[key]bgp.Path{}
	vpOfAddr := map[netip.Addr]int32{}
	for i := 0; i < w.VPs.Len(); i++ {
		vpOfAddr[w.VPs.VP(i).Addr] = int32(i)
	}
	collectorRecords := 0
	for _, r := range c.Records {
		if w.VPs.VP(int(r.VP)).Collector != collector {
			continue
		}
		collectorRecords++
		if c.PresentOn(r.Prefix, 0) {
			table[key{r.VP, c.Prefixes[r.Prefix]}] = c.Paths[r.Path]
		}
	}
	if collectorRecords == 0 {
		t.Skip("collector has no records at this scale")
	}

	for day := 1; day < c.Days; day++ {
		var buf bytes.Buffer
		if err := ExportUpdatesMRT(&buf, c, collector, day, uint32(1000+day)); err != nil {
			t.Fatalf("export day %d: %v", day, err)
		}
		r := mrt.NewReader(&buf)
		events := 0
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("day %d read: %v", day, err)
			}
			m := rec.BGP4MP
			if m == nil || m.Message == nil || m.Message.Update == nil {
				t.Fatalf("day %d: non-update record %+v", day, rec)
			}
			vpIdx, ok := vpOfAddr[m.PeerIP]
			if !ok {
				t.Fatalf("unknown peer %v", m.PeerIP)
			}
			u := m.Message.Update
			for _, wd := range u.Withdrawn {
				delete(table, key{vpIdx, wd})
			}
			for _, an := range u.Announced {
				table[key{vpIdx, an}] = u.ASPath.Flatten()
			}
			events++
		}
		// Compare against ground truth for this day.
		want := map[key]bgp.Path{}
		for _, r := range c.Records {
			if w.VPs.VP(int(r.VP)).Collector != collector {
				continue
			}
			if c.PresentOn(r.Prefix, day) {
				want[key{r.VP, c.Prefixes[r.Prefix]}] = c.Paths[r.Path]
			}
		}
		if len(table) != len(want) {
			t.Fatalf("day %d: table %d entries, want %d (events %d)", day, len(table), len(want), events)
		}
		for k, p := range want {
			if got, ok := table[k]; !ok || !got.Equal(p) {
				t.Fatalf("day %d: route %v mismatch: %v vs %v", day, k.pfx, got, p)
			}
		}
	}
}

func TestExportUpdatesValidation(t *testing.T) {
	w := testWorld(t)
	c := BuildCollection(w, BuildOptions{})
	if err := ExportUpdatesMRT(io.Discard, c, "rc-US", 0, 0); err == nil {
		t.Error("day 0 has no predecessor; must error")
	}
	if err := ExportUpdatesMRT(io.Discard, c, "rc-US", c.Days, 0); err == nil {
		t.Error("day out of range must error")
	}
	if err := ExportUpdatesMRT(io.Discard, c, "nope", 1, 0); err == nil {
		t.Error("unknown collector must error")
	}
}

func TestDayMaskInvariants(t *testing.T) {
	w := testWorld(t)
	c := BuildCollection(w, BuildOptions{})
	full := uint16(1<<c.Days) - 1
	for i := range c.Prefixes {
		mask := c.DayMask[i]
		if c.Stable[i] != (mask == full) {
			t.Fatalf("prefix %d: stable=%v mask=%b", i, c.Stable[i], mask)
		}
		if mask == 0 {
			t.Fatalf("prefix %d never announced", i)
		}
	}
}
