package sanitize

import "testing"

// TestInternerInvariants pins the dense-id contract the metric kernels
// depend on: ids are dense, assigned in first-appearance order, round-trip
// through ASNOf/IDOf, and PathIDs mirrors CleanPath hop for hop.
func TestInternerInvariants(t *testing.T) {
	w, col := smallWorld(t)
	ds := Run(col, fullConfig(w, col, 0.5))
	if ds.NumAS() == 0 {
		t.Fatal("interner saw no ASes")
	}
	if len(ds.ASNOf) != len(ds.IDOf) {
		t.Fatalf("ASNOf has %d entries, IDOf has %d", len(ds.ASNOf), len(ds.IDOf))
	}
	for id, a := range ds.ASNOf {
		if got := ds.IDOf[a]; got != int32(id) {
			t.Fatalf("IDOf[%v] = %d, want %d", a, got, id)
		}
	}
	if len(ds.PathIDs) != len(ds.CleanPath) {
		t.Fatalf("PathIDs has %d paths, CleanPath has %d", len(ds.PathIDs), len(ds.CleanPath))
	}
	next := int32(0) // first-appearance order: ids never skip ahead
	for i, p := range ds.CleanPath {
		ids := ds.PathIDs[i]
		if len(ids) != len(p) {
			t.Fatalf("record %d: %d ids for %d hops", i, len(ids), len(p))
		}
		for j, hop := range p {
			id := ids[j]
			if id < 0 || int(id) >= ds.NumAS() {
				t.Fatalf("record %d hop %d: id %d out of range [0,%d)", i, j, id, ds.NumAS())
			}
			if ds.ASNOf[id] != hop {
				t.Fatalf("record %d hop %d: id %d maps to %v, want %v", i, j, id, ds.ASNOf[id], hop)
			}
			if id > next {
				t.Fatalf("record %d hop %d: id %d assigned out of first-appearance order (next expected %d)",
					i, j, id, next)
			}
			if id == next {
				next++
			}
		}
	}
	if int(next) != ds.NumAS() {
		t.Fatalf("walked ids up to %d, interner holds %d", next, ds.NumAS())
	}
	// RecordIDs must agree with Record.
	for i := 0; i < ds.Len(); i++ {
		vp1, pfx1, path := ds.Record(i)
		vp2, pfx2, ids := ds.RecordIDs(i)
		if vp1 != vp2 || pfx1 != pfx2 || len(path) != len(ids) {
			t.Fatalf("record %d: RecordIDs disagrees with Record", i)
		}
	}
}
