// Package sanitize implements the path filtering pipeline of §3.1 and
// Table 1: before any metric is computed, every (VP, prefix, AS path)
// record is checked for day-to-day stability, unallocated ASNs, loops,
// path poisoning, and the geolocatability of both its vantage point and its
// prefix. Accepted paths are cleaned by removing IXP route-server ASNs and
// collapsing prepending.
package sanitize

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"time"

	"countryrank/internal/asn"
	"countryrank/internal/bgp"
	"countryrank/internal/countries"
	"countryrank/internal/geoloc"
	"countryrank/internal/netx"
	"countryrank/internal/obs"
	"countryrank/internal/routing"
)

// The Table-1 accounting, mirrored as monotonic counters so a scrape shows
// the same per-Reason drop profile Stats renders. Indexed by Reason.
var mByReason = [numReasons]*obs.Counter{
	Accepted:         obs.NewCounter("countryrank_sanitize_accepted_total", "records accepted by the sanitizer"),
	Unstable:         obs.NewCounter("countryrank_sanitize_dropped_unstable_total", "records dropped: prefix missing from >=1 daily RIB"),
	Unallocated:      obs.NewCounter("countryrank_sanitize_dropped_unallocated_total", "records dropped: path contains an unallocated ASN"),
	Loop:             obs.NewCounter("countryrank_sanitize_dropped_loop_total", "records dropped: non-adjacent duplicate ASNs in path"),
	Poisoned:         obs.NewCounter("countryrank_sanitize_dropped_poisoned_total", "records dropped: poisoned path signature"),
	VPNoLocation:     obs.NewCounter("countryrank_sanitize_dropped_vp_no_location_total", "records dropped: vantage point unlocatable"),
	PrefixNoLocation: obs.NewCounter("countryrank_sanitize_dropped_prefix_no_location_total", "records dropped: prefix geolocated to no or multiple countries"),
}

var (
	mRecords = obs.NewCounter("countryrank_sanitize_records_total",
		"records examined by the sanitizer")
	mRejected = obs.NewCounter("countryrank_sanitize_rejected_total",
		"records rejected by the sanitizer, all reasons")
	mRunSeconds = obs.NewHistogram("countryrank_sanitize_run_seconds",
		"duration of one sanitizer pass over a collection", nil)
)

// observe publishes one pass's accounting to the registry: a handful of
// bulk atomic adds after the filtering loop, nothing per record.
func (s Stats) observe(elapsed time.Duration) {
	mRecords.Add(int64(s.Total))
	mRejected.Add(int64(s.Rejected()))
	for r, c := range mByReason {
		c.Add(int64(s.Counts[r]))
	}
	mRunSeconds.Observe(elapsed)
}

// Reason classifies a record's filtering outcome, mirroring Table 1's rows.
type Reason uint8

const (
	// Accepted records feed the metrics.
	Accepted Reason = iota
	// Unstable: the prefix was not seen in all daily RIBs.
	Unstable
	// Unallocated: the path contains an ASN IANA reports as unassigned.
	Unallocated
	// Loop: the path contains non-adjacent duplicate ASNs.
	Loop
	// Poisoned: a non-top-tier AS appears between two top-tier ASes.
	Poisoned
	// VPNoLocation: the VP peers with a multi-hop collector.
	VPNoLocation
	// PrefixNoLocation: the prefix geolocated to no or multiple countries.
	PrefixNoLocation

	numReasons
)

func (r Reason) String() string {
	switch r {
	case Accepted:
		return "accepted"
	case Unstable:
		return "unstable"
	case Unallocated:
		return "unallocated"
	case Loop:
		return "loop"
	case Poisoned:
		return "poisoned"
	case VPNoLocation:
		return "VP no location"
	case PrefixNoLocation:
		return "prefix no location"
	}
	return fmt.Sprintf("Reason(%d)", r)
}

// Stats is the Table 1 accounting: record counts per filter reason.
type Stats struct {
	Counts [numReasons]int
	Total  int
}

// Rejected returns the count of non-accepted records.
func (s Stats) Rejected() int { return s.Total - s.Counts[Accepted] }

// Drops converts the accounting to its run-manifest form: total/accepted/
// rejected plus the per-reason drop counts keyed by Reason name.
func (s Stats) Drops() obs.DropStats {
	d := obs.DropStats{
		Total:    s.Total,
		Accepted: s.Counts[Accepted],
		Rejected: s.Rejected(),
		ByReason: make(map[string]int, int(numReasons)-1),
	}
	for r := Unstable; r < numReasons; r++ {
		d.ByReason[r.String()] = s.Counts[r]
	}
	return d
}

// Pct returns the percentage of all records with the given reason.
func (s Stats) Pct(r Reason) float64 {
	if s.Total == 0 {
		return 0
	}
	return 100 * float64(s.Counts[r]) / float64(s.Total)
}

// Render formats the stats as the paper's Table 1. An empty accounting
// (Total == 0) renders every percentage as 0 — without the guard the
// "rejected" and "total" rows would claim 100% of zero records.
func (s Stats) Render() string {
	rejectedPct, totalPct := 0.0, 0.0
	if s.Total > 0 {
		rejectedPct = 100 - s.Pct(Accepted)
		totalPct = 100.0
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %12d %7.2f%%\n", "rejected", s.Rejected(), rejectedPct)
	for _, r := range []Reason{Unstable, Unallocated, Loop, Poisoned, VPNoLocation, PrefixNoLocation} {
		fmt.Fprintf(&b, "  %-20s %12d %7.2f%%\n", r.String(), s.Counts[r], s.Pct(r))
	}
	fmt.Fprintf(&b, "%-22s %12d %7.2f%%\n", "accepted", s.Counts[Accepted], s.Pct(Accepted))
	fmt.Fprintf(&b, "%-22s %12d %7.2f%%\n", "total", s.Total, totalPct)
	return b.String()
}

// Config provides the sanitizer's external knowledge.
type Config struct {
	// Clique is the set of top-tier ASes used for poisoning detection.
	Clique map[asn.ASN]bool
	// Registry reports which ASNs are allocated.
	Registry *asn.Registry
	// RouteServers are removed from accepted paths.
	RouteServers map[asn.ASN]bool
	// GeoTable assigns countries to announced prefixes (§3.2.1); prefixes
	// it filtered become PrefixNoLocation rejects.
	GeoTable *geoloc.Table
}

// Dataset is the sanitized view of a collection: the accepted records with
// cleaned paths and resolved countries, plus the Table 1 accounting. It is
// the input to every ranking metric.
type Dataset struct {
	Col *routing.Collection
	// Accepted[i] is the canonical-order index of the i-th accepted record;
	// CleanPath[i] is its path after route-server removal and prepend
	// collapsing.
	Accepted  []int32
	CleanPath []bgp.Path
	// recVP / recPrefix are the accepted records' VP and prefix columns,
	// copied out during the filtering stream so the dataset never needs
	// random access into the collection's record store (which may be
	// out-of-core).
	recVP     []int32
	recPrefix []int32
	// VPCountry[v] is VP v's country, or "" when unlocatable.
	VPCountry []countries.Code
	// PrefixCountry[p] is prefix p's country, or "" when filtered.
	PrefixCountry []countries.Code
	// Weight[p] is the address weight of prefix p.
	Weight []uint64
	Stats  Stats

	// Dense AS-id interner, built once after filtering: every ASN that
	// appears on a clean path gets a small id in first-appearance order, so
	// the metric kernels can accumulate into flat slices indexed by id
	// instead of ASN-keyed maps.
	//
	// ASNOf[id] resolves an id back to its ASN; IDOf inverts it.
	ASNOf []asn.ASN
	IDOf  map[asn.ASN]int32
	// PathIDs[i] is CleanPath[i] with every hop resolved to its dense id.
	// All PathIDs share one backing array; callers must not mutate them.
	PathIDs [][]int32
}

// NewDataset wraps a collection directly into a Dataset without filtering:
// every record is accepted with its path as-is. Use it for already-clean
// inputs (tests, externally sanitized MRT imports); vpCountry and
// prefixCountry must be indexed like the collection's VPs and prefixes.
func NewDataset(col *routing.Collection, vpCountry, prefixCountry []countries.Code) *Dataset {
	ds := &Dataset{
		Col:           col,
		VPCountry:     vpCountry,
		PrefixCountry: prefixCountry,
		Weight:        make([]uint64, len(col.Prefixes)),
	}
	for p, pfx := range col.Prefixes {
		ds.Weight[p] = netx.AddressWeight(pfx)
	}
	ds.Stats.Total = col.NumRecords()
	ds.Stats.Counts[Accepted] = col.NumRecords()
	err := col.ForEachRecord(func(base int, recs []routing.Record) error {
		for k, r := range recs {
			ds.Accepted = append(ds.Accepted, int32(base+k))
			ds.recVP = append(ds.recVP, r.VP)
			ds.recPrefix = append(ds.recPrefix, r.Prefix)
			ds.CleanPath = append(ds.CleanPath, col.Paths[r.Path])
		}
		return nil
	})
	if err != nil {
		// Streaming only fails on spilled collections with unreadable run
		// files; that is not recoverable mid-build.
		panic(fmt.Sprintf("sanitize: record stream: %v", err))
	}
	ds.buildInterner()
	return ds
}

// Run sanitizes the collection.
func Run(col *routing.Collection, cfg Config) *Dataset {
	start := time.Now()
	ds := &Dataset{
		Col:           col,
		VPCountry:     make([]countries.Code, col.World.VPs.Len()),
		PrefixCountry: make([]countries.Code, len(col.Prefixes)),
		Weight:        make([]uint64, len(col.Prefixes)),
	}
	for v := 0; v < col.World.VPs.Len(); v++ {
		if c, ok := col.World.VPs.Country(v); ok {
			ds.VPCountry[v] = c
		}
	}
	for p, pfx := range col.Prefixes {
		ds.Weight[p] = netx.AddressWeight(pfx)
		if cfg.GeoTable != nil {
			if c, ok := cfg.GeoTable.Country(pfx); ok {
				ds.PrefixCountry[p] = c
			}
		}
	}

	// Cache per-path verdicts and cleaned forms: the same path index backs
	// many records (one per prefix of its origin).
	type pathVerdict struct {
		reason Reason // Accepted, Unallocated, Loop or Poisoned
		clean  bgp.Path
	}
	verdicts := make([]pathVerdict, len(col.Paths))
	for i, p := range col.Paths {
		verdicts[i] = judgePath(p, cfg)
	}

	ds.Stats.Total = col.NumRecords()
	err := col.ForEachRecord(func(base int, recs []routing.Record) error {
		for k, r := range recs {
			reason := Accepted
			v := verdicts[r.Path]
			switch {
			case !col.Stable[r.Prefix]:
				reason = Unstable
			case v.reason != Accepted:
				reason = v.reason
			case ds.VPCountry[r.VP] == "":
				reason = VPNoLocation
			case ds.PrefixCountry[r.Prefix] == "":
				reason = PrefixNoLocation
			}
			ds.Stats.Counts[reason]++
			if reason == Accepted {
				ds.Accepted = append(ds.Accepted, int32(base+k))
				ds.recVP = append(ds.recVP, r.VP)
				ds.recPrefix = append(ds.recPrefix, r.Prefix)
				ds.CleanPath = append(ds.CleanPath, v.clean)
			}
		}
		return nil
	})
	if err != nil {
		// Streaming only fails on spilled collections with unreadable run
		// files; that is not recoverable mid-run.
		panic(fmt.Sprintf("sanitize: record stream: %v", err))
	}
	ds.buildInterner()
	ds.Stats.observe(time.Since(start))
	return ds
}

// buildInterner assigns dense ids to every ASN on a clean path and
// pre-resolves each accepted record's path to ids. Ids are assigned in
// first-appearance order over the accepted records, so they are
// deterministic for a fixed collection.
func (d *Dataset) buildInterner() {
	total := 0
	for _, p := range d.CleanPath {
		total += len(p)
	}
	d.IDOf = make(map[asn.ASN]int32)
	buf := make([]int32, 0, total)
	d.PathIDs = make([][]int32, len(d.CleanPath))
	for i, p := range d.CleanPath {
		start := len(buf)
		for _, a := range p {
			id, ok := d.IDOf[a]
			if !ok {
				id = int32(len(d.ASNOf))
				d.IDOf[a] = id
				d.ASNOf = append(d.ASNOf, a)
			}
			buf = append(buf, id)
		}
		d.PathIDs[i] = buf[start:len(buf):len(buf)]
	}
}

// NumAS returns the number of distinct interned ASNs.
func (d *Dataset) NumAS() int { return len(d.ASNOf) }

// judgePath applies the path-content filters and cleaning of §3.1.
func judgePath(p bgp.Path, cfg Config) struct {
	reason Reason
	clean  bgp.Path
} {
	out := struct {
		reason Reason
		clean  bgp.Path
	}{reason: Accepted}

	for _, a := range p {
		if cfg.Registry != nil && !cfg.Registry.Allocated(a) {
			out.reason = Unallocated
			return out
		}
	}
	dedup := p.DedupAdjacent()
	if dedup.HasNonAdjacentLoop() {
		out.reason = Loop
		return out
	}
	if cfg.Clique != nil && poisoned(dedup, cfg.Clique) {
		out.reason = Poisoned
		return out
	}
	// Clean: drop route-server hops, then collapse any prepending.
	clean := dedup
	if len(cfg.RouteServers) > 0 {
		filtered := make(bgp.Path, 0, len(dedup))
		for _, a := range dedup {
			if !cfg.RouteServers[a] {
				filtered = append(filtered, a)
			}
		}
		clean = filtered.DedupAdjacent()
	}
	out.clean = clean
	return out
}

// poisoned reports whether a non-clique AS sits between two clique ASes,
// the signature of path poisoning under the valley-free assumption (§3.1).
func poisoned(p bgp.Path, clique map[asn.ASN]bool) bool {
	last := -1 // index of the previous clique AS
	for i, a := range p {
		if !clique[a] {
			continue
		}
		if last >= 0 && i-last > 1 {
			return true
		}
		last = i
	}
	return false
}

// Len returns the number of accepted records.
func (d *Dataset) Len() int { return len(d.Accepted) }

// Record returns the i-th accepted record's essentials.
func (d *Dataset) Record(i int) (vpIdx int32, prefixIdx int32, path bgp.Path) {
	return d.recVP[i], d.recPrefix[i], d.CleanPath[i]
}

// RecordIDs is Record with the path resolved to dense ids.
func (d *Dataset) RecordIDs(i int) (vpIdx int32, prefixIdx int32, ids []int32) {
	return d.recVP[i], d.recPrefix[i], d.PathIDs[i]
}

// PrefixOf returns the prefix of accepted record i.
func (d *Dataset) PrefixOf(i int) netip.Prefix {
	return d.Col.Prefixes[d.recPrefix[i]]
}

// CountriesWithPrefixes returns every country that has at least one
// geolocated prefix, sorted.
func (d *Dataset) CountriesWithPrefixes() []countries.Code {
	seen := map[countries.Code]bool{}
	for _, c := range d.PrefixCountry {
		if c != "" {
			seen[c] = true
		}
	}
	out := make([]countries.Code, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
