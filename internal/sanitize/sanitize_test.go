package sanitize

import (
	"strings"
	"testing"

	"countryrank/internal/asn"
	"countryrank/internal/bgp"
	"countryrank/internal/geoloc"
	"countryrank/internal/routing"
	"countryrank/internal/topology"
)

func smallWorld(t *testing.T) (*topology.World, *routing.Collection) {
	t.Helper()
	w := topology.Build(topology.Config{Seed: 9, StubScale: 0.1, VPScale: 0.15})
	col := routing.BuildCollection(w, routing.BuildOptions{})
	return w, col
}

func fullConfig(w *topology.World, col *routing.Collection, threshold float64) Config {
	clique := map[asn.ASN]bool{}
	for _, a := range w.Clique {
		clique[a] = true
	}
	return Config{
		Clique:       clique,
		Registry:     w.Graph.Registry(),
		RouteServers: w.Graph.RouteServers(),
		GeoTable:     geoloc.GeolocatePrefixes(w.Geo, col.AnnouncedPrefixes(), threshold),
	}
}

func TestRunAccounting(t *testing.T) {
	w, col := smallWorld(t)
	ds := Run(col, fullConfig(w, col, 0.5))
	s := ds.Stats
	if s.Total != len(col.Records) {
		t.Fatalf("total = %d, want %d", s.Total, len(col.Records))
	}
	sum := 0
	for _, c := range s.Counts {
		sum += c
	}
	if sum != s.Total {
		t.Fatalf("reason counts sum to %d, want %d", sum, s.Total)
	}
	if s.Counts[Accepted] != len(ds.Accepted) || len(ds.Accepted) != len(ds.CleanPath) {
		t.Fatal("accepted bookkeeping inconsistent")
	}
	// Table 1 shape checks: every reject class is exercised, acceptance in a
	// plausible band, unstable the biggest path-content reject after VP loc.
	for _, r := range []Reason{Unstable, Unallocated, Loop, VPNoLocation} {
		if s.Counts[r] == 0 {
			t.Errorf("reason %v never triggered", r)
		}
	}
	if pct := s.Pct(Accepted); pct < 50 || pct > 90 {
		t.Errorf("accepted = %.1f%%, want the Table 1 ballpark (≈70%%)", pct)
	}
	if s.Counts[Unstable] < s.Counts[Loop] {
		t.Error("unstable should dominate loops, as in Table 1")
	}
	if s.Rejected() != s.Total-s.Counts[Accepted] {
		t.Error("Rejected() inconsistent")
	}
	if s.Render() == "" {
		t.Error("Render empty")
	}
}

func TestAcceptedPathsAreClean(t *testing.T) {
	w, col := smallWorld(t)
	ds := Run(col, fullConfig(w, col, 0.5))
	rs := w.Graph.RouteServers()
	reg := w.Graph.Registry()
	for i := 0; i < ds.Len(); i++ {
		vpIdx, pfxIdx, p := ds.Record(i)
		if len(p) == 0 {
			t.Fatal("accepted record with empty path")
		}
		if p.HasNonAdjacentLoop() {
			t.Fatalf("accepted path has loop: %v", p)
		}
		for j, a := range p {
			if rs[a] {
				t.Fatalf("accepted path retains route server: %v", p)
			}
			if !reg.Allocated(a) {
				t.Fatalf("accepted path has unallocated ASN: %v", p)
			}
			if j > 0 && p[j-1] == a {
				t.Fatalf("accepted path has prepending: %v", p)
			}
		}
		if ds.VPCountry[vpIdx] == "" {
			t.Fatal("accepted record from unlocatable VP")
		}
		if ds.PrefixCountry[pfxIdx] == "" {
			t.Fatal("accepted record with unlocatable prefix")
		}
	}
}

func TestJudgePathDirect(t *testing.T) {
	reg := asn.NewRegistry([]asn.ASN{1, 2, 3, 3356, 1299, 9})
	clique := map[asn.ASN]bool{3356: true, 1299: true}
	rs := map[asn.ASN]bool{9: true}
	cfg := Config{Clique: clique, Registry: reg, RouteServers: rs}

	cases := []struct {
		name string
		path bgp.Path
		want Reason
	}{
		{"clean", bgp.Path{1, 2, 3}, Accepted},
		{"unallocated", bgp.Path{1, 64512, 3}, Unallocated},
		{"unknown-asn", bgp.Path{1, 77777, 3}, Unallocated},
		{"loop", bgp.Path{1, 2, 1, 3}, Loop},
		{"prepend-not-loop", bgp.Path{1, 2, 2, 3}, Accepted},
		{"poisoned", bgp.Path{3356, 2, 1299, 3}, Poisoned},
		{"adjacent-clique-ok", bgp.Path{3356, 1299, 3}, Accepted},
	}
	for _, c := range cases {
		got := judgePath(c.path, cfg)
		if got.reason != c.want {
			t.Errorf("%s: reason = %v, want %v", c.name, got.reason, c.want)
		}
	}
	// Route-server removal with prepend collapse across the removed hop.
	got := judgePath(bgp.Path{1, 9, 1, 2}, cfg)
	// 1 9 1 2 has a non-adjacent loop before cleaning... actually 1,9,1 is a
	// loop, so it is rejected; use a path where the RS sits between two
	// different ASes.
	if got.reason != Loop {
		t.Errorf("RS loop path: %v", got.reason)
	}
	got = judgePath(bgp.Path{1, 9, 2, 3}, cfg)
	if got.reason != Accepted || !got.clean.Equal(bgp.Path{1, 2, 3}) {
		t.Errorf("RS removal: %+v", got)
	}
}

func TestReasonString(t *testing.T) {
	for r := Accepted; r < numReasons; r++ {
		if r.String() == "" {
			t.Errorf("Reason(%d) empty", r)
		}
	}
	if Reason(200).String() == "" {
		t.Error("unknown reason should render")
	}
}

func TestCountriesWithPrefixes(t *testing.T) {
	w, col := smallWorld(t)
	ds := Run(col, fullConfig(w, col, 0.5))
	cs := ds.CountriesWithPrefixes()
	if len(cs) < 20 {
		t.Fatalf("only %d countries with prefixes", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i-1] >= cs[i] {
			t.Fatal("countries not sorted")
		}
	}
	found := map[string]bool{}
	for _, c := range cs {
		found[string(c)] = true
	}
	for _, c := range []string{"US", "AU", "JP", "RU", "TW"} {
		if !found[c] {
			t.Errorf("case-study country %s missing", c)
		}
	}
}

// TestRenderEmptyStats is a regression test: with Total == 0 the "rejected"
// row used to print 100.00% (100 - Pct(Accepted) with Pct returning 0) and
// the "total" row claimed 100.00% of zero records. Every percentage in an
// empty accounting must render as 0.00%.
func TestRenderEmptyStats(t *testing.T) {
	out := Stats{}.Render()
	if strings.Contains(out, "100.00%") {
		t.Fatalf("empty stats render a 100%% row:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !strings.HasSuffix(line, "0    0.00%") {
			t.Errorf("empty-stats row not zeroed: %q", line)
		}
	}
}

// TestRenderPercentages pins the non-empty case the fix must not disturb.
func TestRenderPercentages(t *testing.T) {
	var s Stats
	s.Counts[Accepted] = 75
	s.Counts[Loop] = 25
	s.Total = 100
	out := s.Render()
	for _, want := range []string{
		"rejected", "25.00%", "75.00%", "100.00%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}
