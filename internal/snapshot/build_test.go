package snapshot

import (
	"encoding/json"
	"testing"

	"countryrank/internal/core"
)

// TestBuildFromPipeline runs the real ranking pipeline on a small synthetic
// world and checks that Build renders a servable snapshot: every configured
// country that ranked anything gets a page, both global metrics are present,
// and the digest is reproducible for the same world.
func TestBuildFromPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a full pipeline")
	}
	opt := core.Options{Seed: 3, StubScale: 0.15, VPScale: 0.2}
	s := Build(core.NewPipeline(opt), 1, Config{MaxTopN: 5})

	ccs := s.CountryCodes()
	if len(ccs) == 0 {
		t.Fatal("snapshot serves no countries")
	}
	for _, m := range s.TopMetrics() {
		if m != "ahg" && m != "ccg" {
			t.Errorf("unexpected top metric %q", m)
		}
	}
	if len(s.TopMetrics()) != 2 {
		t.Fatalf("TopMetrics = %v", s.TopMetrics())
	}
	for _, cc := range ccs {
		if !json.Valid(s.CountryBody(cc)) {
			t.Errorf("country %s body is invalid JSON", cc)
		}
	}
	if !json.Valid(s.IndexBody()) {
		t.Error("index body is invalid JSON")
	}

	// Same world, different epoch → same content digest (rollover with
	// unchanged data keeps every ETag valid for caches).
	s2 := Build(core.NewPipeline(opt), 2, Config{MaxTopN: 5})
	if s2.Digest != s.Digest {
		t.Errorf("digest not reproducible: %s vs %s", s.Digest, s2.Digest)
	}
}
