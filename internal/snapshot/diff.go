package snapshot

// The drift diff engine: a deterministic comparison of two snapshots'
// structured rank vectors (carried on the Snapshot since assembly — the
// diff never re-parses served JSON). Every rollover the supervisor computes
// a Drift against the outgoing snapshot; cmd/rankdiff computes the same
// Drift offline from two persisted generations. Both paths run this code,
// so the live drift metrics and the offline report always agree — same
// churn scores, same top movers, bit-identical floats (the accumulation
// order is fixed: countries in sorted order, union ASNs in ascending
// order).
//
// Churn score (per metric): a weighted rank-displacement sum. For every AS
// in the union of the old and new top-K vectors,
//
//	d = |rank_old - rank_new|,  weight = 1 / min(rank_old, rank_new)
//
// where an AS absent from one side takes the virtual rank len(vector)+1
// (falling off the bottom of a top-10 costs less than falling from #1).
// The per-country sums add up into the metric's score, so a single swap at
// the top of one country (weight 1, d 1 each → 2.0) outweighs shuffling at
// the tail of many. A score of 0 means the ranked order is unchanged.

import (
	"slices"
	"strconv"
	"strings"

	"countryrank/internal/asn"
	"countryrank/internal/obs"
)

var (
	mDriftChurn = obs.NewFloatGauge("countryrank_drift_churn_score",
		"max per-metric churn score of the last rollover (weighted rank displacement)")
	mDriftMaxDelta = obs.NewGauge("countryrank_drift_max_rank_delta",
		"largest rank move of any AS ranked on both sides of the last rollover")
	mDriftRollovers = obs.NewCounter("countryrank_drift_rollovers_total",
		"rollovers for which a drift was computed (both sides carried rank vectors)")
)

// countryMetricKeys is the fixed per-country metric order, everywhere a
// country's four rank vectors are stored, persisted, or diffed.
var countryMetricKeys = [4]string{"CCI", "CCN", "AHI", "AHN"}

// RankEntry is one AS in a rank vector; the slice index is the 0-based
// rank. Value and Name ride along so reports and history pages need no
// side lookup.
type RankEntry struct {
	ASN   asn.ASN
	Value float64
	Name  string
}

// RankVec is one ranking's ordered top-K as structured data — the same
// entries the preserialized JSON body was rendered from, truncated to the
// snapshot's MaxTopN.
type RankVec []RankEntry

// maxTopMovers caps the per-metric mover list a Drift retains.
const maxTopMovers = 20

// Mover is one AS whose rank changed between epochs: moved within the
// ranking, entered it, or exited it.
type Mover struct {
	Metric  string  `json:"metric"`
	Country string  `json:"country,omitempty"` // empty for global tops
	ASN     asn.ASN `json:"asn"`
	Name    string  `json:"name,omitempty"`
	OldRank int     `json:"old_rank"` // 0 = not ranked before (entered)
	NewRank int     `json:"new_rank"` // 0 = not ranked after (exited)
	// Score is the displacement that ranked this mover: |Δrank|, with the
	// virtual bottom rank standing in for the missing side on entry/exit.
	Score int `json:"score"`
}

// MetricDrift aggregates one metric's movement across every country (or
// the single global ranking, for ccg/ahg).
type MetricDrift struct {
	Metric string  `json:"metric"`
	Churn  float64 `json:"churn_score"`
	// CountriesMoved counts countries with any movement (always 0 for the
	// global top metrics).
	CountriesMoved int `json:"countries_moved"`
	Moved          int `json:"asns_moved"` // ranked on both sides, rank changed
	Entered        int `json:"asns_entered"`
	Exited         int `json:"asns_exited"`
	// MaxRankDelta is the largest |Δrank| among ASes ranked on both sides.
	MaxRankDelta int `json:"max_rank_delta"`
	// Hist buckets Moved by |Δrank|: 1, 2–3, 4–7, 8–15, 16+.
	Hist      [5]int  `json:"movement_hist"`
	TopMovers []Mover `json:"top_movers,omitempty"`
}

// Drift is the structured diff of two snapshots.
type Drift struct {
	OldEpoch  int64  `json:"old_epoch"`
	NewEpoch  int64  `json:"new_epoch"`
	OldDigest string `json:"old_digest"`
	NewDigest string `json:"new_digest"`
	// Metrics holds one entry per metric: the four country metrics in
	// their fixed order, then the global tops in sorted key order.
	Metrics []MetricDrift `json:"metrics"`
	// MaxChurn is the largest per-metric churn score — the scalar the
	// drift gate compares against its threshold.
	MaxChurn     float64 `json:"max_churn"`
	MaxRankDelta int     `json:"max_rank_delta"`
}

// HasRanks reports whether the snapshot carries structured rank vectors
// (always true for assembled snapshots and format-v2 generation files;
// false for snapshots warm-loaded from a v1 file).
func (s *Snapshot) HasRanks() bool { return s.ranks != nil }

// Diff compares two snapshots' rank vectors and returns the structured
// drift, or nil when either side lacks rank vectors (a v1 warm start).
// The computation is deterministic: for the same two snapshots it returns
// the same Drift — including bit-identical churn floats — no matter which
// process runs it.
func Diff(old, new *Snapshot) *Drift {
	if old == nil || new == nil || !old.HasRanks() || !new.HasRanks() {
		return nil
	}
	d := &Drift{
		OldEpoch: old.Epoch, NewEpoch: new.Epoch,
		OldDigest: old.Digest, NewDigest: new.Digest,
	}
	ccs := unionKeys(old.ranks, new.ranks)
	for _, metric := range countryMetricKeys {
		md := MetricDrift{Metric: metric}
		for _, cc := range ccs {
			moved := md.Moved + md.Entered + md.Exited
			diffPair(&md, metric, cc, old.ranks[cc][metric], new.ranks[cc][metric])
			if md.Moved+md.Entered+md.Exited > moved {
				md.CountriesMoved++
			}
		}
		finishMetric(&md)
		d.Metrics = append(d.Metrics, md)
	}
	for _, m := range unionKeys(old.topRanks, new.topRanks) {
		md := MetricDrift{Metric: m}
		diffPair(&md, m, "", old.topRanks[m], new.topRanks[m])
		finishMetric(&md)
		d.Metrics = append(d.Metrics, md)
	}
	for _, md := range d.Metrics {
		if md.Churn > d.MaxChurn {
			d.MaxChurn = md.Churn
		}
		if md.MaxRankDelta > d.MaxRankDelta {
			d.MaxRankDelta = md.MaxRankDelta
		}
	}
	return d
}

// diffPair folds one (metric, country) ranking pair into md. Union ASNs
// are visited in ascending order so the float accumulation order — and
// therefore the churn score bits — is a pure function of the two vectors.
func diffPair(md *MetricDrift, metric, cc string, oldVec, newVec RankVec) {
	if len(oldVec) == 0 && len(newVec) == 0 {
		return
	}
	oldPos := rankIndex(oldVec)
	newPos := rankIndex(newVec)
	union := make([]asn.ASN, 0, len(oldVec)+len(newVec))
	for _, e := range oldVec {
		union = append(union, e.ASN)
	}
	for _, e := range newVec {
		if _, ok := oldPos[e.ASN]; !ok {
			union = append(union, e.ASN)
		}
	}
	slices.Sort(union)
	bottomOld := len(oldVec) + 1
	bottomNew := len(newVec) + 1
	for _, a := range union {
		rOld, inOld := oldPos[a]
		rNew, inNew := newPos[a]
		if !inOld {
			rOld = bottomOld
		}
		if !inNew {
			rNew = bottomNew
		}
		delta := rOld - rNew
		if delta < 0 {
			delta = -delta
		}
		switch {
		case inOld && inNew:
			if delta == 0 {
				continue
			}
			md.Moved++
			md.Hist[histBucket(delta)]++
			if delta > md.MaxRankDelta {
				md.MaxRankDelta = delta
			}
		case inNew:
			md.Entered++
		default:
			md.Exited++
		}
		if delta > 0 {
			minRank := rOld
			if rNew < minRank {
				minRank = rNew
			}
			md.Churn += float64(delta) / float64(minRank)
		}
		name := ""
		if inNew {
			name = newVec[rNew-1].Name
		} else {
			name = oldVec[rOld-1].Name
		}
		mv := Mover{Metric: metric, Country: cc, ASN: a, Name: name, Score: delta}
		if inOld {
			mv.OldRank = rOld
		}
		if inNew {
			mv.NewRank = rNew
		}
		if mv.Score > 0 || !inOld || !inNew {
			md.TopMovers = append(md.TopMovers, mv)
		}
	}
}

// finishMetric orders the mover list (largest displacement first, ties
// broken by country then ASN so the order is total) and trims it.
func finishMetric(md *MetricDrift) {
	slices.SortFunc(md.TopMovers, func(a, b Mover) int {
		if a.Score != b.Score {
			return b.Score - a.Score
		}
		if c := strings.Compare(a.Country, b.Country); c != 0 {
			return c
		}
		return int(a.ASN) - int(b.ASN)
	})
	if len(md.TopMovers) > maxTopMovers {
		md.TopMovers = md.TopMovers[:maxTopMovers]
	}
}

// histBucket maps |Δrank| ≥ 1 onto the movement histogram: 1, 2–3, 4–7,
// 8–15, 16+.
func histBucket(delta int) int {
	switch {
	case delta <= 1:
		return 0
	case delta <= 3:
		return 1
	case delta <= 7:
		return 2
	case delta <= 15:
		return 3
	default:
		return 4
	}
}

// rankIndex maps ASN → 1-based rank for one vector.
func rankIndex(v RankVec) map[asn.ASN]int {
	m := make(map[asn.ASN]int, len(v))
	for i, e := range v {
		m[e.ASN] = i + 1
	}
	return m
}

// unionKeys returns the sorted union of two maps' keys.
func unionKeys[V any](a, b map[string]V) []string {
	out := make([]string, 0, len(a)+len(b))
	for k := range a {
		out = append(out, k)
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			out = append(out, k)
		}
	}
	slices.Sort(out)
	return out
}

// Export publishes the drift into the metrics registry: per-metric
// countryrank_drift_{churn_score,countries_moved,asns_entered,asns_exited}
// series (the registry has no labels, so the metric key becomes a name
// suffix) plus the aggregate churn and max-rank-delta gauges.
func (d *Drift) Export() {
	for i := range d.Metrics {
		md := &d.Metrics[i]
		key := strings.ToLower(md.Metric)
		obs.NewFloatGauge("countryrank_drift_churn_score_"+key,
			"churn score of the last rollover for metric "+md.Metric).Set(md.Churn)
		obs.NewGauge("countryrank_drift_countries_moved_"+key,
			"countries with any rank movement in the last rollover for metric "+md.Metric).
			Set(int64(md.CountriesMoved))
		obs.NewGauge("countryrank_drift_asns_entered_"+key,
			"ASes that entered the ranked top-K in the last rollover for metric "+md.Metric).
			Set(int64(md.Entered))
		obs.NewGauge("countryrank_drift_asns_exited_"+key,
			"ASes that exited the ranked top-K in the last rollover for metric "+md.Metric).
			Set(int64(md.Exited))
	}
	mDriftChurn.Set(d.MaxChurn)
	mDriftMaxDelta.Set(int64(d.MaxRankDelta))
	mDriftRollovers.Inc()
}

// Summary is the one-line drift digest carried in logs and the manifest.
func (d *Drift) Summary() string {
	var b strings.Builder
	b.WriteString("epoch ")
	b.WriteString(strconv.FormatInt(d.OldEpoch, 10))
	b.WriteString("->")
	b.WriteString(strconv.FormatInt(d.NewEpoch, 10))
	b.WriteString(" max_churn=")
	b.WriteString(fmtScore(d.MaxChurn))
	b.WriteString(" max_rank_delta=")
	b.WriteString(strconv.Itoa(d.MaxRankDelta))
	for _, md := range d.Metrics {
		b.WriteString(" ")
		b.WriteString(strings.ToLower(md.Metric))
		b.WriteString("=")
		b.WriteString(fmtScore(md.Churn))
	}
	return b.String()
}

// Render writes the paper-style delta report: the per-metric drift table
// and the top movers (at most n per metric; n <= 0 selects 10), in the
// Tables 10/11 case-study format — old rank, new rank, movement.
func (d *Drift) Render(n int) string {
	if n <= 0 {
		n = 10
	}
	var b strings.Builder
	b.WriteString("drift: epoch ")
	b.WriteString(strconv.FormatInt(d.OldEpoch, 10))
	b.WriteString(" -> ")
	b.WriteString(strconv.FormatInt(d.NewEpoch, 10))
	b.WriteString(", digest ")
	b.WriteString(shortDigest(d.OldDigest))
	b.WriteString(" -> ")
	b.WriteString(shortDigest(d.NewDigest))
	b.WriteString("\n\n")
	b.WriteString("metric  churn         moved  entered  exited  max_delta  countries_moved  hist(1/2-3/4-7/8-15/16+)\n")
	for _, md := range d.Metrics {
		writeCell(&b, strings.ToLower(md.Metric), 8)
		writeCell(&b, fmtScore(md.Churn), 14)
		writeCell(&b, strconv.Itoa(md.Moved), 7)
		writeCell(&b, strconv.Itoa(md.Entered), 9)
		writeCell(&b, strconv.Itoa(md.Exited), 8)
		writeCell(&b, strconv.Itoa(md.MaxRankDelta), 11)
		writeCell(&b, strconv.Itoa(md.CountriesMoved), 17)
		for i, h := range md.Hist {
			if i > 0 {
				b.WriteString("/")
			}
			b.WriteString(strconv.Itoa(h))
		}
		b.WriteString("\n")
	}
	b.WriteString("\ntop movers:\n")
	any := false
	for _, md := range d.Metrics {
		movers := md.TopMovers
		if len(movers) > n {
			movers = movers[:n]
		}
		for _, mv := range movers {
			any = true
			b.WriteString("  ")
			writeCell(&b, strings.ToLower(mv.Metric), 5)
			cc := mv.Country
			if cc == "" {
				cc = "-"
			}
			writeCell(&b, cc, 4)
			writeCell(&b, mv.ASN.String(), 9)
			writeCell(&b, mv.Name, 22)
			switch {
			case mv.OldRank == 0:
				b.WriteString("entered at rank ")
				b.WriteString(strconv.Itoa(mv.NewRank))
			case mv.NewRank == 0:
				b.WriteString("exited from rank ")
				b.WriteString(strconv.Itoa(mv.OldRank))
			default:
				b.WriteString("rank ")
				b.WriteString(strconv.Itoa(mv.OldRank))
				b.WriteString(" -> ")
				b.WriteString(strconv.Itoa(mv.NewRank))
				b.WriteString(" (")
				if up := mv.OldRank - mv.NewRank; up > 0 {
					b.WriteString("+")
					b.WriteString(strconv.Itoa(up))
				} else {
					b.WriteString(strconv.Itoa(up))
				}
				b.WriteString(")")
			}
			b.WriteString("\n")
		}
	}
	if !any {
		b.WriteString("  (none: rankings unchanged)\n")
	}
	b.WriteString("\nmax churn ")
	b.WriteString(fmtScore(d.MaxChurn))
	b.WriteString("\n")
	return b.String()
}

// writeCell pads s to width, always leaving at least one space so an
// over-wide value (a long churn float) cannot fuse with the next column.
func writeCell(b *strings.Builder, s string, width int) {
	b.WriteString(s)
	if len(s) >= width {
		b.WriteString(" ")
		return
	}
	for i := len(s); i < width; i++ {
		b.WriteString(" ")
	}
}

// fmtScore renders a churn score exactly the way the metrics exposition
// renders a FloatGauge (integral values without exponent, %g otherwise),
// so the CI smoke can string-compare the rankdiff report against the live
// /metrics value.
func fmtScore(v float64) string {
	if v == float64(int64(v)) && v >= -1e15 && v <= 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
