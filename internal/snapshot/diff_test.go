package snapshot

// Tests for the drift diff engine: hand-checked churn arithmetic,
// determinism (including across a persist round trip, which is what lets
// cmd/rankdiff agree with the live supervisor), and the drift gate's three
// positions (reject, pass, -allow-drift override).

import (
	"context"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"countryrank/internal/asn"
	"countryrank/internal/rank"
)

// driftData builds a one-country world where all four country metrics and
// one global top share the given scores, so every metric's drift is the
// same hand-checkable pair diff.
func driftData(epoch int64, scores map[asn.ASN]float64) Data {
	r := func() *rank.Ranking { return rank.New("m", scores, testInfo, true) }
	return Data{
		Epoch: epoch,
		Countries: []CountryData{{
			Code: "AU", Name: "Australia",
			CCI: r(), CCN: r(), AHI: r(), AHN: r(),
		}},
		Tops: []TopData{{Metric: "ccg", Ranking: r()}},
	}
}

// TestDiffHandChecked pins the churn arithmetic on a pair small enough to
// verify by hand. Old ranking: 1221 > 4826 > 7545. New ranking:
// 4826 > 1221 > 9999 (7545 exited, 9999 entered).
func TestDiffHandChecked(t *testing.T) {
	old := Assemble(driftData(1, map[asn.ASN]float64{1221: 3, 4826: 2, 7545: 1}), Config{})
	new := Assemble(driftData(2, map[asn.ASN]float64{4826: 3, 1221: 2, 9999: 1}), Config{})

	d := Diff(old, new)
	if d == nil {
		t.Fatal("Diff returned nil for two assembled snapshots")
	}
	if d.OldEpoch != 1 || d.NewEpoch != 2 {
		t.Errorf("epochs %d->%d, want 1->2", d.OldEpoch, d.NewEpoch)
	}
	if len(d.Metrics) != 5 { // CCI, CCN, AHI, AHN, ccg
		t.Fatalf("got %d metric drifts, want 5", len(d.Metrics))
	}

	// Per pair: 1221 rank 1->2 (delta 1, weight 1), 4826 rank 2->1
	// (delta 1, weight 1), 7545 exits from rank 3 (virtual rank 4, delta 1,
	// weight 1/3), 9999 enters at rank 3 (delta 1, weight 1/3). Accumulated
	// in ascending-ASN order:
	want := 0.0
	want += 1.0       // 1221
	want += 1.0       // 4826
	want += 1.0 / 3.0 // 7545
	want += 1.0 / 3.0 // 9999
	for _, md := range d.Metrics {
		if md.Churn != want {
			t.Errorf("%s churn = %v, want %v", md.Metric, md.Churn, want)
		}
		if md.Moved != 2 || md.Entered != 1 || md.Exited != 1 {
			t.Errorf("%s moved/entered/exited = %d/%d/%d, want 2/1/1",
				md.Metric, md.Moved, md.Entered, md.Exited)
		}
		if md.MaxRankDelta != 1 {
			t.Errorf("%s max_rank_delta = %d, want 1", md.Metric, md.MaxRankDelta)
		}
		if md.Hist != [5]int{2, 0, 0, 0, 0} {
			t.Errorf("%s hist = %v, want [2 0 0 0 0]", md.Metric, md.Hist)
		}
		// All four movers carry score 1, so they order by ASN.
		if len(md.TopMovers) != 4 {
			t.Fatalf("%s has %d movers, want 4", md.Metric, len(md.TopMovers))
		}
		for i, wantASN := range []asn.ASN{1221, 4826, 7545, 9999} {
			if md.TopMovers[i].ASN != wantASN {
				t.Errorf("%s mover %d = AS%d, want AS%d", md.Metric, i, md.TopMovers[i].ASN, wantASN)
			}
		}
		if mv := md.TopMovers[2]; mv.OldRank != 3 || mv.NewRank != 0 {
			t.Errorf("7545 old/new rank = %d/%d, want 3/0 (exited)", mv.OldRank, mv.NewRank)
		}
		if mv := md.TopMovers[3]; mv.OldRank != 0 || mv.NewRank != 3 {
			t.Errorf("9999 old/new rank = %d/%d, want 0/3 (entered)", mv.OldRank, mv.NewRank)
		}
	}
	// The country metrics moved one country; the global top moves none.
	for _, md := range d.Metrics {
		wantCM := 1
		if md.Metric == "ccg" {
			wantCM = 0
		}
		if md.CountriesMoved != wantCM {
			t.Errorf("%s countries_moved = %d, want %d", md.Metric, md.CountriesMoved, wantCM)
		}
	}
	if d.MaxChurn != want {
		t.Errorf("MaxChurn = %v, want %v", d.MaxChurn, want)
	}
	if d.MaxRankDelta != 1 {
		t.Errorf("MaxRankDelta = %d, want 1", d.MaxRankDelta)
	}

	// The rendered report names the movers and closes with the same churn
	// string the metrics exposition would print.
	rep := d.Render(10)
	for _, frag := range []string{
		"top movers:",
		"rank 1 -> 2 (-1)",
		"exited from rank 3",
		"entered at rank 3",
		"max churn " + fmtScore(want),
	} {
		if !strings.Contains(rep, frag) {
			t.Errorf("report missing %q:\n%s", frag, rep)
		}
	}
	if sum := d.Summary(); !strings.Contains(sum, "epoch 1->2") ||
		!strings.Contains(sum, "max_churn="+fmtScore(want)) {
		t.Errorf("summary %q lacks epochs or churn", sum)
	}
}

// TestDiffIdenticalSnapshots: same data, later epoch → zero drift
// everywhere, empty mover lists.
func TestDiffIdenticalSnapshots(t *testing.T) {
	a := Assemble(testData(1), Config{})
	b := Assemble(testData(2), Config{})
	d := Diff(a, b)
	if d == nil {
		t.Fatal("Diff returned nil")
	}
	if d.MaxChurn != 0 || d.MaxRankDelta != 0 {
		t.Errorf("identical rankings drifted: churn %v, max delta %d", d.MaxChurn, d.MaxRankDelta)
	}
	for _, md := range d.Metrics {
		if md.Moved+md.Entered+md.Exited != 0 || len(md.TopMovers) != 0 {
			t.Errorf("%s reports movement on identical rankings: %+v", md.Metric, md)
		}
	}
	if !strings.Contains(d.Render(10), "(none: rankings unchanged)") {
		t.Error("report does not state that rankings are unchanged")
	}
}

// TestDiffNilAndRankless: nil snapshots and snapshots without rank vectors
// (a format-v1 warm start) yield no drift rather than a partial one.
func TestDiffNilAndRankless(t *testing.T) {
	s := Assemble(testData(1), Config{})
	if Diff(nil, s) != nil || Diff(s, nil) != nil {
		t.Error("Diff with a nil side did not return nil")
	}
	v1 := Assemble(testData(2), Config{})
	v1.ranks = nil // what LoadFile produces for a format-v1 file
	if v1.HasRanks() {
		t.Fatal("HasRanks true with nil ranks")
	}
	if Diff(s, v1) != nil || Diff(v1, s) != nil {
		t.Error("Diff with a rankless side did not return nil")
	}
}

// TestDiffDeterministicAcrossPersist pins the live/offline agreement: the
// drift of two snapshots equals — bit for bit, including churn floats and
// mover order — the drift of the same two snapshots after a save/load
// round trip. This is the property that lets the CI smoke compare
// cmd/rankdiff's report against rankd's live /metrics values.
func TestDiffDeterministicAcrossPersist(t *testing.T) {
	old := Assemble(driftData(1, map[asn.ASN]float64{1221: 3, 4826: 2, 7545: 1}), Config{})
	new := Assemble(driftData(2, map[asn.ASN]float64{4826: 5, 9999: 4, 1221: 1}), Config{})

	live := Diff(old, new)
	if live == nil {
		t.Fatal("Diff returned nil")
	}
	if again := Diff(old, new); !reflect.DeepEqual(live, again) {
		t.Error("two Diff runs over the same snapshots disagree")
	}

	p, err := NewPersister(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	var loaded [2]*Snapshot
	for i, s := range []*Snapshot{old, new} {
		path, err := p.Save(s)
		if err != nil {
			t.Fatal(err)
		}
		if loaded[i], err = LoadFile(path); err != nil {
			t.Fatal(err)
		}
	}
	offline := Diff(loaded[0], loaded[1])
	if offline == nil {
		t.Fatal("Diff over loaded snapshots returned nil")
	}
	if !reflect.DeepEqual(live.Metrics, offline.Metrics) {
		t.Errorf("offline drift disagrees with live drift:\n live %+v\noffl %+v", live.Metrics, offline.Metrics)
	}
	if live.MaxChurn != offline.MaxChurn {
		t.Errorf("offline MaxChurn %v != live %v", offline.MaxChurn, live.MaxChurn)
	}
	if live.Render(10) != offline.Render(10) {
		t.Error("offline report differs from live report")
	}
}

// TestSupervisorDriftGate pins -drift-gate in all three positions: an
// over-threshold rollover is refused (last-good keeps serving, no retry —
// like the degraded gate, rejection is not failure), an under-threshold
// rollover publishes, and -allow-drift overrides the refusal.
func TestSupervisorDriftGate(t *testing.T) {
	calm := map[asn.ASN]float64{1221: 3, 4826: 2, 7545: 1}
	upheaval := map[asn.ASN]float64{9999: 3, 8888: 2, 7777: 1} // full turnover

	t.Run("rejected over threshold", func(t *testing.T) {
		st := NewStore(Assemble(driftData(1, calm), Config{}))
		initial := st.Load()
		rejects0 := mDriftRejects.Value()
		var builds atomic.Int64
		cfg := fastBackoff
		cfg.DriftGate = 0.5
		cfg.Build = func(ctx context.Context, epoch int64) (*Snapshot, error) {
			builds.Add(1)
			return Assemble(driftData(epoch, upheaval), Config{}), nil
		}
		sup := NewSupervisor(st, 2, cfg)
		defer sup.Close()
		sup.Trigger("test")
		waitFor(t, 2*time.Second, "drift rejection", func() bool {
			return mDriftRejects.Value() > rejects0
		})
		time.Sleep(30 * time.Millisecond) // would-be backoff window
		if st.Load() != initial {
			t.Error("over-threshold build replaced the serving snapshot")
		}
		if n := builds.Load(); n != 1 {
			t.Errorf("rejection retried the build %d times; rejection is not failure", n-1)
		}
		if eps := st.HistoryEpochs(); len(eps) != 1 || eps[0] != 1 {
			t.Errorf("rejected publish reached the history ring: %v", eps)
		}
	})

	t.Run("under threshold publishes", func(t *testing.T) {
		st := NewStore(Assemble(driftData(1, calm), Config{}))
		cfg := fastBackoff
		cfg.DriftGate = 100 // far above any churn this pair produces
		cfg.Build = func(ctx context.Context, epoch int64) (*Snapshot, error) {
			return Assemble(driftData(epoch, upheaval), Config{}), nil
		}
		sup := NewSupervisor(st, 2, cfg)
		defer sup.Close()
		sup.Trigger("test")
		waitFor(t, 2*time.Second, "publish under gate", func() bool {
			s := st.Load()
			return s != nil && s.Epoch == 2
		})
		d := sup.LastDrift()
		if d == nil {
			t.Fatal("LastDrift nil after a published rollover")
		}
		if d.MaxChurn <= 0.5 {
			t.Errorf("full-turnover churn %v implausibly small", d.MaxChurn)
		}
		if eps := st.HistoryEpochs(); len(eps) != 2 || eps[1] != 2 {
			t.Errorf("history ring after publish = %v, want [1 2]", eps)
		}
	})

	t.Run("allow-drift overrides", func(t *testing.T) {
		st := NewStore(Assemble(driftData(1, calm), Config{}))
		cfg := fastBackoff
		cfg.DriftGate = 0.5
		cfg.AllowDrift = true
		cfg.Build = func(ctx context.Context, epoch int64) (*Snapshot, error) {
			return Assemble(driftData(epoch, upheaval), Config{}), nil
		}
		sup := NewSupervisor(st, 2, cfg)
		defer sup.Close()
		sup.Trigger("test")
		waitFor(t, 2*time.Second, "overridden publish", func() bool {
			s := st.Load()
			return s != nil && s.Epoch == 2
		})
	})
}
