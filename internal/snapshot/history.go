package snapshot

// The epoch history ring: the Store retains the rank vectors (not the
// rendered bodies) of the last keep published snapshots, so rankd can
// answer "how did this country's rankings move across recent epochs"
// without holding whole snapshots alive. Two read surfaces:
//
//   - /v1/countries/{cc}/history — a public, preserialized page per
//     country, rendered by Publish before the snapshot becomes visible so
//     serving it keeps the zero-allocation pin;
//   - /debug/history — aligned epochs plus per-metric drift series, the
//     same shape as /debug/timeline, built on demand (debug traffic).
//
// Ring invariants, enforced under the store mutex and asserted by the
// -race rollover hammer: entries are strictly epoch-ascending (a publish
// that does not advance the epoch is not recorded), at most keep entries
// are retained with the oldest dropped first, and every entry's vectors
// belong to exactly the snapshot that carried that epoch.

import (
	"slices"
	"strconv"
	"strings"
)

// DefaultHistoryEpochs is the history-ring depth when the caller never
// calls SetHistoryLimit.
const DefaultHistoryEpochs = 8

// histEntry is one retained epoch.
type histEntry struct {
	epoch    int64
	digest   string
	ranks    map[string]map[string]RankVec
	topRanks map[string]RankVec
	drift    *Drift // vs the previous publish; nil for the first
}

// SetHistoryLimit bounds the ring to the last keep epochs (keep < 1
// selects DefaultHistoryEpochs). Call before serving; it trims eagerly.
func (st *Store) SetHistoryLimit(keep int) {
	if keep < 1 {
		keep = DefaultHistoryEpochs
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.keep = keep
	if len(st.hist) > keep {
		st.hist = slices.Clone(st.hist[len(st.hist)-keep:])
	}
	mHistEpochs.Set(int64(len(st.hist)))
}

// HistoryEpochs lists the retained epochs, oldest first.
func (st *Store) HistoryEpochs() []int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]int64, len(st.hist))
	for i, h := range st.hist {
		out[i] = h.epoch
	}
	return out
}

// appendHistoryLocked records next in the ring (when it advances the
// epoch and carries rank vectors), evicts beyond the keep limit, and
// renders next's preserialized history pages from whatever the ring now
// holds. Caller holds st.mu (or, in NewStore, has exclusive ownership).
func (st *Store) appendHistoryLocked(next *Snapshot, d *Drift) {
	if st.keep < 1 {
		st.keep = DefaultHistoryEpochs
	}
	if next.HasRanks() &&
		(len(st.hist) == 0 || next.Epoch > st.hist[len(st.hist)-1].epoch) {
		st.hist = append(st.hist, histEntry{
			epoch: next.Epoch, digest: next.Digest,
			ranks: next.ranks, topRanks: next.topRanks, drift: d,
		})
		if len(st.hist) > st.keep {
			// Reslice via clone so the evicted entries' vectors are not
			// pinned by the backing array.
			st.hist = slices.Clone(st.hist[len(st.hist)-st.keep:])
		}
	}
	mHistEpochs.Set(int64(len(st.hist)))
	if len(st.hist) > 0 {
		next.history = renderHistoryPages(st.hist)
	}
}

// renderHistoryPages preserializes one history page per country appearing
// anywhere in the ring.
func renderHistoryPages(hist []histEntry) map[string]*entity {
	ccs := map[string]bool{}
	for _, h := range hist {
		for cc := range h.ranks {
			ccs[cc] = true
		}
	}
	pages := make(map[string]*entity, len(ccs))
	for cc := range ccs {
		pages[cc] = newEntity(appendHistoryPage(nil, cc, hist))
	}
	return pages
}

// appendHistoryPage renders one country's aligned rank series:
//
//	{"country":"AU","epochs":[7,8,9],
//	 "series":{"CCI:1221":[1,1,2],"CCI:4826":[2,2,1],...}}
//
// Each series key is metric:asn; the value is that AS's 1-based rank per
// retained epoch, 0 where it was unranked. Metrics render in the fixed
// CCI/CCN/AHI/AHN order, ASNs ascending, so page bytes (and ETags) are a
// pure function of the ring contents.
func appendHistoryPage(dst []byte, cc string, hist []histEntry) []byte {
	dst = append(dst, `{"country":`...)
	dst = appendJSONString(dst, cc)
	dst = append(dst, `,"epochs":[`...)
	for i, h := range hist {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, h.epoch, 10)
	}
	dst = append(dst, `],"series":{`...)
	first := true
	for _, metric := range countryMetricKeys {
		// Union of ASNs ever ranked for this metric across the ring.
		seen := map[uint32]bool{}
		var asns []uint32
		for _, h := range hist {
			for _, e := range h.ranks[cc][metric] {
				if !seen[uint32(e.ASN)] {
					seen[uint32(e.ASN)] = true
					asns = append(asns, uint32(e.ASN))
				}
			}
		}
		slices.Sort(asns)
		for _, a := range asns {
			if !first {
				dst = append(dst, ',')
			}
			first = false
			dst = append(dst, '"')
			dst = append(dst, metric...)
			dst = append(dst, ':')
			dst = strconv.AppendUint(dst, uint64(a), 10)
			dst = append(dst, `":[`...)
			for i, h := range hist {
				if i > 0 {
					dst = append(dst, ',')
				}
				r := 0
				for j, e := range h.ranks[cc][metric] {
					if uint32(e.ASN) == a {
						r = j + 1
						break
					}
				}
				dst = strconv.AppendInt(dst, int64(r), 10)
			}
			dst = append(dst, ']')
		}
	}
	return append(dst, `}}`...)
}

// HistoryData is the /debug/history document: retained epochs with their
// digests, plus aligned per-metric drift series — the same aligned-series
// shape as /debug/timeline, with epochs standing in for wall-clock
// offsets.
type HistoryData struct {
	Epochs  []int64              `json:"epochs"`
	Digests []string             `json:"digests"`
	Series  map[string][]float64 `json:"series"`
}

// HistoryData snapshots the ring for /debug/history. The first retained
// epoch (and any epoch published without a computed drift) contributes
// zeros to the drift series.
func (st *Store) HistoryData() HistoryData {
	st.mu.Lock()
	defer st.mu.Unlock()
	hd := HistoryData{
		Epochs:  make([]int64, len(st.hist)),
		Digests: make([]string, len(st.hist)),
		Series:  map[string][]float64{},
	}
	series := func(name string) []float64 {
		s, ok := hd.Series[name]
		if !ok {
			s = make([]float64, len(st.hist))
			hd.Series[name] = s
		}
		return s
	}
	for i, h := range st.hist {
		hd.Epochs[i] = h.epoch
		hd.Digests[i] = h.digest
		series("countries")[i] = float64(len(h.ranks))
		if h.drift == nil {
			continue
		}
		for _, md := range h.drift.Metrics {
			key := strings.ToLower(md.Metric)
			series("churn_" + key)[i] = md.Churn
			series("countries_moved_" + key)[i] = float64(md.CountriesMoved)
			series("entered_" + key)[i] = float64(md.Entered)
			series("exited_" + key)[i] = float64(md.Exited)
		}
	}
	return hd
}
