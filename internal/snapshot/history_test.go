package snapshot

// Tests for the epoch history ring: monotonic append, bounded eviction,
// preserialized page contents, /debug/history data shape, and the -race
// hammer that publishes rollovers while readers walk the ring — history
// entries must stay dense, epoch-ascending, bounded by the keep limit, and
// must never mix one epoch's vectors with another's digest.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"countryrank/internal/asn"
)

// rotScores rotates three ASes through the top ranks so consecutive epochs
// always differ (non-zero drift) and every epoch's ranking is a pure
// function of its number.
func rotScores(epoch int64) map[asn.ASN]float64 {
	asns := []asn.ASN{1221, 4826, 7545}
	m := make(map[asn.ASN]float64, len(asns))
	for i, a := range asns {
		m[a] = float64(3 - (int(epoch)+i)%3)
	}
	return m
}

func TestHistoryRingAppendAndEvict(t *testing.T) {
	st := NewStore(Assemble(driftData(1, rotScores(1)), Config{}))
	st.SetHistoryLimit(3)

	for e := int64(2); e <= 5; e++ {
		next := Assemble(driftData(e, rotScores(e)), Config{})
		st.Publish(next, Diff(st.Load(), next))
	}
	if eps := st.HistoryEpochs(); len(eps) != 3 || eps[0] != 3 || eps[2] != 5 {
		t.Fatalf("after 5 publishes with keep=3, ring = %v, want [3 4 5]", eps)
	}

	// A publish that does not advance the epoch is served but not recorded.
	replay := Assemble(driftData(5, rotScores(4)), Config{})
	st.Publish(replay, nil)
	if st.Load() != replay {
		t.Error("non-advancing publish was not served")
	}
	if eps := st.HistoryEpochs(); len(eps) != 3 || eps[2] != 5 {
		t.Errorf("non-advancing publish changed the ring: %v", eps)
	}

	// Tightening the limit trims eagerly.
	st.SetHistoryLimit(2)
	if eps := st.HistoryEpochs(); len(eps) != 2 || eps[0] != 4 {
		t.Errorf("after SetHistoryLimit(2), ring = %v, want [4 5]", eps)
	}
}

// historyPageDoc mirrors the preserialized /v1/countries/{cc}/history JSON.
type historyPageDoc struct {
	Country string           `json:"country"`
	Epochs  []int64          `json:"epochs"`
	Series  map[string][]int `json:"series"`
}

func TestHistoryPageServing(t *testing.T) {
	st := NewStore(Assemble(driftData(1, map[asn.ASN]float64{1221: 3, 4826: 2}), Config{}))
	h := NewHandler(st)

	w := get(t, h, "/v1/countries/AU/history", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET history = %d: %s", w.Code, w.Body.String())
	}
	etag1 := w.Header().Get("ETag")
	var page historyPageDoc
	if err := json.Unmarshal(w.Body.Bytes(), &page); err != nil {
		t.Fatalf("history page invalid JSON: %v\n%s", err, w.Body.String())
	}
	if page.Country != "AU" || len(page.Epochs) != 1 || page.Epochs[0] != 1 {
		t.Fatalf("initial page = %+v, want country AU epochs [1]", page)
	}
	if got := page.Series["CCI:1221"]; len(got) != 1 || got[0] != 1 {
		t.Errorf("CCI:1221 series = %v, want [1]", got)
	}

	// Roll to an epoch where 4826 overtakes 1221; the page must grow a
	// second aligned column and change its ETag.
	next := Assemble(driftData(2, map[asn.ASN]float64{4826: 3, 1221: 2}), Config{})
	st.Publish(next, Diff(st.Load(), next))
	w = get(t, h, "/v1/countries/AU/history", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET history after rollover = %d", w.Code)
	}
	if et := w.Header().Get("ETag"); et == etag1 {
		t.Error("history page ETag unchanged across a rollover that changed the ring")
	}
	if err := json.Unmarshal(w.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Epochs) != 2 || page.Epochs[1] != 2 {
		t.Fatalf("epochs after rollover = %v, want [1 2]", page.Epochs)
	}
	if got := page.Series["CCI:1221"]; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("CCI:1221 series = %v, want [1 2]", got)
	}
	if got := page.Series["CCI:4826"]; len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Errorf("CCI:4826 series = %v, want [2 1]", got)
	}
	for name, s := range page.Series {
		if len(s) != len(page.Epochs) {
			t.Errorf("series %s has %d points for %d epochs", name, len(s), len(page.Epochs))
		}
	}

	// Conditional request against the current page.
	w = get(t, h, "/v1/countries/AU/history", map[string]string{"If-None-Match": w.Header().Get("ETag")})
	if w.Code != http.StatusNotModified {
		t.Errorf("conditional history GET = %d, want 304", w.Code)
	}
}

func TestHistoryData(t *testing.T) {
	st := NewStore(Assemble(driftData(1, map[asn.ASN]float64{1221: 3, 4826: 2}), Config{}))
	next := Assemble(driftData(2, map[asn.ASN]float64{4826: 3, 1221: 2}), Config{})
	d := Diff(st.Load(), next)
	if d == nil || d.MaxChurn == 0 {
		t.Fatalf("test pair produced no drift: %+v", d)
	}
	st.Publish(next, d)

	hd := st.HistoryData()
	if len(hd.Epochs) != 2 || hd.Epochs[0] != 1 || hd.Epochs[1] != 2 {
		t.Fatalf("epochs = %v, want [1 2]", hd.Epochs)
	}
	if hd.Digests[1] != next.Digest {
		t.Error("digest series does not carry the published snapshot's digest")
	}
	churn := hd.Series["churn_cci"]
	if len(churn) != 2 || churn[0] != 0 || churn[1] == 0 {
		t.Errorf("churn_cci series = %v, want [0 <nonzero>]", churn)
	}
	for name, s := range hd.Series {
		if len(s) != len(hd.Epochs) {
			t.Errorf("series %s has %d points for %d epochs", name, len(s), len(hd.Epochs))
		}
	}
}

// TestHistoryRingUnderConcurrentRollover is the -race hammer for the ring
// invariants: while a publisher rolls through epochs, concurrent readers
// must only ever observe ring states that are dense, epoch-ascending,
// within the keep limit, and whose digests match the snapshot actually
// published at that epoch (no mixing of one epoch's vectors into another's
// entry). The served history page must stay parseable and aligned.
func TestHistoryRingUnderConcurrentRollover(t *testing.T) {
	const keep = 4
	const epochs = 60

	snaps := make([]*Snapshot, epochs+1)
	wantDigest := map[int64]string{}
	for e := int64(1); e <= epochs; e++ {
		snaps[e] = Assemble(driftData(e, rotScores(e)), Config{})
		wantDigest[e] = snaps[e].Digest
	}

	st := NewStore(snaps[1])
	st.SetHistoryLimit(keep)
	h := NewHandler(st)

	var mu sync.Mutex
	var failures []string
	report := func(format string, args ...any) {
		mu.Lock()
		if len(failures) < 10 {
			failures = append(failures, fmt.Sprintf(format, args...))
		}
		mu.Unlock()
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				hd := st.HistoryData()
				if len(hd.Epochs) > keep {
					report("ring holds %d epochs, keep is %d", len(hd.Epochs), keep)
				}
				for j, e := range hd.Epochs {
					if j > 0 && e != hd.Epochs[j-1]+1 {
						report("ring not dense/ascending: %v", hd.Epochs)
						break
					}
					if hd.Digests[j] != wantDigest[e] {
						report("epoch %d carries digest %s, want %s (mixed epochs)",
							e, shortDigest(hd.Digests[j]), shortDigest(wantDigest[e]))
					}
				}
				for name, s := range hd.Series {
					if len(s) != len(hd.Epochs) {
						report("series %s: %d points for %d epochs", name, len(s), len(hd.Epochs))
					}
				}

				w := get(t, h, "/v1/countries/AU/history", nil)
				if w.Code != http.StatusOK {
					report("GET history = %d", w.Code)
					continue
				}
				var page historyPageDoc
				if err := json.Unmarshal(w.Body.Bytes(), &page); err != nil {
					report("history page unparseable mid-rollover: %v", err)
					continue
				}
				if len(page.Epochs) > keep {
					report("served page lists %d epochs, keep is %d", len(page.Epochs), keep)
				}
				for j := 1; j < len(page.Epochs); j++ {
					if page.Epochs[j] != page.Epochs[j-1]+1 {
						report("served page epochs not dense: %v", page.Epochs)
						break
					}
				}
				for name, s := range page.Series {
					if len(s) != len(page.Epochs) {
						report("served series %s misaligned: %d points, %d epochs", name, len(s), len(page.Epochs))
					}
				}
			}
		}()
	}

	for e := int64(2); e <= epochs; e++ {
		st.Publish(snaps[e], Diff(st.Load(), snaps[e]))
		time.Sleep(200 * time.Microsecond)
	}
	close(stop)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	for _, f := range failures {
		t.Error(f)
	}
	if eps := st.HistoryEpochs(); len(eps) != keep || eps[keep-1] != epochs {
		t.Errorf("final ring = %v, want last %d epochs ending at %d", eps, keep, epochs)
	}
}
