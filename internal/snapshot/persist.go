package snapshot

// Durable last-good snapshot store. Every published snapshot can be saved
// as one generation file under a directory; on boot, rankd warm-starts from
// the newest generation that passes validation and serves it (marked stale)
// while the first real build runs in the background.
//
// On-disk format (version 2, file snap-<epoch 16 hex digits>.csnap):
//
//	magic    [8]byte  "CRSNAP1\n"
//	u32      header length (little-endian, capped)
//	header   JSON: version, epoch, digest, max_top_n, degraded, saved_unix,
//	         and the section count
//	u32      CRC32 (IEEE) of the header bytes
//	sections section count times:
//	           u8  kind (1 = country page, 2 = top variants,
//	                     3 = country rank vectors, 4 = top rank vector)
//	           u8  key length, key bytes ("AU", "ccg")
//	           u32 body count (1 for a country, len(variants) for a top,
//	               4 for country ranks — CCI/CCN/AHI/AHN order — and 1 for
//	               a top rank vector)
//	           per body: u32 length, body bytes
//	           u32 CRC32 of the section bytes (kind through last body)
//	magic    [8]byte  "CRSNEND\n"
//
// Kind 1/2 bodies are the preserialized JSON pages. Kind 3/4 bodies are
// binary rank vectors (u32 entry count, then per entry: u32 ASN, u64
// float64 value bits, u16 name length, name bytes — all little-endian):
// the structured data the drift diff engine consumes, persisted so
// cmd/rankdiff can diff two generations through the exact code path the
// live supervisor uses, never by re-parsing served JSON. Version-1 files
// (no rank sections) still load; the reconstructed snapshot then reports
// HasRanks() == false and drift against it is skipped.
//
// Three layers reject a bad file: structural parsing (truncation, caps,
// trailer), the per-section CRCs (bit rot), and a full content check — the
// loader rebuilds the snapshot through the same entity/digest code path as
// Assemble and requires the recomputed digest to equal the header's, so a
// file whose CRCs were forged along with its bodies still cannot smuggle
// wrong bytes into the serving path.
//
// Writes are crash-safe: the file is assembled under a .tmp name, fsynced,
// and atomically renamed into place; the directory is fsynced afterwards so
// the rename itself survives power loss. A crash mid-write leaves only a
// .tmp file, which the loader ignores and the next prune removes.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strconv"
	"strings"
	"time"

	"countryrank/internal/asn"
	"countryrank/internal/obs"
)

var (
	mSnapSaves = obs.NewCounter("countryrank_rankd_snapshot_saves_total",
		"snapshot generations persisted to the durable store")
	mSnapLoadRejects = obs.NewCounter("countryrank_rankd_snapshot_load_rejects_total",
		"persisted generations rejected at warm start (corrupt, truncated, or digest mismatch)")
	mSnapPruned = obs.NewCounter("countryrank_rankd_snapshot_pruned_total",
		"persisted generations removed by keep-last-K pruning")
)

const (
	persistMagic   = "CRSNAP1\n"
	persistTrailer = "CRSNEND\n"
	persistVersion = 2

	sectionCountry      = 1
	sectionTop          = 2
	sectionCountryRanks = 3
	sectionTopRanks     = 4

	// maxHeaderLen and maxBodyLen bound the allocations a hostile or
	// corrupted length field can demand before any CRC is checked.
	maxHeaderLen = 1 << 16
	maxBodyLen   = 1 << 28
)

// persistHeader is the JSON header of one generation file.
type persistHeader struct {
	Version   int    `json:"version"`
	Epoch     int64  `json:"epoch"`
	Digest    string `json:"digest"`
	MaxTopN   int    `json:"max_top_n"`
	Degraded  bool   `json:"degraded"`
	SavedUnix int64  `json:"saved_unix"`
	Sections  int    `json:"sections"`
}

// DefaultKeepGenerations is how many on-disk generations a Persister
// retains when the caller passes keep <= 0.
const DefaultKeepGenerations = 3

// A Persister owns one durable snapshot directory: Save writes a new
// generation and prunes old ones, LoadLatest warm-starts from the newest
// valid generation.
type Persister struct {
	dir  string
	keep int
}

// NewPersister prepares dir (creating it if needed) for keep-last-K
// generation storage.
func NewPersister(dir string, keep int) (*Persister, error) {
	if keep <= 0 {
		keep = DefaultKeepGenerations
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: persist dir: %w", err)
	}
	return &Persister{dir: dir, keep: keep}, nil
}

// Dir returns the store's directory.
func (p *Persister) Dir() string { return p.dir }

// Generations lists the on-disk generation files newest-first (no
// validation; LoadFile rejects bad ones). cmd/rankdiff uses it to pick
// the two most recent epochs of a -snapshot-dir.
func (p *Persister) Generations() ([]string, error) { return p.generations() }

// GenerationPath returns where the given epoch's generation file lives
// (whether or not it exists).
func (p *Persister) GenerationPath(epoch int64) string { return genPath(p.dir, epoch) }

func genPath(dir string, epoch int64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x.csnap", uint64(epoch)))
}

// Save persists s as generation s.Epoch (tmp+rename, fsynced) and prunes
// generations beyond the keep limit. It returns the final path.
func (p *Persister) Save(s *Snapshot) (string, error) {
	path := genPath(p.dir, s.Epoch)
	tmp := path + ".tmp"
	if err := writeSnapshotFile(tmp, s); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("snapshot: persist rename: %w", err)
	}
	syncDir(p.dir)
	mSnapSaves.Inc()
	p.prune()
	return path, nil
}

// LoadLatest returns the newest valid persisted snapshot, skipping (and
// counting) corrupt or truncated generations on the way down. It returns
// (nil, skipped, nil) when no valid generation exists; an error only when
// the directory itself cannot be read. The returned snapshot is marked
// Stale with SavedAt carrying the original persist time.
func (p *Persister) LoadLatest() (*Snapshot, int, error) {
	paths, err := p.generations()
	if err != nil {
		return nil, 0, err
	}
	skipped := 0
	for _, path := range paths {
		s, err := LoadFile(path)
		if err != nil {
			mSnapLoadRejects.Inc()
			skipped++
			continue
		}
		return s, skipped, nil
	}
	return nil, skipped, nil
}

// generations lists generation files newest-first.
func (p *Persister) generations() ([]string, error) {
	ents, err := os.ReadDir(p.dir)
	if err != nil {
		return nil, fmt.Errorf("snapshot: persist dir: %w", err)
	}
	var paths []string
	for _, e := range ents {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".csnap") {
			paths = append(paths, filepath.Join(p.dir, name))
		}
	}
	// Epochs are fixed-width hex, so lexical order is numeric order.
	sort.Sort(sort.Reverse(sort.StringSlice(paths)))
	return paths, nil
}

// prune removes generations beyond the keep limit plus any abandoned .tmp
// files. Best-effort: serving never depends on pruning succeeding.
func (p *Persister) prune() {
	paths, err := p.generations()
	if err != nil {
		return
	}
	for _, path := range paths[min(p.keep, len(paths)):] {
		if os.Remove(path) == nil {
			mSnapPruned.Inc()
		}
	}
	if ents, err := os.ReadDir(p.dir); err == nil {
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".tmp") {
				os.Remove(filepath.Join(p.dir, e.Name()))
			}
		}
	}
}

// writeSnapshotFile serializes s to path and fsyncs it.
func writeSnapshotFile(path string, s *Snapshot) error {
	ccs := s.CountryCodes()
	tops := s.TopMetrics()
	sections := len(ccs) + len(tops)
	if s.HasRanks() {
		sections += len(s.ranks) + len(s.topRanks)
	}
	hdr := persistHeader{
		Version: persistVersion, Epoch: s.Epoch, Digest: s.Digest,
		MaxTopN: s.maxTopN, Degraded: s.Degraded,
		SavedUnix: time.Now().Unix(), Sections: sections,
	}
	hdrJSON, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("snapshot: persist header: %w", err)
	}

	buf := make([]byte, 0, 1<<16)
	buf = append(buf, persistMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hdrJSON)))
	buf = append(buf, hdrJSON...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(hdrJSON))
	appendSection := func(kind byte, key string, bodies [][]byte) {
		start := len(buf)
		buf = append(buf, kind, byte(len(key)))
		buf = append(buf, key...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(bodies)))
		for _, b := range bodies {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
			buf = append(buf, b...)
		}
		buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
	}
	for _, cc := range ccs {
		appendSection(sectionCountry, cc, [][]byte{s.countries[cc].body})
	}
	for _, m := range tops {
		bodies := make([][]byte, len(s.tops[m]))
		for i, v := range s.tops[m] {
			bodies[i] = v.body
		}
		appendSection(sectionTop, m, bodies)
	}
	if s.HasRanks() {
		for _, cc := range unionKeys(s.ranks, nil) {
			bodies := make([][]byte, len(countryMetricKeys))
			for i, metric := range countryMetricKeys {
				bodies[i] = encodeRankVec(nil, s.ranks[cc][metric])
			}
			appendSection(sectionCountryRanks, cc, bodies)
		}
		for _, m := range unionKeys(s.topRanks, nil) {
			appendSection(sectionTopRanks, m, [][]byte{encodeRankVec(nil, s.topRanks[m])})
		}
	}
	buf = append(buf, persistTrailer...)

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("snapshot: persist open: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("snapshot: persist write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("snapshot: persist sync: %w", err)
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
// Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// errCorrupt wraps every validation failure LoadFile can hit, so callers
// can distinguish "bad file" from I/O errors if they care.
var errCorrupt = errors.New("snapshot: corrupt generation file")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errCorrupt, fmt.Sprintf(format, args...))
}

// LoadFile parses, validates, and reconstructs one persisted generation.
// The returned snapshot is marked Stale and carries SavedAt from the file
// header; its entities and digest are rebuilt from the stored bodies, and
// the rebuild must reproduce the header's digest or the file is rejected.
func LoadFile(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cur := raw
	take := func(n int) ([]byte, error) {
		if len(cur) < n {
			return nil, corruptf("%s: truncated (want %d bytes, have %d)", path, n, len(cur))
		}
		b := cur[:n]
		cur = cur[n:]
		return b, nil
	}
	takeU32 := func() (uint32, error) {
		b, err := take(4)
		if err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b), nil
	}

	if b, err := take(len(persistMagic)); err != nil || string(b) != persistMagic {
		return nil, corruptf("%s: bad magic", path)
	}
	hdrLen, err := takeU32()
	if err != nil {
		return nil, err
	}
	if hdrLen > maxHeaderLen {
		return nil, corruptf("%s: header length %d over cap", path, hdrLen)
	}
	hdrJSON, err := take(int(hdrLen))
	if err != nil {
		return nil, err
	}
	hdrCRC, err := takeU32()
	if err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(hdrJSON) != hdrCRC {
		return nil, corruptf("%s: header CRC mismatch", path)
	}
	var hdr persistHeader
	if err := json.Unmarshal(hdrJSON, &hdr); err != nil {
		return nil, corruptf("%s: header JSON: %v", path, err)
	}
	if hdr.Version != 1 && hdr.Version != persistVersion {
		return nil, corruptf("%s: unsupported version %d", path, hdr.Version)
	}
	if hdr.Sections < 0 || hdr.MaxTopN <= 0 {
		return nil, corruptf("%s: implausible header (sections %d, max_top_n %d)", path, hdr.Sections, hdr.MaxTopN)
	}

	s := &Snapshot{
		Epoch:     hdr.Epoch,
		Degraded:  hdr.Degraded,
		Stale:     true,
		SavedAt:   time.Unix(hdr.SavedUnix, 0),
		countries: map[string]*entity{},
		tops:      map[string][]*entity{},
		maxTopN:   hdr.MaxTopN,
	}
	for i := 0; i < hdr.Sections; i++ {
		secStart := cur
		meta, err := take(2)
		if err != nil {
			return nil, err
		}
		kind, keyLen := meta[0], int(meta[1])
		key, err := take(keyLen)
		if err != nil {
			return nil, err
		}
		nBodies, err := takeU32()
		if err != nil {
			return nil, err
		}
		if nBodies == 0 || nBodies > uint32(maxBodyLen/4) {
			return nil, corruptf("%s: section %d body count %d implausible", path, i, nBodies)
		}
		bodies := make([][]byte, nBodies)
		for j := range bodies {
			bLen, err := takeU32()
			if err != nil {
				return nil, err
			}
			if bLen > maxBodyLen {
				return nil, corruptf("%s: section %d body %d length %d over cap", path, i, j, bLen)
			}
			b, err := take(int(bLen))
			if err != nil {
				return nil, err
			}
			// Copy out of the file buffer so the snapshot owns its bytes.
			bodies[j] = slices.Clone(b)
		}
		secLen := len(secStart) - len(cur)
		secCRC, err := takeU32()
		if err != nil {
			return nil, err
		}
		if crc32.ChecksumIEEE(secStart[:secLen]) != secCRC {
			return nil, corruptf("%s: section %d (%s) CRC mismatch", path, i, key)
		}
		switch kind {
		case sectionCountry:
			if len(bodies) != 1 {
				return nil, corruptf("%s: country section %q has %d bodies", path, key, len(bodies))
			}
			s.countries[string(key)] = newEntity(bodies[0])
		case sectionTop:
			vs := make([]*entity, len(bodies))
			for j, b := range bodies {
				vs[j] = newEntity(b)
			}
			s.tops[string(key)] = vs
		case sectionCountryRanks:
			if len(bodies) != len(countryMetricKeys) {
				return nil, corruptf("%s: country-ranks section %q has %d bodies", path, key, len(bodies))
			}
			if s.ranks == nil {
				s.ranks = map[string]map[string]RankVec{}
			}
			vm := make(map[string]RankVec, len(countryMetricKeys))
			for j, metric := range countryMetricKeys {
				v, err := decodeRankVec(bodies[j])
				if err != nil {
					return nil, corruptf("%s: country-ranks section %q metric %s: %v", path, key, metric, err)
				}
				vm[metric] = v
			}
			s.ranks[string(key)] = vm
		case sectionTopRanks:
			if len(bodies) != 1 {
				return nil, corruptf("%s: top-ranks section %q has %d bodies", path, key, len(bodies))
			}
			v, err := decodeRankVec(bodies[0])
			if err != nil {
				return nil, corruptf("%s: top-ranks section %q: %v", path, key, err)
			}
			if s.topRanks == nil {
				s.topRanks = map[string]RankVec{}
			}
			s.topRanks[string(key)] = v
		default:
			return nil, corruptf("%s: section %d has unknown kind %d", path, i, kind)
		}
	}
	if hdr.Version >= 2 {
		// A v2 file always carries rank sections; normalize empty maps so
		// HasRanks holds even for a snapshot with no countries.
		if s.ranks == nil {
			s.ranks = map[string]map[string]RankVec{}
		}
		if s.topRanks == nil {
			s.topRanks = map[string]RankVec{}
		}
	}
	if b, err := take(len(persistTrailer)); err != nil || string(b) != persistTrailer {
		return nil, corruptf("%s: missing trailer (truncated file)", path)
	}
	if len(cur) != 0 {
		return nil, corruptf("%s: %d trailing bytes after trailer", path, len(cur))
	}

	// Content check: the rebuilt digest must reproduce the header's. This
	// reuses Assemble's digest path, so it also re-derives every ETag.
	s.finish()
	if s.Digest != hdr.Digest {
		return nil, corruptf("%s: content digest %s does not match header %s",
			path, shortDigest(s.Digest), shortDigest(hdr.Digest))
	}
	return s, nil
}

// encodeRankVec appends one rank vector's binary encoding: u32 entry
// count, then per entry u32 ASN, u64 value bits, u16 name length, name
// bytes. Float values travel as raw bits so a loaded vector diffs
// bit-identically to the one that was saved.
func encodeRankVec(dst []byte, v RankVec) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v)))
	for _, e := range v {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(e.ASN))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.Value))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(e.Name)))
		dst = append(dst, e.Name...)
	}
	return dst
}

// decodeRankVec parses encodeRankVec's output, rejecting truncation and
// trailing bytes (the section CRC already caught bit rot; this catches
// structural nonsense).
func decodeRankVec(b []byte) (RankVec, error) {
	if len(b) < 4 {
		return nil, errors.New("rank vector truncated before count")
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if n > uint32(maxBodyLen/14) {
		return nil, fmt.Errorf("rank vector entry count %d implausible", n)
	}
	v := make(RankVec, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(b) < 14 {
			return nil, fmt.Errorf("rank vector truncated at entry %d", i)
		}
		e := RankEntry{
			ASN:   asn.ASN(binary.LittleEndian.Uint32(b)),
			Value: math.Float64frombits(binary.LittleEndian.Uint64(b[4:])),
		}
		nameLen := int(binary.LittleEndian.Uint16(b[12:]))
		b = b[14:]
		if len(b) < nameLen {
			return nil, fmt.Errorf("rank vector name truncated at entry %d", i)
		}
		e.Name = string(b[:nameLen])
		b = b[nameLen:]
		v = append(v, e)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("rank vector has %d trailing bytes", len(b))
	}
	return v, nil
}

// shortDigest trims a digest for log lines; tolerant of short test values.
func shortDigest(d string) string {
	if len(d) > 12 {
		return d[:12]
	}
	if d == "" {
		return "(empty)"
	}
	return d
}

// epochFromPath recovers the generation number from a file name; used by
// tests and error paths.
func epochFromPath(path string) (int64, bool) {
	name := filepath.Base(path)
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".csnap") {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len("snap-"):len(name)-len(".csnap")], 16, 64)
	if err != nil {
		return 0, false
	}
	return int64(v), true
}
