package snapshot

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestPersistRoundTrip pins the durability contract: a saved snapshot loads
// back byte-identical — same digest, same epoch, same bodies and ETags —
// and comes back marked stale with its persist time.
func TestPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p, err := NewPersister(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := Assemble(testData(7), Config{})
	path, err := p.Save(s)
	if err != nil {
		t.Fatal(err)
	}
	if ep, ok := epochFromPath(path); !ok || ep != 7 {
		t.Errorf("generation file name %q does not encode epoch 7", path)
	}

	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != s.Epoch || got.Digest != s.Digest {
		t.Errorf("loaded epoch/digest = %d/%s, want %d/%s", got.Epoch, got.Digest, s.Epoch, s.Digest)
	}
	if !got.Stale {
		t.Error("loaded snapshot not marked Stale")
	}
	if got.SavedAt.IsZero() {
		t.Error("loaded snapshot has zero SavedAt")
	}
	if got.MaxTopN() != s.MaxTopN() {
		t.Errorf("loaded maxTopN = %d, want %d", got.MaxTopN(), s.MaxTopN())
	}
	for _, cc := range s.CountryCodes() {
		if !bytes.Equal(got.CountryBody(cc), s.CountryBody(cc)) {
			t.Errorf("country %s body changed across persist round trip", cc)
		}
		if got.CountryETag(cc) != s.CountryETag(cc) {
			t.Errorf("country %s ETag changed across persist round trip", cc)
		}
	}
	for _, m := range s.TopMetrics() {
		if len(got.tops[m]) != len(s.tops[m]) {
			t.Fatalf("top %s has %d variants, want %d", m, len(got.tops[m]), len(s.tops[m]))
		}
		for i := range s.tops[m] {
			if !bytes.Equal(got.tops[m][i].body, s.tops[m][i].body) {
				t.Errorf("top %s variant %d body changed", m, i)
			}
		}
	}

	// Format v2 persists the structured rank vectors; the warm load must
	// reproduce them exactly so an offline rankdiff over generation files
	// agrees with the live drift computed from the in-memory snapshots.
	if !got.HasRanks() {
		t.Fatal("loaded snapshot carries no rank vectors")
	}
	if !reflect.DeepEqual(got.ranks, s.ranks) {
		t.Errorf("country rank vectors changed across persist round trip:\n got %v\nwant %v", got.ranks, s.ranks)
	}
	if !reflect.DeepEqual(got.topRanks, s.topRanks) {
		t.Errorf("top rank vectors changed across persist round trip:\n got %v\nwant %v", got.topRanks, s.topRanks)
	}

	// The warm-loaded index page must advertise the staleness.
	var idx struct {
		Stale  bool   `json:"stale"`
		Digest string `json:"digest"`
	}
	if err := json.Unmarshal(got.IndexBody(), &idx); err != nil {
		t.Fatalf("loaded index invalid JSON: %v", err)
	}
	if !idx.Stale || idx.Digest != s.Digest {
		t.Errorf("loaded index stale/digest = %v/%s, want true/%s", idx.Stale, idx.Digest, s.Digest)
	}
	// The fresh snapshot's index must not be stale — and because the digest
	// excludes the markers, both snapshots share the content digest.
	if err := json.Unmarshal(s.IndexBody(), &idx); err != nil {
		t.Fatal(err)
	}
	if idx.Stale {
		t.Error("fresh snapshot's index marked stale")
	}
}

// TestPersistRejectsCorruption flips one byte at every position of a valid
// generation file and requires the loader to reject each mutant: magic,
// header, CRCs, lengths, bodies, trailer — no single-byte corruption may
// load. (Bodies are CRC-covered, so even a flip that keeps the structure
// parseable must die at a CRC or digest check.)
func TestPersistRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	p, err := NewPersister(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	path, err := p.Save(Assemble(testData(1), Config{}))
	if err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("pristine file rejected: %v", err)
	}

	mutant := filepath.Join(dir, "mutant.csnap")
	// Exhaustive single-byte flips are cheap at test-snapshot size.
	for i := 0; i < len(orig); i++ {
		buf := bytes.Clone(orig)
		buf[i] ^= 0x40
		if err := os.WriteFile(mutant, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFile(mutant); err == nil {
			t.Fatalf("flip at byte %d of %d loaded successfully", i, len(orig))
		}
	}

	// Truncation at every length must also be rejected.
	for _, n := range []int{0, 1, len(persistMagic), len(orig) / 2, len(orig) - 1} {
		if err := os.WriteFile(mutant, orig[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFile(mutant); err == nil {
			t.Fatalf("truncation to %d bytes loaded successfully", n)
		}
	}
}

// TestPersistRejectsDigestMismatch covers the last validation layer: a
// structurally valid file whose header digest does not describe its bodies
// (CRCs forged along with content) must still be rejected.
func TestPersistRejectsDigestMismatch(t *testing.T) {
	dir := t.TempDir()
	s := Assemble(testData(1), Config{})
	s.Digest = strings.Repeat("ab", 32) // lie about the content
	path := filepath.Join(dir, "forged.csnap")
	if err := writeSnapshotFile(path, s); err != nil {
		t.Fatal(err)
	}
	_, err := LoadFile(path)
	if err == nil {
		t.Fatal("file with forged digest loaded successfully")
	}
	if !strings.Contains(err.Error(), "digest") {
		t.Errorf("rejection reason %q does not mention the digest", err)
	}
}

// TestLoadLatestFallsBack pins the warm-start fallback: when the newest
// generation is corrupt, LoadLatest skips it and serves the previous one.
func TestLoadLatestFallsBack(t *testing.T) {
	dir := t.TempDir()
	p, err := NewPersister(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	old := Assemble(testData(1), Config{})
	if _, err := p.Save(old); err != nil {
		t.Fatal(err)
	}
	newest := Assemble(testData(2), Config{})
	newPath, err := p.Save(newest)
	if err != nil {
		t.Fatal(err)
	}

	// Sanity: intact store loads the newest.
	got, skipped, err := p.LoadLatest()
	if err != nil || skipped != 0 || got == nil || got.Epoch != 2 {
		t.Fatalf("intact LoadLatest = %v epoch=%v skipped=%d, want epoch 2", err, got, skipped)
	}

	// Corrupt the newest (truncate mid-body) → fall back to epoch 1.
	raw, err := os.ReadFile(newPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, raw[:len(raw)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}
	got, skipped, err = p.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 || got == nil || got.Epoch != 1 || got.Digest != old.Digest {
		t.Fatalf("fallback LoadLatest epoch=%v skipped=%d, want epoch 1 skipped 1", got, skipped)
	}

	// Corrupt everything → no snapshot, both counted, no error.
	oldPath := genPath(dir, 1)
	if err := os.WriteFile(oldPath, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, skipped, err = p.LoadLatest()
	if err != nil || got != nil || skipped != 2 {
		t.Fatalf("all-corrupt LoadLatest = %v %v skipped=%d, want nil/2", got, err, skipped)
	}

	// An empty directory is a clean cold start, not an error.
	p2, err := NewPersister(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	got, skipped, err = p2.LoadLatest()
	if err != nil || got != nil || skipped != 0 {
		t.Fatalf("empty-dir LoadLatest = %v %v skipped=%d, want nil/0", got, err, skipped)
	}
}

// TestPersistPrunes checks keep-last-K: saving beyond the limit removes the
// oldest generations and abandoned .tmp files.
func TestPersistPrunes(t *testing.T) {
	dir := t.TempDir()
	p, err := NewPersister(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A crash mid-write leaves a .tmp behind; prune must clear it.
	if err := os.WriteFile(filepath.Join(dir, "snap-00.csnap.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	for epoch := int64(1); epoch <= 4; epoch++ {
		if _, err := p.Save(Assemble(testData(epoch), Config{})); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("after 4 saves with keep=2, dir holds %v", names)
	}
	for _, want := range []int64{3, 4} {
		if _, err := os.Stat(genPath(dir, want)); err != nil {
			t.Errorf("generation %d missing after prune: %v", want, err)
		}
	}
}
