package snapshot

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"countryrank/internal/asn"
	"countryrank/internal/rank"
)

// TestRolloverUnderLoad is the graceful-rollover torn-read test: N client
// goroutines hammer a live rankd-style server over real HTTP while the
// store swaps between two distinct snapshots. Every response must be
// internally consistent — its ETag and body both from the same snapshot —
// because a request resolves its entity from one atomic Load and an
// immutable snapshot; a mismatched pair would mean a torn read. After
// shutdown, no goroutines or file descriptors may leak.
//
// Run with -race: the detector turns any unsynchronized snapshot access
// into a hard failure even when the ETag/body assertion happens to pass.
func TestRolloverUnderLoad(t *testing.T) {
	snapA := Assemble(testData(1), Config{})
	d := testData(2)
	// Different AU content → different ETag and body (the epoch alone is
	// deliberately not part of the served bytes).
	d.Countries[0].CCI = rank.New("CCI AU", map[asn.ASN]float64{
		1221: 0.9, 4826: 0.05,
	}, testInfo, true)
	snapB := Assemble(d, Config{})
	if snapA.CountryETag("AU") == snapB.CountryETag("AU") {
		t.Fatal("test snapshots share an ETag; the assertion would be vacuous")
	}
	want := map[string]string{ // ETag → exact body, across both snapshots
		snapA.CountryETag("AU"): string(snapA.CountryBody("AU")),
		snapB.CountryETag("AU"): string(snapB.CountryBody("AU")),
	}

	beforeGoroutines := runtime.NumGoroutine()
	beforeFDs := countFDs(t)

	st := NewStore(snapA)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: NewHandler(st)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	const (
		clients  = 8
		duration = 300 * time.Millisecond
	)
	var (
		stop     atomic.Bool
		requests atomic.Int64
		wg       sync.WaitGroup
	)
	fail := make(chan string, clients)

	// Swapper: flip between the two snapshots as fast as possible.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cur := snapA
		for !stop.Load() {
			if cur == snapA {
				cur = snapB
			} else {
				cur = snapA
			}
			st.Swap(cur)
		}
	}()

	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			defer client.CloseIdleConnections()
			for !stop.Load() {
				resp, err := client.Get(base + "/v1/countries/AU")
				if err != nil {
					fail <- fmt.Sprintf("GET: %v", err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					fail <- fmt.Sprintf("read body: %v", err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					fail <- fmt.Sprintf("status %d", resp.StatusCode)
					return
				}
				etag := resp.Header.Get("ETag")
				wantBody, ok := want[etag]
				if !ok {
					fail <- fmt.Sprintf("ETag %q belongs to neither snapshot", etag)
					return
				}
				if string(body) != wantBody {
					fail <- fmt.Sprintf("torn read: ETag %q with body from the other snapshot", etag)
					return
				}
				requests.Add(1)
			}
		}()
	}

	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}
	if n := requests.Load(); n == 0 {
		t.Error("no requests completed")
	} else {
		t.Logf("%d consistent responses across rollovers", n)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v", err)
	}

	// Everything the server and clients spawned must unwind, and the
	// listener plus every connection must be closed.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= beforeGoroutines && countFDs(t) <= beforeFDs {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("leak after shutdown: goroutines %d -> %d, fds %d -> %d\n%s",
		beforeGoroutines, runtime.NumGoroutine(), beforeFDs, countFDs(t), buf[:n])
}

// TestSupervisorRolloverUnderLoad is the supervised twin of
// TestRolloverUnderLoad: rollovers come from the real publish path — a
// Supervisor triggered repeatedly, alternating between two builds — instead
// of a raw store swapper. Every response must still be internally
// consistent, and after Close + Shutdown nothing may leak: neither the
// serving machinery nor the supervisor's loop and build goroutines.
//
// Run with -race: it also exercises Trigger/publish/Load concurrency.
func TestSupervisorRolloverUnderLoad(t *testing.T) {
	d := testData(2)
	d.Countries[0].CCI = rank.New("CCI AU", map[asn.ASN]float64{
		1221: 0.9, 4826: 0.05,
	}, testInfo, true)
	dataA, dataB := testData(1), d
	snapA := Assemble(dataA, Config{})
	snapB := Assemble(dataB, Config{})
	if snapA.CountryETag("AU") == snapB.CountryETag("AU") {
		t.Fatal("test snapshots share an ETag; the assertion would be vacuous")
	}
	want := map[string]string{
		snapA.CountryETag("AU"): string(snapA.CountryBody("AU")),
		snapB.CountryETag("AU"): string(snapB.CountryBody("AU")),
	}

	beforeGoroutines := runtime.NumGoroutine()
	beforeFDs := countFDs(t)

	st := NewStore(snapA)
	var flip atomic.Int64
	sup := NewSupervisor(st, 2, SupervisorConfig{
		BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond, Seed: 3,
		Build: func(ctx context.Context, epoch int64) (*Snapshot, error) {
			data := dataA
			if flip.Add(1)%2 == 0 {
				data = dataB
			}
			data.Epoch = epoch
			return Assemble(data, Config{}), nil
		},
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: NewHandler(st)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	const (
		clients  = 8
		duration = 300 * time.Millisecond
	)
	var (
		stop     atomic.Bool
		requests atomic.Int64
		wg       sync.WaitGroup
	)
	fail := make(chan string, clients+1)

	// Trigger as fast as the supervisor can absorb; most calls coalesce.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			sup.Trigger("load test")
			time.Sleep(100 * time.Microsecond)
		}
	}()

	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			defer client.CloseIdleConnections()
			for !stop.Load() {
				resp, err := client.Get(base + "/v1/countries/AU")
				if err != nil {
					fail <- fmt.Sprintf("GET: %v", err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					fail <- fmt.Sprintf("status %d, read err %v", resp.StatusCode, err)
					return
				}
				etag := resp.Header.Get("ETag")
				wantBody, ok := want[etag]
				if !ok {
					fail <- fmt.Sprintf("ETag %q belongs to neither snapshot", etag)
					return
				}
				if string(body) != wantBody {
					fail <- fmt.Sprintf("torn read: ETag %q with body from the other snapshot", etag)
					return
				}
				requests.Add(1)
			}
		}()
	}

	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}
	if requests.Load() == 0 {
		t.Error("no requests completed")
	}
	if sup.Epoch() < 3 {
		t.Errorf("only %d supervised publishes during the load window", sup.Epoch()-1)
	}
	t.Logf("%d consistent responses across %d supervised rollovers", requests.Load(), sup.Epoch()-1)

	sup.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v", err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= beforeGoroutines && countFDs(t) <= beforeFDs {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("leak after shutdown: goroutines %d -> %d, fds %d -> %d\n%s",
		beforeGoroutines, runtime.NumGoroutine(), beforeFDs, countFDs(t), buf[:n])
}

// countFDs reports the number of open file descriptors, or -1 on platforms
// without /proc (the fd half of the leak check then trivially passes).
func countFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}
