package snapshot

import (
	"expvar"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"countryrank/internal/obs"
)

// Serving metrics. Counters and histogram observations are plain atomic
// adds, so keeping them on the hot path does not break the zero-allocation
// guarantee the guard test pins.
var (
	mRequests = obs.NewCounter("countryrank_rankd_requests_total",
		"HTTP requests handled by the /v1 snapshot endpoints")
	mServed200 = obs.NewCounter("countryrank_rankd_responses_200_total",
		"full-body snapshot responses")
	mServed304 = obs.NewCounter("countryrank_rankd_responses_304_total",
		"If-None-Match revalidations answered with 304")
	mMisses = obs.NewCounter("countryrank_rankd_responses_miss_total",
		"4xx/5xx snapshot responses (unknown path, bad query, no snapshot)")
	mBodyBytes = obs.NewCounter("countryrank_rankd_body_bytes_total",
		"response body bytes written by the snapshot endpoints")
	mSwaps = obs.NewCounter("countryrank_rankd_snapshot_swaps_total",
		"snapshot rollovers published to the store")
	mEpoch = obs.NewGauge("countryrank_rankd_snapshot_epoch",
		"epoch of the currently served snapshot")
	mShed = obs.NewCounter("countryrank_rankd_shed_total",
		"requests shed by the in-flight admission gate (503 + Retry-After)")
	mStale = obs.NewGauge("countryrank_rankd_serving_stale",
		"1 while the served snapshot was warm-loaded from disk and the first rebuild has not yet landed")
	mHistEpochs = obs.NewGauge("countryrank_rankd_history_epochs",
		"epochs currently retained in the store's rank-history ring")

	mLatCountry = obs.NewHistogram("countryrank_rankd_country_seconds",
		"latency of /v1/countries/{cc}", obs.ServingBuckets)
	mLatTop = obs.NewHistogram("countryrank_rankd_top_seconds",
		"latency of /v1/top/{metric}", obs.ServingBuckets)
	mLatIndex = obs.NewHistogram("countryrank_rankd_snapshot_seconds",
		"latency of /v1/snapshot", obs.ServingBuckets)
	mLatHistory = obs.NewHistogram("countryrank_rankd_history_seconds",
		"latency of /v1/countries/{cc}/history", obs.ServingBuckets)
)

// Snapshot identity expvars (satellite of the drift-observability layer):
// epoch, content digest, and data build time of the currently served
// snapshot, published under /debug/vars so scrape tooling sees rollovers
// without parsing /v1/snapshot.
var (
	identityOnce sync.Once
	expEpoch     *expvar.Int
	expDigest    *expvar.String
	expBuilt     *expvar.Int
)

func publishIdentity(s *Snapshot) {
	identityOnce.Do(func() {
		expEpoch = expvar.NewInt("countryrank_snapshot_epoch")
		expDigest = expvar.NewString("countryrank_snapshot_digest")
		expBuilt = expvar.NewInt("countryrank_snapshot_built_unix")
	})
	expEpoch.Set(s.Epoch)
	expDigest.Set(s.Digest)
	expBuilt.Set(s.BuiltUnix())
}

// Store publishes the currently served snapshot. Swap is an atomic pointer
// store: readers that already loaded the old snapshot keep serving it
// unperturbed (it is immutable), new requests observe the new one, and the
// old snapshot is garbage-collected once the last in-flight response
// holding it returns. No locks, no reference counts.
type Store struct {
	cur atomic.Pointer[Snapshot]

	// The epoch history ring (history.go): bounded retention of the last
	// keep epochs' rank vectors, appended under mu by Publish.
	mu   sync.Mutex
	keep int
	hist []histEntry
}

// NewStore returns a store serving s (which may be nil; requests then
// answer 503 until the first Swap). A non-nil s with rank vectors seeds
// the history ring.
func NewStore(s *Snapshot) *Store {
	st := &Store{keep: DefaultHistoryEpochs}
	if s != nil {
		st.appendHistoryLocked(s, nil) // no readers yet; no lock needed
		st.cur.Store(s)
		mEpoch.Set(s.Epoch)
		mStale.Set(b2i(s.Stale))
		publishIdentity(s)
	}
	return st
}

// Load returns the currently published snapshot (nil before the first
// Swap).
func (st *Store) Load() *Snapshot { return st.cur.Load() }

// Swap publishes next and returns the previously served snapshot. It does
// not touch the history ring — the supervisor publishes through Publish,
// which does.
func (st *Store) Swap(next *Snapshot) *Snapshot {
	old := st.cur.Swap(next)
	mSwaps.Inc()
	mEpoch.Set(next.Epoch)
	mStale.Set(b2i(next.Stale))
	publishIdentity(next)
	return old
}

// Publish records next (and the drift that produced it, which may be nil)
// in the history ring, preserializes the per-country history pages into
// next, and then swaps it in. The ring mutation and the swap share the
// store mutex so concurrent publishes cannot interleave ring order with
// serving order.
func (st *Store) Publish(next *Snapshot, d *Drift) *Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.appendHistoryLocked(next, d)
	return st.Swap(next)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Precomputed header values, assigned into the response header map by
// reference so the hot path allocates nothing per request.
var (
	hdrContentType  = []string{"application/json; charset=utf-8"}
	hdrCacheControl = []string{"public, max-age=15, stale-while-revalidate=60"}

	// Shed-path response, fully precomputed so refusing work allocates as
	// little as serving it: an overloaded server must not amplify load.
	shedBody      = []byte("overloaded, retry shortly\n")
	hdrRetryAfter = []string{"1"}
	hdrTextPlain  = []string{"text/plain; charset=utf-8"}
	hdrShedLength = []string{strconv.Itoa(len(shedBody))}
)

// routeClass labels the endpoint a request resolved to, for wide events
// and per-route trace retention.
type routeClass uint8

const (
	routeOther routeClass = iota
	routeCountry
	routeTop
	routeIndex
	routeShed
	routeHistory
)

var routeNames = [...]string{"other", "country", "top", "snapshot", "shed", "history"}

// Instrumentation is the handler's optional request-scoped observability:
// every field nil (or zero) is off and costs one branch per request. The
// populated hooks are designed so the unsampled hot path stays at exactly
// zero allocations — the access-log producer copies a value struct into a
// lock-free ring, the tracker answers nil without allocating when the
// sampler declines, and SLO accounting is plain atomic adds.
type Instrumentation struct {
	// Log receives one wide AccessEvent per request.
	Log *obs.AccessLog
	// Requests promotes a sampled subset of requests to full traces
	// served at /debug/requests.
	Requests *obs.ReqTracker
	// SLO accounts every response against availability/latency objectives.
	SLO *obs.SLO
	// SlowProbe, when positive, sleeps this long before serving any
	// request whose query carries probe=slow — a latency-injection hook
	// for SLO drills (CI drives /healthz to degraded with it). Leave zero
	// in production.
	SlowProbe time.Duration
	// MaxInFlight bounds concurrently admitted requests; excess requests
	// are shed with 503 + Retry-After (no queueing — under overload a
	// bounded fast no beats an unbounded slow yes). Zero disables the
	// gate.
	MaxInFlight int
}

// Handler serves the snapshot API:
//
//	GET /v1/countries/{cc}     one country's CCI/CCN/AHI/AHN page
//	GET /v1/top/{metric}?n=N   global top-N (metric: ccg, ahg; default n=10)
//	GET /v1/snapshot           snapshot metadata (epoch, digest, coverage)
//
// Every 200 carries a strong ETag (content SHA-256), Content-Length, and
// Cache-Control; If-None-Match revalidation answers 304 with no body. The
// 200 and 304 paths perform zero allocations and zero encoding per request
// — with access logging, SLO accounting, and metrics enabled, as long as
// trace sampling declines the request: the handler resolves a
// preserialized entity, assigns precomputed header slices, and writes
// stored bytes.
type Handler struct {
	store *Store
	ins   Instrumentation
	// inflight counts admitted requests; the admission gate is a single
	// atomic add-and-compare, no lock and no allocation.
	inflight atomic.Int64
}

// NewHandler serves from st with instrumentation off.
func NewHandler(st *Store) *Handler { return &Handler{store: st} }

// Instrument installs the handler's observability hooks. Call before the
// handler starts serving; the fields are read concurrently afterwards.
func (h *Handler) Instrument(ins Instrumentation) { h.ins = ins }

const (
	prefixCountries = "/v1/countries/"
	prefixTop       = "/v1/top/"
	pathIndex       = "/v1/snapshot"
)

// reqResult carries what the serving core resolved, for the wide event and
// trace finishing in ServeHTTP. Returned by value: no allocation.
type reqResult struct {
	route   routeClass
	target  string // country code or top metric path segment
	n       int    // resolved top-N (0 when n/a)
	status  int
	bytes   int
	etagHit bool
}

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	mRequests.Inc()
	if limit := h.ins.MaxInFlight; limit > 0 {
		if h.inflight.Add(1) > int64(limit) {
			h.inflight.Add(-1)
			h.shed(w, r, start)
			return
		}
		defer h.inflight.Add(-1)
	}
	var rs *obs.ReqSpan
	if h.ins.Requests != nil {
		rs = h.ins.Requests.Start(r.URL.Path)
	}
	if h.ins.SlowProbe > 0 && strings.Contains(r.URL.RawQuery, "probe=slow") {
		time.Sleep(h.ins.SlowProbe)
	}
	snap := h.store.Load()
	res := h.serve(w, r, snap, rs, start)
	lat := time.Since(start)
	if h.ins.SLO != nil {
		h.ins.SLO.Record(res.status, lat, res.status == http.StatusNotModified)
	}
	if rs != nil {
		h.ins.Requests.Finish(rs, routeNames[res.route], res.status, int64(res.bytes))
	}
	if h.ins.Log != nil {
		ev := obs.AccessEvent{
			Start:   start,
			Route:   routeNames[res.route],
			Target:  res.target,
			N:       int32(res.n),
			Status:  int32(res.status),
			Bytes:   int64(res.bytes),
			Latency: lat,
			ETagHit: res.etagHit,
			Sampled: rs != nil,
			Client:  r.RemoteAddr,
		}
		if snap != nil {
			ev.Epoch, ev.Digest = snap.Epoch, snap.Digest
		}
		h.ins.Log.Record(ev)
	}
}

// shed refuses one request at the admission gate: 503 with Retry-After and
// a preallocated body, counted and SLO-accounted (a shed request is real
// unavailability — hiding it from the burn rate would lie to the operator).
// The shed path allocates nothing, like the paths it protects: an
// overloaded server must not amplify its own load.
func (h *Handler) shed(w http.ResponseWriter, r *http.Request, start time.Time) {
	mShed.Inc()
	hdr := w.Header()
	hdr["Retry-After"] = hdrRetryAfter
	hdr["Content-Type"] = hdrTextPlain
	hdr["Content-Length"] = hdrShedLength
	w.WriteHeader(http.StatusServiceUnavailable)
	bytes := 0
	if r.Method != http.MethodHead {
		_, _ = w.Write(shedBody)
		bytes = len(shedBody)
	}
	lat := time.Since(start)
	if h.ins.SLO != nil {
		h.ins.SLO.Record(http.StatusServiceUnavailable, lat, false)
	}
	if h.ins.Log != nil {
		ev := obs.AccessEvent{
			Start: start, Route: routeNames[routeShed],
			Status: http.StatusServiceUnavailable, Bytes: int64(bytes),
			Latency: lat, Client: r.RemoteAddr,
		}
		if snap := h.store.Load(); snap != nil {
			ev.Epoch, ev.Digest = snap.Epoch, snap.Digest
		}
		h.ins.Log.Record(ev)
	}
}

// serve is the zero-alloc serving core; ServeHTTP wraps it with the
// request-scoped observability.
func (h *Handler) serve(w http.ResponseWriter, r *http.Request, snap *Snapshot, rs *obs.ReqSpan, start time.Time) reqResult {
	res := reqResult{}
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		mMisses.Inc()
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		res.status = http.StatusMethodNotAllowed
		return res
	}
	if snap == nil {
		mMisses.Inc()
		http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
		res.status = http.StatusServiceUnavailable
		return res
	}
	rs.Event("parse")

	var (
		e   *entity
		lat *obs.Histogram
	)
	path := r.URL.Path
	switch {
	case path == pathIndex:
		e, lat = snap.index, mLatIndex
		res.route = routeIndex
	case len(path) > len(prefixCountries) && path[:len(prefixCountries)] == prefixCountries:
		rest := path[len(prefixCountries):]
		if i := strings.IndexByte(rest, '/'); i >= 0 && rest[i+1:] == "history" {
			// /v1/countries/{cc}/history — the preserialized epoch-history
			// page (rendered at publish time; serving it allocates nothing).
			res.route = routeHistory
			res.target = rest[:i]
			e, lat = snap.historyPage(rest[:i]), mLatHistory
		} else {
			res.route = routeCountry
			res.target = rest
			e, lat = snap.country(rest), mLatCountry
		}
	case len(path) > len(prefixTop) && path[:len(prefixTop)] == prefixTop:
		res.route = routeTop
		res.target = path[len(prefixTop):]
		var ok bool
		e, res.n, ok = snap.top(res.target, r.URL.RawQuery)
		if !ok {
			mMisses.Inc()
			http.Error(w, "bad n parameter", http.StatusBadRequest)
			res.status = http.StatusBadRequest
			return res
		}
		lat = mLatTop
	}
	rs.Event("lookup")
	if e == nil {
		mMisses.Inc()
		http.NotFound(w, r)
		res.status = http.StatusNotFound
		return res
	}

	hdr := w.Header()
	hdr["Etag"] = e.etagHdr
	hdr["Cache-Control"] = hdrCacheControl
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, e.etag) {
		w.WriteHeader(http.StatusNotModified)
		mServed304.Inc()
		lat.Observe(time.Since(start))
		res.status = http.StatusNotModified
		res.etagHit = true
		return res
	}
	hdr["Content-Type"] = hdrContentType
	hdr["Content-Length"] = e.lenHdr
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		// ResponseWriter.Write on a []byte does not allocate; the net/http
		// connection machinery copies into its own buffered writer.
		_, _ = w.Write(e.body)
		mBodyBytes.Add(int64(len(e.body)))
		res.bytes = len(e.body)
	}
	rs.Event("write")
	mServed200.Inc()
	lat.Observe(time.Since(start))
	res.status = http.StatusOK
	return res
}

// country resolves a country page. The code is ASCII-uppercased into a
// stack buffer so lower-case URLs hit without allocating (map lookups with
// a string(buf) key stay on the stack).
func (s *Snapshot) country(cc string) *entity {
	var buf [8]byte
	if len(cc) == 0 || len(cc) > len(buf) {
		return nil
	}
	for i := 0; i < len(cc); i++ {
		c := cc[i]
		if c == '/' {
			return nil // no sub-paths under a country
		}
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		buf[i] = c
	}
	return s.countries[string(buf[:len(cc)])]
}

// historyPage resolves a country's preserialized history page, with the
// same stack-buffer uppercase normalization as country. Nil when the
// snapshot was published without a history ring (raw Swap) or the country
// never appeared in the retained epochs.
func (s *Snapshot) historyPage(cc string) *entity {
	var buf [8]byte
	if len(cc) == 0 || len(cc) > len(buf) {
		return nil
	}
	for i := 0; i < len(cc); i++ {
		c := cc[i]
		if c == '/' {
			return nil
		}
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		buf[i] = c
	}
	return s.history[string(buf[:len(cc)])]
}

// top resolves a top-N variant from the metric path segment and the raw
// query, reporting the clamped n actually served. ok is false only for an
// unparseable or non-positive n; an unknown metric returns (nil, 0, true)
// so the caller 404s.
func (s *Snapshot) top(metric, rawQuery string) (e *entity, n int, ok bool) {
	var buf [16]byte
	if len(metric) == 0 || len(metric) > len(buf) {
		return nil, 0, true
	}
	for i := 0; i < len(metric); i++ {
		c := metric[i]
		if c == '/' {
			return nil, 0, true
		}
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		buf[i] = c
	}
	variants := s.tops[string(buf[:len(metric)])]
	if variants == nil {
		return nil, 0, true
	}
	n, ok = queryN(rawQuery, 10)
	if !ok || n <= 0 {
		return nil, 0, false
	}
	if n > s.maxTopN {
		n = s.maxTopN // cap, don't reject: CDN-friendly clamping
	}
	if n > len(variants) {
		n = len(variants) // fewer ranked ASes than requested
	}
	return variants[n-1], n, true
}

// queryN extracts the n parameter from a raw (unescaped) query string
// without url.ParseQuery's allocations. Absent n yields def; a present but
// malformed n yields ok=false.
func queryN(q string, def int) (n int, ok bool) {
	for len(q) > 0 {
		// Slice off one key=value pair.
		pair := q
		if i := strings.IndexByte(q, '&'); i >= 0 {
			pair, q = q[:i], q[i+1:]
		} else {
			q = ""
		}
		if len(pair) < 2 || pair[0] != 'n' || pair[1] != '=' {
			continue
		}
		v := pair[2:]
		if len(v) == 0 || len(v) > 9 {
			return 0, false
		}
		n = 0
		for i := 0; i < len(v); i++ {
			c := v[i]
			if c < '0' || c > '9' {
				return 0, false
			}
			n = n*10 + int(c-'0')
		}
		return n, true
	}
	return def, true
}

// etagMatch implements the If-None-Match comparison for our strong ETags:
// "*" matches anything, otherwise the header must list the exact tag
// (weak-prefixed forms of it included, per RFC 9110 §8.8.3.2's weak
// comparison for If-None-Match). strings.Contains does not allocate.
func etagMatch(header, etag string) bool {
	return header == "*" || strings.Contains(header, etag)
}
